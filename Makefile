# Build / verify / benchmark entry points.
#
#   make build  — compile every package
#   make vet    — static analysis
#   make test   — full test suite (tier-1 gate: build + test green)
#   make race   — full test suite under the race detector (the parallel
#                 exec paths must stay race-clean)
#   make check  — build + vet + test
#   make bench  — relation-kernel micro-benchmarks → BENCH_relation.json
#                 (test2json stream of `go test -bench -benchmem`,
#                 the trajectory artifact later perf PRs diff against)
#   make bench-parallel — exec-layer scaling curves → BENCH_parallel.json
#                 (faqbench -parallel: wall clock + simulated makespan,
#                 atomic and intra-node-shaped, per worker count;
#                 answers verified bit-identical)
#   make bench-incremental — point-update latency of materialized views
#                 vs full re-solve → BENCH_incremental.json (faqbench
#                 -incremental: path7/star6/tree6 at n = 1e4 and 1e5;
#                 every measured answer verified bit-identical to a
#                 from-scratch solve before the artifact is written)
#   make bench-all — every benchmark in the repo (paper tables + kernel)
#   make test-workers — re-run the parallel≡sequential equivalence suites
#                 with the default pool pinned at 1, 2, and 8 workers
#                 (FAQ_WORKERS, read by internal/exec at init), so every
#                 public dispatch path is exercised at each width
#   make bench-service — query-service throughput → BENCH_service.json
#                 (faqload mixed-shape workload: cold-plan vs warm-cache
#                 throughput and p50/p99 latency per worker count; every
#                 answer verified against per-request planning)
#   make smoke-service — tiny-n end-to-end smoke of faqd + faqload over
#                 HTTP (wired into CI)
#   make smoke-metrics — boot faqd, drive 20 requests, and gate the
#                 /metrics exposition: faqload's -url mode strict-parses
#                 the scrape at each phase boundary and fails unless the
#                 key series moved (part of `make check` and CI)
#   make smoke-cluster — boot three faqw shard workers plus a faqd
#                 coordinator wired to them (-workers host:port list),
#                 drive the faqload workload through HTTP (every answer
#                 verified bit-identical to the local reference), then
#                 run faqbench -cluster, which gates measured
#                 bytes-on-wire against the closed-form
#                 cluster.PayloadBound (part of `make check` and CI)
#   make bench-cluster — distributed-engine bytes-on-wire vs closed-form
#                 bounds at full size → BENCH_cluster.json
#   make examples — build and run every examples/ program (all are
#                 clients of the public faqs façade; wired into CI)
#   make lint   — faqlint, the repo's static-analysis suite
#                 (internal/lint): seven analyzers compiling the standing
#                 contracts — facade, nopanic, mapiter, ctxflow,
#                 hotpath, failpoint, metricreg — into build failures; zero
#                 unsuppressed findings required (part of `make check`)
#   make vet-imports — alias for the facade analyzer alone (the former
#                 shell-grep target; the faqbench/faqload/ghdtool
#                 allowlist now lives in internal/lint/facade.go)
#   make chaos  — failpoint sweep under the race detector at 1/2/8
#                 workers: every registered fault-injection site fired
#                 in every mode must yield a typed error or a
#                 bit-identical answer, never a hang or panic escape
#                 (part of `make check`). Chaos tests follow the
#                 TestChaos* naming convention — enforced by the
#                 failpoint analyzer, so an arming test that drops the
#                 prefix (and would silently leave the sweep) is a lint
#                 failure, not a quiet coverage loss.

GO        ?= go
BENCHTIME ?= 0.5s
FUZZTIME  ?= 30s
SMOKEADDR ?= 127.0.0.1:18080
METRICSADDR ?= 127.0.0.1:18081
CLUSTERADDR ?= 127.0.0.1:18082
WORKERADDR1 ?= 127.0.0.1:18091
WORKERADDR2 ?= 127.0.0.1:18092
WORKERADDR3 ?= 127.0.0.1:18093

# The packages holding the parallel≡sequential equivalence suites.
WORKER_PKGS = ./internal/relation/ ./internal/protocol/ ./internal/faq/ ./internal/exec/ ./internal/flow/ ./internal/plan/ ./internal/service/ ./internal/delta/ ./internal/delta/churn/ ./faqs/

.PHONY: build test vet lint vet-imports race check chaos bench bench-parallel bench-incremental bench-cluster bench-all fuzz test-workers bench-service smoke-service smoke-metrics smoke-cluster examples

# The packages holding chaos (failpoint-sweep) TestChaos* suites: the
# serving path, the incremental-maintenance engine, the kernels, the
# exec pool, the netsim ledger, the rpc transport, the scatter/gather
# coordinator, the public façade, and the daemon's
# HTTP boundary. This list must mirror
# the failpoint analyzer's ChaosPackages (internal/lint/failpoint.go):
# the analyzer flags arming tests in packages outside it, so the two
# cannot drift silently. The fault registry's own unit suite runs in
# tier-1/`make race` — its arming calls are exercises of the registry,
# not chaos sweeps (analyzer Exempt entry).
CHAOS_PKGS = ./internal/service/ ./internal/delta/ ./internal/relation/ ./internal/protocol/ ./internal/exec/ ./internal/rpc/ ./internal/cluster/ ./faqs/ ./cmd/faqd/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/faqlint ./...

# Alias for the retired shell-grep target: same contract, now enforced
# by the facade analyzer (allowlist in internal/lint/facade.go).
vet-imports:
	$(GO) run ./cmd/faqlint -only facade ./...

race:
	$(GO) test -race ./...

check: build vet lint test chaos smoke-metrics smoke-cluster

chaos:
	FAQ_WORKERS=1 $(GO) test -race -count=1 -run '^TestChaos' $(CHAOS_PKGS)
	FAQ_WORKERS=2 $(GO) test -race -count=1 -run '^TestChaos' $(CHAOS_PKGS)
	FAQ_WORKERS=8 $(GO) test -race -count=1 -run '^TestChaos' $(CHAOS_PKGS)

examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run ./$$d; \
	done

bench:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) -json \
		./internal/relation/ > BENCH_relation.json
	@echo "wrote BENCH_relation.json"

bench-parallel:
	$(GO) run ./cmd/faqbench -parallel

bench-incremental:
	$(GO) run ./cmd/faqbench -incremental

bench-cluster:
	$(GO) run ./cmd/faqbench -cluster

bench-all:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) ./...

test-workers:
	FAQ_WORKERS=1 $(GO) test -count=1 $(WORKER_PKGS)
	FAQ_WORKERS=2 $(GO) test -count=1 $(WORKER_PKGS)
	FAQ_WORKERS=8 $(GO) test -count=1 $(WORKER_PKGS)

fuzz:
	$(GO) test ./internal/relation/ -run=NONE -fuzz=FuzzBuilderDuplicateMerge -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/relation/ -run=NONE -fuzz=FuzzJoinMergeParallel -fuzztime=$(FUZZTIME)
	$(GO) test ./faqs/ -run=NONE -fuzz=FuzzQueryBuilder -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/delta/ -run=NONE -fuzz=FuzzDeltaApply -fuzztime=$(FUZZTIME)

bench-service:
	$(GO) run ./cmd/faqload -out BENCH_service.json

smoke-service:
	$(GO) build -o /tmp/faqd-smoke ./cmd/faqd
	$(GO) build -o /tmp/faqload-smoke ./cmd/faqload
	@/tmp/faqd-smoke -addr $(SMOKEADDR) -cache 64 & \
	FAQD_PID=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(SMOKEADDR)/healthz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	/tmp/faqload-smoke -url http://$(SMOKEADDR) -requests 6 -n 128; \
	STATUS=$$?; \
	kill $$FAQD_PID 2>/dev/null; \
	exit $$STATUS

# smoke-metrics gates the observability surface: faqload's -url mode
# strict-parses /metrics at each phase boundary, derives server-side
# latency quantiles from the histogram deltas, and fails if the
# exposition is malformed or a key series (requests, exec tasks, cache
# misses, runtime gauges, HTTP counters) never moved.
smoke-metrics:
	$(GO) build -o /tmp/faqd-smoke ./cmd/faqd
	$(GO) build -o /tmp/faqload-smoke ./cmd/faqload
	@/tmp/faqd-smoke -addr $(METRICSADDR) -cache 64 & \
	FAQD_PID=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(METRICSADDR)/healthz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	/tmp/faqload-smoke -url http://$(METRICSADDR) -requests 20 -n 128 -out /tmp/faqd-smoke-metrics.json; \
	STATUS=$$?; \
	kill $$FAQD_PID 2>/dev/null; \
	exit $$STATUS

# smoke-cluster boots the real distributed stack on loopback — three
# faqw shard workers plus a faqd coordinator scattering to them — and
# drives the faqload workload through it: every served answer is
# verified bit-identical to faqload's local reference, so a sharding or
# merge bug in the cluster path is a smoke failure, not a silent wrong
# answer. It then runs faqbench -cluster at a small n, which re-gates
# measured bytes-on-wire against the closed-form cluster.PayloadBound
# on fleets of 1/2/4/8 workers.
smoke-cluster:
	$(GO) build -o /tmp/faqd-smoke ./cmd/faqd
	$(GO) build -o /tmp/faqw-smoke ./cmd/faqw
	$(GO) build -o /tmp/faqload-smoke ./cmd/faqload
	$(GO) build -o /tmp/faqbench-smoke ./cmd/faqbench
	@/tmp/faqw-smoke -addr $(WORKERADDR1) & \
	W1=$$!; \
	/tmp/faqw-smoke -addr $(WORKERADDR2) & \
	W2=$$!; \
	/tmp/faqw-smoke -addr $(WORKERADDR3) & \
	W3=$$!; \
	/tmp/faqd-smoke -addr $(CLUSTERADDR) -cache 64 -workers $(WORKERADDR1),$(WORKERADDR2),$(WORKERADDR3) & \
	FAQD_PID=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(CLUSTERADDR)/healthz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	/tmp/faqload-smoke -url http://$(CLUSTERADDR) -requests 8 -n 128; \
	STATUS=$$?; \
	if [ $$STATUS -eq 0 ]; then \
		/tmp/faqbench-smoke -cluster /tmp/BENCH_cluster_smoke.json 512; \
		STATUS=$$?; \
	fi; \
	kill $$FAQD_PID $$W1 $$W2 $$W3 2>/dev/null; \
	exit $$STATUS
