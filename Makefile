# Build / verify / benchmark entry points.
#
#   make build  — compile every package
#   make vet    — static analysis
#   make test   — full test suite (tier-1 gate: build + test green)
#   make check  — build + vet + test
#   make bench  — relation-kernel micro-benchmarks → BENCH_relation.json
#                 (test2json stream of `go test -bench -benchmem`,
#                 the trajectory artifact later perf PRs diff against)
#   make bench-all — every benchmark in the repo (paper tables + kernel)

GO        ?= go
BENCHTIME ?= 0.5s

.PHONY: build test vet check bench bench-all fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

check: build vet test

bench:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) -json \
		./internal/relation/ > BENCH_relation.json
	@echo "wrote BENCH_relation.json"

bench-all:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) ./...

fuzz:
	$(GO) test ./internal/relation/ -run=NONE -fuzz=FuzzBuilderDuplicateMerge -fuzztime=30s
