# Build / verify / benchmark entry points.
#
#   make build  — compile every package
#   make vet    — static analysis
#   make test   — full test suite (tier-1 gate: build + test green)
#   make race   — full test suite under the race detector (the parallel
#                 exec paths must stay race-clean)
#   make check  — build + vet + test
#   make bench  — relation-kernel micro-benchmarks → BENCH_relation.json
#                 (test2json stream of `go test -bench -benchmem`,
#                 the trajectory artifact later perf PRs diff against)
#   make bench-parallel — exec-layer scaling curves → BENCH_parallel.json
#                 (faqbench -parallel: wall clock + simulated makespan
#                 per worker count, answers verified bit-identical)
#   make bench-all — every benchmark in the repo (paper tables + kernel)

GO        ?= go
BENCHTIME ?= 0.5s

.PHONY: build test vet race check bench bench-parallel bench-all fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet test

bench:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) -json \
		./internal/relation/ > BENCH_relation.json
	@echo "wrote BENCH_relation.json"

bench-parallel:
	$(GO) run ./cmd/faqbench -parallel

bench-all:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCHTIME) ./...

fuzz:
	$(GO) test ./internal/relation/ -run=NONE -fuzz=FuzzBuilderDuplicateMerge -fuzztime=30s
