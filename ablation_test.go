package repro

// Ablation benchmarks for the design choices called out in DESIGN.md §5:
// pipelined vs store-and-forward converge-cast, and exact vs heuristic
// internal-node-width minimization.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// BenchmarkAblationConvergePipelining compares the pipelined per-item
// schedule (what the protocols use; N + depth rounds on a line) against
// the naive store-and-forward ConvergeTree (N × depth rounds): the gap
// is exactly why Examples 2.1–2.3 reach N+2 rather than 3N.
func BenchmarkAblationConvergePipelining(b *testing.B) {
	n := 256
	g := topology.Line(4)
	tree := &netsim.Tree{Root: 0, Edges: []int{0, 1, 2}}
	b.Run("store-and-forward", func(b *testing.B) {
		rounds := 0
		for i := 0; i < b.N; i++ {
			net, err := netsim.New(g, 8)
			if err != nil {
				b.Fatal(err)
			}
			// Whole N-item payload forwarded hop by hop.
			if _, err := net.ConvergeTree(tree, 0, n*8); err != nil {
				b.Fatal(err)
			}
			rounds = net.Rounds()
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("pipelined", func(b *testing.B) {
		rounds := 0
		for i := 0; i < b.N; i++ {
			net, err := netsim.New(g, 8)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := net.StreamItems([]int{3, 2, 1, 0}, 0, n, 8, nil); err != nil {
				b.Fatal(err)
			}
			rounds = net.Rounds()
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkAblationWidthExactVsHeuristic compares the exhaustive y(H)
// search against the Construction 2.8 + MD-transform heuristic on random
// trees: the heuristic is within the O(1) factor Appendix F needs, at a
// fraction of the cost.
func BenchmarkAblationWidthExactVsHeuristic(b *testing.B) {
	r := rand.New(rand.NewSource(91))
	trees := make([]*hypergraph.Hypergraph, 8)
	for i := range trees {
		n := 7
		h := hypergraph.New(n)
		for v := 1; v < n; v++ {
			h.AddEdge(r.Intn(v), v)
		}
		trees[i] = h
	}
	b.Run("exact", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			total = 0
			for _, h := range trees {
				g, err := ghd.Minimize(h) // includes the exhaustive search at this size
				if err != nil {
					b.Fatal(err)
				}
				total += g.InternalNodes()
			}
		}
		b.ReportMetric(float64(total), "sumY")
	})
	b.Run("heuristic", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			total = 0
			for _, h := range trees {
				g, err := ghd.Construct(h) // witness tree + MD flattening only
				if err != nil {
					b.Fatal(err)
				}
				total += g.InternalNodes()
			}
		}
		b.ReportMetric(float64(total), "sumY")
	})
}

// BenchmarkAblationSteinerPacking compares clique packings: the exact
// zigzag Hamiltonian decomposition vs what a single greedy star tree
// would provide (ST = 1), measured through the set-intersection bound
// N/ST + Δ.
func BenchmarkAblationSteinerPacking(b *testing.B) {
	n := 256
	for _, p := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("clique%d", p), func(b *testing.B) {
			g := topology.Clique(p)
			K := make([]int, p)
			for i := range K {
				K[i] = i
			}
			st := 0
			for i := 0; i < b.N; i++ {
				// Exact family packing (zigzag/Walecki decomposition).
				st = flow.STCount(g, K, g.N())
			}
			b.ReportMetric(float64(st), "ST")
			b.ReportMetric(float64(n/st+p), "boundN/ST+Δ")
			b.ReportMetric(float64(n+2), "singleTreeBound")
		})
	}
}
