package faqs

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faq"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// TestMaterializePublicAPI drives the façade end to end: materialize a
// count query, interleave inserts and deletes through TupleUpdate, and
// check every answer against a from-scratch Solve of an equivalently
// mutated query.
func TestMaterializePublicAPI(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	q := buildTemplate(t, Count, templates[0].spec, templates[0].free, nil, 41, 30, 8)

	m, err := e.Materialize(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Strategy() != "ring" {
		t.Fatalf("count strategy = %q, want ring", m.Strategy())
	}

	want, err := e.Solve(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if err := sameAnswer(got, want, true); err != nil {
		t.Fatalf("initial answer: %v", err)
	}

	// Insert a valued tuple and a default-valued (weight 1) tuple, then
	// delete the first again: the view must land back on a Solve of the
	// query with only the weight-1 tuple added.
	three := 3.0
	if err := m.Update(ctx, 2, []TupleUpdate{{Tuple: []int{7, 7}, Value: &three}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(ctx, 2, []TupleUpdate{{Tuple: []int{6, 5}}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(ctx, 2, nil, []TupleUpdate{{Tuple: []int{7, 7}, Value: &three}}); err != nil {
		t.Fatal(err)
	}

	q2 := buildTemplate(t, Count, templates[0].spec, templates[0].free, nil, 41, 30, 8)
	tq := q2.typed.(*faq.Query[int64])
	tq.Factors[2] = addTupleCount(tq, 2, []int{6, 5}, 1)
	want2 := referenceSolve(t, q2)
	got2, err := m.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if err := sameAnswer(got2, want2, true); err != nil {
		t.Fatalf("after updates: %v", err)
	}

	// Empty batches are rejected without touching the view.
	if err := m.Update(ctx, 2, nil, nil); err == nil {
		t.Fatal("empty update batch must error")
	}
	st := e.Stats()
	var updates int64
	for _, ss := range st.Services {
		updates += ss.Updates
	}
	if updates != 3 {
		t.Fatalf("engine stats updates = %d, want 3", updates)
	}

	m.Close()
	m.Close() // idempotent
	if _, err := m.Answer(); err == nil {
		t.Fatal("Answer after Close must error")
	}
}

// TestMaterializeFallbackShapeRejected pins the typed error for shapes
// the incremental engine cannot maintain.
func TestMaterializeFallbackShapeRejected(t *testing.T) {
	e := NewEngine()
	// Free variables at both ends of a path: brute-force fallback shape.
	qb := NewQuery(Count).Domain(6).Free("A", "C")
	rb := NewRelationBuilder(MustSchema("A", "B"))
	rb.Add(0, 1)
	r1, err := rb.Relation()
	if err != nil {
		t.Fatal(err)
	}
	rb = NewRelationBuilder(MustSchema("B", "C"))
	rb.Add(1, 2)
	r2, err := rb.Relation()
	if err != nil {
		t.Fatal(err)
	}
	q, err := qb.Factor(r1).Factor(r2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Materialize(context.Background(), q); !errors.Is(err, faq.ErrFreeOutsideRoot) {
		t.Fatalf("err = %v, want ErrFreeOutsideRoot", err)
	}
}

func addTupleCount(tq *faq.Query[int64], e int, row []int, v int64) *relation.Relation[int64] {
	b := relation.NewBuilder(semiring.Count{}, tq.H.Edge(e))
	f := tq.Factors[e]
	for i := 0; i < f.Len(); i++ {
		b.AddRow(f.Tuple(i), f.Value(i))
	}
	b.Add(row, v)
	return b.Build()
}
