package faqs

import (
	"math/rand"
	"strings"
	"testing"
)

// TestSchemaValidation pins NewSchema's error paths.
func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema: want error")
	}
	if _, err := NewSchema("A", "A"); err == nil {
		t.Error("duplicate attribute: want error")
	}
	if _, err := NewSchema("A", ""); err == nil {
		t.Error("empty attribute name: want error")
	}
	if s, err := NewSchema("A", "B"); err != nil || s.Arity() != 2 {
		t.Errorf("valid schema: %v, arity %d", err, s.Arity())
	}
}

// TestRelationBuilderValidation pins the builder's error accumulation:
// arity mismatches and Add/AddValued mixing error at Relation(), never
// panic.
func TestRelationBuilderValidation(t *testing.T) {
	sch := MustSchema("A", "B")
	if _, err := NewRelationBuilder(sch).Add(1).Relation(); err == nil {
		t.Error("short tuple: want error")
	}
	if _, err := NewRelationBuilder(sch).Add(1, 2, 3).Relation(); err == nil {
		t.Error("long tuple: want error")
	}
	if _, err := NewRelationBuilder(sch).Add(1, 2).AddValued(3, 1, 2).Relation(); err == nil {
		t.Error("mixed Add/AddValued: want error")
	}
	if _, err := NewRelationBuilder(nil).Add(1).Relation(); err == nil {
		t.Error("nil schema: want error")
	}
	b := NewRelationBuilder(sch).Add(1, 2)
	if b.Err() != nil || b.Len() != 1 {
		t.Errorf("valid builder: err=%v len=%d", b.Err(), b.Len())
	}
}

// TestQueryBuilderValidation pins Build's error paths — every malformed
// input must error, never panic.
func TestQueryBuilderValidation(t *testing.T) {
	rel := func(attrs ...string) *Relation {
		r, err := NewRelationBuilder(MustSchema(attrs...)).Add(make([]int, len(attrs))...).Relation()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cases := map[string]*QueryBuilder{
		"no factors":      NewQuery(Count).Domain(4),
		"zero domain":     NewQuery(Count).Factor(rel("A")).Domain(0),
		"negative domain": NewQuery(Count).Factor(rel("A")).Domain(-3),
		// int32 tuple storage: a wider domain would let range-checked
		// values wrap modulo 2^32 into the valid domain.
		"domain beyond int32": NewQuery(Count).Factor(rel("A")).Domain(1 << 33),
		"nil factor":          NewQuery(Count).Factor(nil).Domain(4),
		"unknown free":        NewQuery(Count).Factor(rel("A")).Free("Z").Domain(4),
		"agg on free":         NewQuery(Count).Factor(rel("A", "B")).Free("B").Aggregate("B", AggProduct).Domain(4),
		"agg unknown var":     NewQuery(Count).Factor(rel("A")).Aggregate("Z", AggProduct).Domain(4),
		"agg invalid op":      NewQuery(Count).Factor(rel("A", "B")).Aggregate("B", Aggregate("bogus")).Domain(4),
		"agg max over count":  NewQuery(Count).Factor(rel("A", "B")).Aggregate("B", AggMax).Domain(4),
		"agg conflict":        NewQuery(SumProduct).Factor(rel("A", "B")).Aggregate("B", AggMax).Aggregate("B", AggProduct).Domain(4),
		"unregistered":        NewQuery(Semiring{}).Factor(rel("A")).Domain(4),
	}
	for name, qb := range cases {
		if _, err := qb.Build(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}

	// Out-of-domain tuple values error at Build.
	r2, err := NewRelationBuilder(MustSchema("A")).Add(7).Relation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuery(Count).Factor(r2).Domain(4).Build(); err == nil {
		t.Error("tuple value outside domain: want error")
	}
	r3, err := NewRelationBuilder(MustSchema("A")).Add(-1).Relation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuery(Count).Factor(r3).Domain(4).Build(); err == nil {
		t.Error("negative tuple value: want error")
	}

	// AggMax is valid over SumProduct; AggProduct everywhere.
	q, err := NewQuery(SumProduct).
		Factor(rel("A", "B")).Factor(rel("B", "C")).
		Free("A").Aggregate("B", AggProduct).Aggregate("C", AggMax).
		Domain(4).Build()
	if err != nil || q == nil {
		t.Errorf("valid general FAQ: %v", err)
	}
}

// TestSemiringRegistry pins the registry surface.
func TestSemiringRegistry(t *testing.T) {
	names := SemiringNames()
	want := []string{"bool", "count", "sumproduct", "minplus", "maxtimes", "f2"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("SemiringNames = %v, want %v", names, want)
	}
	for _, name := range names {
		s, ok := SemiringByName(name)
		if !ok || s.Name() != name {
			t.Errorf("SemiringByName(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := SemiringByName("nope"); ok {
		t.Error("SemiringByName(nope): want !ok")
	}
}

// fuzz name pool: includes empty and duplicate-prone names so malformed
// schemas are reachable.
var fuzzNames = []string{"A", "B", "C", "D", "E", "A", ""}

// FuzzQueryBuilder drives the whole public building surface with
// pseudo-random (often malformed) input: schemas, tuples, values, free
// variables, aggregates, domains. The contract under fuzz is exactly
// the library contract — malformed input errors, it never panics.
func FuzzQueryBuilder(f *testing.F) {
	f.Add(int64(1), 4, 3, uint8(2))
	f.Add(int64(2), 0, 0, uint8(0))
	f.Add(int64(3), -5, 9, uint8(255))
	f.Add(int64(4), 2, 1, uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, dom, nTuples int, knobs uint8) {
		r := rand.New(rand.NewSource(seed))
		semIdx := int(knobs) % (len(registry) + 1)
		var qb *QueryBuilder
		if semIdx == len(registry) {
			qb = NewQuery(Semiring{name: "zero-value"})
		} else {
			qb = NewQuery(registry[semIdx])
		}
		nEdges := 1 + r.Intn(4)
		if knobs&1 != 0 {
			nEdges = 0
		}
		if nTuples < 0 {
			nTuples = -nTuples
		}
		nTuples %= 16
		// Cap the domain so product aggregates (which sweep the domain)
		// and brute-force fallbacks stay cheap; Build still sees invalid
		// (≤ 0) domains.
		if dom > 64 {
			dom %= 64
		}
		for e := 0; e < nEdges; e++ {
			arity := 1 + r.Intn(3)
			attrs := make([]string, arity)
			for i := range attrs {
				attrs[i] = fuzzNames[r.Intn(len(fuzzNames))]
			}
			sch, err := NewSchema(attrs...)
			if err != nil {
				continue // malformed schema: builder path exercised above
			}
			rb := NewRelationBuilder(sch)
			for ti := 0; ti < nTuples; ti++ {
				tuple := make([]int, arity)
				if knobs&2 != 0 && ti == 0 {
					tuple = make([]int, arity+1) // wrong arity
				}
				for i := range tuple {
					tuple[i] = r.Intn(20) - 5 // may be negative or ≥ dom
				}
				if knobs&4 != 0 {
					rb.AddValued(r.Float64()*4-1, tuple...)
				} else {
					rb.Add(tuple...)
				}
			}
			rel, err := rb.Relation()
			if err != nil {
				continue
			}
			qb.Factor(rel)
		}
		if knobs&8 != 0 {
			qb.Free(fuzzNames[r.Intn(len(fuzzNames))])
		}
		if knobs&16 != 0 {
			aggs := []Aggregate{AggProduct, AggMax, Aggregate("bogus")}
			qb.Aggregate(fuzzNames[r.Intn(len(fuzzNames))], aggs[r.Intn(len(aggs))])
		}
		q, err := qb.Domain(dom).Build()
		if err != nil {
			return // malformed input must error — and it did, without panicking
		}
		// A query that built must also solve (tiny data; budget-free).
		if _, err := fuzzEngine.Solve(nil, q); err != nil {
			t.Fatalf("built query %v failed to solve: %v", q, err)
		}
	})
}

// fuzzEngine is shared across fuzz iterations so plan compilation is
// amortized (shapes repeat under the fuzzer).
var fuzzEngine = NewEngine(WithPlanCache(512))
