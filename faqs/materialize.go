package faqs

import (
	"context"
	"fmt"

	"repro/internal/delta"
	"repro/internal/service"
)

// TupleUpdate is one inserted or deleted tuple of a factor, in the
// factor's attribute order. Value carries the annotation in the
// semiring's float encoding (the same encoding QueryBuilder.Values and
// the wire accept); nil means the semiring's multiplicative identity 1,
// matching how plain tuples are annotated at build time.
type TupleUpdate struct {
	Tuple []int    `json:"tuple"`
	Value *float64 `json:"value,omitempty"`
}

// Materialized is a standing incremental view over one query: the
// engine retains every GHD node's message relation and re-answers
// updates by propagating semiring deltas up only the affected path
// (exact delta rules for count/sumproduct/f2, support counting for
// bool, and a documented per-node recompute fallback for the idempotent
// semirings and general FAQs). Close releases the retained state.
//
// A Materialized is safe for concurrent use; each Update is atomic —
// on any error the view is unchanged and remains usable.
type Materialized struct {
	q        *Query
	strategy delta.Strategy
	update   func(ctx context.Context, factor int, inserts, deletes []TupleUpdate) error
	answer   func() (*Result, error)
	closeFn  func()
}

// Materialize builds a standing incremental view of q. The query is
// planned and admitted exactly like Solve; shapes that would need the
// brute-force fallback (free variables outside every root bag) cannot
// be maintained incrementally and fail with a typed error.
func (e *Engine) Materialize(ctx context.Context, q *Query) (*Materialized, error) {
	r, err := e.runnerFor(q)
	if err != nil {
		return nil, err
	}
	return r.materialize(ctx, q)
}

// Update applies one batch of inserts and deletes against factor
// (index into the query's factor list, in declaration order) and
// re-answers incrementally. Deleting a tuple that was never inserted
// (or over-deleting a bool tuple's support) fails typed and leaves the
// view unchanged.
func (m *Materialized) Update(ctx context.Context, factor int, inserts, deletes []TupleUpdate) error {
	return m.update(ctx, factor, inserts, deletes)
}

// Answer returns the current materialized answer in the same shape
// Solve returns.
func (m *Materialized) Answer() (*Result, error) {
	return m.answer()
}

// Strategy names the maintenance strategy in use: "ring", "support",
// or "recompute".
func (m *Materialized) Strategy() string { return string(m.strategy) }

// Close releases the retained messages. Idempotent; subsequent Update
// and Answer calls fail.
func (m *Materialized) Close() { m.closeFn() }

// materialize is the typed implementation behind Engine.Materialize.
func (r *typedRunner[T]) materialize(ctx context.Context, q *Query) (*Materialized, error) {
	tq, err := r.typedQuery(q)
	if err != nil {
		return nil, err
	}
	mz, _, err := r.svc.Materialize(ctx, tq)
	if err != nil {
		return nil, err
	}
	conv := func(ups []TupleUpdate) []delta.Tuple[T] {
		out := make([]delta.Tuple[T], len(ups))
		for i, u := range ups {
			v := r.im.s.One()
			if u.Value != nil {
				v = r.im.conv(*u.Value)
			}
			out[i] = delta.Tuple[T]{Row: u.Tuple, Val: v}
		}
		return out
	}
	return &Materialized{
		q:        q,
		strategy: mz.Strategy(),
		update: func(ctx context.Context, factor int, inserts, deletes []TupleUpdate) error {
			if len(inserts) == 0 && len(deletes) == 0 {
				return fmt.Errorf("faqs: empty update batch for factor %d", factor)
			}
			return mz.Update(ctx, delta.Batch[T]{
				Edge:    factor,
				Inserts: conv(inserts),
				Deletes: conv(deletes),
			})
		},
		answer: func() (*Result, error) {
			ans, err := mz.Answer()
			if err != nil {
				return nil, err
			}
			return r.toResult(q, ans, (*service.Info)(nil)), nil
		},
		closeFn: mz.Close,
	}, nil
}
