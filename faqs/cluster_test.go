package faqs

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// startFleet launches n in-process faqw workers on loopback listeners.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w, err := ServeWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
		if !strings.Contains(addrs[i], ":") {
			t.Fatalf("worker address %q has no port", addrs[i])
		}
	}
	return addrs
}

// TestEngineClusterDifferential is the façade-level differential: the
// same queries served by a local engine and by a cluster-backed engine
// over three real workers must produce identical results — schemas,
// tuples, and (for exact semirings) bit-identical values.
func TestEngineClusterDifferential(t *testing.T) {
	addrs := startFleet(t, 3)
	clustered := NewEngine(WithClusterWorkers(addrs...))
	defer clustered.Close()
	local := NewEngine()
	defer local.Close()

	if err := clustered.PingCluster(context.Background()); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if _, ok := local.ClusterStats(); ok {
		t.Fatal("local engine claims a worker fleet")
	}

	solves := 0
	for _, tpl := range templates {
		for _, sem := range []Semiring{Count, Bool, F2} {
			q := buildTemplate(t, sem, tpl.spec, tpl.free, nil, 1234, 40, 6)
			want, err := local.Solve(context.Background(), q)
			if err != nil {
				t.Fatalf("%s/%s local: %v", tpl.name, sem, err)
			}
			got, err := clustered.Solve(context.Background(), q)
			if err != nil {
				t.Fatalf("%s/%s cluster: %v", tpl.name, sem, err)
			}
			if !reflect.DeepEqual(got.Schema, want.Schema) ||
				!reflect.DeepEqual(got.Tuples, want.Tuples) ||
				!reflect.DeepEqual(got.Values, want.Values) {
				t.Fatalf("%s/%s: cluster result differs from local", tpl.name, sem)
			}
			solves++
		}
	}
	st, ok := clustered.ClusterStats()
	if !ok {
		t.Fatal("cluster engine reports no fleet")
	}
	if st.Workers != 3 || st.Solves != int64(solves) {
		t.Fatalf("cluster stats %+v, want %d solves on 3 workers", st, solves)
	}
	if st.SolvePayloadBytes == 0 || st.WireOutBytes == 0 {
		t.Fatalf("cluster byte accounting empty: %+v", st)
	}
}

// TestEngineClusterFallback: shapes the coordinator cannot shard (a
// per-variable max) still serve correctly on a cluster-backed engine —
// via the local pass — and never touch the fleet.
func TestEngineClusterFallback(t *testing.T) {
	addrs := startFleet(t, 2)
	clustered := NewEngine(WithClusterWorkers(addrs...))
	defer clustered.Close()
	local := NewEngine()
	defer local.Close()

	build := func(t *testing.T) *Query {
		rb := NewRelationBuilder(MustSchema("A", "B"))
		rb.AddValued(0.5, 0, 1)
		rb.AddValued(1.5, 0, 2)
		rb.AddValued(2.0, 1, 1)
		rel, err := rb.Relation()
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewQuery(SumProduct).Factor(rel).Free("A").
			Aggregate("B", AggMax).Domain(4).Build()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	want, err := local.Solve(context.Background(), build(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := clustered.Solve(context.Background(), build(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tuples, want.Tuples) || !reflect.DeepEqual(got.Values, want.Values) {
		t.Fatal("fallback result differs from local")
	}
	if st, _ := clustered.ClusterStats(); st.Solves != 0 {
		t.Fatalf("non-distributable query ran %d cluster solves", st.Solves)
	}
}

// TestWithClusterWorkersBlankAddrs: blank addresses are dropped; a list
// with no usable address leaves the engine purely local.
func TestWithClusterWorkersBlankAddrs(t *testing.T) {
	e := NewEngine(WithClusterWorkers("", ""))
	defer e.Close()
	if _, ok := e.ClusterStats(); ok {
		t.Fatal("engine built a fleet out of blank addresses")
	}
	if err := e.PingCluster(context.Background()); err != nil {
		t.Fatalf("PingCluster on a local engine: %v", err)
	}
}
