package faqs

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faq"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/service"
)

// Semiring identifies one registered commutative semiring. The registry
// is the only way to obtain one — Bool, Count, SumProduct, MinPlus,
// MaxTimes, F2, or SemiringByName — so every Semiring value in a built
// query is backed by a typed implementation.
type Semiring struct {
	name string
	impl semiringImpl
}

// Name returns the registry name (also the wire name accepted by faqd).
func (s Semiring) Name() string { return s.name }

// String renders the semiring name.
func (s Semiring) String() string { return s.name }

// The registered semirings of the paper: Boolean conjunctive queries,
// join counting, PGM marginals, tropical shortest-path aggregation,
// Viterbi/MAP, and the F₂ matrix algebra of Section 6.
var (
	Bool = Semiring{"bool", impl[bool]{
		s:    semiring.Bool{},
		conv: func(v float64) bool { return v != 0 },
		back: func(v bool) float64 {
			if v {
				return 1
			}
			return 0
		},
	}}
	Count = Semiring{"count", impl[int64]{
		s:    semiring.Count{},
		conv: func(v float64) int64 { return int64(v) },
		back: func(v int64) float64 { return float64(v) },
	}}
	SumProduct = Semiring{"sumproduct", impl[float64]{
		s:    semiring.SumProduct{},
		conv: identFloat,
		back: identFloat,
		extraAggs: map[Aggregate]semiring.Op[float64]{
			// max shares identities 0 and 1 with (ℝ≥0, +, ×): a valid
			// semiring aggregate per Section 5.
			AggMax: semiring.AddOf[float64](semiring.MaxTimes{}),
		},
	}}
	MinPlus = Semiring{"minplus", impl[float64]{
		s:    semiring.MinPlus{},
		conv: identFloat,
		back: identFloat,
	}}
	MaxTimes = Semiring{"maxtimes", impl[float64]{
		s:    semiring.MaxTimes{},
		conv: identFloat,
		back: identFloat,
	}}
	F2 = Semiring{"f2", impl[byte]{
		s: semiring.F2{},
		conv: func(v float64) byte {
			if v != 0 {
				return 1
			}
			return 0
		},
		back: func(v byte) float64 { return float64(v & 1) },
	}}
)

func identFloat(v float64) float64 { return v }

// registry lists the semirings in stable serving order.
var registry = []Semiring{Bool, Count, SumProduct, MinPlus, MaxTimes, F2}

// Semirings returns every registered semiring.
func Semirings() []Semiring { return append([]Semiring(nil), registry...) }

// SemiringNames returns the registry names, in order.
func SemiringNames() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.name
	}
	return out
}

// SemiringByName looks a semiring up by its registry name.
func SemiringByName(name string) (Semiring, bool) {
	for _, s := range registry {
		if s.name == name {
			return s, true
		}
	}
	return Semiring{}, false
}

// semiringImpl is the typed backing of one registry entry: it constructs
// typed queries from the shared builtSpec and typed runners over the
// internal service layer. Keeping it an interface erases the value type
// T from the public API while every execution stays fully typed inside.
type semiringImpl interface {
	supportsAgg(a Aggregate) bool
	// buildTyped returns the typed *faq.Query[T] plus its post-merge
	// size parameter N = max_e |R_e| (duplicate tuples ⊕-merge during
	// relation building, so the public tuple count overestimates it).
	buildTyped(spec *builtSpec) (any, int, error)
	newRunner(name string, cache *plan.Cache, clu *cluster.Client, opts []service.Option) runner
}

// runner is the per-semiring serving surface an Engine dispatches to.
type runner interface {
	solve(ctx context.Context, q *Query) (*Result, error)
	solveBatch(ctx context.Context, qs []*Query) ([]*Result, []error)
	explain(q *Query) (*Explain, error)
	materialize(ctx context.Context, q *Query) (*Materialized, error)
	network(q *Query, topo Topology, assign []int, output int) (*NetworkRun, error)
	stats() ServiceStats
}

// impl is the generic implementation behind every registry entry.
type impl[T any] struct {
	s         semiring.Semiring[T]
	conv      func(float64) T
	back      func(T) float64
	extraAggs map[Aggregate]semiring.Op[T]
}

func (im impl[T]) supportsAgg(a Aggregate) bool {
	if a == AggProduct {
		return true
	}
	_, ok := im.extraAggs[a]
	return ok
}

func (im impl[T]) opOf(a Aggregate) (semiring.Op[T], bool) {
	if a == AggProduct {
		return semiring.MulOf(im.s), true
	}
	op, ok := im.extraAggs[a]
	return op, ok
}

// buildTyped assembles the *faq.Query[T] of a validated builtSpec:
// factor relations via the columnar builder (explicit values through
// conv, plain tuples annotated with the semiring's 1) and the
// per-variable aggregate overrides.
func (im impl[T]) buildTyped(spec *builtSpec) (any, int, error) {
	factors := make([]*relation.Relation[T], len(spec.factors))
	for e, r := range spec.factors {
		rb := relation.NewBuilderHint(im.s, spec.edgeIDs[e], len(r.tuples))
		for ti, tuple := range r.tuples {
			v := im.s.One()
			if r.values != nil {
				v = im.conv(r.values[ti])
			}
			rb.Add(tuple, v)
		}
		factors[e] = rb.Build()
	}
	var varOps map[int]semiring.Op[T]
	for vid, a := range spec.aggs {
		op, ok := im.opOf(a)
		if !ok {
			return nil, 0, fmt.Errorf("faqs: aggregate %q is not valid over this semiring", a)
		}
		if varOps == nil {
			varOps = make(map[int]semiring.Op[T], len(spec.aggs))
		}
		varOps[vid] = op
	}
	q := &faq.Query[T]{S: im.s, H: spec.h, Factors: factors, Free: spec.free, DomSize: spec.dom, VarOps: varOps}
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	return q, q.MaxFactorSize(), nil
}

func (im impl[T]) newRunner(name string, cache *plan.Cache, clu *cluster.Client, opts []service.Option) runner {
	if clu != nil {
		// Copy before appending: the base option slice is shared across
		// every registry entry, so appending in place would leak one
		// semiring's distributed solver into the next runner built.
		if ds, err := cluster.NewSolver[T](clu, name); err == nil {
			opts = append(append([]service.Option(nil), opts...), service.WithDistributed(ds))
		}
	}
	return &typedRunner[T]{im: im, svc: service.New(im.s, name, cache, opts...)}
}

// typedRunner executes a Query through the internal service layer — the
// same fingerprint → cached plan → bind → GHD-pass path cmd/faqd serves,
// so library and daemon share one execution path.
type typedRunner[T any] struct {
	im  impl[T]
	svc *service.Service[T]
}

func (r *typedRunner[T]) typedQuery(q *Query) (*faq.Query[T], error) {
	tq, ok := q.typed.(*faq.Query[T])
	if !ok {
		return nil, fmt.Errorf("faqs: query built for semiring %s routed to the wrong runner", q.sem.name)
	}
	return tq, nil
}

func (r *typedRunner[T]) solve(ctx context.Context, q *Query) (*Result, error) {
	tq, err := r.typedQuery(q)
	if err != nil {
		return nil, err
	}
	ans, info, err := r.svc.Solve(ctx, tq)
	if err != nil {
		return nil, err
	}
	return r.toResult(q, ans, &info), nil
}

func (r *typedRunner[T]) solveBatch(ctx context.Context, qs []*Query) ([]*Result, []error) {
	results := make([]*Result, len(qs))
	errs := make([]error, len(qs))
	// Only well-typed queries reach the service batch — a nil entry
	// would dereference inside the pool fan-out instead of erroring.
	typed := make([]*faq.Query[T], 0, len(qs))
	idx := make([]int, 0, len(qs))
	for i, q := range qs {
		tq, err := r.typedQuery(q)
		if err != nil {
			errs[i] = err
			continue
		}
		typed = append(typed, tq)
		idx = append(idx, i)
	}
	answers, infos, svcErrs := r.svc.SolveBatch(ctx, typed)
	for k, i := range idx {
		if svcErrs[k] != nil {
			errs[i] = svcErrs[k]
			continue
		}
		results[i] = r.toResult(qs[i], answers[k], &infos[k])
	}
	return results, errs
}

func (r *typedRunner[T]) explain(q *Query) (*Explain, error) {
	tq, err := r.typedQuery(q)
	if err != nil {
		return nil, err
	}
	p, g, info, err := r.svc.Explain(tq)
	if err != nil {
		return nil, err
	}
	return buildExplain(q, p, g, &info), nil
}

func (r *typedRunner[T]) network(q *Query, topo Topology, assign []int, output int) (*NetworkRun, error) {
	tq, err := r.typedQuery(q)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(tq, topo.g, protocol.Assignment(assign), output)
	if err != nil {
		return nil, err
	}
	ans, rep, err := eng.Run()
	if err != nil {
		return nil, err
	}
	_, repT, err := eng.RunTrivial()
	if err != nil {
		return nil, err
	}
	b, err := eng.Bounds()
	if err != nil {
		return nil, err
	}
	return &NetworkRun{
		Answer:        r.toResult(q, ans, nil),
		Rounds:        rep.Rounds,
		Bits:          rep.Bits,
		TrivialRounds: repT.Rounds,
		TrivialBits:   repT.Bits,
		Bounds: NetworkBounds{
			Y: b.Y, N2: b.N2, Degeneracy: b.Degeneracy, Arity: b.Arity,
			MinCut: b.MinCut, Delta: b.Delta, ST: b.ST, N: b.N,
			Upper: b.Upper, Lower: b.Lower, LowerTilde: b.LowerTilde,
		},
	}, nil
}

func (r *typedRunner[T]) stats() ServiceStats {
	s := r.svc.Stats()
	return ServiceStats{
		Semiring: s.Semiring, Requests: s.Requests, Batches: s.Batches,
		Fallbacks: s.Fallbacks, Rejected: s.Rejected, Errors: s.Errors,
		Shed: s.Shed, DeadlineExceeded: s.DeadlineExceeded, Panics: s.Panics,
		Updates: s.Updates, DeltaFallbacks: s.DeltaFallbacks,
	}
}

// toResult renders a typed answer relation for the façade. Scalar
// answers (no free variables) always materialize exactly one row — the
// empty tuple with the aggregate value, the semiring's 0 when no tuple
// survived — so Result.Scalar never has to guess. info may be nil
// (distributed runs carry no serving metadata).
func (r *typedRunner[T]) toResult(q *Query, ans *relation.Relation[T], info *service.Info) *Result {
	res := &Result{
		Schema: make([]string, len(ans.Schema())),
		Tuples: make([][]int, ans.Len()),
		Values: make([]float64, ans.Len()),
	}
	for i, v := range ans.Schema() {
		res.Schema[i] = q.h.VertexName(v)
	}
	for i := 0; i < ans.Len(); i++ {
		t := ans.Tuple(i)
		row := make([]int, len(t))
		for j, x := range t {
			row[j] = int(x)
		}
		res.Tuples[i] = row
		res.Values[i] = r.im.back(ans.Value(i))
	}
	if ans.Arity() == 0 && ans.Len() == 0 {
		res.Tuples = [][]int{{}}
		res.Values = []float64{r.im.back(r.im.s.Zero())}
	}
	if info != nil {
		res.PlanHash = fmt.Sprintf("%016x", info.PlanHash)
		res.CacheHit = info.CacheHit
		res.Fallback = info.Fallback
		res.Stats = SolveStats{
			CanonNS: info.CanonNS, PlanNS: info.PlanNS, BindNS: info.BindNS,
			ExecNS: info.ExecNS, TotalNS: info.TotalNS,
		}
	}
	return res
}
