package faqs

import (
	"fmt"
	"strings"

	"repro/internal/ghd"
	"repro/internal/plan"
	"repro/internal/service"
)

// ExplainNode is one GHD node of an explained plan, rendered with the
// query's own attribute names.
type ExplainNode struct {
	// Bag is χ(v) as attribute names.
	Bag []string `json:"bag"`
	// Labels is |λ(v)|: the number of hyperedges covering the bag (1 for
	// the label-covered nodes of a GYO-GHD, more for a fat core root).
	Labels int `json:"labels"`
	// Parent is the parent node index, -1 for the root.
	Parent int `json:"parent"`
	// Internal reports whether the node counts toward y(H).
	Internal bool `json:"internal"`
	// TupleBound is the node's worst-case output cardinality at the
	// query's N: N for label-covered nodes (eq. 24), N^|χ(v)| for a fat
	// core root.
	TupleBound float64 `json:"tuple_bound"`
}

// Explain reports how a query would be served, without executing it:
// the cache fingerprint and hit/miss, the canonical decomposition bound
// to the query's variable names, and the paper's structural bounds.
type Explain struct {
	Semiring string `json:"semiring"`
	// Fingerprint is the variable-renaming-invariant plan hash; two
	// queries with the same fingerprint share one compiled plan.
	Fingerprint string `json:"fingerprint"`
	// CacheHit reports whether the plan was already resident (false on
	// the compile that Explain itself triggered).
	CacheHit bool `json:"cache_hit"`
	// Fallback marks shapes violating the paper's free-variable
	// restriction: no GHD pass can deliver the marginal, so Solve would
	// take the brute-force path (or reject, if disabled).
	Fallback bool `json:"fallback"`

	// Y is the internal-node-width y(H) of the chosen decomposition
	// (Definition 2.9), N2 the core size n₂(H) (Definition 3.1), Width
	// the hypertree width max_v |λ(v)| of the decomposition (1 iff the
	// query is acyclic), Depth the root-to-leaf height.
	Y     int `json:"y"`
	N2    int `json:"n2"`
	Width int `json:"width"`
	Depth int `json:"depth"`

	// N is the query's size parameter max_e |R_e|; EstimateBytes the
	// admission-control bound WithMemoryBudget compares against.
	N             int     `json:"n"`
	EstimateBytes float64 `json:"estimate_bytes"`
	// CompileNS is the plan's compile cost — what every later cache hit
	// saves.
	CompileNS int64 `json:"compile_ns"`

	// Nodes lists the decomposition nodes (empty for Fallback shapes);
	// Tree renders them as an ASCII tree rooted at the solve root.
	Nodes []ExplainNode `json:"nodes,omitempty"`
	Tree  string        `json:"tree,omitempty"`
}

// buildExplain renders the service layer's explain data (compiled plan,
// request-bound GHD, serving info) for the façade. g is nil for
// fallback shapes.
func buildExplain(q *Query, p *plan.Plan, g *ghd.GHD, info *service.Info) *Explain {
	ex := &Explain{
		Semiring:      q.sem.name,
		Fingerprint:   fmt.Sprintf("%016x", p.Hash),
		CacheHit:      info.CacheHit,
		Fallback:      p.Fallback,
		Y:             p.Y,
		N2:            p.N2,
		Depth:         p.Depth,
		N:             q.n,
		EstimateBytes: p.EstimateBytes(q.n),
		CompileNS:     p.CompileNS,
	}
	if p.Fallback || g == nil {
		ex.Tree = "(no GHD plan: free variables outside every bag — brute-force fallback)"
		return ex
	}
	ex.Nodes = make([]ExplainNode, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		b := p.NodeBounds[v]
		if b.Labels > ex.Width {
			ex.Width = b.Labels
		}
		bag := make([]string, len(g.Bags[v]))
		for i, x := range g.Bags[v] {
			bag[i] = q.h.VertexName(x)
		}
		ex.Nodes[v] = ExplainNode{
			Bag:        bag,
			Labels:     b.Labels,
			Parent:     g.Parent[v],
			Internal:   b.Internal,
			TupleBound: b.TupleBound(q.n),
		}
	}
	ex.Tree = renderTree(g, ex.Nodes)
	return ex
}

// renderTree draws the rooted decomposition, one node per line:
//
//	[A B C] λ=3 ≤N^3
//	├── [C D] ≤N
//	│   └── [D E] ≤N
//	└── [B F] ≤N
func renderTree(g *ghd.GHD, nodes []ExplainNode) string {
	ch := g.Children()
	var sb strings.Builder
	var walk func(v int, prefix string, last bool, root bool)
	walk = func(v int, prefix string, last bool, root bool) {
		line := prefix
		childPrefix := prefix
		if !root {
			if last {
				line += "└── "
				childPrefix += "    "
			} else {
				line += "├── "
				childPrefix += "│   "
			}
		}
		n := nodes[v]
		line += "[" + strings.Join(n.Bag, " ") + "]"
		if n.Labels > 1 {
			line += fmt.Sprintf(" λ=%d ≤N^%d", n.Labels, len(n.Bag))
		} else {
			line += " ≤N"
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
		for i, c := range ch[v] {
			walk(c, childPrefix, i == len(ch[v])-1, false)
		}
	}
	walk(g.Root, "", true, true)
	return strings.TrimRight(sb.String(), "\n")
}
