package faqs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// resilienceQuery builds one Count path query.
func resilienceQuery(t *testing.T, seed int64) *Query {
	t.Helper()
	tpl := templates[0]
	return buildTemplate(t, Count, tpl.spec, tpl.free, nil, seed, 200, 24)
}

// TestChaosEngineDeadline pins faqs.WithDeadline: a solve that cannot finish
// inside the deadline returns context.DeadlineExceeded (typed, prompt)
// and the engine counts it; a generous deadline changes nothing.
func TestChaosEngineDeadline(t *testing.T) {
	defer DisableFailpoints()
	q := resilienceQuery(t, 11)

	e := NewEngine(WithDeadline(30 * time.Second))
	if _, err := e.Solve(context.Background(), q); err != nil {
		t.Fatalf("generous deadline broke a healthy solve: %v", err)
	}

	// A per-hit delay larger than the deadline guarantees the request is
	// still running when the deadline lands.
	tight := NewEngine(WithDeadline(20 * time.Millisecond))
	if err := EnableFailpoints("service.solve=delay:10s"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err := tight.Solve(context.Background(), q)
	DisableFailpoints()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow solve under 20ms deadline returned %v, want DeadlineExceeded", err)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("deadline not prompt: %v", el)
	}
	found := false
	for _, s := range tight.Stats().Services {
		if s.DeadlineExceeded > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("deadline hit not counted in ServiceStats.DeadlineExceeded")
	}
}

// TestChaosEngineMaxInFlight pins faqs.WithMaxInFlight: with the single slot
// held by a deliberately slow request, concurrent solves shed with a
// typed ErrOverloaded and the shed counter moves; the engine serves
// normally once the slot frees.
func TestChaosEngineMaxInFlight(t *testing.T) {
	defer DisableFailpoints()
	q := resilienceQuery(t, 12)
	e := NewEngine(WithMaxInFlight(1))

	// Warm the plan first so the slow request's delay dominates.
	if _, err := e.Solve(context.Background(), q); err != nil {
		t.Fatal(err)
	}

	if err := EnableFailpoints("service.solve=delay:300ms@once"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Solve(context.Background(), q); err != nil {
			t.Errorf("slot-holding solve failed: %v", err)
		}
	}()
	// Wait until the slow request reaches the armed site (it holds the
	// gate slot the whole time).
	fp := RegisterFailpoint("service.solve")
	deadline := time.Now().Add(10 * time.Second)
	for fp.Fired() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fp.Fired() == 0 {
		t.Fatal("slot-holding solve never reached the failpoint")
	}
	_, err := e.Solve(context.Background(), q)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second in-flight solve returned %v, want ErrOverloaded", err)
	}
	wg.Wait()
	DisableFailpoints()

	shed := int64(0)
	for _, s := range e.Stats().Services {
		shed += s.Shed
	}
	if shed == 0 {
		t.Fatal("shed request not counted in ServiceStats.Shed")
	}
	if _, err := e.Solve(context.Background(), q); err != nil {
		t.Fatalf("engine unusable after shedding: %v", err)
	}
}

// TestChaosEnginePanicContainment pins the runtime "typed errors, never
// panics" contract at the façade: an injected kernel panic surfaces as
// ErrInternal (never crossing Solve as a panic), the panic counter
// moves, and the engine keeps serving.
func TestChaosEnginePanicContainment(t *testing.T) {
	defer DisableFailpoints()
	q := resilienceQuery(t, 13)
	e := NewEngine()

	if err := EnableFailpoints("relation.join=panic@once"); err != nil {
		t.Fatal(err)
	}
	_, err := e.Solve(context.Background(), q)
	DisableFailpoints()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("injected kernel panic returned %v, want ErrInternal", err)
	}

	panics := int64(0)
	for _, s := range e.Stats().Services {
		panics += s.Panics
	}
	if panics == 0 {
		t.Fatal("recovered panic not counted in ServiceStats.Panics")
	}

	res, err := e.Solve(context.Background(), q)
	if err != nil {
		t.Fatalf("engine unusable after contained panic: %v", err)
	}
	want := referenceSolve(t, q)
	if len(res.Tuples) != len(want.Tuples) {
		t.Fatal("post-panic answer differs from reference")
	}
}

// TestChaosFailpointSpecErrors pins the façade's spec validation.
func TestChaosFailpointSpecErrors(t *testing.T) {
	defer DisableFailpoints()
	if err := EnableFailpoints("service.solve=flood"); err == nil {
		t.Fatal("malformed mode accepted")
	}
	if err := EnableFailpoints("service.solve=error@1in0"); err == nil {
		t.Fatal("malformed predicate accepted")
	}
	names := FailpointNames()
	found := false
	for _, n := range names {
		if n == "service.solve" {
			found = true
		}
	}
	if !found {
		t.Fatalf("service.solve missing from FailpointNames: %v", names)
	}
}
