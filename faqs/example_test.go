package faqs_test

import (
	"context"
	"fmt"
	"log"

	"repro/faqs"
)

// ExampleEngine_Solve is the library quickstart: two relations joined on
// B, counting the matches per value of A.
func ExampleEngine_Solve() {
	r, err := faqs.NewRelationBuilder(faqs.MustSchema("A", "B")).
		Add(0, 1).Add(1, 1).Add(2, 3).Relation()
	if err != nil {
		log.Fatal(err)
	}
	s, err := faqs.NewRelationBuilder(faqs.MustSchema("B", "C")).
		Add(1, 0).Add(1, 2).Add(3, 2).Relation()
	if err != nil {
		log.Fatal(err)
	}
	q, err := faqs.NewQuery(faqs.Count).
		Factor(r).Factor(s).
		Free("A").
		Domain(4).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	engine := faqs.NewEngine(faqs.WithPlanCache(64))
	res, err := engine.Solve(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	for i, tuple := range res.Tuples {
		fmt.Printf("A=%d count=%v\n", tuple[0], res.Values[i])
	}
	res2, _ := engine.Solve(context.Background(), q)
	fmt.Printf("plan cached on repeat: %v\n", res2.CacheHit)
	// Output:
	// A=0 count=2
	// A=1 count=2
	// A=2 count=1
	// plan cached on repeat: true
}

// ExampleEngine_Explain inspects the plan of a path query: the GHD tree,
// the paper's widths, and the per-node output bounds — without executing
// anything.
func ExampleEngine_Explain() {
	qb := faqs.NewQuery(faqs.Bool).Domain(8).Free("A")
	for _, edge := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}} {
		rel, err := faqs.NewRelationBuilder(faqs.MustSchema(edge[0], edge[1])).
			Add(1, 2).Add(3, 4).Relation()
		if err != nil {
			log.Fatal(err)
		}
		qb.Factor(rel)
	}
	q, err := qb.Build()
	if err != nil {
		log.Fatal(err)
	}

	engine := faqs.NewEngine()
	ex, err := engine.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("y(H)=%d n2(H)=%d width=%d depth=%d fallback=%v\n",
		ex.Y, ex.N2, ex.Width, ex.Depth, ex.Fallback)
	fmt.Println(ex.Tree)
	// Output:
	// y(H)=2 n2(H)=0 width=1 depth=2 fallback=false
	// [A B] ≤N
	// └── [B C] ≤N
	//     └── [C D] ≤N
}

// ExampleEngine_SolveOnNetwork runs a star BCQ distributed over a
// 4-player line and reports the measured protocol cost next to the
// paper's bounds.
func ExampleEngine_SolveOnNetwork() {
	qb := faqs.NewQuery(faqs.Bool).Domain(8)
	for _, leaf := range []string{"B", "C", "D"} {
		rel, err := faqs.NewRelationBuilder(faqs.MustSchema("A", leaf)).
			Add(5, 0).Add(5, 1).Add(2, 3).Relation()
		if err != nil {
			log.Fatal(err)
		}
		qb.Factor(rel)
	}
	q, err := qb.Build()
	if err != nil {
		log.Fatal(err)
	}
	line, err := faqs.Line(3)
	if err != nil {
		log.Fatal(err)
	}
	run, err := faqs.NewEngine().SolveOnNetwork(q, line, []int{0, 1, 2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	answer, err := run.Answer.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("satisfiable=%v y(H)=%d rounds measured=%d trivial=%d\n",
		answer != 0, run.Bounds.Y, run.Rounds, run.TrivialRounds)
	// Output:
	// satisfiable=true y(H)=1 rounds measured=5 trivial=6
}
