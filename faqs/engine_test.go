package faqs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/service"
)

// templates are the faqload mixed workload shapes: a long path, a
// symmetric star, a balanced binary tree, and a cyclic triangle with a
// pendant edge.
var templates = []struct {
	name string
	spec string
	free string
}{
	{"path7", "A0,A1;A1,A2;A2,A3;A3,A4;A4,A5;A5,A6;A6,A7", "A0"},
	{"star6", "C,B1;C,B2;C,B3;C,B4;C,B5;C,B6", "C"},
	{"tree6", "R,L;R,T;L,LL;L,LR;T,TL;T,TR", "R"},
	{"tri-pendant", "A,B;B,C;A,C;C,D", "C"},
}

func parseSpec(spec string) [][]string {
	var edges [][]string
	for _, part := range strings.Split(spec, ";") {
		edges = append(edges, strings.Split(part, ","))
	}
	return edges
}

// buildTemplate instantiates one template over sem with deterministic
// random data: the data depends only on (seed, shape), never on the
// attribute names, so renamed variants carry identical relations.
func buildTemplate(t testing.TB, sem Semiring, spec, free string, rename func(string) string, seed int64, n, dom int) *Query {
	t.Helper()
	if rename == nil {
		rename = func(s string) string { return s }
	}
	r := rand.New(rand.NewSource(seed))
	qb := NewQuery(sem).Domain(dom).Free(rename(free))
	for _, names := range parseSpec(spec) {
		attrs := make([]string, len(names))
		for i, name := range names {
			attrs[i] = rename(name)
		}
		rb := NewRelationBuilder(MustSchema(attrs...))
		tuple := make([]int, len(attrs))
		for ti := 0; ti < n; ti++ {
			for i := range tuple {
				tuple[i] = r.Intn(dom)
			}
			// Deterministic values exercise every conversion; the float
			// is derived from the tuple so duplicate-merging stays
			// order-independent per semiring tolerance.
			rb.AddValued(0.5+float64(tuple[0]%7)/3, tuple...)
		}
		rel, err := rb.Relation()
		if err != nil {
			t.Fatal(err)
		}
		qb.Factor(rel)
	}
	q, err := qb.Build()
	if err != nil {
		t.Fatalf("build %s over %s: %v", spec, sem, err)
	}
	return q
}

// referenceSolve computes the per-request-planning reference answer via
// faq.Solve on the query's typed form — the acceptance baseline.
func referenceSolve(t testing.TB, q *Query) *Result {
	t.Helper()
	switch tq := q.typed.(type) {
	case *faq.Query[bool]:
		return refSolve(t, q, tq)
	case *faq.Query[int64]:
		return refSolve(t, q, tq)
	case *faq.Query[float64]:
		return refSolve(t, q, tq)
	case *faq.Query[byte]:
		return refSolve(t, q, tq)
	}
	t.Fatalf("unknown typed query %T", q.typed)
	return nil
}

func refSolve[T any](t testing.TB, q *Query, tq *faq.Query[T]) *Result {
	t.Helper()
	rel, err := faq.Solve(tq)
	if err != nil {
		t.Fatalf("faq.Solve: %v", err)
	}
	tr := &typedRunner[T]{im: q.sem.impl.(impl[T])}
	return tr.toResult(q, rel, nil)
}

func isExact(s Semiring) bool {
	return s.name == "bool" || s.name == "count" || s.name == "f2"
}

// sameAnswer compares two results: schemas and tuples must be identical;
// values exactly when exact, else within the float semirings'
// re-association tolerance.
func sameAnswer(a, b *Result, exact bool) error {
	if strings.Join(a.Schema, ",") != strings.Join(b.Schema, ",") {
		return fmt.Errorf("schema %v != %v", a.Schema, b.Schema)
	}
	if len(a.Tuples) != len(b.Tuples) {
		return fmt.Errorf("%d rows != %d rows", len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		if len(a.Tuples[i]) != len(b.Tuples[i]) {
			return fmt.Errorf("row %d arity differs", i)
		}
		for j := range a.Tuples[i] {
			if a.Tuples[i][j] != b.Tuples[i][j] {
				return fmt.Errorf("row %d differs: %v vs %v", i, a.Tuples[i], b.Tuples[i])
			}
		}
		av, bv := a.Values[i], b.Values[i]
		if exact {
			if av != bv {
				return fmt.Errorf("value %d: %v != %v (exact)", i, av, bv)
			}
			continue
		}
		diff := math.Abs(av - bv)
		scale := math.Max(math.Max(math.Abs(av), math.Abs(bv)), 1)
		if diff > 1e-9*scale {
			return fmt.Errorf("value %d: %v != %v (tolerance)", i, av, bv)
		}
	}
	return nil
}

// TestEngineMatchesDirectSolve is the acceptance contract driven
// entirely through the public API: for every registered semiring and
// every workload template, Engine.Solve equals per-request planning
// (faq.Solve) — bit-identical for exact semirings, tolerance-equal for
// the float ones.
func TestEngineMatchesDirectSolve(t *testing.T) {
	eng := NewEngine(WithPlanCache(64))
	for _, sem := range Semirings() {
		for _, tpl := range templates {
			q := buildTemplate(t, sem, tpl.spec, tpl.free, nil, 11, 40, 40)
			got, err := eng.Solve(context.Background(), q)
			if err != nil {
				t.Fatalf("%s/%s: %v", sem, tpl.name, err)
			}
			want := referenceSolve(t, q)
			if err := sameAnswer(got, want, isExact(sem)); err != nil {
				t.Errorf("%s/%s: engine vs faq.Solve: %v", sem, tpl.name, err)
			}
		}
	}
}

// TestEngineWorkerSweepBitIdentical pins the acceptance criterion that
// answers are bit-identical to faq.Solve for exact semirings at 1, 2,
// and 8 workers — and identical across worker counts.
func TestEngineWorkerSweepBitIdentical(t *testing.T) {
	exact := []Semiring{Bool, Count, F2}
	baseline := make(map[string]*Result)
	for _, w := range []int{1, 2, 8} {
		prev := SetDefaultWorkers(w)
		t.Cleanup(func() { SetDefaultWorkers(prev) })
		eng := NewEngine(WithPlanCache(64))
		for _, sem := range exact {
			for _, tpl := range templates {
				q := buildTemplate(t, sem, tpl.spec, tpl.free, nil, 23, 48, 48)
				got, err := eng.Solve(context.Background(), q)
				if err != nil {
					t.Fatalf("w=%d %s/%s: %v", w, sem, tpl.name, err)
				}
				want := referenceSolve(t, q)
				if err := sameAnswer(got, want, true); err != nil {
					t.Errorf("w=%d %s/%s: engine vs faq.Solve: %v", w, sem, tpl.name, err)
				}
				key := sem.name + "/" + tpl.name
				if w == 1 {
					baseline[key] = got
				} else if err := sameAnswer(got, baseline[key], true); err != nil {
					t.Errorf("%s: w=%d vs w=1: %v", key, w, err)
				}
			}
		}
		SetDefaultWorkers(prev)
	}
}

// TestRenameInvariance drives the plan cache through the public API:
// random bijective renamings of each template share one fingerprint and
// plan (cache hits from the second request on) while every variant's
// answer still matches its own per-request reference.
func TestRenameInvariance(t *testing.T) {
	eng := NewEngine(WithPlanCache(64))
	r := rand.New(rand.NewSource(99))
	for _, tpl := range templates {
		base := buildTemplate(t, Count, tpl.spec, tpl.free, nil, 31, 32, 32)
		first, err := eng.Solve(context.Background(), base)
		if err != nil {
			t.Fatalf("%s: %v", tpl.name, err)
		}
		if first.CacheHit {
			t.Errorf("%s: first solve hit the cache", tpl.name)
		}
		for trial := 0; trial < 8; trial++ {
			perm := r.Perm(64)
			rename := func(name string) string {
				// A deterministic bijection: each distinct name maps to a
				// fresh pooled name chosen by the permutation.
				return fmt.Sprintf("v%02d_%s", perm[int(hashName(name))%64], name)
			}
			q := buildTemplate(t, Count, tpl.spec, tpl.free, rename, 31, 32, 32)
			res, err := eng.Solve(context.Background(), q)
			if err != nil {
				t.Fatalf("%s trial %d: %v", tpl.name, trial, err)
			}
			if !res.CacheHit {
				t.Errorf("%s trial %d: renamed variant missed the cache", tpl.name, trial)
			}
			if res.PlanHash != first.PlanHash {
				t.Errorf("%s trial %d: fingerprint %s != %s", tpl.name, trial, res.PlanHash, first.PlanHash)
			}
			want := referenceSolve(t, q)
			if err := sameAnswer(res, want, true); err != nil {
				t.Errorf("%s trial %d: %v", tpl.name, trial, err)
			}
		}
	}
	if st := eng.Stats(); st.Cache.Compiles != int64(len(templates)) {
		t.Errorf("compiled %d plans for %d shapes", st.Cache.Compiles, len(templates))
	}
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// TestCachedEqualsFresh: a warm engine serving many data instances of
// one shape equals a cold engine (and the direct solver) on each — the
// cached≡fresh equivalence across every registered semiring.
func TestCachedEqualsFresh(t *testing.T) {
	warm := NewEngine(WithPlanCache(64))
	for _, sem := range Semirings() {
		for _, tpl := range templates {
			for seed := int64(0); seed < 4; seed++ {
				q := buildTemplate(t, sem, tpl.spec, tpl.free, nil, 100+seed, 24, 24)
				got, err := warm.Solve(context.Background(), q)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", sem, tpl.name, seed, err)
				}
				fresh := NewEngine(WithPlanCache(4))
				cold, err := fresh.Solve(context.Background(), q)
				if err != nil {
					t.Fatalf("%s/%s seed %d cold: %v", sem, tpl.name, seed, err)
				}
				if err := sameAnswer(got, cold, isExact(sem)); err != nil {
					t.Errorf("%s/%s seed %d cached vs fresh: %v", sem, tpl.name, seed, err)
				}
			}
		}
	}
}

// TestExplainWidths pins the acceptance criterion that Explain's widths
// match ghd.Minimize (via faq.PlanGHD) on the workload templates.
func TestExplainWidths(t *testing.T) {
	eng := NewEngine(WithPlanCache(64))
	for _, tpl := range templates {
		q := buildTemplate(t, Count, tpl.spec, tpl.free, nil, 7, 16, 16)
		ex, err := eng.Explain(q)
		if err != nil {
			t.Fatalf("%s: %v", tpl.name, err)
		}
		g, err := faq.PlanGHD(q.h, q.free)
		if err != nil {
			t.Fatalf("%s: PlanGHD: %v", tpl.name, err)
		}
		if ex.Y != g.InternalNodes() {
			t.Errorf("%s: Explain y=%d, Minimize y=%d", tpl.name, ex.Y, g.InternalNodes())
		}
		wantN2 := hypergraph.Decompose(q.h).N2()
		if ex.N2 != wantN2 {
			t.Errorf("%s: Explain n2=%d, Decompose n2=%d", tpl.name, ex.N2, wantN2)
		}
		wantWidth := 0
		for _, l := range g.Labels {
			if len(l) > wantWidth {
				wantWidth = len(l)
			}
		}
		if ex.Width != wantWidth {
			t.Errorf("%s: Explain width=%d, Minimize width=%d", tpl.name, ex.Width, wantWidth)
		}
		if len(ex.Nodes) != g.NumNodes() || ex.Tree == "" {
			t.Errorf("%s: %d explain nodes for %d GHD nodes, tree %q", tpl.name, len(ex.Nodes), g.NumNodes(), ex.Tree)
		}
		if ex.Fingerprint == "" || ex.EstimateBytes <= 0 {
			t.Errorf("%s: fingerprint %q, estimate %v", tpl.name, ex.Fingerprint, ex.EstimateBytes)
		}
	}
}

// TestMemoryBudget pins the acceptance criterion that WithMemoryBudget
// rejects an over-bound query with a typed error before execution.
func TestMemoryBudget(t *testing.T) {
	q := buildTemplate(t, Count, "A,B;B,C;A,C;C,D", "C", nil, 5, 64, 64)

	tight := NewEngine(WithMemoryBudget(4 << 10))
	_, err := tight.Solve(context.Background(), q)
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("tight budget: err = %v, want ErrOverBudget", err)
	}
	var be *service.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("tight budget: err %T is not a *service.BudgetError", err)
	}
	if be.BudgetBytes != 4<<10 || be.EstimateBytes <= float64(be.BudgetBytes) || be.N != q.MaxFactorSize() {
		t.Errorf("budget error fields: %+v", be)
	}
	if st := tight.Stats(); findService(st, "count").Rejected != 1 {
		t.Errorf("rejected counter: %+v", findService(st, "count"))
	}

	// The same query passes a generous budget, and the explain estimate
	// is exactly what admission compared against.
	roomy := NewEngine(WithMemoryBudget(1 << 30))
	res, err := roomy.Solve(context.Background(), q)
	if err != nil {
		t.Fatalf("roomy budget: %v", err)
	}
	if err := sameAnswer(res, referenceSolve(t, q), true); err != nil {
		t.Errorf("roomy budget answer: %v", err)
	}
	ex, err := roomy.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.EstimateBytes != be.EstimateBytes {
		t.Errorf("explain estimate %v != rejection estimate %v", ex.EstimateBytes, be.EstimateBytes)
	}

	// Batch requests are admitted per-request too.
	tight2 := NewEngine(WithMemoryBudget(4 << 10))
	_, errs := tight2.SolveBatch(context.Background(), []*Query{q})
	if !errors.Is(errs[0], ErrOverBudget) {
		t.Errorf("batch: err = %v, want ErrOverBudget", errs[0])
	}
}

func findService(st Stats, name string) ServiceStats {
	for _, s := range st.Services {
		if s.Semiring == name {
			return s
		}
	}
	return ServiceStats{}
}

// TestBruteForceFallbackPolicy: free variables outside every bag take
// the brute-force path by default and are rejected with typed errors
// when the fallback is disabled.
func TestBruteForceFallbackPolicy(t *testing.T) {
	// Free {A0, A2} on a path: no bag of the edge GHD covers both.
	q := buildTemplate(t, Count, "A0,A1;A1,A2", "A0", nil, 3, 16, 16)
	qb := NewQuery(Count).Domain(16)
	r := rand.New(rand.NewSource(3))
	for _, names := range parseSpec("A0,A1;A1,A2") {
		rb := NewRelationBuilder(MustSchema(names...))
		for i := 0; i < 16; i++ {
			rb.AddValued(1, r.Intn(16), r.Intn(16))
		}
		rel, err := rb.Relation()
		if err != nil {
			t.Fatal(err)
		}
		qb.Factor(rel)
	}
	qf, err := qb.Free("A0", "A2").Build()
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine()
	res, err := eng.Solve(context.Background(), qf)
	if err != nil {
		t.Fatalf("fallback solve: %v", err)
	}
	if !res.Fallback {
		t.Error("expected Fallback=true on the brute-force path")
	}
	if err := sameAnswer(res, referenceBrute(t, qf), true); err != nil {
		t.Errorf("fallback answer: %v", err)
	}

	strict := NewEngine(WithBruteForceFallback(false))
	_, err = strict.Solve(context.Background(), qf)
	if !errors.Is(err, ErrFallbackDisabled) || !errors.Is(err, ErrFreeOutsideRoot) {
		t.Errorf("strict: err = %v, want ErrFallbackDisabled wrapping ErrFreeOutsideRoot", err)
	}
	// Coverable shapes still work on the strict engine.
	if _, err := strict.Solve(context.Background(), q); err != nil {
		t.Errorf("strict on coverable shape: %v", err)
	}
}

func referenceBrute(t testing.TB, q *Query) *Result {
	t.Helper()
	tq := q.typed.(*faq.Query[int64])
	rel, err := faq.BruteForce(tq)
	if err != nil {
		t.Fatal(err)
	}
	tr := &typedRunner[int64]{im: q.sem.impl.(impl[int64])}
	return tr.toResult(q, rel, nil)
}

// TestSolveBatchMixedSemirings: one batch mixing semirings and repeated
// shapes — results align with inputs, repeated shapes hit the cache,
// nil entries error individually.
func TestSolveBatchMixedSemirings(t *testing.T) {
	eng := NewEngine(WithPlanCache(64))
	qs := []*Query{
		buildTemplate(t, Count, templates[0].spec, templates[0].free, nil, 1, 24, 24),
		buildTemplate(t, Bool, templates[1].spec, templates[1].free, nil, 2, 24, 24),
		nil,
		buildTemplate(t, Count, templates[0].spec, templates[0].free, nil, 4, 24, 24),
		buildTemplate(t, SumProduct, templates[2].spec, templates[2].free, nil, 5, 24, 24),
	}
	results, errs := eng.SolveBatch(context.Background(), qs)
	if errs[2] == nil {
		t.Error("nil query: want error")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if errs[i] != nil {
			t.Fatalf("batch[%d]: %v", i, errs[i])
		}
		want := referenceSolve(t, qs[i])
		if err := sameAnswer(results[i], want, isExact(qs[i].sem)); err != nil {
			t.Errorf("batch[%d]: %v", i, err)
		}
	}
	if !results[3].CacheHit {
		t.Error("repeated shape in batch should hit the cache")
	}
}

// TestScalarNormalization: scalar answers always carry exactly one row,
// including the empty (semiring-zero) case, so Result.Scalar is total on
// scalar queries.
func TestScalarNormalization(t *testing.T) {
	rel := func(vals ...int) *Relation {
		rb := NewRelationBuilder(MustSchema("A"))
		for _, v := range vals {
			rb.Add(v)
		}
		r, err := rb.Relation()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	eng := NewEngine()
	sat, err := NewQuery(Bool).Factor(rel(1)).Factor(rel(1, 2)).Domain(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Solve(context.Background(), sat)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := res.Scalar(); err != nil || v != 1 {
		t.Errorf("satisfiable BCQ: %v, %v", v, err)
	}
	unsat, err := NewQuery(Bool).Factor(rel(1)).Factor(rel(2, 3)).Domain(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err = eng.Solve(context.Background(), unsat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("empty scalar answer rows = %d, want 1", res.Len())
	}
	if v, err := res.Scalar(); err != nil || v != 0 {
		t.Errorf("unsatisfiable BCQ: %v, %v", v, err)
	}
	// Non-scalar answers refuse Scalar.
	withFree, _ := NewQuery(Bool).Factor(rel(1, 2)).Free("A").Domain(4).Build()
	rf, err := eng.Solve(context.Background(), withFree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Scalar(); err == nil {
		t.Error("Scalar on non-scalar answer: want error")
	}
}

// TestSolveWire drives the wire surface: a request equals its
// builder-built twin, aggregates ride the wire, and malformed requests
// error.
func TestSolveWire(t *testing.T) {
	eng := NewEngine(WithPlanCache(16))
	wr := &WireRequest{
		Semiring: "count",
		Edges:    [][]string{{"A", "B"}, {"B", "C"}},
		Factors: []WireFactor{
			{Tuples: [][]int{{0, 1}, {1, 1}, {2, 0}}, Values: []float64{1, 2, 1}},
			{Tuples: [][]int{{1, 0}, {1, 2}, {0, 2}}},
		},
		Free: []string{"A"},
		Dom:  3,
	}
	wa, err := eng.SolveWire(context.Background(), wr)
	if err != nil {
		t.Fatal(err)
	}
	if len(wa.Schema) != 1 || wa.Schema[0] != "A" {
		t.Fatalf("wire schema %v", wa.Schema)
	}
	q, err := BuildWireQuery(wr)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceSolve(t, q)
	got := &Result{Schema: wa.Schema, Tuples: wa.Tuples, Values: wa.Values}
	if err := sameAnswer(got, want, true); err != nil {
		t.Errorf("wire answer: %v", err)
	}
	if wa.PlanHash == "" || wa.CacheHit {
		t.Errorf("first wire solve: hash %q hit %v", wa.PlanHash, wa.CacheHit)
	}

	// General FAQ over the wire: a product aggregate changes the answer.
	agg := &WireRequest{
		Semiring:   "sumproduct",
		Edges:      [][]string{{"A", "B"}},
		Factors:    []WireFactor{{Tuples: [][]int{{0, 0}, {0, 1}}, Values: []float64{2, 3}}},
		Free:       []string{"A"},
		Aggregates: map[string]string{"B": "product"},
		Dom:        2,
	}
	waAgg, err := eng.SolveWire(context.Background(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(waAgg.Values) != 1 || waAgg.Values[0] != 6 {
		t.Errorf("product aggregate over wire: %v, want [6]", waAgg.Values)
	}

	malformed := []*WireRequest{
		{Semiring: "nope", Edges: [][]string{{"A"}}, Factors: []WireFactor{{}}, Dom: 3},
		{Semiring: "count", Dom: 3},
		{Semiring: "count", Edges: [][]string{{"A"}}, Dom: 3},
		{Semiring: "count", Edges: [][]string{{}}, Factors: []WireFactor{{}}, Dom: 3},
		{Semiring: "count", Edges: [][]string{{"A"}}, Factors: []WireFactor{{Tuples: [][]int{{0, 1}}}}, Dom: 3},
		{Semiring: "count", Edges: [][]string{{"A"}}, Factors: []WireFactor{{Tuples: [][]int{{0}}}}, Dom: 0},
		{Semiring: "count", Edges: [][]string{{"A"}}, Factors: []WireFactor{{Tuples: [][]int{{0}}, Values: []float64{}}}, Dom: 3},
		{Semiring: "count", Edges: [][]string{{"A"}}, Factors: []WireFactor{{Tuples: [][]int{{0}}}}, Free: []string{"Z"}, Dom: 3},
		{Semiring: "count", Edges: [][]string{{"A"}}, Factors: []WireFactor{{Tuples: [][]int{{5}}}}, Dom: 3},
	}
	for i, bad := range malformed {
		if _, err := eng.SolveWire(context.Background(), bad); err == nil {
			t.Errorf("malformed wire case %d: want error", i)
		}
	}
}

// TestEnginePrivatePool: an engine with its own worker pool still meets
// the exact answer contract.
func TestEnginePrivatePool(t *testing.T) {
	eng := NewEngine(WithWorkers(4), WithPlanCache(16))
	for _, tpl := range templates {
		q := buildTemplate(t, Count, tpl.spec, tpl.free, nil, 77, 32, 32)
		res, err := eng.Solve(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", tpl.name, err)
		}
		if err := sameAnswer(res, referenceSolve(t, q), true); err != nil {
			t.Errorf("%s: %v", tpl.name, err)
		}
	}
	if st := eng.Stats(); st.Workers != 4 {
		t.Errorf("Stats().Workers = %d, want 4", st.Workers)
	}
}

// TestEngineCancellation: a canceled context stops a solve.
func TestEngineCancellation(t *testing.T) {
	eng := NewEngine()
	q := buildTemplate(t, Count, templates[0].spec, templates[0].free, nil, 13, 64, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Solve(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v, want context.Canceled", err)
	}
}
