package faqs

import "fmt"

// Schema names the attributes (query variables) of a relation, in column
// order. Attribute names are shared across a query: two factors mentioning
// attribute "A" join on it, exactly as hyperedges of the query hypergraph
// share vertices.
type Schema struct {
	attrs []string
}

// NewSchema returns a schema over the given attribute names. Names must
// be non-empty and distinct within one schema.
func NewSchema(attrs ...string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("faqs: schema needs at least one attribute")
	}
	seen := make(map[string]bool, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("faqs: attribute %d is empty", i)
		}
		if seen[a] {
			return nil, fmt.Errorf("faqs: duplicate attribute %q", a)
		}
		seen[a] = true
	}
	return &Schema{attrs: append([]string(nil), attrs...)}, nil
}

// MustSchema is NewSchema panicking on error — for statically-known
// schemas in examples and tests.
func MustSchema(attrs ...string) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Attrs returns a copy of the attribute names in column order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// String renders the schema for diagnostics.
func (s *Schema) String() string { return fmt.Sprintf("%v", s.attrs) }

// Relation is an immutable semiring-annotated relation in listing
// representation, ready to be used as a query factor. Values are carried
// as float64 across the façade; a relation built purely with Add (no
// explicit values) annotates every tuple with the chosen semiring's
// multiplicative identity — the natural encoding of ordinary database
// tuples.
type Relation struct {
	schema *Schema
	tuples [][]int
	values []float64 // nil: every tuple is the semiring One
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of listed tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// String renders the relation for diagnostics.
func (r *Relation) String() string {
	return fmt.Sprintf("Relation(%v, n=%d)", r.schema.attrs, len(r.tuples))
}

// RelationBuilder ingests tuples one at a time (streaming: nothing is
// buffered beyond the tuples themselves, and errors accumulate instead
// of panicking). A builder is either Boolean-style — every tuple added
// with Add, annotated with the semiring's 1 at query build time — or
// value-annotated via AddValued; mixing the two is an error, mirroring
// the all-or-nothing value encoding of the wire schema.
type RelationBuilder struct {
	schema *Schema
	tuples [][]int
	values []float64
	plain  bool // Add used
	valued bool // AddValued used
	err    error
}

// NewRelationBuilder returns a builder over the given schema.
func NewRelationBuilder(s *Schema) *RelationBuilder {
	b := &RelationBuilder{schema: s}
	if s == nil || len(s.attrs) == 0 {
		b.err = fmt.Errorf("faqs: relation builder needs a non-empty schema")
	}
	return b
}

// Add appends one tuple annotated with the semiring's multiplicative
// identity. The tuple length must match the schema arity; violations are
// recorded and surface from Relation().
func (b *RelationBuilder) Add(tuple ...int) *RelationBuilder {
	if b.err != nil {
		return b
	}
	if len(tuple) != len(b.schema.attrs) {
		b.err = fmt.Errorf("faqs: tuple %v has arity %d, schema %v wants %d",
			tuple, len(tuple), b.schema.attrs, len(b.schema.attrs))
		return b
	}
	if b.valued {
		b.err = fmt.Errorf("faqs: cannot mix Add and AddValued on one relation")
		return b
	}
	b.plain = true
	b.tuples = append(b.tuples, append([]int(nil), tuple...))
	return b
}

// AddValued appends one tuple with an explicit semiring value (as
// float64 — exact for Bool/F2/Count within 2^53, native for the float
// semirings).
func (b *RelationBuilder) AddValued(value float64, tuple ...int) *RelationBuilder {
	if b.err != nil {
		return b
	}
	if len(tuple) != len(b.schema.attrs) {
		b.err = fmt.Errorf("faqs: tuple %v has arity %d, schema %v wants %d",
			tuple, len(tuple), b.schema.attrs, len(b.schema.attrs))
		return b
	}
	if b.plain {
		b.err = fmt.Errorf("faqs: cannot mix Add and AddValued on one relation")
		return b
	}
	b.valued = true
	b.tuples = append(b.tuples, append([]int(nil), tuple...))
	b.values = append(b.values, value)
	return b
}

// Len returns the number of tuples ingested so far.
func (b *RelationBuilder) Len() int { return len(b.tuples) }

// Err returns the first ingestion error, if any.
func (b *RelationBuilder) Err() error { return b.err }

// Relation finalizes the builder. The builder must not be reused after.
func (b *RelationBuilder) Relation() (*Relation, error) {
	if b.err != nil {
		return nil, b.err
	}
	return &Relation{schema: b.schema, tuples: b.tuples, values: b.values}, nil
}
