package faqs

import (
	"context"

	"repro/internal/fault"
)

// ErrInjected matches every error produced by an armed failpoint
// (errors.Is) — the typed signal chaos tests assert instead of string
// matching.
var ErrInjected = fault.ErrInjected

// Failpoint is the façade over one named chaos-injection site, for
// programs that only import faqs (cmd/faqd registers its handler site
// through this). Disarmed failpoints cost one atomic load per hit.
type Failpoint struct {
	site *fault.Site
}

// RegisterFailpoint returns the failpoint named name, creating it on
// first use (idempotent). Sites registered here join the same registry
// as the internal layers', so FailpointNames and EnableFailpoints see
// them uniformly.
func RegisterFailpoint(name string) *Failpoint {
	//faqlint:allow failpoint(facade pass-through: the site-name literal is checked at each RegisterFailpoint call site)
	return &Failpoint{site: fault.Register(name)}
}

// Hit evaluates the failpoint: nil when disarmed or not triggering,
// otherwise the armed behavior — a typed error matching ErrInjected,
// a panic, a delay (aborting early when ctx cancels), or the context's
// cancellation error. ctx may be nil.
func (f *Failpoint) Hit(ctx context.Context) error { return f.site.Hit(ctx) }

// Fired reports how many times the failpoint has fired since it was
// last armed.
func (f *Failpoint) Fired() uint64 { return f.site.Fired() }

// EnableFailpoints arms sites from a spec string — one or more
// ';'-separated "<site>=<mode>[:<arg>][@<pred>]" entries, with mode one
// of error|panic|delay|cancel|off and pred one of always|once|1in<k>.
// This is the FAQ_FAILPOINTS grammar; see the README's Operations
// section. Unknown site names are held and arm if the site registers
// later.
func EnableFailpoints(spec string) error { return fault.EnableSpec(spec) }

// DisableFailpoints disarms every failpoint and clears trigger
// counters.
func DisableFailpoints() { fault.Reset() }

// FailpointNames returns every registered failpoint name, sorted —
// the sweep universe for chaos tests (sites registered by packages
// linked into the binary).
func FailpointNames() []string { return fault.Names() }
