package faqs

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hypergraph"
)

// Aggregate selects the per-variable aggregate operator of a bound
// variable in a general FAQ (Section 5, eq. 4 of the paper). Bound
// variables without an override use the semiring's ⊕ (the FAQ-SS case).
type Aggregate string

const (
	// AggProduct aggregates a bound variable with the semiring's ⊗
	// (valid over every semiring).
	AggProduct Aggregate = "product"
	// AggMax aggregates with max. Valid over SumProduct, whose
	// identities 0 and 1 the MaxTimes semiring shares — the paper's
	// compatibility condition for semiring aggregates.
	AggMax Aggregate = "max"
)

// QueryBuilder assembles an FAQ fluently: factors, free variables,
// per-variable aggregates, and the domain size. Errors accumulate and
// surface from Build — the builder never panics on malformed input.
type QueryBuilder struct {
	sem      Semiring
	factors  []*Relation
	free     []string
	aggs     map[string]Aggregate
	aggOrder []string
	dom      int
	err      error
}

// NewQuery starts a query over the given registry semiring.
func NewQuery(s Semiring) *QueryBuilder {
	b := &QueryBuilder{sem: s}
	if s.impl == nil {
		b.err = fmt.Errorf("faqs: unknown semiring %q (use a registry semiring: %v)", s.name, SemiringNames())
	}
	return b
}

// Factor appends one input relation; its schema becomes a hyperedge of
// the query hypergraph.
func (b *QueryBuilder) Factor(r *Relation) *QueryBuilder {
	if b.err != nil {
		return b
	}
	if r == nil {
		b.err = fmt.Errorf("faqs: nil factor %d", len(b.factors))
		return b
	}
	b.factors = append(b.factors, r)
	return b
}

// Free declares free (output) variables by attribute name; all other
// variables are bound and aggregated out.
func (b *QueryBuilder) Free(names ...string) *QueryBuilder {
	if b.err != nil {
		return b
	}
	b.free = append(b.free, names...)
	return b
}

// Aggregate overrides the aggregate operator of one bound variable.
func (b *QueryBuilder) Aggregate(name string, agg Aggregate) *QueryBuilder {
	if b.err != nil {
		return b
	}
	if b.aggs == nil {
		b.aggs = make(map[string]Aggregate)
	}
	if prev, ok := b.aggs[name]; ok && prev != agg {
		b.err = fmt.Errorf("faqs: conflicting aggregates %q and %q for variable %q", prev, agg, name)
		return b
	}
	if _, ok := b.aggs[name]; !ok {
		b.aggOrder = append(b.aggOrder, name)
	}
	b.aggs[name] = agg
	return b
}

// Domain sets the domain size D: every tuple value must lie in [0, D).
func (b *QueryBuilder) Domain(n int) *QueryBuilder {
	if b.err != nil {
		return b
	}
	b.dom = n
	return b
}

// builtSpec is the semiring-independent half of a built query, handed to
// the registry's typed constructors.
type builtSpec struct {
	h       *hypergraph.Hypergraph
	edgeIDs [][]int // per factor: variable ids in schema column order
	factors []*Relation
	free    []int
	dom     int
	aggs    map[int]Aggregate // variable id -> aggregate override
}

// Build validates the pieces and assembles the typed query. All
// structural errors (arity mismatches, out-of-domain values, free
// variables that appear nowhere, invalid aggregates) are returned, never
// panicked.
func (b *QueryBuilder) Build() (*Query, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.factors) == 0 {
		return nil, fmt.Errorf("faqs: query has no factors")
	}
	if b.dom < 1 {
		return nil, fmt.Errorf("faqs: domain size must be positive (Domain(%d))", b.dom)
	}
	// Tuples are stored as int32 columns; a larger domain would let the
	// range check below pass values that wrap modulo 2^32 into the valid
	// domain and silently change answers.
	if b.dom > math.MaxInt32 {
		return nil, fmt.Errorf("faqs: domain size %d exceeds the int32 tuple range (max %d)", b.dom, math.MaxInt32)
	}
	hb := hypergraph.NewBuilder()
	for _, r := range b.factors {
		hb.Edge(r.schema.attrs...)
	}
	h := hb.Build()

	spec := &builtSpec{h: h, factors: b.factors, dom: b.dom}
	for e, r := range b.factors {
		ids := make([]int, len(r.schema.attrs))
		for i, a := range r.schema.attrs {
			ids[i] = hb.VertexID(a)
		}
		if len(ids) != len(h.Edge(e)) {
			// Schemas reject duplicate attributes, so the edge's deduped
			// vertex set always matches; guard against regressions.
			return nil, fmt.Errorf("faqs: factor %d schema/edge mismatch", e)
		}
		for ti, tuple := range r.tuples {
			for ci, x := range tuple {
				if x < 0 || x >= b.dom {
					return nil, fmt.Errorf("faqs: factor %d tuple %d column %q value %d outside domain [0,%d)",
						e, ti, r.schema.attrs[ci], x, b.dom)
				}
			}
		}
		spec.edgeIDs = append(spec.edgeIDs, ids)
	}

	for _, name := range b.free {
		id := hb.VertexID(name)
		if id < 0 {
			return nil, fmt.Errorf("faqs: free variable %q appears in no factor", name)
		}
		spec.free = append(spec.free, id)
	}
	sort.Ints(spec.free)
	spec.free = dedupSortedInts(spec.free)

	freeNames := make(map[string]bool, len(b.free))
	for _, name := range b.free {
		freeNames[name] = true
	}
	for _, name := range b.aggOrder {
		agg := b.aggs[name]
		id := hb.VertexID(name)
		if id < 0 {
			return nil, fmt.Errorf("faqs: aggregate for variable %q, which appears in no factor", name)
		}
		if freeNames[name] {
			return nil, fmt.Errorf("faqs: aggregate specified for free variable %q", name)
		}
		if !b.sem.impl.supportsAgg(agg) {
			return nil, fmt.Errorf("faqs: aggregate %q is not valid over semiring %s", agg, b.sem.name)
		}
		if spec.aggs == nil {
			spec.aggs = make(map[int]Aggregate)
		}
		spec.aggs[id] = agg
	}

	typed, n, err := b.sem.impl.buildTyped(spec)
	if err != nil {
		return nil, err
	}
	return &Query{sem: b.sem, h: h, free: spec.free, dom: b.dom, n: n, typed: typed}, nil
}

// Query is a built, validated FAQ bound to a registry semiring, ready
// for Engine.Solve / Engine.Explain / Engine.SolveOnNetwork.
type Query struct {
	sem   Semiring
	h     *hypergraph.Hypergraph
	free  []int
	dom   int
	n     int
	typed any // *faq.Query[T] for the semiring's value type
}

// Semiring returns the query's semiring.
func (q *Query) Semiring() Semiring { return q.sem }

// NumFactors returns the number of input relations.
func (q *Query) NumFactors() int { return q.h.NumEdges() }

// FreeVars returns the free variables' attribute names (sorted by
// internal variable id — first-appearance order across factors).
func (q *Query) FreeVars() []string {
	out := make([]string, len(q.free))
	for i, v := range q.free {
		out[i] = q.h.VertexName(v)
	}
	return out
}

// Domain returns the domain size D.
func (q *Query) Domain() int { return q.dom }

// MaxFactorSize returns N = max_e |R_e|, the paper's size parameter.
func (q *Query) MaxFactorSize() int { return q.n }

// String renders the query's hypergraph for diagnostics.
func (q *Query) String() string {
	return fmt.Sprintf("Query[%s]{%s, free=%v, N=%d, D=%d}", q.sem.name, q.h, q.FreeVars(), q.n, q.dom)
}

func dedupSortedInts(a []int) []int {
	out := a[:0]
	for i, x := range a {
		if i == 0 || x != a[i-1] {
			out = append(out, x)
		}
	}
	return out
}
