package faqs

import (
	"context"
	"fmt"
)

// Wire types: the JSON request/response schema of cmd/faqd's /solve and
// /explain endpoints, shared with cmd/faqload's HTTP smoke mode. Values
// travel as float64 for every semiring (exact for bool/f2, for count
// within 2^53; the float semirings are float64 natively); a nil Values
// slice annotates every tuple with the semiring's 1 — the natural
// encoding of ordinary database tuples.

// WireFactor is one input relation in listing representation.
type WireFactor struct {
	Tuples [][]int   `json:"tuples"`
	Values []float64 `json:"values,omitempty"`
}

// WireRequest is one /solve (or /explain) request.
type WireRequest struct {
	// Semiring names a registry semiring (see SemiringNames).
	Semiring string `json:"semiring"`
	// Edges lists the query hyperedges as vertex-name lists; Factors[i]
	// is the relation on Edges[i] (tuple columns in the edge's order,
	// duplicate names within an edge collapsed to their first column).
	Edges   [][]string   `json:"edges"`
	Factors []WireFactor `json:"factors"`
	// Free lists the free-variable names (may be empty: scalar answer).
	Free []string `json:"free,omitempty"`
	// Aggregates optionally overrides bound-variable aggregates by name
	// ("product", or "max" over sumproduct) — the general-FAQ form.
	Aggregates map[string]string `json:"aggregates,omitempty"`
	// Dom is the domain size D (tuple values live in [0, Dom)).
	Dom int `json:"dom"`
}

// WireInfo is the serving metadata of one answered request.
type WireInfo struct {
	CacheHit bool  `json:"cache_hit"`
	Fallback bool  `json:"fallback"`
	CanonNS  int64 `json:"canon_ns"`
	PlanNS   int64 `json:"plan_ns"`
	BindNS   int64 `json:"bind_ns"`
	ExecNS   int64 `json:"exec_ns"`
	TotalNS  int64 `json:"total_ns"`
}

// WireAnswer is one /solve response.
type WireAnswer struct {
	Schema []string  `json:"schema"`
	Tuples [][]int   `json:"tuples"`
	Values []float64 `json:"values"`
	// PlanHash is the plan fingerprint that served the request; CacheHit
	// reports whether the compiled plan was reused. Both also travel as
	// X-Faqs-Plan-Fingerprint / X-Faqs-Plan-Cache response headers.
	PlanHash string   `json:"plan_hash"`
	CacheHit bool     `json:"cache_hit"`
	Info     WireInfo `json:"info"`
}

// BuildWireQuery assembles a Query from a wire request through the same
// builders library callers use, so the daemon and the library validate
// identically.
func BuildWireQuery(wr *WireRequest) (*Query, error) {
	sem, ok := SemiringByName(wr.Semiring)
	if !ok {
		return nil, fmt.Errorf("faqs: unknown semiring %q (have %v)", wr.Semiring, SemiringNames())
	}
	if len(wr.Edges) == 0 {
		return nil, fmt.Errorf("faqs: request has no edges")
	}
	if len(wr.Factors) != len(wr.Edges) {
		return nil, fmt.Errorf("faqs: %d factors for %d edges", len(wr.Factors), len(wr.Edges))
	}
	qb := NewQuery(sem).Domain(wr.Dom)
	for e, names := range wr.Edges {
		if len(names) == 0 {
			return nil, fmt.Errorf("faqs: edge %d is empty", e)
		}
		// Collapse duplicate name occurrences to their first column —
		// the wire contract: tuples carry one column per distinct name.
		seen := make(map[string]bool, len(names))
		attrs := make([]string, 0, len(names))
		for _, name := range names {
			if !seen[name] {
				seen[name] = true
				attrs = append(attrs, name)
			}
		}
		sch, err := NewSchema(attrs...)
		if err != nil {
			return nil, fmt.Errorf("faqs: edge %d: %w", e, err)
		}
		rb := NewRelationBuilder(sch)
		wf := wr.Factors[e]
		for ti, tuple := range wf.Tuples {
			if len(tuple) != len(attrs) {
				return nil, fmt.Errorf("faqs: factor %d tuple %d has arity %d, want %d", e, ti, len(tuple), len(attrs))
			}
			if wf.Values == nil {
				rb.Add(tuple...)
				continue
			}
			if ti >= len(wf.Values) {
				return nil, fmt.Errorf("faqs: factor %d has %d values for %d tuples", e, len(wf.Values), len(wf.Tuples))
			}
			rb.AddValued(wf.Values[ti], tuple...)
		}
		rel, err := rb.Relation()
		if err != nil {
			return nil, fmt.Errorf("faqs: factor %d: %w", e, err)
		}
		qb.Factor(rel)
	}
	qb.Free(wr.Free...)
	for name, agg := range wr.Aggregates {
		qb.Aggregate(name, Aggregate(agg))
	}
	return qb.Build()
}

// WireMaterializeRequest registers a named standing view: the query is
// materialized once and then maintained incrementally through /update.
type WireMaterializeRequest struct {
	// Name identifies the view in subsequent /update calls.
	Name    string      `json:"name"`
	Request WireRequest `json:"request"`
}

// WireTupleUpdate is one inserted or deleted tuple of an /update batch;
// it is exactly the library's TupleUpdate (nil Value means the
// semiring's 1, matching plain wire tuples).
type WireTupleUpdate = TupleUpdate

// WireUpdateRequest applies one insert/delete batch against a named
// materialized view (or closes it). Factor indexes the view's edge
// list; tuples are in the edge's attribute order.
type WireUpdateRequest struct {
	Name    string            `json:"name"`
	Factor  int               `json:"factor"`
	Inserts []WireTupleUpdate `json:"inserts,omitempty"`
	Deletes []WireTupleUpdate `json:"deletes,omitempty"`
	// Close releases the view instead of updating it.
	Close bool `json:"close,omitempty"`
}

// WireMaterializedAnswer is the response of /materialize and /update:
// the view's identity, its maintenance strategy, and the current
// answer (empty when the view was closed).
type WireMaterializedAnswer struct {
	Name     string    `json:"name"`
	Strategy string    `json:"strategy"`
	Closed   bool      `json:"closed,omitempty"`
	Schema   []string  `json:"schema,omitempty"`
	Tuples   [][]int   `json:"tuples,omitempty"`
	Values   []float64 `json:"values,omitempty"`
}

// MaterializeWire builds and materializes a wire request's query — the
// query-assembly half of faqd's /materialize handler.
func (e *Engine) MaterializeWire(ctx context.Context, wr *WireRequest) (*Materialized, error) {
	q, err := BuildWireQuery(wr)
	if err != nil {
		return nil, err
	}
	return e.Materialize(ctx, q)
}

// RenderMaterialized renders a view's current answer on the wire.
func RenderMaterialized(name string, m *Materialized) (*WireMaterializedAnswer, error) {
	res, err := m.Answer()
	if err != nil {
		return nil, err
	}
	return &WireMaterializedAnswer{
		Name:     name,
		Strategy: m.Strategy(),
		Schema:   res.Schema,
		Tuples:   res.Tuples,
		Values:   res.Values,
	}, nil
}

// SolveWire serves one wire request end to end: semiring lookup, query
// assembly through the public builders, Engine.Solve, and the wire
// rendering — the whole body of faqd's /solve handler.
func (e *Engine) SolveWire(ctx context.Context, wr *WireRequest) (*WireAnswer, error) {
	q, err := BuildWireQuery(wr)
	if err != nil {
		return nil, err
	}
	res, err := e.Solve(ctx, q)
	if err != nil {
		return nil, err
	}
	return &WireAnswer{
		Schema:   res.Schema,
		Tuples:   res.Tuples,
		Values:   res.Values,
		PlanHash: res.PlanHash,
		CacheHit: res.CacheHit,
		Info: WireInfo{
			CacheHit: res.CacheHit, Fallback: res.Fallback,
			CanonNS: res.Stats.CanonNS, PlanNS: res.Stats.PlanNS,
			BindNS: res.Stats.BindNS, ExecNS: res.Stats.ExecNS,
			TotalNS: res.Stats.TotalNS,
		},
	}, nil
}
