package faqs

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/service"
)

// Typed errors of the serving path, re-exported from the internal layers
// so façade users can errors.Is without reaching inside.
var (
	// ErrOverBudget matches admission-control rejections: the plan's
	// structural memory bound (per-node NodeBounds at the request's N)
	// exceeds the engine's WithMemoryBudget. Raised before execution.
	ErrOverBudget = service.ErrOverBudget
	// ErrFallbackDisabled matches rejections of shapes that violate the
	// paper's free-variable restriction when WithBruteForceFallback(false)
	// turned the exponential path off.
	ErrFallbackDisabled = service.ErrFallbackDisabled
	// ErrFreeOutsideRoot is the underlying structural condition: no bag
	// of the decomposition covers the free variables (F ⊄ V(C(H)),
	// Appendix G.5 of the paper).
	ErrFreeOutsideRoot = faq.ErrFreeOutsideRoot
	// ErrOverloaded matches load-shed rejections: the engine's in-flight
	// gate (WithMaxInFlight) was full. Transient — retry after backoff.
	// Contrast ErrOverBudget, where retrying unchanged cannot succeed.
	ErrOverloaded = service.ErrOverloaded
	// ErrInternal matches panics recovered at the service boundary into
	// typed errors — the "typed errors, never panics" façade contract.
	ErrInternal = service.ErrInternal
)

// SetDefaultWorkers sets the process-wide default parallelism used by
// every engine without a private WithWorkers pool — the GHD forest
// scheduler and the relation kernels' intra-operator partitioning. It
// returns the previous raw setting (0 = tracking GOMAXPROCS) so callers
// can restore it. Worker counts never change answers, only scheduling.
func SetDefaultWorkers(n int) int { return exec.SetWorkers(n) }

// DefaultWorkers returns the current process-wide default parallelism.
func DefaultWorkers() int { return exec.Workers() }

// Option configures an Engine (functional options on NewEngine).
type Option func(*engineConfig)

type engineConfig struct {
	cacheSize    int
	workers      int
	budget       int64
	fallback     bool
	deadline     time.Duration
	maxInFlight  int
	clusterAddrs []string
}

// WithWorkers gives the engine a private exec pool of n workers for its
// GHD forest passes instead of the process default. Kernel-level
// partitioning inside relation operators still follows the process-wide
// default (SetDefaultWorkers); per the exec-layer contract both knobs
// are pure scheduling — answers are bit-identical at any setting.
func WithWorkers(n int) Option { return func(c *engineConfig) { c.workers = n } }

// WithPlanCache bounds the engine's compiled-plan LRU to size shapes
// (<= 0 uses the default capacity). Plans compile once per
// variable-renaming-invariant query shape under singleflight and are
// shared across every semiring service of the engine.
func WithPlanCache(size int) Option { return func(c *engineConfig) { c.cacheSize = size } }

// WithMemoryBudget enables admission control: a query whose plan's
// structural bound — the sum of per-node output bounds (N tuples for
// label-covered nodes per eq. 24, N^|χ(v)| for a fat core root), priced
// at the columnar layout — exceeds bytes is rejected with an error
// matching ErrOverBudget before any execution work. bytes <= 0 disables
// the check.
func WithMemoryBudget(bytes int64) Option { return func(c *engineConfig) { c.budget = bytes } }

// WithBruteForceFallback toggles the exponential brute-force path for
// query shapes violating the paper's free-variable restriction
// (default: enabled, mirroring the solver contract). Disabled engines
// return an error matching ErrFallbackDisabled for such shapes.
func WithBruteForceFallback(enabled bool) Option {
	return func(c *engineConfig) { c.fallback = enabled }
}

// WithDeadline caps every request's wall time: each Solve (and each
// SolveBatch, as one unit) runs under a context.WithTimeout child of
// the caller's ctx, so every node task downstream is gated and a slow
// solve returns context.DeadlineExceeded instead of running forever.
// d <= 0 disables the cap.
func WithDeadline(d time.Duration) Option { return func(c *engineConfig) { c.deadline = d } }

// WithMaxInFlight bounds concurrent requests engine-wide (one shared
// gate across all semiring services): when n requests are already in
// flight, further ones are shed immediately with an error matching
// ErrOverloaded — flat rejection latency under overload, so the daemon
// can answer 503 + Retry-After instead of queueing unboundedly.
// n <= 0 disables shedding.
func WithMaxInFlight(n int) Option { return func(c *engineConfig) { c.maxInFlight = n } }

// Engine is the library's serving front end: one plan cache, one worker
// configuration, and one typed service per registered semiring, all
// behind a semiring-erased façade. Construct once, share freely —
// engines are safe for concurrent use.
type Engine struct {
	cache   *plan.Cache
	pool    *exec.Pool
	workers int
	runners map[string]runner
	metrics *obs.Registry
	tracer  *obs.Tracer
	runtime *obs.RuntimeCollector
	cluster *cluster.Client
}

// NewEngine builds an engine from functional options.
func NewEngine(opts ...Option) *Engine {
	cfg := engineConfig{fallback: true}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{
		cache:   plan.NewCache(cfg.cacheSize),
		runners: make(map[string]runner, len(registry)),
		metrics: obs.NewRegistry(),
		tracer:  obs.NewTracer(traceBufferSize),
	}
	e.runtime = obs.NewRuntimeCollector(e.metrics)
	svcOpts := []service.Option{
		service.WithBruteForceFallback(cfg.fallback),
		service.WithMetrics(e.metrics),
		service.WithTracer(e.tracer),
	}
	if cfg.workers > 0 {
		e.workers = cfg.workers
		e.pool = exec.New(cfg.workers)
		svcOpts = append(svcOpts, service.WithPool(e.pool))
	}
	if cfg.budget > 0 {
		svcOpts = append(svcOpts, service.WithMemoryBudget(cfg.budget))
	}
	if cfg.deadline > 0 {
		svcOpts = append(svcOpts, service.WithDeadline(cfg.deadline))
	}
	if g := service.NewGate(cfg.maxInFlight); g != nil {
		svcOpts = append(svcOpts, service.WithGate(g))
	}
	if len(cfg.clusterAddrs) > 0 {
		// WithClusterWorkers already dropped blank entries, so the
		// transport constructor cannot fail here.
		if tr, err := cluster.NewTCPTransport(cfg.clusterAddrs, cluster.TCPOptions{}); err == nil {
			e.cluster = cluster.NewClient(tr, cluster.Options{})
		}
	}
	for _, s := range registry {
		e.runners[s.name] = s.impl.newRunner(s.name, e.cache, e.cluster, svcOpts)
	}
	return e
}

func (e *Engine) runnerFor(q *Query) (runner, error) {
	if q == nil || q.typed == nil {
		return nil, fmt.Errorf("faqs: nil or unbuilt query (use NewQuery(...).Build())")
	}
	r, ok := e.runners[q.sem.name]
	if !ok {
		return nil, fmt.Errorf("faqs: no runner for semiring %q", q.sem.name)
	}
	return r, nil
}

// Solve serves one query: fingerprint its shape, reuse (or compile once)
// the cached plan, bind it to the query's data, and run the GHD
// bottom-up pass with per-request cancellation via ctx. The Result
// carries the answer and the serving metadata (plan fingerprint, cache
// hit/miss, stage timings).
func (e *Engine) Solve(ctx context.Context, q *Query) (*Result, error) {
	r, err := e.runnerFor(q)
	if err != nil {
		return nil, err
	}
	return r.solve(ctx, q)
}

// SolveBatch serves a batch. Results and errors align with qs; queries
// sharing a plan shape (and semiring) do one cache round-trip per shape
// and execution fans across the pool. Queries of different semirings may
// be mixed freely.
func (e *Engine) SolveBatch(ctx context.Context, qs []*Query) ([]*Result, []error) {
	results := make([]*Result, len(qs))
	errs := make([]error, len(qs))
	// Group by semiring, preserving input order within each group, and
	// hand each group to its typed service's batching path.
	groups := make(map[string][]int)
	var order []string
	for i, q := range qs {
		if q == nil || q.typed == nil {
			errs[i] = fmt.Errorf("faqs: nil or unbuilt query at index %d", i)
			continue
		}
		if _, ok := groups[q.sem.name]; !ok {
			order = append(order, q.sem.name)
		}
		groups[q.sem.name] = append(groups[q.sem.name], i)
	}
	for _, name := range order {
		idx := groups[name]
		r, ok := e.runners[name]
		if !ok {
			for _, i := range idx {
				errs[i] = fmt.Errorf("faqs: no runner for semiring %q", name)
			}
			continue
		}
		sub := make([]*Query, len(idx))
		for k, i := range idx {
			sub[k] = qs[i]
		}
		subRes, subErrs := r.solveBatch(ctx, sub)
		for k, i := range idx {
			results[i], errs[i] = subRes[k], subErrs[k]
		}
	}
	return results, errs
}

// Explain compiles (or fetches) the query's plan and reports it without
// executing: the canonical GHD tree bound to the query's own variable
// names, the paper's widths (y(H), n₂(H), hypertree width, depth),
// per-node output bounds, the admission-control estimate, and the cache
// fingerprint with its hit/miss status.
func (e *Engine) Explain(q *Query) (*Explain, error) {
	r, err := e.runnerFor(q)
	if err != nil {
		return nil, err
	}
	return r.explain(q)
}

// SolveOnNetwork executes the query with the paper's distributed
// protocol on a synchronous network topology: factors live at the
// players given by assign (assign[e] holds factor e), the player output
// must learn the answer, and the run reports measured rounds/bits for
// the main protocol and the trivial baseline next to the closed-form
// bounds. Planning goes through the same shared faq.PlanGHD primitive
// the engine's centralized path uses.
func (e *Engine) SolveOnNetwork(q *Query, topo Topology, assign []int, output int) (*NetworkRun, error) {
	r, err := e.runnerFor(q)
	if err != nil {
		return nil, err
	}
	if topo.g == nil {
		return nil, fmt.Errorf("faqs: empty topology (use Line/Clique/Star/Ring/Grid)")
	}
	return r.network(q, topo, assign, output)
}

// SolveStats is the per-stage timing breakdown of one served request.
type SolveStats struct {
	CanonNS int64 `json:"canon_ns"`
	PlanNS  int64 `json:"plan_ns"` // cache round-trip (compile on miss)
	BindNS  int64 `json:"bind_ns"`
	ExecNS  int64 `json:"exec_ns"`
	TotalNS int64 `json:"total_ns"`
}

// Result is one served answer: the relation (attribute names, tuples,
// float64 values) plus serving metadata. Scalar queries (no free
// variables) always hold exactly one row — the empty tuple whose value
// is the aggregate (the semiring's 0 when no tuple survived).
type Result struct {
	Schema []string  `json:"schema"`
	Tuples [][]int   `json:"tuples"`
	Values []float64 `json:"values"`

	PlanHash string     `json:"plan_hash,omitempty"` // fingerprint of the served plan
	CacheHit bool       `json:"cache_hit"`
	Fallback bool       `json:"fallback,omitempty"`
	Stats    SolveStats `json:"stats"`
}

// Len returns the number of answer rows.
func (r *Result) Len() int { return len(r.Tuples) }

// Scalar returns the value of a scalar (no-free-variable) answer.
func (r *Result) Scalar() (float64, error) {
	if len(r.Schema) != 0 || len(r.Values) != 1 {
		return 0, fmt.Errorf("faqs: answer is not scalar (schema %v, %d rows)", r.Schema, len(r.Values))
	}
	return r.Values[0], nil
}

// CacheStats mirrors the plan cache counters.
type CacheStats struct {
	Capacity  int   `json:"capacity"`
	Len       int   `json:"len"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Compiles  int64 `json:"compiles"`
	Failures  int64 `json:"failures"`
	Evictions int64 `json:"evictions"`
}

// ServiceStats mirrors one semiring service's request counters. The
// degradation counters separate the failure classes operators care
// about: Rejected is budget admission control (HTTP 429), Shed is
// transient overload from the in-flight gate (503), DeadlineExceeded is
// per-request deadline hits, and Panics counts panics recovered into
// typed internal errors at the service boundary.
type ServiceStats struct {
	Semiring         string `json:"semiring"`
	Requests         int64  `json:"requests"`
	Batches          int64  `json:"batches"`
	Fallbacks        int64  `json:"fallbacks"`
	Rejected         int64  `json:"rejected"`
	Errors           int64  `json:"errors"`
	Shed             int64  `json:"shed"`
	DeadlineExceeded int64  `json:"deadline_exceeded"`
	Panics           int64  `json:"panics"`
	Updates          int64  `json:"updates"`         // materialized-handle update batches
	DeltaFallbacks   int64  `json:"delta_fallbacks"` // updates served by recompute fallback
}

// PlanNodeBound is the per-GHD-node slice of the paper's structural
// bounds, as surfaced in Stats.
type PlanNodeBound struct {
	Bag      int  `json:"bag"`
	Labels   int  `json:"labels"`
	Internal bool `json:"internal"`
}

// PlanInfo snapshots one resident compiled plan.
type PlanInfo struct {
	Hash       string          `json:"hash"`
	Y          int             `json:"y"`
	N2         int             `json:"n2"`
	Depth      int             `json:"depth"`
	Nodes      int             `json:"nodes"`
	Fallback   bool            `json:"fallback"`
	CompileNS  int64           `json:"compile_ns"`
	Hits       int64           `json:"hits"`
	Execs      int64           `json:"execs"`
	WorkNS     int64           `json:"work_ns"`
	CritPathNS int64           `json:"crit_path_ns"`
	NodeBounds []PlanNodeBound `json:"node_bounds,omitempty"`
}

// Stats is the engine-wide snapshot: worker configuration, plan-cache
// counters, per-semiring service counters, and the resident plan table.
type Stats struct {
	Workers  int            `json:"workers"`
	Cache    CacheStats     `json:"cache"`
	Services []ServiceStats `json:"services"`
	Plans    []PlanInfo     `json:"plans"`
}

// Stats returns the engine's current counters.
func (e *Engine) Stats() Stats {
	cs := e.cache.Stats()
	st := Stats{
		Workers: e.workers,
		Cache: CacheStats{
			Capacity: cs.Capacity, Len: cs.Len, Hits: cs.Hits, Misses: cs.Misses,
			Compiles: cs.Compiles, Failures: cs.Failures, Evictions: cs.Evictions,
		},
	}
	if st.Workers == 0 {
		st.Workers = exec.Workers()
	}
	for _, s := range registry {
		st.Services = append(st.Services, e.runners[s.name].stats())
	}
	for _, p := range e.cache.Plans() {
		pi := PlanInfo{
			Hash: p.Hash, Y: p.Y, N2: p.N2, Depth: p.Depth, Nodes: p.Nodes,
			Fallback: p.Fallback, CompileNS: p.CompileNS, Hits: p.Hits,
			Execs: p.Execs, WorkNS: p.WorkNS, CritPathNS: p.CritPathNS,
		}
		for _, b := range p.NodeBounds {
			pi.NodeBounds = append(pi.NodeBounds, PlanNodeBound{Bag: b.Bag, Labels: b.Labels, Internal: b.Internal})
		}
		st.Plans = append(st.Plans, pi)
	}
	return st
}
