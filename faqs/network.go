package faqs

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// Topology is a synchronous network of players with unit-capacity links
// — the communication fabric of the paper's distributed protocols. Use
// the constructors; the zero value is invalid.
type Topology struct {
	name string
	g    *topology.Graph
}

// Name returns a human-readable description ("line:4", "grid:4x4").
func (t Topology) Name() string { return t.name }

// String renders the topology name.
func (t Topology) String() string { return t.name }

// Players returns the number of network nodes.
func (t Topology) Players() int {
	if t.g == nil {
		return 0
	}
	return t.g.N()
}

// Line returns the k-player path topology (G₁ of Figure 1).
func Line(k int) (Topology, error) {
	if k < 2 {
		return Topology{}, fmt.Errorf("faqs: line topology needs ≥ 2 players, got %d", k)
	}
	return Topology{name: fmt.Sprintf("line:%d", k), g: topology.Line(k)}, nil
}

// Clique returns the complete k-player topology (G₂ of Figure 1).
func Clique(k int) (Topology, error) {
	if k < 2 {
		return Topology{}, fmt.Errorf("faqs: clique topology needs ≥ 2 players, got %d", k)
	}
	return Topology{name: fmt.Sprintf("clique:%d", k), g: topology.Clique(k)}, nil
}

// Star returns a star topology: center player 0 and k-1 leaves.
func Star(k int) (Topology, error) {
	if k < 2 {
		return Topology{}, fmt.Errorf("faqs: star topology needs ≥ 2 players, got %d", k)
	}
	return Topology{name: fmt.Sprintf("star:%d", k), g: topology.Star(k)}, nil
}

// Ring returns the k-player cycle topology (k ≥ 3).
func Ring(k int) (Topology, error) {
	if k < 3 {
		return Topology{}, fmt.Errorf("faqs: ring topology needs ≥ 3 players, got %d", k)
	}
	return Topology{name: fmt.Sprintf("ring:%d", k), g: topology.Ring(k)}, nil
}

// Grid returns the rows×cols grid topology, a sensor-network-like
// fabric.
func Grid(rows, cols int) (Topology, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return Topology{}, fmt.Errorf("faqs: grid topology needs ≥ 2 players, got %dx%d", rows, cols)
	}
	return Topology{name: fmt.Sprintf("grid:%dx%d", rows, cols), g: topology.Grid(rows, cols)}, nil
}

// NetworkBounds holds the closed-form bounds of one distributed
// instance: the structural parameters of the query hypergraph and the
// network, the deterministic upper bound of Theorem 4.1/F.1, and the
// randomized lower bound of Theorem 4.4/F.9.
type NetworkBounds struct {
	Y          int `json:"y"`          // internal-node-width y(H), Definition 2.9
	N2         int `json:"n2"`         // core size n₂(H), Definition 3.1
	Degeneracy int `json:"degeneracy"` // d, Definition 3.3
	Arity      int `json:"arity"`      // r
	MinCut     int `json:"min_cut"`    // MinCut(G, K), Definition 3.6
	Delta      int `json:"delta"`      // the Δ minimizing the Theorem 3.11 term
	ST         int `json:"st"`         // ST(G, K, Δ) at that Δ
	N          int `json:"n"`          // max factor size

	Upper      int     `json:"upper"`       // deterministic round upper bound
	Lower      float64 `json:"lower"`       // randomized lower bound, constants dropped
	LowerTilde float64 `json:"lower_tilde"` // Lower / the paper's Ω̃ polylog factors
}

// Gap returns Upper / LowerTilde — the measured counterpart of the
// paper's Table 1 gap column (infinite when the lower bound vanishes).
func (b NetworkBounds) Gap() float64 {
	if b.LowerTilde <= 0 {
		return math.Inf(1)
	}
	return float64(b.Upper) / b.LowerTilde
}

// NetworkRun reports one distributed execution: the answer delivered at
// the output player, the measured round/bit cost of the paper's main
// protocol and of the trivial baseline, and the closed-form bounds.
type NetworkRun struct {
	Answer        *Result       `json:"answer"`
	Rounds        int           `json:"rounds"`
	Bits          int64         `json:"bits"`
	TrivialRounds int           `json:"trivial_rounds"`
	TrivialBits   int64         `json:"trivial_bits"`
	Bounds        NetworkBounds `json:"bounds"`
}
