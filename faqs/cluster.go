package faqs

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/rpc"
)

// WithClusterWorkers switches the engine to distributed execution over a
// fleet of faqw shard workers at the given host:port addresses. Queries
// the coordinator can shard (GHD passes with one factor per node and no
// per-variable aggregate overrides) run as real scatter/gather over the
// fleet; anything else transparently falls back to the local pass, so an
// engine with workers serves exactly the query surface of one without.
// Answers are bit-identical to local execution for exact semirings.
// Blank addresses are ignored; with no usable address the engine stays
// local. Call Engine.Close to release the worker connections.
func WithClusterWorkers(addrs ...string) Option {
	return func(c *engineConfig) {
		for _, a := range addrs {
			if a != "" {
				c.clusterAddrs = append(c.clusterAddrs, a)
			}
		}
	}
}

// ErrClusterUnavailable marks solves that failed because a worker
// could not be reached — dial, send, or receive transport errors, as
// opposed to anything wrong with the query. The fleet may be
// mid-restart: workers are stateless across solves, so the request is
// retryable and the next solve redials. cmd/faqd maps it to
// 503 + Retry-After.
var ErrClusterUnavailable = cluster.ErrUnavailable

// ClusterStats snapshots the coordinator's cumulative counters: solve
// and frame totals, relation-bearing message counts (transport-
// independent — the differential harness asserts they match between the
// simulated and TCP transports), encoded-relation payload bytes, and
// raw wire bytes including frame headers.
type ClusterStats struct {
	Workers           int   `json:"workers"`
	Solves            int64 `json:"solves"`
	Frames            int64 `json:"frames"`
	LoadShards        int64 `json:"load_shards"`
	SolveMessages     int64 `json:"solve_messages"`
	LoadPayloadBytes  int64 `json:"load_payload_bytes"`
	SolvePayloadBytes int64 `json:"solve_payload_bytes"`
	Phases            int64 `json:"phases"`
	WireOutBytes      int64 `json:"wire_out_bytes"`
	WireInBytes       int64 `json:"wire_in_bytes"`
}

// ClusterStats returns the coordinator counters and whether this engine
// has a worker fleet at all (false means purely local execution).
func (e *Engine) ClusterStats() (ClusterStats, bool) {
	if e.cluster == nil {
		return ClusterStats{}, false
	}
	s := e.cluster.Stats()
	return ClusterStats{
		Workers:           s.Workers,
		Solves:            s.Solves,
		Frames:            s.Frames,
		LoadShards:        s.LoadShards,
		SolveMessages:     s.SolveMessages,
		LoadPayloadBytes:  s.LoadPayloadBytes,
		SolvePayloadBytes: s.SolvePayloadBytes,
		Phases:            s.Phases,
		WireOutBytes:      s.WireOutBytes,
		WireInBytes:       s.WireInBytes,
	}, true
}

// PingCluster round-trips a liveness probe to every configured worker —
// the startup handshake cmd/faqd runs before serving traffic. It is a
// no-op (nil) on engines without a worker fleet.
func (e *Engine) PingCluster(ctx context.Context) error {
	if e.cluster == nil {
		return nil
	}
	return e.cluster.Ping(ctx)
}

// Close releases engine resources that reach outside the process — the
// pooled worker connections of WithClusterWorkers. Engines without a
// fleet have nothing to release; Close is always safe to call.
func (e *Engine) Close() error {
	if e.cluster == nil {
		return nil
	}
	return e.cluster.Close()
}

// WorkerServer is one running faqw shard worker: an RPC listener wired
// to a cluster worker session. The zero value is not usable — construct
// with ServeWorker.
type WorkerServer struct {
	srv *rpc.Server
}

// ServeWorker starts a shard worker listening on addr (host:port; port 0
// picks a free port — read it back from Addr). The worker holds one
// coordinator session at a time: hash-partitioned factor shards, routed
// message slices, and the per-node join/aggregate kernels of the GHD
// bottom-up pass. It serves until Close.
func ServeWorker(addr string) (*WorkerServer, error) {
	w := cluster.NewWorker()
	srv, err := rpc.Serve(addr, w.Handle)
	if err != nil {
		return nil, fmt.Errorf("faqs: worker listen: %w", err)
	}
	return &WorkerServer{srv: srv}, nil
}

// Addr returns the listener's bound address.
func (w *WorkerServer) Addr() string { return w.srv.Addr() }

// Close stops the listener and drops every coordinator connection.
func (w *WorkerServer) Close() error { return w.srv.Close() }
