package faqs

import (
	"io"

	"repro/internal/obs"
)

// The observability façade: cmd/faqd (and any embedder that honors the
// façade contract) reaches metrics and traces only through these
// aliases and Engine methods, never by importing the internal obs
// package directly.

// Registry is an engine's metrics registry — counters, gauges, and
// fixed-bucket histograms with Prometheus text exposition. Each engine
// owns a private registry carrying its per-semiring service families
// and the process runtime gauges; callers may register additional
// families on it (faqd registers its HTTP counters here) and they ride
// the same WriteMetrics surface.
type Registry = obs.Registry

// Counter is a monotone int64 metric handle (one atomic add per
// sample).
type Counter = obs.Counter

// CounterVec is a labelled counter family; With binds one child.
type CounterVec = obs.CounterVec

// Gauge is a settable int64 metric handle.
type Gauge = obs.Gauge

// Histogram is a fixed-bucket int64 histogram handle.
type Histogram = obs.Histogram

// Trace is one recorded solve: request envelope (semiring, plan
// fingerprint, cache hit, fallback, error) plus per-phase and
// per-GHD-node spans with measured durations.
type Trace = obs.Trace

// Span is one timed phase or node task inside a Trace.
type Span = obs.Span

// MetricsContentType is the Content-Type for WriteMetrics output
// (Prometheus text exposition format 0.0.4).
const MetricsContentType = obs.ExpositionContentType

// traceBufferSize bounds the engine's trace ring: the most recent
// traces kept for RecentTraces (faqd's /debug/trace).
const traceBufferSize = 256

// Metrics returns the engine's registry, for registering caller-owned
// families that should appear in WriteMetrics output. Registration is
// idempotent; sampling a bound handle is one atomic add.
func (e *Engine) Metrics() *Registry { return e.metrics }

// WriteMetrics writes one Prometheus text-exposition document: a fresh
// runtime-gauge collection, the engine registry (per-semiring service
// counters and latency histograms, runtime gauges, caller families),
// then the process-global registry (exec pool, plan cache, failpoint,
// and delta-maintenance families shared by every engine in the
// process). Family names are disjoint across the two registries, so
// the concatenation is itself a valid exposition document.
func (e *Engine) WriteMetrics(w io.Writer) error {
	e.runtime.Collect()
	if _, err := e.metrics.WriteTo(w); err != nil {
		return err
	}
	_, err := obs.Default().WriteTo(w)
	return err
}

// RecentTraces returns up to n of the engine's most recent solve
// traces, newest first. The engine retains a bounded ring of the last
// traceBufferSize requests; tracing is always on (recording is a few
// copies into a preallocated ring — no I/O, no allocation growth).
func (e *Engine) RecentTraces(n int) []Trace { return e.tracer.Recent(n) }
