// Package faqs is the public embedded-library API of the repository: one
// façade over query building, planning, solving, and explain for the
// Functional Aggregate Queries of "Topology Dependent Bounds For FAQs"
// (Langberg, Li, Mani Jayaraman, Rudra; PODS 2019). It is the single
// supported way to use the system as a library — cmd/faqd, cmd/faqrun,
// and every examples/ program are clients of this package, so the
// library and the daemon share one execution path through the internal
// plan cache and service layer.
//
// # Building queries
//
// Relations stream in through typed builders and queries assemble
// fluently:
//
//	sch, _ := faqs.NewSchema("A", "B")
//	rb := faqs.NewRelationBuilder(sch)
//	rb.Add(1, 2).Add(3, 4)            // Boolean tuples (value 1)
//	rel, _ := rb.Relation()
//
//	q, err := faqs.NewQuery(faqs.Count).
//		Factor(rel).
//		Free("A").
//		Domain(64).
//		Build()
//
// The semiring comes from a registry — Bool, Count, SumProduct, MinPlus,
// MaxTimes, F2 — and bound variables may override their aggregate
// operator per the paper's general FAQ form (AggProduct everywhere;
// AggMax over SumProduct, whose identities it shares).
//
// # Solving and explaining
//
// An Engine is constructed once with functional options and serves many
// queries; plans compile once per variable-renaming-invariant query
// shape and are cached:
//
//	e := faqs.NewEngine(
//		faqs.WithPlanCache(256),
//		faqs.WithMemoryBudget(1<<30),
//	)
//	res, err := e.Solve(ctx, q)       // answer + plan fingerprint + timings
//	ex,  err := e.Explain(q)          // GHD tree, y(H)/n₂(H)/width/depth,
//	                                  // per-node bounds, cache hit/miss
//
// Explain surfaces the paper's topology-dependent bounds as user-facing
// planning output: the decomposition's internal-node-width y(H)
// (Definition 2.9), core size n₂(H) (Definition 3.1), and per-node
// output bounds (≤ N tuples for label-covered nodes per eq. 24, N^|χ(v)|
// for the fat core root). The same bounds drive admission control:
// WithMemoryBudget rejects requests whose structural estimate exceeds
// the budget with an error matching ErrOverBudget — before any
// execution work.
//
// # Answer contract
//
// Engine.Solve is exactly the solver contract of the internal layers: a
// served answer equals faq.SolveOnGHD on the bound cached plan, which
// for exact semirings (Bool, Count, F2) is bit-identical to per-request
// planning at every worker count; float semirings agree modulo the
// semiring's re-association tolerance. Values cross the façade as
// float64 (exact for Bool/F2 and for Count within 2^53).
//
// # Incremental maintenance
//
// Engine.Materialize builds a standing view of a query: the engine
// retains every GHD node's message relation and Materialized.Update
// re-answers insert/delete tuple batches by propagating semiring
// deltas up only the affected path — exact ⊕-deltas for Count,
// SumProduct, and F2, support counting for Bool, and a documented
// per-node recompute fallback for the idempotent semirings and general
// FAQs (Strategy names which one is in use; Stats counts updates and
// delta_fallbacks). Updates are atomic: on any error the view is
// unchanged and remains usable. cmd/faqd serves the same handles as
// named views through POST /materialize and /update.
//
// # Distributed execution
//
// SolveOnNetwork runs the paper's distributed protocols on a synchronous
// network topology (Line, Clique, Star, Ring, Grid) and reports measured
// rounds and bits next to the closed-form upper and lower bounds, so the
// examples can reproduce the paper's tables through the public API.
//
// # Observability
//
// Every engine is instrumented by default. Engine.WriteMetrics writes
// one Prometheus text-exposition document (MetricsContentType):
// per-semiring request/outcome counters and latency histograms, the
// process-wide plan-cache / exec-pool / failpoint / delta families,
// and Go runtime gauges. Caller-owned families registered on
// Engine.Metrics ride the same document. Sampling is one atomic add
// on a pre-bound handle — zero allocations on the solve hot path —
// so there is no off switch.
//
// The engine also keeps a bounded ring of per-request traces
// (Engine.RecentTraces): canonicalize → cache → admission → bind →
// exec phase spans plus one measured span per GHD node. The per-node
// durations fold back into the cached plan as exec.TaskShapes, so a
// shape's second solve already carries real measurements for /stats
// and schedule replay. cmd/faqd exposes all of it as GET /metrics and
// GET /debug/trace.
package faqs
