// Matrix chain pipeline (Section 6): k matrices over F₂ and a vector on
// a line of players; compares the sequential Θ(kN) protocol
// (Proposition 6.1), the doubling merge O(N²·log k + k) (Appendix I.1),
// and the trivial Θ(kN²) baseline against the Ω(kN) min-entropy lower
// bound (Theorem 6.4), showing the k ≶ N crossover.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/mcm"
)

func main() {
	r := rand.New(rand.NewSource(1))
	fmt.Println("  k    N   sequential     merge   trivial   LB Ω(kN)   winner")
	for _, kn := range [][2]int{{8, 64}, {16, 64}, {64, 16}, {256, 8}, {512, 8}} {
		k, n := kn[0], kn[1]
		ins := mcm.RandomInstance(k, n, r)
		want := ins.Answer()

		ySeq, seq, err := mcm.Sequential(ins, 1)
		if err != nil {
			log.Fatal(err)
		}
		yMrg, mrg, err := mcm.Merge(ins, 1)
		if err != nil {
			log.Fatal(err)
		}
		_, trv, err := mcm.Trivial(ins, 1)
		if err != nil {
			log.Fatal(err)
		}
		if !ySeq.Equal(want) || !yMrg.Equal(want) {
			log.Fatalf("protocols disagree at k=%d N=%d", k, n)
		}
		winner := "sequential"
		if mrg.Rounds < seq.Rounds {
			winner = "merge"
		}
		fmt.Printf("%4d %4d   %10d %9d %9d   %8.0f   %s\n",
			k, n, seq.Rounds, mrg.Rounds, trv.Rounds,
			mcm.LowerBoundRounds(k, n), winner)
	}
	fmt.Println("\nsequential is optimal for k ≤ N (Theorem 6.4); merge takes over for k ≫ N.")
}
