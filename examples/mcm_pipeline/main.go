// Matrix chain pipeline (Section 6) through the public API: the product
// y = M₁·M₂·…·M_k·v over F₂ is exactly an FAQ — variables X₀..X_k on a
// path, one factor per matrix listing its 1-entries as (row, col)
// tuples, the vector as a unary factor, X₀ free and every inner index
// XOR-aggregated (the F₂ semiring ⊕). The engine's GHD pass evaluates
// the chain right-to-left in O(k·N²) listed entries — the dynamic
// program behind the paper's sequential Θ(kN) protocol — and the result
// is checked against a direct bitset reference.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/faqs"
)

func main() {
	r := rand.New(rand.NewSource(1))
	eng := faqs.NewEngine()
	fmt.Println("   k    N   |y|   exec ms   plan        y(H)  depth")
	for _, kn := range [][2]int{{4, 32}, {8, 32}, {16, 16}, {64, 8}} {
		k, n := kn[0], kn[1]

		// Random matrices (density 1/2) and vector over F₂.
		mats := make([][][]bool, k)
		for m := range mats {
			mats[m] = randomMatrix(r, n)
		}
		vec := make([]bool, n)
		for i := range vec {
			vec[i] = r.Intn(2) == 1
		}

		// The FAQ: edges (X_{m}, X_{m+1}) for matrix m, (X_k) for the
		// vector, free X₀.
		qb := faqs.NewQuery(faqs.F2).Free("X0").Domain(n)
		for m, mat := range mats {
			rb := faqs.NewRelationBuilder(faqs.MustSchema(name(m), name(m+1)))
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if mat[i][j] {
						rb.Add(i, j)
					}
				}
			}
			rel, err := rb.Relation()
			if err != nil {
				log.Fatal(err)
			}
			qb.Factor(rel)
		}
		vb := faqs.NewRelationBuilder(faqs.MustSchema(name(k)))
		for i, set := range vec {
			if set {
				vb.Add(i)
			}
		}
		vrel, err := vb.Relation()
		if err != nil {
			log.Fatal(err)
		}
		q, err := qb.Factor(vrel).Build()
		if err != nil {
			log.Fatal(err)
		}

		res, err := eng.Solve(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		ex, err := eng.Explain(q)
		if err != nil {
			log.Fatal(err)
		}

		// Reference: fold the chain right-to-left directly.
		want := vec
		for m := k - 1; m >= 0; m-- {
			want = multiply(mats[m], want)
		}
		got := make([]bool, n)
		for _, t := range res.Tuples {
			got[t[0]] = true
		}
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("k=%d N=%d: engine and reference disagree at row %d", k, n, i)
			}
		}
		fmt.Printf("%4d %4d %5d %9.2f   %s  %4d %6d\n",
			k, n, res.Len(), float64(res.Stats.ExecNS)/1e6, res.PlanHash[:8], ex.Y, ex.Depth)
	}
	fmt.Println("\nevery chain verified against the direct F₂ fold; the GHD plan is the")
	fmt.Println("path decomposition, so the pass is the right-to-left dynamic program.")
}

func name(i int) string { return fmt.Sprintf("X%d", i) }

func randomMatrix(r *rand.Rand, n int) [][]bool {
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
		for j := range m[i] {
			m[i][j] = r.Intn(2) == 1
		}
	}
	return m
}

// multiply computes M·x over F₂.
func multiply(m [][]bool, x []bool) []bool {
	out := make([]bool, len(x))
	for i := range m {
		acc := false
		for j, set := range x {
			if set && m[i][j] {
				acc = !acc
			}
		}
		out[i] = acc
	}
	return out
}
