// Cyclic queries through the public API: a triangle core with a pendant
// path exercises both phases of the paper's machinery. Explain shows the
// fat core root the GYO elimination leaves behind (bag bound N^|χ(root)|),
// admission control rejects the core when the engine's memory
// budget is too small, the distributed run reduces the pendant forest
// with star protocols before finishing the core trivially (Lemma 4.2),
// and a free-variable set no bag covers demonstrates the brute-force
// fallback policy.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"repro/faqs"
)

const (
	N   = 64
	dom = 64
)

// randomRelation builds N random Boolean tuples over the given schema.
func randomRelation(r *rand.Rand, attrs ...string) *faqs.Relation {
	rb := faqs.NewRelationBuilder(faqs.MustSchema(attrs...))
	for i := 0; i < N; i++ {
		rb.Add(r.Intn(dom), r.Intn(dom))
	}
	rel, err := rb.Relation()
	if err != nil {
		log.Fatal(err)
	}
	return rel
}

// build assembles the triangle A-B-C plus pendant path C-D-E over the
// Bool semiring with the given free variables.
func build(r *rand.Rand, free ...string) *faqs.QueryBuilder {
	return faqs.NewQuery(faqs.Bool).
		Factor(randomRelation(r, "A", "B")).
		Factor(randomRelation(r, "B", "C")).
		Factor(randomRelation(r, "A", "C")).
		Factor(randomRelation(r, "C", "D")).
		Factor(randomRelation(r, "D", "E")).
		Free(free...).
		Domain(dom)
}

func main() {
	q, err := build(rand.New(rand.NewSource(5))).Build()
	if err != nil {
		log.Fatal(err)
	}

	eng := faqs.NewEngine()
	ex, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s\n", q)
	fmt.Printf("explain: y=%d n2=%d width=%d depth=%d, bound ≈%.3g bytes\n",
		ex.Y, ex.N2, ex.Width, ex.Depth, ex.EstimateBytes)
	fmt.Println(ex.Tree)

	// The N^3 core bound is exactly what admission control reads: a
	// 64 KiB budget rejects this query before execution, a generous one
	// admits it.
	tight := faqs.NewEngine(faqs.WithMemoryBudget(64 << 10))
	if _, err := tight.Solve(context.Background(), q); errors.Is(err, faqs.ErrOverBudget) {
		fmt.Printf("64 KiB budget : rejected before execution\n")
	} else {
		log.Fatalf("expected an over-budget rejection, got %v", err)
	}
	res, err := eng.Solve(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := res.Scalar()
	fmt.Printf("unbounded     : BCQ answer %v (exec %.2f ms)\n", v != 0, float64(res.Stats.ExecNS)/1e6)

	// Distributed on a 5-ring: pendant stars bottom-up, then the cyclic
	// core via the trivial protocol (Lemma 3.1).
	ring, err := faqs.Ring(5)
	if err != nil {
		log.Fatal(err)
	}
	nr, err := eng.SolveOnNetwork(q, ring, []int{0, 1, 2, 3, 4}, 0)
	if err != nil {
		log.Fatal(err)
	}
	b := nr.Bounds
	fmt.Printf("on a 5-ring   : %d rounds (%d bits); trivial %d rounds\n", nr.Rounds, nr.Bits, nr.TrivialRounds)
	fmt.Printf("bounds        : y=%d n2=%d d=%d  UB=%d LB~=%.1f gap=%.2f\n",
		b.Y, b.N2, b.Degeneracy, b.Upper, b.LowerTilde, b.Gap())

	// Free variables {A, E} sit in no single bag, so the GHD pass cannot
	// deliver the marginal: the default engine falls back to brute
	// force, a fallback-disabled engine rejects with a typed error.
	qf, err := build(rand.New(rand.NewSource(5)), "A", "E").Build()
	if err != nil {
		log.Fatal(err)
	}
	resF, err := eng.Solve(context.Background(), qf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("free {A,E}    : %d rows via brute-force fallback (fallback=%v)\n", resF.Len(), resF.Fallback)
	strict := faqs.NewEngine(faqs.WithBruteForceFallback(false))
	if _, err := strict.Solve(context.Background(), qf); errors.Is(err, faqs.ErrFallbackDisabled) {
		fmt.Printf("strict engine : rejected (fallback disabled)\n")
	} else {
		log.Fatalf("expected a fallback-disabled rejection, got %v", err)
	}
}
