// Cyclic queries: a triangle core with a pendant path exercises both
// phases of the paper's general protocol (Lemma 4.2): the pendant forest
// is reduced by bottom-up star protocols, then the cyclic core is
// finished with the trivial protocol (Lemma 3.1). The lower bound embeds
// TRIBES pairs on the core's cycle (Theorem 4.4, Case 1).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/topology"
	"repro/internal/tribes"
	"repro/internal/workload"
)

func main() {
	// Query: triangle A-B-C plus pendant path C-D-E.
	b := hypergraph.NewBuilder()
	b.Edge("A", "B")
	b.Edge("B", "C")
	b.Edge("A", "C")
	b.Edge("C", "D")
	b.Edge("D", "E")
	h := b.Build()

	const N = 64
	r := rand.New(rand.NewSource(5))
	q := workload.BCQ(h, N, N, r)
	g := topology.Ring(5)
	assign := protocol.Assignment{0, 1, 2, 3, 4}
	eng, err := core.New(q, g, assign, 0)
	if err != nil {
		log.Fatal(err)
	}
	ans, rep, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	v, err := faq.BCQValue(q, ans)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := eng.Bounds()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s\n", h)
	fmt.Printf("BCQ answer: %v in %d rounds (%d bits) on a 5-ring\n", v, rep.Rounds, rep.Bits)
	fmt.Printf("structure: y=%d n2=%d d=%d  UB=%d LB~=%.1f gap=%.2f\n",
		bounds.Y, bounds.N2, bounds.Degeneracy, bounds.Upper, bounds.LowerTilde, bounds.Gap())

	// Lower bound: embed one TRIBES pair on the triangle (Case 1 of
	// Theorem 4.4 uses vertex-disjoint cycles).
	cycles := []hypergraph.Cycle{{0, 1, 2}}
	in := tribes.HardInstance(1, 16, true, r) // ν = 4
	emb, err := tribes.EmbedOnCycles(h, cycles, in)
	if err != nil {
		log.Fatal(err)
	}
	res, err := faq.BruteForce(emb.Q)
	if err != nil {
		log.Fatal(err)
	}
	got, _ := faq.BCQValue(emb.Q, res)
	fmt.Printf("\ncycle-embedded TRIBES: instance=%v, embedded BCQ=%v (equivalent: %v)\n",
		in.Eval(), got, got == in.Eval())
}
