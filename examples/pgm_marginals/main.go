// PGM marginals through the public API: the paper's second headline
// application (Section 1). A chain-structured probabilistic graphical
// model is an FAQ-SS over the sum-product semiring — the partition
// function is the scalar query (no free variables), a variable marginal
// frees that variable, and the engine compiles the chain decomposition
// once and reuses it for every marginal of the same shape. The Viterbi
// (MAP) value of the same potentials is one more query over MaxTimes.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/faqs"
)

const (
	vars = 8 // chain length
	dom  = 4 // states per variable
)

func main() {
	r := rand.New(rand.NewSource(7))

	// Random positive pairwise potentials φ_i(x_i, x_{i+1}). The same
	// float tables feed both semirings.
	type entry struct {
		a, b int
		v    float64
	}
	potentials := make([][]entry, vars-1)
	for i := range potentials {
		for a := 0; a < dom; a++ {
			for b := 0; b < dom; b++ {
				potentials[i] = append(potentials[i], entry{a, b, 0.1 + r.Float64()})
			}
		}
	}
	build := func(sem faqs.Semiring, free ...string) *faqs.Query {
		qb := faqs.NewQuery(sem).Domain(dom).Free(free...)
		for i, pot := range potentials {
			sch := faqs.MustSchema(fmt.Sprintf("X%d", i), fmt.Sprintf("X%d", i+1))
			rb := faqs.NewRelationBuilder(sch)
			for _, e := range pot {
				rb.AddValued(e.v, e.a, e.b)
			}
			rel, err := rb.Relation()
			if err != nil {
				log.Fatal(err)
			}
			qb.Factor(rel)
		}
		q, err := qb.Build()
		if err != nil {
			log.Fatal(err)
		}
		return q
	}

	eng := faqs.NewEngine()
	ctx := context.Background()

	// Partition function Z = Σ_x Π_i φ_i.
	zRes, err := eng.Solve(ctx, build(faqs.SumProduct))
	if err != nil {
		log.Fatal(err)
	}
	z, err := zRes.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition function Z = %.4f\n", z)

	// Marginal of X3: free it, normalize by Z.
	mRes, err := eng.Solve(ctx, build(faqs.SumProduct, "X3"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("P(x3):")
	sum := 0.0
	for i, t := range mRes.Tuples {
		p := mRes.Values[i] / z
		sum += p
		fmt.Printf("  x3=%d : %.4f\n", t[0], p)
	}
	if math.Abs(sum-1) > 1e-9 {
		log.Fatalf("marginal does not normalize: Σ = %g", sum)
	}

	// Z (no free variables) and the X3-marginal are distinct query
	// shapes, so the cache compiled one plan each; this Explain hits the
	// marginal's resident plan.
	ex, err := eng.Explain(build(faqs.SumProduct, "X3"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain plan: y=%d width=%d depth=%d, cache hit=%v\n", ex.Y, ex.Width, ex.Depth, ex.CacheHit)
	fmt.Println(ex.Tree)

	// Viterbi / MAP value: the same potentials over (ℝ≥0, max, ×).
	vRes, err := eng.Solve(ctx, build(faqs.MaxTimes))
	if err != nil {
		log.Fatal(err)
	}
	mapv, err := vRes.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAP value max_x Π φ = %.4f (Z/%d^%d mean scale %.4f)\n",
		mapv, dom, vars, z/math.Pow(dom, vars))
}
