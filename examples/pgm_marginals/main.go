// PGM marginals: the paper's second headline application (Section 1).
// A chain-structured probabilistic graphical model is evaluated as an
// FAQ-SS over the sum-product semiring; the factor marginal (F = e, the
// case the paper highlights) is computed by the distributed protocol on
// a line of players and checked against the centralized GHD pass.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/faq"
	"repro/internal/pgm"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(7))
	const vars, dom = 8, 4

	// An 8-variable chain PGM with random positive pairwise potentials.
	model := pgm.NewChain(vars, dom, r)

	// Partition function and a variable marginal, centralized.
	z, err := model.Partition()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition function Z = %.4f\n", z)

	marg, err := model.VariableMarginal(3)
	if err != nil {
		log.Fatal(err)
	}
	probs, err := model.Normalize(marg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("P(x3):")
	for k, p := range probs {
		fmt.Printf("  x3=%s : %.4f\n", k, p)
	}

	// Distributed: the factor marginal over e0's scope on a 7-player
	// line, one potential per player.
	q := model.MarginalQuery(model.H.Edge(0))
	g := topology.Line(model.H.NumEdges())
	players := make([]int, g.N())
	for i := range players {
		players[i] = i
	}
	s := &protocol.Setup[float64]{
		Q: q, G: g,
		Assign: workload.RoundRobinAssignment(q.H.NumEdges(), players),
		Output: 0,
	}
	ans, rep, err := protocol.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	want, err := faq.Solve(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed factor marginal F=%v: %d rounds, %d bits\n",
		q.Free, rep.Rounds, rep.Bits)
	fmt.Printf("matches centralized GHD pass: %v\n",
		relation.Equal(semiring.SumProduct{}, ans, want))
}
