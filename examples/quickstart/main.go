// Quickstart: the library API end to end on Example 2.2 of the paper —
// the Boolean Conjunctive Query of the star H₁ = R(A,B), S(A,C), T(A,D),
// U(A,E). The engine solves and explains it centrally (plan compiled
// once, cached thereafter), then the same instance runs distributed on
// the 4-player line topology G₁ (≈ N+2 rounds) and on the clique G₂
// (≈ N/2+2 rounds via the two-path Steiner packing of Example 2.3).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/faqs"
)

func main() {
	const N = 128 // tuples per relation (the paper's size parameter)

	// Random relations sharing the planted value A = 7, so the query is
	// satisfiable: BCQ asks whether π_A(R) ∩ π_A(S) ∩ π_A(T) ∩ π_A(U)
	// is nonempty.
	r := rand.New(rand.NewSource(42))
	qb := faqs.NewQuery(faqs.Bool).Domain(N)
	for _, leaf := range []string{"B", "C", "D", "E"} {
		rb := faqs.NewRelationBuilder(faqs.MustSchema("A", leaf))
		for i := 0; i < N-1; i++ {
			rb.Add(r.Intn(N), r.Intn(N))
		}
		rb.Add(7, 0)
		rel, err := rb.Relation()
		if err != nil {
			log.Fatal(err)
		}
		qb.Factor(rel)
	}
	q, err := qb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// One engine serves everything; plans compile once per query shape.
	eng := faqs.NewEngine(faqs.WithPlanCache(64))
	res, err := eng.Solve(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	v, err := res.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BCQ answer      : %v  (plan %s, cache %v)\n", v != 0, res.PlanHash, res.CacheHit)

	res2, _ := eng.Solve(context.Background(), q)
	fmt.Printf("second solve    : cache hit = %v\n", res2.CacheHit)

	ex, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explain         : y(H)=%d n₂(H)=%d width=%d depth=%d, N=%d, ≈%.0f bytes\n",
		ex.Y, ex.N2, ex.Width, ex.Depth, ex.N, ex.EstimateBytes)
	fmt.Println(ex.Tree)

	// The same instance distributed: player i holds relation i; P₂
	// (player 1) must learn the answer.
	line, err := faqs.Line(4)
	if err != nil {
		log.Fatal(err)
	}
	nr, err := eng.SolveOnNetwork(q, line, []int{0, 1, 2, 3}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured rounds : %d   (paper, Example 2.2: N+2 = %d)\n", nr.Rounds, N+2)
	fmt.Printf("bits on wire    : %d\n", nr.Bits)
	fmt.Printf("y(H)=%d  MinCut=%d  UB=%d  LB~=%.1f\n",
		nr.Bounds.Y, nr.Bounds.MinCut, nr.Bounds.Upper, nr.Bounds.LowerTilde)

	// On the 4-clique G₂ the two-path Steiner packing halves the rounds.
	clique, err := faqs.Clique(4)
	if err != nil {
		log.Fatal(err)
	}
	nrC, err := eng.SolveOnNetwork(q, clique, []int{0, 1, 2, 3}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on clique G2    : %d rounds (paper, Example 2.3: N/2+2 = %d)\n", nrC.Rounds, N/2+2)
}
