// Quickstart: Example 2.2 of the paper end to end — the Boolean
// Conjunctive Query of the star H₁ = R(A,B), S(A,C), T(A,D), U(A,E)
// computed on the 4-player line topology G₁, with player P₂ learning the
// answer in ≈ N+2 rounds.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/topology"
)

func main() {
	const N = 128 // tuples per relation (the paper's size parameter)

	// The query hypergraph H1 of Figure 1.
	h := hypergraph.ExampleH1()

	// Random relations sharing the planted value A = 7, so the query is
	// satisfiable: BCQ asks whether π_A(R) ∩ π_A(S) ∩ π_A(T) ∩ π_A(U)
	// is nonempty.
	r := rand.New(rand.NewSource(42))
	sb := semiring.Bool{}
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for e := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(e))
		for i := 0; i < N-1; i++ {
			b.AddOne(r.Intn(N), r.Intn(N))
		}
		b.AddOne(7, 0)
		factors[e] = b.Build()
	}
	q := faq.NewBCQ(h, factors, N)

	// The line topology G1 with player i holding relation i; P2 (node 1)
	// must learn the answer.
	g := topology.Line(4)
	eng, err := core.New(q, g, protocol.Assignment{0, 1, 2, 3}, 1)
	if err != nil {
		log.Fatal(err)
	}

	ans, rep, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	v, err := faq.BCQValue(q, ans)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := eng.Bounds()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BCQ answer      : %v\n", v)
	fmt.Printf("measured rounds : %d   (paper, Example 2.2: N+2 = %d)\n", rep.Rounds, N+2)
	fmt.Printf("bits on wire    : %d\n", rep.Bits)
	fmt.Printf("y(H)=%d  MinCut=%d  UB=%d  LB~=%.1f\n",
		bounds.Y, bounds.MinCut, bounds.Upper, bounds.LowerTilde)

	// The same instance on the 4-clique G2 halves the rounds via the
	// two-path Steiner packing of Example 2.3.
	engC, err := core.New(q, topology.Clique(4), protocol.Assignment{0, 1, 2, 3}, 1)
	if err != nil {
		log.Fatal(err)
	}
	_, repC, err := engC.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on clique G2    : %d rounds (paper, Example 2.3: N/2+2 = %d)\n", repC.Rounds, N/2+2)
}
