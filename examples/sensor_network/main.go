// Sensor network aggregation (Appendix A.4): a 4×4 grid of sensors,
// each holding a reading table keyed by a shared event id; the base
// station (corner node) computes which event ids were observed by every
// sensor cluster — a star BCQ whose rounds the paper bounds by
// y(H)·(N/ST + Δ) on the grid fabric.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/topology"
)

func main() {
	const (
		clusters = 5  // sensor clusters contributing tables
		events   = 96 // event-id universe (the paper's N)
		rows     = 4  // grid fabric
		cols     = 4
	)
	r := rand.New(rand.NewSource(3))
	sb := semiring.Bool{}

	// Query: event E observed with cluster-local metadata M_i:
	// R_i(E, M_i) — a star centered on the shared event id.
	h := hypergraph.StarGraph(clusters)
	factors := make([]*relation.Relation[bool], clusters)
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for e := 0; e < events; e++ {
			if r.Intn(4) != 0 { // each cluster misses ~1/4 of events
				b.AddOne(e, r.Intn(events))
			}
		}
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, events)

	// Grid fabric: cluster tables live at spread-out sensors; the base
	// station is node 0 (a corner).
	g := topology.Grid(rows, cols)
	assign := protocol.Assignment{5, 3, 10, 12, 15}
	eng, err := core.New(q, g, assign, 0)
	if err != nil {
		log.Fatal(err)
	}
	ans, rep, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	v, err := faq.BCQValue(q, ans)
	if err != nil {
		log.Fatal(err)
	}
	_, repTrivial, err := eng.RunTrivial()
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := eng.Bounds()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("some event seen by every cluster: %v\n", v)
	fmt.Printf("aggregation protocol : %d rounds, %d bits\n", rep.Rounds, rep.Bits)
	fmt.Printf("ship-everything      : %d rounds, %d bits\n", repTrivial.Rounds, repTrivial.Bits)
	fmt.Printf("grid structure       : MinCut=%d ST=%d Δ=%d  UB=%d LB~=%.1f\n",
		bounds.MinCut, bounds.ST, bounds.Delta, bounds.Upper, bounds.LowerTilde)
}
