// Sensor network aggregation (Appendix A.4) through the public API: a
// 4×4 grid of sensors, each cluster holding a reading table keyed by a
// shared event id; the base station (corner node) computes which event
// ids were observed by every cluster — a star query whose rounds the
// paper bounds by y(H)·(N/ST + Δ) on the grid fabric. The engine first
// answers the query centrally (free variable E: the observed-by-all
// event ids), then replays it distributed on the grid.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/faqs"
)

func main() {
	const (
		clusters = 5  // sensor clusters contributing tables
		events   = 96 // event-id universe (the paper's N)
		rows     = 4  // grid fabric
		cols     = 4
	)
	r := rand.New(rand.NewSource(3))

	// Query: event E observed with cluster-local metadata M_i:
	// R_i(E, M_i) — a star centered on the shared event id.
	qb := faqs.NewQuery(faqs.Bool).Free("E").Domain(events)
	for i := 0; i < clusters; i++ {
		rb := faqs.NewRelationBuilder(faqs.MustSchema("E", fmt.Sprintf("M%d", i)))
		for e := 0; e < events; e++ {
			if r.Intn(4) != 0 { // each cluster misses ~1/4 of events
				rb.Add(e, r.Intn(events))
			}
		}
		rel, err := rb.Relation()
		if err != nil {
			log.Fatal(err)
		}
		qb.Factor(rel)
	}
	q, err := qb.Build()
	if err != nil {
		log.Fatal(err)
	}

	eng := faqs.NewEngine()
	res, err := eng.Solve(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events observed by every cluster: %d of %d\n", res.Len(), events)

	// Grid fabric: cluster tables live at spread-out sensors; the base
	// station is node 0 (a corner) and must learn the answer.
	grid, err := faqs.Grid(rows, cols)
	if err != nil {
		log.Fatal(err)
	}
	nr, err := eng.SolveOnNetwork(q, grid, []int{5, 3, 10, 12, 15}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if nr.Answer.Len() != res.Len() {
		log.Fatalf("distributed answer has %d rows, centralized %d", nr.Answer.Len(), res.Len())
	}
	b := nr.Bounds
	fmt.Printf("aggregation protocol : %d rounds, %d bits\n", nr.Rounds, nr.Bits)
	fmt.Printf("ship-everything      : %d rounds, %d bits\n", nr.TrivialRounds, nr.TrivialBits)
	fmt.Printf("grid structure       : MinCut=%d ST=%d Δ=%d  UB=%d LB~=%.1f\n",
		b.MinCut, b.ST, b.Delta, b.Upper, b.LowerTilde)
}
