package repro

// One benchmark per experiment of the paper's evaluation (see DESIGN.md
// §4 for the index). Each benchmark reports the measured round count of
// the schedule under test via b.ReportMetric(..., "rounds"), so
// `go test -bench=. -benchmem` regenerates every table and figure next
// to the usual time/allocation numbers.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/mcm"
	"repro/internal/mpc"
	"repro/internal/protocol"
	"repro/internal/topology"
	"repro/internal/tribes"
	"repro/internal/workload"
)

// runBCQ executes the main protocol once and returns measured rounds.
func runBCQ(b *testing.B, h *hypergraph.Hypergraph, g *topology.Graph, n int, seed int64) int {
	b.Helper()
	r := rand.New(rand.NewSource(seed))
	q := workload.BCQ(h, n, n, r)
	players := make([]int, g.N())
	for i := range players {
		players[i] = i
	}
	s := &protocol.Setup[bool]{
		Q: q, G: g,
		Assign: workload.RoundRobinAssignment(h.NumEdges(), players),
		Output: 0,
	}
	_, rep, err := protocol.Run(s)
	if err != nil {
		b.Fatal(err)
	}
	return rep.Rounds
}

// BenchmarkTable1FAQLine is Table 1 row 1: constant-degeneracy FAQ on a
// line, Θ̃((y+n₂)·N) rounds.
func BenchmarkTable1FAQLine(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				rounds = runBCQ(b, hypergraph.PathGraph(5), topology.Line(4), n, 1)
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/float64(n), "rounds/N")
		})
	}
}

// BenchmarkTable1FAQArbitrary is Table 1 row 2: the same query family on
// well-connected topologies, Θ̃((y+n₂)·N/MinCut).
func BenchmarkTable1FAQArbitrary(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *topology.Graph
	}{
		{"clique4", topology.Clique(4)},
		{"clique8", topology.Clique(8)},
		{"grid3x3", topology.Grid(3, 3)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				rounds = runBCQ(b, hypergraph.StarGraph(4), tc.g, 256, 2)
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkTable1BCQDegenerate is Table 1 row 3: d-degenerate simple
// graphs, gap Õ(d).
func BenchmarkTable1BCQDegenerate(b *testing.B) {
	for _, d := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(d)))
			h := workload.DDegenerateGraph(6, d, r)
			rounds := 0
			for i := 0; i < b.N; i++ {
				rounds = runBCQ(b, h, topology.Grid(2, 3), 128, 3)
			}
			players := []int{0, 1, 2, 3, 4, 5}
			bounds, err := core.ComputeBounds(h, 128, topology.Grid(2, 3), players)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(bounds.Gap(), "gapUB/LB")
		})
	}
}

// BenchmarkTable1FAQHypergraph is Table 1 row 4: arity-r hypergraphs,
// gap Õ(d²r²).
func BenchmarkTable1FAQHypergraph(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	h := workload.DDegenerateHypergraph(6, 2, 3, r)
	rounds := 0
	for i := 0; i < b.N; i++ {
		rounds = runBCQ(b, h, topology.Grid(2, 3), 128, 4)
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkTable1MCM is Table 1 row 5: MCM on a line, Θ(kN) with gap
// O(1).
func BenchmarkTable1MCM(b *testing.B) {
	for _, kn := range [][2]int{{8, 64}, {16, 64}} {
		k, n := kn[0], kn[1]
		b.Run(fmt.Sprintf("k=%d/N=%d", k, n), func(b *testing.B) {
			r := rand.New(rand.NewSource(5))
			ins := mcm.RandomInstance(k, n, r)
			rounds := 0
			for i := 0; i < b.N; i++ {
				_, rep, err := mcm.Sequential(ins, 1)
				if err != nil {
					b.Fatal(err)
				}
				rounds = rep.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/mcm.LowerBoundRounds(k, n), "gapUB/LB")
		})
	}
}

// BenchmarkFigureGHDWidths regenerates the Figure 1/2 width values.
func BenchmarkFigureGHDWidths(b *testing.B) {
	hs := map[string]*hypergraph.Hypergraph{
		"H1": hypergraph.ExampleH1(),
		"H2": hypergraph.ExampleH2(),
		"H3": hypergraph.ExampleH3(),
	}
	want := map[string]int{"H1": 1, "H2": 1, "H3": 2}
	for name, h := range hs {
		b.Run(name, func(b *testing.B) {
			y := 0
			for i := 0; i < b.N; i++ {
				var err error
				y, err = ghd.Width(h)
				if err != nil {
					b.Fatal(err)
				}
			}
			if y != want[name] {
				b.Fatalf("y(%s) = %d, want %d", name, y, want[name])
			}
			b.ReportMetric(float64(y), "y(H)")
		})
	}
}

// BenchmarkExample21SelfLoopLine measures Example 2.1 (N+2 rounds).
func BenchmarkExample21SelfLoopLine(b *testing.B) {
	n := 128
	rounds := 0
	for i := 0; i < b.N; i++ {
		rounds = runBCQ(b, hypergraph.ExampleH0(), topology.Line(4), n, 6)
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(n+2), "paperN+2")
}

// BenchmarkExample22StarLine measures Example 2.2 (N+2 rounds).
func BenchmarkExample22StarLine(b *testing.B) {
	n := 128
	rounds := 0
	for i := 0; i < b.N; i++ {
		rounds = runBCQ(b, hypergraph.ExampleH1(), topology.Line(4), n, 7)
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(n+2), "paperN+2")
}

// BenchmarkExample23StarClique measures Example 2.3 (N/2+2 rounds).
func BenchmarkExample23StarClique(b *testing.B) {
	n := 128
	rounds := 0
	for i := 0; i < b.N; i++ {
		rounds = runBCQ(b, hypergraph.ExampleH1(), topology.Clique(4), n, 8)
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(n/2+2), "paperN/2+2")
}

// BenchmarkExample24TribesLB runs the Lemma 4.4 lower-bound pipeline.
func BenchmarkExample24TribesLB(b *testing.B) {
	n := 128
	h := hypergraph.ExampleH1()
	sites, err := tribes.SitesForForest(h)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	in := tribes.HardInstance(1, n, true, r)
	emb, err := tribes.EmbedAtSites(h, sites, in)
	if err != nil {
		b.Fatal(err)
	}
	g := topology.Line(4)
	minCut, side, err := flow.MinCutSeparating(g, []int{0, 1, 2, 3})
	if err != nil {
		b.Fatal(err)
	}
	assign, _, bNode, err := tribes.CutAssignment(emb, side)
	if err != nil {
		b.Fatal(err)
	}
	rounds := 0
	for i := 0; i < b.N; i++ {
		s := &protocol.Setup[bool]{Q: emb.Q, G: g, Assign: assign, Output: bNode}
		_, rep, err := protocol.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(tribes.LowerBoundRounds(emb.M, n, minCut), "LBrounds")
}

// BenchmarkCorollary43StarLineK sweeps the star-on-k-line bound ≤ N+k.
func BenchmarkCorollary43StarLineK(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			n := 128
			rounds := 0
			for i := 0; i < b.N; i++ {
				rounds = runBCQ(b, hypergraph.StarGraph(k), topology.Line(k), n, 10)
			}
			if rounds > n+4*k {
				b.Fatalf("rounds %d above Corollary 4.3 envelope N+k", rounds)
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkSetIntersection measures Theorem 3.11 across topologies.
func BenchmarkSetIntersection(b *testing.B) {
	n := 256
	all := make([]int, n)
	for x := range all {
		all[x] = x
	}
	for _, tc := range []struct {
		name string
		g    *topology.Graph
		K    []int
	}{
		{"line4", topology.Line(4), []int{0, 1, 2, 3}},
		{"clique8", topology.Clique(8), []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{"grid3x3", topology.Grid(3, 3), []int{0, 2, 6, 8}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sets := map[int][]int{}
			for _, u := range tc.K {
				sets[u] = all
			}
			rounds := 0
			for i := 0; i < b.N; i++ {
				_, rep, err := protocol.SetIntersection(&protocol.SetIntersectionInput{
					G: tc.g, Sets: sets, Output: tc.K[0], Universe: n,
				})
				if err != nil {
					b.Fatal(err)
				}
				rounds = rep.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkTrivialProtocol measures the Lemma 3.1 baseline.
func BenchmarkTrivialProtocol(b *testing.B) {
	n := 256
	r := rand.New(rand.NewSource(11))
	q := workload.BCQ(hypergraph.StarGraph(4), n, n, r)
	s := &protocol.Setup[bool]{
		Q: q, G: topology.Line(4),
		Assign: protocol.Assignment{0, 1, 2, 3}, Output: 0,
	}
	rounds := 0
	for i := 0; i < b.N; i++ {
		_, rep, err := protocol.RunTrivial(s)
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkMCFvsMinCut measures Appendix D.1's τ_MCF ≈ N′/MinCut.
func BenchmarkMCFvsMinCut(b *testing.B) {
	g := topology.Grid(3, 4)
	K := []int{0, 11}
	units := 512
	tau := 0
	for i := 0; i < b.N; i++ {
		var err error
		tau, _, err = flow.TauMCF(g, K, units)
		if err != nil {
			b.Fatal(err)
		}
	}
	mc, _, err := flow.MinCutSeparating(g, K)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(tau), "tauMCF")
	b.ReportMetric(float64(tau)*float64(mc)/float64(units), "ratio")
}

// BenchmarkMCMSequential measures Proposition 6.1.
func BenchmarkMCMSequential(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	ins := mcm.RandomInstance(16, 64, r)
	rounds := 0
	for i := 0; i < b.N; i++ {
		_, rep, err := mcm.Sequential(ins, 1)
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkMCMMergeCrossover measures Appendix I.1's k ≫ N regime.
func BenchmarkMCMMergeCrossover(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	for _, kn := range [][2]int{{16, 32}, {256, 8}} {
		k, n := kn[0], kn[1]
		b.Run(fmt.Sprintf("k=%d/N=%d", k, n), func(b *testing.B) {
			ins := mcm.RandomInstance(k, n, r)
			seqR, mrgR := 0, 0
			for i := 0; i < b.N; i++ {
				_, seq, err := mcm.Sequential(ins, 1)
				if err != nil {
					b.Fatal(err)
				}
				_, mrg, err := mcm.Merge(ins, 1)
				if err != nil {
					b.Fatal(err)
				}
				seqR, mrgR = seq.Rounds, mrg.Rounds
			}
			b.ReportMetric(float64(seqR), "seqRounds")
			b.ReportMetric(float64(mrgR), "mergeRounds")
		})
	}
}

// BenchmarkMCMLowerBound reports the Theorem 6.4 gap.
func BenchmarkMCMLowerBound(b *testing.B) {
	r := rand.New(rand.NewSource(14))
	ins := mcm.RandomInstance(8, 64, r)
	rounds := 0
	for i := 0; i < b.N; i++ {
		_, rep, err := mcm.Sequential(ins, 1)
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.Rounds
	}
	b.ReportMetric(float64(rounds)/mcm.LowerBoundRounds(8, 64), "gapUB/LB")
}

// BenchmarkMinEntropyPreservation is the Theorem 6.3 Monte Carlo.
func BenchmarkMinEntropyPreservation(b *testing.B) {
	e := &entropy.ProductExperiment{N: 10, GammaRows: 2, AlphaBits: 6, Samples: 50000}
	var res *entropy.ProductResult
	r := rand.New(rand.NewSource(15))
	for i := 0; i < b.N; i++ {
		var err error
		res, err = e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.HAxEstimate, "HinfAx")
	b.ReportMetric(res.Bound, "thmBound")
}

// BenchmarkShannonCounterexample evaluates Appendix I.3 exactly.
func BenchmarkShannonCounterexample(b *testing.B) {
	c := &entropy.ShannonCounterexample{N: 20, T: 4, Alpha: 0.2}
	var res *entropy.CounterexampleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = c.Exact()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.HShX, "HshX")
	b.ReportMetric(res.HCondAx, "HcondAx")
}

// BenchmarkMPC0Star sweeps the Appendix A.1.4 MPC(0) comparison.
func BenchmarkMPC0Star(b *testing.B) {
	for _, p := range []int{2, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := mpc.Star0(4, p, 128, 128, 0, rand.New(rand.NewSource(16)))
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(mpc.Mpc0RoundBound(128, p), "bound")
		})
	}
}

// BenchmarkMPCEpsStar sweeps the Appendix A.2.3 clique comparison.
func BenchmarkMPCEpsStar(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := mpc.StarEps(6, p, 128, 128, 0, rand.New(rand.NewSource(17)))
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkGeneralFAQ runs a sum-product FAQ with free variables
// distributed (Theorems 5.1/5.2 shape).
func BenchmarkGeneralFAQ(b *testing.B) {
	r := rand.New(rand.NewSource(18))
	h := hypergraph.PathGraph(5)
	q := workload.SumProductFAQ(h, []int{0, 1}, 128, 128, r)
	s := &protocol.Setup[float64]{
		Q: q, G: topology.Line(4),
		Assign: protocol.Assignment{0, 1, 2, 3}, Output: 0,
	}
	rounds := 0
	for i := 0; i < b.N; i++ {
		_, rep, err := protocol.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		rounds = rep.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkPGMMarginal runs the distributed PGM factor marginal.
func BenchmarkPGMMarginal(b *testing.B) {
	tbl, err := experiments.PGMTable(64)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PGMTable(64); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tbl.Rows)), "models")
}

// BenchmarkTheorem41Gap sweeps the arity-2 degenerate gap of
// Theorem 4.1.
func BenchmarkTheorem41Gap(b *testing.B) {
	r := rand.New(rand.NewSource(19))
	h := workload.DDegenerateGraph(8, 2, r)
	g := topology.Grid(2, 4)
	players := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var gap float64
	for i := 0; i < b.N; i++ {
		bounds, err := core.ComputeBounds(h, 256, g, players)
		if err != nil {
			b.Fatal(err)
		}
		gap = bounds.Gap()
	}
	b.ReportMetric(gap, "gapUB/LB")
}
