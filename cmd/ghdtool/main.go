// Command ghdtool inspects a query hypergraph: it prints the GYO
// elimination trace (Definition 2.6), the core/forest decomposition
// C(H), W(H) and n₂(H) (Definition 2.7), the degeneracy, and a
// width-minimized GYO-GHD with its internal-node-width y(H)
// (Definition 2.9).
//
// Usage:
//
//	ghdtool 'A,B,C;B,D;C,F;A,B,E'
//	ghdtool -example H2
//
// The positional argument lists hyperedges separated by ';', each a
// comma-separated vertex-name list.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
)

// usageError marks malformed command-line input: main prints the flag
// usage and exits 2 for these, while runtime failures exit 1 without the
// usage noise.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func main() {
	example := flag.String("example", "", "use a built-in example hypergraph: H0, H1, H2, H3")
	flag.Parse()
	if err := run(*example, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "ghdtool: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(example string, args []string) error {
	var h *hypergraph.Hypergraph
	switch {
	case example != "":
		switch strings.ToUpper(example) {
		case "H0":
			h = hypergraph.ExampleH0()
		case "H1":
			h = hypergraph.ExampleH1()
		case "H2":
			h = hypergraph.ExampleH2()
		case "H3":
			h = hypergraph.ExampleH3()
		default:
			return usageError{fmt.Errorf("unknown example %q (have H0..H3)", example)}
		}
	case len(args) == 1:
		var err error
		h, err = cli.ParseQuery(args[0])
		if err != nil {
			return usageError{err}
		}
	default:
		return usageError{fmt.Errorf("need one edge-list argument or -example (see -h)")}
	}

	fmt.Printf("hypergraph: %s\n", h)
	fmt.Printf("arity r = %d, degeneracy d = %d, acyclic = %v\n\n",
		h.Arity(), hypergraph.Degeneracy(h), hypergraph.IsAcyclic(h))

	res := hypergraph.RunGYO(h)
	fmt.Println("GYO trace:")
	for _, s := range res.Steps {
		fmt.Printf("  %s\n", s)
	}
	d := hypergraph.Decompose(h)
	fmt.Printf("\ncore H' edges: %v\n", d.Core)
	for _, tr := range d.Trees {
		fmt.Printf("pendant tree rooted at e%d: edges %v\n", tr.Root, tr.Edges)
	}
	fmt.Printf("V(C(H)) = %v, n2(H) = %d\n\n", d.CoreVertices, d.N2())

	g, err := ghd.Minimize(h)
	if err != nil {
		return err
	}
	fmt.Printf("width-minimized GYO-GHD (y(H) = %d internal nodes, depth %d):\n%s",
		g.InternalNodes(), g.Depth(), g)
	return nil
}
