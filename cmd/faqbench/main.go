// Command faqbench regenerates the paper's tables, figures, and worked
// examples as text tables of paper-claim vs. measured values.
//
// Usage:
//
//	faqbench [experiment ...]
//	faqbench -parallel [out.json]
//	faqbench -incremental [out.json]
//	faqbench -cluster [out.json [n]]
//
// With no arguments every experiment runs. Available experiment ids:
// widths, table1, examples, example24, setint, taumcf, mcm, entropy,
// shannon, mpc, pgm.
//
// -parallel instead benchmarks the exec-layer parallel GHD engine on a
// multi-subtree workload at n = 1e4 and 1e5, sweeping 1/2/4/8 workers,
// and writes the speedup-vs-workers curves to BENCH_parallel.json (or
// the given path). See parallel.go for the methodology.
//
// -incremental benchmarks the delta maintenance engine: point-update
// latency of a materialized view vs a full from-scratch re-solve on
// path7/star6/tree6 at n = 1e4 and 1e5, written to
// BENCH_incremental.json. See incremental.go for the methodology.
//
// -cluster benchmarks the real distributed engine: loopback TCP fleets
// of 1/2/4/8 shard workers run the scatter/gather GHD pass per workload
// template, the measured bytes-on-wire are gated against the
// closed-form cluster.PayloadBound, and the netsim/paper-model costs
// are reported alongside in BENCH_cluster.json. See cluster.go.
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "faqbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "-parallel" {
		out := "BENCH_parallel.json"
		if len(args) > 1 {
			out = args[1]
		}
		return runParallel(out)
	}
	if len(args) > 0 && args[0] == "-incremental" {
		out := "BENCH_incremental.json"
		if len(args) > 1 {
			out = args[1]
		}
		return runIncremental(out)
	}
	if len(args) > 0 && args[0] == "-cluster" {
		out := "BENCH_cluster.json"
		n := 2000
		if len(args) > 1 {
			out = args[1]
		}
		if len(args) > 2 {
			v, err := strconv.Atoi(args[2])
			if err != nil || v <= 0 {
				return fmt.Errorf("-cluster: bad n %q", args[2])
			}
			n = v
		}
		return runCluster(out, n)
	}
	registry := map[string]func() (*experiments.Table, error){
		"widths":    experiments.WidthTable,
		"table1":    func() (*experiments.Table, error) { return experiments.Table1(128) },
		"examples":  func() (*experiments.Table, error) { return experiments.ExamplesTable(128) },
		"example24": func() (*experiments.Table, error) { return experiments.Example24Table(128) },
		"setint":    func() (*experiments.Table, error) { return experiments.SetIntersectionTable(128) },
		"taumcf":    func() (*experiments.Table, error) { return experiments.TauMCFTable(256) },
		"mcm":       experiments.MCMTable,
		"entropy":   func() (*experiments.Table, error) { return experiments.EntropyTable(200000) },
		"shannon":   experiments.ShannonTable,
		"mpc":       func() (*experiments.Table, error) { return experiments.MPCTable(128) },
		"pgm":       func() (*experiments.Table, error) { return experiments.PGMTable(128) },
	}
	if len(args) == 0 {
		tables, err := experiments.All()
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
		return nil
	}
	for _, id := range args {
		f, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (see -h)", id)
		}
		t, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(t.Format())
	}
	return nil
}
