package main

// The -parallel dimension: speedup-vs-workers curves for the exec-layer
// GHD engine, written to BENCH_parallel.json. Two workloads:
//
//   - multi-subtree: 16 independent arm chains under one root — the
//     embarrassingly parallel shape where inter-node (Forest)
//     parallelism alone already approaches the work bound.
//   - single-heavy-node: one arm chain, so the GHD critical path equals
//     the total work and inter-node parallelism is worthless (atomic
//     sim speedup pins at 1.0×). All speedup must come from intra-node
//     partitioning — the range-split merge joins, partitioned hash
//     joins, and parallel Builder sorts of internal/relation.
//
// Three speedup notions are reported per worker count:
//
//   - sim_speedup: total work / exec.Makespan over the measured per-node
//     costs — PR 2's atomic-node accounting, conservative in that it
//     treats each node task as indivisible.
//   - sim_speedup_shaped: total work / exec.MakespanShaped over the
//     shapes measured by a sequential SolveOnGHDShaped run, which
//     additionally records how much of each node's cost was spent in
//     kernels that partition across workers (exec.Divisible regions) and
//     replays that portion as parallel chunks. Like internal/netsim's
//     round ledger, both are simulated accounting: deterministic and
//     independent of how many physical cores the measuring host has.
//   - wall_ns: measured wall clock on this host at that worker setting
//     (exec.SetWorkers). On a single-core CI container these stay flat
//     (or degrade slightly); on real multi-core hardware they track the
//     simulated curves up to memory-bandwidth limits.
//
// Every worker count's answer is checked bit-identical to the
// sequential reference before any number is reported.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

type workerPoint struct {
	Workers             int     `json:"workers"`
	WallNS              int64   `json:"wall_ns"`
	SimMakespanNS       int64   `json:"sim_makespan_ns"`
	SimSpeedup          float64 `json:"sim_speedup"`
	SimMakespanShapedNS int64   `json:"sim_makespan_shaped_ns"`
	SimSpeedupShaped    float64 `json:"sim_speedup_shaped"`
	BitIdentical        bool    `json:"bit_identical"`
}

type parallelBench struct {
	Name           string        `json:"name"`
	N              int           `json:"n"`
	Arms           int           `json:"arms"`
	Nodes          int           `json:"nodes"`
	TotalWorkNS    int64         `json:"total_work_ns"`
	DivisibleNS    int64         `json:"divisible_ns"`
	CriticalPathNS int64         `json:"critical_path_ns"`
	Workers        []workerPoint `json:"workers"`
	Speedup8W      float64       `json:"speedup_8w"`
	Speedup8WSh    float64       `json:"speedup_8w_shaped"`
}

type parallelReport struct {
	HostCPUs    int             `json:"host_cpus"`
	GoMaxProcs  int             `json:"gomaxprocs"`
	Methodology string          `json:"methodology"`
	Benchmarks  []parallelBench `json:"benchmarks"`
}

// multiSubtreeQuery builds the benchmark workload: `arms` independent
// chains x0—a_i—b_i—c_i hanging off a shared root variable, each factor
// holding n tuples arranged so every per-arm join stays at n tuples.
// The GYO-GHD is a root with `arms` independent depth-3 subtrees — the
// embarrassingly parallel shape of the Theorem G.3 pass.
func multiSubtreeQuery(n, arms int) (*faq.Query[int64], *ghd.GHD, error) {
	const rootDom = 64
	b := hypergraph.NewBuilder()
	b.Edge("x0") // a small dedicated root factor keeps the root task cheap
	for i := 0; i < arms; i++ {
		a, bb, c := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)
		b.Edge("x0", a)
		b.Edge(a, bb)
		b.Edge(bb, c)
	}
	h := b.Build()
	s := semiring.Count{}
	factors := make([]*relation.Relation[int64], h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		if e == 0 { // {x0}
			bb := relation.NewBuilderHint[int64](s, h.Edge(0), rootDom)
			for x := 0; x < rootDom; x++ {
				bb.Add([]int{x}, 1)
			}
			factors[0] = bb.Build()
			continue
		}
		bb := relation.NewBuilderHint[int64](s, h.Edge(e), n)
		switch (e - 1) % 3 {
		case 0: // {x0, a_i}: a_i covers [0, n), x0 folds into [0, rootDom)
			for x := 0; x < n; x++ {
				bb.Add([]int{x % rootDom, x}, 1)
			}
		case 1: // {a_i, b_i}: a bijection on [0, n) keeps the join at n tuples
			for x := 0; x < n; x++ {
				bb.Add([]int{x, (x*7 + 13) % n}, 1)
			}
		case 2: // {b_i, c_i}
			for x := 0; x < n; x++ {
				bb.Add([]int{x, (x*5 + 1) % n}, 1)
			}
		}
		factors[e] = bb.Build()
	}
	q := &faq.Query[int64]{S: s, H: h, Factors: factors, Free: nil, DomSize: n}
	// Build the decomposition explicitly as a star of arm chains —
	// ghd.Minimize's GYO pass produces a caterpillar (each top node
	// parented to the previous arm's top), which strings all root-level
	// joins onto the critical path. Node 0 is the {x0} root; arm i's top
	// ({x0, a_i}) is node 1+3i, with its middle and leaf chained below.
	nodes := h.NumEdges()
	g := &ghd.GHD{
		H:        h,
		Bags:     make([][]int, nodes),
		Labels:   make([][]int, nodes),
		Parent:   make([]int, nodes),
		Root:     0,
		NodeOf:   make([]int, nodes),
		CoreRoot: -1,
	}
	for v := 0; v < nodes; v++ {
		g.Bags[v] = h.Edge(v)
		g.Labels[v] = []int{v}
		g.NodeOf[v] = v
		switch {
		case v == 0:
			g.Parent[v] = -1
		case v%3 == 1:
			g.Parent[v] = 0 // arm tops are siblings under the root
		default:
			g.Parent[v] = v - 1 // chain within the arm
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return q, g, nil
}

func identicalCount(a, b *relation.Relation[int64]) bool {
	if a.Len() != b.Len() || a.Arity() != b.Arity() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Value(i) != b.Value(i) {
			return false
		}
	}
	return relation.Equal(semiring.Count{}, a, b)
}

func runParallelBench(name string, n, arms, reps int, workerCounts []int) (parallelBench, error) {
	bench := parallelBench{Name: name, N: n, Arms: arms}
	q, g, err := multiSubtreeQuery(n, arms)
	if err != nil {
		return bench, err
	}
	bench.Nodes = g.NumNodes()

	// Sequential reference: answer + per-node shapes (minimum-total rep).
	// Shapes carry the atomic cost vector (Work) plus the divisible
	// portion each node spent in partitionable kernels.
	prev := exec.SetWorkers(1)
	defer exec.SetWorkers(prev)
	var ref *relation.Relation[int64]
	var shapes []exec.TaskShape
	var costs []int64
	for rep := 0; rep < reps; rep++ {
		ans, sh, err := faq.SolveOnGHDShaped(q, g)
		if err != nil {
			return bench, err
		}
		c := make([]int64, len(sh))
		for v := range sh {
			c[v] = sh[v].Work
		}
		if costs == nil || exec.TotalCost(c) < exec.TotalCost(costs) {
			costs, shapes = c, sh
		}
		ref = ans
	}
	bench.TotalWorkNS = exec.TotalCost(costs)
	for _, sh := range shapes {
		bench.DivisibleNS += sh.Div
	}
	bench.CriticalPathNS = exec.Makespan(g.Parent, costs, g.NumNodes())

	for _, w := range workerCounts {
		exec.SetWorkers(w)
		var best int64
		identical := true
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			ans, err := faq.SolveOnGHD(q, g)
			el := time.Since(t0).Nanoseconds()
			if err != nil {
				return bench, err
			}
			if best == 0 || el < best {
				best = el
			}
			if !identicalCount(ans, ref) {
				identical = false
			}
		}
		if !identical {
			// Fail before anything is written: a BENCH_parallel.json must
			// never be regenerated from a run that broke bit-identity.
			return bench, fmt.Errorf("%s n=%d workers=%d: answer not bit-identical to sequential", name, n, w)
		}
		mk := exec.Makespan(g.Parent, costs, w)
		mkSh := exec.MakespanShaped(g.Parent, shapes, w)
		pt := workerPoint{
			Workers:             w,
			WallNS:              best,
			SimMakespanNS:       mk,
			SimSpeedup:          float64(bench.TotalWorkNS) / float64(mk),
			SimMakespanShapedNS: mkSh,
			SimSpeedupShaped:    float64(bench.TotalWorkNS) / float64(mkSh),
			BitIdentical:        identical,
		}
		bench.Workers = append(bench.Workers, pt)
		if w == 8 {
			bench.Speedup8W = pt.SimSpeedup
			bench.Speedup8WSh = pt.SimSpeedupShaped
		}
	}
	return bench, nil
}

// runParallel executes the scaling benchmarks and writes the JSON
// artifact.
func runParallel(outPath string) error {
	rep := parallelReport{
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Methodology: "sim_speedup = total_work_ns / exec.Makespan(per-node costs from a 1-worker " +
			"SolveOnGHDShaped run, replayed atomically at the given worker budget); " +
			"sim_speedup_shaped = total_work_ns / exec.MakespanShaped(same run's TaskShapes: " +
			"Work plus the Divisible portion spent in partitionable relation kernels, replayed " +
			"as parallel chunks + serial tail per node); wall_ns = fastest-of-reps wall clock at " +
			"exec.SetWorkers(workers) on this host. Answers at every worker count are verified " +
			"bit-identical to the sequential reference.",
	}
	for _, n := range []int{10000, 100000} {
		reps := 3
		b, err := runParallelBench("multi-subtree", n, 16, reps, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		// One arm: the GHD is a chain, critical path == total work, and
		// the atomic model cannot beat 1.0× — every gain in the shaped
		// column is intra-node partitioning.
		b, err = runParallelBench("single-heavy-node", n, 1, reps, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}

	fmt.Printf("parallel GHD engine scaling (host: %d CPU(s))\n", rep.HostCPUs)
	fmt.Printf("%-18s %-8s %-8s %-10s %-12s %-10s %-14s %-10s\n",
		"benchmark", "n", "workers", "wall_ms", "sim_atomic", "speedup", "sim_shaped", "speedup")
	for _, b := range rep.Benchmarks {
		for _, p := range b.Workers {
			fmt.Printf("%-18s %-8d %-8d %-10.2f %-12.2f %-10.2f %-14.2f %-10.2f\n",
				b.Name, b.N, p.Workers, float64(p.WallNS)/1e6,
				float64(p.SimMakespanNS)/1e6, p.SimSpeedup,
				float64(p.SimMakespanShapedNS)/1e6, p.SimSpeedupShaped)
		}
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
