package main

// The -incremental dimension: point-update latency of the delta
// maintenance engine (internal/delta) against a full from-scratch
// re-solve, written to BENCH_incremental.json. Three standing workload
// templates (path7 / star6 / tree6, the same shapes the churn harness
// sweeps) at n = 1e4 and 1e5 tuples per edge over the Count ring.
//
// Each measured op alternates inserting and deleting one tuple on a
// leaf edge — the shape a standing view sees from a trickle feed — and
// times Materialized.Update + Answer. The reference side maintains the
// same base relations in a churn.Model and times a full faq.SolveGHD
// over the rebuilt factors (factor construction is excluded from the
// timer: only solve work counts, which is conservative for the
// reported speedup). Every measured op's incremental answer is checked
// bit-identical to the from-scratch answer; any divergence aborts the
// run before the artifact is written.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/delta"
	"repro/internal/delta/churn"
	"repro/internal/faq"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/workload"
)

type incrementalBench struct {
	Template        string  `json:"template"`
	N               int     `json:"n"`
	Dom             int     `json:"dom"`
	Edges           int     `json:"edges"`
	Strategy        string  `json:"strategy"`
	Ops             int     `json:"ops"`
	UpdateMedianNS  int64   `json:"update_median_ns"`
	UpdateP99NS     int64   `json:"update_p99_ns"`
	ResolveMedianNS int64   `json:"resolve_median_ns"`
	Speedup         float64 `json:"speedup"`
	BitIdentical    bool    `json:"bit_identical"`
}

type incrementalReport struct {
	HostCPUs    int                `json:"host_cpus"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Methodology string             `json:"methodology"`
	Benchmarks  []incrementalBench `json:"benchmarks"`
}

// seedCountModel builds a Count query over tpl with n random tuples per
// edge and wraps it in the churn model that maintains the reference
// copy of the base relations.
func seedCountModel(tpl workload.Template, n, dom int, rng *rand.Rand) (*faq.Query[int64], *churn.Model[int64], *delta.Materialized[int64], error) {
	s := semiring.Count{}
	// BuildQuery assigns vertex ids (nil factors become empty
	// relations); seed real factors against its schemas below.
	q, err := churn.BuildQuery[int64](s, tpl, dom, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	for e := range tpl.Edges() {
		b := relation.NewBuilderHint[int64](s, q.H.Edge(e), n)
		for i := 0; i < n; i++ {
			row := make([]int, len(q.H.Edge(e)))
			for k := range row {
				row[k] = rng.Intn(dom)
			}
			b.Add(row, 1)
		}
		q.Factors[e] = b.Build()
	}
	model, err := churn.NewModel(q)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := delta.Materialize(context.Background(), q, model.GHD(), delta.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	return q, model, m, nil
}

// runIncrementalBench measures ops alternating point inserts/deletes on
// the template's last edge (a leaf in every standing template).
func runIncrementalBench(tpl workload.Template, n, dom, ops int) (incrementalBench, error) {
	rng := rand.New(rand.NewSource(int64(7*n + len(tpl.Name))))
	q, model, m, err := seedCountModel(tpl, n, dom, rng)
	if err != nil {
		return incrementalBench{}, err
	}
	defer m.Close()
	s := semiring.Count{}
	edge := len(tpl.Edges()) - 1
	ctx := context.Background()

	bench := incrementalBench{
		Template: tpl.Name, N: n, Dom: dom,
		Edges:    len(tpl.Edges()),
		Strategy: string(m.Strategy()),
		Ops:      ops,
	}
	updateNS := make([]int64, 0, ops)
	resolveNS := make([]int64, 0, ops)
	var pending []int // the tuple the next delete removes again
	for op := 0; op < ops; op++ {
		var batch delta.Batch[int64]
		if op%2 == 0 {
			// Steady-state point update: bump an existing tuple's count
			// (1 → 2); the following op deletes the duplicate (2 → 1).
			row, _ := model.Contribution(edge, rng.Intn(model.Live(edge)))
			pending = append([]int(nil), row...)
			batch = delta.Batch[int64]{Edge: edge,
				Inserts: []delta.Tuple[int64]{{Row: pending, Val: 1}}}
			model.Insert(edge, pending, 1)
		} else {
			batch = delta.Batch[int64]{Edge: edge,
				Deletes: []delta.Tuple[int64]{{Row: pending, Val: 1}}}
			if !model.TryDelete(edge, pending, 1) {
				return bench, fmt.Errorf("model lost tuple %v", pending)
			}
		}
		start := time.Now()
		if err := m.Update(ctx, batch); err != nil {
			return bench, fmt.Errorf("%s n=%d op %d: %w", tpl.Name, n, op, err)
		}
		got, err := m.Answer()
		if err != nil {
			return bench, err
		}
		updateNS = append(updateNS, time.Since(start).Nanoseconds())

		// Reference: full solve over prebuilt factors. Build cost is the
		// data-load side of a re-solve and stays outside the timer, which
		// is conservative for the reported speedup.
		refQ := &faq.Query[int64]{S: s, H: q.H, Factors: model.Factors(),
			Free: q.Free, DomSize: q.DomSize}
		start = time.Now()
		want, _, err := faq.SolveGHD(nil, refQ, model.GHD(), faq.SolveOptions{})
		if err != nil {
			return bench, err
		}
		resolveNS = append(resolveNS, time.Since(start).Nanoseconds())
		if !relation.Equal[int64](s, got, want) {
			return bench, fmt.Errorf("%s n=%d op %d: incremental answer diverges from re-solve", tpl.Name, n, op)
		}
	}
	bench.UpdateMedianNS = quantileNS(updateNS, 0.50)
	bench.UpdateP99NS = quantileNS(updateNS, 0.99)
	bench.ResolveMedianNS = quantileNS(resolveNS, 0.50)
	if bench.UpdateMedianNS > 0 {
		bench.Speedup = float64(bench.ResolveMedianNS) / float64(bench.UpdateMedianNS)
	}
	bench.BitIdentical = true
	return bench, nil
}

func quantileNS(xs []int64, q float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// runIncremental executes the point-update benchmarks and writes the
// JSON artifact — aborting before the write if any op's incremental
// answer failed the bit-identity check.
func runIncremental(outPath string) error {
	rep := incrementalReport{
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Methodology: "update_*_ns = Materialized.Update (one-tuple insert or delete on a leaf edge) " +
			"plus Answer; resolve_median_ns = a full faq.SolveGHD over the same mutated base " +
			"relations, prebuilt outside the timer; speedup = resolve_median_ns / update_median_ns. " +
			"Count ring, n tuples per edge drawn uniformly over [0,dom)^2 with dom = n/8, ops " +
			"alternate insert/delete of the same tuple. Every op's incremental answer is verified " +
			"bit-identical to the re-solve before anything is written.",
	}
	for _, n := range []int{10000, 100000} {
		ops := 20
		if n >= 100000 {
			ops = 10
		}
		for _, name := range []string{"path7", "star6", "tree6"} {
			tpl, ok := workload.TemplateByName(name)
			if !ok {
				return fmt.Errorf("unknown template %q", name)
			}
			b, err := runIncrementalBench(tpl, n, n, ops)
			if err != nil {
				return err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}

	fmt.Printf("incremental maintenance vs full re-solve (host: %d CPU(s))\n", rep.HostCPUs)
	fmt.Printf("%-10s %-8s %-10s %-14s %-12s %-14s %-10s\n",
		"template", "n", "strategy", "update_med_us", "p99_us", "resolve_med_us", "speedup")
	for _, b := range rep.Benchmarks {
		fmt.Printf("%-10s %-8d %-10s %-14.1f %-12.1f %-14.1f %-10.1f\n",
			b.Template, b.N, b.Strategy,
			float64(b.UpdateMedianNS)/1e3, float64(b.UpdateP99NS)/1e3,
			float64(b.ResolveMedianNS)/1e3, b.Speedup)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
