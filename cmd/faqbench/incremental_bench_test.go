package main

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/delta"
	"repro/internal/workload"
)

// BenchmarkPointUpdate measures one steady-state point update on the
// path7 view at n = 1e5 — the critical number behind the -incremental
// artifact's speedup column.
func BenchmarkPointUpdate(b *testing.B) {
	tpl, _ := workload.TemplateByName("path7")
	n := 100000
	rng := rand.New(rand.NewSource(1))
	_, model, m, err := seedCountModel(tpl, n, n, rng)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	edge := len(tpl.Edges()) - 1
	row, _ := model.Contribution(edge, 0)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := delta.Batch[int64]{Edge: edge,
			Inserts: []delta.Tuple[int64]{{Row: row, Val: 1}}}
		if i%2 == 1 {
			batch = delta.Batch[int64]{Edge: edge,
				Deletes: []delta.Tuple[int64]{{Row: row, Val: 1}}}
		}
		if err := m.Update(ctx, batch); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Answer(); err != nil {
			b.Fatal(err)
		}
	}
}
