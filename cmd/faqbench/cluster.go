package main

// The -cluster dimension: bytes-on-wire of the real distributed
// engine, measured against its closed-form bound and written to
// BENCH_cluster.json. Per standing workload template (path7 / star6 /
// tree6 / tri-pendant, Count semiring) and per fleet width W ∈
// {1,2,4,8}:
//
//   - a real loopback fleet — W faqw-style shard workers behind the
//     rpc TCP transport — runs the scatter/gather pass; the answer is
//     verified bit-identical to the single-process faq.SolveGHD, and
//     the measured solve payload (encoded message bytes, headers
//     excluded) is gated against cluster.PayloadBound's closed-form
//     prediction. A violation aborts the run before anything is
//     written: the artifact only ever records measured ≤ bound.
//   - the same pass re-runs on the in-process netsim transport, whose
//     capacity ledger books frames into synchronized rounds on a
//     Star(W+1) topology — the cluster analogue of the paper's
//     round/bit accounting.
//   - the paper-model reference: protocol.Run on Star(E+1) with one
//     factor per leaf, reporting the Theorem 4.1 round and bit cost
//     the engineered numbers sit next to.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/delta/churn"
	"repro/internal/faq"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/rpc"
	"repro/internal/semiring"
	"repro/internal/topology"
	"repro/internal/workload"
)

type clusterPoint struct {
	Workers           int   `json:"workers"`
	WallNS            int64 `json:"wall_ns"`
	SolvePayloadBytes int64 `json:"solve_payload_bytes"`
	PayloadBoundBytes int64 `json:"payload_bound_bytes"`
	LoadPayloadBytes  int64 `json:"load_payload_bytes"`
	WireOutBytes      int64 `json:"wire_out_bytes"`
	WireInBytes       int64 `json:"wire_in_bytes"`
	Frames            int64 `json:"frames"`
	Phases            int64 `json:"phases"`
	SimRounds         int   `json:"sim_rounds"`
	SimBits           int64 `json:"sim_bits"`
	BitIdentical      bool  `json:"bit_identical"`
	WithinBound       bool  `json:"within_bound"`
}

type clusterBench struct {
	Template       string         `json:"template"`
	N              int            `json:"n"`
	Dom            int            `json:"dom"`
	Nodes          int            `json:"ghd_nodes"`
	ProtocolRounds int            `json:"protocol_rounds"`
	ProtocolBits   int64          `json:"protocol_bits"`
	Points         []clusterPoint `json:"points"`
}

type clusterReport struct {
	HostCPUs    int            `json:"host_cpus"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Methodology string         `json:"methodology"`
	Benchmarks  []clusterBench `json:"benchmarks"`
}

// clusterQuery builds the seeded Count workload for one template: n
// uniform tuples per factor over [0, dom) with values in {1,2,3}.
func clusterQuery(tpl workload.Template, n, dom int, seed int64) (*faq.Query[int64], error) {
	s := semiring.Count{}
	shape, err := churn.BuildQuery(s, tpl, dom, nil)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	factors := make([]*relation.Relation[int64], shape.H.NumEdges())
	for e := range factors {
		schema := shape.H.Edge(e)
		b := relation.NewBuilderHint(s, schema, n)
		row := make([]int32, len(schema))
		for i := 0; i < n; i++ {
			for k := range row {
				row[k] = int32(r.Intn(dom))
			}
			b.AddRow(row, int64(1+r.Intn(3)))
		}
		factors[e] = b.Build()
	}
	return churn.BuildQuery(s, tpl, dom, factors)
}

// tcpFleet starts W loopback shard workers and a coordinator dialing
// them; stop tears the whole fleet down.
func tcpFleetBench(workers int) (c *cluster.Client, stop func(), err error) {
	srvs := make([]*rpc.Server, 0, workers)
	stopAll := func() {
		for _, s := range srvs {
			s.Close()
		}
	}
	addrs := make([]string, workers)
	for w := 0; w < workers; w++ {
		srv, err := rpc.Serve("127.0.0.1:0", cluster.NewWorker().Handle)
		if err != nil {
			stopAll()
			return nil, nil, err
		}
		srvs = append(srvs, srv)
		addrs[w] = srv.Addr()
	}
	tr, err := cluster.NewTCPTransport(addrs, cluster.TCPOptions{})
	if err != nil {
		stopAll()
		return nil, nil, err
	}
	c = cluster.NewClient(tr, cluster.Options{})
	return c, func() { c.Close(); stopAll() }, nil
}

func runClusterBench(tpl workload.Template, n, dom int, workerCounts []int) (clusterBench, error) {
	bench := clusterBench{Template: tpl.Name, N: n, Dom: dom}
	sc := semiring.Count{}
	q, err := clusterQuery(tpl, n, dom, 1)
	if err != nil {
		return bench, err
	}
	g, err := faq.PlanGHD(q.H, q.Free)
	if err != nil {
		return bench, err
	}
	bench.Nodes = g.NumNodes()
	want, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{})
	if err != nil {
		return bench, err
	}

	// Paper-model reference: the protocol engine on a star network with
	// one factor per leaf and the answer at the hub.
	assign := make(protocol.Assignment, q.H.NumEdges())
	for e := range assign {
		assign[e] = e + 1
	}
	pAns, rep, err := protocol.Run(&protocol.Setup[int64]{
		Q: q, G: topology.Star(q.H.NumEdges() + 1), Assign: assign, Output: 0,
	})
	if err != nil {
		return bench, fmt.Errorf("%s: protocol.Run: %w", tpl.Name, err)
	}
	if !relation.Equal(sc, pAns, want) {
		return bench, fmt.Errorf("%s: protocol.Run answer differs from local", tpl.Name)
	}
	bench.ProtocolRounds, bench.ProtocolBits = rep.Rounds, rep.Bits

	for _, w := range workerCounts {
		bound, err := cluster.PayloadBound(q, g, w)
		if err != nil {
			return bench, fmt.Errorf("%s W=%d: %w", tpl.Name, w, err)
		}

		c, stop, err := tcpFleetBench(w)
		if err != nil {
			return bench, err
		}
		solver, err := cluster.NewSolver[int64](c, "count")
		if err != nil {
			stop()
			return bench, err
		}
		t0 := time.Now()
		ans, err := solver.SolveGHD(nil, q, g)
		wall := time.Since(t0).Nanoseconds()
		if err != nil {
			stop()
			return bench, fmt.Errorf("%s W=%d: %w", tpl.Name, w, err)
		}
		st := c.Stats()
		stop()
		if !relation.Equal(sc, ans, want) {
			return bench, fmt.Errorf("%s W=%d: cluster answer not bit-identical to local", tpl.Name, w)
		}
		if st.SolvePayloadBytes > bound {
			// Fail before anything is written: a BENCH_cluster.json must
			// never record a run whose traffic escaped its bound.
			return bench, fmt.Errorf("%s W=%d: measured solve payload %d B exceeds closed-form bound %d B",
				tpl.Name, w, st.SolvePayloadBytes, bound)
		}

		// Same pass over the netsim ledger: synchronized rounds on the
		// Star(W+1) channel model instead of loopback sockets.
		sim, err := cluster.NewSimTransport(w, 0)
		if err != nil {
			return bench, err
		}
		simC := cluster.NewClient(sim, cluster.Options{})
		simSolver, err := cluster.NewSolver[int64](simC, "count")
		if err != nil {
			return bench, err
		}
		simAns, err := simSolver.SolveGHD(nil, q, g)
		if err != nil {
			return bench, fmt.Errorf("%s W=%d sim: %w", tpl.Name, w, err)
		}
		if !relation.Equal(sc, simAns, want) {
			return bench, fmt.Errorf("%s W=%d: netsim answer not bit-identical to local", tpl.Name, w)
		}

		bench.Points = append(bench.Points, clusterPoint{
			Workers:           w,
			WallNS:            wall,
			SolvePayloadBytes: st.SolvePayloadBytes,
			PayloadBoundBytes: bound,
			LoadPayloadBytes:  st.LoadPayloadBytes,
			WireOutBytes:      st.WireOutBytes,
			WireInBytes:       st.WireInBytes,
			Frames:            st.Frames,
			Phases:            st.Phases,
			SimRounds:         sim.Rounds(),
			SimBits:           sim.TotalBits(),
			BitIdentical:      true,
			WithinBound:       true,
		})
	}
	return bench, nil
}

// runCluster executes the distributed-engine benchmarks and writes the
// JSON artifact. An empty outPath prints the table without writing.
func runCluster(outPath string, n int) error {
	rep := clusterReport{
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Methodology: "Per template and fleet width W: a loopback TCP fleet (W shard workers behind " +
			"the internal/rpc framed transport) runs the scatter/gather GHD pass; " +
			"solve_payload_bytes is the coordinator's encoded-message accounting (frame headers " +
			"excluded) and must not exceed payload_bound_bytes = cluster.PayloadBound's static " +
			"per-hop bound (gather ≤ min(N, W·D^|keep|) rows, scatter ≤ min(N, D^|keep|) rows, " +
			"of shard.RowWireBytes(|keep|) each, plus per-slice headers). sim_rounds/sim_bits " +
			"replay the identical pass on the netsim capacity ledger (Star(W+1), synchronized " +
			"rounds); protocol_rounds/protocol_bits are the paper-model protocol.Run on Star(E+1). " +
			"Every answer — TCP, netsim, and protocol — is verified bit-identical to the " +
			"single-process faq.SolveGHD before any number is reported.",
	}
	const dom = 64
	for _, tpl := range workload.Templates() {
		b, err := runClusterBench(tpl, n, dom, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}

	fmt.Printf("distributed scatter/gather engine, n=%d dom=%d (host: %d CPU(s))\n", n, dom, rep.HostCPUs)
	fmt.Printf("%-12s %-8s %-12s %-12s %-8s %-12s %-10s %-10s\n",
		"template", "workers", "payload_B", "bound_B", "used", "wire_out_B", "rounds", "wall_ms")
	for _, b := range rep.Benchmarks {
		for _, p := range b.Points {
			fmt.Printf("%-12s %-8d %-12d %-12d %-8s %-12d %-10d %-10.2f\n",
				b.Template, p.Workers, p.SolvePayloadBytes, p.PayloadBoundBytes,
				fmt.Sprintf("%.0f%%", 100*float64(p.SolvePayloadBytes)/float64(p.PayloadBoundBytes)),
				p.WireOutBytes, p.SimRounds, float64(p.WallNS)/1e6)
		}
		fmt.Printf("%-12s paper-model star protocol: %d rounds, %d bits\n",
			b.Template, b.ProtocolRounds, b.ProtocolBits)
	}
	if outPath != "" {
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}
