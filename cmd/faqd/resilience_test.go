package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/faqs"
)

// TestChaosHealthzDraining pins the readiness contract: a serving daemon
// answers 200, a draining one 503 with Retry-After so load balancers
// stop routing to it.
func TestChaosHealthzDraining(t *testing.T) {
	s := newServer()
	mux := s.mux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("serving healthz: status %d", rec.Code)
	}

	s.draining.Store(true)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("draining healthz carries no Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("draining healthz body %q does not say draining", rec.Body.String())
	}
}

// TestChaosOverloadStatus pins the 503 + Retry-After shedding contract:
// with a single in-flight slot held by a slow request, a concurrent
// solve is shed — distinguishable from 429 budget rejections.
func TestChaosOverloadStatus(t *testing.T) {
	defer faqs.DisableFailpoints()
	mux := newServer(faqs.WithMaxInFlight(1)).mux()

	// Warm the plan, then hold the slot with an injected delay.
	if rec := postJSON(t, mux, "/solve", testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("warm solve: status %d", rec.Code)
	}
	if err := faqs.EnableFailpoints("service.solve=delay:300ms@once"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rec := postJSON(t, mux, "/solve", testRequest()); rec.Code != http.StatusOK {
			t.Errorf("slot-holding solve: status %d", rec.Code)
		}
	}()
	fp := faqs.RegisterFailpoint("service.solve")
	deadline := time.Now().Add(10 * time.Second)
	for fp.Fired() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fp.Fired() == 0 {
		t.Fatal("slot-holding solve never reached the failpoint")
	}
	rec := postJSON(t, mux, "/solve", testRequest())
	wg.Wait()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed solve: status %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response carries no Retry-After")
	}
}

// TestChaosDeadlineStatus pins deadline mapping: a solve cut off by the
// per-request deadline is a transient 503 with Retry-After.
func TestChaosDeadlineStatus(t *testing.T) {
	defer faqs.DisableFailpoints()
	mux := newServer(faqs.WithDeadline(20 * time.Millisecond)).mux()
	if err := faqs.EnableFailpoints("service.solve=delay:10s"); err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, mux, "/solve", testRequest())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline-exceeded solve: status %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response carries no Retry-After")
	}
}

// TestChaosPanicStatus pins panic containment end to end: an injected
// kernel panic comes back as a 500 with a JSON error body naming the
// site — the process survives and keeps serving.
func TestChaosPanicStatus(t *testing.T) {
	defer faqs.DisableFailpoints()
	mux := newServer().mux()
	if err := faqs.EnableFailpoints("relation.join=panic@once"); err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, mux, "/solve", testRequest())
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d, want 500 (body %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "relation.join") {
		t.Errorf("500 body %q does not record the failpoint site", rec.Body.String())
	}
	faqs.DisableFailpoints()
	if rec := postJSON(t, mux, "/solve", testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("daemon unusable after contained panic: status %d", rec.Code)
	}
}

// TestChaosFailpointStatus pins the daemon's own chaos site: an injected
// handler error maps to 500, and the site is sweepable by name.
func TestChaosFailpointStatus(t *testing.T) {
	defer faqs.DisableFailpoints()
	mux := newServer().mux()
	if err := faqs.EnableFailpoints("faqd.solve=error@once"); err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, mux, "/solve", testRequest())
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("faqd.solve error: status %d, want 500 (body %s)", rec.Code, rec.Body.String())
	}
	faqs.DisableFailpoints()
	if rec := postJSON(t, mux, "/solve", testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("daemon unusable after handler fault: status %d", rec.Code)
	}
}

// TestChaosStatsDegradationCounters pins the /stats satellite: shed,
// deadline-exceeded, and recovered-panic counts surface per semiring
// service, plus the draining flag.
func TestChaosStatsDegradationCounters(t *testing.T) {
	defer faqs.DisableFailpoints()
	s := newServer(faqs.WithDeadline(20 * time.Millisecond))
	mux := s.mux()
	if err := faqs.EnableFailpoints("service.solve=delay:10s@once"); err != nil {
		t.Fatal(err)
	}
	if rec := postJSON(t, mux, "/solve", testRequest()); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("setup solve: status %d, want 503", rec.Code)
	}
	faqs.DisableFailpoints()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats: status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, field := range []string{`"deadline_exceeded"`, `"shed"`, `"panics"`, `"draining"`} {
		if !strings.Contains(body, field) {
			t.Errorf("/stats body missing %s", field)
		}
	}
	var payload struct {
		Draining bool `json:"draining"`
		Services []struct {
			Semiring         string `json:"semiring"`
			DeadlineExceeded int64  `json:"deadline_exceeded"`
		} `json:"services"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	var hits int64
	for _, svc := range payload.Services {
		hits += svc.DeadlineExceeded
	}
	if hits == 0 {
		t.Error("deadline hit not visible in /stats service counters")
	}
}
