package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/faqs"
)

// minplusRequest is a two-edge path over the tropical semiring — its
// views maintain via the recompute fallback, moving delta_fallbacks.
func minplusRequest() *faqs.WireRequest {
	return &faqs.WireRequest{
		Semiring: "minplus",
		Edges:    [][]string{{"A", "B"}, {"B", "C"}},
		Factors: []faqs.WireFactor{
			{Tuples: [][]int{{0, 1}, {2, 1}, {3, 3}}, Values: []float64{1, 2, 3}},
			{Tuples: [][]int{{1, 0}, {1, 2}, {3, 1}}, Values: []float64{1, 1, 2}},
		},
		Free: []string{"A"},
		Dom:  4,
	}
}

func decodeMat(t *testing.T, rec *httptest.ResponseRecorder) faqs.WireMaterializedAnswer {
	t.Helper()
	var wa faqs.WireMaterializedAnswer
	if err := json.Unmarshal(rec.Body.Bytes(), &wa); err != nil {
		t.Fatalf("decode materialized answer: %v (body %s)", err, rec.Body.String())
	}
	return wa
}

// TestMaterializeUpdateHandlers drives the wire lifecycle: register a
// named view, update it, verify the re-answer matches a fresh /solve of
// the mutated query, then close it.
func TestMaterializeUpdateHandlers(t *testing.T) {
	mux := newServer(faqs.WithPlanCache(16)).mux()

	rec := postJSON(t, mux, "/materialize", faqs.WireMaterializeRequest{Name: "v1", Request: *testRequest()})
	if rec.Code != http.StatusOK {
		t.Fatalf("materialize: status %d, body %s", rec.Code, rec.Body.String())
	}
	wa := decodeMat(t, rec)
	if wa.Name != "v1" || wa.Strategy != "ring" {
		t.Fatalf("materialized answer header: %+v", wa)
	}
	solved := postJSON(t, mux, "/solve", testRequest())
	var sw faqs.WireAnswer
	if err := json.Unmarshal(solved.Body.Bytes(), &sw); err != nil {
		t.Fatal(err)
	}
	if len(wa.Tuples) != len(sw.Tuples) {
		t.Fatalf("initial view answer %v differs from /solve %v", wa.Tuples, sw.Tuples)
	}

	// Duplicate registration: 409, the original view keeps serving.
	if rec := postJSON(t, mux, "/materialize", faqs.WireMaterializeRequest{Name: "v1", Request: *testRequest()}); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate materialize: status %d, want 409", rec.Code)
	}

	// Update: insert one tuple; the response must equal a /solve of the
	// mutated request.
	rec = postJSON(t, mux, "/update", faqs.WireUpdateRequest{
		Name: "v1", Factor: 0,
		Inserts: []faqs.WireTupleUpdate{{Tuple: []int{1, 1}}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("update: status %d, body %s", rec.Code, rec.Body.String())
	}
	wa = decodeMat(t, rec)
	mutated := testRequest()
	mutated.Factors[0].Tuples = append(mutated.Factors[0].Tuples, []int{1, 1})
	solved = postJSON(t, mux, "/solve", mutated)
	if err := json.Unmarshal(solved.Body.Bytes(), &sw); err != nil {
		t.Fatal(err)
	}
	if len(wa.Tuples) != len(sw.Tuples) || len(wa.Values) != len(sw.Values) {
		t.Fatalf("updated view %v/%v differs from re-solve %v/%v", wa.Tuples, wa.Values, sw.Tuples, sw.Values)
	}
	for i := range wa.Values {
		if wa.Values[i] != sw.Values[i] {
			t.Fatalf("updated view values %v differ from re-solve %v", wa.Values, sw.Values)
		}
	}

	// Unknown view: 404. Unknown tuple delete: 422, view still serves.
	if rec := postJSON(t, mux, "/update", faqs.WireUpdateRequest{Name: "nope", Factor: 0}); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown view: status %d, want 404", rec.Code)
	}
	if rec := postJSON(t, mux, "/update", faqs.WireUpdateRequest{
		Name: "v1", Factor: 99,
		Inserts: []faqs.WireTupleUpdate{{Tuple: []int{0, 0}}},
	}); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("bad factor: status %d, want 422", rec.Code)
	}

	// Close: the view releases and its name frees up.
	rec = postJSON(t, mux, "/update", faqs.WireUpdateRequest{Name: "v1", Close: true})
	if rec.Code != http.StatusOK || !decodeMat(t, rec).Closed {
		t.Fatalf("close: status %d, body %s", rec.Code, rec.Body.String())
	}
	if rec := postJSON(t, mux, "/update", faqs.WireUpdateRequest{Name: "v1", Factor: 0, Inserts: []faqs.WireTupleUpdate{{Tuple: []int{0, 0}}}}); rec.Code != http.StatusNotFound {
		t.Fatalf("update after close: status %d, want 404", rec.Code)
	}
	if rec := postJSON(t, mux, "/materialize", faqs.WireMaterializeRequest{Name: "v1", Request: *testRequest()}); rec.Code != http.StatusOK {
		t.Fatalf("re-materialize after close: status %d", rec.Code)
	}
}

// TestStatsUpdatesCounters pins the new Stats fields on the wire:
// ring updates move updates only; recompute-fallback updates move both
// updates and delta_fallbacks.
func TestStatsUpdatesCounters(t *testing.T) {
	srv := newServer(faqs.WithPlanCache(16))
	mux := srv.mux()

	postJSON(t, mux, "/materialize", faqs.WireMaterializeRequest{Name: "c", Request: *testRequest()})
	postJSON(t, mux, "/materialize", faqs.WireMaterializeRequest{Name: "m", Request: *minplusRequest()})
	for i := 0; i < 2; i++ {
		rec := postJSON(t, mux, "/update", faqs.WireUpdateRequest{
			Name: "c", Factor: 0, Inserts: []faqs.WireTupleUpdate{{Tuple: []int{i, i}}},
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("count update %d: status %d, body %s", i, rec.Code, rec.Body.String())
		}
	}
	one := 1.0
	rec := postJSON(t, mux, "/update", faqs.WireUpdateRequest{
		Name: "m", Factor: 1, Inserts: []faqs.WireTupleUpdate{{Tuple: []int{2, 2}, Value: &one}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("minplus update: status %d, body %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	srec := httptest.NewRecorder()
	mux.ServeHTTP(srec, req)
	var st statsPayload
	if err := json.Unmarshal(srec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	byName := map[string]faqs.ServiceStats{}
	for _, ss := range st.Services {
		byName[ss.Semiring] = ss
	}
	if c := byName["count"]; c.Updates != 2 || c.DeltaFallbacks != 0 {
		t.Fatalf("count updates/delta_fallbacks = %d/%d, want 2/0", c.Updates, c.DeltaFallbacks)
	}
	if m := byName["minplus"]; m.Updates != 1 || m.DeltaFallbacks != 1 {
		t.Fatalf("minplus updates/delta_fallbacks = %d/%d, want 1/1", m.Updates, m.DeltaFallbacks)
	}

	// The raw JSON must carry the documented field names.
	body := srec.Body.String()
	for _, field := range []string{`"updates"`, `"delta_fallbacks"`} {
		if !strings.Contains(body, field) {
			t.Fatalf("stats JSON missing %s: %s", field, body)
		}
	}
}
