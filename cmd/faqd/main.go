// Command faqd is the FAQ query server: a thin HTTP shell over the
// public faqs.Engine, so the daemon and the embedded library share one
// execution path (fingerprint → cached plan → bind → GHD pass). Plans
// compile once per query shape (variable-renaming-invariant
// fingerprinting, singleflight) and every request binds the cached plan
// to its own factor data.
//
// Endpoints:
//
//	POST /solve   — solve one faqs.WireRequest, returns the answer plus
//	                serving metadata; the plan fingerprint and cache
//	                hit/miss also travel as X-Faqs-Plan-Fingerprint and
//	                X-Faqs-Plan-Cache response headers
//	POST /explain — compile/fetch the plan only: GHD tree, y(H)/n₂(H)/
//	                width/depth, per-node bounds, fingerprint, hit/miss
//	GET  /stats   — cache and service counters (including shed /
//	                deadline-exceeded / recovered-panic degradation
//	                counters), resident plan table
//	GET  /metrics — Prometheus text exposition (version 0.0.4): service
//	                request/latency families per semiring, plan-cache,
//	                exec-pool, failpoint, and delta counters, Go runtime
//	                gauges, and faqd's own HTTP counters
//	GET  /debug/trace — JSON array of the most recent solve traces
//	                (?n=, default 20): per-phase and per-GHD-node spans
//	                with measured durations
//	GET  /healthz — readiness: 200 while serving, 503 while draining
//
// Every request is access-logged (structured, log/slog) and counted
// into faqd_http_requests_total{path,code}.
//
// Status-code contract for solve failures (see README, Operations):
// 429 budget admission rejection (retrying unchanged cannot succeed),
// 503 transient — overloaded, deadline exceeded, or draining — with a
// Retry-After header, 500 recovered internal panic, 422 invalid query.
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener closes (new
// connections refused, /healthz already reports not-ready), in-flight
// requests drain up to -drain, then remaining request contexts are
// canceled. While draining, work-accepting endpoints (/solve,
// /materialize, /update) answer 503 immediately, but the observability
// surface (/metrics, /stats, /debug/trace) keeps serving so the final
// scrape of a terminating instance still lands.
//
// Usage:
//
//	faqd -addr :8080 -cache 256 -workers 0 -budget 0 \
//	     -deadline 30s -inflight 0 -drain 10s
//
// Passing a comma-separated host:port list to -workers instead of an
// integer turns on distributed execution over a faqw shard-worker
// fleet (see README, Cluster operations): eligible solves scatter
// hash-partitioned factors across the fleet and gather per-worker
// partial aggregates; everything else falls back to the local pass
// with identical answers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/faqs"
)

// maxRequestBytes bounds /solve bodies (64 MiB: ~1M tuples of arity 8).
const maxRequestBytes = 64 << 20

// retryAfterSeconds is the backoff hint sent with every 503 (the
// faqload client honors it; the value is a hint, not a promise).
const retryAfterSeconds = 1

// solveFailpoint is the daemon's own chaos site, hit at the top of
// every /solve request — the outermost layer of the sweep, registered
// through the faqs façade (cmd/ may only import faqs).
var solveFailpoint = faqs.RegisterFailpoint("faqd.solve")

type server struct {
	engine   *faqs.Engine
	started  time.Time
	draining atomic.Bool
	log      *slog.Logger
	requests *faqs.CounterVec // faqd_http_requests_total{path,code}

	// mats holds the named materialized views served by /materialize
	// and /update. The mutex guards only the map; each view handles its
	// own update serialization.
	matsMu sync.Mutex
	mats   map[string]*faqs.Materialized
}

func newServer(opts ...faqs.Option) *server {
	s := &server{
		engine:  faqs.NewEngine(opts...),
		started: time.Now(),
		log:     slog.Default(),
		mats:    make(map[string]*faqs.Materialized),
	}
	s.requests = s.engine.Metrics().NewCounterVec("faqd_http_requests_total",
		"HTTP requests served, by endpoint path and status code.", "path", "code")
	return s
}

// mux wires the handler table (shared with the handler tests).
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/materialize", s.handleMaterialize)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// knownPaths bounds the path label's cardinality: anything outside the
// handler table (404 probes, scanners) counts as "other" instead of
// minting one child per probed URL.
var knownPaths = map[string]bool{
	"/solve": true, "/explain": true, "/materialize": true, "/update": true,
	"/stats": true, "/metrics": true, "/debug/trace": true, "/healthz": true,
}

// statusWriter captures the response status and size for the access
// log and request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// handler wraps the mux with the access log and the per-endpoint
// request counter — every response passes through here, including
// error paths, so the counter and the log agree.
func (s *server) handler() http.Handler {
	mux := s.mux()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(sw, r)
		path := r.URL.Path
		if !knownPaths[path] {
			path = "other"
		}
		s.requests.With(path, strconv.Itoa(sw.status)).Inc()
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(t0).Microseconds())/1000.0,
			"remote", r.RemoteAddr,
		)
	})
}

// handleHealthz is the load-balancer readiness probe: a draining server
// answers 503 so traffic routes elsewhere while in-flight requests
// finish.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 0, "plan cache capacity in compiled query shapes (0 = default)")
	workers := flag.String("workers", "0", "local exec pool workers (integer, 0 = GOMAXPROCS), or a comma-separated faqw fleet (host:port,...) for distributed execution")
	budget := flag.Int64("budget", 0, "per-request memory budget in bytes for admission control (0 = unlimited)")
	deadline := flag.Duration("deadline", 30*time.Second, "per-request solve deadline (0 = none)")
	inflight := flag.Int("inflight", 0, "max concurrent solves before shedding with 503 (0 = unlimited)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	flag.Parse()
	opts := []faqs.Option{
		faqs.WithPlanCache(*cacheSize),
		faqs.WithMemoryBudget(*budget),
		faqs.WithDeadline(*deadline),
		faqs.WithMaxInFlight(*inflight),
	}
	// -workers is overloaded: a plain integer sizes the in-process exec
	// pool (the historical meaning), while anything with a ':' or ',' is
	// a faqw worker address list and turns on cluster execution.
	var clusterAddrs []string
	if strings.ContainsAny(*workers, ":,") {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				clusterAddrs = append(clusterAddrs, a)
			}
		}
		if len(clusterAddrs) == 0 {
			fmt.Fprintf(os.Stderr, "faqd: -workers %q has no usable addresses\n", *workers)
			os.Exit(2)
		}
		opts = append(opts, faqs.WithClusterWorkers(clusterAddrs...))
	} else {
		n, err := strconv.Atoi(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faqd: -workers must be an integer or host:port,... list: %v\n", err)
			os.Exit(2)
		}
		if n > 0 {
			faqs.SetDefaultWorkers(n)
		}
	}
	srv := newServer(opts...)
	defer srv.engine.Close()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv.log = logger
	if len(clusterAddrs) > 0 {
		// Startup handshake: every worker must answer a ping before the
		// daemon takes traffic. The transport already retries connection
		// refused with backoff, so worker launch order does not matter.
		pingCtx, cancelPing := context.WithTimeout(context.Background(), 30*time.Second)
		err := srv.engine.PingCluster(pingCtx)
		cancelPing()
		if err != nil {
			fmt.Fprintf(os.Stderr, "faqd: cluster handshake failed: %v\n", err)
			os.Exit(1)
		}
		logger.Info("faqd: cluster handshake complete", "workers", len(clusterAddrs))
	}
	logger.Info("faqd: listening",
		"addr", *addr,
		"cache_plans", srv.engine.Stats().Cache.Capacity,
		"workers", *workers,
		"budget", *budget,
		"deadline", *deadline,
		"inflight", *inflight,
	)
	// Header/idle timeouts bound slow-loris connections; request bodies
	// are already capped by MaxBytesReader. Solve time is bounded by the
	// per-request deadline riding the request context (-deadline), which
	// subsumes a WriteTimeout without killing the connection mid-write.
	baseCtx, cancelInFlight := context.WithCancel(context.Background())
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		cancelInFlight()
		fmt.Fprintf(os.Stderr, "faqd: %v\n", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}
	stop() // a second signal kills the process the default way
	srv.draining.Store(true)
	logger.Info("faqd: shutdown signal received, draining in-flight requests", "drain", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	err := httpSrv.Shutdown(shutCtx)
	cancel()
	cancelInFlight() // past the drain window: cancel whatever is still solving
	if err != nil {
		logger.Warn("faqd: drain timeout exceeded, closing", "err", err)
		_ = httpSrv.Close()
	}
	logger.Info("faqd: shutdown complete")
}

type wireError struct {
	Error string `json:"error"`
}

// decodeRequest reads one bounded JSON WireRequest body.
func decodeRequest(w http.ResponseWriter, r *http.Request) (*faqs.WireRequest, bool) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return nil, false
	}
	var wr faqs.WireRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&wr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return nil, false
	}
	return &wr, true
}

// planHeaders surfaces the serving metadata every response carries.
func planHeaders(w http.ResponseWriter, fingerprint string, cacheHit bool) {
	w.Header().Set("X-Faqs-Plan-Fingerprint", fingerprint)
	if cacheHit {
		w.Header().Set("X-Faqs-Plan-Cache", "hit")
	} else {
		w.Header().Set("X-Faqs-Plan-Cache", "miss")
	}
}

// rejectDraining answers 503 on work-accepting endpoints while the
// server drains (the observability endpoints bypass it). Reports
// whether the request was rejected.
func (s *server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	httpError(w, http.StatusServiceUnavailable, fmt.Errorf("faqd: draining"))
	return true
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	wr, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	if err := solveFailpoint.Hit(r.Context()); err != nil {
		solveError(w, err)
		return
	}
	// Per-request cancellation: client disconnect (and the engine's
	// per-request deadline) stops the GHD pass.
	wa, err := s.engine.SolveWire(r.Context(), wr)
	if err != nil {
		solveError(w, err)
		return
	}
	planHeaders(w, wa.PlanHash, wa.CacheHit)
	writeJSON(w, http.StatusOK, wa)
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	wr, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	q, err := faqs.BuildWireQuery(wr)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	ex, err := s.engine.Explain(q)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	planHeaders(w, ex.Fingerprint, ex.CacheHit)
	writeJSON(w, http.StatusOK, ex)
}

// handleMaterialize registers a named standing view: build the query
// like /solve, materialize it, and answer with the initial result.
// Duplicate names are 409 (the existing view keeps serving).
func (s *server) handleMaterialize(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var mr faqs.WireMaterializeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&mr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if mr.Name == "" {
		httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("materialize: empty view name"))
		return
	}
	m, err := s.engine.MaterializeWire(r.Context(), &mr.Request)
	if err != nil {
		solveError(w, err)
		return
	}
	s.matsMu.Lock()
	if _, exists := s.mats[mr.Name]; exists {
		s.matsMu.Unlock()
		m.Close()
		httpError(w, http.StatusConflict, fmt.Errorf("materialize: view %q already exists", mr.Name))
		return
	}
	s.mats[mr.Name] = m
	s.matsMu.Unlock()
	wa, err := faqs.RenderMaterialized(mr.Name, m)
	if err != nil {
		solveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wa)
}

// handleUpdate applies one insert/delete batch against a named view and
// answers with the freshly maintained result (or closes the view).
// Unknown names are 404; a failed update leaves the view unchanged and
// maps onto the same HTTP contract as /solve.
func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var ur faqs.WireUpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&ur); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	s.matsMu.Lock()
	m, ok := s.mats[ur.Name]
	if ok && ur.Close {
		delete(s.mats, ur.Name)
	}
	s.matsMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("update: no view named %q", ur.Name))
		return
	}
	if ur.Close {
		strategy := m.Strategy()
		m.Close()
		writeJSON(w, http.StatusOK, faqs.WireMaterializedAnswer{Name: ur.Name, Strategy: strategy, Closed: true})
		return
	}
	if err := m.Update(r.Context(), ur.Factor, ur.Inserts, ur.Deletes); err != nil {
		solveError(w, err)
		return
	}
	wa, err := faqs.RenderMaterialized(ur.Name, m)
	if err != nil {
		solveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wa)
}

// solveError maps a serving failure onto the HTTP contract and writes
// it, attaching Retry-After to transient (503) rejections.
func solveError(w http.ResponseWriter, err error) {
	code := solveErrorStatus(err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	httpError(w, code, err)
}

// solveErrorStatus classifies serving failures: budget admission
// rejections are 429 (the request itself is too big — retrying
// unchanged cannot succeed), overload shedding, deadline hits, and an
// unreachable worker fleet are transient 503s worth retrying after
// backoff (workers are stateless, so a restarted fleet serves the
// retry), recovered panics and injected faults are 500s, and
// everything else is an unprocessable request.
func solveErrorStatus(err error) int {
	switch {
	case errors.Is(err, faqs.ErrOverBudget):
		return http.StatusTooManyRequests
	case errors.Is(err, faqs.ErrInternal), errors.Is(err, faqs.ErrInjected):
		return http.StatusInternalServerError
	case errors.Is(err, faqs.ErrOverloaded), errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, faqs.ErrClusterUnavailable):
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

type statsPayload struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	Draining      bool    `json:"draining"`
	faqs.Stats
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsPayload{
		UptimeSeconds: time.Since(s.started).Seconds(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Draining:      s.draining.Load(),
		Stats:         s.engine.Stats(),
	})
}

// handleMetrics serves the Prometheus text exposition. It deliberately
// skips the draining check: the last scrape of a terminating instance
// is the one that records the drain.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	w.Header().Set("Content-Type", faqs.MetricsContentType)
	if err := s.engine.WriteMetrics(w); err != nil {
		// Headers are already sent; all we can do is log the short write.
		s.log.Error("metrics write failed", "err", err)
	}
}

// handleTrace serves the engine's recent solve traces as JSON, newest
// first (?n= bounds the count, default 20).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", v))
			return
		}
		n = p
	}
	traces := s.engine.RecentTraces(n)
	if traces == nil {
		traces = []faqs.Trace{} // an empty buffer serializes as [], not null
	}
	writeJSON(w, http.StatusOK, traces)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, wireError{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}
