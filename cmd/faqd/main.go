// Command faqd is the FAQ query server: a thin HTTP shell over the
// public faqs.Engine, so the daemon and the embedded library share one
// execution path (fingerprint → cached plan → bind → GHD pass). Plans
// compile once per query shape (variable-renaming-invariant
// fingerprinting, singleflight) and every request binds the cached plan
// to its own factor data.
//
// Endpoints:
//
//	POST /solve   — solve one faqs.WireRequest, returns the answer plus
//	                serving metadata; the plan fingerprint and cache
//	                hit/miss also travel as X-Faqs-Plan-Fingerprint and
//	                X-Faqs-Plan-Cache response headers
//	POST /explain — compile/fetch the plan only: GHD tree, y(H)/n₂(H)/
//	                width/depth, per-node bounds, fingerprint, hit/miss
//	GET  /stats   — cache and service counters, resident plan table
//	GET  /healthz — liveness
//
// Usage:
//
//	faqd -addr :8080 -cache 256 -workers 0 -budget 0
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/faqs"
)

// maxRequestBytes bounds /solve bodies (64 MiB: ~1M tuples of arity 8).
const maxRequestBytes = 64 << 20

type server struct {
	engine  *faqs.Engine
	started time.Time
}

func newServer(opts ...faqs.Option) *server {
	return &server{engine: faqs.NewEngine(opts...), started: time.Now()}
}

// mux wires the handler table (shared with the handler tests).
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 0, "plan cache capacity in compiled query shapes (0 = default)")
	workers := flag.Int("workers", 0, "exec pool workers (0 = GOMAXPROCS)")
	budget := flag.Int64("budget", 0, "per-request memory budget in bytes for admission control (0 = unlimited)")
	flag.Parse()
	if *workers > 0 {
		faqs.SetDefaultWorkers(*workers)
	}
	srv := newServer(
		faqs.WithPlanCache(*cacheSize),
		faqs.WithMemoryBudget(*budget),
	)
	log.Printf("faqd: listening on %s (cache %d plans, %d workers, budget %d)",
		*addr, srv.engine.Stats().Cache.Capacity, faqs.DefaultWorkers(), *budget)
	// Header/idle timeouts bound slow-loris connections; request bodies
	// are already capped by MaxBytesReader. No WriteTimeout: solve time
	// is query-dependent and cancellation rides the request context.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "faqd: %v\n", err)
		os.Exit(1)
	}
}

type wireError struct {
	Error string `json:"error"`
}

// decodeRequest reads one bounded JSON WireRequest body.
func decodeRequest(w http.ResponseWriter, r *http.Request) (*faqs.WireRequest, bool) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return nil, false
	}
	var wr faqs.WireRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&wr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return nil, false
	}
	return &wr, true
}

// planHeaders surfaces the serving metadata every response carries.
func planHeaders(w http.ResponseWriter, fingerprint string, cacheHit bool) {
	w.Header().Set("X-Faqs-Plan-Fingerprint", fingerprint)
	if cacheHit {
		w.Header().Set("X-Faqs-Plan-Cache", "hit")
	} else {
		w.Header().Set("X-Faqs-Plan-Cache", "miss")
	}
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	wr, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	// Per-request cancellation: client disconnect stops the GHD pass.
	wa, err := s.engine.SolveWire(r.Context(), wr)
	if err != nil {
		httpError(w, solveErrorStatus(err), err)
		return
	}
	planHeaders(w, wa.PlanHash, wa.CacheHit)
	writeJSON(w, http.StatusOK, wa)
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	wr, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	q, err := faqs.BuildWireQuery(wr)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	ex, err := s.engine.Explain(q)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	planHeaders(w, ex.Fingerprint, ex.CacheHit)
	writeJSON(w, http.StatusOK, ex)
}

// solveErrorStatus maps serving failures onto HTTP: admission-control
// rejections are load shedding (429), everything else is an
// unprocessable request.
func solveErrorStatus(err error) int {
	if errors.Is(err, faqs.ErrOverBudget) {
		return http.StatusTooManyRequests
	}
	return http.StatusUnprocessableEntity
}

type statsPayload struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	faqs.Stats
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsPayload{
		UptimeSeconds: time.Since(s.started).Seconds(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Stats:         s.engine.Stats(),
	})
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, wireError{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}
