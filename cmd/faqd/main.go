// Command faqd is the FAQ query server: it keeps one service per
// semiring over a shared compiled-plan cache and serves JSON queries over
// HTTP. Plans compile once per query shape (variable-renaming-invariant
// fingerprinting, singleflight) and every request binds the cached plan
// to its own factor data.
//
// Endpoints:
//
//	POST /solve   — solve one WireRequest (see internal/service), returns
//	                the answer relation plus serving metadata
//	GET  /stats   — cache and service counters, resident plan table
//	GET  /healthz — liveness
//
// Usage:
//
//	faqd -addr :8080 -cache 256 -workers 0
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/service"
)

// maxRequestBytes bounds /solve bodies (64 MiB: ~1M tuples of arity 8).
const maxRequestBytes = 64 << 20

type server struct {
	cache      *plan.Cache
	boolSvc    *service.Service[bool]
	countSvc   *service.Service[int64]
	sumSvc     *service.Service[float64]
	minplusSvc *service.Service[float64]
	maxSvc     *service.Service[float64]
	started    time.Time
}

func newServer(cacheSize int) *server {
	c := plan.NewCache(cacheSize)
	return &server{
		cache:      c,
		boolSvc:    service.New[bool](semiring.Bool{}, "bool", c),
		countSvc:   service.New[int64](semiring.Count{}, "count", c),
		sumSvc:     service.New[float64](semiring.SumProduct{}, "sumproduct", c),
		minplusSvc: service.New[float64](semiring.MinPlus{}, "minplus", c),
		maxSvc:     service.New[float64](semiring.MaxTimes{}, "maxtimes", c),
		started:    time.Now(),
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", plan.DefaultCacheSize, "plan cache capacity (compiled query shapes)")
	workers := flag.Int("workers", 0, "exec pool workers (0 = GOMAXPROCS)")
	flag.Parse()
	if *workers > 0 {
		exec.SetWorkers(*workers)
	}
	srv := newServer(*cacheSize)
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", srv.handleSolve)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("faqd: listening on %s (cache %d plans, %d workers)", *addr, *cacheSize, exec.Workers())
	// Header/idle timeouts bound slow-loris connections; request bodies
	// are already capped by MaxBytesReader. No WriteTimeout: solve time
	// is query-dependent and cancellation rides the request context.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "faqd: %v\n", err)
		os.Exit(1)
	}
}

type wireError struct {
	Error string `json:"error"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var wr service.WireRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&wr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	var wa *service.WireAnswer
	var err error
	ctx := r.Context() // per-request cancellation: client disconnect stops the GHD pass
	switch wr.Semiring {
	case "bool":
		wa, err = solveWire(ctx, s.boolSvc, &wr,
			func(v float64) bool { return v != 0 },
			func(v bool) float64 {
				if v {
					return 1
				}
				return 0
			})
	case "count":
		wa, err = solveWire(ctx, s.countSvc, &wr,
			func(v float64) int64 { return int64(v) },
			func(v int64) float64 { return float64(v) })
	case "sumproduct":
		wa, err = solveWire(ctx, s.sumSvc, &wr, ident, ident)
	case "minplus":
		wa, err = solveWire(ctx, s.minplusSvc, &wr, ident, ident)
	case "maxtimes":
		wa, err = solveWire(ctx, s.maxSvc, &wr, ident, ident)
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown semiring %q (have %v)", wr.Semiring, service.SemiringNames))
		return
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, wa)
}

func ident(v float64) float64 { return v }

// solveWire is the generic request path: build the typed query, serve it,
// and render the answer.
func solveWire[T any](ctx context.Context, sv *service.Service[T], wr *service.WireRequest,
	conv func(float64) T, back func(T) float64) (*service.WireAnswer, error) {
	q, err := service.BuildQuery(sv.Semiring(), wr, conv)
	if err != nil {
		return nil, err
	}
	var ans *relation.Relation[T]
	var info service.Info
	ans, info, err = sv.Solve(ctx, q)
	if err != nil {
		return nil, err
	}
	return service.AnswerToWire(q, ans, back, info), nil
}

type statsPayload struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Workers       int             `json:"workers"`
	GoMaxProcs    int             `json:"gomaxprocs"`
	Cache         plan.CacheStats `json:"cache"`
	Services      []service.Stats `json:"services"`
	Plans         []plan.Snapshot `json:"plans"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsPayload{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       exec.Workers(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Cache:         s.cache.Stats(),
		Services: []service.Stats{
			s.boolSvc.Stats(), s.countSvc.Stats(), s.sumSvc.Stats(),
			s.minplusSvc.Stats(), s.maxSvc.Stats(),
		},
		Plans: s.cache.Plans(),
	})
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, wireError{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}
