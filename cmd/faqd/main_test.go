package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/faqs"
)

// testRequest is a small two-edge count query over a path shape.
func testRequest() *faqs.WireRequest {
	return &faqs.WireRequest{
		Semiring: "count",
		Edges:    [][]string{{"A", "B"}, {"B", "C"}},
		Factors: []faqs.WireFactor{
			{Tuples: [][]int{{0, 1}, {2, 1}, {3, 3}}},
			{Tuples: [][]int{{1, 0}, {1, 2}, {3, 1}}},
		},
		Free: []string{"A"},
		Dom:  4,
	}
}

func postJSON(t *testing.T, mux *http.ServeMux, path string, payload any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

// TestSolveHandlerPlanHeaders is the satellite contract: /solve responses
// carry the plan fingerprint and a cache-hit flag both as headers and as
// JSON fields, and a repeated shape flips miss → hit with the same
// fingerprint.
func TestSolveHandlerPlanHeaders(t *testing.T) {
	mux := newServer(faqs.WithPlanCache(16)).mux()

	rec1 := postJSON(t, mux, "/solve", testRequest())
	if rec1.Code != http.StatusOK {
		t.Fatalf("first solve: status %d, body %s", rec1.Code, rec1.Body.String())
	}
	fp1 := rec1.Header().Get("X-Faqs-Plan-Fingerprint")
	if len(fp1) != 16 {
		t.Fatalf("first solve: fingerprint header %q, want 16 hex chars", fp1)
	}
	if got := rec1.Header().Get("X-Faqs-Plan-Cache"); got != "miss" {
		t.Errorf("first solve: cache header %q, want miss", got)
	}
	var wa1 faqs.WireAnswer
	if err := json.Unmarshal(rec1.Body.Bytes(), &wa1); err != nil {
		t.Fatalf("decode first answer: %v", err)
	}
	if wa1.PlanHash != fp1 {
		t.Errorf("JSON plan_hash %q != header fingerprint %q", wa1.PlanHash, fp1)
	}
	if wa1.CacheHit {
		t.Errorf("first solve: JSON cache_hit = true, want false")
	}
	// path7-free=A on this data: A∈{0,2} join via B=1, A=3 via B=3.
	if len(wa1.Tuples) != 3 {
		t.Errorf("answer rows = %d, want 3 (%v)", len(wa1.Tuples), wa1.Tuples)
	}

	rec2 := postJSON(t, mux, "/solve", testRequest())
	if rec2.Code != http.StatusOK {
		t.Fatalf("second solve: status %d, body %s", rec2.Code, rec2.Body.String())
	}
	if got := rec2.Header().Get("X-Faqs-Plan-Cache"); got != "hit" {
		t.Errorf("second solve: cache header %q, want hit", got)
	}
	if got := rec2.Header().Get("X-Faqs-Plan-Fingerprint"); got != fp1 {
		t.Errorf("second solve: fingerprint %q, want %q (same shape)", got, fp1)
	}
	var wa2 faqs.WireAnswer
	if err := json.Unmarshal(rec2.Body.Bytes(), &wa2); err != nil {
		t.Fatalf("decode second answer: %v", err)
	}
	if !wa2.CacheHit || !wa2.Info.CacheHit {
		t.Errorf("second solve: JSON cache_hit = (%v, info %v), want true", wa2.CacheHit, wa2.Info.CacheHit)
	}

	// A renamed variant of the same shape shares the fingerprint.
	renamed := testRequest()
	renamed.Edges = [][]string{{"X", "Y"}, {"Y", "Z"}}
	renamed.Free = []string{"X"}
	rec3 := postJSON(t, mux, "/solve", renamed)
	if rec3.Code != http.StatusOK {
		t.Fatalf("renamed solve: status %d, body %s", rec3.Code, rec3.Body.String())
	}
	if got := rec3.Header().Get("X-Faqs-Plan-Fingerprint"); got != fp1 {
		t.Errorf("renamed shape fingerprint %q, want %q (rename-invariant)", got, fp1)
	}
	if got := rec3.Header().Get("X-Faqs-Plan-Cache"); got != "hit" {
		t.Errorf("renamed shape cache header %q, want hit", got)
	}
}

// TestExplainHandler pins /explain: same fingerprint as /solve, widths
// present, no execution.
func TestExplainHandler(t *testing.T) {
	mux := newServer(faqs.WithPlanCache(16)).mux()
	rec := postJSON(t, mux, "/explain", testRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("explain: status %d, body %s", rec.Code, rec.Body.String())
	}
	var ex faqs.Explain
	if err := json.Unmarshal(rec.Body.Bytes(), &ex); err != nil {
		t.Fatalf("decode explain: %v", err)
	}
	if len(ex.Fingerprint) != 16 || ex.Fingerprint != rec.Header().Get("X-Faqs-Plan-Fingerprint") {
		t.Errorf("explain fingerprint %q vs header %q", ex.Fingerprint, rec.Header().Get("X-Faqs-Plan-Fingerprint"))
	}
	if ex.Width != 1 || ex.Y != 1 || ex.Tree == "" {
		t.Errorf("explain widths: width=%d y=%d tree=%q", ex.Width, ex.Y, ex.Tree)
	}
	// The explain populated the cache: a following solve hits.
	rec2 := postJSON(t, mux, "/solve", testRequest())
	if got := rec2.Header().Get("X-Faqs-Plan-Cache"); got != "hit" {
		t.Errorf("solve after explain: cache header %q, want hit", got)
	}
}

// TestSolveHandlerErrors pins the error statuses: malformed JSON 400,
// unknown semiring and invalid queries 422, over-budget admission 429.
func TestSolveHandlerErrors(t *testing.T) {
	mux := newServer(faqs.WithPlanCache(16)).mux()

	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader([]byte("{not json")))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", rec.Code)
	}

	bad := testRequest()
	bad.Semiring = "no-such-semiring"
	if rec := postJSON(t, mux, "/solve", bad); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown semiring: status %d, want 422", rec.Code)
	}

	bad = testRequest()
	bad.Factors[0].Tuples[0][0] = 99 // outside Dom
	if rec := postJSON(t, mux, "/solve", bad); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("out-of-domain tuple: status %d, want 422", rec.Code)
	}

	if rec := postJSON(t, mux, "/stats", nil); rec.Code != http.StatusOK {
		t.Errorf("stats POST: status %d, want 200", rec.Code)
	}

	tight := newServer(faqs.WithPlanCache(16), faqs.WithMemoryBudget(8)).mux()
	if rec := postJSON(t, tight, "/solve", testRequest()); rec.Code != http.StatusTooManyRequests {
		t.Errorf("over budget: status %d, want 429", rec.Code)
	}

	// An unreachable worker fleet is a transient serving failure, not a
	// problem with the query: retryable 503, never 422.
	if code := solveErrorStatus(fmt.Errorf("solve: %w", faqs.ErrClusterUnavailable)); code != http.StatusServiceUnavailable {
		t.Errorf("cluster unavailable: status %d, want 503", code)
	}
}

// TestStatsHandler decodes the stats payload and checks the counters
// moved.
func TestStatsHandler(t *testing.T) {
	srv := newServer(faqs.WithPlanCache(16))
	mux := srv.mux()
	postJSON(t, mux, "/solve", testRequest())
	postJSON(t, mux, "/solve", testRequest())

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var st statsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Cache.Compiles != 1 || st.Cache.Hits != 1 {
		t.Errorf("cache counters: compiles=%d hits=%d, want 1/1", st.Cache.Compiles, st.Cache.Hits)
	}
	var count *faqs.ServiceStats
	for i := range st.Services {
		if st.Services[i].Semiring == "count" {
			count = &st.Services[i]
		}
	}
	if count == nil || count.Requests != 2 {
		t.Errorf("count service stats missing or wrong: %+v", count)
	}
	if len(st.Plans) != 1 {
		t.Errorf("resident plans = %d, want 1", len(st.Plans))
	}
}
