package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/faqs"
	"repro/internal/obs"
)

// do runs one request through the full handler chain (access log +
// request counter + mux), the same path a live daemon serves.
func do(t *testing.T, h http.Handler, method, path string, payload any) *httptest.ResponseRecorder {
	t.Helper()
	var body *bytes.Reader
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		body = bytes.NewReader(b)
	} else {
		body = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// scrape GETs /metrics and round-trips it through the strict
// exposition parser.
func scrape(t *testing.T, h http.Handler) *obs.Scrape {
	t.Helper()
	rec := do(t, h, http.MethodGet, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d, body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Content-Type"); got != faqs.MetricsContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", got, faqs.MetricsContentType)
	}
	sc, err := obs.ParseText(rec.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, rec.Body.String())
	}
	return sc
}

// TestMetricsEndpoint is the tentpole round-trip: drive solves through
// the daemon's full handler chain, then assert /metrics parses under
// the strict exposition parser and the key series moved.
func TestMetricsEndpoint(t *testing.T) {
	h := newServer(faqs.WithPlanCache(16)).handler()

	for i := 0; i < 2; i++ {
		if rec := do(t, h, http.MethodPost, "/solve", testRequest()); rec.Code != http.StatusOK {
			t.Fatalf("solve %d: status %d, body %s", i, rec.Code, rec.Body.String())
		}
	}

	sc := scrape(t, h)
	assertCounter := func(series string, labels map[string]string, min float64) {
		t.Helper()
		v, ok := sc.Value(series, labels)
		if !ok {
			t.Fatalf("series %s%v missing from /metrics", series, labels)
		}
		if v < min {
			t.Errorf("%s%v = %v, want >= %v", series, labels, v, min)
		}
	}
	assertCounter("faq_service_requests_total", map[string]string{"semiring": "count"}, 2)
	assertCounter("faqd_http_requests_total", map[string]string{"path": "/solve", "code": "200"}, 2)
	assertCounter("faq_plan_cache_hits_total", nil, 1)
	assertCounter("faq_plan_cache_misses_total", nil, 1)
	assertCounter("faq_exec_tasks_total", nil, 1)
	assertCounter("faq_go_goroutines", nil, 1)

	// The per-semiring latency histogram observed both requests and
	// holds the exposition invariants (the parser checked cumulativity).
	les, cum, ok := sc.HistBuckets("faq_service_request_ns", map[string]string{"semiring": "count"})
	if !ok {
		t.Fatal("faq_service_request_ns{semiring=count} missing")
	}
	if len(les) == 0 || cum[len(cum)-1] < 2 {
		t.Errorf("latency histogram count = %v, want >= 2", cum[len(cum)-1])
	}

	// A second scrape must be monotone on the counters it re-reads.
	sc2 := scrape(t, h)
	v1, _ := sc.Value("faqd_http_requests_total", map[string]string{"path": "/metrics", "code": "200"})
	v2, _ := sc2.Value("faqd_http_requests_total", map[string]string{"path": "/metrics", "code": "200"})
	if v2 < v1+1 {
		t.Errorf("/metrics self-count did not advance: %v then %v", v1, v2)
	}
}

// TestMetricsServableWhileDraining pins the drain contract: a draining
// server rejects work (503 on /solve) but keeps the observability
// surface up (200 on /metrics, still parseable), so the final scrape
// of a terminating instance lands.
func TestMetricsServableWhileDraining(t *testing.T) {
	srv := newServer(faqs.WithPlanCache(16))
	h := srv.handler()
	if rec := do(t, h, http.MethodPost, "/solve", testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("pre-drain solve: status %d", rec.Code)
	}

	srv.draining.Store(true)

	rec := do(t, h, http.MethodPost, "/solve", testRequest())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /solve: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("draining /solve: missing Retry-After")
	}
	for _, path := range []string{"/materialize", "/update"} {
		if rec := do(t, h, http.MethodPost, path, testRequest()); rec.Code != http.StatusServiceUnavailable {
			t.Errorf("draining %s: status %d, want 503", path, rec.Code)
		}
	}

	sc := scrape(t, h) // 200 + strict parse or it fails here
	if v, ok := sc.Value("faq_service_requests_total", map[string]string{"semiring": "count"}); !ok || v < 1 {
		t.Errorf("pre-drain request not visible in drain-time scrape (v=%v ok=%v)", v, ok)
	}
	if v, ok := sc.Value("faqd_http_requests_total", map[string]string{"path": "/solve", "code": "503"}); !ok || v < 1 {
		t.Errorf("drain rejection not counted (v=%v ok=%v)", v, ok)
	}
}

// TestDebugTraceEndpoint: solves leave traces with per-phase and
// per-GHD-node spans, served newest-first by /debug/trace.
func TestDebugTraceEndpoint(t *testing.T) {
	h := newServer(faqs.WithPlanCache(16)).handler()
	for i := 0; i < 2; i++ {
		if rec := do(t, h, http.MethodPost, "/solve", testRequest()); rec.Code != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, rec.Code)
		}
	}

	rec := do(t, h, http.MethodGet, "/debug/trace", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d, body %s", rec.Code, rec.Body.String())
	}
	var traces []faqs.Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("decode traces: %v", err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	newest := traces[0]
	if !newest.CacheHit {
		t.Errorf("newest trace (second solve) should be a cache hit")
	}
	if newest.Semiring != "count" {
		t.Errorf("trace semiring = %q, want count", newest.Semiring)
	}
	if len(newest.Fingerprint) != 16 {
		t.Errorf("trace fingerprint = %q, want 16 hex chars", newest.Fingerprint)
	}
	var phases, nodes int
	for _, sp := range newest.Spans {
		if strings.HasPrefix(sp.Name, "exec.node") {
			nodes++
		} else {
			phases++
		}
	}
	if phases < 5 {
		t.Errorf("newest trace has %d phase spans, want >= 5 (%v)", phases, newest.Spans)
	}
	if nodes < 1 {
		t.Errorf("newest trace has no per-node exec spans: %v", newest.Spans)
	}

	rec = do(t, h, http.MethodGet, "/debug/trace?n=1", nil)
	var one []faqs.Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil || len(one) != 1 {
		t.Fatalf("?n=1: err=%v len=%d, want 1 trace", err, len(one))
	}
	if rec := do(t, h, http.MethodGet, "/debug/trace?n=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("?n=bogus: status %d, want 400", rec.Code)
	}

	// A fresh server serves [] rather than null.
	rec = do(t, newServer().handler(), http.MethodGet, "/debug/trace", nil)
	if got := strings.TrimSpace(rec.Body.String()); got != "[]" {
		t.Errorf("empty trace buffer serves %q, want []", got)
	}
}
