// Command faqload is the deterministic load generator for the query
// service layer: it drives a mixed-shape Count-semiring workload —
// several query templates, each request a freshly renamed variant with
// fresh factor data — through the in-process service (or, with -url, a
// running faqd over HTTP), measures cold-plan vs warm-cache throughput
// and latency percentiles across worker counts, verifies every answer
// bit-identical to a direct per-request faq.Solve (and spot-checks the
// distributed protocol.Run per template), and writes BENCH_service.json.
//
// In -url mode the run is two phases — cold (one request per template,
// plans compile) then warm (cached plans bind to fresh data) — with a
// strict-parsed /metrics scrape at each phase boundary: the report
// folds in the server's own latency quantiles (faq_service_request_ns
// bucket deltas), shed/deadline counters, and fails if the exposition
// is malformed or a key series never moved. The JSON summary goes to
// -out next to the text table.
//
// Cold-plan means the plan cache is dropped before every request, so each
// request pays canonicalization + ghd.Minimize + re-rooting; warm-cache
// compiles each template once and binds thereafter. All randomness is
// seeded: the same flags reproduce the same requests byte for byte.
//
// Usage:
//
//	faqload -out BENCH_service.json -requests 40 -n 512 -workers 1,2,4,8
//	faqload -url http://127.0.0.1:8080 -requests 6 -n 128   # smoke a faqd
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/faqs"
	"repro/internal/cli"
	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/service"
	"repro/internal/topology"
	"repro/internal/workload"
)

// templates are the mixed query shapes: a long path (whose exhaustive
// width search makes cold planning expensive), a symmetric star, a
// balanced binary tree, and a cyclic triangle with a pendant edge. Free
// variables sit in a coverable bag, so every shape takes the GHD path.
var templates = []struct {
	name string
	spec string
	free string
}{
	{"path7", "A0,A1;A1,A2;A2,A3;A3,A4;A4,A5;A5,A6;A6,A7", "A0"},
	{"star6", "C,B1;C,B2;C,B3;C,B4;C,B5;C,B6", "C"},
	{"tree6", "R,L;R,T;L,LL;L,LR;T,TL;T,TR", "R"},
	{"tri-pendant", "A,B;B,C;A,C;C,D", "C"},
}

type phaseStats struct {
	Requests      int     `json:"requests"`
	WallNS        int64   `json:"wall_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50NS         int64   `json:"p50_ns"`
	P99NS         int64   `json:"p99_ns"`
	Compiles      int     `json:"compiles"`
	CacheHits     int     `json:"cache_hits"`
}

type workerPoint struct {
	Workers      int        `json:"workers"`
	Cold         phaseStats `json:"cold"`
	Warm         phaseStats `json:"warm"`
	WarmBatch    phaseStats `json:"warm_batch"`
	Speedup      float64    `json:"speedup_warm_over_cold"`
	BitIdentical bool       `json:"bit_identical"`
}

type benchReport struct {
	HostCPUs         int           `json:"host_cpus"`
	GoMaxProcs       int           `json:"gomaxprocs"`
	N                int           `json:"n"`
	Dom              int           `json:"dom"`
	RequestsPerPhase int           `json:"requests_per_phase"`
	Templates        []string      `json:"templates"`
	Methodology      string        `json:"methodology"`
	Points           []workerPoint `json:"points"`
	MinSpeedup       float64       `json:"min_speedup"`
	ProtocolChecked  bool          `json:"protocol_checked"`
}

func main() {
	out := flag.String("out", "BENCH_service.json", "output artifact path")
	requests := flag.Int("requests", 40, "requests per phase")
	n := flag.Int("n", 512, "tuples per factor")
	dom := flag.Int("dom", 0, "domain size (0 = n)")
	workers := flag.String("workers", "1,2,4,8", "comma-separated worker counts")
	seed := flag.Int64("seed", 1, "random seed")
	url := flag.String("url", "", "drive a running faqd over HTTP instead of in-process (smoke mode)")
	checkProto := flag.Bool("verify-protocol", true, "spot-check answers against protocol.Run per template")
	flag.Parse()
	if *url != "" {
		// In -url mode the JSON summary is opt-in: the -out default is
		// the in-process bench artifact, which a smoke must not clobber.
		outSet := false
		flag.Visit(func(f *flag.Flag) { outSet = outSet || f.Name == "out" })
		if !outSet {
			*out = ""
		}
	}
	if err := run(*out, *requests, *n, *dom, *workers, *seed, *url, *checkProto); err != nil {
		fmt.Fprintf(os.Stderr, "faqload: %v\n", err)
		os.Exit(1)
	}
}

// request is one generated workload item: a renamed template instance
// with fresh factor data.
type request struct {
	template int
	q        *faq.Query[int64]
}

// genRequest builds request i deterministically: template round-robin, a
// seeded variable-id permutation (exercising fingerprint invariance), and
// seeded Count factors with values in {1,2,3}.
func genRequest(hs []*hypergraph.Hypergraph, frees [][]int, i, n, dom int, seed int64) request {
	ti := i % len(hs)
	base, baseFree := hs[ti], frees[ti]
	r := rand.New(rand.NewSource(seed*1_000_003 + int64(i)))
	perm := r.Perm(base.NumVertices())
	h := hypergraph.New(base.NumVertices())
	for _, vs := range base.Edges() {
		nv := make([]int, len(vs))
		for k, v := range vs {
			nv[k] = perm[v]
		}
		h.AddEdge(nv...)
	}
	free := make([]int, len(baseFree))
	for k, v := range baseFree {
		free[k] = perm[v]
	}
	sort.Ints(free)
	s := semiring.Count{}
	factors := make([]*relation.Relation[int64], h.NumEdges())
	for e := range factors {
		b := relation.NewBuilderHint[int64](s, h.Edge(e), n)
		tuple := make([]int, len(h.Edge(e)))
		for t := 0; t < n; t++ {
			for j := range tuple {
				tuple[j] = r.Intn(dom)
			}
			b.Add(tuple, int64(1+r.Intn(3)))
		}
		factors[e] = b.Build()
	}
	return request{template: ti, q: &faq.Query[int64]{S: s, H: h, Factors: factors, Free: free, DomSize: dom}}
}

// bitIdentical: for the exact Count semiring, relation.Equal's
// schema/rows/values comparison is exactly layout identity (the repo's
// determinism invariant keeps equal relations byte-identical).
func bitIdentical(a, b *relation.Relation[int64]) bool {
	if a == nil || b == nil {
		return a == b
	}
	return relation.Equal[int64](semiring.Count{}, a, b)
}

// percentile is the nearest-rank estimator: the smallest sample with at
// least a q fraction of the distribution at or below it (a floor index
// would systematically understate the tail at small sample counts).
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func summarize(lats []int64, infos []service.Info) phaseStats {
	st := phaseStats{Requests: len(lats)}
	for _, l := range lats {
		st.WallNS += l
	}
	for _, inf := range infos {
		if inf.CacheHit {
			st.CacheHits++
		} else {
			st.Compiles++
		}
	}
	if st.WallNS > 0 {
		st.ThroughputRPS = float64(st.Requests) / (float64(st.WallNS) / 1e9)
	}
	sorted := append([]int64(nil), lats...)
	slices.Sort(sorted)
	st.P50NS = percentile(sorted, 0.50)
	st.P99NS = percentile(sorted, 0.99)
	return st
}

func run(out string, requests, n, dom int, workerSpec string, seed int64, url string, checkProto bool) error {
	if dom <= 0 {
		dom = n
	}
	var workerCounts []int
	for _, w := range strings.Split(workerSpec, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || k < 1 {
			return fmt.Errorf("bad -workers entry %q", w)
		}
		workerCounts = append(workerCounts, k)
	}
	hs := make([]*hypergraph.Hypergraph, len(templates))
	frees := make([][]int, len(templates))
	for i, tpl := range templates {
		h, err := cli.ParseQuery(tpl.spec)
		if err != nil {
			return fmt.Errorf("template %s: %w", tpl.name, err)
		}
		hs[i] = h
		// Resolve the free name through a throwaway builder-equivalent
		// parse: vertex ids follow first-use order of the spec.
		id := -1
		for v := 0; v < h.NumVertices(); v++ {
			if h.VertexName(v) == tpl.free {
				id = v
			}
		}
		if id < 0 {
			return fmt.Errorf("template %s: free %q not found", tpl.name, tpl.free)
		}
		frees[i] = []int{id}
	}

	if url != "" {
		return runRemote(url, out, requests, n, dom, seed, hs, frees)
	}

	rep := benchReport{
		HostCPUs:         runtime.NumCPU(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		N:                n,
		Dom:              dom,
		RequestsPerPhase: requests,
		Methodology: "Mixed-shape Count workload; every request is a seeded variable-renaming of one of the " +
			"templates with fresh factor data. cold: plan cache dropped before each request (every request " +
			"pays canonicalize + ghd.Minimize + re-root). warm: one unmeasured warmup per template, then " +
			"cached plans bind to fresh data. warm_batch: the same warm requests through Service.SolveBatch " +
			"(grouped by plan, executed across the pool). Latency = Service.Solve wall clock in-process; " +
			"verification (excluded from timing) checks every answer bit-identical to per-request faq.Solve " +
			"and, once per template per worker count, to the distributed protocol.Run on a clique:4.",
		ProtocolChecked: checkProto,
	}
	for _, tpl := range templates {
		rep.Templates = append(rep.Templates, tpl.name)
	}

	minSpeedup := 0.0
	reqIdx := 0
	for _, w := range workerCounts {
		prev := exec.SetWorkers(w)
		pt := workerPoint{Workers: w, BitIdentical: true}
		cache := plan.NewCache(plan.DefaultCacheSize)
		sv := service.New[int64](semiring.Count{}, "count", cache)
		ctx := context.Background()

		verifyReq := func(r request, got *relation.Relation[int64], protoDone map[int]bool) error {
			want, err := faq.Solve(r.q)
			if err != nil {
				return err
			}
			if !bitIdentical(got, want) {
				pt.BitIdentical = false
				return fmt.Errorf("workers=%d template=%s: answer not bit-identical to faq.Solve", w, templates[r.template].name)
			}
			if checkProto && protoDone != nil && !protoDone[r.template] {
				protoDone[r.template] = true
				g := topology.Clique(4)
				assign := workload.RoundRobinAssignment(r.q.H.NumEdges(), []int{0, 1, 2, 3})
				setup := &protocol.Setup[int64]{Q: r.q, G: g, Assign: assign, Output: 0}
				pAns, _, err := protocol.Run(setup)
				if err != nil {
					return fmt.Errorf("protocol.Run: %w", err)
				}
				if !bitIdentical(pAns, want) {
					pt.BitIdentical = false
					return fmt.Errorf("workers=%d template=%s: protocol.Run answer differs", w, templates[r.template].name)
				}
			}
			return nil
		}

		// Cold phase: drop the cache before every request.
		coldLats := make([]int64, 0, requests)
		coldInfos := make([]service.Info, 0, requests)
		protoDone := map[int]bool{}
		for i := 0; i < requests; i++ {
			r := genRequest(hs, frees, reqIdx, n, dom, seed)
			reqIdx++
			cache.Reset()
			t0 := time.Now()
			ans, info, err := sv.Solve(ctx, r.q)
			lat := time.Since(t0).Nanoseconds()
			if err != nil {
				return fmt.Errorf("cold solve: %w", err)
			}
			coldLats = append(coldLats, lat)
			coldInfos = append(coldInfos, info)
			if err := verifyReq(r, ans, protoDone); err != nil {
				return err
			}
		}
		pt.Cold = summarize(coldLats, coldInfos)

		// Warm phase: one unmeasured warmup per template, then measure.
		cache.Reset()
		var warmReqs []request
		for i := 0; i < len(templates); i++ {
			r := genRequest(hs, frees, reqIdx, n, dom, seed)
			reqIdx++
			if _, _, err := sv.Solve(ctx, r.q); err != nil {
				return fmt.Errorf("warmup: %w", err)
			}
		}
		warmLats := make([]int64, 0, requests)
		warmInfos := make([]service.Info, 0, requests)
		for i := 0; i < requests; i++ {
			r := genRequest(hs, frees, reqIdx, n, dom, seed)
			reqIdx++
			t0 := time.Now()
			ans, info, err := sv.Solve(ctx, r.q)
			lat := time.Since(t0).Nanoseconds()
			if err != nil {
				return fmt.Errorf("warm solve: %w", err)
			}
			warmLats = append(warmLats, lat)
			warmInfos = append(warmInfos, info)
			warmReqs = append(warmReqs, r)
			if err := verifyReq(r, ans, nil); err != nil { // protocol already spot-checked in the cold phase
				return err
			}
		}
		pt.Warm = summarize(warmLats, warmInfos)

		// Warm batch: the same warm requests through the batching path.
		qs := make([]*faq.Query[int64], len(warmReqs))
		for i, r := range warmReqs {
			qs[i] = r.q
		}
		tb := time.Now()
		answers, binfos, berrs := sv.SolveBatch(ctx, qs)
		batchNS := time.Since(tb).Nanoseconds()
		for i := range qs {
			if berrs[i] != nil {
				return fmt.Errorf("batch request %d: %w", i, berrs[i])
			}
			want, err := faq.Solve(qs[i])
			if err != nil {
				return err
			}
			if !bitIdentical(answers[i], want) {
				pt.BitIdentical = false
				return fmt.Errorf("workers=%d: batch answer %d not bit-identical", w, i)
			}
		}
		// Latency percentiles come from per-request in-batch times;
		// throughput from the whole-batch wall clock.
		batchLats := make([]int64, len(binfos))
		for i, inf := range binfos {
			batchLats[i] = inf.TotalNS
		}
		pt.WarmBatch = summarize(batchLats, binfos)
		pt.WarmBatch.WallNS = batchNS
		if batchNS > 0 {
			pt.WarmBatch.ThroughputRPS = float64(len(qs)) / (float64(batchNS) / 1e9)
		}

		if pt.Cold.ThroughputRPS > 0 {
			pt.Speedup = pt.Warm.ThroughputRPS / pt.Cold.ThroughputRPS
		}
		if minSpeedup == 0 || pt.Speedup < minSpeedup {
			minSpeedup = pt.Speedup
		}
		rep.Points = append(rep.Points, pt)
		exec.SetWorkers(prev)
	}
	rep.MinSpeedup = minSpeedup

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}

	fmt.Printf("service layer throughput (host: %d CPU(s), %d requests/phase, n=%d)\n",
		rep.HostCPUs, requests, n)
	fmt.Printf("%-8s %-12s %-12s %-12s %-10s %-12s %-12s\n",
		"workers", "cold_rps", "warm_rps", "batch_rps", "speedup", "warm_p50_ms", "warm_p99_ms")
	for _, pt := range rep.Points {
		fmt.Printf("%-8d %-12.1f %-12.1f %-12.1f %-10.2f %-12.3f %-12.3f\n",
			pt.Workers, pt.Cold.ThroughputRPS, pt.Warm.ThroughputRPS, pt.WarmBatch.ThroughputRPS,
			pt.Speedup, float64(pt.Warm.P50NS)/1e6, float64(pt.Warm.P99NS)/1e6)
	}
	fmt.Printf("min warm/cold speedup: %.2f×; answers bit-identical at every worker count\n", minSpeedup)
	fmt.Printf("wrote %s\n", out)
	return nil
}

// retryAttempts bounds postRetry: 5 tries spanning ~1.5 s of default
// backoff before giving up on a persistently unavailable server.
const retryAttempts = 5

// startupRetryAttempts is the larger budget for connection-refused
// failures: faqload is routinely launched alongside faqd (make
// smoke-cluster starts both and the daemon additionally handshakes its
// worker fleet before listening), so a refused connection usually means
// "not up yet", not "down".
const startupRetryAttempts = 12

// maxRetryBackoff caps the doubling so the longer startup budget waits
// in steady 2 s steps instead of minutes.
const maxRetryBackoff = 2 * time.Second

// connRefused reports a connection-refused transport failure — the one
// error class where waiting out a server still starting up is the
// expected cure.
func connRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}

// postRetry posts body, retrying transient failures — transport errors
// and 503 responses — with seeded-jitter exponential backoff, honoring
// the server's Retry-After hint when present. Connection-refused gets
// the extended startup budget. Non-transient statuses (429 budget
// rejections cannot succeed unchanged; 4xx/5xx otherwise are the
// caller's to report) return immediately.
func postRetry(client *http.Client, rng *rand.Rand, url string, body []byte) (*http.Response, error) {
	backoff := 100 * time.Millisecond
	for attempt := 1; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err == nil && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		budget := retryAttempts
		if connRefused(err) {
			budget = startupRetryAttempts
		}
		if attempt >= budget {
			if err != nil {
				return nil, fmt.Errorf("after %d attempts: %w", attempt, err)
			}
			return resp, nil
		}
		// Full jitter in [backoff, 2·backoff); Retry-After overrides when
		// the server knows better.
		wait := backoff + time.Duration(rng.Int63n(int64(backoff)))
		if resp != nil {
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs >= 0 {
				wait = time.Duration(secs) * time.Second
			}
			resp.Body.Close()
		}
		time.Sleep(wait)
		if backoff < maxRetryBackoff {
			backoff *= 2
		}
	}
}

// remotePhase is one phase of the remote smoke, with both views of
// latency: the client's wall clock (includes HTTP + JSON) and the
// server's own faq_service_request_ns histogram, estimated from the
// cumulative-bucket delta between the phase-boundary /metrics scrapes.
type remotePhase struct {
	Requests    int     `json:"requests"`
	ClientP50NS int64   `json:"client_p50_ns"`
	ClientP99NS int64   `json:"client_p99_ns"`
	ServerP50NS float64 `json:"server_p50_ns"`
	ServerP99NS float64 `json:"server_p99_ns"`
	ServerCount float64 `json:"server_requests"`
}

// remoteReport is the machine-readable summary of one -url smoke run,
// written to -out alongside the text table.
type remoteReport struct {
	URL              string      `json:"url"`
	Requests         int         `json:"requests"`
	N                int         `json:"n"`
	Cold             remotePhase `json:"cold"`
	Warm             remotePhase `json:"warm"`
	ThroughputRPS    float64     `json:"throughput_rps"`
	Shed             float64     `json:"server_shed"`
	DeadlineExceeded float64     `json:"server_deadline_exceeded"`
	PlanCompiles     int64       `json:"server_plan_compiles"`
	AnswersVerified  bool        `json:"answers_verified"`
}

// metricsScrape GETs the target's /metrics and round-trips it through
// the strict exposition parser — a malformed document fails the smoke.
// The first scrape of a run is the startup handshake (it happens before
// any solve), so connection-refused is retried with the same
// seeded-jitter backoff postRetry uses.
func metricsScrape(client *http.Client, rng *rand.Rand, url string) (*obs.Scrape, error) {
	resp, err := client.Get(url + "/metrics")
	backoff := 100 * time.Millisecond
	for attempt := 1; connRefused(err) && attempt < startupRetryAttempts; attempt++ {
		time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
		if backoff < maxRetryBackoff {
			backoff *= 2
		}
		resp, err = client.Get(url + "/metrics")
	}
	if err != nil {
		return nil, fmt.Errorf("GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	sc, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("/metrics does not parse: %w", err)
	}
	return sc, nil
}

// latencyLabels selects the server-side request-latency series the
// Count-semiring smoke workload lands in.
var latencyLabels = map[string]string{"semiring": "count"}

// serverLatency estimates phase quantiles from the cumulative-bucket
// delta of faq_service_request_ns between two scrapes (differences of
// cumulative counts are again cumulative, so the interpolation applies
// unchanged).
func serverLatency(before, after *obs.Scrape) (p remotePhase, err error) {
	const series = "faq_service_request_ns"
	lesB, cumB, okB := before.HistBuckets(series, latencyLabels)
	lesA, cumA, okA := after.HistBuckets(series, latencyLabels)
	if !okA {
		return p, fmt.Errorf("%s missing from /metrics", series)
	}
	delta := append([]float64(nil), cumA...)
	if okB {
		if len(cumB) != len(cumA) || !slices.Equal(lesB, lesA) {
			return p, fmt.Errorf("%s bucket layout changed between scrapes", series)
		}
		for i := range delta {
			delta[i] -= cumB[i]
		}
	}
	p.ServerP50NS = obs.QuantileFromBuckets(lesA, delta, 0.50)
	p.ServerP99NS = obs.QuantileFromBuckets(lesA, delta, 0.99)
	p.ServerCount = delta[len(delta)-1]
	return p, nil
}

// runRemote smokes a running faqd in two phases — cold (one request
// per template, plans compile) then warm (cached plans bind to fresh
// data) — scraping /metrics at each phase boundary. Every answer is
// verified against the local direct solve (wire values are exact for
// Count), server-side latency quantiles and shed/deadline counters
// are folded into the report from the scrape deltas, and the summary
// is written to -out as JSON next to the text table.
func runRemote(url, out string, requests, n, dom int, seed int64, hs []*hypergraph.Hypergraph, frees [][]int) error {
	client := &http.Client{Timeout: 60 * time.Second}
	rng := rand.New(rand.NewSource(seed * 7_919))
	coldN := len(templates)
	if requests < coldN {
		coldN = requests
	}

	solveOne := func(i int) (int64, error) {
		r := genRequest(hs, frees, i, n, dom, seed)
		wr := queryToWire(r.q)
		body, err := json.Marshal(wr)
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		resp, err := postRetry(client, rng, url+"/solve", body)
		if err != nil {
			return 0, fmt.Errorf("POST /solve: %w", err)
		}
		var wa faqs.WireAnswer
		decErr := json.NewDecoder(resp.Body).Decode(&wa)
		resp.Body.Close()
		lat := time.Since(t0).Nanoseconds()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("POST /solve: status %d", resp.StatusCode)
		}
		if decErr != nil {
			return 0, fmt.Errorf("decode answer: %w", decErr)
		}
		want, err := faq.Solve(r.q)
		if err != nil {
			return 0, err
		}
		if err := compareWire(r.q, want, &wa); err != nil {
			return 0, fmt.Errorf("request %d (%s): %w", i, templates[r.template].name, err)
		}
		return lat, nil
	}

	runPhase := func(from, to int) (remotePhase, *obs.Scrape, error) {
		before, err := metricsScrape(client, rng, url)
		if err != nil {
			return remotePhase{}, nil, err
		}
		var lats []int64
		for i := from; i < to; i++ {
			lat, err := solveOne(i)
			if err != nil {
				return remotePhase{}, nil, err
			}
			lats = append(lats, lat)
		}
		after, err := metricsScrape(client, rng, url)
		if err != nil {
			return remotePhase{}, nil, err
		}
		ph, err := serverLatency(before, after)
		if err != nil {
			return remotePhase{}, nil, err
		}
		ph.Requests = len(lats)
		slices.Sort(lats)
		ph.ClientP50NS = percentile(lats, 0.50)
		ph.ClientP99NS = percentile(lats, 0.99)
		if ph.ServerCount < float64(len(lats)) {
			return remotePhase{}, nil, fmt.Errorf("server latency histogram saw %.0f requests, want >= %d", ph.ServerCount, len(lats))
		}
		return ph, after, nil
	}

	t0 := time.Now()
	cold, _, err := runPhase(0, coldN)
	if err != nil {
		return err
	}
	warm, final, err := runPhase(coldN, requests)
	if err != nil {
		return err
	}
	wallNS := time.Since(t0).Nanoseconds()

	// Key series must be live: a scrape that parses but reports a dead
	// engine (nothing counted) is a broken /metrics, not a quiet one.
	for _, check := range []struct {
		series string
		labels map[string]string
	}{
		{"faq_service_requests_total", latencyLabels},
		{"faq_plan_cache_misses_total", nil},
		{"faq_go_goroutines", nil},
		{"faqd_http_requests_total", map[string]string{"path": "/solve", "code": "200"}},
	} {
		if v, ok := final.Value(check.series, check.labels); !ok || v < 1 {
			return fmt.Errorf("key series %s%v is missing or zero after %d requests (v=%v ok=%v)",
				check.series, check.labels, requests, v, ok)
		}
	}
	// The solve work must have landed somewhere: an in-process engine
	// drives the exec pool, while a cluster-backed faqd scatters the
	// pass to its shard workers and books the traffic under
	// protocol="cluster" instead.
	execTasks, _ := final.Value("faq_exec_tasks_total", nil)
	clusterBytes, _ := final.Value("faq_protocol_bytes_total", map[string]string{"protocol": "cluster"})
	if execTasks < 1 && clusterBytes < 1 {
		return fmt.Errorf("neither faq_exec_tasks_total nor faq_protocol_bytes_total{protocol=cluster} moved after %d requests", requests)
	}
	shed, _ := final.Value("faq_service_shed_total", latencyLabels)
	deadlines, _ := final.Value("faq_service_deadline_exceeded_total", latencyLabels)

	resp, err := client.Get(url + "/stats")
	if err != nil {
		return fmt.Errorf("GET /stats: %w", err)
	}
	defer resp.Body.Close()
	var stats struct {
		Cache plan.CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return fmt.Errorf("decode stats: %w", err)
	}
	if stats.Cache.Compiles < 1 || stats.Cache.Compiles > int64(len(templates)) {
		return fmt.Errorf("stats: %d compiles for %d templates — plan sharing broken", stats.Cache.Compiles, len(templates))
	}

	rep := remoteReport{
		URL: url, Requests: requests, N: n,
		Cold: cold, Warm: warm,
		Shed: shed, DeadlineExceeded: deadlines,
		PlanCompiles:    stats.Cache.Compiles,
		AnswersVerified: true,
	}
	if wallNS > 0 {
		rep.ThroughputRPS = float64(requests) / (float64(wallNS) / 1e9)
	}
	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	fmt.Printf("remote smoke: %d requests OK against %s (%.1f req/s), %d plan compiles for %d shapes, answers verified\n",
		requests, url, rep.ThroughputRPS, stats.Cache.Compiles, len(templates))
	fmt.Printf("%-6s %-10s %-14s %-14s %-14s %-14s\n",
		"phase", "requests", "client_p50_ms", "client_p99_ms", "server_p50_ms", "server_p99_ms")
	for _, row := range []struct {
		name string
		ph   remotePhase
	}{{"cold", cold}, {"warm", warm}} {
		fmt.Printf("%-6s %-10d %-14.3f %-14.3f %-14.3f %-14.3f\n",
			row.name, row.ph.Requests,
			float64(row.ph.ClientP50NS)/1e6, float64(row.ph.ClientP99NS)/1e6,
			row.ph.ServerP50NS/1e6, row.ph.ServerP99NS/1e6)
	}
	fmt.Printf("server counters: shed=%.0f deadline_exceeded=%.0f\n", shed, deadlines)
	if out != "" {
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

// queryToWire renders a Count query as a wire request (vertex names are
// the hypergraph's display names).
func queryToWire(q *faq.Query[int64]) *faqs.WireRequest {
	wr := &faqs.WireRequest{Semiring: "count", Dom: q.DomSize}
	for e := 0; e < q.H.NumEdges(); e++ {
		names := make([]string, len(q.H.Edge(e)))
		for i, v := range q.H.Edge(e) {
			names[i] = q.H.VertexName(v)
		}
		wr.Edges = append(wr.Edges, names)
		f := q.Factors[e]
		wf := faqs.WireFactor{Tuples: make([][]int, f.Len()), Values: make([]float64, f.Len())}
		for t := 0; t < f.Len(); t++ {
			row := make([]int, len(f.Tuple(t)))
			for j, x := range f.Tuple(t) {
				row[j] = int(x)
			}
			wf.Tuples[t] = row
			wf.Values[t] = float64(f.Value(t))
		}
		wr.Factors = append(wr.Factors, wf)
	}
	for _, v := range q.Free {
		wr.Free = append(wr.Free, q.H.VertexName(v))
	}
	return wr
}

// compareWire checks a wire answer against the reference relation.
func compareWire(q *faq.Query[int64], want *relation.Relation[int64], wa *faqs.WireAnswer) error {
	if len(wa.Tuples) != want.Len() {
		return fmt.Errorf("answer has %d tuples, want %d", len(wa.Tuples), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		wt := want.Tuple(i)
		if len(wa.Tuples[i]) != len(wt) {
			return fmt.Errorf("tuple %d arity mismatch", i)
		}
		for j := range wt {
			if wa.Tuples[i][j] != int(wt[j]) {
				return fmt.Errorf("tuple %d differs", i)
			}
		}
		if int64(wa.Values[i]) != want.Value(i) {
			return fmt.Errorf("value %d differs: %v vs %d", i, wa.Values[i], want.Value(i))
		}
	}
	return nil
}
