// Command faqrun executes one Boolean Conjunctive Query distributed over
// a chosen topology and reports the answer, the measured round/bit cost
// of the paper's main protocol and of the trivial baseline, and the
// closed-form bounds. It is a client of the public faqs façade — query
// building, topology construction, and the distributed run all go
// through the library API.
//
// Usage:
//
//	faqrun -query 'A,B;A,C;A,D' -topo line:4 -n 64 -output 0 -seed 1
//
// Topologies: line:k, clique:k, star:k, ring:k, grid:RxC. Factors are
// random with n tuples each and are assigned round-robin to the players.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/faqs"
)

// usageError marks malformed command-line input: main prints the flag
// usage and exits 2 for these, while runtime failures exit 1 without the
// usage noise.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func main() {
	query := flag.String("query", "A,B;A,C;A,D;A,E", "hyperedges: ';'-separated, ','-separated vertex names")
	topo := flag.String("topo", "line:4", "topology: line:k | clique:k | star:k | ring:k | grid:RxC")
	n := flag.Int("n", 64, "tuples per relation (the paper's N)")
	output := flag.Int("output", 0, "player that must learn the answer")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := run(*query, *topo, *n, *output, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "faqrun: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// parseEdges splits 'A,B;B,C' into edge name lists.
func parseEdges(spec string) ([][]string, error) {
	var edges [][]string
	for i, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("edge %d is empty", i)
		}
		var names []string
		for _, name := range strings.Split(part, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, fmt.Errorf("edge %d has an empty vertex name", i)
			}
			names = append(names, name)
		}
		edges = append(edges, names)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("query has no edges")
	}
	return edges, nil
}

// parseTopology maps 'line:4' / 'grid:3x4' onto the faqs constructors.
func parseTopology(spec string) (faqs.Topology, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return faqs.Topology{}, fmt.Errorf("topology %q: want kind:size", spec)
	}
	if kind == "grid" {
		rs, cs, ok := strings.Cut(arg, "x")
		if !ok {
			return faqs.Topology{}, fmt.Errorf("grid topology %q: want grid:RxC", spec)
		}
		r, err1 := strconv.Atoi(rs)
		c, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil {
			return faqs.Topology{}, fmt.Errorf("grid topology %q: bad dimensions", spec)
		}
		return faqs.Grid(r, c)
	}
	k, err := strconv.Atoi(arg)
	if err != nil {
		return faqs.Topology{}, fmt.Errorf("topology %q: bad size %q", spec, arg)
	}
	switch kind {
	case "line":
		return faqs.Line(k)
	case "clique":
		return faqs.Clique(k)
	case "star":
		return faqs.Star(k)
	case "ring":
		return faqs.Ring(k)
	}
	return faqs.Topology{}, fmt.Errorf("unknown topology kind %q (have line, clique, star, ring, grid)", kind)
}

func run(query, topo string, n, output int, seed int64) error {
	edges, err := parseEdges(query)
	if err != nil {
		return usageError{err}
	}
	g, err := parseTopology(topo)
	if err != nil {
		return usageError{err}
	}
	if n < 1 {
		return usageError{fmt.Errorf("-n must be positive, got %d", n)}
	}

	// Random Boolean factors, n tuples each over domain [0, n).
	r := rand.New(rand.NewSource(seed))
	qb := faqs.NewQuery(faqs.Bool).Domain(n)
	for _, names := range edges {
		sch, err := faqs.NewSchema(names...)
		if err != nil {
			return usageError{err}
		}
		rb := faqs.NewRelationBuilder(sch)
		tuple := make([]int, sch.Arity())
		for t := 0; t < n; t++ {
			for i := range tuple {
				tuple[i] = r.Intn(n)
			}
			rb.Add(tuple...)
		}
		rel, err := rb.Relation()
		if err != nil {
			return err
		}
		qb.Factor(rel)
	}
	q, err := qb.Build()
	if err != nil {
		return usageError{err}
	}

	assign := make([]int, len(edges))
	for e := range assign {
		assign[e] = e % g.Players()
	}
	eng := faqs.NewEngine()
	nr, err := eng.SolveOnNetwork(q, g, assign, output)
	if err != nil {
		return err
	}
	v, err := nr.Answer.Scalar()
	if err != nil {
		return err
	}
	b := nr.Bounds
	fmt.Printf("query      : %s on %s, N = %d\n", q, g, n)
	fmt.Printf("answer     : %v (at player %d)\n", v != 0, output)
	fmt.Printf("main       : %d rounds, %d bits\n", nr.Rounds, nr.Bits)
	fmt.Printf("trivial    : %d rounds, %d bits\n", nr.TrivialRounds, nr.TrivialBits)
	fmt.Printf("structure  : y(H)=%d n2(H)=%d d=%d r=%d MinCut=%d ST=%d Δ=%d\n",
		b.Y, b.N2, b.Degeneracy, b.Arity, b.MinCut, b.ST, b.Delta)
	fmt.Printf("bounds     : UB %d rounds, LB~ %.1f rounds, gap %.2f\n",
		b.Upper, b.LowerTilde, b.Gap())
	return nil
}
