// Command faqrun executes one Boolean Conjunctive Query distributed over
// a chosen topology and reports the answer, the measured round/bit cost
// of the paper's main protocol and of the trivial baseline, and the
// closed-form bounds.
//
// Usage:
//
//	faqrun -query 'A,B;A,C;A,D' -topo line:4 -n 64 -output 0 -seed 1
//
// Topologies: line:k, clique:k, star:k, ring:k, grid:RxC. Factors are
// random with n tuples each and are assigned round-robin to the nodes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/faq"
	"repro/internal/workload"
)

// usageError marks malformed command-line input: main prints the flag
// usage and exits 2 for these, while runtime failures exit 1 without the
// usage noise.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func main() {
	query := flag.String("query", "A,B;A,C;A,D;A,E", "hyperedges: ';'-separated, ','-separated vertex names")
	topo := flag.String("topo", "line:4", "topology: line:k | clique:k | star:k | ring:k | grid:RxC")
	n := flag.Int("n", 64, "tuples per relation (the paper's N)")
	output := flag.Int("output", 0, "player that must learn the answer")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := run(*query, *topo, *n, *output, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "faqrun: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(query, topo string, n, output int, seed int64) error {
	h, err := cli.ParseQuery(query)
	if err != nil {
		return usageError{err}
	}
	g, err := cli.ParseTopology(topo)
	if err != nil {
		return usageError{err}
	}
	if n < 1 {
		return usageError{fmt.Errorf("-n must be positive, got %d", n)}
	}
	r := rand.New(rand.NewSource(seed))
	q := workload.BCQ(h, n, n, r)
	players := make([]int, g.N())
	for i := range players {
		players[i] = i
	}
	assign := workload.RoundRobinAssignment(h.NumEdges(), players)
	eng, err := core.New(q, g, assign, output)
	if err != nil {
		return err
	}
	ans, rep, err := eng.Run()
	if err != nil {
		return err
	}
	v, err := faq.BCQValue(q, ans)
	if err != nil {
		return err
	}
	_, repT, err := eng.RunTrivial()
	if err != nil {
		return err
	}
	bounds, err := eng.Bounds()
	if err != nil {
		return err
	}
	fmt.Printf("query      : %s on %s, N = %d\n", h, g, n)
	fmt.Printf("answer     : %v (at player %d)\n", v, output)
	fmt.Printf("main       : %d rounds, %d bits\n", rep.Rounds, rep.Bits)
	fmt.Printf("trivial    : %d rounds, %d bits\n", repT.Rounds, repT.Bits)
	fmt.Printf("structure  : y(H)=%d n2(H)=%d d=%d r=%d MinCut=%d ST=%d Δ=%d\n",
		bounds.Y, bounds.N2, bounds.Degeneracy, bounds.Arity, bounds.MinCut, bounds.ST, bounds.Delta)
	fmt.Printf("bounds     : UB %d rounds, LB~ %.1f rounds, gap %.2f\n",
		bounds.Upper, bounds.LowerTilde, bounds.Gap())
	return nil
}
