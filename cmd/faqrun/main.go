// Command faqrun executes one Boolean Conjunctive Query distributed over
// a chosen topology and reports the answer, the measured round/bit cost
// of the paper's main protocol and of the trivial baseline, and the
// closed-form bounds.
//
// Usage:
//
//	faqrun -query 'A,B;A,C;A,D' -topo line:4 -n 64 -output 0 -seed 1
//
// Topologies: line:k, clique:k, star:k, ring:k, grid:RxC. Factors are
// random with n tuples each and are assigned round-robin to the nodes.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	query := flag.String("query", "A,B;A,C;A,D;A,E", "hyperedges: ';'-separated, ','-separated vertex names")
	topo := flag.String("topo", "line:4", "topology: line:k | clique:k | star:k | ring:k | grid:RxC")
	n := flag.Int("n", 64, "tuples per relation (the paper's N)")
	output := flag.Int("output", 0, "player that must learn the answer")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := run(*query, *topo, *n, *output, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "faqrun: %v\n", err)
		os.Exit(1)
	}
}

func run(query, topo string, n, output int, seed int64) error {
	b := hypergraph.NewBuilder()
	for _, edge := range strings.Split(query, ";") {
		var names []string
		for _, v := range strings.Split(edge, ",") {
			if v = strings.TrimSpace(v); v != "" {
				names = append(names, v)
			}
		}
		if len(names) == 0 {
			return fmt.Errorf("empty hyperedge in %q", query)
		}
		b.Edge(names...)
	}
	h := b.Build()
	g, err := parseTopo(topo)
	if err != nil {
		return err
	}
	r := rand.New(rand.NewSource(seed))
	q := workload.BCQ(h, n, n, r)
	players := make([]int, g.N())
	for i := range players {
		players[i] = i
	}
	assign := workload.RoundRobinAssignment(h.NumEdges(), players)
	eng, err := core.New(q, g, assign, output)
	if err != nil {
		return err
	}
	ans, rep, err := eng.Run()
	if err != nil {
		return err
	}
	v, err := faq.BCQValue(q, ans)
	if err != nil {
		return err
	}
	_, repT, err := eng.RunTrivial()
	if err != nil {
		return err
	}
	bounds, err := eng.Bounds()
	if err != nil {
		return err
	}
	fmt.Printf("query      : %s on %s, N = %d\n", h, g, n)
	fmt.Printf("answer     : %v (at player %d)\n", v, output)
	fmt.Printf("main       : %d rounds, %d bits\n", rep.Rounds, rep.Bits)
	fmt.Printf("trivial    : %d rounds, %d bits\n", repT.Rounds, repT.Bits)
	fmt.Printf("structure  : y(H)=%d n2(H)=%d d=%d r=%d MinCut=%d ST=%d Δ=%d\n",
		bounds.Y, bounds.N2, bounds.Degeneracy, bounds.Arity, bounds.MinCut, bounds.ST, bounds.Delta)
	fmt.Printf("bounds     : UB %d rounds, LB~ %.1f rounds, gap %.2f\n",
		bounds.Upper, bounds.LowerTilde, bounds.Gap())
	return nil
}

func parseTopo(spec string) (*topology.Graph, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("topology %q must be kind:size", spec)
	}
	kind, size := parts[0], parts[1]
	switch kind {
	case "grid":
		dims := strings.SplitN(size, "x", 2)
		if len(dims) != 2 {
			return nil, fmt.Errorf("grid size %q must be RxC", size)
		}
		rows, err := strconv.Atoi(dims[0])
		if err != nil {
			return nil, err
		}
		cols, err := strconv.Atoi(dims[1])
		if err != nil {
			return nil, err
		}
		return topology.Grid(rows, cols), nil
	default:
		k, err := strconv.Atoi(size)
		if err != nil {
			return nil, err
		}
		switch kind {
		case "line":
			return topology.Line(k), nil
		case "clique":
			return topology.Clique(k), nil
		case "star":
			return topology.Star(k), nil
		case "ring":
			return topology.Ring(k), nil
		}
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}
