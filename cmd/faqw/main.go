// Command faqw is a FAQ shard worker: one node of the distributed
// execution fleet behind faqd's -workers flag. It holds hash-partitioned
// shards of the query's factor relations plus the routed message slices
// the coordinator scatters at it, and runs the per-node join/aggregate
// kernels of the GHD bottom-up pass locally, returning partial
// aggregates for the coordinator to ⊕-merge.
//
// The protocol is the length-prefixed binary framing of internal/rpc
// over plain TCP; a worker serves one coordinator session at a time
// (sessions are reset per solve) but accepts any number of connections.
// Workers are stateless across sessions — kill and restart freely; the
// coordinator redials with backoff.
//
// Usage:
//
//	faqw -addr 127.0.0.1:9101
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"repro/faqs"
)

func main() {
	addr := flag.String("addr", ":9101", "listen address (host:port; port 0 picks a free port)")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	w, err := faqs.ServeWorker(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faqw: %v\n", err)
		os.Exit(1)
	}
	logger.Info("faqw: serving", "addr", w.Addr())
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-sigCtx.Done()
	stop()
	logger.Info("faqw: shutdown signal received")
	if err := w.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "faqw: close: %v\n", err)
		os.Exit(1)
	}
	logger.Info("faqw: shutdown complete")
}
