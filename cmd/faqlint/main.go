// Command faqlint is the repository's static-analysis multichecker: it
// runs the internal/lint analyzer suite — the machine-checked form of
// the ROADMAP's standing contracts — over the given package patterns
// and exits nonzero when any unsuppressed finding remains.
//
// Usage:
//
//	faqlint [-only a,b] [-list] [packages...]
//
// With no packages, ./... is analyzed. -only restricts the run to a
// comma-separated subset of analyzers (e.g. `-only facade` is the
// Makefile's vet-imports alias). -list prints the analyzer catalogue.
// Intentional violations are suppressed in source with
// //faqlint:allow <analyzer>(<reason>); the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: faqlint [-only a,b] [-list] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	moduleDir, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "faqlint:", err)
		os.Exit(1)
	}
	runner := lint.NewRunner(lint.NewLoader(moduleDir))

	if *list {
		for _, a := range runner.Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		var keep []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range runner.Analyzers {
				if a.Name == name {
					keep = append(keep, a)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "faqlint: unknown analyzer %q (see faqlint -list)\n", name)
				os.Exit(2)
			}
		}
		runner.Analyzers = keep
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := runner.Run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faqlint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", relPos(moduleDir, d.Pos.String()), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "faqlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// relPos rewrites an absolute file position relative to the module
// root for stable, readable output.
func relPos(moduleDir, pos string) string {
	if rel, err := filepath.Rel(moduleDir, pos); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return pos
}
