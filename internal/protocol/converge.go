package protocol

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// keyed converge-cast: the scheduling core of Theorem 3.11 and of the
// star protocol. Each participating node holds a keyed map of semiring
// values; the converge-cast streams (key, value) items up a Steiner tree
// toward its root, one item per reservation, combining values per key at
// every node and dropping keys absent from any constraining branch —
// exactly the pipelined semijoin chains of Examples 2.1–2.3 when the
// tree is a path.
//
// Streams are generic in the key type: packed uint64 keys carry tuples
// of ≤ keys.MaxPacked columns (and tuple indices) allocation-free, while
// big-endian string keys remain the arbitrary-arity fallback.

// timedValue is a value annotated with the round at which it became
// available at the current node.
type timedValue[T any] struct {
	val   T
	ready int
}

// keyedStream is a deterministic (sorted-key) stream of timed values.
type keyedStream[K cmp.Ordered, T any] struct {
	keys []K
	m    map[K]timedValue[T]
}

func newKeyedStream[K cmp.Ordered, T any]() *keyedStream[K, T] {
	return &keyedStream[K, T]{m: make(map[K]timedValue[T])}
}

func (s *keyedStream[K, T]) add(k K, v T, ready int) {
	if _, dup := s.m[k]; dup {
		//faqlint:allow nopanic(invariant check: converge streams are built key-unique by construction)
		panic("protocol: duplicate key in stream")
	}
	s.keys = append(s.keys, k)
	s.m[k] = timedValue[T]{v, ready}
}

func (s *keyedStream[K, T]) sortKeys() { slices.Sort(s.keys) }

// convergeSpec configures one keyed converge-cast over one tree.
type convergeSpec[K cmp.Ordered, T any] struct {
	net   *netsim.Network
	tree  *netsim.Tree
	start int
	// itemBits is the channel cost of one (key, value) item.
	itemBits int
	// local returns a node's own keyed contribution (nil when the node
	// only relays). Keys must be unique per node.
	local func(node int) map[K]T
	// combine is the semiring product folding branch values.
	combine func(a, b T) T
}

// run executes the converge-cast and returns the root's stream (keys
// surviving every constraining branch, with combined values and the
// rounds at which the root held them).
func (c *convergeSpec[K, T]) run() (*keyedStream[K, T], error) {
	g := c.net.Graph()
	// Orient the tree.
	in := make(map[int]bool, len(c.tree.Edges))
	for _, e := range c.tree.Edges {
		in[e] = true
	}
	children := make(map[int][]int)
	seen := map[int]bool{c.tree.Root: true}
	queue := []int{c.tree.Root}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj(u) {
			id, _ := g.EdgeID(u, v)
			if !in[id] || seen[v] {
				continue
			}
			seen[v] = true
			children[u] = append(children[u], v)
			queue = append(queue, v)
			count++
		}
	}
	if count != len(c.tree.Edges)+1 {
		return nil, fmt.Errorf("protocol: converge edge set is not a tree rooted at %d", c.tree.Root)
	}
	//faqlint:allow mapiter(per-key in-place sort of the child lists; key visit order immaterial)
	for u := range children {
		slices.Sort(children[u])
	}

	var walk func(u int) (*keyedStream[K, T], error)
	walk = func(u int) (*keyedStream[K, T], error) {
		// Gather branch streams, shipping each child's stream up its
		// edge with pipelined per-item reservations.
		var branches []*keyedStream[K, T]
		for _, v := range children[u] {
			sub, err := walk(v)
			if err != nil {
				return nil, err
			}
			shipped := newKeyedStream[K, T]()
			for _, k := range sub.keys {
				tv := sub.m[k]
				arrive, err := c.net.Reserve(v, u, maxInt(tv.ready, c.start), c.itemBits)
				if err != nil {
					return nil, err
				}
				shipped.add(k, tv.val, arrive)
			}
			branches = append(branches, shipped)
		}
		loc := c.local(u)
		// Intersection semantics: a key survives iff present in every
		// branch and in the local contribution (when the node has one).
		out := newKeyedStream[K, T]()
		if len(branches) == 0 && loc == nil {
			return out, nil // bare relay leaf: contributes nothing
		}
		// Candidate keys: the first constraining source.
		var candidates []K
		if loc != nil {
			candidates = sortedKeys(loc)
		} else {
			candidates = branches[0].keys
		}
		for _, k := range candidates {
			ready := c.start
			var have bool
			var acc T
			if loc != nil {
				acc, have = loc[k], true
			}
			dead := false
			for _, br := range branches {
				tv, ok := br.m[k]
				if !ok {
					dead = true
					break
				}
				if tv.ready > ready {
					ready = tv.ready
				}
				if have {
					acc = c.combine(acc, tv.val)
				} else {
					acc, have = tv.val, true
				}
			}
			if !dead {
				out.add(k, acc, ready)
			}
		}
		out.sortKeys()
		return out, nil
	}
	return walk(c.tree.Root)
}

func sortedKeys[K cmp.Ordered, T any](m map[K]T) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// broadcastSpec streams an indexed item sequence from the root down a
// tree, pipelined (item i can leave a node the round after arriving).
type broadcastSpec struct {
	net      *netsim.Network
	tree     *netsim.Tree
	start    int
	items    int
	itemBits int
}

// run returns the round at which the last node holds the last item.
func (b *broadcastSpec) run() (int, error) {
	g := b.net.Graph()
	in := make(map[int]bool, len(b.tree.Edges))
	for _, e := range b.tree.Edges {
		in[e] = true
	}
	finish := b.start
	// arrival[i] at the current node; recurse down.
	var walk func(u int, arrival []int, visited map[int]bool) error
	walk = func(u int, arrival []int, visited map[int]bool) error {
		visited[u] = true
		for _, v := range g.Adj(u) {
			id, _ := g.EdgeID(u, v)
			if !in[id] || visited[v] {
				continue
			}
			childArr := make([]int, b.items)
			for i := 0; i < b.items; i++ {
				t, err := b.net.Reserve(u, v, maxInt(arrival[i], b.start), b.itemBits)
				if err != nil {
					return err
				}
				childArr[i] = t
				if t > finish {
					finish = t
				}
			}
			if err := walk(v, childArr, visited); err != nil {
				return err
			}
		}
		return nil
	}
	rootArr := make([]int, b.items)
	for i := range rootArr {
		rootArr[i] = b.start + i // the source releases one item per round
	}
	if err := walk(b.tree.Root, rootArr, map[int]bool{}); err != nil {
		return 0, err
	}
	return finish, nil
}

// pruneToTerminals drops non-terminal leaves from a Steiner tree so that
// converge-cast leaves always carry constraints.
func pruneToTerminals(g *topology.Graph, tree *netsim.Tree, terminals []int) *netsim.Tree {
	isTerm := make(map[int]bool, len(terminals))
	for _, t := range terminals {
		isTerm[t] = true
	}
	edges := append([]int(nil), tree.Edges...)
	for {
		deg := make(map[int]int)
		for _, e := range edges {
			u, v := g.Edge(e)
			deg[u]++
			deg[v]++
		}
		removed := false
		var keep []int
		for _, e := range edges {
			u, v := g.Edge(e)
			if (deg[u] == 1 && !isTerm[u] && u != tree.Root) || (deg[v] == 1 && !isTerm[v] && v != tree.Root) {
				removed = true
				continue
			}
			keep = append(keep, e)
		}
		edges = keep
		if !removed {
			break
		}
	}
	return &netsim.Tree{Root: tree.Root, Edges: edges}
}
