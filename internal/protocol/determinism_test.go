package protocol

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/topology"
)

// buildDeterminismSetup assembles a multi-star caterpillar query whose
// schedule exercises repeated star reductions, converge-casts, and
// finalization — the paths with map-iteration-order hazards
// (fastStar/convergeOverPackingStaggered) this file guards.
func buildDeterminismSetup(t *testing.T, seed int64) *Setup[float64] {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.Edge("A", "B")
	b.Edge("B", "C")
	b.Edge("C", "D")
	b.Edge("D", "E")
	b.Edge("B", "F")
	b.Edge("C", "G")
	b.Edge("D", "H")
	h := b.Build()
	r := rand.New(rand.NewSource(seed))
	dom := 8
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for i := range factors {
		bb := relation.NewBuilder[float64](sp, h.Edge(i))
		for k := 0; k < 30; k++ {
			bb.Add([]int{r.Intn(dom), r.Intn(dom)}, float64(1+r.Intn(16))/8)
		}
		factors[i] = bb.Build()
	}
	q := &faq.Query[float64]{S: sp, H: h, Factors: factors, DomSize: dom}
	g := topology.Grid(2, 4)
	assign := make(Assignment, h.NumEdges())
	for i := range assign {
		assign[i] = i % g.N()
	}
	return &Setup[float64]{Q: q, G: g, Assign: assign, Output: 7}
}

func valuesIdentical(a, b *relation.Relation[float64]) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Value(i) != b.Value(i) { // exact float bits, no tolerance
			return false
		}
	}
	return true
}

// TestRunDeterminismAcrossInvocations is the determinism regression:
// repeated Run/RunTrivial invocations on the same Setup must report
// identical Rounds/Bits and produce bit-identical answer relations.
func TestRunDeterminismAcrossInvocations(t *testing.T) {
	s := buildDeterminismSetup(t, 811)
	ans0, rep0, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	t0, trep0, err := RunTrivial(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		ans, rep, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if rep != rep0 {
			t.Fatalf("run %d: Report %v != %v", i, rep, rep0)
		}
		if !relation.Equal(sp, ans, ans0) || !valuesIdentical(ans, ans0) {
			t.Fatalf("run %d: answer relation drifted", i)
		}
		ta, trep, err := RunTrivial(s)
		if err != nil {
			t.Fatal(err)
		}
		if trep != trep0 {
			t.Fatalf("trivial run %d: Report %v != %v", i, trep, trep0)
		}
		if !relation.Equal(sp, ta, t0) || !valuesIdentical(ta, t0) {
			t.Fatalf("trivial run %d: answer relation drifted", i)
		}
	}
}

// TestRunParallelMatchesSequential is the protocol-level
// parallel≡sequential equivalence: worker count must change neither the
// measured schedule (the ledger stays sequential) nor a single bit of
// the answer.
func TestRunParallelMatchesSequential(t *testing.T) {
	s := buildDeterminismSetup(t, 813)
	prev := exec.SetWorkers(1)
	ansSeq, repSeq, err1 := Run(s)
	tSeq, trepSeq, err2 := RunTrivial(s)
	exec.SetWorkers(8)
	ansPar, repPar, err3 := Run(s)
	tPar, trepPar, err4 := RunTrivial(s)
	exec.SetWorkers(prev)
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if repPar != repSeq || trepPar != trepSeq {
		t.Fatalf("parallel reports %v/%v != sequential %v/%v", repPar, trepPar, repSeq, trepSeq)
	}
	if !relation.Equal(sp, ansPar, ansSeq) || !valuesIdentical(ansPar, ansSeq) {
		t.Fatal("parallel Run answer not bit-identical to sequential")
	}
	if !relation.Equal(sp, tPar, tSeq) || !valuesIdentical(tPar, tSeq) {
		t.Fatal("parallel RunTrivial answer not bit-identical to sequential")
	}
}

// TestEmptyRelationAccountingPinned pins the corrected cost accounting:
// an empty relation is a 1-bit "it is empty" notification in RunTrivial,
// corePhase, and finalize alike — never a free ride. Before the fix,
// both protocols reported 0 rounds / 0 bits here while the output player
// somehow "knew" the answer was empty.
func TestEmptyRelationAccountingPinned(t *testing.T) {
	// Trivial protocol: path BCQ, both factors empty, players 0 and 1,
	// output 2 on the line. Factor 0 notifies over two hops (2 bits),
	// factor 1 over one (1 bit); the hops pipeline into 2 rounds.
	h := hypergraph.PathGraph(3)
	factors := []*relation.Relation[bool]{
		relation.Empty[bool](h.Edge(0)),
		relation.Empty[bool](h.Edge(1)),
	}
	q := faq.NewBCQ(h, factors, 4)
	s := &Setup[bool]{Q: q, G: topology.Line(3), Assign: Assignment{0, 1}, Output: 2}
	ans, rep, err := RunTrivial(s)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := relation.ScalarValue(sb, ans); v {
		t.Error("BCQ over empty factors must be false")
	}
	if rep.Rounds != 2 || rep.Bits != 3 {
		t.Errorf("trivial Report = %v, want 2 rounds / 3 bits", rep)
	}

	// Main protocol, cyclic core: triangle + pendant on the 4-ring, all
	// factors empty, output 2. corePhase children at players 0 (two
	// hops), 1, and 3 (one hop each) each send the 1-bit notification:
	// 4 bits, pipelined into 2 rounds. The core child owned by the
	// output player itself is free, as is finalize (owner == output).
	b := hypergraph.NewBuilder()
	b.Edge("A", "B")
	b.Edge("B", "C")
	b.Edge("A", "C")
	b.Edge("C", "D")
	h2 := b.Build()
	factors2 := make([]*relation.Relation[bool], h2.NumEdges())
	for i := range factors2 {
		factors2[i] = relation.Empty[bool](h2.Edge(i))
	}
	q2 := faq.NewBCQ(h2, factors2, 4)
	s2 := &Setup[bool]{Q: q2, G: topology.Ring(4), Assign: Assignment{0, 1, 2, 3}, Output: 2}
	ans2, rep2, err := Run(s2)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := relation.ScalarValue(sb, ans2); v {
		t.Error("cyclic BCQ over empty factors must be false")
	}
	if rep2.Rounds != 2 || rep2.Bits != 4 {
		t.Errorf("main Report = %v, want 2 rounds / 4 bits", rep2)
	}
}

// TestColumnsOfVerifiesMembership pins the engine's columnsOf hardening:
// a variable missing from the schema must surface as an error, not as a
// silently wrong column index.
func TestColumnsOfVerifiesMembership(t *testing.T) {
	cols, err := columnsOf([]int{0, 2, 5}, []int{5, 0})
	if err != nil || cols[0] != 2 || cols[1] != 0 {
		t.Fatalf("columnsOf = %v, %v; want [2 0], nil", cols, err)
	}
	for _, vs := range [][]int{{1}, {6}, {-1}, {0, 3}} {
		if _, err := columnsOf([]int{0, 2, 5}, vs); err == nil {
			t.Errorf("columnsOf(schema, %v): expected error", vs)
		}
	}
}

// TestSolveCentralFallbackPolicy pins the sentinel-gated fallback: only
// the paper's free-variable restriction may route solveCentral to the
// exponential BruteForce; every other solver error must propagate.
func TestSolveCentralFallbackPolicy(t *testing.T) {
	// Sentinel case: F = {0, 4} on a path — no bag covers both, Solve
	// fails with ErrFreeOutsideRoot, BruteForce takes over.
	h := hypergraph.PathGraph(5)
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		b.AddOne(1, 1)
		factors[i] = b.Build()
	}
	q := &faq.Query[bool]{S: sb, H: h, Factors: factors, Free: []int{0, 4}, DomSize: 2}
	if _, err := faq.Solve(q); !errors.Is(err, faq.ErrFreeOutsideRoot) {
		t.Fatalf("precondition: Solve should fail with the sentinel, got %v", err)
	}
	got, err := solveCentral(q)
	if err != nil {
		t.Fatalf("solveCentral must brute-force the sentinel case: %v", err)
	}
	want, err := faq.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sb, got, want) {
		t.Error("fallback answer != brute force")
	}

	// Non-sentinel case: a zero-edge query. BruteForce would happily
	// return the unit relation, but Solve fails in GHD construction —
	// a structural error that must now propagate instead of being
	// silently brute-forced away.
	empty := &faq.Query[bool]{S: sb, H: hypergraph.New(2), Factors: nil, DomSize: 2}
	if _, err := faq.BruteForce(empty); err != nil {
		t.Fatalf("precondition: BruteForce handles the zero-edge query: %v", err)
	}
	if _, err := solveCentral(empty); err == nil || !strings.Contains(err.Error(), "no edges") {
		t.Errorf("solveCentral = %v, want propagated ghd construction error", err)
	}

	// End to end: RunTrivial on the sentinel case still succeeds.
	s := &Setup[bool]{Q: q, G: topology.Line(2), Assign: Assignment{0, 0, 0, 0}, Output: 1}
	ans, _, err := RunTrivial(s)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sb, ans, want) {
		t.Error("RunTrivial sentinel-fallback answer != brute force")
	}
}
