package protocol

import "repro/internal/obs"

// The shared communication metric surface: every distributed execution
// — the netsim protocol engines here and the real cluster coordinator
// (internal/cluster) — folds its round and byte totals into the same
// two families on the process-global registry, labeled by protocol
// name. The protocol package owns the registration so the families
// have exactly one home (the metricreg analyzer enforces cross-package
// uniqueness).
var (
	metricCommBytes = obs.Default().NewCounterVec("faq_protocol_bytes_total",
		"Bytes moved by distributed protocol executions (netsim ledger bits rounded up to bytes; cluster relation payload), by protocol.",
		"protocol")
	metricCommRounds = obs.Default().NewCounterVec("faq_protocol_rounds_total",
		"Communication rounds of distributed protocol executions (netsim round complexity; cluster scatter/gather phases), by protocol.",
		"protocol")
)

// RecordComms folds one distributed execution's communication totals
// into the shared families. The cluster coordinator calls it with its
// phase and payload-byte counts; netsim runs go through RecordReport.
func RecordComms(protocol string, rounds int, bytes int64) {
	if protocol == "" {
		protocol = "unknown"
	}
	metricCommRounds.With(protocol).Add(int64(rounds))
	metricCommBytes.With(protocol).Add(bytes)
}

// RecordReport folds a finished netsim run's Report into the shared
// families, converting ledger bits to bytes (rounded up).
func RecordReport(rep Report) {
	RecordComms(rep.Protocol, rep.Rounds, (rep.Bits+7)/8)
}
