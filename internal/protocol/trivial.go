package protocol

import (
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/flow"
	"repro/internal/netsim"
	"repro/internal/relation"
)

// RunTrivial executes the trivial protocol (Lemma 3.1): every player
// routes its relations to the output player over edge-disjoint flow
// paths, and the output player computes the query locally. Its cost is
// O(τ_MCF(G, K, k·r·N)) rounds and it is the baseline every other
// protocol is compared against (and the subroutine finishing cyclic
// cores).
func RunTrivial[T any](s *Setup[T]) (*relation.Relation[T], Report, error) {
	rep := Report{Protocol: "trivial"}
	if err := s.Validate(); err != nil {
		return nil, rep, err
	}
	net, err := netsim.New(s.G, s.Bits())
	if err != nil {
		return nil, rep, err
	}
	// Phase 1 — sharded flow analysis: the per-factor MaxFlow
	// computations only read the (immutable) topology, so they fan out
	// across the exec pool. Phase 2 books every transmission on the
	// netsim ledger strictly sequentially in factor order, so the Report
	// stays byte-identical at any worker count.
	type routeJob struct {
		src, bits int
	}
	var jobs []routeJob
	for e, src := range s.Assign {
		if src == s.Output {
			continue
		}
		f := s.Q.Factors[e]
		jobs = append(jobs, routeJob{src: src, bits: f.Len() * s.TupleBits(f.Arity())})
	}
	flows := make([]*flow.Result, len(jobs))
	if err := exec.Default().MapErr(len(jobs), func(i int) error {
		if jobs[i].bits == 0 {
			return nil // empty factor: a notification, no flow needed
		}
		res, err := flow.MaxFlow(s.G, jobs[i].src, s.Output)
		if err != nil {
			return err
		}
		flows[i] = res
		return nil
	}); err != nil {
		return nil, rep, err
	}
	for i, j := range jobs {
		if j.bits == 0 {
			if _, err := notifyEmpty(net, s.G, j.src, s.Output, 0); err != nil {
				return nil, rep, err
			}
			continue
		}
		res := flows[i]
		if res.Value == 0 {
			return nil, rep, fmt.Errorf("protocol: no route from %d to %d", j.src, s.Output)
		}
		share := ceilDiv(j.bits, res.Value)
		for _, p := range res.Paths {
			if _, err := net.RoutePath(p, 0, share); err != nil {
				return nil, rep, err
			}
		}
	}
	ans, err := solveCentral(s.Q)
	if err != nil {
		return nil, rep, err
	}
	rep.Rounds = net.Rounds()
	rep.Bits = net.TotalBits()
	RecordReport(rep)
	return ans, rep, nil
}

// solveCentral picks the cheapest applicable centralized solver: the GHD
// pass, unless the paper's free-variable restriction rules it out — the
// one condition (signalled by faq.ErrFreeOutsideRoot) under which the
// exponential BruteForce is the intended fallback. Any other solver
// error is a real failure and propagates instead of being silently
// papered over by brute force.
func solveCentral[T any](q *faq.Query[T]) (*relation.Relation[T], error) {
	ans, err := faq.Solve(q)
	if err == nil {
		return ans, nil
	}
	if errors.Is(err, faq.ErrFreeOutsideRoot) {
		return faq.BruteForce(q)
	}
	return nil, err
}
