package protocol

import (
	"fmt"
	"sort"

	"repro/internal/flow"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// SetIntersectionInput configures the distributed multiparty set
// intersection of Theorem 3.11: player u ∈ K holds Sets[u] ⊆ [0, Universe)
// and the designated Output player must learn ∩_u Sets[u].
type SetIntersectionInput struct {
	G        *topology.Graph
	Sets     map[int][]int
	Output   int
	Universe int
	// ItemBits is the channel cost of one element (≤ BitsPerRound);
	// both default to ⌈log₂ Universe⌉ — one element per edge per round,
	// the normalization of Theorem 3.11.
	ItemBits     int
	BitsPerRound int
}

// SetIntersection runs the Theorem 3.11 protocol: pack edge-disjoint
// Steiner trees of bounded diameter (Definition 3.9), split the element
// universe across the trees (as Example 2.3 splits Dom(A) across the
// paths W₁ and W₂), and converge-cast each chunk toward the output with
// per-node filtering. The round count achieves
// O(min_Δ (N/ST(G,K,Δ) + Δ)).
func SetIntersection(in *SetIntersectionInput) ([]int, Report, error) {
	rep := Report{Protocol: "set-intersection"}
	if len(in.Sets) == 0 {
		return nil, rep, fmt.Errorf("protocol: no players")
	}
	var K []int
	maxSet := 0
	for u, s := range in.Sets {
		if u < 0 || u >= in.G.N() {
			return nil, rep, fmt.Errorf("protocol: player %d out of range", u)
		}
		K = append(K, u)
		if len(s) > maxSet {
			maxSet = len(s)
		}
		for _, x := range s {
			if x < 0 || x >= in.Universe {
				return nil, rep, fmt.Errorf("protocol: element %d outside universe [0,%d)", x, in.Universe)
			}
		}
	}
	K = topology.SortedUnique(append(K, in.Output))
	itemBits := in.ItemBits
	if itemBits == 0 {
		u := in.Universe
		if u < 2 {
			u = 2
		}
		itemBits = bitsLen(u - 1)
	}
	bpr := in.BitsPerRound
	if bpr == 0 {
		bpr = itemBits
	}
	net, err := netsim.New(in.G, bpr)
	if err != nil {
		return nil, rep, err
	}

	// Single-player case: the output already knows everything.
	if len(K) == 1 {
		res := intersectLocal(in.Sets, K)
		return res, rep, nil
	}

	_, packing, _, err := flow.BestDelta(in.G, K, maxSet)
	if err != nil {
		return nil, rep, err
	}
	var result []int
	for ti, st := range packing {
		tree := pruneToTerminals(in.G, &netsim.Tree{Root: in.Output, Edges: st.Edges}, K)
		spec := &convergeSpec[bool]{
			net:      net,
			tree:     tree,
			start:    0,
			itemBits: itemBits,
			local: func(node int) map[string]bool {
				s, ok := in.Sets[node]
				if !ok {
					return nil
				}
				m := make(map[string]bool)
				for _, x := range s {
					k := encodeInts(int32(x))
					if chunkOf(k, len(packing)) == ti {
						m[k] = true
					}
				}
				return m
			},
			combine: func(a, b bool) bool { return a && b },
		}
		out, err := spec.run()
		if err != nil {
			return nil, rep, err
		}
		for _, k := range out.keys {
			result = append(result, int(decodeInt(k)))
		}
	}
	sort.Ints(result)
	rep.Rounds = net.Rounds()
	rep.Bits = net.TotalBits()
	return result, rep, nil
}

func intersectLocal(sets map[int][]int, K []int) []int {
	counts := map[int]int{}
	players := 0
	for _, u := range K {
		s, ok := sets[u]
		if !ok {
			continue
		}
		players++
		seen := map[int]bool{}
		for _, x := range s {
			if !seen[x] {
				seen[x] = true
				counts[x]++
			}
		}
	}
	var out []int
	for x, c := range counts {
		if c == players {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// encodeInts packs int32 values into a big-endian string key; sorting
// keys sorts the tuples lexicographically.
func encodeInts(vals ...int32) string {
	buf := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		x := uint32(v)
		buf = append(buf, byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
	}
	return string(buf)
}

func decodeInt(k string) int32 {
	return int32(uint32(k[0])<<24 | uint32(k[1])<<16 | uint32(k[2])<<8 | uint32(k[3]))
}

func bitsLen(x int) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	if n == 0 {
		n = 1
	}
	return n
}
