package protocol

import (
	"fmt"
	"sort"

	"repro/internal/flow"
	"repro/internal/hypergraph"
	"repro/internal/keys"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// SetIntersectionInput configures the distributed multiparty set
// intersection of Theorem 3.11: player u ∈ K holds Sets[u] ⊆ [0, Universe)
// and the designated Output player must learn ∩_u Sets[u].
type SetIntersectionInput struct {
	G        *topology.Graph
	Sets     map[int][]int
	Output   int
	Universe int
	// ItemBits is the channel cost of one element (≤ BitsPerRound);
	// both default to ⌈log₂ Universe⌉ — one element per edge per round,
	// the normalization of Theorem 3.11.
	ItemBits     int
	BitsPerRound int
}

// SetIntersection runs the Theorem 3.11 protocol: pack edge-disjoint
// Steiner trees of bounded diameter (Definition 3.9), split the element
// universe across the trees (as Example 2.3 splits Dom(A) across the
// paths W₁ and W₂), and converge-cast each chunk toward the output with
// per-node filtering. The round count achieves
// O(min_Δ (N/ST(G,K,Δ) + Δ)).
func SetIntersection(in *SetIntersectionInput) ([]int, Report, error) {
	rep := Report{Protocol: "set-intersection"}
	if len(in.Sets) == 0 {
		return nil, rep, fmt.Errorf("protocol: no players")
	}
	// Iterate players in sorted order so validation surfaces the same
	// error on every run (faqlint:mapiter — raw map order here made the
	// first-reported violation nondeterministic).
	K := sortedKeys(in.Sets)
	maxSet := 0
	for _, u := range K {
		s := in.Sets[u]
		if u < 0 || u >= in.G.N() {
			return nil, rep, fmt.Errorf("protocol: player %d out of range", u)
		}
		if len(s) > maxSet {
			maxSet = len(s)
		}
		for _, x := range s {
			if x < 0 || x >= in.Universe {
				return nil, rep, fmt.Errorf("protocol: element %d outside universe [0,%d)", x, in.Universe)
			}
		}
	}
	K = topology.SortedUnique(append(K, in.Output))
	itemBits := in.ItemBits
	if itemBits == 0 {
		u := in.Universe
		if u < 2 {
			u = 2
		}
		itemBits = keys.Bits(u - 1)
	}
	bpr := in.BitsPerRound
	if bpr == 0 {
		bpr = itemBits
	}
	net, err := netsim.New(in.G, bpr)
	if err != nil {
		return nil, rep, err
	}

	// Single-player case: the output already knows everything.
	if len(K) == 1 {
		res := intersectLocal(in.Sets, K)
		return res, rep, nil
	}

	_, packing, _, err := flow.BestDelta(in.G, K, maxSet)
	if err != nil {
		return nil, rep, err
	}
	var result []int
	for ti, st := range packing {
		tree := pruneToTerminals(in.G, &netsim.Tree{Root: in.Output, Edges: st.Edges}, K)
		spec := &convergeSpec[uint64, bool]{
			net:      net,
			tree:     tree,
			start:    0,
			itemBits: itemBits,
			local: func(node int) map[uint64]bool {
				s, ok := in.Sets[node]
				if !ok {
					return nil
				}
				m := make(map[uint64]bool, len(s))
				for _, x := range s {
					k := keys.Pack1(int32(x))
					if keys.Chunk(k, 1, len(packing)) == ti {
						m[k] = true
					}
				}
				return m
			},
			combine: func(a, b bool) bool { return a && b },
		}
		out, err := spec.run()
		if err != nil {
			return nil, rep, err
		}
		for _, k := range out.keys {
			result = append(result, int(keys.Unpack1(k)))
		}
	}
	sort.Ints(result)
	rep.Rounds = net.Rounds()
	rep.Bits = net.TotalBits()
	RecordReport(rep)
	return result, rep, nil
}

// intersectLocal computes the intersection of the players' sets by a
// sort-based merge: each set is sorted and deduplicated once, then
// folded through a linear sorted-set intersection.
func intersectLocal(sets map[int][]int, K []int) []int {
	var out []int
	first := true
	for _, u := range K {
		s, ok := sets[u]
		if !ok {
			continue // a player without a set does not constrain the result
		}
		uniq := topology.SortedUnique(append([]int(nil), s...))
		if first {
			out, first = uniq, false
		} else {
			out = hypergraph.IntersectSorted(out, uniq)
		}
	}
	return out
}
