package protocol

import (
	"math/rand"
	"testing"

	"repro/internal/faq"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/topology"
)

// TestCountSemiringDistributed counts join results distributed: the
// counting semiring (ℤ, +, ×) is an FAQ-SS the same machinery must
// serve (Section 1's semiring-agnostic claim).
func TestCountSemiringDistributed(t *testing.T) {
	sc := semiring.Count{}
	h := hypergraph.PathGraph(4)
	r := rand.New(rand.NewSource(61))
	dom := 4
	factors := make([]*relation.Relation[int64], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[int64](sc, h.Edge(i))
		// Distinct tuples: duplicate insertions would (correctly) merge
		// to multiplicity 2 under (ℤ, +, ×) — bag semantics — and then
		// the count exceeds the set-semantics join size.
		seen := map[[2]int]bool{}
		for k := 0; k < 10; k++ {
			tu := [2]int{r.Intn(dom), r.Intn(dom)}
			if seen[tu] {
				continue
			}
			seen[tu] = true
			b.Add(tu[:], 1)
		}
		factors[i] = b.Build()
	}
	q := &faq.Query[int64]{S: sc, H: h, Factors: factors, DomSize: dom}
	s := &Setup[int64]{Q: q, G: topology.Line(3), Assign: Assignment{0, 1, 2}, Output: 2}
	ans, _, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := faq.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sc, ans, want) {
		t.Error("distributed count != brute force")
	}
	// The count must equal the natural join's size.
	qb := faq.NewNaturalJoin(h, boolFactors(factors), dom)
	join, err := faq.BruteForce(qb)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := relation.ScalarValue(sc, want)
	if err != nil {
		t.Fatal(err)
	}
	if int(cnt) != join.Len() {
		t.Errorf("count %d != join size %d", cnt, join.Len())
	}
}

func boolFactors(fs []*relation.Relation[int64]) []*relation.Relation[bool] {
	sb := semiring.Bool{}
	out := make([]*relation.Relation[bool], len(fs))
	for i, f := range fs {
		b := relation.NewBuilder[bool](sb, f.Schema())
		tuple := make([]int, f.Arity())
		for j := 0; j < f.Len(); j++ {
			for k, x := range f.Tuple(j) {
				tuple[k] = int(x)
			}
			b.AddOne(tuple...)
		}
		out[i] = b.Build()
	}
	return out
}

// TestMinPlusSemiringDistributed runs a tropical (min, +) FAQ — e.g.
// cheapest consistent assignment — distributed vs brute force.
func TestMinPlusSemiringDistributed(t *testing.T) {
	mp := semiring.MinPlus{}
	h := hypergraph.StarGraph(3)
	r := rand.New(rand.NewSource(62))
	dom := 4
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[float64](mp, h.Edge(i))
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				b.Add([]int{a, c}, float64(r.Intn(20)))
			}
		}
		factors[i] = b.Build()
	}
	q := &faq.Query[float64]{S: mp, H: h, Factors: factors, DomSize: dom}
	s := &Setup[float64]{Q: q, G: topology.Line(3), Assign: Assignment{0, 1, 2}, Output: 0}
	ans, _, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := faq.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(mp, ans, want) {
		t.Error("distributed min-plus != brute force")
	}
}

// TestEmptyFactorPropagates ensures an empty relation collapses the
// answer everywhere without panicking.
func TestEmptyFactorPropagates(t *testing.T) {
	sb := semiring.Bool{}
	h := hypergraph.ExampleH1()
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		if i == 2 {
			factors[i] = relation.Empty[bool](h.Edge(i))
			continue
		}
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		b.AddOne(1, 1)
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, 4)
	s := &Setup[bool]{Q: q, G: topology.Line(4), Assign: Assignment{0, 1, 2, 3}, Output: 3}
	ans, _, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := relation.ScalarValue(sb, ans)
	if v {
		t.Error("BCQ with an empty factor must be false")
	}
	tAns, _, err := RunTrivial(s)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := relation.ScalarValue(sb, tAns)
	if tv {
		t.Error("trivial protocol disagrees on empty factor")
	}
}

// TestCustomBitsPerRound checks that widening channels reduces rounds
// roughly proportionally (the footnote-6 generalization B ≠ r·log D).
func TestCustomBitsPerRound(t *testing.T) {
	sb := semiring.Bool{}
	N := 128
	h := hypergraph.ExampleH1()
	factors := make([]*relation.Relation[bool], h.NumEdges())
	r := rand.New(rand.NewSource(63))
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for x := 0; x < N; x++ {
			b.AddOne(x, r.Intn(N))
		}
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, N)
	narrow := &Setup[bool]{Q: q, G: topology.Line(4), Assign: Assignment{0, 1, 2, 3}, Output: 0}
	_, repN, err := Run(narrow)
	if err != nil {
		t.Fatal(err)
	}
	wide := &Setup[bool]{Q: q, G: topology.Line(4), Assign: Assignment{0, 1, 2, 3}, Output: 0,
		BitsPerRound: narrow.DefaultBits() * 8}
	_, repW, err := Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if repW.Rounds >= repN.Rounds {
		t.Errorf("8x channel width should cut rounds: %d vs %d", repW.Rounds, repN.Rounds)
	}
	if repW.Rounds > repN.Rounds/4 {
		t.Errorf("8x width only got %d vs %d rounds", repW.Rounds, repN.Rounds)
	}
}

// TestRunOnGHDAblation runs the same query on the minimized GHD and on
// a deliberately deep chain GHD: more internal nodes must not change the
// answer, only the round count (the width ablation of DESIGN.md).
func TestRunOnGHDAblation(t *testing.T) {
	sb := semiring.Bool{}
	N := 64
	h := hypergraph.ExampleH1()
	factors := make([]*relation.Relation[bool], h.NumEdges())
	r := rand.New(rand.NewSource(64))
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for x := 0; x < N; x++ {
			b.AddOne(x, r.Intn(N))
		}
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, N)
	s := &Setup[bool]{Q: q, G: topology.Line(4), Assign: Assignment{0, 1, 2, 3}, Output: 0}

	flat, err := ghd.Minimize(h)
	if err != nil {
		t.Fatal(err)
	}
	chain := &ghd.GHD{
		H:        h,
		Bags:     [][]int{h.Edge(0), h.Edge(1), h.Edge(2), h.Edge(3)},
		Labels:   [][]int{{0}, {1}, {2}, {3}},
		Parent:   []int{-1, 0, 1, 2},
		Root:     0,
		NodeOf:   []int{0, 1, 2, 3},
		CoreRoot: -1,
	}
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	aFlat, repFlat, err := RunOnGHD(s, flat)
	if err != nil {
		t.Fatal(err)
	}
	aChain, repChain, err := RunOnGHD(s, chain)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sb, aFlat, aChain) {
		t.Error("GHD shape changed the answer")
	}
	if repChain.Rounds <= repFlat.Rounds {
		t.Logf("note: chain GHD (%d rounds) did not exceed flat (%d); acceptable when streams filter early",
			repChain.Rounds, repFlat.Rounds)
	}
	if flat.InternalNodes() >= chain.InternalNodes() {
		t.Errorf("flat GHD should have fewer internal nodes: %d vs %d",
			flat.InternalNodes(), chain.InternalNodes())
	}
}

// TestManyRelationsPerPlayer exercises |K| < k: several relations
// co-located at each player (the paper's lower bounds rely on this).
func TestManyRelationsPerPlayer(t *testing.T) {
	sb := semiring.Bool{}
	h := hypergraph.StarGraph(6)
	r := rand.New(rand.NewSource(65))
	N := 32
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for x := 0; x < N; x++ {
			b.AddOne(x, r.Intn(N))
		}
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, N)
	// Six relations on two players.
	s := &Setup[bool]{Q: q, G: topology.Line(2), Assign: Assignment{0, 0, 0, 1, 1, 1}, Output: 1}
	ans, rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := faq.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sb, ans, want) {
		t.Error("co-located relations broke correctness")
	}
	if rep.Rounds > 2*N {
		t.Errorf("rounds = %d, expected ≈ N for a single-edge cut", rep.Rounds)
	}
}

// TestAllRelationsOneOwner checks the degenerate zero-communication
// case except answer delivery.
func TestAllRelationsOneOwner(t *testing.T) {
	sb := semiring.Bool{}
	h := hypergraph.ExampleH1()
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		b.AddOne(2, 3)
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, 4)
	s := &Setup[bool]{Q: q, G: topology.Line(3), Assign: Assignment{0, 0, 0, 0}, Output: 2}
	ans, rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := relation.ScalarValue(sb, ans)
	if !v {
		t.Error("BCQ should be true")
	}
	// Only the answer (1 tuple) moves: 2 hops.
	if rep.Rounds > 4 {
		t.Errorf("rounds = %d, want ≤ 4 (answer routing only)", rep.Rounds)
	}
}

// TestSetIntersectionEmptyResult drives the protocol to an empty
// intersection.
func TestSetIntersectionEmptyResult(t *testing.T) {
	g := topology.Line(3)
	got, _, err := SetIntersection(&SetIntersectionInput{
		G:      g,
		Sets:   map[int][]int{0: {1, 2}, 1: {3, 4}, 2: {1, 3}},
		Output: 2, Universe: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("intersection = %v, want empty", got)
	}
}

// TestDeepForestQuery runs a depth-4 caterpillar tree query whose GHD
// has several internal nodes, forcing repeated star reductions.
func TestDeepForestQuery(t *testing.T) {
	sb := semiring.Bool{}
	b := hypergraph.NewBuilder()
	// Path A-B-C-D-E with leaves hanging off B, C, D.
	b.Edge("A", "B")
	b.Edge("B", "C")
	b.Edge("C", "D")
	b.Edge("D", "E")
	b.Edge("B", "F")
	b.Edge("C", "G")
	b.Edge("D", "H")
	h := b.Build()
	r := rand.New(rand.NewSource(66))
	N := 24
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		bb := relation.NewBuilder[bool](sb, h.Edge(i))
		for x := 0; x < N; x++ {
			bb.AddOne(r.Intn(8), r.Intn(8))
		}
		factors[i] = bb.Build()
	}
	q := faq.NewBCQ(h, factors, 8)
	g := topology.Grid(2, 4)
	assign := make(Assignment, h.NumEdges())
	for i := range assign {
		assign[i] = i % g.N()
	}
	s := &Setup[bool]{Q: q, G: g, Assign: assign, Output: 7}
	ans, _, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := faq.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sb, ans, want) {
		t.Error("caterpillar query answer mismatch")
	}
}
