// Package protocol implements the paper's distributed FAQ protocols on
// the synchronous network simulator:
//
//   - the trivial protocol that routes every relation to one player
//     (Lemma 3.1, cost τ_MCF);
//   - distributed set intersection / keyed aggregation over edge-disjoint
//     Steiner-tree packings (Theorem 3.11), pipelined so that a line
//     reproduces the N+2 rounds of Examples 2.1–2.2 and a clique the
//     N/2+2 rounds of Example 2.3;
//   - the star protocol (Algorithms 1–3), in a fast path for stars whose
//     leaves share a common key set with the center and a general
//     broadcast+converge path otherwise;
//   - the forest protocol (Lemmas 4.1/F.1) processing GYO-GHD stars
//     bottom-up, and the d-degenerate protocol (Lemmas 4.2/F.2) that
//     finishes the cyclic core with the trivial protocol.
//
// Every protocol returns both the answer (so tests can check it against
// the centralized solvers) and the exact round/bit cost of its schedule.
package protocol

import (
	"fmt"
	"math/bits"

	"repro/internal/faq"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Assignment maps each hyperedge (input function) of the query to the
// player node of G that initially holds it (Model 2.1: every function is
// completely assigned to a unique node).
type Assignment []int

// Setup binds a query to a topology: who holds what, who must learn the
// answer, and the channel width.
type Setup[T any] struct {
	Q      *faq.Query[T]
	G      *topology.Graph
	Assign Assignment
	// Output is the pre-determined player that must know the answer.
	Output int
	// BitsPerRound overrides the per-edge channel width B; 0 selects the
	// model default (r+1)·⌈log₂ D⌉ — one annotated tuple per round.
	BitsPerRound int
}

// ValueBits returns ⌈log₂ D⌉, the bits of one attribute value (also used
// as the width of one transmitted semiring annotation).
func (s *Setup[T]) ValueBits() int {
	d := s.Q.DomSize
	if d < 2 {
		d = 2
	}
	return bits.Len(uint(d - 1))
}

// DefaultBits returns the model's default channel width
// B = (r+1)·⌈log₂ D⌉: one tuple of arity ≤ r plus its annotation.
func (s *Setup[T]) DefaultBits() int {
	return (s.Q.H.Arity() + 1) * s.ValueBits()
}

// Bits returns the effective channel width.
func (s *Setup[T]) Bits() int {
	if s.BitsPerRound > 0 {
		return s.BitsPerRound
	}
	return s.DefaultBits()
}

// TupleBits returns the cost of shipping one annotated tuple of the
// given arity.
func (s *Setup[T]) TupleBits(arity int) int { return (arity + 1) * s.ValueBits() }

// Players returns the sorted distinct player nodes K.
func (s *Setup[T]) Players() []int {
	return topology.SortedUnique(append([]int(nil), s.Assign...))
}

// Validate checks the setup: a valid query, one in-range player per
// hyperedge, players plus output connected in G.
func (s *Setup[T]) Validate() error {
	if err := s.Q.Validate(); err != nil {
		return err
	}
	if len(s.Assign) != s.Q.H.NumEdges() {
		return fmt.Errorf("protocol: %d assignments for %d hyperedges", len(s.Assign), s.Q.H.NumEdges())
	}
	for e, p := range s.Assign {
		if p < 0 || p >= s.G.N() {
			return fmt.Errorf("protocol: factor %d assigned to invalid node %d", e, p)
		}
	}
	if s.Output < 0 || s.Output >= s.G.N() {
		return fmt.Errorf("protocol: output node %d out of range", s.Output)
	}
	all := append(s.Players(), s.Output)
	if !s.G.ConnectsAll(topology.SortedUnique(all)) {
		return fmt.Errorf("protocol: players %v and output %d not connected in %v", s.Players(), s.Output, s.G)
	}
	return nil
}

// Report carries the measured cost of a protocol run.
type Report struct {
	Protocol string
	Rounds   int
	Bits     int64
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %d rounds, %d bits", r.Protocol, r.Rounds, r.Bits)
}

// notifyEmpty books the 1-bit "this relation is empty" notification from
// src to dst, starting no earlier than the given round, and returns the
// delivery round. An empty relation is never a free ride: the receiver
// must learn it is empty before it can claim to have joined with it.
// RunTrivial, corePhase, and finalize all charge exactly this cost so
// Report values stay consistent across the three sites.
func notifyEmpty(net *netsim.Network, g *topology.Graph, src, dst, start int) (int, error) {
	path := g.ShortestPath(src, dst, nil)
	if path == nil {
		return 0, fmt.Errorf("protocol: no route from %d to %d", src, dst)
	}
	return net.RoutePath(path, start, 1)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
