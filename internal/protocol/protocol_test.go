package protocol

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/topology"
)

var sb = semiring.Bool{}
var sp = semiring.SumProduct{}

func TestSetIntersectionLineExample21(t *testing.T) {
	// Example 2.1 as a raw set-intersection: four players on the line
	// G1, each holding a subset of [N]; the protocol streams matching
	// values down the line in N + 2 rounds.
	N := 64
	g := topology.Line(4)
	sets := map[int][]int{}
	for u := 0; u < 4; u++ {
		var s []int
		for x := 0; x < N; x++ {
			if x%2 == 0 || x%(u+2) == 0 {
				s = append(s, x)
			}
		}
		sets[u] = s
	}
	got, rep, err := SetIntersection(&SetIntersectionInput{
		G: g, Sets: sets, Output: 3, Universe: N,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := intersectLocal(sets, []int{0, 1, 2, 3})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	// The pipelined chain takes ≈ |S_max| + path length rounds.
	maxSet := 0
	for _, s := range sets {
		if len(s) > maxSet {
			maxSet = len(s)
		}
	}
	if rep.Rounds > maxSet+4 {
		t.Errorf("rounds = %d, want ≤ N+4 = %d (Example 2.1 shape)", rep.Rounds, maxSet+4)
	}
	if rep.Rounds < 3 {
		t.Errorf("rounds = %d suspiciously low", rep.Rounds)
	}
}

func TestSetIntersectionCliqueExample23(t *testing.T) {
	// Example 2.3's split: on the 4-clique, two edge-disjoint paths each
	// carry half the domain, halving the round count.
	N := 128
	g := topology.Clique(4)
	sets := map[int][]int{}
	all := make([]int, N)
	for x := 0; x < N; x++ {
		all[x] = x
	}
	for u := 0; u < 4; u++ {
		sets[u] = all // worst case: nothing filtered early
	}
	_, rep, err := SetIntersection(&SetIntersectionInput{
		G: g, Sets: sets, Output: 1, Universe: N,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two chunks of ≈N/2 items over diameter-3 paths; hash chunking is
	// slightly uneven, allow a modest margin over N/2 + 2.
	if rep.Rounds > N/2+N/8+4 {
		t.Errorf("rounds = %d, want ≈ N/2+2 = %d", rep.Rounds, N/2+2)
	}
}

func TestSetIntersectionSinglePlayer(t *testing.T) {
	g := topology.Line(2)
	got, rep, err := SetIntersection(&SetIntersectionInput{
		G: g, Sets: map[int][]int{1: {3, 1, 2}}, Output: 1, Universe: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) || rep.Rounds != 0 {
		t.Errorf("local intersection = %v in %d rounds", got, rep.Rounds)
	}
}

func TestSetIntersectionErrors(t *testing.T) {
	g := topology.Line(2)
	if _, _, err := SetIntersection(&SetIntersectionInput{G: g, Output: 0, Universe: 4}); err == nil {
		t.Error("expected error for no players")
	}
	if _, _, err := SetIntersection(&SetIntersectionInput{
		G: g, Sets: map[int][]int{0: {9}}, Output: 0, Universe: 4,
	}); err == nil {
		t.Error("expected error for out-of-universe element")
	}
}

// buildStarSetup assembles Example 2.2: BCQ of the star H1 on the line
// G1, player i holding relation i.
func buildStarSetup(t *testing.T, g *topology.Graph, aSets [][]int, dom int, assign []int, output int) *Setup[bool] {
	t.Helper()
	h := hypergraph.ExampleH1()
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for _, a := range aSets[i] {
			b.AddOne(a, 1)
		}
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, dom)
	return &Setup[bool]{Q: q, G: g, Assign: assign, Output: output}
}

func TestExample22StarOnLine(t *testing.T) {
	// Star H1 on the line G1; answer at P2 (node 1). Upper bound
	// Corollary 4.3: ≤ N + k rounds.
	N := 64
	aSets := make([][]int, 4)
	for i := range aSets {
		for x := 0; x < N; x++ {
			if x%(i+1) == 0 {
				aSets[i] = append(aSets[i], x)
			}
		}
	}
	s := buildStarSetup(t, topology.Line(4), aSets, N+1, []int{0, 1, 2, 3}, 1)
	ans, rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	v, err := relation.ScalarValue(sb, ans)
	if err != nil {
		t.Fatal(err)
	}
	// x = 0 is in every set: the BCQ is true.
	if !v {
		t.Error("BCQ = 0, want 1")
	}
	want, err := faq.BruteForce(s.Q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sb, ans, want) {
		t.Error("distributed answer != brute force")
	}
	if rep.Rounds > N+8 {
		t.Errorf("rounds = %d, want ≤ N + k + O(1) = %d", rep.Rounds, N+8)
	}
}

func TestExample23StarOnClique(t *testing.T) {
	// Star H1 on the clique G2: the two-path packing halves the rounds.
	N := 128
	full := make([]int, N)
	for x := range full {
		full[x] = x
	}
	aSets := [][]int{full, full, full, full}
	s := buildStarSetup(t, topology.Clique(4), aSets, N, []int{0, 1, 2, 3}, 1)
	_, rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds > N/2+N/8+6 {
		t.Errorf("rounds = %d, want ≈ N/2 + 2 = %d", rep.Rounds, N/2+2)
	}
	// The line on the same instance takes ≈ N rounds: the clique must
	// beat it decisively.
	sLine := buildStarSetup(t, topology.Line(4), aSets, N, []int{0, 1, 2, 3}, 1)
	_, repLine, err := Run(sLine)
	if err != nil {
		t.Fatal(err)
	}
	if repLine.Rounds < N {
		t.Errorf("line rounds = %d, want ≥ N = %d", repLine.Rounds, N)
	}
	if rep.Rounds >= repLine.Rounds {
		t.Errorf("clique (%d) not faster than line (%d)", rep.Rounds, repLine.Rounds)
	}
}

func TestExample21SelfLoopsOnLine(t *testing.T) {
	// Example 2.1: H0 (four unary relations) on the line, output P4.
	N := 64
	h := hypergraph.ExampleH0()
	factors := make([]*relation.Relation[bool], 4)
	for i := 0; i < 4; i++ {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for x := 0; x < N; x++ {
			if x%(i+1) == 0 {
				b.AddOne(x)
			}
		}
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, N)
	s := &Setup[bool]{Q: q, G: topology.Line(4), Assign: []int{0, 1, 2, 3}, Output: 3}
	ans, rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := relation.ScalarValue(sb, ans)
	if !v {
		t.Error("BCQ = 0, want 1 (0 in every set)")
	}
	if rep.Rounds > N+6 {
		t.Errorf("rounds = %d, want ≈ N+2 = %d", rep.Rounds, N+2)
	}
	// The trivial protocol needs ≈ 3N rounds on this instance.
	_, repTrivial, err := RunTrivial(s)
	if err != nil {
		t.Fatal(err)
	}
	if repTrivial.Rounds <= rep.Rounds {
		t.Errorf("trivial (%d rounds) should be slower than the pipeline (%d)", repTrivial.Rounds, rep.Rounds)
	}
}

func TestHeterogeneousStarH2(t *testing.T) {
	// H2's star has children sharing {B}, {C}, and {A,B} with the center
	// (A,B,C): exercises the general broadcast+converge path.
	h := hypergraph.ExampleH2()
	r := rand.New(rand.NewSource(7))
	dom := 4
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		schema := h.Edge(i)
		b := relation.NewBuilder[bool](sb, schema)
		for k := 0; k < 12; k++ {
			tuple := make([]int, len(schema))
			for j := range tuple {
				tuple[j] = r.Intn(dom)
			}
			b.AddOne(tuple...)
		}
		factors[i] = b.Build()
	}
	q := faq.NewBCQ(h, factors, dom)
	s := &Setup[bool]{Q: q, G: topology.Line(4), Assign: []int{0, 1, 2, 3}, Output: 0}
	ans, _, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := faq.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sb, ans, want) {
		t.Error("H2 distributed answer != brute force")
	}
}

func TestCyclicCoreTriangle(t *testing.T) {
	// A triangle query (pure core) plus a pendant edge: star phase on
	// the pendant, trivial phase on the core.
	b := hypergraph.NewBuilder()
	b.Edge("A", "B")
	b.Edge("B", "C")
	b.Edge("A", "C")
	b.Edge("C", "D") // pendant
	h := b.Build()
	r := rand.New(rand.NewSource(11))
	dom := 4
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		bb := relation.NewBuilder[bool](sb, h.Edge(i))
		for k := 0; k < 8; k++ {
			bb.AddOne(r.Intn(dom), r.Intn(dom))
		}
		factors[i] = bb.Build()
	}
	q := faq.NewBCQ(h, factors, dom)
	s := &Setup[bool]{Q: q, G: topology.Ring(4), Assign: []int{0, 1, 2, 3}, Output: 2}
	ans, rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := faq.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sb, ans, want) {
		t.Error("cyclic-core answer != brute force")
	}
	if rep.Rounds == 0 {
		t.Error("expected nonzero rounds for distributed players")
	}
}

func TestDistributedPGMMarginal(t *testing.T) {
	// Factor marginal over a sum-product chain: free variables = one
	// edge, computed distributed and compared against the centralized
	// pass.
	h := hypergraph.PathGraph(4)
	r := rand.New(rand.NewSource(3))
	dom := 3
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[float64](sp, h.Edge(i))
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				b.Add([]int{a, c}, float64(1+r.Intn(8))/4.0)
			}
		}
		factors[i] = b.Build()
	}
	q := &faq.Query[float64]{S: sp, H: h, Factors: factors, Free: []int{0, 1}, DomSize: dom}
	s := &Setup[float64]{Q: q, G: topology.Line(3), Assign: []int{0, 1, 2}, Output: 0}
	ans, _, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := faq.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sp, ans, want) {
		t.Errorf("distributed marginal != brute force\n got %v\nwant %v", ans, want)
	}
}

func TestRunMatchesBruteForceRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		// Random acyclic query.
		nv := 3 + r.Intn(5)
		h := hypergraph.New(nv)
		for v := 1; v < nv; v++ {
			h.AddEdge(r.Intn(v), v)
		}
		dom := 3
		factors := make([]*relation.Relation[float64], h.NumEdges())
		for i := range factors {
			b := relation.NewBuilder[float64](sp, h.Edge(i))
			for k := 0; k < 1+r.Intn(8); k++ {
				b.Add([]int{r.Intn(dom), r.Intn(dom)}, float64(1+r.Intn(4)))
			}
			factors[i] = b.Build()
		}
		q := &faq.Query[float64]{S: sp, H: h, Factors: factors, DomSize: dom}
		// Random topology and assignment.
		g := topology.RandomConnected(2+r.Intn(5), r.Intn(4), r)
		assign := make(Assignment, h.NumEdges())
		for i := range assign {
			assign[i] = r.Intn(g.N())
		}
		s := &Setup[float64]{Q: q, G: g, Assign: assign, Output: r.Intn(g.N())}
		ans, _, err := Run(s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := faq.BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(sp, ans, want) {
			t.Fatalf("trial %d: distributed != brute force on %v", trial, h)
		}
		// The trivial protocol must agree too.
		tAns, _, err := RunTrivial(s)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(sp, tAns, want) {
			t.Fatalf("trial %d: trivial != brute force", trial)
		}
	}
}

func TestRunMatchesBruteForceCyclicRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		nv := 3 + r.Intn(3)
		h := hypergraph.New(nv)
		for i := 0; i < nv; i++ {
			h.AddEdge(i, (i+1)%nv)
		}
		dom := 3
		factors := make([]*relation.Relation[bool], h.NumEdges())
		for i := range factors {
			b := relation.NewBuilder[bool](sb, h.Edge(i))
			for k := 0; k < 2+r.Intn(6); k++ {
				b.AddOne(r.Intn(dom), r.Intn(dom))
			}
			factors[i] = b.Build()
		}
		q := faq.NewBCQ(h, factors, dom)
		g := topology.RandomConnected(2+r.Intn(4), r.Intn(3), r)
		assign := make(Assignment, h.NumEdges())
		for i := range assign {
			assign[i] = r.Intn(g.N())
		}
		s := &Setup[bool]{Q: q, G: g, Assign: assign, Output: r.Intn(g.N())}
		ans, _, err := Run(s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := faq.BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(sb, ans, want) {
			t.Fatalf("trial %d: cyclic distributed != brute force", trial)
		}
	}
}

func TestSetupValidation(t *testing.T) {
	h := hypergraph.PathGraph(3)
	factors := []*relation.Relation[bool]{
		relation.Empty[bool](h.Edge(0)),
		relation.Empty[bool](h.Edge(1)),
	}
	q := faq.NewBCQ(h, factors, 2)
	g := topology.Line(3)
	cases := []struct {
		name string
		s    *Setup[bool]
	}{
		{"short assign", &Setup[bool]{Q: q, G: g, Assign: Assignment{0}, Output: 0}},
		{"bad player", &Setup[bool]{Q: q, G: g, Assign: Assignment{0, 9}, Output: 0}},
		{"bad output", &Setup[bool]{Q: q, G: g, Assign: Assignment{0, 1}, Output: 7}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	// Disconnected players.
	g2 := topology.NewGraph(4)
	g2.AddEdge(0, 1)
	g2.AddEdge(2, 3)
	bad := &Setup[bool]{Q: q, G: g2, Assign: Assignment{0, 3}, Output: 0}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for disconnected players")
	}
}

func TestTrivialProtocolRoundsScaleWithTotalSize(t *testing.T) {
	// Lemma 3.1: the trivial protocol ships k·N tuples; on a line its
	// rounds grow ≈ k·N while the forest protocol stays ≈ N.
	N := 48
	full := make([]int, N)
	for x := range full {
		full[x] = x
	}
	aSets := [][]int{full, full, full, full}
	s := buildStarSetup(t, topology.Line(4), aSets, N, []int{0, 1, 2, 3}, 0)
	_, repMain, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	_, repTriv, err := RunTrivial(s)
	if err != nil {
		t.Fatal(err)
	}
	if repTriv.Rounds < 2*N {
		t.Errorf("trivial rounds = %d, want ≥ 2N = %d", repTriv.Rounds, 2*N)
	}
	if repMain.Rounds > N+8 {
		t.Errorf("main rounds = %d, want ≈ N", repMain.Rounds)
	}
}
