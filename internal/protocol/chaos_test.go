package protocol

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/fault"
	"repro/internal/hypergraph"
	"repro/internal/netsim"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/topology"
)

// chaosSetup builds a seeded 4-factor path query on a 3-player line.
func chaosSetup(seed int64) *Setup[int64] {
	sc := semiring.Count{}
	h := hypergraph.PathGraph(4)
	r := rand.New(rand.NewSource(seed))
	dom := 5
	factors := make([]*relation.Relation[int64], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[int64](sc, h.Edge(i))
		tuple := make([]int, 2)
		for k := 0; k < 14; k++ {
			tuple[0], tuple[1] = r.Intn(dom), r.Intn(dom)
			b.Add(tuple, int64(1+r.Intn(2)))
		}
		factors[i] = b.Build()
	}
	q := &faq.Query[int64]{S: sc, H: h, Factors: factors, DomSize: dom}
	return &Setup[int64]{Q: q, G: topology.Line(3), Assign: Assignment{0, 1, 2}, Output: 2}
}

// TestChaosNetsim sweeps the message-ledger failpoints under the full
// distributed protocol at 1/2/8 workers: an injected drop surfaces as a
// typed message-lost error (never a hang or a wrong answer); injected
// duplication and delay are absorbed — the answer stays bit-identical
// to the fault-free run while only the Report's cost accounting grows
// (bits for duplicates, rounds for delays).
func TestChaosNetsim(t *testing.T) {
	defer fault.Reset()
	fault.Reset()

	base := chaosSetup(321)
	wantAns, wantRep, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sc := semiring.Count{}

	for _, w := range []int{1, 2, 8} {
		prev := exec.SetWorkers(w)
		t.Run(fmt.Sprintf("w%d/drop", w), func(t *testing.T) {
			fault.Enable("netsim.drop", fault.Config{Mode: fault.ModeError, Once: true})
			defer fault.Reset()
			_, _, err := Run(chaosSetup(321))
			if !errors.Is(err, netsim.ErrMessageLost) {
				t.Fatalf("dropped message returned %v, want ErrMessageLost", err)
			}
			var mle *netsim.MessageLostError
			if !errors.As(err, &mle) {
				t.Fatalf("drop error does not carry the endpoints: %v", err)
			}
		})

		t.Run(fmt.Sprintf("w%d/dup", w), func(t *testing.T) {
			fault.Enable("netsim.dup", fault.Config{Mode: fault.ModeError}) // mode is ignored; arming triggers Fire
			defer fault.Reset()
			ans, rep, err := Run(chaosSetup(321))
			if err != nil {
				t.Fatal(err)
			}
			if !relation.Equal(sc, ans, wantAns) {
				t.Fatal("duplicated messages changed the answer")
			}
			if rep.Bits <= wantRep.Bits {
				t.Fatalf("duplicates booked no extra bits: %d <= %d", rep.Bits, wantRep.Bits)
			}
		})

		t.Run(fmt.Sprintf("w%d/delay", w), func(t *testing.T) {
			fault.Enable("netsim.delay", fault.Config{Mode: fault.ModeError, Arg: 2})
			defer fault.Reset()
			ans, rep, err := Run(chaosSetup(321))
			if err != nil {
				t.Fatal(err)
			}
			if !relation.Equal(sc, ans, wantAns) {
				t.Fatal("delayed messages changed the answer")
			}
			if rep.Rounds < wantRep.Rounds {
				t.Fatalf("delays reduced rounds: %d < %d", rep.Rounds, wantRep.Rounds)
			}
			if rep.Bits != wantRep.Bits {
				t.Fatalf("delays changed bit volume: %d != %d", rep.Bits, wantRep.Bits)
			}
		})

		// Fault-free run after the sweep: identical answer and accounting.
		ans, rep, err := Run(chaosSetup(321))
		if err != nil {
			t.Fatalf("w%d: post-chaos run failed: %v", w, err)
		}
		if !relation.Equal(sc, ans, wantAns) || rep.Rounds != wantRep.Rounds || rep.Bits != wantRep.Bits {
			t.Fatalf("w%d: post-chaos run differs from baseline", w)
		}
		exec.SetWorkers(prev)
	}
}
