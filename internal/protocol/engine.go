package protocol

import (
	"fmt"
	"sort"

	"repro/internal/faq"
	"repro/internal/flow"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/netsim"
	"repro/internal/relation"
	"repro/internal/topology"
)

// runner executes the paper's main protocol (Theorem 4.1 / F.1 / G.4) on
// one GYO-GHD: bottom-up star reductions over the forest part
// (Lemma 4.1, Algorithms 1–3), then the trivial protocol on the cyclic
// core (Lemma 4.2), with every transmission booked on the simulator's
// capacity ledger.
type runner[T any] struct {
	s   *Setup[T]
	net *netsim.Network
	g   *ghd.GHD

	rel    []*relation.Relation[T] // current relation per GHD node
	owner  []int                   // current holder per GHD node (-1: none)
	finish []int                   // round at which the node's relation is ready
}

// Run executes the main protocol end to end and returns the answer
// relation (schema = the query's free variables) plus the measured cost.
func Run[T any](s *Setup[T]) (*relation.Relation[T], Report, error) {
	gh, err := ghd.Minimize(s.Q.H)
	if err != nil {
		return nil, Report{}, err
	}
	gh, err = faq.RootForFree(gh, s.Q.Free)
	if err != nil {
		return nil, Report{}, err
	}
	return RunOnGHD(s, gh)
}

// RunOnGHD is Run on a caller-chosen decomposition (ablation studies
// schedule the same query on differently-shaped GHDs).
func RunOnGHD[T any](s *Setup[T], gh *ghd.GHD) (*relation.Relation[T], Report, error) {
	rep := Report{Protocol: "faq-main"}
	if err := s.Validate(); err != nil {
		return nil, rep, err
	}
	if err := gh.Validate(); err != nil {
		return nil, rep, err
	}
	for _, v := range s.Q.Free {
		if !hypergraph.ContainsSorted(gh.Bags[gh.Root], v) {
			return nil, rep, fmt.Errorf("protocol: free variable %d outside root bag (F ⊆ V(C(H)) required)", v)
		}
	}
	net, err := netsim.New(s.G, s.Bits())
	if err != nil {
		return nil, rep, err
	}
	r := &runner[T]{
		s:      s,
		net:    net,
		g:      gh,
		rel:    make([]*relation.Relation[T], gh.NumNodes()),
		owner:  make([]int, gh.NumNodes()),
		finish: make([]int, gh.NumNodes()),
	}
	for i := range r.owner {
		r.owner[i] = -1
	}
	for e, v := range gh.NodeOf {
		r.rel[v] = s.Q.Factors[e]
		r.owner[v] = s.Assign[e]
	}

	ch := gh.Children()
	for _, v := range gh.PostOrder() {
		if len(ch[v]) == 0 {
			continue
		}
		if v == gh.Root && v == gh.CoreRoot {
			if err := r.corePhase(v, ch[v]); err != nil {
				return nil, rep, err
			}
			continue
		}
		// The converged map must land where the center relation lives
		// (R′_P filters the center's tuples), so the star target is the
		// center owner; finalize() ships the (aggregated, small) answer
		// to the output player afterwards.
		if err := r.starReduce(v, ch[v], r.owner[v]); err != nil {
			return nil, rep, err
		}
	}

	ans, err := r.finalize()
	if err != nil {
		return nil, rep, err
	}
	rep.Rounds = net.Rounds()
	rep.Bits = net.TotalBits()
	return ans, rep, nil
}

// childMessage aggregates the private variables out of a child's current
// relation (the push-down of Corollary G.2): everything in χ(c) not
// shared with the parent bag is bound (free variables are in the root
// bag, hence by the running intersection property also in the parent
// bag) and is eliminated innermost-first with its per-variable operator.
func (r *runner[T]) childMessage(c, parent int) (*relation.Relation[T], error) {
	msg := r.rel[c]
	schema := msg.Schema()
	parentBag := r.g.Bags[parent]
	for i := len(schema) - 1; i >= 0; i-- {
		x := schema[i]
		if hypergraph.ContainsSorted(parentBag, x) {
			continue
		}
		var err error
		msg, err = relation.EliminateVar(r.s.Q.S, msg, x, r.s.Q.Op(x), r.s.Q.DomSize)
		if err != nil {
			return nil, err
		}
	}
	return msg, nil
}

// starReduce runs Algorithm 1/2/3 on the star centered at GHD node v
// with the given children, leaving R′_P at the target player.
func (r *runner[T]) starReduce(v int, children []int, target int) error {
	q := r.s.Q
	start := r.finish[v]
	msgs := make(map[int]*relation.Relation[T], len(children))
	msgOwner := make(map[int]int, len(children))
	for _, c := range children {
		m, err := r.childMessage(c, v)
		if err != nil {
			return err
		}
		msgs[c] = m
		msgOwner[c] = r.owner[c]
		if r.finish[c] > start {
			start = r.finish[c]
		}
	}

	// Player set of this star.
	K := []int{target, r.owner[v]}
	for _, c := range children {
		K = append(K, r.owner[c])
	}
	K = topology.SortedUnique(K)

	if len(K) == 1 {
		// Everything is already co-located: a purely local reduction.
		r.rel[v] = localStar(q, r.rel[v], children, msgs)
		r.owner[v] = target
		r.finish[v] = start
		return nil
	}

	// Fast path (Examples 2.1–2.3): every child shares the same
	// variable set W with the center, so converged (key, value) streams
	// over π_W need no prior broadcast of the center relation.
	shared := make(map[int][]int, len(children))
	fast := true
	var w []int
	for i, c := range children {
		sc := msgs[c].Schema()
		shared[c] = sc
		if i == 0 {
			w = sc
		} else if !equalIntSlices(w, sc) {
			fast = false
		}
	}

	units := 0
	for _, c := range children {
		if msgs[c].Len() > units {
			units = msgs[c].Len()
		}
	}
	if !fast && r.rel[v].Len() > units {
		units = r.rel[v].Len()
	}
	if units == 0 {
		units = 1
	}
	_, packing, _, err := flow.BestDelta(r.s.G, K, units)
	if err != nil {
		return err
	}

	var converged map[string]T
	var done int
	if fast {
		converged, done, err = r.fastStar(v, children, msgs, msgOwner, target, packing, start)
	} else {
		converged, done, err = r.generalStar(v, children, msgs, msgOwner, target, packing, start)
	}
	if err != nil {
		return err
	}

	// R′_P: center tuples filtered and weighted by the converged map.
	var keyCols []int
	if fast {
		keyCols = columnsOf(r.rel[v].Schema(), w)
	}
	b := relation.NewBuilder(q.S, r.rel[v].Schema())
	tuple := make([]int, r.rel[v].Arity())
	for i := 0; i < r.rel[v].Len(); i++ {
		t := r.rel[v].Tuple(i)
		var key string
		if fast {
			key = encodeCols(t, keyCols)
		} else {
			key = encodeInts(int32(i))
		}
		m, ok := converged[key]
		if !ok {
			continue
		}
		for k := range t {
			tuple[k] = int(t[k])
		}
		b.Add(tuple, q.S.Mul(r.rel[v].Value(i), m))
	}
	r.rel[v] = b.Build()
	r.owner[v] = target
	r.finish[v] = done
	return nil
}

// fastStar converges keyed messages π_W directly (no broadcast): the
// pipelined semijoin chains of Examples 2.1–2.3 generalized to Steiner
// packings.
func (r *runner[T]) fastStar(v int, children []int, msgs map[int]*relation.Relation[T],
	msgOwner map[int]int, target int, packing []*flow.SteinerTree, start int) (map[string]T, int, error) {
	q := r.s.Q
	itemBits := clampBits(r.s.TupleBits(len(msgs[children[0]].Schema())), r.s.Bits())
	// Per-player local contribution: intersect keys across the player's
	// children, multiplying values.
	playerMaps := make(map[int]map[string]T)
	for _, c := range children {
		m := relationToMap(q, msgs[c], nil)
		o := msgOwner[c]
		if cur, ok := playerMaps[o]; ok {
			playerMaps[o] = intersectMaps(q, cur, m)
		} else {
			playerMaps[o] = m
		}
	}
	return r.convergeOverPacking(playerMaps, target, packing, start, itemBits)
}

// generalStar implements the heterogeneous-star case of Algorithm 1:
// the center relation is first broadcast over the packing (chunked per
// tree), each child owner computes its value vector over the center's
// tuple indices, and the vectors converge with component-wise ⊗
// (footnote 24).
func (r *runner[T]) generalStar(v int, children []int, msgs map[int]*relation.Relation[T],
	msgOwner map[int]int, target int, packing []*flow.SteinerTree, start int) (map[string]T, int, error) {
	q := r.s.Q
	center := r.rel[v]
	src := r.owner[v]
	tupleBits := clampBits(r.s.TupleBits(center.Arity()), r.s.Bits())

	// Broadcast the center relation, chunked across the packing with the
	// same key-hash chunking the converge phase uses.
	broadcastDone := make([]int, len(packing))
	for ti, st := range packing {
		n := 0
		for i := 0; i < center.Len(); i++ {
			if chunkOf(encodeInts(int32(i)), len(packing)) == ti {
				n++
			}
		}
		spec := &broadcastSpec{
			net:      r.net,
			tree:     &netsim.Tree{Root: src, Edges: st.Edges},
			start:    start,
			items:    n,
			itemBits: tupleBits,
		}
		done, err := spec.run()
		if err != nil {
			return nil, 0, err
		}
		broadcastDone[ti] = done
	}

	// Each player's vector over center tuple indices: for every child it
	// owns, index i survives iff the child's message has the matching
	// key; values multiply.
	idxBits := clampBits(bitsLen(maxInt(center.Len(), 2)-1)+r.s.ValueBits(), r.s.Bits())
	playerMaps := make(map[int]map[string]T)
	for _, c := range children {
		cols := columnsOf(center.Schema(), msgs[c].Schema())
		lookup := relationToMap(q, msgs[c], nil)
		vec := make(map[string]T, center.Len())
		for i := 0; i < center.Len(); i++ {
			key := encodeCols(center.Tuple(i), cols)
			val, ok := lookup[key]
			if !ok {
				continue
			}
			vec[encodeInts(int32(i))] = val
		}
		o := msgOwner[c]
		if cur, ok := playerMaps[o]; ok {
			playerMaps[o] = intersectMaps(q, cur, vec)
		} else {
			playerMaps[o] = vec
		}
	}
	// Converge each chunk after its broadcast completes.
	return r.convergeOverPackingStaggered(playerMaps, target, packing, broadcastDone, idxBits)
}

// convergeOverPacking runs one keyed converge-cast per packed tree
// (chunked by key hash) and merges the root streams.
func (r *runner[T]) convergeOverPacking(playerMaps map[int]map[string]T, target int,
	packing []*flow.SteinerTree, start, itemBits int) (map[string]T, int, error) {
	starts := make([]int, len(packing))
	for i := range starts {
		starts[i] = start
	}
	return r.convergeOverPackingStaggered(playerMaps, target, packing, starts, itemBits)
}

func (r *runner[T]) convergeOverPackingStaggered(playerMaps map[int]map[string]T, target int,
	packing []*flow.SteinerTree, starts []int, itemBits int) (map[string]T, int, error) {
	q := r.s.Q
	var terminals []int
	for u := range playerMaps {
		terminals = append(terminals, u)
	}
	terminals = topology.SortedUnique(append(terminals, target))
	out := make(map[string]T)
	finish := 0
	for _, s := range starts {
		if s > finish {
			finish = s
		}
	}
	for ti, st := range packing {
		tree := pruneToTerminals(r.s.G, &netsim.Tree{Root: target, Edges: st.Edges}, terminals)
		spec := &convergeSpec[T]{
			net:      r.net,
			tree:     tree,
			start:    starts[ti],
			itemBits: itemBits,
			local: func(node int) map[string]T {
				full, ok := playerMaps[node]
				if !ok {
					return nil
				}
				m := make(map[string]T)
				for k, val := range full {
					if chunkOf(k, len(packing)) == ti {
						m[k] = val
					}
				}
				return m
			},
			combine: q.S.Mul,
		}
		stream, err := spec.run()
		if err != nil {
			return nil, 0, err
		}
		for _, k := range stream.keys {
			tv := stream.m[k]
			out[k] = tv.val
			if tv.ready > finish {
				finish = tv.ready
			}
		}
	}
	return out, finish, nil
}

// corePhase finishes a cyclic query: children of the fat root (core
// factors and reduced pendant-tree roots) are routed to the output
// player with the trivial protocol (Lemma 3.1), which then joins them
// and aggregates the remaining bound variables.
func (r *runner[T]) corePhase(root int, children []int) error {
	q := r.s.Q
	out := r.s.Output
	for _, c := range children {
		src := r.owner[c]
		if src == out {
			continue
		}
		bits := r.rel[c].Len() * r.s.TupleBits(r.rel[c].Arity())
		if bits == 0 {
			continue
		}
		res, err := flow.MaxFlow(r.s.G, src, out)
		if err != nil {
			return err
		}
		if res.Value == 0 {
			return fmt.Errorf("protocol: no route from %d to %d", src, out)
		}
		share := ceilDiv(bits, res.Value)
		done := r.finish[c]
		for _, p := range res.Paths {
			d, err := r.net.RoutePath(p, r.finish[c], share)
			if err != nil {
				return err
			}
			if d > done {
				done = d
			}
		}
		r.finish[c] = done
	}
	// Local computation at the output: join everything, aggregate the
	// bound variables innermost-first.
	cur := relation.Unit(q.S, q.S.One())
	done := 0
	for _, c := range children {
		cur = relation.Join(q.S, cur, r.rel[c])
		if r.finish[c] > done {
			done = r.finish[c]
		}
	}
	free := make(map[int]bool, len(q.Free))
	for _, x := range q.Free {
		free[x] = true
	}
	schema := cur.Schema()
	for i := len(schema) - 1; i >= 0; i-- {
		x := schema[i]
		if free[x] {
			continue
		}
		var err error
		cur, err = relation.EliminateVar(q.S, cur, x, q.Op(x), q.DomSize)
		if err != nil {
			return err
		}
	}
	r.rel[root] = cur
	r.owner[root] = out
	r.finish[root] = done
	return nil
}

// finalize aggregates the root relation down to the free variables at
// its owner and ships the answer to the output player if needed.
func (r *runner[T]) finalize() (*relation.Relation[T], error) {
	q := r.s.Q
	root := r.g.Root
	cur := r.rel[root]
	free := make(map[int]bool, len(q.Free))
	for _, x := range q.Free {
		free[x] = true
	}
	schema := cur.Schema()
	for i := len(schema) - 1; i >= 0; i-- {
		x := schema[i]
		if free[x] {
			continue
		}
		var err error
		cur, err = relation.EliminateVar(q.S, cur, x, q.Op(x), q.DomSize)
		if err != nil {
			return nil, err
		}
	}
	if r.owner[root] != r.s.Output {
		path := r.s.G.ShortestPath(r.owner[root], r.s.Output, nil)
		if path == nil {
			return nil, fmt.Errorf("protocol: answer holder %d cannot reach output %d", r.owner[root], r.s.Output)
		}
		bits := cur.Len() * r.s.TupleBits(cur.Arity())
		if bits == 0 {
			bits = 1 // an empty answer still needs a round to say so
		}
		if _, err := r.net.RoutePath(path, r.finish[root], bits); err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// localStar reduces a star without communication (all relations at one
// player).
func localStar[T any](q *faq.Query[T], center *relation.Relation[T], children []int, msgs map[int]*relation.Relation[T]) *relation.Relation[T] {
	cur := center
	for _, c := range children {
		cols := columnsOf(cur.Schema(), msgs[c].Schema())
		lookup := relationToMap(q, msgs[c], nil)
		b := relation.NewBuilder(q.S, cur.Schema())
		tuple := make([]int, cur.Arity())
		for i := 0; i < cur.Len(); i++ {
			t := cur.Tuple(i)
			val, ok := lookup[encodeCols(t, cols)]
			if !ok {
				continue
			}
			for k := range t {
				tuple[k] = int(t[k])
			}
			b.Add(tuple, q.S.Mul(cur.Value(i), val))
		}
		cur = b.Build()
	}
	return cur
}

// relationToMap renders a message relation as key → value (keys encode
// the full tuple in schema order).
func relationToMap[T any](q *faq.Query[T], m *relation.Relation[T], _ []int) map[string]T {
	out := make(map[string]T, m.Len())
	for i := 0; i < m.Len(); i++ {
		out[encodeCols(m.Tuple(i), nil)] = m.Value(i)
	}
	return out
}

// intersectMaps keeps keys present in both maps, multiplying values —
// the local fold when one player owns several star leaves.
func intersectMaps[T any](q *faq.Query[T], a, b map[string]T) map[string]T {
	out := make(map[string]T)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = q.S.Mul(va, vb)
		}
	}
	return out
}

// columnsOf maps variables vs to their column indices in schema (vs must
// be a subset; GHD invariants guarantee it here).
func columnsOf(schema, vs []int) []int {
	cols := make([]int, len(vs))
	for i, v := range vs {
		j := sort.SearchInts(schema, v)
		cols[i] = j
	}
	return cols
}

// encodeCols encodes selected columns (all, when cols is nil) of a tuple.
func encodeCols(t []int32, cols []int) string {
	if cols == nil {
		return encodeInts(t...)
	}
	vals := make([]int32, len(cols))
	for i, c := range cols {
		vals[i] = t[c]
	}
	return encodeInts(vals...)
}

func clampBits(bits, cap int) int {
	if bits > cap {
		return cap
	}
	if bits <= 0 {
		return 1
	}
	return bits
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
