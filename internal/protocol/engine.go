package protocol

import (
	"cmp"
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/flow"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/keys"
	"repro/internal/netsim"
	"repro/internal/relation"
	"repro/internal/topology"
)

// runner executes the paper's main protocol (Theorem 4.1 / F.1 / G.4) on
// one GYO-GHD: bottom-up star reductions over the forest part
// (Lemma 4.1, Algorithms 1–3), then the trivial protocol on the cyclic
// core (Lemma 4.2), with every transmission booked on the simulator's
// capacity ledger.
type runner[T any] struct {
	s   *Setup[T]
	net *netsim.Network
	g   *ghd.GHD

	rel    []*relation.Relation[T] // current relation per GHD node
	owner  []int                   // current holder per GHD node (-1: none)
	finish []int                   // round at which the node's relation is ready
}

// keyCodec encodes tuple columns as converge-cast keys of type K and
// assigns keys to Steiner-tree chunks. The uint64 codec covers tuples of
// ≤ keys.MaxPacked columns (and tuple indices) without allocating; the
// string codec is the arbitrary-arity fallback. Both chunk identically
// (keys.Chunk hashes the same bytes keys.ChunkString sees).
type keyCodec[K cmp.Ordered] struct {
	encode func(t []int32, cols []int) K
	chunk  func(k K, n int) int
}

func u64Codec(ncols int) keyCodec[uint64] {
	return keyCodec[uint64]{
		encode: func(t []int32, cols []int) uint64 { return keys.PackCols(t, cols) },
		chunk:  func(k uint64, n int) int { return keys.Chunk(k, ncols, n) },
	}
}

func strCodec() keyCodec[string] {
	return keyCodec[string]{
		encode: keys.EncodeCols,
		chunk:  keys.ChunkString,
	}
}

// Run executes the main protocol end to end and returns the answer
// relation (schema = the query's free variables) plus the measured cost.
// Planning goes through faq.PlanGHD — the same primitive the plan cache
// compiles once per query shape — so a service can hand RunOnGHD a cached
// decomposition and skip the planning cost entirely.
func Run[T any](s *Setup[T]) (*relation.Relation[T], Report, error) {
	gh, err := faq.PlanGHD(s.Q.H, s.Q.Free)
	if err != nil {
		return nil, Report{}, err
	}
	return RunOnGHD(s, gh)
}

// RunOnGHD is Run on a caller-chosen decomposition (ablation studies
// schedule the same query on differently-shaped GHDs).
func RunOnGHD[T any](s *Setup[T], gh *ghd.GHD) (*relation.Relation[T], Report, error) {
	rep := Report{Protocol: "faq-main"}
	if err := s.Validate(); err != nil {
		return nil, rep, err
	}
	if err := gh.Validate(); err != nil {
		return nil, rep, err
	}
	for _, v := range s.Q.Free {
		if !hypergraph.ContainsSorted(gh.Bags[gh.Root], v) {
			return nil, rep, fmt.Errorf("protocol: free variable %d outside root bag (F ⊆ V(C(H)) required)", v)
		}
	}
	net, err := netsim.New(s.G, s.Bits())
	if err != nil {
		return nil, rep, err
	}
	r := &runner[T]{
		s:      s,
		net:    net,
		g:      gh,
		rel:    make([]*relation.Relation[T], gh.NumNodes()),
		owner:  make([]int, gh.NumNodes()),
		finish: make([]int, gh.NumNodes()),
	}
	for i := range r.owner {
		r.owner[i] = -1
	}
	for e, v := range gh.NodeOf {
		r.rel[v] = s.Q.Factors[e]
		r.owner[v] = s.Assign[e]
	}

	ch := gh.Children()
	for _, v := range gh.PostOrder() {
		if len(ch[v]) == 0 {
			continue
		}
		if v == gh.Root && v == gh.CoreRoot {
			if err := r.corePhase(v, ch[v]); err != nil {
				return nil, rep, err
			}
			continue
		}
		// The converged map must land where the center relation lives
		// (R′_P filters the center's tuples), so the star target is the
		// center owner; finalize() ships the (aggregated, small) answer
		// to the output player afterwards.
		if err := r.starReduce(v, ch[v], r.owner[v]); err != nil {
			return nil, rep, err
		}
	}

	ans, err := r.finalize()
	if err != nil {
		return nil, rep, err
	}
	rep.Rounds = net.Rounds()
	rep.Bits = net.TotalBits()
	RecordReport(rep)
	return ans, rep, nil
}

// childMessage aggregates the private variables out of a child's current
// relation (the push-down of Corollary G.2): everything in χ(c) not
// shared with the parent bag is bound (free variables are in the root
// bag, hence by the running intersection property also in the parent
// bag) and is eliminated innermost-first with its per-variable operator.
func (r *runner[T]) childMessage(c, parent int) (*relation.Relation[T], error) {
	parentBag := r.g.Bags[parent]
	return faq.AggregateOut(r.s.Q, r.rel[c], func(x int) bool {
		return hypergraph.ContainsSorted(parentBag, x)
	})
}

// starReduce runs Algorithm 1/2/3 on the star centered at GHD node v
// with the given children, leaving R′_P at the target player.
func (r *runner[T]) starReduce(v int, children []int, target int) error {
	q := r.s.Q
	start := r.finish[v]
	// Child messages are pure local reductions (no ledger bookings), so
	// they fan out across the exec pool; every transmission below stays
	// on the sequential schedule, keeping measured costs byte-identical.
	msgList := make([]*relation.Relation[T], len(children))
	if err := exec.Default().MapErr(len(children), func(i int) error {
		m, err := r.childMessage(children[i], v)
		if err != nil {
			return err
		}
		msgList[i] = m
		return nil
	}); err != nil {
		return err
	}
	msgs := make(map[int]*relation.Relation[T], len(children))
	msgOwner := make(map[int]int, len(children))
	for i, c := range children {
		msgs[c] = msgList[i]
		msgOwner[c] = r.owner[c]
		if r.finish[c] > start {
			start = r.finish[c]
		}
	}

	// Player set of this star.
	K := []int{target, r.owner[v]}
	for _, c := range children {
		K = append(K, r.owner[c])
	}
	K = topology.SortedUnique(K)

	if len(K) == 1 {
		// Everything is already co-located: a purely local reduction.
		r.rel[v] = localStar(q, r.rel[v], children, msgs)
		r.owner[v] = target
		r.finish[v] = start
		return nil
	}

	// Fast path (Examples 2.1–2.3): every child shares the same
	// variable set W with the center, so converged (key, value) streams
	// over π_W need no prior broadcast of the center relation.
	fast := true
	var w []int
	for i, c := range children {
		sc := msgs[c].Schema()
		if i == 0 {
			w = sc
		} else if !equalIntSlices(w, sc) {
			fast = false
		}
	}

	units := 0
	for _, c := range children {
		if msgs[c].Len() > units {
			units = msgs[c].Len()
		}
	}
	if !fast && r.rel[v].Len() > units {
		units = r.rel[v].Len()
	}
	if units == 0 {
		units = 1
	}
	_, packing, _, err := flow.BestDelta(r.s.G, K, units)
	if err != nil {
		return err
	}

	var weighted *relation.Relation[T]
	var done int
	var werr error
	switch {
	case fast && len(w) <= keys.MaxPacked:
		weighted, done, werr = fastWeight(r, r.rel[v], w, children, msgs, msgOwner, target, packing, start,
			u64Codec(len(w)))
	case fast:
		weighted, done, werr = fastWeight(r, r.rel[v], w, children, msgs, msgOwner, target, packing, start,
			strCodec())
	default:
		conv, d, err := generalStar(r, v, children, msgs, msgOwner, target, packing, start)
		if err != nil {
			return err
		}
		weighted = weightCenter(q, r.rel[v], conv, func(i int, t []int32) uint64 {
			return keys.Pack1(int32(i))
		})
		done = d
	}
	if werr != nil {
		return werr
	}

	// R′_P: center tuples filtered and weighted by the converged map.
	r.rel[v] = weighted
	r.owner[v] = target
	r.finish[v] = done
	return nil
}

// fastWeight runs the fast-star converge-cast with the given codec and
// weights the center relation by the converged map, keyed on the
// center's columns for the common variable set w.
func fastWeight[K cmp.Ordered, T any](r *runner[T], center *relation.Relation[T], w []int,
	children []int, msgs map[int]*relation.Relation[T], msgOwner map[int]int, target int,
	packing []*flow.SteinerTree, start int, cod keyCodec[K]) (*relation.Relation[T], int, error) {
	conv, done, err := fastStar(r, children, msgs, msgOwner, target, packing, start, cod)
	if err != nil {
		return nil, 0, err
	}
	keyCols, err := columnsOf(center.Schema(), w)
	if err != nil {
		return nil, 0, err
	}
	return weightCenter(r.s.Q, center, conv, func(i int, t []int32) K {
		return cod.encode(t, keyCols)
	}), done, nil
}

// weightCenter builds R′_P: the center tuples whose key survived the
// converge-cast, each weighted by the converged value.
func weightCenter[K cmp.Ordered, T any](q *faq.Query[T], center *relation.Relation[T],
	conv map[K]T, keyOf func(i int, t []int32) K) *relation.Relation[T] {
	b := relation.NewBuilderHint(q.S, center.Schema(), center.Len())
	for i := 0; i < center.Len(); i++ {
		t := center.Tuple(i)
		m, ok := conv[keyOf(i, t)]
		if !ok {
			continue
		}
		b.AddRow(t, q.S.Mul(center.Value(i), m))
	}
	return b.Build()
}

// fastStar converges keyed messages π_W directly (no broadcast): the
// pipelined semijoin chains of Examples 2.1–2.3 generalized to Steiner
// packings.
func fastStar[K cmp.Ordered, T any](r *runner[T], children []int, msgs map[int]*relation.Relation[T],
	msgOwner map[int]int, target int, packing []*flow.SteinerTree, start int,
	cod keyCodec[K]) (map[K]T, int, error) {
	q := r.s.Q
	itemBits := clampBits(r.s.TupleBits(len(msgs[children[0]].Schema())), r.s.Bits())
	// Per-player local contribution: intersect keys across the player's
	// children, multiplying values.
	playerMaps := make(map[int]map[K]T)
	for _, c := range children {
		m := relationToMap(msgs[c], cod)
		o := msgOwner[c]
		if cur, ok := playerMaps[o]; ok {
			playerMaps[o] = intersectMaps(q, cur, m)
		} else {
			playerMaps[o] = m
		}
	}
	return convergeOverPacking(r, playerMaps, target, packing, start, itemBits, cod)
}

// generalStar implements the heterogeneous-star case of Algorithm 1:
// the center relation is first broadcast over the packing (chunked per
// tree), each child owner computes its value vector over the center's
// tuple indices, and the vectors converge with component-wise ⊗
// (footnote 24). Index keys are packed uint64s throughout.
func generalStar[T any](r *runner[T], v int, children []int, msgs map[int]*relation.Relation[T],
	msgOwner map[int]int, target int, packing []*flow.SteinerTree, start int) (map[uint64]T, int, error) {
	q := r.s.Q
	center := r.rel[v]
	src := r.owner[v]
	tupleBits := clampBits(r.s.TupleBits(center.Arity()), r.s.Bits())

	// Broadcast the center relation, chunked across the packing with the
	// same key-hash chunking the converge phase uses (one counting pass).
	chunkCount := make([]int, len(packing))
	for i := 0; i < center.Len(); i++ {
		chunkCount[keys.Chunk(keys.Pack1(int32(i)), 1, len(packing))]++
	}
	broadcastDone := make([]int, len(packing))
	for ti, st := range packing {
		n := chunkCount[ti]
		spec := &broadcastSpec{
			net:      r.net,
			tree:     &netsim.Tree{Root: src, Edges: st.Edges},
			start:    start,
			items:    n,
			itemBits: tupleBits,
		}
		done, err := spec.run()
		if err != nil {
			return nil, 0, err
		}
		broadcastDone[ti] = done
	}

	// Each player's vector over center tuple indices: for every child it
	// owns, index i survives iff the child's message has the matching
	// key; values multiply.
	idxBits := clampBits(keys.Bits(maxInt(center.Len(), 2)-1)+r.s.ValueBits(), r.s.Bits())
	playerMaps := make(map[int]map[uint64]T)
	for _, c := range children {
		cols, err := columnsOf(center.Schema(), msgs[c].Schema())
		if err != nil {
			return nil, 0, err
		}
		vec := make(map[uint64]T, center.Len())
		if len(cols) <= keys.MaxPacked {
			lookup := relationToMap(msgs[c], u64Codec(len(cols)))
			for i := 0; i < center.Len(); i++ {
				if val, ok := lookup[keys.PackCols(center.Tuple(i), cols)]; ok {
					vec[keys.Pack1(int32(i))] = val
				}
			}
		} else {
			lookup := relationToMap(msgs[c], strCodec())
			for i := 0; i < center.Len(); i++ {
				if val, ok := lookup[keys.EncodeCols(center.Tuple(i), cols)]; ok {
					vec[keys.Pack1(int32(i))] = val
				}
			}
		}
		o := msgOwner[c]
		if cur, ok := playerMaps[o]; ok {
			playerMaps[o] = intersectMaps(q, cur, vec)
		} else {
			playerMaps[o] = vec
		}
	}
	// Converge each chunk after its broadcast completes.
	return convergeOverPackingStaggered(r, playerMaps, target, packing, broadcastDone, idxBits, u64Codec(1))
}

// convergeOverPacking runs one keyed converge-cast per packed tree
// (chunked by key hash) and merges the root streams.
func convergeOverPacking[K cmp.Ordered, T any](r *runner[T], playerMaps map[int]map[K]T, target int,
	packing []*flow.SteinerTree, start, itemBits int, cod keyCodec[K]) (map[K]T, int, error) {
	starts := make([]int, len(packing))
	for i := range starts {
		starts[i] = start
	}
	return convergeOverPackingStaggered(r, playerMaps, target, packing, starts, itemBits, cod)
}

func convergeOverPackingStaggered[K cmp.Ordered, T any](r *runner[T], playerMaps map[int]map[K]T, target int,
	packing []*flow.SteinerTree, starts []int, itemBits int, cod keyCodec[K]) (map[K]T, int, error) {
	q := r.s.Q
	var terminals []int
	for u := range playerMaps {
		terminals = append(terminals, u)
	}
	terminals = topology.SortedUnique(append(terminals, target))
	// Partition each player's keys across the packed trees once (a map
	// per chunk per player), instead of re-hashing every key per tree.
	parts := make(map[int][]map[K]T, len(playerMaps))
	//faqlint:allow mapiter(order-free partition: every write is keyed by the player u)
	for u, full := range playerMaps {
		ps := make([]map[K]T, len(packing))
		for i := range ps {
			ps[i] = make(map[K]T)
		}
		//faqlint:allow mapiter(order-free distribution: every write is keyed by the tuple key k)
		for k, val := range full {
			ps[cod.chunk(k, len(packing))][k] = val
		}
		parts[u] = ps
	}
	out := make(map[K]T)
	finish := 0
	for _, s := range starts {
		if s > finish {
			finish = s
		}
	}
	for ti, st := range packing {
		tree := pruneToTerminals(r.s.G, &netsim.Tree{Root: target, Edges: st.Edges}, terminals)
		spec := &convergeSpec[K, T]{
			net:      r.net,
			tree:     tree,
			start:    starts[ti],
			itemBits: itemBits,
			local: func(node int) map[K]T {
				ps, ok := parts[node]
				if !ok {
					return nil // the node only relays
				}
				return ps[ti]
			},
			combine: q.S.Mul,
		}
		stream, err := spec.run()
		if err != nil {
			return nil, 0, err
		}
		for _, k := range stream.keys {
			tv := stream.m[k]
			out[k] = tv.val
			if tv.ready > finish {
				finish = tv.ready
			}
		}
	}
	return out, finish, nil
}

// corePhase finishes a cyclic query: children of the fat root (core
// factors and reduced pendant-tree roots) are routed to the output
// player with the trivial protocol (Lemma 3.1), which then joins them
// and aggregates the remaining bound variables.
func (r *runner[T]) corePhase(root int, children []int) error {
	q := r.s.Q
	out := r.s.Output
	// Sharded flow analysis, sequential ledger: the per-child MaxFlow
	// calls are pure reads of the topology, so they run across the exec
	// pool; all RoutePath bookings below stay in child order on the
	// sequential netsim ledger, keeping the Report byte-identical at any
	// worker count (same split as RunTrivial's).
	flows := make([]*flow.Result, len(children))
	if err := exec.Default().MapErr(len(children), func(i int) error {
		c := children[i]
		src := r.owner[c]
		bits := r.rel[c].Len() * r.s.TupleBits(r.rel[c].Arity())
		if src == out || bits == 0 { // same predicate as the ledger loop below
			return nil
		}
		res, err := flow.MaxFlow(r.s.G, src, out)
		if err != nil {
			return err
		}
		flows[i] = res
		return nil
	}); err != nil {
		return err
	}
	for i, c := range children {
		src := r.owner[c]
		if src == out {
			continue
		}
		bits := r.rel[c].Len() * r.s.TupleBits(r.rel[c].Arity())
		if bits == 0 {
			d, err := notifyEmpty(r.net, r.s.G, src, out, r.finish[c])
			if err != nil {
				return err
			}
			if d > r.finish[c] {
				r.finish[c] = d
			}
			continue
		}
		res := flows[i]
		if res.Value == 0 {
			return fmt.Errorf("protocol: no route from %d to %d", src, out)
		}
		share := ceilDiv(bits, res.Value)
		done := r.finish[c]
		for _, p := range res.Paths {
			d, err := r.net.RoutePath(p, r.finish[c], share)
			if err != nil {
				return err
			}
			if d > done {
				done = d
			}
		}
		r.finish[c] = done
	}
	// Local computation at the output: join everything, aggregate the
	// bound variables innermost-first.
	cur := relation.Unit(q.S, q.S.One())
	done := 0
	for _, c := range children {
		cur = relation.Join(q.S, cur, r.rel[c])
		if r.finish[c] > done {
			done = r.finish[c]
		}
	}
	free := make(map[int]bool, len(q.Free))
	for _, x := range q.Free {
		free[x] = true
	}
	cur, err := faq.AggregateOut(q, cur, func(x int) bool { return free[x] })
	if err != nil {
		return err
	}
	r.rel[root] = cur
	r.owner[root] = out
	r.finish[root] = done
	return nil
}

// finalize aggregates the root relation down to the free variables at
// its owner and ships the answer to the output player if needed.
func (r *runner[T]) finalize() (*relation.Relation[T], error) {
	q := r.s.Q
	root := r.g.Root
	free := make(map[int]bool, len(q.Free))
	for _, x := range q.Free {
		free[x] = true
	}
	cur, err := faq.AggregateOut(q, r.rel[root], func(x int) bool { return free[x] })
	if err != nil {
		return nil, err
	}
	if r.owner[root] != r.s.Output {
		path := r.s.G.ShortestPath(r.owner[root], r.s.Output, nil)
		if path == nil {
			return nil, fmt.Errorf("protocol: answer holder %d cannot reach output %d", r.owner[root], r.s.Output)
		}
		bits := cur.Len() * r.s.TupleBits(cur.Arity())
		if bits == 0 {
			bits = 1 // an empty answer still needs a round to say so
		}
		if _, err := r.net.RoutePath(path, r.finish[root], bits); err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// localStar reduces a star without communication (all relations at one
// player). Each child message's schema is a subset of the center's, so
// filtering-and-weighting the center by a message is exactly the natural
// join — which the relation kernel executes with a sorted merge whenever
// the shared variables are a schema prefix.
func localStar[T any](q *faq.Query[T], center *relation.Relation[T], children []int, msgs map[int]*relation.Relation[T]) *relation.Relation[T] {
	cur := center
	for _, c := range children {
		cur = relation.Join(q.S, cur, msgs[c])
	}
	return cur
}

// relationToMap renders a message relation as key → value (keys encode
// the full tuple in schema order).
func relationToMap[K cmp.Ordered, T any](m *relation.Relation[T], cod keyCodec[K]) map[K]T {
	out := make(map[K]T, m.Len())
	for i := 0; i < m.Len(); i++ {
		out[cod.encode(m.Tuple(i), nil)] = m.Value(i)
	}
	return out
}

// intersectMaps keeps keys present in both maps, multiplying values —
// the local fold when one player owns several star leaves.
func intersectMaps[K cmp.Ordered, T any](q *faq.Query[T], a, b map[K]T) map[K]T {
	out := make(map[K]T)
	//faqlint:allow mapiter(order-free intersection: writes keyed by k, semiring Mul applied per key)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = q.S.Mul(va, vb)
		}
	}
	return out
}

// columnsOf maps variables vs to their column indices in schema. GHD
// invariants normally guarantee vs ⊆ schema, but that is verified rather
// than trusted: an unverified sort.SearchInts miss would silently yield
// a wrong or out-of-range column and corrupt the converge-cast keys.
func columnsOf(schema, vs []int) ([]int, error) {
	cols := make([]int, len(vs))
	for i, v := range vs {
		j := sort.SearchInts(schema, v)
		if j >= len(schema) || schema[j] != v {
			return nil, fmt.Errorf("protocol: variable %d not in schema %v", v, schema)
		}
		cols[i] = j
	}
	return cols, nil
}

func clampBits(bits, cap int) int {
	if bits > cap {
		return cap
	}
	if bits <= 0 {
		return 1
	}
	return bits
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
