package protocol

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/topology"
)

// Worker-sweep determinism extensions for the sharded per-factor MaxFlow
// phases: RunTrivial and the corePhase now compute their flow analyses
// across the exec pool, and this file pins the contract that sharding
// changed nothing — Reports (rounds AND bits) are byte-identical and
// answers bit-identical at workers ∈ {1, 2, 8}, on both the grid and
// the clique topologies. Run under `-race` by CI, these are also the
// concurrency-safety tests for concurrent flow.MaxFlow calls sharing
// one topology.Graph.

// buildCyclicSetup assembles a triangle-core query (so Run exercises
// corePhase's sharded flows) with per-factor data, on a caller-chosen
// topology.
func buildCyclicSetup(t *testing.T, g *topology.Graph, seed int64) *Setup[float64] {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.Edge("A", "B")
	b.Edge("B", "C")
	b.Edge("A", "C") // triangle: cyclic core
	b.Edge("C", "D") // pendant arm
	b.Edge("D", "E")
	h := b.Build()
	r := rand.New(rand.NewSource(seed))
	dom := 6
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for i := range factors {
		bb := relation.NewBuilder[float64](sp, h.Edge(i))
		for k := 0; k < 25; k++ {
			bb.Add([]int{r.Intn(dom), r.Intn(dom)}, float64(1+r.Intn(16))/8)
		}
		factors[i] = bb.Build()
	}
	q := &faq.Query[float64]{S: sp, H: h, Factors: factors, DomSize: dom}
	assign := make(Assignment, h.NumEdges())
	for i := range assign {
		assign[i] = i % g.N()
	}
	return &Setup[float64]{Q: q, G: g, Assign: assign, Output: g.N() - 1}
}

// TestShardedMaxFlowReportIdentity sweeps workers 1/2/8 over both
// protocols on the grid and clique fixtures: every Report field and
// every answer byte must match the 1-worker run.
func TestShardedMaxFlowReportIdentity(t *testing.T) {
	fixtures := []struct {
		name string
		g    *topology.Graph
	}{
		{"grid", topology.Grid(2, 4)},
		{"clique", topology.Clique(6)},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			setups := []struct {
				name string
				s    *Setup[float64]
			}{
				{"acyclic", buildDeterminismSetupOn(t, fx.g, 821)},
				{"cyclic-core", buildCyclicSetup(t, fx.g, 822)},
			}
			for _, su := range setups {
				prev := exec.SetWorkers(1)
				ansRef, repRef, err1 := Run(su.s)
				tRef, trepRef, err2 := RunTrivial(su.s)
				exec.SetWorkers(prev)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: sequential reference failed: %v %v", su.name, err1, err2)
				}
				for _, w := range []int{1, 2, 8} {
					exec.SetWorkers(w)
					ans, rep, err1 := Run(su.s)
					ta, trep, err2 := RunTrivial(su.s)
					exec.SetWorkers(prev)
					if err1 != nil || err2 != nil {
						t.Fatalf("%s workers=%d: %v %v", su.name, w, err1, err2)
					}
					if rep != repRef {
						t.Errorf("%s workers=%d: Run Report %+v != sequential %+v", su.name, w, rep, repRef)
					}
					if trep != trepRef {
						t.Errorf("%s workers=%d: RunTrivial Report %+v != sequential %+v", su.name, w, trep, trepRef)
					}
					if !relation.Equal(sp, ans, ansRef) || !valuesIdentical(ans, ansRef) {
						t.Errorf("%s workers=%d: Run answer not bit-identical", su.name, w)
					}
					if !relation.Equal(sp, ta, tRef) || !valuesIdentical(ta, tRef) {
						t.Errorf("%s workers=%d: RunTrivial answer not bit-identical", su.name, w)
					}
				}
			}
		})
	}
}

// buildDeterminismSetupOn is buildDeterminismSetup with a caller-chosen
// topology (the original is pinned to the 2×4 grid).
func buildDeterminismSetupOn(t *testing.T, g *topology.Graph, seed int64) *Setup[float64] {
	t.Helper()
	s := buildDeterminismSetup(t, seed)
	assign := make(Assignment, len(s.Assign))
	for i := range assign {
		assign[i] = i % g.N()
	}
	return &Setup[float64]{Q: s.Q, G: g, Assign: assign, Output: g.N() - 1}
}

// TestRunTrivialRepeatedUnderWorkers re-runs RunTrivial many times at 8
// workers: the sharded flow phase must be schedule-independent run to
// run, not merely equal to sequential once.
func TestRunTrivialRepeatedUnderWorkers(t *testing.T) {
	s := buildCyclicSetup(t, topology.Grid(2, 4), 823)
	prev := exec.SetWorkers(8)
	defer exec.SetWorkers(prev)
	ans0, rep0, err := RunTrivial(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		ans, rep, err := RunTrivial(s)
		if err != nil {
			t.Fatal(err)
		}
		if rep != rep0 {
			t.Fatalf("run %d: Report %+v != %+v", i, rep, rep0)
		}
		if !relation.Equal(sp, ans, ans0) || !valuesIdentical(ans, ans0) {
			t.Fatalf("run %d: answer drifted", i)
		}
	}
}

// TestShardedMaxFlowManyFactors stresses the MapErr fan-out with more
// factors than workers (a star query with 20 leaves assigned round-robin
// across a clique), pinning Report equality across worker counts.
func TestShardedMaxFlowManyFactors(t *testing.T) {
	b := hypergraph.NewBuilder()
	leaves := 20
	for i := 0; i < leaves; i++ {
		b.Edge("X", fmt.Sprintf("L%d", i))
	}
	h := b.Build()
	r := rand.New(rand.NewSource(824))
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for i := range factors {
		bb := relation.NewBuilder[float64](sp, h.Edge(i))
		for k := 0; k < 10+r.Intn(20); k++ {
			bb.Add([]int{r.Intn(5), r.Intn(5)}, float64(1+r.Intn(8))/4)
		}
		factors[i] = bb.Build()
	}
	q := &faq.Query[float64]{S: sp, H: h, Factors: factors, DomSize: 5}
	g := topology.Clique(7)
	assign := make(Assignment, h.NumEdges())
	for i := range assign {
		assign[i] = i % g.N()
	}
	s := &Setup[float64]{Q: q, G: g, Assign: assign, Output: 0}

	prev := exec.SetWorkers(1)
	ansRef, repRef, err := RunTrivial(s)
	exec.SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		exec.SetWorkers(w)
		ans, rep, err := RunTrivial(s)
		exec.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if rep != repRef {
			t.Errorf("workers=%d: Report %+v != %+v", w, rep, repRef)
		}
		if !relation.Equal(sp, ans, ansRef) || !valuesIdentical(ans, ansRef) {
			t.Errorf("workers=%d: answer not bit-identical", w)
		}
	}
}
