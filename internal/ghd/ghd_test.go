package ghd

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/hypergraph"
)

func TestConstructStarH1(t *testing.T) {
	h := hypergraph.ExampleH1()
	g, err := Construct(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.InternalNodes(); got != 1 {
		t.Errorf("internal nodes = %d, want 1\n%s", got, g)
	}
	if g.CoreRoot != -1 {
		t.Errorf("star should have no fat core root")
	}
	// The root is one of the star's edges and must contain the center A
	// (vertex 0); which leaf pairs with it is a symmetric choice.
	if !hypergraph.ContainsSorted(g.Bags[g.Root], 0) {
		t.Errorf("root bag %v does not contain the star center", g.Bags[g.Root])
	}
}

func TestMinimizeH2MatchesFigure2T1(t *testing.T) {
	h := hypergraph.ExampleH2()
	// The heuristic construction is schedule-dependent but always valid.
	base, err := Construct(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	// The width minimizer must recover T1 of Figure 2: rooted at (A,B,C)
	// with leaves (B,D), (C,F), (A,B,E) — a single internal node, so
	// y(H2) = 1.
	g, err := Minimize(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InternalNodes(); got != 1 {
		t.Errorf("internal nodes = %d, want 1 (Figure 2 T1)\n%s", got, g)
	}
	if !reflect.DeepEqual(g.Bags[g.Root], h.Edge(0)) {
		t.Errorf("root bag = %v, want edge R(A,B,C) = %v", g.Bags[g.Root], h.Edge(0))
	}
}

func TestFigure2T2HasTwoInternalNodes(t *testing.T) {
	// Build T2 of Figure 2 by hand: (A,B,C) root with children (C,F) and
	// (A,B,E); (B,D) hangs under (A,B,E). Both T1 and T2 are valid
	// GYO-GHDs; T2 has 2 internal nodes, witnessing that y minimizes.
	h := hypergraph.ExampleH2()
	g := &GHD{
		H:        h,
		Bags:     [][]int{h.Edge(0), h.Edge(2), h.Edge(3), h.Edge(1)},
		Labels:   [][]int{{0}, {2}, {3}, {1}},
		Parent:   []int{-1, 0, 0, 2},
		Root:     0,
		NodeOf:   []int{0, 3, 1, 2},
		CoreRoot: -1,
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("T2 should be valid: %v", err)
	}
	if got := g.InternalNodes(); got != 2 {
		t.Errorf("T2 internal nodes = %d, want 2", got)
	}
}

func TestWidthValues(t *testing.T) {
	cases := []struct {
		name string
		h    *hypergraph.Hypergraph
		want int
	}{
		{"H0 self-loops", hypergraph.ExampleH0(), 1},
		{"H1 star", hypergraph.ExampleH1(), 1},
		{"H2", hypergraph.ExampleH2(), 1},
		{"H3", hypergraph.ExampleH3(), 2},
		{"single edge", func() *hypergraph.Hypergraph {
			h := hypergraph.New(2)
			h.AddEdge(0, 1)
			return h
		}(), 0},
		{"P4 path 3 edges", hypergraph.PathGraph(4), 1},
		{"P5 path 4 edges", hypergraph.PathGraph(5), 2},
		{"C5 cycle", hypergraph.CycleGraph(5), 1},
		{"K4 clique", hypergraph.CliqueGraph(4), 1},
		{"star k=7", hypergraph.StarGraph(7), 1},
	}
	for _, c := range cases {
		got, err := Width(c.h)
		if err != nil {
			t.Errorf("Width(%s): %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("y(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestWidthH3MatchesAppendixC2(t *testing.T) {
	// Appendix C.2 exhibits GYO-GHDs of H3 with two and with three
	// internal nodes; the two-internal-node one is optimal for the
	// family (the pendant path B—G—H forces a second internal node).
	g, err := Minimize(hypergraph.ExampleH3())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.InternalNodes(); got != 2 {
		t.Errorf("y(H3) = %d, want 2\n%s", got, g)
	}
	if g.CoreRoot == -1 {
		t.Error("H3 has a cyclic core; fat root expected")
	}
}

func TestMDTransformFlattensStarChain(t *testing.T) {
	// A deliberately bad GHD of the star H1: a chain
	// (A,B) — (A,C) — (A,D) — (A,E) with 3 internal nodes. MDTransform
	// re-attaches every node to the topmost ancestor containing A,
	// recovering the 1-internal-node star.
	h := hypergraph.ExampleH1()
	g := &GHD{
		H:        h,
		Bags:     [][]int{h.Edge(0), h.Edge(1), h.Edge(2), h.Edge(3)},
		Labels:   [][]int{{0}, {1}, {2}, {3}},
		Parent:   []int{-1, 0, 1, 2},
		Root:     0,
		NodeOf:   []int{0, 1, 2, 3},
		CoreRoot: -1,
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("chain GHD should be valid: %v", err)
	}
	if got := g.InternalNodes(); got != 3 {
		t.Fatalf("chain internal = %d, want 3", got)
	}
	md := MDTransform(g)
	if err := md.Validate(); err != nil {
		t.Fatalf("MD-GHD invalid: %v", err)
	}
	if got := md.InternalNodes(); got != 1 {
		t.Errorf("MD-GHD internal = %d, want 1\n%s", got, md)
	}
}

func TestValidateDetectsRIPViolation(t *testing.T) {
	// (A,B) root; (B,C) and (C,D) both children of root: vertex C's
	// holders are disconnected.
	b := hypergraph.NewBuilder()
	b.Edge("A", "B")
	b.Edge("B", "C")
	b.Edge("C", "D")
	h := b.Build()
	g := &GHD{
		H:        h,
		Bags:     [][]int{h.Edge(0), h.Edge(1), h.Edge(2)},
		Labels:   [][]int{{0}, {1}, {2}},
		Parent:   []int{-1, 0, 0},
		Root:     0,
		NodeOf:   []int{0, 1, 2},
		CoreRoot: -1,
	}
	if err := g.Validate(); err == nil {
		t.Error("expected RIP violation, got valid")
	}
}

func TestValidateDetectsMissingEdge(t *testing.T) {
	h := hypergraph.ExampleH1()
	g := &GHD{
		H:        h,
		Bags:     [][]int{h.Edge(0)},
		Labels:   [][]int{{0}},
		Parent:   []int{-1},
		Root:     0,
		NodeOf:   []int{0, 0, 0, 0},
		CoreRoot: -1,
	}
	if err := g.Validate(); err == nil {
		t.Error("expected coverage violation, got valid")
	}
}

func TestPostOrderChildrenBeforeParents(t *testing.T) {
	h := hypergraph.ExampleH3()
	g, err := Construct(h)
	if err != nil {
		t.Fatal(err)
	}
	order := g.PostOrder()
	if len(order) != g.NumNodes() {
		t.Fatalf("post-order has %d nodes, want %d", len(order), g.NumNodes())
	}
	pos := make(map[int]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for v, p := range g.Parent {
		if p >= 0 && pos[v] > pos[p] {
			t.Errorf("node %d appears after its parent %d", v, p)
		}
	}
	if order[len(order)-1] != g.Root {
		t.Errorf("post-order must end at the root")
	}
}

func TestConstructDisconnectedForest(t *testing.T) {
	// Two disjoint binary edges: the GHD needs a fat root joining the
	// two trees into a single decomposition tree.
	h := hypergraph.New(4)
	h.AddEdge(0, 1)
	h.AddEdge(2, 3)
	g, err := Construct(h)
	if err != nil {
		t.Fatal(err)
	}
	if g.CoreRoot == -1 {
		t.Error("disconnected forest should get a fat root")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConstructErrorsOnEdgeless(t *testing.T) {
	if _, err := Construct(hypergraph.New(3)); err == nil {
		t.Error("expected error for edgeless hypergraph")
	}
}

// TestRandomForestGHDInvariants property-tests that Construct always
// yields a valid GHD and Minimize never does worse, over random tree
// queries (the paper's constant-degeneracy regime).
func TestRandomForestGHDInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(7)
		h := hypergraph.New(n)
		for v := 1; v < n; v++ {
			h.AddEdge(r.Intn(v), v) // random tree
		}
		base, err := Construct(h)
		if err != nil {
			t.Fatalf("Construct: %v on %v", err, h)
		}
		if err := base.Validate(); err != nil {
			t.Fatalf("base invalid: %v\n%s", err, base)
		}
		best, err := Minimize(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := best.Validate(); err != nil {
			t.Fatalf("minimized invalid: %v", err)
		}
		if best.InternalNodes() > base.InternalNodes() {
			t.Errorf("Minimize (%d) worse than Construct (%d) on %v",
				best.InternalNodes(), base.InternalNodes(), h)
		}
	}
}

// TestRandomCyclicGHDInvariants extends the invariants to hypergraphs
// with cyclic cores and arity-3 edges.
func TestRandomCyclicGHDInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(5)
		h := hypergraph.New(n)
		// A cycle core plus pendant edges, some arity-3.
		for i := 0; i < n; i++ {
			h.AddEdge(i, (i+1)%n)
		}
		extra := r.Intn(3)
		for i := 0; i < extra; i++ {
			a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
			if a != b && b != c && a != c {
				h.AddEdge(a, b, c)
			}
		}
		g, err := Minimize(h)
		if err != nil {
			t.Fatalf("Minimize: %v on %v", err, h)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid: %v\n%s", err, g)
		}
	}
}

func TestMDTransformPreservesValidity(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(6)
		h := hypergraph.New(n)
		for v := 1; v < n; v++ {
			h.AddEdge(r.Intn(v), v)
		}
		g, err := Construct(h)
		if err != nil {
			t.Fatal(err)
		}
		md := MDTransform(g)
		if err := md.Validate(); err != nil {
			t.Fatalf("MDTransform broke validity: %v\nbefore:\n%s\nafter:\n%s", err, g, md)
		}
		if md.InternalNodes() > g.InternalNodes() {
			t.Errorf("MDTransform increased internal nodes: %d -> %d",
				g.InternalNodes(), md.InternalNodes())
		}
	}
}

func TestDepth(t *testing.T) {
	h := hypergraph.ExampleH1()
	g, err := Construct(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Depth(); got != 1 {
		t.Errorf("star GHD depth = %d, want 1", got)
	}
}
