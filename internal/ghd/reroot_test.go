package ghd

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
)

// TestReRootPreservesValidity re-roots random forest GHDs at every node
// and revalidates: the running intersection property is unrooted, so
// every re-rooting must stay a valid GHD covering the same edges.
func TestReRootPreservesValidity(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(6)
		h := hypergraph.New(n)
		for v := 1; v < n; v++ {
			h.AddEdge(r.Intn(v), v)
		}
		g, err := Construct(h)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			rr := g.ReRoot(v)
			if rr.Root != v {
				t.Fatalf("ReRoot(%d).Root = %d", v, rr.Root)
			}
			if err := rr.Validate(); err != nil {
				t.Fatalf("re-rooted at %d invalid: %v\noriginal:\n%s", v, err, g)
			}
			if rr.NumNodes() != g.NumNodes() {
				t.Fatal("ReRoot changed node count")
			}
		}
	}
}

// TestReRootIdempotentAtRoot keeps the tree identical when re-rooting
// at the existing root.
func TestReRootIdempotentAtRoot(t *testing.T) {
	g, err := Construct(hypergraph.ExampleH2())
	if err != nil {
		t.Fatal(err)
	}
	rr := g.ReRoot(g.Root)
	for v := range g.Parent {
		if rr.Parent[v] != g.Parent[v] {
			t.Fatalf("parent of %d changed: %d -> %d", v, g.Parent[v], rr.Parent[v])
		}
	}
}

// TestReRootInternalCount verifies that re-rooting a star GHD at a leaf
// adds exactly one internal node (the old leaf becomes a chain head).
func TestReRootInternalCount(t *testing.T) {
	g, err := Minimize(hypergraph.ExampleH1())
	if err != nil {
		t.Fatal(err)
	}
	if g.InternalNodes() != 1 {
		t.Fatalf("star GHD internal = %d, want 1", g.InternalNodes())
	}
	// Find a leaf.
	ch := g.Children()
	leaf := -1
	for v := range ch {
		if len(ch[v]) == 0 {
			leaf = v
			break
		}
	}
	rr := g.ReRoot(leaf)
	if err := rr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := rr.InternalNodes(); got != 2 {
		t.Errorf("re-rooted internal = %d, want 2", got)
	}
}

// TestWidthStability: Minimize must be deterministic across calls.
func TestWidthStability(t *testing.T) {
	for i := 0; i < 3; i++ {
		y1 := MustWidth(hypergraph.ExampleH3())
		y2 := MustWidth(hypergraph.ExampleH3())
		if y1 != y2 {
			t.Fatalf("width changed across calls: %d vs %d", y1, y2)
		}
	}
}

// TestDuplicateEdgesGHD covers multi-hypergraphs: H0's four identical
// self-loops each need their own node.
func TestDuplicateEdgesGHD(t *testing.T) {
	h := hypergraph.ExampleH0()
	g, err := Minimize(h)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4 (one per duplicate edge)", g.NumNodes())
	}
	seen := map[int]bool{}
	for e, v := range g.NodeOf {
		if seen[v] {
			t.Errorf("edge %d shares node %d with another edge", e, v)
		}
		seen[v] = true
	}
	if got := g.InternalNodes(); got != 1 {
		t.Errorf("y(H0) = %d, want 1", got)
	}
}
