package ghd

import (
	"fmt"

	"repro/internal/hypergraph"
)

// Construct builds a GYO-GHD of h following Construction 2.8:
//
//   - Run GYOA and decompose h into the core C(H) and the pendant forest
//     W(H) (hypergraph.Decompose).
//   - If the core is nonempty (or the forest has several trees), create a
//     fat root r′ with χ(r′) = V(C(H)); attach one leaf node per core
//     edge and the root node of each forest tree to r′.
//   - Each forest tree contributes a reduced-GHD whose shape follows the
//     decomposition's within-tree parents.
//
// For a connected acyclic h the fat root is omitted and the result is the
// plain reduced-GHD rooted at the tree root, matching the paper's
// Figure 2 decompositions T₁/T₂ of H₂.
func Construct(h *hypergraph.Hypergraph) (*GHD, error) {
	d := hypergraph.Decompose(h)
	g, err := FromDecomposition(h, d)
	if err != nil {
		return nil, err
	}
	// Witness chains can be needlessly deep (a star query drains as a
	// chain of (A,·) edges); the MD transform (Construction F.6)
	// re-attaches nodes as high as the running intersection property
	// allows, recovering the flat star. It never increases the internal
	// node count.
	if md := MDTransform(g); md.Validate() == nil && md.InternalNodes() <= g.InternalNodes() {
		return md, nil
	}
	return g, nil
}

// FromDecomposition assembles the GYO-GHD for a precomputed
// decomposition. The result is always validated before being returned.
func FromDecomposition(h *hypergraph.Hypergraph, d *hypergraph.Decomposition) (*GHD, error) {
	if h.NumEdges() == 0 {
		return nil, fmt.Errorf("ghd: hypergraph has no edges")
	}
	g := &GHD{H: h, CoreRoot: -1, NodeOf: make([]int, h.NumEdges())}
	for i := range g.NodeOf {
		g.NodeOf[i] = -1
	}

	needFatRoot := !d.CoreIsEmpty() || len(d.Trees) > 1
	if needFatRoot {
		g.CoreRoot = 0
		g.Root = 0
		g.Bags = append(g.Bags, append([]int(nil), d.CoreVertices...))
		g.Labels = append(g.Labels, append([]int(nil), d.Core...))
		g.Parent = append(g.Parent, -1)
	}

	addNode := func(edge, parent int) int {
		v := len(g.Bags)
		g.Bags = append(g.Bags, append([]int(nil), h.Edge(edge)...))
		g.Labels = append(g.Labels, []int{edge})
		g.Parent = append(g.Parent, parent)
		g.NodeOf[edge] = v
		return v
	}

	// Core edges become leaf children of the fat root.
	for _, e := range d.Core {
		addNode(e, g.CoreRoot)
	}

	// Removed edges hang under their GYO subsumption witness (the
	// Tarjan–Yannakakis join-tree rule): when e was deleted because its
	// reduced vertex set was contained in f, the shared vertices of e
	// with the rest of the hypergraph are exactly that reduced set, so
	// attaching e below f preserves the running intersection property.
	// Edges whose witness is a core edge (or nothing) attach to the fat
	// root — χ(r′) = V(C(H)) covers their reduced set — matching
	// Construction 2.8's "add the edge (r′, r′′)".
	inCore := make(map[int]bool, len(d.Core))
	for _, e := range d.Core {
		inCore[e] = true
	}
	// Witnesses are removed after the edges they subsume, so placing in
	// reverse removal order guarantees parents exist.
	order := d.GYO.RemovedOrder
	for i := len(order) - 1; i >= 0; i-- {
		e := order[i]
		w := d.GYO.Parent[e]
		switch {
		case w == -1 || inCore[w]:
			if needFatRoot {
				addNode(e, g.CoreRoot)
			} else {
				// The unique drained edge of a connected acyclic
				// hypergraph becomes the root.
				v := addNode(e, -1)
				g.Root = v
			}
		default:
			addNode(e, g.NodeOf[w])
		}
	}

	for e, v := range g.NodeOf {
		if v == -1 {
			return nil, fmt.Errorf("ghd: edge %d not placed (decomposition incomplete)", e)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("ghd: construction produced invalid GHD: %w", err)
	}
	return g, nil
}

// MDTransform applies Construction F.6 to g: for each parent-child pair
// (u, v), if a strict predecessor w of u satisfies χ(v) ∩ χ(u) ⊆ χ(w),
// re-attach v to the topmost such w. The process repeats to fixpoint and
// preserves GHD validity (the paper bounds the number of steps by
// |E(T)|·y(T), Corollary F.7). The transform tends to flatten the tree,
// raising the leaf count, and establishes the private-attribute property
// of Lemma F.3 used by the hypergraph lower bound.
func MDTransform(g *GHD) *GHD {
	out := &GHD{
		H:        g.H,
		Bags:     append([][]int(nil), g.Bags...),
		Labels:   append([][]int(nil), g.Labels...),
		Parent:   append([]int(nil), g.Parent...),
		Root:     g.Root,
		NodeOf:   append([]int(nil), g.NodeOf...),
		CoreRoot: g.CoreRoot,
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < out.NumNodes(); v++ {
			u := out.Parent[v]
			if u == -1 {
				continue
			}
			shared := hypergraph.IntersectSorted(out.Bags[v], out.Bags[u])
			// Walk ancestors of u from the top down and take the topmost
			// w whose bag covers the shared set.
			var ancestors []int
			for w := out.Parent[u]; w != -1; w = out.Parent[w] {
				ancestors = append(ancestors, w)
			}
			for i := len(ancestors) - 1; i >= 0; i-- {
				w := ancestors[i]
				if hypergraph.SubsetSorted(shared, out.Bags[w]) {
					out.Parent[v] = w
					changed = true
					break
				}
			}
		}
	}
	return out
}
