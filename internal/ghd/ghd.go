// Package ghd implements Generalized Hypertree Decompositions (GHDs,
// Definition 2.4 of "Topology Dependent Bounds For FAQs"), the GYO-GHD
// family of Construction 2.8, the paper's new width notion — the
// internal-node-width y(H) (Definition 2.9) — and the MD-GHD transform of
// Construction F.6 used by the hypergraph lower bounds.
package ghd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hypergraph"
)

// GHD is a rooted generalized hypertree decomposition of a hypergraph.
// Node 0..len(Bags)-1 are tree nodes; Parent[v] is the parent node or -1
// for the root. Bags[v] is χ(v) (sorted vertex ids); Labels[v] is λ(v)
// (edge indices of H). NodeOf maps each hyperedge index to the unique
// node v with χ(v) = vertices(e) (the reduced-GHD property); for the
// optional fat core root of Construction 2.8, CoreRoot is its node index,
// or -1 when the decomposition has no core node.
type GHD struct {
	H        *hypergraph.Hypergraph
	Bags     [][]int
	Labels   [][]int
	Parent   []int
	Root     int
	NodeOf   []int // edge index -> node index
	CoreRoot int   // node index of the fat core root, or -1
}

// NumNodes returns the number of tree nodes.
func (g *GHD) NumNodes() int { return len(g.Bags) }

// Children returns the child lists of every node.
func (g *GHD) Children() [][]int {
	ch := make([][]int, len(g.Parent))
	for v, p := range g.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], v)
		}
	}
	return ch
}

// InternalNodes returns y(T): the number of non-leaf nodes of the rooted
// tree (Definition 2.9). A single-node tree has zero internal nodes.
func (g *GHD) InternalNodes() int {
	ch := g.Children()
	y := 0
	for v := range ch {
		if len(ch[v]) > 0 {
			y++
		}
	}
	return y
}

// Depth returns the maximum root-to-leaf distance.
func (g *GHD) Depth() int {
	ch := g.Children()
	var dfs func(v int) int
	dfs = func(v int) int {
		d := 0
		for _, c := range ch[v] {
			if cd := dfs(c) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	return dfs(g.Root)
}

// Validate checks that g is a well-formed GHD of g.H per Definition 2.4:
// the tree is a single rooted tree; every hyperedge e has a node v with
// e ⊆ χ(v) and e ∈ λ(v); and the running intersection property holds
// (for every vertex, the nodes whose bags contain it form a connected
// subtree). It also checks the reduced-GHD property via NodeOf: each
// hyperedge's designated node has a bag exactly equal to the edge.
func (g *GHD) Validate() error {
	n := g.NumNodes()
	if n == 0 {
		return fmt.Errorf("ghd: empty decomposition")
	}
	if g.Root < 0 || g.Root >= n {
		return fmt.Errorf("ghd: root %d out of range", g.Root)
	}
	if len(g.Parent) != n || len(g.Labels) != n {
		return fmt.Errorf("ghd: inconsistent node arrays")
	}
	// Single rooted tree: exactly one root, all nodes reach it.
	for v, p := range g.Parent {
		if p == -1 && v != g.Root {
			return fmt.Errorf("ghd: node %d has no parent but is not the root", v)
		}
		if p == v {
			return fmt.Errorf("ghd: node %d is its own parent", v)
		}
	}
	for v := range g.Parent {
		seen := map[int]bool{}
		for u := v; u != -1; u = g.Parent[u] {
			if seen[u] {
				return fmt.Errorf("ghd: parent cycle at node %d", v)
			}
			seen[u] = true
		}
		if !seen[g.Root] {
			return fmt.Errorf("ghd: node %d not connected to root", v)
		}
	}
	// Coverage + reduced property.
	if len(g.NodeOf) != g.H.NumEdges() {
		return fmt.Errorf("ghd: NodeOf has %d entries for %d edges", len(g.NodeOf), g.H.NumEdges())
	}
	for e := 0; e < g.H.NumEdges(); e++ {
		v := g.NodeOf[e]
		if v < 0 || v >= n {
			return fmt.Errorf("ghd: edge %d mapped to invalid node %d", e, v)
		}
		ev := g.H.Edge(e)
		if !equalInts(g.Bags[v], ev) {
			return fmt.Errorf("ghd: node %d bag %v != edge %d vertices %v (reduced property)",
				v, g.Bags[v], e, ev)
		}
		found := false
		for _, le := range g.Labels[v] {
			if le == e {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("ghd: edge %d missing from λ of its node %d", e, v)
		}
	}
	// Running intersection property.
	for x := 0; x < g.H.NumVertices(); x++ {
		var holders []int
		for v := 0; v < n; v++ {
			if hypergraph.ContainsSorted(g.Bags[v], x) {
				holders = append(holders, v)
			}
		}
		if len(holders) <= 1 {
			continue
		}
		if !connectedInTree(g.Parent, holders) {
			return fmt.Errorf("ghd: RIP violated for vertex %d (%s): holders %v not connected",
				x, g.H.VertexName(x), holders)
		}
	}
	return nil
}

// connectedInTree reports whether the node set forms a connected subtree
// of the rooted tree given by parent pointers.
func connectedInTree(parent []int, nodes []int) bool {
	in := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		in[v] = true
	}
	// The set is connected iff every node except the unique top-most one
	// has its parent in the set. Find depth of each node.
	depth := func(v int) int {
		d := 0
		for u := parent[v]; u != -1; u = parent[u] {
			d++
		}
		return d
	}
	top, topDepth := nodes[0], depth(nodes[0])
	for _, v := range nodes[1:] {
		if d := depth(v); d < topDepth {
			top, topDepth = v, d
		}
	}
	for _, v := range nodes {
		if v != top && !in[parent[v]] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the decomposition as an indented tree.
func (g *GHD) String() string {
	var sb strings.Builder
	ch := g.Children()
	var walk func(v, indent int)
	walk = func(v, indent int) {
		sb.WriteString(strings.Repeat("  ", indent))
		names := make([]string, len(g.Bags[v]))
		for i, x := range g.Bags[v] {
			names[i] = g.H.VertexName(x)
		}
		tag := ""
		if v == g.CoreRoot {
			tag = " [core]"
		}
		fmt.Fprintf(&sb, "(%s)%s\n", strings.Join(names, ","), tag)
		for _, c := range ch[v] {
			walk(c, indent+1)
		}
	}
	walk(g.Root, 0)
	return sb.String()
}

// ReRoot returns a copy of g rooted at the given node. The running
// intersection property is a property of the unrooted tree, so re-rooting
// preserves validity; only the direction of the bottom-up pass (and hence
// the internal node count) changes.
func (g *GHD) ReRoot(newRoot int) *GHD {
	out := &GHD{
		H:        g.H,
		Bags:     g.Bags,
		Labels:   g.Labels,
		Parent:   make([]int, len(g.Parent)),
		Root:     newRoot,
		NodeOf:   g.NodeOf,
		CoreRoot: g.CoreRoot,
	}
	adj := make([][]int, g.NumNodes())
	for v, p := range g.Parent {
		if p >= 0 {
			adj[v] = append(adj[v], p)
			adj[p] = append(adj[p], v)
		}
	}
	for i := range out.Parent {
		out.Parent[i] = -1
	}
	visited := make([]bool, g.NumNodes())
	visited[newRoot] = true
	queue := []int{newRoot}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				out.Parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return out
}

// Relabel transports g onto an isomorphic hypergraph h: varTo maps each
// of g's vertex ids to its id in h (a bijection on the vertices used),
// and edgeTo maps each of g's hyperedge indices to the matching edge
// index of h (edgeTo[e] must have exactly the varTo-image of g's edge e
// as its vertex set). The tree shape is unchanged; bags and labels are
// rewritten, and bags re-sorted under the new ids.
//
// This is the plan-cache binding step: a compiled decomposition lives
// over the canonical (renaming-invariant) hypergraph, and Relabel
// instantiates it for a request's concrete variable ids in O(plan size)
// — no re-derivation. Validity is preserved because the running
// intersection property and the reduced-GHD property are invariant under
// hypergraph isomorphism; callers wanting the guarantee checked can run
// Validate on the result.
func (g *GHD) Relabel(h *hypergraph.Hypergraph, varTo map[int]int, edgeTo []int) (*GHD, error) {
	if len(edgeTo) != g.H.NumEdges() {
		return nil, fmt.Errorf("ghd: edge map has %d entries for %d edges", len(edgeTo), g.H.NumEdges())
	}
	out := &GHD{
		H:        h,
		Bags:     make([][]int, len(g.Bags)),
		Labels:   make([][]int, len(g.Labels)),
		Parent:   append([]int(nil), g.Parent...),
		Root:     g.Root,
		NodeOf:   make([]int, h.NumEdges()),
		CoreRoot: g.CoreRoot,
	}
	for v, bag := range g.Bags {
		nb := make([]int, len(bag))
		for i, x := range bag {
			nx, ok := varTo[x]
			if !ok {
				return nil, fmt.Errorf("ghd: vertex %d missing from relabel map", x)
			}
			nb[i] = nx
		}
		sort.Ints(nb)
		out.Bags[v] = nb
	}
	for v, label := range g.Labels {
		nl := make([]int, len(label))
		for i, e := range label {
			nl[i] = edgeTo[e]
		}
		sort.Ints(nl)
		out.Labels[v] = nl
	}
	for i := range out.NodeOf {
		out.NodeOf[i] = -1
	}
	for e, v := range g.NodeOf {
		ne := edgeTo[e]
		if ne < 0 || ne >= h.NumEdges() || out.NodeOf[ne] != -1 {
			return nil, fmt.Errorf("ghd: edge map entry %d -> %d is out of range or not injective", e, ne)
		}
		out.NodeOf[ne] = v
	}
	return out, nil
}

// PostOrder returns the nodes in post-order (children before parents),
// the traversal order of the bottom-up star protocols (Lemma 4.1) and the
// centralized GHD solver (Theorem G.3).
func (g *GHD) PostOrder() []int {
	ch := g.Children()
	for _, c := range ch {
		sort.Ints(c)
	}
	var out []int
	var walk func(v int)
	walk = func(v int) {
		for _, c := range ch[v] {
			walk(c)
		}
		out = append(out, v)
	}
	walk(g.Root)
	return out
}
