package ghd

import (
	"fmt"

	"repro/internal/hypergraph"
)

// MaxExactTrees bounds the number of labeled trees (m^(m-2) for m nodes)
// the exhaustive width search will enumerate. Above the budget Minimize
// falls back to the construction heuristic plus MDTransform; per
// Appendix F the paper's tightness results only need an O(1)-factor
// approximation of the internal-node-width.
const MaxExactTrees = 20000

// exactBudgetOK reports whether enumerating all labeled trees on m nodes
// fits the MaxExactTrees budget.
func exactBudgetOK(m int) bool {
	if m <= 3 {
		return true
	}
	count := 1
	for i := 0; i < m-2; i++ {
		count *= m
		if count > MaxExactTrees {
			return false
		}
	}
	return true
}

// Width returns the internal-node-width y(H) (Definition 2.9): the
// minimum number of internal nodes over GYO-GHDs of h, computed exactly
// for small hypergraphs and by the construction heuristic otherwise.
func Width(h *hypergraph.Hypergraph) (int, error) {
	g, err := Minimize(h)
	if err != nil {
		return 0, err
	}
	return g.InternalNodes(), nil
}

// Minimize returns a GYO-GHD of h with (near-)minimal internal node
// count. Strategy: build the Construction 2.8 baseline, flatten it with
// MDTransform, and — when the instance is small enough — exhaustively
// search all valid tree shapes of the GYO-GHD family.
func Minimize(h *hypergraph.Hypergraph) (*GHD, error) {
	base, err := Construct(h)
	if err != nil {
		return nil, err
	}
	best := base
	if md := MDTransform(base); md.InternalNodes() < best.InternalNodes() {
		if md.Validate() == nil {
			best = md
		}
	}
	if alt := minimizeExact(h); alt != nil && alt.InternalNodes() < best.InternalNodes() {
		best = alt
	}
	return best, nil
}

// minimizeExact enumerates the GYO-GHD family exhaustively:
//
//   - acyclic connected h: all labeled trees over the edge nodes
//     (reduced-GHDs), rooted to minimize internal nodes;
//   - otherwise: the fat core root r′ is fixed, core edges hang off r′ as
//     leaves, and all tree shapes over {r′} ∪ removed edges are tried.
//
// Returns nil when the instance exceeds the MaxExactTrees budget or no valid shape
// exists (the latter cannot happen: Construction 2.8 always yields one).
func minimizeExact(h *hypergraph.Hypergraph) *GHD {
	d := hypergraph.Decompose(h)
	needFatRoot := !d.CoreIsEmpty() || len(d.Trees) > 1

	if !needFatRoot {
		m := h.NumEdges()
		if !exactBudgetOK(m) {
			return nil
		}
		var best *GHD
		forEachLabeledTree(m, func(adj [][]int) {
			g := ghdFromEdgeTree(h, adj)
			if g == nil {
				return
			}
			if best == nil || g.InternalNodes() < best.InternalNodes() {
				best = g
			}
		})
		return best
	}

	// Fat-root case: node 0 = r′; nodes 1..m = removed edges.
	var removedEdges []int
	for _, t := range d.Trees {
		removedEdges = append(removedEdges, t.Edges...)
	}
	m := len(removedEdges)
	if !exactBudgetOK(m + 1) {
		return nil
	}
	var best *GHD
	forEachLabeledTree(m+1, func(adj [][]int) {
		g := ghdFromFatRootTree(h, d, removedEdges, adj)
		if g == nil {
			return
		}
		if best == nil || g.InternalNodes() < best.InternalNodes() {
			best = g
		}
	})
	return best
}

// forEachLabeledTree enumerates all labeled trees on m nodes via Prüfer
// sequences and invokes fn with each tree's adjacency list. m = 1 yields
// the single-node tree; m = 2 the single edge.
func forEachLabeledTree(m int, fn func(adj [][]int)) {
	switch {
	case m <= 0:
		return
	case m == 1:
		fn(make([][]int, 1))
		return
	case m == 2:
		fn([][]int{{1}, {0}})
		return
	}
	seq := make([]int, m-2)
	for {
		fn(pruferDecode(seq, m))
		// Increment the sequence like an odometer base m.
		i := len(seq) - 1
		for ; i >= 0; i-- {
			seq[i]++
			if seq[i] < m {
				break
			}
			seq[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// pruferDecode converts a Prüfer sequence into the adjacency list of the
// corresponding labeled tree on m nodes.
func pruferDecode(seq []int, m int) [][]int {
	deg := make([]int, m)
	for i := range deg {
		deg[i] = 1
	}
	for _, x := range seq {
		deg[x]++
	}
	adj := make([][]int, m)
	addEdge := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	used := make([]bool, m)
	for _, x := range seq {
		leaf := -1
		for v := 0; v < m; v++ {
			if deg[v] == 1 && !used[v] {
				leaf = v
				break
			}
		}
		addEdge(leaf, x)
		used[leaf] = true
		deg[x]--
	}
	a, b := -1, -1
	for v := 0; v < m; v++ {
		if deg[v] == 1 && !used[v] {
			if a == -1 {
				a = v
			} else {
				b = v
			}
		}
	}
	addEdge(a, b)
	return adj
}

// ghdFromEdgeTree builds a reduced-GHD whose node i carries hyperedge i,
// with tree shape adj, rooted to minimize internal nodes; returns nil if
// the shape violates the GHD properties.
func ghdFromEdgeTree(h *hypergraph.Hypergraph, adj [][]int) *GHD {
	m := h.NumEdges()
	// Root at a maximum-degree node: internal nodes of a rooted tree =
	// (#nodes with degree ≥ 2) + (1 if the root is a leaf), so rooting
	// at an internal vertex is optimal.
	root := 0
	for v := 1; v < m; v++ {
		if len(adj[v]) > len(adj[root]) {
			root = v
		}
	}
	g := &GHD{H: h, CoreRoot: -1, Root: root}
	g.Bags = make([][]int, m)
	g.Labels = make([][]int, m)
	g.Parent = make([]int, m)
	g.NodeOf = make([]int, m)
	for e := 0; e < m; e++ {
		g.Bags[e] = append([]int(nil), h.Edge(e)...)
		g.Labels[e] = []int{e}
		g.NodeOf[e] = e
		g.Parent[e] = -1
	}
	// Orient the tree away from the root.
	visited := make([]bool, m)
	visited[root] = true
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				g.Parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	if g.Validate() != nil {
		return nil
	}
	return g
}

// ghdFromFatRootTree builds a Construction 2.8 GHD with the fat root as
// tree node 0 and removedEdges[i-1] as tree node i, with core edges
// attached as leaves of the root; returns nil when invalid.
func ghdFromFatRootTree(h *hypergraph.Hypergraph, d *hypergraph.Decomposition, removedEdges []int, adj [][]int) *GHD {
	m := len(removedEdges)
	total := 1 + m + len(d.Core)
	g := &GHD{H: h, CoreRoot: 0, Root: 0}
	g.Bags = make([][]int, total)
	g.Labels = make([][]int, total)
	g.Parent = make([]int, total)
	g.NodeOf = make([]int, h.NumEdges())
	for i := range g.NodeOf {
		g.NodeOf[i] = -1
	}
	g.Bags[0] = append([]int(nil), d.CoreVertices...)
	g.Labels[0] = append([]int(nil), d.Core...)
	g.Parent[0] = -1
	for i, e := range removedEdges {
		v := 1 + i
		g.Bags[v] = append([]int(nil), h.Edge(e)...)
		g.Labels[v] = []int{e}
		g.NodeOf[e] = v
	}
	for i, e := range d.Core {
		v := 1 + m + i
		g.Bags[v] = append([]int(nil), h.Edge(e)...)
		g.Labels[v] = []int{e}
		g.NodeOf[e] = v
		g.Parent[v] = 0
	}
	// Orient the enumerated tree away from node 0 (= r′).
	visited := make([]bool, m+1)
	visited[0] = true
	queue := []int{0}
	g.Parent[0] = -1
	order := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				g.Parent[v] = u
				queue = append(queue, v)
				order++
			}
		}
	}
	if order != m+1 {
		return nil
	}
	if g.Validate() != nil {
		return nil
	}
	return g
}

// MustWidth is Width for callers holding hypergraphs already validated by
// construction (tests, benchmarks); it panics on error.
func MustWidth(h *hypergraph.Hypergraph) int {
	w, err := Width(h)
	if err != nil {
		panic(fmt.Sprintf("ghd: %v", err))
	}
	return w
}
