package plan

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/fault"
)

// compileSite injects faults into the singleflight compile path: an
// error-mode hit fails the flight (and, like any failed compile, is not
// cached — waiters see the error, a later request retries); a panic-mode
// hit exercises the panic-settle path below.
var compileSite = fault.Register("plan.compile")

// DefaultCacheSize is the plan capacity a zero/negative NewCache argument
// falls back to.
const DefaultCacheSize = 256

// Cache is a concurrent LRU of compiled plans with singleflight
// compilation: when N goroutines request the same (not yet cached) key
// simultaneously, exactly one runs the compile function while the others
// block on the entry's ready channel and share the result. Failed
// compiles are not cached — the entry is removed so a later request
// retries — but every waiter of the failed flight receives the error.
//
// Eviction is strict LRU over completed entries, bounded by capacity;
// in-flight entries are never evicted (they are pinned until their
// compile resolves), so the momentary size can exceed capacity by the
// number of concurrent distinct compiles, settling back under the bound
// as flights land.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // key -> element; Value is *cacheEntry
	lru      *list.List               // front = most recently used

	hits, misses, compiles, failures, evictions, waits int64
}

type cacheEntry struct {
	key   string
	plan  *Plan
	err   error
	ready chan struct{} // closed when plan/err are set
}

// NewCache returns an empty cache bounded to the given number of plans
// (capacity < 1 uses DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Get returns the cached plan for key, compiling it with compile on a
// miss. The second result reports whether the plan was served from cache
// (true also for waiters that joined an in-flight compile — they paid no
// compile work themselves).
func (c *Cache) Get(key string, compile func() (*Plan, error)) (*Plan, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.lru.MoveToFront(el)
		c.hits++
		metricCacheHits.Inc()
		if !entryReady(ent) {
			// Joining another goroutine's in-flight compile: a
			// singleflight wait, counted before blocking on ready.
			c.waits++
			metricCacheWaits.Inc()
		}
		c.mu.Unlock()
		<-ent.ready
		if ent.err != nil {
			return nil, true, ent.err
		}
		ent.plan.recordHit()
		return ent.plan, true, nil
	}
	ent := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(ent)
	c.misses++
	metricCacheMisses.Inc()
	c.mu.Unlock()

	// Singleflight: only this goroutine compiles key. The deferred
	// settle also runs if compile panics (e.g. under an http handler's
	// recover), so waiters are released and the key is not poisoned —
	// the panic re-propagates after cleanup.
	var p *Plan
	var err error
	settled := false
	settle := func() {
		c.mu.Lock()
		ent.plan, ent.err = p, err
		close(ent.ready)
		if err != nil {
			c.failures++
			metricCacheFailures.Inc()
			if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == ent {
				c.lru.Remove(el)
				delete(c.entries, key)
			}
		} else {
			c.compiles++
			metricCacheCompiles.Inc()
			c.evictLocked()
		}
		c.mu.Unlock()
	}
	defer func() {
		if !settled {
			err = fmt.Errorf("plan: compile panicked for key %q", key)
			settle()
		}
	}()
	if err = compileSite.Hit(nil); err == nil {
		p, err = compile()
	}
	settled = true
	settle()
	return p, false, err
}

// evictLocked removes least-recently-used completed entries until the
// size bound holds. Called with mu held.
func (c *Cache) evictLocked() {
	for c.lru.Len() > c.capacity {
		el := c.lru.Back()
		evicted := false
		for el != nil {
			ent := el.Value.(*cacheEntry)
			prev := el.Prev()
			if entryReady(ent) {
				c.lru.Remove(el)
				delete(c.entries, ent.key)
				c.evictions++
				metricCacheEvictions.Inc()
				evicted = true
				break
			}
			el = prev // in-flight: pinned, look further up
		}
		if !evicted {
			return // everything over budget is in flight
		}
	}
}

func entryReady(ent *cacheEntry) bool {
	select {
	case <-ent.ready:
		return true
	default:
		return false
	}
}

// Len returns the number of resident entries (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Reset drops every completed entry and all counters. In-flight entries
// survive (their compilers hold references), keeping Reset safe under
// concurrency; the cold-start measurement path of cmd/faqload calls this
// between requests.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var el *list.Element
	for el = c.lru.Back(); el != nil; {
		prev := el.Prev()
		if ent := el.Value.(*cacheEntry); entryReady(ent) {
			c.lru.Remove(el)
			delete(c.entries, ent.key)
		}
		el = prev
	}
	c.hits, c.misses, c.compiles, c.failures, c.evictions, c.waits = 0, 0, 0, 0, 0, 0
}

// CacheStats is the JSON-friendly counter snapshot for /stats.
type CacheStats struct {
	Capacity  int   `json:"capacity"`
	Len       int   `json:"len"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Compiles  int64 `json:"compiles"`
	Failures  int64 `json:"failures"`
	Evictions int64 `json:"evictions"`
	Waits     int64 `json:"waits"` // singleflight joins on in-flight compiles
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Len:       c.lru.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Compiles:  c.compiles,
		Failures:  c.failures,
		Evictions: c.evictions,
		Waits:     c.waits,
	}
}

// Plans snapshots every completed resident plan, most recently used
// first — the /stats plan table.
func (c *Cache) Plans() []Snapshot {
	c.mu.Lock()
	var plans []*Plan
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if ent := el.Value.(*cacheEntry); entryReady(ent) && ent.err == nil {
			plans = append(plans, ent.plan)
		}
	}
	c.mu.Unlock()
	out := make([]Snapshot, len(plans))
	for i, p := range plans {
		out[i] = p.Snapshot()
	}
	return out
}
