package plan

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
)

// NodeBound is the per-GHD-node slice of the paper's structural bounds: a
// node's bag size caps its message arity, and by eq. 24 every message of
// the bottom-up pass carries at most N = max_e |R_e| tuples, so a node's
// materialization is bounded by N^Bag tuples (N for label-covered acyclic
// nodes). Planners surface these through /stats as the cost estimates a
// query optimizer would consult.
type NodeBound struct {
	Bag      int  `json:"bag"`      // |χ(v)|
	Labels   int  `json:"labels"`   // |λ(v)|
	Internal bool `json:"internal"` // counted by y(H) (Definition 2.9)
}

// TupleBound returns the worst-case output cardinality of the node for
// size parameter n = max_e |R_e|: label-covered nodes (one hyperedge,
// the GYO-GHD common case) emit messages of at most n tuples (eq. 24);
// a fat core root materializes up to n^|χ(v)| tuples, exactly as the
// paper's trivial protocol materializes the cyclic core at one player.
func (b NodeBound) TupleBound(n int) float64 {
	if n < 1 {
		n = 1
	}
	if b.Labels <= 1 {
		return float64(n)
	}
	return math.Pow(float64(n), float64(b.Bag))
}

// Plan is one compiled query shape: the data-independent planning output
// that every request sharing the shape reuses. The decomposition lives
// over the canonical hypergraph of the shape's Fingerprint; Bind
// relabels it onto a request's concrete variable ids.
type Plan struct {
	Key  string
	Hash uint64

	// H is the canonical hypergraph, Free the canonical free variables.
	H    *hypergraph.Hypergraph
	Free []int

	// G is the compiled decomposition: width-minimized GYO-GHD re-rooted
	// so the root bag covers Free (faq.PlanGHD). Nil iff Fallback.
	G *ghd.GHD
	// Fallback marks shapes violating the paper's free-variable
	// restriction (F ⊄ every bag, Appendix G.5): no GHD pass can deliver
	// the marginal, so the service executes faq.BruteForce instead. The
	// failed planning attempt is itself worth caching.
	Fallback bool

	// Structural parameters (zero when Fallback): internal-node-width
	// y(H) of the chosen decomposition, core size n₂(H), tree depth, and
	// the per-node bounds.
	Y          int
	N2         int
	Depth      int
	NodeBounds []NodeBound

	// CompileNS is the wall-clock cost of compiling this plan — the work
	// a cache hit saves.
	CompileNS int64

	hits   atomic.Int64
	execs  atomic.Int64
	shapes atomic.Pointer[[]exec.TaskShape]
}

// Compile derives the Plan of a canonical shape. It is the expensive step
// the cache runs under singleflight: GYO decomposition, width-minimized
// GHD search (exhaustive for small shapes), re-rooting for the free
// variables, and the structural bounds.
func Compile(fp *Fingerprint) (*Plan, error) {
	t0 := time.Now()
	h := hypergraph.New(fp.NumVars)
	for _, vs := range fp.CanonEdges {
		h.AddEdge(vs...)
	}
	p := &Plan{
		Key:  fp.Key,
		Hash: fp.Hash,
		H:    h,
		Free: append([]int(nil), fp.CanonFree...),
	}
	g, err := faq.PlanGHD(h, p.Free)
	switch {
	case errors.Is(err, faq.ErrFreeOutsideRoot):
		p.Fallback = true
	case err != nil:
		return nil, err
	default:
		p.G = g
		p.Y = g.InternalNodes()
		p.N2 = hypergraph.Decompose(h).N2()
		p.Depth = g.Depth()
		ch := g.Children()
		p.NodeBounds = make([]NodeBound, g.NumNodes())
		for v := 0; v < g.NumNodes(); v++ {
			p.NodeBounds[v] = NodeBound{
				Bag:      len(g.Bags[v]),
				Labels:   len(g.Labels[v]),
				Internal: len(ch[v]) > 0,
			}
		}
	}
	p.CompileNS = time.Since(t0).Nanoseconds()
	return p, nil
}

// Bind instantiates the compiled decomposition for a request hypergraph
// via the Fingerprint that matched this plan: an O(plan size) relabeling
// (ghd.Relabel), validated so that a fingerprint collision surfaces as an
// error instead of a silently wrong execution. The bound GHD feeds
// faq.SolveOnGHD / protocol.RunOnGHD directly.
func (p *Plan) Bind(fp *Fingerprint, h *hypergraph.Hypergraph) (*ghd.GHD, error) {
	if p.Fallback {
		return nil, fmt.Errorf("plan: %w", faq.ErrFreeOutsideRoot)
	}
	if fp.Key != p.Key {
		return nil, fmt.Errorf("plan: fingerprint key mismatch (plan %016x, request %016x)", p.Hash, fp.Hash)
	}
	if h.NumEdges() != len(fp.EdgeTo) {
		return nil, fmt.Errorf("plan: request has %d edges, fingerprint %d", h.NumEdges(), len(fp.EdgeTo))
	}
	// Invert the request→canonical maps for Relabel (canonical→request).
	varTo := make(map[int]int, fp.NumVars)
	for req, canon := range fp.VarTo {
		if canon >= 0 {
			varTo[canon] = req
		}
	}
	edgeTo := make([]int, len(fp.EdgeTo))
	for req, canon := range fp.EdgeTo {
		edgeTo[canon] = req
	}
	g, err := p.G.Relabel(h, varTo, edgeTo)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("plan: bound decomposition invalid (fingerprint collision?): %w", err)
	}
	return g, nil
}

// EstimateBytes bounds the peak materialization of executing this plan
// on a request with size parameter n = max_e |R_e|, in bytes: the sum of
// the per-node TupleBounds priced at the columnar layout (4 bytes per
// int32 column plus an 8-byte annotation). Fallback plans price the full
// brute-force join over every variable. This is the admission-control
// estimate behind service memory budgets — structural, data-independent,
// and deliberately pessimistic (a float so huge bounds saturate instead
// of overflowing).
func (p *Plan) EstimateBytes(n int) float64 {
	if n < 1 {
		n = 1
	}
	rowBytes := func(arity int) float64 { return float64(4*arity + 8) }
	if p.Fallback {
		vars := p.H.NumVertices()
		return math.Pow(float64(n), float64(vars)) * rowBytes(vars)
	}
	total := 0.0
	for _, b := range p.NodeBounds {
		total += b.TupleBound(n) * rowBytes(b.Bag)
	}
	return total
}

// RecordExec books one execution of the plan and folds the measured
// per-node costs (faq.SolveOnGHDCtx's ForestTimed vector) into the
// plan's task shapes — the "measured TaskShapes from prior runs" that
// /stats and schedule-replay accounting read. Latest run wins; callers
// pass nil costs to count an execution without a measurement.
func (p *Plan) RecordExec(costs []int64) {
	p.execs.Add(1)
	if len(costs) > 0 {
		shapes := exec.AtomicShapes(costs)
		p.shapes.Store(&shapes)
	}
}

// recordHit books one cache hit (called by the Cache).
func (p *Plan) recordHit() { p.hits.Add(1) }

// Shapes returns the most recently measured task shapes, or nil before
// the first measured execution.
func (p *Plan) Shapes() []exec.TaskShape {
	if s := p.shapes.Load(); s != nil {
		return *s
	}
	return nil
}

// Snapshot is the JSON-friendly view of a plan for /stats.
type Snapshot struct {
	Hash       string      `json:"hash"`
	Y          int         `json:"y"`
	N2         int         `json:"n2"`
	Depth      int         `json:"depth"`
	Nodes      int         `json:"nodes"`
	Fallback   bool        `json:"fallback"`
	CompileNS  int64       `json:"compile_ns"`
	Hits       int64       `json:"hits"`
	Execs      int64       `json:"execs"`
	WorkNS     int64       `json:"work_ns"`      // measured total work, last run
	CritPathNS int64       `json:"crit_path_ns"` // schedule replay at ∞ workers
	NodeBounds []NodeBound `json:"node_bounds,omitempty"`
}

// Snapshot renders the plan's current counters and measured costs.
func (p *Plan) Snapshot() Snapshot {
	s := Snapshot{
		Hash:       fmt.Sprintf("%016x", p.Hash),
		Y:          p.Y,
		N2:         p.N2,
		Depth:      p.Depth,
		Fallback:   p.Fallback,
		CompileNS:  p.CompileNS,
		Hits:       p.hits.Load(),
		Execs:      p.execs.Load(),
		NodeBounds: p.NodeBounds,
	}
	if p.G != nil {
		s.Nodes = p.G.NumNodes()
	}
	if shapes := p.Shapes(); shapes != nil && p.G != nil {
		costs := make([]int64, len(shapes))
		for i, sh := range shapes {
			costs[i] = sh.Work
		}
		s.WorkNS = exec.TotalCost(costs)
		s.CritPathNS = exec.Makespan(p.G.Parent, costs, len(costs))
	}
	return s
}
