package plan

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hypergraph"
)

func pathFingerprint(t *testing.T, k int) *Fingerprint {
	t.Helper()
	h := hypergraph.New(k + 1)
	for i := 0; i < k; i++ {
		h.AddEdge(i, i+1)
	}
	fp, err := Canonicalize(h, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestCacheSingleflight hammers one key from many goroutines (run under
// -race by CI): exactly one compile must run, everyone shares its plan.
func TestCacheSingleflight(t *testing.T) {
	fp := pathFingerprint(t, 3)
	c := NewCache(8)
	var compiles atomic.Int64
	const goroutines = 32
	plans := make([]*Plan, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			p, _, err := c.Get(fp.Key, func() (*Plan, error) {
				compiles.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				return Compile(fp)
			})
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	if got := compiles.Load(); got != 1 {
		t.Fatalf("%d compiles for one key, want 1 (singleflight)", got)
	}
	for i := 1; i < goroutines; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("goroutine %d got a different plan instance", i)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != goroutines-1 || s.Compiles != 1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits / 1 compile", s, goroutines-1)
	}
}

// TestCacheSingleflightManyKeys interleaves distinct keys concurrently:
// one compile per key, no cross-talk. Run under -race by CI.
func TestCacheSingleflightManyKeys(t *testing.T) {
	const keys = 6
	fps := make([]*Fingerprint, keys)
	for k := range fps {
		fps[k] = pathFingerprint(t, k+2)
	}
	c := NewCache(keys)
	compiles := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	for rep := 0; rep < 8; rep++ {
		for k := 0; k < keys; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				p, _, err := c.Get(fps[k].Key, func() (*Plan, error) {
					compiles[k].Add(1)
					return Compile(fps[k])
				})
				if err != nil || p.Key != fps[k].Key {
					t.Errorf("key %d: plan %v err %v", k, p, err)
				}
			}(k)
		}
	}
	wg.Wait()
	for k := range compiles {
		if got := compiles[k].Load(); got != 1 {
			t.Fatalf("key %d compiled %d times, want 1", k, got)
		}
	}
}

// TestCacheLRUEviction fills the cache past capacity and pins the bound,
// the eviction count, and that the evicted (oldest) key recompiles while
// recently used keys stay resident.
func TestCacheLRUEviction(t *testing.T) {
	const capacity = 4
	const extra = 3
	c := NewCache(capacity)
	compiles := map[string]int{}
	get := func(fp *Fingerprint) {
		if _, _, err := c.Get(fp.Key, func() (*Plan, error) {
			compiles[fp.Key]++
			return Compile(fp)
		}); err != nil {
			t.Fatal(err)
		}
	}
	fps := make([]*Fingerprint, capacity+extra)
	for i := range fps {
		fps[i] = pathFingerprint(t, i+2)
		get(fps[i])
		if got := c.Len(); got > capacity {
			t.Fatalf("after %d inserts: Len %d > capacity %d", i+1, got, capacity)
		}
	}
	s := c.Stats()
	if s.Len != capacity || s.Evictions != extra {
		t.Fatalf("stats = %+v, want len %d evictions %d", s, capacity, extra)
	}
	// The oldest keys fell out and recompile; the newest are resident.
	get(fps[0])
	if compiles[fps[0].Key] != 2 {
		t.Fatalf("evicted key compiled %d times, want 2", compiles[fps[0].Key])
	}
	get(fps[len(fps)-1])
	if k := fps[len(fps)-1].Key; compiles[k] != 1 {
		t.Fatalf("resident key compiled %d times, want 1", compiles[k])
	}
}

// TestCacheFailureNotCached pins negative-result handling: a failed
// compile propagates to every waiter but leaves no entry, so the next
// request retries.
func TestCacheFailureNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, err := c.Get("k", func() (*Plan, error) { calls++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed compile cached (calls=%d, want 2)", calls)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("failed entry resident: Len=%d", got)
	}
	if s := c.Stats(); s.Failures != 2 {
		t.Fatalf("failures = %d, want 2", s.Failures)
	}
}

// TestCachePanickingCompileDoesNotPoison: a compile that panics must
// release waiters and leave no wedged entry — the next Get retries.
func TestCachePanickingCompileDoesNotPoison(t *testing.T) {
	c := NewCache(4)
	fp := pathFingerprint(t, 3)

	waiterDone := make(chan error, 1)
	inFlight := make(chan struct{})
	go func() {
		defer func() { recover() }()
		_, _, _ = c.Get(fp.Key, func() (*Plan, error) {
			close(inFlight)
			time.Sleep(5 * time.Millisecond) // let the waiter join the flight
			panic("compile exploded")
		})
	}()
	<-inFlight
	go func() {
		_, _, err := c.Get(fp.Key, func() (*Plan, error) { return Compile(fp) })
		waiterDone <- err
	}()
	select {
	case <-waiterDone:
		// Joined the doomed flight (error) or raced past the cleanup and
		// compiled fresh (nil) — both fine; only wedging is a failure.
	case <-time.After(2 * time.Second):
		t.Fatal("waiter wedged: panicked compile poisoned the key")
	}
	// The key is free again: a fresh Get compiles successfully.
	p, _, err := c.Get(fp.Key, func() (*Plan, error) { return Compile(fp) })
	if err != nil || p == nil {
		t.Fatalf("retry after panic: %v", err)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 3; i++ {
		fp := pathFingerprint(t, i+2)
		if _, _, err := c.Get(fp.Key, func() (*Plan, error) { return Compile(fp) }); err != nil {
			t.Fatal(err)
		}
	}
	c.Reset()
	if got := c.Len(); got != 0 {
		t.Fatalf("Len after Reset = %d", got)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 || s.Compiles != 0 {
		t.Fatalf("counters survived Reset: %+v", s)
	}
}

// TestCompileFallback pins the free-variable-restriction path: a shape
// whose free set fits no bag compiles into a Fallback plan (cached, no
// GHD) instead of erroring.
func TestCompileFallback(t *testing.T) {
	h := hypergraph.New(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	fp, err := Canonicalize(h, []int{0, 2}, nil) // {0,2} fits no bag
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Fallback || p.G != nil {
		t.Fatalf("want Fallback plan without GHD, got %+v", p)
	}
	if _, err := p.Bind(fp, h); err == nil {
		t.Fatal("Bind on a Fallback plan must error")
	}
}

func TestPlanSnapshot(t *testing.T) {
	fp := pathFingerprint(t, 4)
	p, err := Compile(fp)
	if err != nil {
		t.Fatal(err)
	}
	p.RecordExec([]int64{10, 20, 30, 40})
	p.RecordExec(nil) // exec without measurement keeps prior shapes
	s := p.Snapshot()
	if s.Execs != 2 || s.WorkNS != 100 || s.Nodes != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Hash != fmt.Sprintf("%016x", fp.Hash) {
		t.Fatalf("hash mismatch: %s", s.Hash)
	}
}
