package plan

import "repro/internal/obs"

// Plan-cache instrumentation on the process-global registry. The
// registry counters aggregate across every Cache instance in the
// process and are never reset (Prometheus counters are monotone);
// per-instance CacheStats remains the /stats snapshot.
var (
	metricCacheHits = obs.Default().NewCounter("faq_plan_cache_hits_total",
		"Plan-cache lookups served from cache (including singleflight joiners).")
	metricCacheMisses = obs.Default().NewCounter("faq_plan_cache_misses_total",
		"Plan-cache lookups that started a compile.")
	metricCacheCompiles = obs.Default().NewCounter("faq_plan_cache_compiles_total",
		"Plan compiles that completed successfully.")
	metricCacheFailures = obs.Default().NewCounter("faq_plan_cache_failures_total",
		"Plan compiles that failed (entry dropped, waiters got the error).")
	metricCacheEvictions = obs.Default().NewCounter("faq_plan_cache_evictions_total",
		"Completed plans evicted by the LRU bound.")
	metricCacheWaits = obs.Default().NewCounter("faq_plan_cache_singleflight_waits_total",
		"Lookups that blocked on another goroutine's in-flight compile.")
)
