// Package plan is the compiled-plan subsystem: it fingerprints FAQ query
// shapes up to variable renaming, compiles each shape once into a Plan —
// the width-minimized GYO-GHD rooted for the free variables plus the
// paper's structural size/width parameters — and serves compiled plans
// from a concurrent LRU cache with singleflight compilation, so N
// simultaneous requests for the same shape trigger exactly one
// ghd.Minimize. Binding a cached plan to a concrete request is a cheap
// relabeling (ghd.Relabel), never a re-derivation.
package plan

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"repro/internal/hypergraph"
)

// Fingerprint is the canonical, variable-renaming-invariant identity of a
// query shape: two queries whose hypergraphs differ only by a bijection
// on variable ids (with free variables and per-variable aggregates mapped
// consistently) produce equal Keys. The maps translate between a concrete
// request and the canonical shape the compiled Plan lives over.
type Fingerprint struct {
	// Key is the complete canonical encoding — the cache identity (the
	// semiring name is prepended by the caller, since the plan structure
	// itself is semiring-independent). Equal Keys mean isomorphic shapes.
	Key string
	// Hash is the 64-bit FNV-1a of Key, for cheap logging/stats.
	Hash uint64
	// Exact reports whether the canonical labeling search completed
	// within budget. When false the Key is still deterministic for this
	// exact input, but a renamed twin may fingerprint differently (a
	// cache miss, never a wrong plan).
	Exact bool

	// VarTo maps each request variable id to its canonical id (-1 for
	// isolated vertices appearing in no hyperedge — they carry no factor
	// data and are excluded from the shape).
	VarTo []int
	// EdgeTo maps each request hyperedge index to its canonical index.
	EdgeTo []int

	// The canonical shape itself, from which Compile rebuilds the
	// hypergraph: edge vertex lists under canonical ids (each sorted, the
	// list lexicographically sorted), the canonical free list, and the
	// canonical per-variable aggregate names.
	NumVars    int
	CanonEdges [][]int
	CanonFree  []int
	CanonOps   map[int]string
}

// canonBudget bounds the individualization-refinement search (number of
// recursive refine calls). Query hypergraphs are tiny, so the budget is
// generous; pathological highly-symmetric shapes fall back to a
// deterministic (but not renaming-invariant) tie-break instead of
// blowing up — see Fingerprint.Exact.
const canonBudget = 4096

// Canonicalize computes the Fingerprint of a query shape. varOps names
// the aggregate of each bound variable ("" or missing = the semiring ⊕);
// free must be the query's free-variable list. Only the hypergraph
// structure, free set, and aggregate names enter the Key — factor data,
// domain size, and semiring are bound at execution time.
func Canonicalize(h *hypergraph.Hypergraph, free []int, varOps map[int]string) (*Fingerprint, error) {
	if h == nil {
		return nil, fmt.Errorf("plan: nil hypergraph")
	}
	if h.NumEdges() == 0 {
		return nil, fmt.Errorf("plan: hypergraph has no edges")
	}
	n := h.NumVertices()
	isFree := make([]bool, n)
	for _, v := range free {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("plan: free variable %d out of range", v)
		}
		isFree[v] = true
	}
	// Only covered vertices participate in the shape.
	covered := make([]bool, n)
	incident := make([][]int, n) // vertex -> incident edge indices
	for e, vs := range h.Edges() {
		for _, v := range vs {
			covered[v] = true
			incident[v] = append(incident[v], e)
		}
	}
	for _, v := range free {
		if !covered[v] {
			return nil, fmt.Errorf("plan: free variable %d appears in no hyperedge", v)
		}
	}

	c := &canonizer{
		h:        h,
		incident: incident,
		isFree:   isFree,
		opName:   make([]string, n),
		active:   nil,
		budget:   canonBudget,
	}
	for v := 0; v < n; v++ {
		if covered[v] {
			c.active = append(c.active, v)
		}
		if varOps != nil {
			c.opName[v] = varOps[v]
		}
	}

	colors := c.initialColors()
	c.refine(colors)
	perm, exact := c.search(colors)

	fp := &Fingerprint{Exact: exact, NumVars: len(c.active)}
	fp.VarTo = make([]int, n)
	for v := range fp.VarTo {
		fp.VarTo[v] = -1
	}
	for _, v := range c.active {
		fp.VarTo[v] = perm[v]
	}

	// Canonical edges: relabel, sort each, sort the list; ties between
	// duplicate edges are broken by request index, which cannot affect the
	// Key (duplicates encode identically).
	type relEdge struct {
		vs  []int
		req int
	}
	rel := make([]relEdge, h.NumEdges())
	for e, vs := range h.Edges() {
		nv := make([]int, len(vs))
		for i, v := range vs {
			nv[i] = fp.VarTo[v]
		}
		sort.Ints(nv)
		rel[e] = relEdge{nv, e}
	}
	sort.Slice(rel, func(i, j int) bool {
		if c := compareInts(rel[i].vs, rel[j].vs); c != 0 {
			return c < 0
		}
		return rel[i].req < rel[j].req
	})
	fp.EdgeTo = make([]int, h.NumEdges())
	fp.CanonEdges = make([][]int, len(rel))
	for ci, re := range rel {
		fp.EdgeTo[re.req] = ci
		fp.CanonEdges[ci] = re.vs
	}

	for _, v := range free {
		fp.CanonFree = append(fp.CanonFree, fp.VarTo[v])
	}
	sort.Ints(fp.CanonFree)
	fp.CanonOps = make(map[int]string)
	for v, name := range c.opName {
		if name != "" && fp.VarTo[v] >= 0 {
			fp.CanonOps[fp.VarTo[v]] = name
		}
	}

	fp.Key = encodeKey(fp)
	hsh := fnv.New64a()
	hsh.Write([]byte(fp.Key))
	fp.Hash = hsh.Sum64()
	return fp, nil
}

// canonizer runs the individualization-refinement canonical labeling:
// Weisfeiler–Leman color refinement over the vertex/hyperedge incidence
// structure (seeded with free-variable and aggregate markers), and — when
// refinement alone cannot separate symmetric variables — a bounded exact
// search that individualizes one vertex of the first non-singleton color
// class per level and keeps the branch with the lexicographically
// smallest canonical encoding.
type canonizer struct {
	h        *hypergraph.Hypergraph
	incident [][]int
	isFree   []bool
	opName   []string
	active   []int // covered vertices, ascending
	budget   int
}

// initialColors seeds the refinement with every renaming-invariant local
// property: free/bound status, aggregate name, and the multiset of
// incident edge sizes.
func (c *canonizer) initialColors() map[int]int {
	sig := make(map[int]string, len(c.active))
	for _, v := range c.active {
		sizes := make([]int, len(c.incident[v]))
		for i, e := range c.incident[v] {
			sizes[i] = len(c.h.Edge(e))
		}
		sort.Ints(sizes)
		var sb strings.Builder
		if c.isFree[v] {
			sb.WriteString("F|")
		} else {
			sb.WriteString("B|")
		}
		sb.WriteString(c.opName[v])
		sb.WriteByte('|')
		for _, s := range sizes {
			sb.WriteString(strconv.Itoa(s))
			sb.WriteByte(',')
		}
		sig[v] = sb.String()
	}
	return rankBySignature(c.active, sig)
}

// refine iterates WL refinement to a fixpoint: each edge's signature is
// the sorted multiset of its member colors, each vertex's new color the
// pair (old color, sorted multiset of incident edge signatures). The
// number of color classes is non-decreasing, so the loop terminates in at
// most |active| rounds.
func (c *canonizer) refine(colors map[int]int) {
	classes := countClasses(colors)
	for {
		edgeSig := make([]string, c.h.NumEdges())
		for e, vs := range c.h.Edges() {
			cs := make([]int, len(vs))
			for i, v := range vs {
				cs[i] = colors[v]
			}
			sort.Ints(cs)
			var sb strings.Builder
			for _, x := range cs {
				sb.WriteString(strconv.Itoa(x))
				sb.WriteByte(',')
			}
			edgeSig[e] = sb.String()
		}
		sig := make(map[int]string, len(c.active))
		for _, v := range c.active {
			es := make([]string, len(c.incident[v]))
			for i, e := range c.incident[v] {
				es[i] = edgeSig[e]
			}
			sort.Strings(es)
			sig[v] = strconv.Itoa(colors[v]) + "#" + strings.Join(es, ";")
		}
		next := rankBySignature(c.active, sig)
		nc := countClasses(next)
		//faqlint:allow mapiter(order-free copy: each vertex's color is written independently, keyed by v)
		for v, col := range next {
			colors[v] = col
		}
		if nc == classes {
			return
		}
		classes = nc
	}
}

// search completes a stable coloring to a discrete one. If refinement
// already separated every vertex the ranks are the canonical labeling.
// Otherwise it individualizes each member of the first non-singleton
// class in turn, refines, recurses, and keeps the branch whose canonical
// encoding is smallest — an exact canonical form. When the budget runs
// out it falls back to breaking the remaining ties by request id
// (deterministic, not renaming-invariant) and reports exact = false.
func (c *canonizer) search(colors map[int]int) (perm map[int]int, exact bool) {
	target := c.targetClass(colors)
	if target == nil {
		return colorsAsPerm(colors), true
	}
	if c.budget <= 0 {
		return c.fallback(colors), false
	}
	var bestEnc string
	var bestPerm map[int]int
	exact = true
	for _, v := range target {
		if c.budget <= 0 && bestPerm != nil {
			// Unexplored siblings remain: the minimum may be missed, so
			// the result is deterministic but not renaming-invariant.
			exact = false
			break
		}
		c.budget--
		branch := cloneColors(colors)
		branch[v] = len(c.active) // unique marker; refine re-ranks immediately
		c.refine(branch)
		p, ex := c.search(branch)
		if !ex {
			exact = false
		}
		enc := c.encodePerm(p)
		if bestPerm == nil || enc < bestEnc {
			bestEnc, bestPerm = enc, p
		}
	}
	return bestPerm, exact
}

// targetClass returns the members of the first (smallest-color)
// non-singleton color class, or nil when the coloring is discrete. The
// choice is color-based, hence renaming-invariant.
func (c *canonizer) targetClass(colors map[int]int) []int {
	byColor := make(map[int][]int)
	minMulti := -1
	for _, v := range c.active {
		col := colors[v]
		byColor[col] = append(byColor[col], v)
		if len(byColor[col]) > 1 && (minMulti == -1 || col < minMulti) {
			minMulti = col
		}
	}
	if minMulti == -1 {
		return nil
	}
	sort.Ints(byColor[minMulti])
	return byColor[minMulti]
}

// fallback completes a non-discrete coloring deterministically by
// breaking ties on the request vertex id.
func (c *canonizer) fallback(colors map[int]int) map[int]int {
	order := append([]int(nil), c.active...)
	sort.Slice(order, func(i, j int) bool {
		if colors[order[i]] != colors[order[j]] {
			return colors[order[i]] < colors[order[j]]
		}
		return order[i] < order[j]
	})
	perm := make(map[int]int, len(order))
	for rank, v := range order {
		perm[v] = rank
	}
	return perm
}

// encodePerm renders the hypergraph under a candidate labeling — the
// comparison string of the individualization search.
func (c *canonizer) encodePerm(perm map[int]int) string {
	edges := make([][]int, c.h.NumEdges())
	for e, vs := range c.h.Edges() {
		nv := make([]int, len(vs))
		for i, v := range vs {
			nv[i] = perm[v]
		}
		sort.Ints(nv)
		edges[e] = nv
	}
	sort.Slice(edges, func(i, j int) bool { return compareInts(edges[i], edges[j]) < 0 })
	var sb strings.Builder
	for _, vs := range edges {
		for _, x := range vs {
			sb.WriteString(strconv.Itoa(x))
			sb.WriteByte(',')
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// rankBySignature converts per-vertex signature strings into dense color
// ranks (0..k-1 in signature order) — the step that makes color values
// renaming-invariant.
func rankBySignature(active []int, sig map[int]string) map[int]int {
	uniq := make([]string, 0, len(sig))
	seen := make(map[string]bool, len(sig))
	for _, v := range active {
		if s := sig[v]; !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	rank := make(map[string]int, len(uniq))
	for i, s := range uniq {
		rank[s] = i
	}
	colors := make(map[int]int, len(active))
	for _, v := range active {
		colors[v] = rank[sig[v]]
	}
	return colors
}

func countClasses(colors map[int]int) int {
	seen := make(map[int]bool, len(colors))
	//faqlint:allow mapiter(order-free accumulation into a set; only the cardinality is used)
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

func cloneColors(colors map[int]int) map[int]int {
	out := make(map[int]int, len(colors))
	//faqlint:allow mapiter(order-free map copy: writes keyed by k)
	for k, v := range colors {
		out[k] = v
	}
	return out
}

// colorsAsPerm reads a discrete coloring as the canonical labeling (the
// dense ranks are exactly 0..n-1).
func colorsAsPerm(colors map[int]int) map[int]int {
	return cloneColors(colors)
}

func compareInts(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] - b[i]
		}
	}
	return len(a) - len(b)
}

// encodeKey serializes the canonical shape: vertex count, edge list, free
// list, aggregate names. This is the complete cache identity (modulo the
// semiring name the caller prepends).
func encodeKey(fp *Fingerprint) string {
	var sb strings.Builder
	sb.WriteString("v")
	sb.WriteString(strconv.Itoa(fp.NumVars))
	sb.WriteString("|E:")
	for _, vs := range fp.CanonEdges {
		for _, x := range vs {
			sb.WriteString(strconv.Itoa(x))
			sb.WriteByte(',')
		}
		sb.WriteByte(';')
	}
	sb.WriteString("|F:")
	for _, v := range fp.CanonFree {
		sb.WriteString(strconv.Itoa(v))
		sb.WriteByte(',')
	}
	sb.WriteString("|O:")
	ops := make([]int, 0, len(fp.CanonOps))
	for v := range fp.CanonOps {
		ops = append(ops, v)
	}
	sort.Ints(ops)
	for _, v := range ops {
		sb.WriteString(strconv.Itoa(v))
		sb.WriteByte('=')
		sb.WriteString(fp.CanonOps[v])
		sb.WriteByte(',')
	}
	return sb.String()
}
