package plan

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// bitIdentical is the repository's determinism invariant: equal relations
// have identical layouts (schema, row buffer, value bytes).
func bitIdentical[T comparable](a, b *relation.Relation[T]) bool {
	if len(a.Schema()) != len(b.Schema()) || a.Len() != b.Len() {
		return false
	}
	for i := range a.Schema() {
		if a.Schema()[i] != b.Schema()[i] {
			return false
		}
	}
	for i := 0; i < a.Len(); i++ {
		if !slices.Equal(a.Tuple(i), b.Tuple(i)) || a.Value(i) != b.Value(i) {
			return false
		}
	}
	return true
}

func randFactors[T any](s semiring.Semiring[T], h *hypergraph.Hypergraph, n, dom int,
	val func(*rand.Rand) T, r *rand.Rand) []*relation.Relation[T] {
	factors := make([]*relation.Relation[T], h.NumEdges())
	for e := range factors {
		b := relation.NewBuilder(s, h.Edge(e))
		tuple := make([]int, len(h.Edge(e)))
		for i := 0; i < n; i++ {
			for j := range tuple {
				tuple[j] = r.Intn(dom)
			}
			b.Add(tuple, val(r))
		}
		factors[e] = b.Build()
	}
	return factors
}

// checkCachedEqualsFresh runs every test shape through the full plan
// path — canonicalize, compile (via a shared cache), bind, solve — for
// several renamed variants, and compares against the fresh per-query
// faq.Solve. The contract is semiring-dependent: exact semirings
// (Bool, Count) demand bit-identical answers — associative ⊕ makes the
// result independent of which minimal GHD the planner picked — while
// float semirings demand relation.Equal (identical schema and tuples,
// values within the semiring tolerance), because the canonical plan may
// legitimately choose a different minimal decomposition than per-request
// planning and float ⊕ is not associative under re-association. That is
// the same allowance the distributed protocols already need.
func checkCachedEqualsFresh[T comparable](t *testing.T, s semiring.Semiring[T], semName string, exact bool,
	val func(*rand.Rand) T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cache := NewCache(32)
	for _, sh := range testShapes(t) {
		for trial := 0; trial < 3; trial++ {
			perm := r.Perm(sh.h.NumVertices())
			if trial == 0 { // identity first: the canonical shape itself
				for i := range perm {
					perm[i] = i
				}
			}
			rh, rfRaw := renameQuery(sh.h, sh.free, perm)
			rf := append([]int(nil), rfRaw...)
			slices.Sort(rf)
			q := &faq.Query[T]{
				S:       s,
				H:       rh,
				Factors: randFactors(s, rh, 40, 8, val, r),
				Free:    rf,
				DomSize: 8,
			}
			want, err := faq.Solve(q)
			if err != nil {
				t.Fatalf("%s/%s trial %d: fresh solve: %v", semName, sh.name, trial, err)
			}
			fp, err := Canonicalize(q.H, q.Free, nil)
			if err != nil {
				t.Fatal(err)
			}
			p, _, err := cache.Get(semName+"|"+fp.Key, func() (*Plan, error) { return Compile(fp) })
			if err != nil {
				t.Fatal(err)
			}
			g, err := p.Bind(fp, q.H)
			if err != nil {
				t.Fatalf("%s/%s trial %d: bind: %v", semName, sh.name, trial, err)
			}
			got, err := faq.SolveOnGHD(q, g)
			if err != nil {
				t.Fatalf("%s/%s trial %d: cached-plan solve: %v", semName, sh.name, trial, err)
			}
			if exact {
				if !bitIdentical(got, want) {
					t.Fatalf("%s/%s trial %d: cached-plan answer not bit-identical to fresh solve\n got=%v\nwant=%v",
						semName, sh.name, trial, got, want)
				}
			} else if !relation.Equal(s, got, want) {
				t.Fatalf("%s/%s trial %d: cached-plan answer differs from fresh solve\n got=%v\nwant=%v",
					semName, sh.name, trial, got, want)
			}
		}
	}
	// Every renamed variant of a shape must have shared one compile.
	if st := cache.Stats(); st.Compiles != int64(len(testShapes(t))) {
		t.Fatalf("%s: %d compiles for %d shapes ×3 renamings — fingerprints did not share",
			semName, st.Compiles, len(testShapes(t)))
	}
}

func TestCachedPlanEqualsFreshBool(t *testing.T) {
	checkCachedEqualsFresh[bool](t, semiring.Bool{}, "bool", true, func(r *rand.Rand) bool { return r.Intn(4) > 0 }, 501)
}

func TestCachedPlanEqualsFreshCount(t *testing.T) {
	checkCachedEqualsFresh[int64](t, semiring.Count{}, "count", true, func(r *rand.Rand) int64 { return int64(r.Intn(5)) - 1 }, 502)
}

func TestCachedPlanEqualsFreshSumProduct(t *testing.T) {
	checkCachedEqualsFresh[float64](t, semiring.SumProduct{}, "sumproduct", false, func(r *rand.Rand) float64 { return r.Float64() }, 503)
}

func TestCachedPlanEqualsFreshMinPlus(t *testing.T) {
	checkCachedEqualsFresh[float64](t, semiring.MinPlus{}, "minplus", false, func(r *rand.Rand) float64 { return float64(r.Intn(40)) / 8 }, 504)
}

// TestBindRejectsMismatchedFingerprint pins the collision guard: binding
// a plan with a fingerprint of a different shape errors instead of
// executing a wrong decomposition.
func TestBindRejectsMismatchedFingerprint(t *testing.T) {
	a := pathFingerprint(t, 3)
	h := hypergraph.New(6)
	for i := 1; i < 6; i++ {
		h.AddEdge(0, i)
	}
	b, err := Canonicalize(h, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Bind(b, h); err == nil {
		t.Fatal("Bind with mismatched fingerprint must error")
	}
}
