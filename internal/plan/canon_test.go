package plan

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
)

// renameQuery applies a bijection on vertex ids to (h, free): edges keep
// their order, vertex ids permute — the transformation the Fingerprint
// must be invariant under.
func renameQuery(h *hypergraph.Hypergraph, free []int, perm []int) (*hypergraph.Hypergraph, []int) {
	out := hypergraph.New(h.NumVertices())
	for _, vs := range h.Edges() {
		nv := make([]int, len(vs))
		for i, v := range vs {
			nv[i] = perm[v]
		}
		out.AddEdge(nv...)
	}
	nf := make([]int, len(free))
	for i, v := range free {
		nf[i] = perm[v]
	}
	return out, nf
}

func mustCanon(t *testing.T, h *hypergraph.Hypergraph, free []int, ops map[int]string) *Fingerprint {
	t.Helper()
	fp, err := Canonicalize(h, free, ops)
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	return fp
}

// testShapes are the canonicalization fixtures: paths, stars (maximally
// symmetric — the individualization search must resolve the leaf orbit),
// a cyclic triangle with a pendant, duplicate edges, and the paper's H2.
func testShapes(t *testing.T) []struct {
	name string
	h    *hypergraph.Hypergraph
	free []int
} {
	t.Helper()
	path := hypergraph.New(5)
	for i := 0; i+1 < 5; i++ {
		path.AddEdge(i, i+1)
	}
	star := hypergraph.New(6)
	for i := 1; i < 6; i++ {
		star.AddEdge(0, i)
	}
	tri := hypergraph.New(4)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	tri.AddEdge(2, 3)
	dup := hypergraph.New(3)
	dup.AddEdge(0, 1)
	dup.AddEdge(0, 1)
	dup.AddEdge(1, 2)
	wide := hypergraph.New(6)
	wide.AddEdge(0, 1, 2)
	wide.AddEdge(2, 3)
	wide.AddEdge(2, 4)
	wide.AddEdge(0, 1, 5)
	return []struct {
		name string
		h    *hypergraph.Hypergraph
		free []int
	}{
		{"path5", path, []int{0}},
		{"path5-nofree", path, nil},
		{"star6", star, []int{0}},
		{"triangle-pendant", tri, []int{2}},
		{"dup-edges", dup, []int{1}},
		{"wide", wide, []int{0, 1}},
	}
}

// TestFingerprintRenamingInvariance is the satellite contract: for every
// shape and many random bijections, the renamed query fingerprints to the
// same Key/Hash, and the labeling maps agree (renaming then canonizing
// equals canonizing directly).
func TestFingerprintRenamingInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, sh := range testShapes(t) {
		base := mustCanon(t, sh.h, sh.free, nil)
		if !base.Exact {
			t.Fatalf("%s: base canonicalization not exact", sh.name)
		}
		for trial := 0; trial < 25; trial++ {
			perm := r.Perm(sh.h.NumVertices())
			rh, rf := renameQuery(sh.h, sh.free, perm)
			got := mustCanon(t, rh, rf, nil)
			if got.Key != base.Key || got.Hash != base.Hash {
				t.Fatalf("%s trial %d: renamed key differs\nbase: %q\n got: %q", sh.name, trial, base.Key, got.Key)
			}
			// The composed map request→canonical must relabel each renamed
			// edge onto the same canonical edge multiset.
			for e, vs := range rh.Edges() {
				canon := make(map[int]bool, len(vs))
				for _, v := range vs {
					canon[got.VarTo[v]] = true
				}
				for _, cv := range got.CanonEdges[got.EdgeTo[e]] {
					if !canon[cv] {
						t.Fatalf("%s trial %d: edge %d maps inconsistently", sh.name, trial, e)
					}
				}
			}
		}
	}
}

// TestFingerprintSeparatesShapes pins that structurally different shapes
// (and the same shape with different free sets or aggregate ops) get
// different keys.
func TestFingerprintSeparatesShapes(t *testing.T) {
	shapes := testShapes(t)
	seen := map[string]string{}
	for _, sh := range shapes {
		fp := mustCanon(t, sh.h, sh.free, nil)
		if prev, dup := seen[fp.Key]; dup {
			t.Fatalf("shapes %s and %s share key %q", prev, sh.name, fp.Key)
		}
		seen[fp.Key] = sh.name
	}
	// Same hypergraph, different free set.
	path := shapes[0]
	a := mustCanon(t, path.h, []int{0}, nil)
	b := mustCanon(t, path.h, []int{2}, nil)
	if a.Key == b.Key {
		t.Fatalf("different free sets share key %q", a.Key)
	}
	// Same hypergraph, product aggregate on one bound variable.
	c := mustCanon(t, path.h, []int{0}, map[int]string{3: "mul"})
	if c.Key == a.Key {
		t.Fatalf("aggregate override did not change key")
	}
}

// TestFingerprintFreeFollowsRenaming pins that the free marker sticks to
// the variable, not the id: renaming that moves the free variable still
// matches, while freeing a structurally different variable does not.
func TestFingerprintFreeFollowsRenaming(t *testing.T) {
	path := hypergraph.New(4)
	for i := 0; i+1 < 4; i++ {
		path.AddEdge(i, i+1)
	}
	endpointA := mustCanon(t, path, []int{0}, nil)
	endpointB := mustCanon(t, path, []int{3}, nil) // the mirrored endpoint
	middle := mustCanon(t, path, []int{1}, nil)
	if endpointA.Key != endpointB.Key {
		t.Fatalf("mirror-symmetric free endpoints should share a key")
	}
	if endpointA.Key == middle.Key {
		t.Fatalf("endpoint-free and middle-free shapes must differ")
	}
}

func TestCanonicalizeErrors(t *testing.T) {
	if _, err := Canonicalize(nil, nil, nil); err == nil {
		t.Fatal("nil hypergraph: want error")
	}
	if _, err := Canonicalize(hypergraph.New(3), nil, nil); err == nil {
		t.Fatal("edgeless hypergraph: want error")
	}
	h := hypergraph.New(3)
	h.AddEdge(0, 1)
	if _, err := Canonicalize(h, []int{2}, nil); err == nil {
		t.Fatal("free variable outside every edge: want error")
	}
	if _, err := Canonicalize(h, []int{7}, nil); err == nil {
		t.Fatal("free variable out of range: want error")
	}
}
