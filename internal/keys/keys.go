// Package keys provides the fixed-width tuple-key codecs shared by the
// relation kernel and the protocol engine.
//
// The hot paths of the paper's evaluation — Join/Semijoin/EliminateVar
// inside every star reduction of Theorem 4.1, and the keyed
// converge-casts of Theorem 3.11 — all need to identify tuples by a
// subset of their columns. Packing up to two int32 attribute values into
// one uint64 keeps those lookups allocation-free and lets sorted-merge
// code compare keys with a single integer comparison; the big-endian
// string codec remains as the arbitrary-arity fallback and as the wire
// encoding of converge-cast items.
//
// Packed keys are order-preserving: if tuple u precedes tuple v in the
// lexicographic (signed int32) order the relations maintain, then
// Pack(u) < Pack(v) as uint64. This is what lets the relation kernel
// sort and merge on packed keys directly.
package keys

import (
	"encoding/binary"
	"hash/fnv"
	"math/bits"
)

// MaxPacked is the largest number of int32 columns a uint64 key can hold.
const MaxPacked = 2

// signBias flips the sign bit so that unsigned comparison of packed
// words agrees with signed comparison of the original int32 values.
const signBias = 0x80000000

// Pack1 packs one int32 into an order-preserving uint64 key.
func Pack1(x int32) uint64 { return uint64(uint32(x) ^ signBias) }

// Pack2 packs two int32s; uint64 order equals lexicographic (x, y) order.
func Pack2(x, y int32) uint64 { return Pack1(x)<<32 | Pack1(y) }

// Unpack1 inverts Pack1.
func Unpack1(k uint64) int32 { return int32(uint32(k) ^ signBias) }

// Unpack2 inverts Pack2.
func Unpack2(k uint64) (int32, int32) {
	return Unpack1(k >> 32), Unpack1(k & 0xffffffff)
}

// PackCols packs the selected columns of a tuple (all columns when cols
// is nil). len(cols) (or len(t)) must be ≤ MaxPacked; zero columns pack
// to the zero key.
func PackCols(t []int32, cols []int) uint64 {
	if cols == nil {
		switch len(t) {
		case 0:
			return 0
		case 1:
			return Pack1(t[0])
		case 2:
			return Pack2(t[0], t[1])
		}
		//faqlint:allow nopanic(programmer-error precondition: callers gate on MaxPacked before packing)
		panic("keys: PackCols on more than MaxPacked columns")
	}
	switch len(cols) {
	case 0:
		return 0
	case 1:
		return Pack1(t[cols[0]])
	case 2:
		return Pack2(t[cols[0]], t[cols[1]])
	}
	//faqlint:allow nopanic(programmer-error precondition: callers gate on MaxPacked before packing)
	panic("keys: PackCols on more than MaxPacked columns")
}

// Encode packs int32 values into a big-endian string key; sorting keys
// sorts the tuples lexicographically on the raw uint32 bit patterns
// (attribute values are domain indices ≥ 0, where the two orders agree).
func Encode(vals ...int32) string {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// EncodeCols encodes selected columns (all columns when cols is nil) of
// a tuple as a string key.
func EncodeCols(t []int32, cols []int) string {
	if cols == nil {
		return Encode(t...)
	}
	buf := make([]byte, 4*len(cols))
	for i, c := range cols {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(t[c]))
	}
	return string(buf)
}

// ChunkString deterministically assigns a string key to one of n chunks
// (every player computes this locally; it mirrors the paper's splitting
// of Dom(A) across the directed paths W₁, W₂ in Example 2.3).
func ChunkString(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Chunk assigns a packed key of ncols columns to one of n chunks. It
// hashes the same big-endian bytes ChunkString sees for the equivalent
// string key, so packed and string codecs agree on chunk placement.
func Chunk(k uint64, ncols, n int) int {
	if n <= 1 {
		return 0
	}
	var buf [8]byte
	switch ncols {
	case 0:
		// Zero columns: hash the empty byte string, like ChunkString("").
	case 1:
		binary.BigEndian.PutUint32(buf[:4], uint32(Unpack1(k)))
	case 2:
		x, y := Unpack2(k)
		binary.BigEndian.PutUint32(buf[:4], uint32(x))
		binary.BigEndian.PutUint32(buf[4:], uint32(y))
	default:
		//faqlint:allow nopanic(programmer-error precondition: callers gate on MaxPacked before chunking)
		panic("keys: Chunk on more than MaxPacked columns")
	}
	h := fnv.New32a()
	h.Write(buf[:4*ncols])
	return int(h.Sum32() % uint32(n))
}

// Bits returns the number of bits needed to represent x (at least 1),
// the channel-cost helper used when sizing protocol items.
func Bits(x int) int {
	if x <= 1 {
		return 1
	}
	return bits.Len(uint(x))
}
