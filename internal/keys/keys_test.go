package keys

import (
	"math/rand"
	"testing"
)

func TestPackRoundTrip(t *testing.T) {
	vals := []int32{-1 << 31, -7, -1, 0, 1, 42, 1<<31 - 1}
	for _, x := range vals {
		if got := Unpack1(Pack1(x)); got != x {
			t.Errorf("Unpack1(Pack1(%d)) = %d", x, got)
		}
		for _, y := range vals {
			gx, gy := Unpack2(Pack2(x, y))
			if gx != x || gy != y {
				t.Errorf("Unpack2(Pack2(%d, %d)) = %d, %d", x, y, gx, gy)
			}
		}
	}
}

func TestPackOrderPreserving(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := int32(r.Int63()), int32(r.Int63())
		c, d := int32(r.Int63()), int32(r.Int63())
		lex := a < c || (a == c && b < d)
		packed := Pack2(a, b) < Pack2(c, d)
		if lex != packed {
			t.Fatalf("order mismatch: (%d,%d) vs (%d,%d): lex=%v packed=%v", a, b, c, d, lex, packed)
		}
	}
}

func TestPackCols(t *testing.T) {
	row := []int32{10, 20, 30}
	if PackCols(row, []int{1}) != Pack1(20) {
		t.Error("PackCols 1-col mismatch")
	}
	if PackCols(row, []int{0, 2}) != Pack2(10, 30) {
		t.Error("PackCols 2-col mismatch")
	}
	if PackCols(row[:2], nil) != Pack2(10, 20) {
		t.Error("PackCols nil-cols mismatch")
	}
	if PackCols(nil, []int{}) != 0 {
		t.Error("PackCols empty should be 0")
	}
}

func TestEncodeDecode(t *testing.T) {
	k := Encode(5, -3, 1<<30)
	if len(k) != 12 {
		t.Fatalf("len = %d, want 12", len(k))
	}
	if k[0] != 0 || k[3] != 5 || k[4] != 0xff {
		t.Errorf("Encode not big-endian: % x", k)
	}
	row := []int32{7, 8, 9}
	if EncodeCols(row, []int{2, 0}) != Encode(9, 7) {
		t.Error("EncodeCols mismatch")
	}
	if EncodeCols(row, nil) != Encode(7, 8, 9) {
		t.Error("EncodeCols nil mismatch")
	}
}

// TestChunkAgreement: the packed-key chunker must place keys exactly
// where the string chunker places the equivalent encoded key, so mixed
// codec choices across protocol phases keep chunk placement consistent.
func TestChunkAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for n := 1; n <= 5; n++ {
		for i := 0; i < 200; i++ {
			x, y := int32(r.Intn(1000)), int32(r.Intn(1000))
			if Chunk(Pack1(x), 1, n) != ChunkString(Encode(x), n) {
				t.Fatalf("1-col chunk mismatch for %d (n=%d)", x, n)
			}
			if Chunk(Pack2(x, y), 2, n) != ChunkString(Encode(x, y), n) {
				t.Fatalf("2-col chunk mismatch for (%d,%d) (n=%d)", x, y, n)
			}
		}
	}
}

func TestBits(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9}
	for x, want := range cases {
		if got := Bits(x); got != want {
			t.Errorf("Bits(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestChunkZeroColumns(t *testing.T) {
	for n := 1; n <= 5; n++ {
		if Chunk(0, 0, n) != ChunkString("", n) {
			t.Fatalf("0-col chunk disagrees with empty string chunk at n=%d", n)
		}
	}
}
