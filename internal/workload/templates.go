package workload

import (
	"strings"
)

// Template is one of the standing benchmark query shapes shared by the
// churn differential harness (internal/delta/churn), the incremental
// benchmark (faqbench -incremental), and the service load generator's
// HTTP templates (cmd/faqload keeps wire-level copies of the same
// shapes). Spec lists hyperedges as ';'-separated ','-joined attribute
// names; Free lists the free variables by name.
type Template struct {
	Name string
	Spec string
	Free []string
}

// Templates returns the standing shapes: an 8-vertex path, a 6-leaf
// star, a depth-2 binary tree, and a triangle with a pendant edge (the
// cyclic shape whose fat core root makes root-bag churn expensive).
func Templates() []Template {
	return []Template{
		{Name: "path7", Spec: "A0,A1;A1,A2;A2,A3;A3,A4;A4,A5;A5,A6;A6,A7", Free: []string{"A0"}},
		{Name: "star6", Spec: "C,B1;C,B2;C,B3;C,B4;C,B5;C,B6", Free: []string{"C"}},
		{Name: "tree6", Spec: "R,L;R,T;L,LL;L,LR;T,TL;T,TR", Free: []string{"R"}},
		{Name: "tri-pendant", Spec: "A,B;B,C;A,C;C,D", Free: []string{"C"}},
	}
}

// TemplateByName looks a standing template up by name.
func TemplateByName(name string) (Template, bool) {
	for _, t := range Templates() {
		if t.Name == name {
			return t, true
		}
	}
	return Template{}, false
}

// Edges parses the Spec into per-edge attribute-name lists.
func (t Template) Edges() [][]string {
	parts := strings.Split(t.Spec, ";")
	out := make([][]string, len(parts))
	for i, p := range parts {
		out[i] = strings.Split(p, ",")
	}
	return out
}
