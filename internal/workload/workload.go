// Package workload generates the inputs of the paper's experiments:
// relations (uniform, skew-free matchings, full), query families (stars,
// paths, trees, d-degenerate graphs, cliques), and player assignments.
// All generators take an explicit random source and are deterministic
// given its seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/semiring"
)

var sb = semiring.Bool{}
var sp = semiring.SumProduct{}

// RandomRelation returns a Boolean relation with (up to) n distinct
// uniform tuples over [0, dom)^|schema|.
func RandomRelation(schema []int, n, dom int, r *rand.Rand) *relation.Relation[bool] {
	b := relation.NewBuilder[bool](sb, schema)
	tuple := make([]int, len(schema))
	for i := 0; i < n; i++ {
		for j := range tuple {
			tuple[j] = r.Intn(dom)
		}
		b.AddOne(tuple...)
	}
	return b.Build()
}

// RandomAnnotated returns a sum-product relation with (up to) n distinct
// tuples carrying positive weights.
func RandomAnnotated(schema []int, n, dom int, r *rand.Rand) *relation.Relation[float64] {
	b := relation.NewBuilder[float64](sp, schema)
	tuple := make([]int, len(schema))
	for i := 0; i < n; i++ {
		for j := range tuple {
			tuple[j] = r.Intn(dom)
		}
		b.Add(tuple, 0.25+r.Float64())
	}
	return b.Build()
}

// MatchingRelation returns a skew-free relation in the sense of the MPC
// comparisons (Appendix A.1.2): each domain value appears at most once
// per column. Requires n ≤ dom.
func MatchingRelation(schema []int, n, dom int, r *rand.Rand) (*relation.Relation[bool], error) {
	if n > dom {
		return nil, fmt.Errorf("workload: matching needs n ≤ dom, got %d > %d", n, dom)
	}
	perms := make([][]int, len(schema))
	for j := range perms {
		perms[j] = r.Perm(dom)[:n]
	}
	b := relation.NewBuilder[bool](sb, schema)
	tuple := make([]int, len(schema))
	for i := 0; i < n; i++ {
		for j := range tuple {
			tuple[j] = perms[j][i]
		}
		b.AddOne(tuple...)
	}
	return b.Build(), nil
}

// FullRelation returns the complete relation over the schema (dom^arity
// tuples) — the padding relation of the lower-bound embeddings.
func FullRelation(schema []int, dom int) *relation.Relation[bool] {
	b := relation.NewBuilder[bool](sb, schema)
	tuple := make([]int, len(schema))
	var fill func(i int)
	fill = func(i int) {
		if i == len(schema) {
			b.AddOne(tuple...)
			return
		}
		for v := 0; v < dom; v++ {
			tuple[i] = v
			fill(i + 1)
		}
	}
	fill(0)
	return b.Build()
}

// SharedValueRelations builds k relations over the given schemas whose
// projections onto sharedVar all contain the planted value, making the
// BCQ of a star query true by construction.
func SharedValueRelations(h *hypergraph.Hypergraph, n, dom, planted int, r *rand.Rand) []*relation.Relation[bool] {
	out := make([]*relation.Relation[bool], h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		schema := h.Edge(e)
		b := relation.NewBuilder[bool](sb, schema)
		tuple := make([]int, len(schema))
		for i := 0; i < n-1; i++ {
			for j := range tuple {
				tuple[j] = r.Intn(dom)
			}
			b.AddOne(tuple...)
		}
		for j := range tuple {
			tuple[j] = planted
		}
		b.AddOne(tuple...)
		out[e] = b.Build()
	}
	return out
}

// BCQ assembles a Boolean query from a hypergraph and per-edge random
// relations of n tuples over [0, dom).
func BCQ(h *hypergraph.Hypergraph, n, dom int, r *rand.Rand) *faq.Query[bool] {
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for e := range factors {
		factors[e] = RandomRelation(h.Edge(e), n, dom, r)
	}
	return faq.NewBCQ(h, factors, dom)
}

// SumProductFAQ assembles an FAQ-SS over (ℝ≥0, +, ×) with the given free
// variables.
func SumProductFAQ(h *hypergraph.Hypergraph, free []int, n, dom int, r *rand.Rand) *faq.Query[float64] {
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for e := range factors {
		factors[e] = RandomAnnotated(h.Edge(e), n, dom, r)
	}
	return &faq.Query[float64]{S: sp, H: h, Factors: factors, Free: free, DomSize: dom}
}

// DDegenerateGraph returns a random simple graph of degeneracy at most
// d: vertex v attaches to min(v, 1+rand(d)) random earlier vertices.
func DDegenerateGraph(nv, d int, r *rand.Rand) *hypergraph.Hypergraph {
	h := hypergraph.New(nv)
	seen := map[[2]int]bool{}
	for v := 1; v < nv; v++ {
		k := 1 + r.Intn(d)
		if k > v {
			k = v
		}
		for _, u := range r.Perm(v)[:k] {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if !seen[[2]int{a, b}] {
				seen[[2]int{a, b}] = true
				h.AddEdge(a, b)
			}
		}
	}
	return h
}

// DDegenerateHypergraph returns a random arity-≤r hypergraph whose
// degeneracy stays O(d): each new vertex joins a hyperedge with up to
// r−1 earlier vertices, d times.
func DDegenerateHypergraph(nv, d, r int, rng *rand.Rand) *hypergraph.Hypergraph {
	h := hypergraph.New(nv)
	for v := 1; v < nv; v++ {
		edges := 1 + rng.Intn(d)
		for e := 0; e < edges; e++ {
			k := 1 + rng.Intn(r-1)
			if k > v {
				k = v
			}
			verts := append(rng.Perm(v)[:k], v)
			h.AddEdge(verts...)
		}
	}
	return h
}

// RoundRobinAssignment spreads factors across the given players in
// order.
func RoundRobinAssignment(numEdges int, players []int) protocol.Assignment {
	a := make(protocol.Assignment, numEdges)
	for i := range a {
		a[i] = players[i%len(players)]
	}
	return a
}
