package workload

import (
	"math/rand"
	"testing"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/relation"
)

func TestRandomRelationShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rel := RandomRelation([]int{0, 1}, 20, 8, r)
	if rel.Len() == 0 || rel.Len() > 20 {
		t.Errorf("Len = %d, want (0, 20]", rel.Len())
	}
	for i := 0; i < rel.Len(); i++ {
		for _, x := range rel.Tuple(i) {
			if x < 0 || x >= 8 {
				t.Fatalf("value %d outside domain", x)
			}
		}
	}
}

func TestMatchingRelationIsSkewFree(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	rel, err := MatchingRelation([]int{0, 1}, 6, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 6 {
		t.Fatalf("Len = %d, want 6", rel.Len())
	}
	for col := 0; col < 2; col++ {
		seen := map[int32]bool{}
		for i := 0; i < rel.Len(); i++ {
			v := rel.Tuple(i)[col]
			if seen[v] {
				t.Fatalf("column %d repeats value %d: not a matching", col, v)
			}
			seen[v] = true
		}
	}
	if _, err := MatchingRelation([]int{0}, 5, 3, r); err == nil {
		t.Error("expected error for n > dom")
	}
}

func TestFullRelation(t *testing.T) {
	rel := FullRelation([]int{0, 1}, 3)
	if rel.Len() != 9 {
		t.Errorf("Len = %d, want 9", rel.Len())
	}
}

func TestSharedValueRelationsMakeBCQTrue(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	h := hypergraph.StarGraph(4)
	factors := SharedValueRelations(h, 10, 16, 7, r)
	q := faq.NewBCQ(h, factors, 16)
	res, err := faq.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := relation.ScalarValue(q.S, res)
	if !v {
		t.Error("planted star BCQ should be true")
	}
}

func TestDDegenerateGraph(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, d := range []int{1, 2, 3} {
		h := DDegenerateGraph(12, d, r)
		if got := hypergraph.Degeneracy(h); got > d {
			t.Errorf("degeneracy = %d, want ≤ %d", got, d)
		}
	}
}

func TestDDegenerateHypergraph(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	h := DDegenerateHypergraph(10, 2, 3, r)
	if h.Arity() > 3 {
		t.Errorf("arity = %d, want ≤ 3", h.Arity())
	}
	if got := hypergraph.Degeneracy(h); got > 4 {
		t.Errorf("degeneracy = %d, want O(d) = small", got)
	}
}

func TestBCQAndFAQBuilders(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	q := BCQ(hypergraph.PathGraph(4), 8, 5, r)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	fq := SumProductFAQ(hypergraph.PathGraph(4), []int{0}, 8, 5, r)
	if err := fq.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinAssignment(t *testing.T) {
	a := RoundRobinAssignment(5, []int{3, 7})
	want := []int{3, 7, 3, 7, 3}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("assign[%d] = %d, want %d", i, a[i], want[i])
		}
	}
}
