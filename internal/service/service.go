// Package service is the query-serving layer on top of the plan cache:
// it admits FAQ requests, fingerprints their shape, binds the cached
// compiled plan (compiling once per shape under singleflight) to the
// request's fresh factor data, and executes on the shared exec pool with
// per-request cancellation. A batching path groups same-plan requests so
// one cache round-trip serves the whole group.
//
// Answer contract: a served answer is exactly faq.SolveOnGHD(q, g) for
// the bound plan GHD g. For exact semirings (Bool, Count, F2) that is
// bit-identical to per-request planning (faq.Solve) at every worker
// count; float semirings are equal modulo the semiring's re-association
// tolerance, the same allowance the distributed protocols need. Shapes
// violating the paper's free-variable restriction (F ⊄ every bag,
// Appendix G.5) fall back to faq.BruteForce, mirroring the solver
// contract.
package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/ghd"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// ErrOverBudget is the admission-control sentinel: the plan's structural
// memory bound (plan.Plan.EstimateBytes, derived from the per-node
// NodeBounds) exceeds the service's configured budget, so the request is
// rejected before any execution work. Match with errors.Is; the concrete
// error is a *BudgetError carrying the numbers.
var ErrOverBudget = errors.New("service: plan memory bound exceeds budget")

// ErrFallbackDisabled is returned when a query shape violates the
// paper's free-variable restriction (F ⊄ every bag, Appendix G.5) and
// the service was configured without the brute-force fallback: no GHD
// plan can deliver the marginal and the exponential path is off.
var ErrFallbackDisabled = errors.New("service: query requires brute-force fallback, which is disabled")

// BudgetError is the typed admission-control rejection: the structural
// estimate for executing the plan against this request's data exceeds
// the configured budget. errors.Is(err, ErrOverBudget) matches it.
type BudgetError struct {
	EstimateBytes float64 // plan.EstimateBytes at the request's N
	BudgetBytes   int64   // the configured budget
	PlanHash      uint64  // fingerprint of the rejected plan
	N             int     // the request's max factor size
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("service: plan %016x needs ~%.3g bytes at N=%d, budget %d: %v",
		e.PlanHash, e.EstimateBytes, e.N, e.BudgetBytes, ErrOverBudget)
}

// Is makes errors.Is(err, ErrOverBudget) succeed on BudgetError values.
func (e *BudgetError) Is(target error) bool { return target == ErrOverBudget }

// Option configures a Service (functional options on New).
type Option func(*config)

type config struct {
	pool        *exec.Pool
	budget      int64
	noFallback  bool
	gate        *Gate
	deadline    time.Duration
	metrics     *obs.Registry
	tracer      *obs.Tracer
	distributed any
}

// WithPool runs the service's GHD passes on a caller-owned exec pool
// instead of the process default. Worker counts never change answers —
// only scheduling — per the exec-layer contract.
func WithPool(p *exec.Pool) Option { return func(c *config) { c.pool = p } }

// WithMemoryBudget enables admission control: any request whose plan's
// structural bound (plan.Plan.EstimateBytes at the request's N) exceeds
// bytes is rejected with a *BudgetError before execution. bytes <= 0
// disables the check.
func WithMemoryBudget(bytes int64) Option { return func(c *config) { c.budget = bytes } }

// WithBruteForceFallback toggles the exponential faq.BruteForce path for
// shapes violating the free-variable restriction. It defaults to on
// (mirroring the solver contract); disabled services return
// ErrFallbackDisabled instead.
func WithBruteForceFallback(enabled bool) Option {
	return func(c *config) { c.noFallback = !enabled }
}

// WithDistributed threads a faq.DistributedSolver for the service's
// value type into every solve (faq.SolveOptions.Distributed): eligible
// queries execute on the cluster, the rest run locally. The request
// still flows through admission, deadlines, metrics, and panic
// containment here — distribution changes where the pass runs, not the
// serving contract.
func WithDistributed(solver any) Option {
	return func(c *config) { c.distributed = solver }
}

// Info reports how one request was served.
type Info struct {
	PlanHash uint64  `json:"-"`
	CacheHit bool    `json:"cache_hit"`
	Fallback bool    `json:"fallback"`
	CanonNS  int64   `json:"canon_ns"`
	PlanNS   int64   `json:"plan_ns"` // cache round-trip (compile on miss)
	AdmitNS  int64   `json:"-"`       // admission check (budget + fallback policy)
	BindNS   int64   `json:"bind_ns"`
	ExecNS   int64   `json:"exec_ns"`
	TotalNS  int64   `json:"total_ns"`
	NodeNS   []int64 `json:"-"` // per-GHD-node exec durations (trace spans)
}

// Service serves queries of one semiring. Instances share a plan.Cache
// (keys are namespaced by the semiring name) and the process-wide exec
// pool.
type Service[T any] struct {
	s     semiring.Semiring[T]
	name  string
	cache *plan.Cache
	cfg   config
	met   svcMetrics
}

// New returns a service over semiring s. name namespaces the cache keys
// (use the wire semiring name); cache may be shared across services.
// Options configure the exec pool, admission control, the brute-force
// fallback policy, and observability (WithMetrics/WithTracer). Without
// WithMetrics, counters bind to a private registry, so independently
// constructed services never share counts.
func New[T any](s semiring.Semiring[T], name string, cache *plan.Cache, opts ...Option) *Service[T] {
	sv := &Service[T]{s: s, name: name, cache: cache}
	for _, o := range opts {
		o(&sv.cfg)
	}
	if sv.cfg.metrics == nil {
		sv.cfg.metrics = obs.NewRegistry()
	}
	sv.met = bindMetrics(sv.cfg.metrics, name)
	return sv
}

// Cache exposes the underlying plan cache (stats endpoints read it).
func (sv *Service[T]) Cache() *plan.Cache { return sv.cache }

// Semiring returns the semiring the service evaluates over (wire
// adapters build typed queries with it).
func (sv *Service[T]) Semiring() semiring.Semiring[T] { return sv.s }

// Stats is the service-level counter snapshot. The degradation
// counters (Shed, DeadlineExceeded, Panics) let operators see graceful
// degradation directly instead of inferring it from Errors: Rejected is
// budget admission control (429 — retrying unchanged cannot succeed),
// Shed is transient overload (503 — retry after backoff),
// DeadlineExceeded is requests cut off by the per-request deadline, and
// Panics counts panics recovered into typed internal errors at the
// service boundary.
type Stats struct {
	Semiring         string `json:"semiring"`
	Requests         int64  `json:"requests"`
	Batches          int64  `json:"batches"`
	Fallbacks        int64  `json:"fallbacks"`
	Rejected         int64  `json:"rejected"` // admission-control rejections
	Errors           int64  `json:"errors"`
	Shed             int64  `json:"shed"`              // in-flight gate rejections
	DeadlineExceeded int64  `json:"deadline_exceeded"` // per-request deadline hits
	Panics           int64  `json:"panics"`            // panics recovered to ErrInternal
	Updates          int64  `json:"updates"`           // materialized-handle update batches applied
	DeltaFallbacks   int64  `json:"delta_fallbacks"`   // updates served by per-node recompute fallback
}

// Stats snapshots the current counters through the registry. Each
// counter is a single monotone atomic, so every field is individually
// monotone across snapshots; the fields are not a consistent cut of one
// instant. The loads are ordered inverse to the increment order —
// outcome counters before the request counters that precede them on
// every request path — which guarantees the snapshot never shows an
// outcome without its request (e.g. Errors ≤ Requests,
// DeltaFallbacks ≤ Updates ≤ Requests always hold in a snapshot taken
// under load).
func (sv *Service[T]) Stats() Stats {
	st := Stats{Semiring: sv.name}
	// Outcome-class counters first (each is incremented strictly after
	// the requests/updates counter on its path)...
	st.DeltaFallbacks = sv.met.deltaFallbacks.Value()
	st.Updates = sv.met.updates.Value()
	st.Panics = sv.met.panics.Value()
	st.DeadlineExceeded = sv.met.deadlineExceeded.Value()
	st.Shed = sv.met.shed.Value()
	st.Rejected = sv.met.rejected.Value()
	st.Fallbacks = sv.met.fallbacks.Value()
	st.Errors = sv.met.errors.Value()
	// ...then the envelope counters they are subsets of.
	st.Requests = sv.met.requests.Value()
	st.Batches = sv.met.batches.Value()
	return st
}

// opNames derives the renaming-invariant aggregate markers of a query's
// bound-variable overrides. Plan structure does not depend on the
// operator, so the coarse product/semiring distinction suffices.
func opNames[T any](q *faq.Query[T]) map[int]string {
	if len(q.VarOps) == 0 {
		return nil
	}
	out := make(map[int]string, len(q.VarOps))
	for v, op := range q.VarOps {
		if op.IsProduct() {
			out[v] = "mul"
		} else {
			out[v] = "agg"
		}
	}
	return out
}

// Solve serves one request: admit (in-flight gate), fingerprint,
// cached plan, bind, execute — under the configured per-request
// deadline. ctx cancels cooperatively — the GHD pass stops dispatching
// node tasks once ctx is done (exec.Pool.ForestCtx) and ctx.Err() is
// returned. A panic escaping any layer below (kernel, pool task,
// compile) is recovered here into a typed *InternalError.
func (sv *Service[T]) Solve(ctx context.Context, q *faq.Query[T]) (*relation.Relation[T], Info, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	sv.met.requests.Inc()
	var info Info
	fail := func(err error) (*relation.Relation[T], Info, error) {
		sv.countErr(err)
		info.TotalNS = time.Since(t0).Nanoseconds()
		sv.met.latency.Observe(info.TotalNS)
		sv.recordTrace(t0, &info, err, false)
		return nil, info, err
	}
	if sv.cfg.gate != nil {
		if !sv.cfg.gate.TryAcquire() {
			return fail(sv.shedReject())
		}
		defer sv.cfg.gate.Release()
	}
	ctx, cancel := sv.withDeadline(ctx)
	defer cancel()

	ans, err := sv.solveAdmitted(ctx, q, &info)
	if err != nil {
		return fail(err)
	}
	info.TotalNS = time.Since(t0).Nanoseconds()
	sv.met.latency.Observe(info.TotalNS)
	sv.recordTrace(t0, &info, nil, false)
	return ans, info, nil
}

// solveAdmitted is Solve past admission: the panic-containment boundary
// wraps fingerprinting, the cache round-trip, and execution.
func (sv *Service[T]) solveAdmitted(ctx context.Context, q *faq.Query[T], info *Info) (ans *relation.Relation[T], err error) {
	defer sv.recoverInternal(&err)
	t0 := time.Now()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	fp, err := plan.Canonicalize(q.H, q.Free, opNames(q))
	if err != nil {
		return nil, err
	}
	info.CanonNS = time.Since(t0).Nanoseconds()

	tp := time.Now()
	p, hit, err := sv.cache.Get(sv.name+"|"+fp.Key, func() (*plan.Plan, error) { return plan.Compile(fp) })
	if err != nil {
		return nil, err
	}
	info.PlanNS = time.Since(tp).Nanoseconds()
	info.PlanHash = p.Hash
	info.CacheHit = hit

	return sv.execute(ctx, q, p, fp, info)
}

// admit applies admission control and the fallback policy to a resolved
// plan, before any execution work: over-budget requests are rejected
// with a *BudgetError, and fallback-requiring shapes error when the
// exponential path is disabled.
func (sv *Service[T]) admit(q *faq.Query[T], p *plan.Plan) error {
	if p.Fallback && sv.cfg.noFallback {
		sv.met.rejected.Inc()
		return fmt.Errorf("service: %w: %w", ErrFallbackDisabled, faq.ErrFreeOutsideRoot)
	}
	if sv.cfg.budget > 0 {
		n := q.MaxFactorSize()
		if est := p.EstimateBytes(n); est > float64(sv.cfg.budget) {
			sv.met.rejected.Inc()
			return &BudgetError{EstimateBytes: est, BudgetBytes: sv.cfg.budget, PlanHash: p.Hash, N: n}
		}
	}
	return nil
}

// execute binds and runs one request against a resolved plan.
func (sv *Service[T]) execute(ctx context.Context, q *faq.Query[T], p *plan.Plan, fp *plan.Fingerprint, info *Info) (*relation.Relation[T], error) {
	ta := time.Now()
	err := sv.admit(q, p)
	info.AdmitNS = time.Since(ta).Nanoseconds()
	if err != nil {
		return nil, err
	}
	if err := solveSite.Hit(ctx); err != nil {
		return nil, err
	}
	if p.Fallback {
		info.Fallback = true
		sv.met.fallbacks.Inc()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		te := time.Now()
		ans, err := faq.BruteForce(q)
		info.ExecNS = time.Since(te).Nanoseconds()
		if err != nil {
			return nil, err
		}
		p.RecordExec(nil)
		return ans, nil
	}
	tb := time.Now()
	g, err := p.Bind(fp, q.H)
	if err != nil {
		return nil, err
	}
	info.BindNS = time.Since(tb).Nanoseconds()
	te := time.Now()
	ans, m, err := faq.SolveGHD(ctx, q, g, faq.SolveOptions{
		Pool: sv.cfg.pool, Timed: true, Distributed: sv.cfg.distributed,
	})
	info.ExecNS = time.Since(te).Nanoseconds()
	if err != nil {
		return nil, err
	}
	info.NodeNS = m.Costs
	p.RecordExec(m.Costs)
	return ans, nil
}

// Explain resolves (compiling on a miss, counted exactly like Solve) the
// plan for q's shape and binds its decomposition onto the request's own
// variable ids, without executing anything. It returns the compiled
// plan, the bound GHD (nil for brute-force fallback shapes), and the
// serving metadata — fingerprint, cache hit/miss, canonicalization and
// plan-fetch timings. This is the data behind faqs.Engine.Explain and
// faqd's /explain endpoint.
func (sv *Service[T]) Explain(q *faq.Query[T]) (*plan.Plan, *ghd.GHD, Info, error) {
	t0 := time.Now()
	var info Info
	if err := q.Validate(); err != nil {
		return nil, nil, info, err
	}
	fp, err := plan.Canonicalize(q.H, q.Free, opNames(q))
	if err != nil {
		return nil, nil, info, err
	}
	info.CanonNS = time.Since(t0).Nanoseconds()
	tp := time.Now()
	p, hit, err := sv.cache.Get(sv.name+"|"+fp.Key, func() (*plan.Plan, error) { return plan.Compile(fp) })
	if err != nil {
		return nil, nil, info, err
	}
	info.PlanNS = time.Since(tp).Nanoseconds()
	info.PlanHash = p.Hash
	info.CacheHit = hit
	info.Fallback = p.Fallback
	var g *ghd.GHD
	if !p.Fallback {
		tb := time.Now()
		g, err = p.Bind(fp, q.H)
		if err != nil {
			return nil, nil, info, err
		}
		info.BindNS = time.Since(tb).Nanoseconds()
	}
	info.TotalNS = time.Since(t0).Nanoseconds()
	return p, g, info, nil
}

// SolveBatch serves a batch, grouping same-plan requests: each distinct
// shape does one cache round-trip (one compile under singleflight), then
// the requests fan out across the exec pool — per-request results and
// errors align with the input slice, and a canceled ctx stops dispatch.
//
// Admission treats the batch as one unit: it claims one gate slot (a
// full gate sheds every member with a typed *OverloadError) and runs
// under one per-request deadline. Per-member panics are recovered into
// typed *InternalError values in the member's error slot.
func (sv *Service[T]) SolveBatch(ctx context.Context, qs []*faq.Query[T]) ([]*relation.Relation[T], []Info, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sv.met.batches.Inc()
	n := len(qs)
	answers := make([]*relation.Relation[T], n)
	infos := make([]Info, n)
	errs := make([]error, n)
	starts := make([]time.Time, n)

	if sv.cfg.gate != nil {
		if !sv.cfg.gate.TryAcquire() {
			for i := range qs {
				sv.met.requests.Inc()
				errs[i] = sv.shedReject()
				sv.countErr(errs[i])
			}
			return answers, infos, errs
		}
		defer sv.cfg.gate.Release()
	}
	ctx, cancel := sv.withDeadline(ctx)
	defer cancel()

	// Phase 1: fingerprint everything and group by shape key. Every
	// request keeps its own Fingerprint — members of one group are
	// renamed variants of the shape, and each binds the shared plan
	// through its own variable/edge maps.
	type group struct {
		fp      *plan.Fingerprint // the first member's (compile input)
		members []int
		p       *plan.Plan
		err     error
	}
	// Validation and canonicalization are independent per request — the
	// dominant warm-path CPU cost — so they fan out across the pool;
	// grouping itself stays a sequential request-order scan to keep the
	// group order deterministic.
	fps := make([]*plan.Fingerprint, n)
	exec.Default().Map(n, func(i int) {
		starts[i] = time.Now()
		sv.met.requests.Inc()
		q := qs[i]
		if err := q.Validate(); err != nil {
			errs[i] = err
			sv.met.errors.Inc()
			return
		}
		fp, err := plan.Canonicalize(q.H, q.Free, opNames(q))
		if err != nil {
			errs[i] = err
			sv.met.errors.Inc()
			return
		}
		fps[i] = fp
		infos[i].CanonNS = time.Since(starts[i]).Nanoseconds()
		infos[i].PlanHash = fp.Hash
	})
	groups := make(map[string]*group)
	var order []*group
	for i := range qs {
		fp := fps[i]
		if fp == nil {
			continue
		}
		key := sv.name + "|" + fp.Key
		g, ok := groups[key]
		if !ok {
			g = &group{fp: fp}
			groups[key] = g
			order = append(order, g)
		}
		g.members = append(g.members, i)
	}

	// Phase 2: one cache round-trip per distinct shape, distinct shapes
	// compiling concurrently across the pool (the cache's singleflight
	// handles any overlap with other callers).
	exec.Default().Map(len(order), func(gi int) {
		g := order[gi]
		tp := time.Now()
		fp := g.fp
		var p *plan.Plan
		var hit bool
		err := func() (err error) {
			defer sv.recoverInternal(&err)
			p, hit, err = sv.cache.Get(sv.name+"|"+fp.Key, func() (*plan.Plan, error) { return plan.Compile(fp) })
			return err
		}()
		planNS := time.Since(tp).Nanoseconds()
		g.p, g.err = p, err
		for mi, i := range g.members {
			infos[i].PlanNS = planNS
			infos[i].CacheHit = hit || mi > 0
		}
	})

	// Phase 3: one flat fan-out over every request — no barrier between
	// groups, so a slow group cannot idle the rest of the batch. Each
	// request's own work is unchanged from Solve, so per-request answers
	// keep the service answer contract; nested pool calls are safe
	// because pools spawn goroutines per call.
	groupOf := make([]*group, n)
	for _, g := range order {
		for _, i := range g.members {
			groupOf[i] = g
		}
	}
	exec.Default().Map(n, func(i int) {
		g := groupOf[i]
		if g == nil {
			return // failed phase 1 (error already recorded)
		}
		finish := func(err error) {
			infos[i].TotalNS = time.Since(starts[i]).Nanoseconds()
			sv.met.latency.Observe(infos[i].TotalNS)
			sv.recordTrace(starts[i], &infos[i], err, true)
		}
		if g.err != nil {
			errs[i] = g.err
			sv.countErr(g.err)
			finish(g.err)
			return
		}
		var ans *relation.Relation[T]
		err := func() (err error) {
			defer sv.recoverInternal(&err)
			ans, err = sv.execute(ctx, qs[i], g.p, fps[i], &infos[i])
			return err
		}()
		if err != nil {
			errs[i] = err
			sv.countErr(err)
			finish(err)
			return
		}
		answers[i] = ans
		finish(nil)
	})
	return answers, infos, errs
}
