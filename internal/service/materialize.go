package service

import (
	"context"
	"fmt"
	"time"

	"repro/internal/delta"
	"repro/internal/faq"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Materialized is the service-level incremental handle: a delta
// handle wrapped in the same resilience envelope as Solve — in-flight
// gate, per-update deadline, panic containment — with its updates
// feeding the service counters (updates, delta_fallbacks).
type Materialized[T any] struct {
	sv *Service[T]
	m  *delta.Materialized[T]
}

// Materialize admits and plans q exactly like Solve (fingerprint,
// cached plan, bind), then builds an incremental handle retaining every
// GHD node's message. Brute-force-fallback shapes cannot be maintained
// incrementally: they fail typed, wrapping faq.ErrFreeOutsideRoot so
// callers can distinguish "unmaintainable shape" from transient errors.
func (sv *Service[T]) Materialize(ctx context.Context, q *faq.Query[T]) (mz *Materialized[T], info Info, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	sv.met.requests.Inc()
	fail := func(err error) (*Materialized[T], Info, error) {
		sv.countErr(err)
		info.TotalNS = time.Since(t0).Nanoseconds()
		sv.met.latency.Observe(info.TotalNS)
		return nil, info, err
	}
	if sv.cfg.gate != nil {
		if !sv.cfg.gate.TryAcquire() {
			return fail(sv.shedReject())
		}
		defer sv.cfg.gate.Release()
	}
	ctx, cancel := sv.withDeadline(ctx)
	defer cancel()

	m, err := sv.materializeAdmitted(ctx, q, &info)
	if err != nil {
		return fail(err)
	}
	info.TotalNS = time.Since(t0).Nanoseconds()
	sv.met.latency.Observe(info.TotalNS)
	return &Materialized[T]{sv: sv, m: m}, info, nil
}

// materializeAdmitted is Materialize past admission: the
// panic-containment boundary around planning and the initial full pass.
func (sv *Service[T]) materializeAdmitted(ctx context.Context, q *faq.Query[T], info *Info) (m *delta.Materialized[T], err error) {
	defer sv.recoverInternal(&err)
	t0 := time.Now()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	fp, err := plan.Canonicalize(q.H, q.Free, opNames(q))
	if err != nil {
		return nil, err
	}
	info.CanonNS = time.Since(t0).Nanoseconds()

	tp := time.Now()
	p, hit, err := sv.cache.Get(sv.name+"|"+fp.Key, func() (*plan.Plan, error) { return plan.Compile(fp) })
	if err != nil {
		return nil, err
	}
	info.PlanNS = time.Since(tp).Nanoseconds()
	info.PlanHash = p.Hash
	info.CacheHit = hit
	if err := sv.admit(q, p); err != nil {
		return nil, err
	}
	if p.Fallback {
		sv.met.rejected.Inc()
		return nil, fmt.Errorf("service: cannot materialize a brute-force fallback shape: %w", faq.ErrFreeOutsideRoot)
	}

	tb := time.Now()
	g, err := p.Bind(fp, q.H)
	if err != nil {
		return nil, err
	}
	info.BindNS = time.Since(tb).Nanoseconds()
	te := time.Now()
	m, err = delta.Materialize(ctx, q, g, delta.Options{Pool: sv.cfg.pool})
	info.ExecNS = time.Since(te).Nanoseconds()
	return m, err
}

// Update applies insert/delete batches atomically under the service's
// resilience envelope. Successful updates increment the updates
// counter; updates served by the per-node recompute fallback (MinPlus,
// MaxTimes, general FAQ) also increment delta_fallbacks.
func (mz *Materialized[T]) Update(ctx context.Context, batches ...delta.Batch[T]) error {
	if ctx == nil {
		ctx = context.Background()
	}
	sv := mz.sv
	sv.met.requests.Inc()
	if sv.cfg.gate != nil {
		if !sv.cfg.gate.TryAcquire() {
			err := sv.shedReject()
			sv.countErr(err)
			return err
		}
		defer sv.cfg.gate.Release()
	}
	ctx, cancel := sv.withDeadline(ctx)
	defer cancel()
	err := mz.updateAdmitted(ctx, batches)
	if err != nil {
		sv.countErr(err)
		return err
	}
	sv.met.updates.Inc()
	if mz.m.Strategy() == delta.StrategyRecompute {
		sv.met.deltaFallbacks.Inc()
	}
	return nil
}

// updateAdmitted contains panics from the propagation kernels.
func (mz *Materialized[T]) updateAdmitted(ctx context.Context, batches []delta.Batch[T]) (err error) {
	defer mz.sv.recoverInternal(&err)
	return mz.m.Update(ctx, batches...)
}

// Answer returns the current materialized answer.
func (mz *Materialized[T]) Answer() (*relation.Relation[T], error) {
	return mz.m.Answer()
}

// Strategy exposes the maintenance strategy in use.
func (mz *Materialized[T]) Strategy() delta.Strategy { return mz.m.Strategy() }

// DeltaStats exposes the underlying handle's counters.
func (mz *Materialized[T]) DeltaStats() delta.Stats { return mz.m.Stats() }

// Close releases the retained messages. Idempotent.
func (mz *Materialized[T]) Close() { mz.m.Close() }
