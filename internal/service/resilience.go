package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
)

// solveSite injects faults into the per-request execute path — the
// single choke point both Solve and SolveBatch members pass through
// after admission, so a chaos sweep reaches it from either entry.
var solveSite = fault.Register("service.solve")

// ErrOverloaded is the load-shedding sentinel: the service's in-flight
// gate is full, so the request was rejected before any work. Unlike
// ErrOverBudget (a property of the request's plan — retrying unchanged
// cannot succeed), overload is transient and the caller should retry
// after backing off; faqd maps it to 503 + Retry-After versus 429.
var ErrOverloaded = errors.New("service: overloaded, retry later")

// OverloadError is the typed load-shed rejection.
// errors.Is(err, ErrOverloaded) matches it.
type OverloadError struct {
	InFlight int // requests in flight when this one was rejected
	Limit    int // the gate's bound
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: %d requests in flight (limit %d): %v", e.InFlight, e.Limit, ErrOverloaded)
}

// Is makes errors.Is(err, ErrOverloaded) succeed on OverloadError values.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// ErrInternal is the panic-containment sentinel: a panic escaped a
// kernel or pool task and was recovered at the service boundary — the
// "typed errors, never panics" contract enforced at runtime. The
// concrete *InternalError records the recovered value and, when the
// panic was injected by a failpoint, the site.
var ErrInternal = errors.New("service: internal error")

// InternalError is the typed conversion of a recovered panic.
type InternalError struct {
	Site  string // failpoint site for injected panics, "" otherwise
	Value any    // the recovered panic value
}

func (e *InternalError) Error() string {
	if e.Site != "" {
		return fmt.Sprintf("service: recovered panic injected at failpoint %q: %v", e.Site, ErrInternal)
	}
	return fmt.Sprintf("service: recovered panic: %v: %v", e.Value, ErrInternal)
}

// Is makes errors.Is(err, ErrInternal) succeed on InternalError values.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// asInternal converts a recovered panic value into the typed internal
// error, unwrapping the pool's *exec.TaskPanic envelope and recording
// the site of an injected *fault.InjectedPanic.
func asInternal(r any) *InternalError {
	val := r
	if tp, ok := val.(*exec.TaskPanic); ok {
		val = tp.Val
	}
	ie := &InternalError{Value: val}
	if ip, ok := val.(*fault.InjectedPanic); ok {
		ie.Site = ip.Site
	}
	return ie
}

// Gate bounds the number of requests in flight. One Gate is shared by
// every per-semiring service of an engine, so the bound is engine-wide.
// Acquisition never blocks: a full gate sheds immediately (typed
// *OverloadError), keeping rejection latency flat under overload.
type Gate struct {
	limit int64
	n     atomic.Int64
}

// NewGate returns a gate admitting at most limit concurrent requests
// (limit < 1 returns nil — an absent gate admits everything).
func NewGate(limit int) *Gate {
	if limit < 1 {
		return nil
	}
	return &Gate{limit: int64(limit)}
}

// TryAcquire claims a slot, reporting false when the gate is full.
func (g *Gate) TryAcquire() bool {
	if g.n.Add(1) > g.limit {
		g.n.Add(-1)
		return false
	}
	return true
}

// Release returns a slot claimed by a successful TryAcquire.
func (g *Gate) Release() { g.n.Add(-1) }

// InFlight returns the number of currently admitted requests.
func (g *Gate) InFlight() int { return int(g.n.Load()) }

// Limit returns the gate's bound.
func (g *Gate) Limit() int { return int(g.limit) }

// WithGate bounds in-flight admission with g (shared across services
// for an engine-wide bound). A nil gate disables shedding.
func WithGate(g *Gate) Option { return func(c *config) { c.gate = g } }

// WithDeadline caps each request's wall time: Solve (and SolveBatch as
// one unit) runs under a context.WithTimeout child of the caller's ctx,
// so every node task downstream is gated by it and a slow solve returns
// context.DeadlineExceeded instead of holding its slot forever.
// d <= 0 disables the cap.
func WithDeadline(d time.Duration) Option { return func(c *config) { c.deadline = d } }

// shed records and types a gate rejection.
func (sv *Service[T]) shedReject() error {
	sv.met.shed.Inc()
	g := sv.cfg.gate
	return &OverloadError{InFlight: g.InFlight(), Limit: g.Limit()}
}

// withDeadline applies the configured per-request deadline to ctx.
func (sv *Service[T]) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if sv.cfg.deadline > 0 {
		return context.WithTimeout(ctx, sv.cfg.deadline)
	}
	return ctx, func() {}
}

// recoverInternal is the service-boundary containment point: deferred
// around every execution path, it converts an escaped panic into a
// typed *InternalError and counts it. The pool already re-surfaces
// worker panics on the calling goroutine (exec.TaskPanic), so this
// single recover is sufficient at every worker count.
func (sv *Service[T]) recoverInternal(err *error) {
	if r := recover(); r != nil {
		sv.met.panics.Inc()
		*err = asInternal(r)
	}
}

// countErr classifies a request error into the degradation counters.
func (sv *Service[T]) countErr(err error) {
	sv.met.errors.Inc()
	if errors.Is(err, context.DeadlineExceeded) {
		sv.met.deadlineExceeded.Inc()
	}
}
