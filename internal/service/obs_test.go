package service

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/semiring"
)

// TestCachedPlanCarriesMeasuredShapes is the acceptance criterion for
// the measured-shapes feedback loop: the second solve of a shape hits
// the cached plan and both its Info and the plan's snapshot carry
// non-zero measured per-node durations from real executions.
func TestCachedPlanCarriesMeasuredShapes(t *testing.T) {
	cache := plan.NewCache(8)
	sv := New[int64](semiring.Count{}, "count", cache)
	ctx := context.Background()

	q1 := countQuery(t, pathEdges, 5, 60, 8, []int{0}, 9001)
	if _, _, err := sv.Solve(ctx, q1); err != nil {
		t.Fatal(err)
	}
	q2 := countQuery(t, pathEdges, 5, 60, 8, []int{0}, 9002)
	_, info, err := sv.Solve(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Fatal("second solve of the same shape should hit the plan cache")
	}
	if len(info.NodeNS) == 0 {
		t.Fatal("cached-plan solve reported no per-node durations")
	}
	var total int64
	for _, ns := range info.NodeNS {
		if ns < 0 {
			t.Fatalf("negative node duration %d in %v", ns, info.NodeNS)
		}
		total += ns
	}
	if total <= 0 {
		t.Fatalf("per-node durations sum to %d, want > 0 (%v)", total, info.NodeNS)
	}

	snaps := cache.Plans()
	if len(snaps) != 1 {
		t.Fatalf("cache holds %d plans, want 1", len(snaps))
	}
	if snaps[0].Execs < 2 {
		t.Errorf("plan execs = %d, want >= 2", snaps[0].Execs)
	}
	if snaps[0].WorkNS <= 0 {
		t.Errorf("cached plan WorkNS = %d, want > 0: measured TaskShapes did not reach the plan", snaps[0].WorkNS)
	}
	if snaps[0].CritPathNS <= 0 {
		t.Errorf("cached plan CritPathNS = %d, want > 0", snaps[0].CritPathNS)
	}
}

// TestSolveTraceRecorded: a service with a tracer records one trace
// per request with the phase spans and per-node exec spans, and the
// shared registry surfaces the same request in its exposition.
func TestSolveTraceRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	sv := New[int64](semiring.Count{}, "count", plan.NewCache(8),
		WithMetrics(reg), WithTracer(tracer))
	ctx := context.Background()

	for rep := 0; rep < 2; rep++ {
		q := countQuery(t, pathEdges, 5, 50, 8, []int{0}, int64(7000+rep))
		if _, _, err := sv.Solve(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	traces := tracer.Recent(10)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	newest, oldest := traces[0], traces[1]
	if oldest.CacheHit || !newest.CacheHit {
		t.Errorf("cache hits: oldest=%v newest=%v, want false/true", oldest.CacheHit, newest.CacheHit)
	}
	if newest.Semiring != "count" || len(newest.Fingerprint) != 16 {
		t.Errorf("trace envelope: semiring %q fingerprint %q", newest.Semiring, newest.Fingerprint)
	}
	if newest.TotalNS <= 0 {
		t.Errorf("trace TotalNS = %d, want > 0", newest.TotalNS)
	}
	want := map[string]bool{"canonicalize": false, "cache": false, "admission": false, "bind": false, "exec": false}
	nodes := 0
	for _, sp := range newest.Spans {
		if sp.Name == "exec.node" {
			if sp.Node < 0 {
				t.Errorf("exec.node span with node %d", sp.Node)
			}
			nodes++
			continue
		}
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("phase span %q missing from %v", name, newest.Spans)
		}
	}
	if nodes == 0 {
		t.Error("no per-node exec spans recorded")
	}

	// The shared registry carries the same requests, and Stats reads
	// through it.
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("registry exposition does not parse: %v", err)
	}
	if v, ok := sc.Value("faq_service_requests_total", map[string]string{"semiring": "count"}); !ok || v != 2 {
		t.Errorf("faq_service_requests_total = %v (ok=%v), want 2", v, ok)
	}
	if st := sv.Stats(); st.Requests != 2 || st.Errors != 0 {
		t.Errorf("Stats = %+v, want Requests=2 Errors=0", st)
	}
}
