package service

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/semiring"
)

func bitIdentical[T comparable](a, b *relation.Relation[T]) bool {
	if len(a.Schema()) != len(b.Schema()) || a.Len() != b.Len() {
		return false
	}
	for i := range a.Schema() {
		if a.Schema()[i] != b.Schema()[i] {
			return false
		}
	}
	for i := 0; i < a.Len(); i++ {
		if !slices.Equal(a.Tuple(i), b.Tuple(i)) || a.Value(i) != b.Value(i) {
			return false
		}
	}
	return true
}

func countQuery(t *testing.T, edges [][]int, nv, n, dom int, free []int, seed int64) *faq.Query[int64] {
	t.Helper()
	h := hypergraph.New(nv)
	for _, e := range edges {
		h.AddEdge(e...)
	}
	s := semiring.Count{}
	r := rand.New(rand.NewSource(seed))
	factors := make([]*relation.Relation[int64], h.NumEdges())
	for e := range factors {
		b := relation.NewBuilder[int64](s, h.Edge(e))
		tuple := make([]int, len(h.Edge(e)))
		for i := 0; i < n; i++ {
			for j := range tuple {
				tuple[j] = r.Intn(dom)
			}
			b.Add(tuple, int64(1+r.Intn(3)))
		}
		factors[e] = b.Build()
	}
	return &faq.Query[int64]{S: s, H: h, Factors: factors, Free: free, DomSize: dom}
}

var pathEdges = [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}

// TestServiceSolveMatchesDirect: cold request, then warm repeats, each
// bit-identical to per-request faq.Solve (Count is exact, so bit-identity
// holds regardless of which minimal GHD the planner picked).
func TestServiceSolveMatchesDirect(t *testing.T) {
	sv := New[int64](semiring.Count{}, "count", plan.NewCache(8))
	for rep := 0; rep < 3; rep++ {
		q := countQuery(t, pathEdges, 5, 50, 8, []int{0}, int64(600+rep))
		want, err := faq.Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		ans, info, err := sv.Solve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(ans, want) {
			t.Fatalf("rep %d: service answer differs from direct solve", rep)
		}
		if (rep > 0) != info.CacheHit {
			t.Fatalf("rep %d: CacheHit = %v", rep, info.CacheHit)
		}
	}
	if st := sv.Cache().Stats(); st.Compiles != 1 || st.Hits != 2 {
		t.Fatalf("cache stats %+v, want 1 compile / 2 hits", st)
	}
	if st := sv.Stats(); st.Requests != 3 || st.Errors != 0 {
		t.Fatalf("service stats %+v", st)
	}
}

// TestServiceFallback: a free set no bag covers is served by BruteForce
// with Fallback marked, and the (negative) planning result is cached.
func TestServiceFallback(t *testing.T) {
	sv := New[int64](semiring.Count{}, "count", plan.NewCache(8))
	for rep := 0; rep < 2; rep++ {
		q := countQuery(t, pathEdges, 5, 20, 6, []int{0, 4}, int64(610+rep))
		want, err := faq.BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}
		ans, info, err := sv.Solve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Fallback {
			t.Fatal("want Fallback")
		}
		if !bitIdentical(ans, want) {
			t.Fatal("fallback answer differs from BruteForce")
		}
	}
	if st := sv.Cache().Stats(); st.Compiles != 1 {
		t.Fatalf("fallback plan not cached: %+v", st)
	}
}

// TestServiceCancellation: an already-canceled ctx stops the request with
// ctx.Err() before (or during) the GHD pass.
func TestServiceCancellation(t *testing.T) {
	sv := New[int64](semiring.Count{}, "count", plan.NewCache(8))
	q := countQuery(t, pathEdges, 5, 50, 8, []int{0}, 620)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := sv.Solve(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The same shape still serves fine with a live ctx.
	if _, _, err := sv.Solve(context.Background(), q); err != nil {
		t.Fatalf("after cancel: %v", err)
	}
}

// renameEdges applies a vertex-id bijection to an edge list (batch
// members of one plan group are renamed variants, each of which must
// bind the shared plan through its own maps).
func renameEdges(edges [][]int, perm []int) [][]int {
	out := make([][]int, len(edges))
	for i, e := range edges {
		ne := make([]int, len(e))
		for j, v := range e {
			ne[j] = perm[v]
		}
		out[i] = ne
	}
	return out
}

// TestServiceBatchGroupsPlans: a mixed batch compiles once per distinct
// shape — including renamed variants, which share the group but carry
// their own fingerprints — answers align with inputs and match direct
// solves, and errors stay per-request.
func TestServiceBatchGroupsPlans(t *testing.T) {
	sv := New[int64](semiring.Count{}, "count", plan.NewCache(8))
	starEdges := [][]int{{0, 1}, {0, 2}, {0, 3}}
	perms5 := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}, {1, 4, 0, 3, 2}}
	perms4 := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	var qs []*faq.Query[int64]
	for i := 0; i < 4; i++ {
		qs = append(qs, countQuery(t, renameEdges(pathEdges, perms5[i]), 5, 40, 8, []int{perms5[i][0]}, int64(700+i)))
		qs = append(qs, countQuery(t, renameEdges(starEdges, perms4[i]), 4, 40, 8, []int{perms4[i][0]}, int64(720+i)))
	}
	// One malformed request in the middle: free variable out of range.
	bad := countQuery(t, pathEdges, 5, 10, 8, nil, 730)
	bad.Free = []int{99}
	qs = append(qs[:3], append([]*faq.Query[int64]{bad}, qs[3:]...)...)

	answers, infos, errs := sv.SolveBatch(context.Background(), qs)
	for i, q := range qs {
		if q == bad {
			if errs[i] == nil {
				t.Fatalf("request %d: want validation error", i)
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want, err := faq.Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(answers[i], want) {
			t.Fatalf("request %d: batch answer differs from direct solve", i)
		}
		_ = infos[i]
	}
	if st := sv.Cache().Stats(); st.Compiles != 2 {
		t.Fatalf("batch compiled %d plans for 2 shapes", st.Compiles)
	}
}
