package service

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// svcMetrics is a service's pre-bound metric handle set: one child per
// semiring on the configured registry (WithMetrics; a private registry
// by default, so independently constructed services don't share
// counters). Every handle is bound once in New — request paths only
// touch atomics.
type svcMetrics struct {
	requests         *obs.Counter
	batches          *obs.Counter
	fallbacks        *obs.Counter
	rejected         *obs.Counter
	errors           *obs.Counter
	shed             *obs.Counter
	deadlineExceeded *obs.Counter
	panics           *obs.Counter
	updates          *obs.Counter
	deltaFallbacks   *obs.Counter
	latency          *obs.Histogram
}

// bindMetrics registers (idempotently) the service metric families on r
// and binds the children for one semiring.
func bindMetrics(r *obs.Registry, name string) svcMetrics {
	return svcMetrics{
		requests: r.NewCounterVec("faq_service_requests_total",
			"Requests accepted for processing (solve, batch member, materialize, update).",
			"semiring").With(name),
		batches: r.NewCounterVec("faq_service_batches_total",
			"SolveBatch calls (members count into faq_service_requests_total).",
			"semiring").With(name),
		fallbacks: r.NewCounterVec("faq_service_fallbacks_total",
			"Requests served by the brute-force fallback path.",
			"semiring").With(name),
		rejected: r.NewCounterVec("faq_service_rejected_total",
			"Admission-control rejections (memory budget, disabled fallback).",
			"semiring").With(name),
		errors: r.NewCounterVec("faq_service_errors_total",
			"Requests that returned an error (any class).",
			"semiring").With(name),
		shed: r.NewCounterVec("faq_service_shed_total",
			"Requests shed by the in-flight gate (transient overload).",
			"semiring").With(name),
		deadlineExceeded: r.NewCounterVec("faq_service_deadline_exceeded_total",
			"Requests cut off by the per-request deadline.",
			"semiring").With(name),
		panics: r.NewCounterVec("faq_service_panics_total",
			"Panics recovered into typed internal errors at the service boundary.",
			"semiring").With(name),
		updates: r.NewCounterVec("faq_service_updates_total",
			"Materialized-view update batches applied.",
			"semiring").With(name),
		deltaFallbacks: r.NewCounterVec("faq_service_delta_fallbacks_total",
			"Updates served by the per-node recompute fallback.",
			"semiring").With(name),
		latency: r.NewHistogramVec("faq_service_request_ns",
			"End-to-end request latency (admission to answer), nanoseconds.",
			obs.DurationBucketsNS, "semiring").With(name),
	}
}

// WithMetrics binds the service's counters and latency histogram to
// children of r (labelled by semiring name) instead of a private
// registry — how an engine aggregates its per-semiring services onto
// one /metrics surface. Registration is idempotent, so any number of
// services can share r.
func WithMetrics(r *obs.Registry) Option { return func(c *config) { c.metrics = r } }

// WithTracer records one obs.Trace per request into t: the
// canonicalize → cache → bind → admission phases plus one span per GHD
// node, timed by the exec layer. A nil tracer disables tracing.
func WithTracer(t *obs.Tracer) Option { return func(c *config) { c.tracer = t } }

// recordTrace emits one solve trace from a request's Info. No-op
// without a configured tracer; the per-request cost is building the
// span slice, paid only when tracing is on (it is on in faqd).
func (sv *Service[T]) recordTrace(start time.Time, info *Info, err error, batch bool) {
	if sv.cfg.tracer == nil {
		return
	}
	spans := make([]obs.Span, 0, 5+len(info.NodeNS))
	spans = append(spans,
		obs.Span{Name: "canonicalize", Node: -1, DurNS: info.CanonNS},
		obs.Span{Name: "cache", Node: -1, DurNS: info.PlanNS},
		obs.Span{Name: "admission", Node: -1, DurNS: info.AdmitNS},
		obs.Span{Name: "bind", Node: -1, DurNS: info.BindNS},
		obs.Span{Name: "exec", Node: -1, DurNS: info.ExecNS},
	)
	for v, ns := range info.NodeNS {
		spans = append(spans, obs.Span{Name: "exec.node", Node: v, DurNS: ns})
	}
	tr := obs.Trace{
		Time:     start,
		Semiring: sv.name,
		CacheHit: info.CacheHit,
		Fallback: info.Fallback,
		Batch:    batch,
		TotalNS:  info.TotalNS,
		Spans:    spans,
	}
	if info.PlanHash != 0 {
		tr.Fingerprint = fmt.Sprintf("%016x", info.PlanHash)
	}
	if err != nil {
		tr.Err = err.Error()
	}
	sv.cfg.tracer.Record(tr)
}
