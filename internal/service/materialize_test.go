package service

import (
	"context"
	"errors"
	"testing"

	"repro/internal/delta"
	"repro/internal/faq"
	"repro/internal/fault"
	"repro/internal/hypergraph"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// TestServiceMaterialize pins the serving contract of the incremental
// path: plan reuse, answers bit-identical to Solve across updates, and
// the updates counter.
func TestServiceMaterialize(t *testing.T) {
	sv := New[int64](semiring.Count{}, "count", plan.NewCache(8))
	q := countQuery(t, pathEdges, 5, 60, 8, []int{0}, 77)

	mz, info, err := sv.Materialize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer mz.Close()
	if info.Fallback {
		t.Fatal("path query must not be a fallback shape")
	}
	want, _, err := sv.Solve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mz.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(got, want) {
		t.Fatal("materialized answer differs from Solve")
	}

	// Apply an update; the handle must track a re-solve of the mutated
	// query bit-identically.
	if err := mz.Update(context.Background(), delta.Batch[int64]{
		Edge: 0, Inserts: []delta.Tuple[int64]{{Row: []int{7, 7}, Val: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	q2 := countQuery(t, pathEdges, 5, 60, 8, []int{0}, 77)
	b := relation.NewBuilder[int64](semiring.Count{}, q2.H.Edge(0))
	f := q2.Factors[0]
	for i := 0; i < f.Len(); i++ {
		b.AddRow(f.Tuple(i), f.Value(i))
	}
	b.Add([]int{7, 7}, 2)
	q2.Factors[0] = b.Build()
	want2, _, err := sv.Solve(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := mz.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(got2, want2) {
		t.Fatal("updated answer differs from re-solve")
	}

	st := sv.Stats()
	if st.Updates != 1 {
		t.Fatalf("updates = %d, want 1", st.Updates)
	}
	if st.DeltaFallbacks != 0 {
		t.Fatalf("count is a ring strategy; delta_fallbacks = %d, want 0", st.DeltaFallbacks)
	}
}

// TestServiceMaterializeFallbackCounter pins that recompute-strategy
// updates increment delta_fallbacks.
func TestServiceMaterializeFallbackCounter(t *testing.T) {
	sv := New[float64](semiring.MinPlus{}, "minplus", plan.NewCache(8))
	h := hypergraph.New(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	s := semiring.MinPlus{}
	factors := make([]*relation.Relation[float64], 2)
	for e := range factors {
		b := relation.NewBuilder(s, h.Edge(e))
		for i := 0; i < 4; i++ {
			b.Add([]int{i, i}, float64(i))
		}
		factors[e] = b.Build()
	}
	q := &faq.Query[float64]{S: s, H: h, Factors: factors, Free: []int{0}, DomSize: 8}

	mz, _, err := sv.Materialize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer mz.Close()
	if mz.Strategy() != delta.StrategyRecompute {
		t.Fatalf("minplus strategy = %v, want recompute", mz.Strategy())
	}
	for i := 0; i < 3; i++ {
		if err := mz.Update(context.Background(), delta.Batch[float64]{
			Edge: 1, Inserts: []delta.Tuple[float64]{{Row: []int{i, i + 1}, Val: 1}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := sv.Stats()
	if st.Updates != 3 || st.DeltaFallbacks != 3 {
		t.Fatalf("updates/delta_fallbacks = %d/%d, want 3/3", st.Updates, st.DeltaFallbacks)
	}
}

// TestServiceMaterializeFallbackShape pins the typed rejection of
// unmaintainable (brute-force fallback) shapes.
func TestServiceMaterializeFallbackShape(t *testing.T) {
	sv := New[int64](semiring.Count{}, "count", plan.NewCache(8))
	// Free variables at both ends of a path: no single root bag covers
	// them, so planning falls back to brute force.
	q := countQuery(t, pathEdges, 5, 20, 6, []int{0, 4}, 3)
	_, _, err := sv.Materialize(context.Background(), q)
	if !errors.Is(err, faq.ErrFreeOutsideRoot) {
		t.Fatalf("err = %v, want ErrFreeOutsideRoot", err)
	}
	if st := sv.Stats(); st.Rejected == 0 {
		t.Fatalf("fallback-shape materialization must count as rejected: %+v", st)
	}
}

// TestChaosServiceMaterializeUpdatePanic pins the resilience
// envelope: an injected panic inside an update surfaces as a typed
// internal error and the handle remains usable.
func TestChaosServiceMaterializeUpdatePanic(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sv := New[int64](semiring.Count{}, "count", plan.NewCache(8))
	q := countQuery(t, pathEdges, 5, 40, 8, []int{0}, 11)
	mz, _, err := sv.Materialize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer mz.Close()
	base, err := mz.Answer()
	if err != nil {
		t.Fatal(err)
	}

	fault.Enable("delta.apply", fault.Config{Mode: fault.ModePanic, Once: true})
	uerr := mz.Update(context.Background(), delta.Batch[int64]{
		Edge: 0, Inserts: []delta.Tuple[int64]{{Row: []int{1, 1}, Val: 1}},
	})
	if !errors.Is(uerr, ErrInternal) {
		t.Fatalf("panic in update = %v, want ErrInternal", uerr)
	}
	got, err := mz.Answer()
	if err != nil || !bitIdentical(got, base) {
		t.Fatalf("faulted update must roll back (err %v)", err)
	}
	if st := sv.Stats(); st.Updates != 0 || st.Panics != 1 {
		t.Fatalf("stats after contained panic: %+v", st)
	}

	fault.Reset()
	if err := mz.Update(context.Background(), delta.Batch[int64]{
		Edge: 0, Inserts: []delta.Tuple[int64]{{Row: []int{1, 1}, Val: 1}},
	}); err != nil {
		t.Fatalf("handle unusable after contained panic: %v", err)
	}
	if st := sv.Stats(); st.Updates != 1 {
		t.Fatalf("updates = %d, want 1", st.Updates)
	}
}
