package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/faq"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// chaosSites is the sweep universe this test binary links: every site
// on the centralized serving path. relation.semijoin (a kernel with no
// caller on this path) sweeps in the relation package's chaos test, the
// netsim sites in the protocol package's, and faqd.solve in the
// daemon's — this list pins that a refactor cannot silently drop a
// site from coverage.
var chaosSites = []string{
	"exec.task",
	"plan.compile",
	"relation.build",
	"relation.eliminate",
	"relation.join",
	"service.solve",
}

// chaosModes are the four injected behaviors, each armed to fire once
// so a solve both experiences the fault and (for non-terminal modes)
// completes.
var chaosModes = []fault.Config{
	{Mode: fault.ModeError, Once: true},
	{Mode: fault.ModePanic, Once: true},
	{Mode: fault.ModeDelay, Once: true},
	{Mode: fault.ModeCancel, Once: true},
}

// typedChaosError reports whether err is one of the typed outcomes the
// resilience contract allows a faulted solve to return.
func typedChaosError(err error) bool {
	return errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, ErrInternal) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// solveBounded runs one Solve with a hang watchdog.
func solveBounded(t *testing.T, sv *Service[int64], q *faq.Query[int64]) (*relation.Relation[int64], error) {
	t.Helper()
	type outcome struct {
		ans *relation.Relation[int64]
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		ans, _, err := sv.Solve(context.Background(), q)
		done <- outcome{ans, err}
	}()
	select {
	case o := <-done:
		return o.ans, o.err
	case <-time.After(60 * time.Second):
		t.Fatal("solve hung under injected fault")
		return nil, nil
	}
}

// TestChaosSweep is the resilience acceptance test: every registered
// failpoint on the serving path, fired in every mode, at 1/2/8
// workers. The contract per case: the solve returns (no hang); on
// success the answer is bit-identical to the fault-free reference; on
// failure the error is typed (injected / internal / cancellation) —
// never an escaped panic or a corrupt answer. The service stays usable
// after every case.
func TestChaosSweep(t *testing.T) {
	defer fault.Reset()
	fault.Reset() // a stray FAQ_FAILPOINTS env must not skew the reference

	registered := make(map[string]bool)
	for _, name := range fault.Names() {
		registered[name] = true
	}
	for _, site := range chaosSites {
		if !registered[site] {
			t.Fatalf("site %q not registered in this binary — sweep universe out of date", site)
		}
	}

	q := countQuery(t, pathEdges, 5, 60, 8, []int{0}, 4242)
	want, err := faq.Solve(q)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{1, 2, 8} {
		pool := exec.New(w)
		prev := exec.SetWorkers(w) // kernel-internal partitioning too
		for _, site := range chaosSites {
			for _, cfg := range chaosModes {
				t.Run(fmt.Sprintf("w%d/%s/%s", w, site, cfg.Mode), func(t *testing.T) {
					sv := New[int64](semiring.Count{}, "count", plan.NewCache(8), WithPool(pool))
					fault.Enable(site, cfg)
					defer fault.Reset()

					ans, err := solveBounded(t, sv, q)
					s, _ := fault.Lookup(site)
					if s.Fired() == 0 {
						t.Fatalf("site %s never fired — this case tested nothing", site)
					}
					if err != nil {
						if !typedChaosError(err) {
							t.Fatalf("untyped error under %s at %s: %v", cfg.Mode, site, err)
						}
					} else if !bitIdentical(ans, want) {
						t.Fatalf("fault at %s (%s) corrupted a successful answer", site, cfg.Mode)
					}

					// Containment: the service (and its pool) serve cleanly
					// after the fault.
					fault.Reset()
					ans2, err2 := solveBounded(t, sv, q)
					if err2 != nil {
						t.Fatalf("service unusable after fault at %s: %v", site, err2)
					}
					if !bitIdentical(ans2, want) {
						t.Fatalf("post-fault answer differs at %s", site)
					}
				})
			}
		}
		exec.SetWorkers(prev)
	}
}

// TestChaosBatch runs the panic and error sweeps through SolveBatch:
// the faulted member (or the whole batch, when the fault hits a shared
// phase) fails typed, and no member's success is corrupt.
func TestChaosBatch(t *testing.T) {
	defer fault.Reset()
	fault.Reset()

	qs := make([]*faq.Query[int64], 6)
	wants := make([]*relation.Relation[int64], len(qs))
	for i := range qs {
		qs[i] = countQuery(t, pathEdges, 5, 40, 8, []int{0}, int64(9000+i))
		w, err := faq.Solve(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	for _, site := range chaosSites {
		for _, mode := range []fault.Mode{fault.ModeError, fault.ModePanic} {
			t.Run(fmt.Sprintf("%s/%s", site, mode), func(t *testing.T) {
				sv := New[int64](semiring.Count{}, "count", plan.NewCache(8))
				fault.Enable(site, fault.Config{Mode: mode, Once: true})
				defer fault.Reset()
				answers, _, errs := sv.SolveBatch(context.Background(), qs)
				sawFault := false
				for i := range qs {
					if errs[i] != nil {
						if !typedChaosError(errs[i]) {
							t.Fatalf("member %d: untyped error: %v", i, errs[i])
						}
						sawFault = true
						continue
					}
					if !bitIdentical(answers[i], wants[i]) {
						t.Fatalf("member %d: corrupt answer next to an injected fault", i)
					}
				}
				s, _ := fault.Lookup(site)
				if s.Fired() > 0 && mode == fault.ModePanic && !sawFault {
					t.Fatalf("panic at %s fired but no member errored", site)
				}
			})
		}
	}
}

// TestChaosCancellationPropagation is the cancellation satellite: with
// a delay armed at each failpoint site (always-firing, so the solve is
// provably mid-flight), canceling the request context returns
// context.Canceled within a bounded wait, and the pool serves the next
// request cleanly — at 1, 2, and 8 workers.
func TestChaosCancellationPropagation(t *testing.T) {
	defer fault.Reset()
	fault.Reset()

	q := countQuery(t, pathEdges, 5, 60, 8, []int{0}, 7777)
	want, err := faq.Solve(q)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{1, 2, 8} {
		pool := exec.New(w)
		for _, site := range chaosSites {
			t.Run(fmt.Sprintf("w%d/%s", w, site), func(t *testing.T) {
				sv := New[int64](semiring.Count{}, "count", plan.NewCache(8), WithPool(pool))
				// Every evaluation delays, so the request is still in
				// flight when the cancel lands, whatever the site.
				fault.Enable(site, fault.Config{Mode: fault.ModeDelay, Delay: 30 * time.Millisecond})
				defer fault.Reset()

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				type outcome struct {
					err error
					dur time.Duration
				}
				done := make(chan outcome, 1)
				go func() {
					t0 := time.Now()
					_, _, err := sv.Solve(ctx, q)
					done <- outcome{err, time.Since(t0)}
				}()
				time.Sleep(5 * time.Millisecond)
				cancel()
				select {
				case o := <-done:
					if !errors.Is(o.err, context.Canceled) {
						t.Fatalf("mid-solve cancel at %s returned %v, want context.Canceled", site, o.err)
					}
					if o.dur > 30*time.Second {
						t.Fatalf("cancel at %s took %v — not prompt", site, o.dur)
					}
				case <-time.After(60 * time.Second):
					t.Fatalf("cancel at %s: solve never returned", site)
				}

				// The pool is reusable after the canceled request.
				fault.Reset()
				ans, _, err := sv.Solve(context.Background(), q)
				if err != nil || !bitIdentical(ans, want) {
					t.Fatalf("pool unusable after canceled request at %s: %v", site, err)
				}
			})
		}
	}
}
