package service

import (
	"fmt"
	"sort"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// Wire types: the JSON request/response schema of cmd/faqd's /solve
// endpoint, shared with cmd/faqload. Values travel as float64 for every
// semiring (exact for bool/count within 2^53; the float semirings are
// float64 natively); a nil Values slice annotates every tuple with the
// semiring's 1 — the natural encoding of ordinary database tuples.

// WireFactor is one input relation in listing representation.
type WireFactor struct {
	Tuples [][]int   `json:"tuples"`
	Values []float64 `json:"values,omitempty"`
}

// WireRequest is one /solve request.
type WireRequest struct {
	// Semiring: bool | count | sumproduct | minplus | maxtimes.
	Semiring string `json:"semiring"`
	// Edges lists the query hyperedges as vertex-name lists; Factors[i]
	// is the relation on Edges[i] (tuple columns in the edge's order).
	Edges   [][]string   `json:"edges"`
	Factors []WireFactor `json:"factors"`
	// Free lists the free-variable names (may be empty: scalar answer).
	Free []string `json:"free,omitempty"`
	// Dom is the domain size D (tuple values live in [0, Dom)).
	Dom int `json:"dom"`
}

// WireAnswer is one /solve response.
type WireAnswer struct {
	Schema []string  `json:"schema"`
	Tuples [][]int   `json:"tuples"`
	Values []float64 `json:"values"`
	// Serving metadata.
	PlanHash string `json:"plan_hash"`
	Info     Info   `json:"info"`
}

// SemiringNames lists the wire semiring names faqd accepts.
var SemiringNames = []string{"bool", "count", "sumproduct", "minplus", "maxtimes"}

// BuildQuery assembles a typed FAQ query from a wire request. conv maps
// wire float64 values into the semiring's value type.
func BuildQuery[T any](s semiring.Semiring[T], wr *WireRequest, conv func(float64) T) (*faq.Query[T], error) {
	if len(wr.Edges) == 0 {
		return nil, fmt.Errorf("service: request has no edges")
	}
	if len(wr.Factors) != len(wr.Edges) {
		return nil, fmt.Errorf("service: %d factors for %d edges", len(wr.Factors), len(wr.Edges))
	}
	if wr.Dom < 1 {
		return nil, fmt.Errorf("service: dom must be positive, got %d", wr.Dom)
	}
	b := hypergraph.NewBuilder()
	for i, names := range wr.Edges {
		if len(names) == 0 {
			return nil, fmt.Errorf("service: edge %d is empty", i)
		}
		b.Edge(names...)
	}
	h := b.Build()
	factors := make([]*relation.Relation[T], h.NumEdges())
	for e, wf := range wr.Factors {
		edgeVars := h.Edge(e)
		// The wire tuple order follows the request's name order for the
		// edge; map name positions to variable ids, dropping duplicate
		// name occurrences the hypergraph deduplicated.
		nameIDs := make([]int, 0, len(wr.Edges[e]))
		seen := map[int]bool{}
		for _, name := range wr.Edges[e] {
			id := b.VertexID(name)
			if !seen[id] {
				seen[id] = true
				nameIDs = append(nameIDs, id)
			}
		}
		if len(nameIDs) != len(edgeVars) {
			return nil, fmt.Errorf("service: edge %d name/vertex mismatch", e)
		}
		rb := relation.NewBuilderHint(s, nameIDs, len(wf.Tuples))
		for ti, tuple := range wf.Tuples {
			if len(tuple) != len(nameIDs) {
				return nil, fmt.Errorf("service: factor %d tuple %d has arity %d, want %d", e, ti, len(tuple), len(nameIDs))
			}
			// Range-check before the builder's int32 narrowing: an
			// out-of-range wire value must 4xx here, not wrap modulo 2^32
			// into the valid domain and serve a silently wrong answer.
			for j, x := range tuple {
				if x < 0 || x >= wr.Dom {
					return nil, fmt.Errorf("service: factor %d tuple %d column %d value %d outside domain [0,%d)", e, ti, j, x, wr.Dom)
				}
			}
			v := s.One()
			if wf.Values != nil {
				if ti >= len(wf.Values) {
					return nil, fmt.Errorf("service: factor %d has %d values for %d tuples", e, len(wf.Values), len(wf.Tuples))
				}
				v = conv(wf.Values[ti])
			}
			rb.Add(tuple, v)
		}
		factors[e] = rb.Build()
	}
	free := make([]int, 0, len(wr.Free))
	for _, name := range wr.Free {
		id := b.VertexID(name)
		if id < 0 {
			return nil, fmt.Errorf("service: free variable %q appears in no edge", name)
		}
		free = append(free, id)
	}
	sort.Ints(free)
	free = dedupSorted(free)
	return &faq.Query[T]{S: s, H: h, Factors: factors, Free: free, DomSize: wr.Dom}, nil
}

// AnswerToWire renders an answer relation with the query's vertex names.
func AnswerToWire[T any](q *faq.Query[T], ans *relation.Relation[T], back func(T) float64, info Info) *WireAnswer {
	wa := &WireAnswer{
		Schema:   make([]string, len(ans.Schema())),
		Tuples:   make([][]int, ans.Len()),
		Values:   make([]float64, ans.Len()),
		PlanHash: fmt.Sprintf("%016x", info.PlanHash),
		Info:     info,
	}
	for i, v := range ans.Schema() {
		wa.Schema[i] = q.H.VertexName(v)
	}
	for i := 0; i < ans.Len(); i++ {
		t := ans.Tuple(i)
		row := make([]int, len(t))
		for j, x := range t {
			row[j] = int(x)
		}
		wa.Tuples[i] = row
		wa.Values[i] = back(ans.Value(i))
	}
	return wa
}

func dedupSorted(a []int) []int {
	out := a[:0]
	for i, x := range a {
		if i == 0 || x != a[i-1] {
			out = append(out, x)
		}
	}
	return out
}
