package twoparty

import (
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/topology"
	"repro/internal/tribes"
)

func TestDISJSemantics(t *testing.T) {
	v, tr, err := DISJ([]int{1, 3}, []int{3, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !v {
		t.Error("sets intersect at 3: DISJ should be 1")
	}
	if tr.Total() != 9 {
		t.Errorf("trivial protocol cost = %d, want N+1 = 9", tr.Total())
	}
	v, _, err = DISJ([]int{0, 2}, []int{1, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Error("disjoint sets: DISJ should be 0")
	}
	if _, _, err := DISJ([]int{9}, nil, 8); err == nil {
		t.Error("expected range error")
	}
}

func TestTRIBESMatchesInstanceEval(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 40; trial++ {
		in := tribes.RandomInstance(1+r.Intn(4), 4+r.Intn(8), r)
		v, tr, err := TRIBES(in)
		if err != nil {
			t.Fatal(err)
		}
		if v != in.Eval() {
			t.Fatalf("two-party TRIBES = %v, Eval = %v", v, in.Eval())
		}
		want := in.M() * (in.N + 1)
		if tr.Total() != want {
			t.Errorf("cost = %d, want m(N+1) = %d", tr.Total(), want)
		}
	}
}

func TestSimulateAcrossCut(t *testing.T) {
	tr, err := SimulateAcrossCut(100, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 100 rounds × 4 edges × (8 data + 2 tag) bits.
	if tr.Rounds != 100*4*10 {
		t.Errorf("simulated bits = %d, want 4000", tr.Rounds)
	}
	if _, err := SimulateAcrossCut(-1, 1, 1); err == nil {
		t.Error("expected parameter error")
	}
}

// TestLemma44EndToEnd is the full lower-bound argument in code: the
// measured network protocol on an embedded TRIBES instance, simulated
// across the min cut, must cost at least the Ω(mN) two-party bit bound —
// i.e. the network rounds must clear RoundLowerBound.
func TestLemma44EndToEnd(t *testing.T) {
	h := hypergraph.ExampleH1()
	sites, err := tribes.SitesForForest(h)
	if err != nil {
		t.Fatal(err)
	}
	N := 64
	r := rand.New(rand.NewSource(82))
	in := tribes.HardInstance(1, N, true, r)
	emb, err := tribes.EmbedAtSites(h, sites, in)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.Line(4)
	minCut, side, err := flow.MinCutSeparating(g, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	assign, _, bNode, err := tribes.CutAssignment(emb, side)
	if err != nil {
		t.Fatal(err)
	}
	s := &protocol.Setup[bool]{Q: emb.Q, G: g, Assign: assign, Output: bNode}
	ans, rep, err := protocol.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := relation.ScalarValue(emb.Q.S, ans)
	if v != in.Eval() {
		t.Fatal("embedding broken")
	}
	// The simulated two-party cost of the real protocol...
	sim, err := SimulateAcrossCut(rep.Rounds, minCut, s.Bits())
	if err != nil {
		t.Fatal(err)
	}
	// ...must be able to pay the Ω(mN) toll (here with constant 1/4 for
	// the randomized bound's constant).
	bitBound := tribes.LowerBoundBits(emb.M, N) / 4
	if float64(sim.Rounds) < bitBound {
		t.Errorf("simulated two-party cost %d below bit bound %v: protocol impossibly fast",
			sim.Rounds, bitBound)
	}
	// And the inverted bound must sit below the measured rounds.
	lb := RoundLowerBound(bitBound, minCut, s.Bits())
	if float64(rep.Rounds) < lb {
		t.Errorf("measured rounds %d below inverted bound %v", rep.Rounds, lb)
	}
}

func TestRoundLowerBoundEdges(t *testing.T) {
	if RoundLowerBound(100, 0, 8) != 0 {
		t.Error("invalid cut should yield 0")
	}
	if got := RoundLowerBound(100, 1, 10); got != 10 {
		t.Errorf("LB = %v, want 10", got)
	}
}
