// Package twoparty implements Model 2.2: Yao's two-party communication
// model in which Alice and Bob exchange one bit per round over a single
// channel. It provides reference protocols for set disjointness and
// TRIBES, and the cut-simulation of Lemma 4.4: a network protocol's
// transcript across a cut (A, B) is replayed as a two-party protocol
// whose bit cost is bounded by rounds · MinCut · ⌈log₂ MinCut⌉ — the
// inequality that transfers Theorem 2.3's Ω(mN) TRIBES bound to network
// round lower bounds.
package twoparty

import (
	"fmt"
	"math"

	"repro/internal/tribes"
)

// Transcript counts the bits exchanged by a two-party protocol.
type Transcript struct {
	BitsAtoB int
	BitsBtoA int
	Rounds   int // one bit per round in Model 2.2
}

// Total returns the total bits exchanged.
func (t *Transcript) Total() int { return t.BitsAtoB + t.BitsBtoA }

// DISJ runs the trivial deterministic protocol for set disjointness:
// Alice sends her characteristic vector (N bits), Bob answers with one
// bit. Its cost N+1 is optimal up to constants (Theorem 2.3 with m = 1:
// Ω(N) even for randomized protocols).
//
// DISJ_N(X, Y) = 1 iff X ∩ Y ≠ ∅ (the paper's convention).
func DISJ(x, y []int, universe int) (bool, *Transcript, error) {
	inX := make([]bool, universe)
	for _, v := range x {
		if v < 0 || v >= universe {
			return false, nil, fmt.Errorf("twoparty: element %d outside universe", v)
		}
		inX[v] = true
	}
	tr := &Transcript{BitsAtoB: universe, BitsBtoA: 1, Rounds: universe + 1}
	for _, v := range y {
		if v < 0 || v >= universe {
			return false, nil, fmt.Errorf("twoparty: element %d outside universe", v)
		}
		if inX[v] {
			return true, tr, nil
		}
	}
	return false, tr, nil
}

// TRIBES runs the conjunction of m DISJ instances with the trivial
// protocol: cost m(N+1), matching Theorem 2.3's Ω(mN) up to constants.
func TRIBES(in *tribes.Instance) (bool, *Transcript, error) {
	if err := in.Validate(); err != nil {
		return false, nil, err
	}
	total := &Transcript{}
	out := true
	for i := range in.S {
		v, tr, err := DISJ(in.S[i], in.T[i], in.N)
		if err != nil {
			return false, nil, err
		}
		total.BitsAtoB += tr.BitsAtoB
		total.BitsBtoA += tr.BitsBtoA
		total.Rounds += tr.Rounds
		out = out && v
	}
	return out, total, nil
}

// SimulateAcrossCut converts a network protocol's measured cost into the
// two-party cost of Lemma 4.4: Alice simulates side A of the cut, Bob
// side B; in each network round at most MinCut messages of msgBits bits
// cross the cut, each tagged with ⌈log₂ MinCut⌉ bits naming its edge.
// The returned transcript is the upper bound on the induced two-party
// protocol; combining it with Theorem 2.3's Ω(mN) bit bound yields the
// round lower bound
//
//	rounds ≥ Ω(mN) / (MinCut·(msgBits + ⌈log₂ MinCut⌉)).
func SimulateAcrossCut(networkRounds, minCut, msgBits int) (*Transcript, error) {
	if networkRounds < 0 || minCut < 1 || msgBits < 1 {
		return nil, fmt.Errorf("twoparty: invalid simulation parameters")
	}
	tag := 0
	if minCut > 1 {
		tag = int(math.Ceil(math.Log2(float64(minCut))))
	}
	perRound := minCut * (msgBits + tag)
	return &Transcript{
		BitsAtoB: networkRounds * perRound / 2,
		BitsBtoA: networkRounds*perRound - networkRounds*perRound/2,
		Rounds:   networkRounds * perRound,
	}, nil
}

// RoundLowerBound inverts SimulateAcrossCut: given the Ω(mN) bit bound
// on the embedded TRIBES instance, any network protocol must run for at
// least bitBound / (MinCut·(msgBits + ⌈log₂ MinCut⌉)) rounds.
func RoundLowerBound(bitBound float64, minCut, msgBits int) float64 {
	if minCut < 1 || msgBits < 1 {
		return 0
	}
	tag := 0.0
	if minCut > 1 {
		tag = math.Ceil(math.Log2(float64(minCut)))
	}
	return bitBound / (float64(minCut) * (float64(msgBits) + tag))
}
