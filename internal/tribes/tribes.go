// Package tribes implements the lower-bound machinery of Sections 2.2.2
// and 4.2: TRIBES instances (Theorem 2.3), their embeddings into BCQ
// instances — at independent vertex sites for forests (Lemma 4.3,
// Example 2.4) and general graphs' independent sets (Theorem 4.4 Case 2,
// generalized to strong independent sets of hypergraphs, Theorem F.8),
// and along vertex-disjoint cycles (Theorem 4.4 Case 1) — plus the
// cut-splitting worst-case assignments of Lemma 4.4 and the resulting
// round lower-bound formula.
//
// The embeddings are machine-checked: BCQ(embedded instance) must equal
// TRIBES(instance) on every input, which the tests verify against the
// brute-force solver.
package tribes

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// Instance is TRIBES_{m,N}: m pairs of subsets of [0, N).
// TRIBES(S̄, T̄) = ∧_i DISJ_N(S_i, T_i), where DISJ_N(X, Y) = 1 iff
// X ∩ Y ≠ ∅ (the paper's convention in Theorem 2.3).
type Instance struct {
	N    int
	S, T [][]int
}

// M returns the number of pairs.
func (in *Instance) M() int { return len(in.S) }

// Validate checks shape and ranges.
func (in *Instance) Validate() error {
	if in.N < 1 {
		return fmt.Errorf("tribes: N = %d < 1", in.N)
	}
	if len(in.S) != len(in.T) {
		return fmt.Errorf("tribes: %d S-sets vs %d T-sets", len(in.S), len(in.T))
	}
	for i := range in.S {
		for _, x := range append(append([]int(nil), in.S[i]...), in.T[i]...) {
			if x < 0 || x >= in.N {
				return fmt.Errorf("tribes: element %d outside [0,%d)", x, in.N)
			}
		}
	}
	return nil
}

// Eval computes TRIBES: every pair must intersect.
func (in *Instance) Eval() bool {
	for i := range in.S {
		inS := make(map[int]bool, len(in.S[i]))
		for _, x := range in.S[i] {
			inS[x] = true
		}
		hit := false
		for _, y := range in.T[i] {
			if inS[y] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// RandomInstance samples m pairs of random subsets (each element kept
// with probability 1/2), which yields both values of TRIBES.
func RandomInstance(m, n int, r *rand.Rand) *Instance {
	in := &Instance{N: n}
	for i := 0; i < m; i++ {
		var s, t []int
		for x := 0; x < n; x++ {
			if r.Intn(2) == 0 {
				s = append(s, x)
			}
			if r.Intn(2) == 0 {
				t = append(t, x)
			}
		}
		in.S = append(in.S, s)
		in.T = append(in.T, t)
	}
	return in
}

// HardInstance samples the lower bound's worst-case shape (Remark G.5):
// each pair either intersects in exactly one element (value 1) or is
// disjoint (value 0), split half-half across the universe.
func HardInstance(m, n int, value bool, r *rand.Rand) *Instance {
	in := &Instance{N: n}
	for i := 0; i < m; i++ {
		perm := r.Perm(n)
		half := n / 2
		s := append([]int(nil), perm[:half]...)
		t := append([]int(nil), perm[half:]...)
		if value {
			// Plant a single intersection element.
			t[r.Intn(len(t))] = s[r.Intn(len(s))]
		}
		in.S = append(in.S, s)
		in.T = append(in.T, t)
	}
	return in
}

// Embedding is a BCQ instance equivalent to a TRIBES instance, plus the
// bookkeeping needed for cut-splitting assignments: which hyperedge
// carries R_{S_i} and which carries R_{T_i}.
type Embedding struct {
	Q      *faq.Query[bool]
	M      int
	SEdges []int
	TEdges []int
}

var sb = semiring.Bool{}

// Site is a vertex at which one DISJ pair is embedded, together with its
// designated S- and T-carrying incident edges (the (o, oc) and (o, op)
// of Lemma 4.3).
type Site struct {
	Vertex int
	SEdge  int
	TEdge  int
}

// SitesForForest returns the Lemma 4.3 sites of an arity-2 forest: the
// larger of the even/odd-depth degree-≥2 level sets, so that
// m ≥ y(H)/2.
func SitesForForest(h *hypergraph.Hypergraph) ([]Site, error) {
	if !h.IsSimpleGraph() {
		return nil, fmt.Errorf("tribes: forest sites need arity ≤ 2")
	}
	if !hypergraph.IsGraphForest(h) {
		return nil, fmt.Errorf("tribes: hypergraph is not a forest")
	}
	even, odd := hypergraph.ForestLevelSets(h)
	chosen := even
	if len(odd) > len(even) {
		chosen = odd
	}
	return sitesAt(h, chosen)
}

// SitesForIndependentSet returns Theorem 4.4 Case 2 sites: an
// independent set of degree-≥2 vertices of a simple graph.
func SitesForIndependentSet(h *hypergraph.Hypergraph) ([]Site, error) {
	if !h.IsSimpleGraph() {
		return nil, fmt.Errorf("tribes: independent-set sites need arity ≤ 2")
	}
	alive := make([]bool, h.NumVertices())
	for v := range alive {
		alive[v] = h.Degree(v) >= 2
	}
	return sitesAt(h, hypergraph.GreedyIndependentSet(h, alive))
}

// SitesForStrongIS returns Theorem F.8 sites for hypergraphs: a strong
// independent set (no two sites co-occur in any hyperedge) of degree-≥2
// vertices.
func SitesForStrongIS(h *hypergraph.Hypergraph) ([]Site, error) {
	var candidates []int
	for v := 0; v < h.NumVertices(); v++ {
		if h.Degree(v) >= 2 {
			candidates = append(candidates, v)
		}
	}
	return sitesAt(h, hypergraph.StrongIndependentSet(h, candidates))
}

func sitesAt(h *hypergraph.Hypergraph, vertices []int) ([]Site, error) {
	var sites []Site
	for _, v := range vertices {
		inc := h.IncidentEdges(v)
		if len(inc) < 2 {
			continue
		}
		sites = append(sites, Site{Vertex: v, SEdge: inc[0], TEdge: inc[1]})
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("tribes: no degree-≥2 embedding sites")
	}
	return sites, nil
}

// EmbedAtSites builds the BCQ instance of Lemma 4.3 / Theorem F.8: pair
// i lands at site i — R_{S_i} = S_i × {0}^(r-1) on the site's S-edge
// keyed by the site vertex, R_{T_i} likewise on the T-edge; other edges
// incident to a site range freely over the site's coordinate; edges
// touching no site hold the all-zero singleton. BCQ = 1 iff every pair
// intersects (site coordinates must take a common value per site).
func EmbedAtSites(h *hypergraph.Hypergraph, sites []Site, in *Instance) (*Embedding, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.M() > len(sites) {
		return nil, fmt.Errorf("tribes: %d pairs exceed %d sites", in.M(), len(sites))
	}
	sites = sites[:in.M()]
	siteAt := make(map[int]int) // vertex -> pair index
	for i, s := range sites {
		siteAt[s.Vertex] = i
	}
	// Edges must contain at most one site vertex for the construction
	// to decompose (guaranteed by [strong] independence; checked).
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		verts := h.Edge(e)
		var siteIdx, siteVertex = -1, -1
		for _, v := range verts {
			if i, ok := siteAt[v]; ok {
				if siteIdx != -1 {
					return nil, fmt.Errorf("tribes: edge %d contains two sites", e)
				}
				siteIdx, siteVertex = i, v
			}
		}
		b := relation.NewBuilder[bool](sb, verts)
		addWith := func(val int) {
			tuple := make([]int, len(verts))
			for j, v := range verts {
				if v == siteVertex {
					tuple[j] = val
				}
			}
			b.AddOne(tuple...)
		}
		switch {
		case siteIdx == -1:
			b.AddOne(make([]int, len(verts))...)
		case e == sites[siteIdx].SEdge:
			for _, s := range in.S[siteIdx] {
				addWith(s)
			}
		case e == sites[siteIdx].TEdge:
			for _, t := range in.T[siteIdx] {
				addWith(t)
			}
		default:
			for x := 0; x < in.N; x++ {
				addWith(x)
			}
		}
		factors[e] = b.Build()
	}
	emb := &Embedding{Q: faq.NewBCQ(h, factors, in.N), M: in.M()}
	for _, s := range sites {
		emb.SEdges = append(emb.SEdges, s.SEdge)
		emb.TEdges = append(emb.TEdges, s.TEdge)
	}
	if err := emb.Q.Validate(); err != nil {
		return nil, err
	}
	return emb, nil
}

// Cycles returns the Theorem 4.4 Case 1 embedding sites: vertex-disjoint
// cycles of length at most 2·log₂|V| found via Moore's bound collection.
func Cycles(h *hypergraph.Hypergraph) []hypergraph.Cycle {
	maxLen := 2 * int(math.Ceil(math.Log2(float64(h.NumVertices()+2))))
	if maxLen < 3 {
		maxLen = 3
	}
	return hypergraph.ShortVertexDisjointCycles(h, maxLen, 2.0)
}

// EmbedOnCycles builds the Case 1 BCQ instance: pair i is encoded on
// cycle i with S_i, T_i ⊆ [ν²] read as ν×ν relations on the first two
// cycle edges, an equality chain around the rest of the cycle, and the
// full relation on edges outside all cycles. in.N must be a perfect
// square.
func EmbedOnCycles(h *hypergraph.Hypergraph, cycles []hypergraph.Cycle, in *Instance) (*Embedding, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	nu := int(math.Round(math.Sqrt(float64(in.N))))
	if nu*nu != in.N {
		return nil, fmt.Errorf("tribes: cycle embedding needs square N, got %d", in.N)
	}
	if in.M() > len(cycles) {
		return nil, fmt.Errorf("tribes: %d pairs exceed %d cycles", in.M(), len(cycles))
	}
	if !h.IsSimpleGraph() {
		return nil, fmt.Errorf("tribes: cycle embedding needs arity ≤ 2")
	}
	// Map each graph edge {u, v} to its role.
	type role struct {
		kind  int // 0 free, 1 S, 2 T, 3 equality
		pair  int
		first int // vertex carrying the "a" coordinate
	}
	roles := make(map[[2]int]role)
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for i := 0; i < in.M(); i++ {
		c := cycles[i]
		if len(c) < 3 {
			return nil, fmt.Errorf("tribes: cycle %d too short", i)
		}
		roles[key(c[0], c[1])] = role{kind: 1, pair: i, first: c[0]}
		roles[key(c[1], c[2])] = role{kind: 2, pair: i, first: c[2]}
		for j := 2; j < len(c); j++ {
			u, v := c[j], c[(j+1)%len(c)]
			roles[key(u, v)] = role{kind: 3, pair: i, first: u}
		}
	}
	var sEdges, tEdges []int
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		verts := h.Edge(e)
		b := relation.NewBuilder[bool](sb, verts)
		if len(verts) != 2 {
			// Self-loops outside cycles range freely.
			for x := 0; x < nu; x++ {
				b.AddOne(x)
			}
			factors[e] = b.Build()
			continue
		}
		ro, onCycle := roles[key(verts[0], verts[1])]
		addPair := func(firstVal, secondVal int, first int) {
			if verts[0] == first {
				b.AddOne(firstVal, secondVal)
			} else {
				b.AddOne(secondVal, firstVal)
			}
		}
		switch {
		case !onCycle:
			for x := 0; x < nu; x++ {
				for y := 0; y < nu; y++ {
					b.AddOne(x, y)
				}
			}
		case ro.kind == 1: // (c0, c1) carries S: x_{c0}=a, x_{c1}=b
			for _, s := range in.S[ro.pair] {
				addPair(s/nu, s%nu, ro.first)
			}
			sEdges = append(sEdges, e)
		case ro.kind == 2: // (c1, c2) carries T: x_{c2}=a, x_{c1}=b
			for _, t := range in.T[ro.pair] {
				addPair(t/nu, t%nu, ro.first)
			}
			tEdges = append(tEdges, e)
		default: // equality chain
			for x := 0; x < nu; x++ {
				b.AddOne(x, x)
			}
		}
		factors[e] = b.Build()
	}
	emb := &Embedding{Q: faq.NewBCQ(h, factors, nu), M: in.M(), SEdges: sEdges, TEdges: tEdges}
	if err := emb.Q.Validate(); err != nil {
		return nil, err
	}
	return emb, nil
}

// LowerBoundBits is Theorem 2.3: any randomized protocol for
// TRIBES_{m,N} (hence for the embedded BCQ, via Lemma 4.3/4.4) must
// exchange Ω(m·N) bits across any cut separating the S-side from the
// T-side. Constants are dropped.
func LowerBoundBits(m, n int) float64 { return float64(m) * float64(n) }

// LowerBoundRounds converts the bit bound into the round bound of
// Lemma 4.4 under the paper's Ω̃ convention (Section 3.1): each round
// moves at most MinCut·⌈log₂ MinCut⌉ messages of O(log₂ N) bits across
// the cut, so rounds ≥ m·N / (MinCut·⌈log₂ MinCut⌉·⌈log₂ N⌉), with the
// polylog factors the paper's Ω̃ hides divided out explicitly.
func LowerBoundRounds(m, n, minCut int) float64 {
	if minCut <= 0 {
		return 0
	}
	logCut := 1.0
	if minCut > 1 {
		logCut = math.Ceil(math.Log2(float64(minCut)))
	}
	logN := 1.0
	if n > 1 {
		logN = math.Ceil(math.Log2(float64(n)))
	}
	return LowerBoundBits(m, n) / (float64(minCut) * logCut * logN)
}

// CutAssignment places the embedding's relations per Lemma 4.4: every
// R_{S_i} on a node of side A of the given cut, every R_{T_i} on side B,
// and the padding relations alternating. It returns the assignment and
// the two chosen player nodes.
func CutAssignment(emb *Embedding, side []bool) ([]int, int, int, error) {
	aNode, bNode := -1, -1
	for v, inA := range side {
		if inA && aNode == -1 {
			aNode = v
		}
		if !inA && bNode == -1 {
			bNode = v
		}
	}
	if aNode == -1 || bNode == -1 {
		return nil, 0, 0, fmt.Errorf("tribes: cut does not split the topology")
	}
	isS := make(map[int]bool, len(emb.SEdges))
	for _, e := range emb.SEdges {
		isS[e] = true
	}
	isT := make(map[int]bool, len(emb.TEdges))
	for _, e := range emb.TEdges {
		isT[e] = true
	}
	assign := make([]int, emb.Q.H.NumEdges())
	flip := false
	for e := range assign {
		switch {
		case isS[e]:
			assign[e] = aNode
		case isT[e]:
			assign[e] = bNode
		default:
			if flip {
				assign[e] = bNode
			} else {
				assign[e] = aNode
			}
			flip = !flip
		}
	}
	return assign, aNode, bNode, nil
}
