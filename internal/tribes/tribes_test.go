package tribes

import (
	"math/rand"
	"testing"

	"repro/internal/faq"
	"repro/internal/flow"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/topology"
)

func TestInstanceEval(t *testing.T) {
	in := &Instance{N: 4, S: [][]int{{0, 1}, {2}}, T: [][]int{{1, 3}, {2, 3}}}
	if !in.Eval() {
		t.Error("both pairs intersect: want 1")
	}
	in2 := &Instance{N: 4, S: [][]int{{0, 1}, {2}}, T: [][]int{{1}, {3}}}
	if in2.Eval() {
		t.Error("second pair disjoint: want 0")
	}
}

func TestHardInstanceValues(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		if !HardInstance(3, 8, true, r).Eval() {
			t.Fatal("HardInstance(true) evaluated to 0")
		}
		if HardInstance(3, 8, false, r).Eval() {
			t.Fatal("HardInstance(false) evaluated to 1")
		}
	}
}

func TestValidate(t *testing.T) {
	bad := &Instance{N: 4, S: [][]int{{9}}, T: [][]int{{0}}}
	if err := bad.Validate(); err == nil {
		t.Error("expected range error")
	}
	bad2 := &Instance{N: 4, S: [][]int{{0}}, T: nil}
	if err := bad2.Validate(); err == nil {
		t.Error("expected shape error")
	}
}

// checkEquivalence asserts BCQ(embedding) == TRIBES(instance) via the
// brute-force solver — the heart of the reduction's correctness.
func checkEquivalence(t *testing.T, emb *Embedding, in *Instance, label string) {
	t.Helper()
	res, err := faq.BruteForce(emb.Q)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	got, err := relation.ScalarValue(emb.Q.S, res)
	if err != nil {
		t.Fatal(err)
	}
	if got != in.Eval() {
		t.Errorf("%s: BCQ = %v but TRIBES = %v", label, got, in.Eval())
	}
}

func TestEmbedStarExample24(t *testing.T) {
	// Example 2.4: TRIBES_{1,N} embedded in the star H1.
	h := hypergraph.ExampleH1()
	sites, err := SitesForForest(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0].Vertex != 0 {
		t.Fatalf("star sites = %+v, want the center", sites)
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		in := RandomInstance(1, 6, r)
		emb, err := EmbedAtSites(h, sites, in)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, emb, in, "star")
	}
}

func TestEmbedForestPath(t *testing.T) {
	// P6 has level sets of sizes 2 and 2: m = 2 pairs embed.
	h := hypergraph.PathGraph(6)
	sites, err := SitesForForest(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) < 2 {
		t.Fatalf("sites = %d, want ≥ 2", len(sites))
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		in := RandomInstance(2, 5, r)
		emb, err := EmbedAtSites(h, sites, in)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, emb, in, "path")
	}
}

func TestEmbedIndependentSetOnGrid(t *testing.T) {
	// A 2x2 grid graph (4-cycle): independent set of size 2.
	h := hypergraph.CycleGraph(4)
	sites, err := SitesForIndependentSet(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) < 2 {
		t.Fatalf("IS sites = %d, want ≥ 2", len(sites))
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		in := RandomInstance(len(sites), 4, r)
		emb, err := EmbedAtSites(h, sites, in)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, emb, in, "independent-set")
	}
}

func TestEmbedStrongISOnHypergraph(t *testing.T) {
	// H2 has arity 3; strong IS sites with degree ≥ 2 exist (A, B, C).
	h := hypergraph.ExampleH2()
	sites, err := SitesForStrongIS(h)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		in := RandomInstance(len(sites), 5, r)
		emb, err := EmbedAtSites(h, sites, in)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, emb, in, "strong-IS")
	}
}

func TestEmbedOnCyclesC5(t *testing.T) {
	h := hypergraph.CycleGraph(5)
	cycles := []hypergraph.Cycle{{0, 1, 2, 3, 4}}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		in := RandomInstance(1, 9, r) // ν = 3
		emb, err := EmbedOnCycles(h, cycles, in)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, emb, in, "cycle")
	}
}

func TestEmbedOnCyclesTwoTriangles(t *testing.T) {
	// Two disjoint triangles sharing an apex path: embed 2 pairs.
	b := hypergraph.NewBuilder()
	b.Edge("A", "B")
	b.Edge("B", "C")
	b.Edge("A", "C")
	b.Edge("D", "E")
	b.Edge("E", "F")
	b.Edge("D", "F")
	b.Edge("C", "D") // connector outside both cycles
	h := b.Build()
	cycles := []hypergraph.Cycle{{0, 1, 2}, {3, 4, 5}}
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		in := RandomInstance(2, 4, r) // ν = 2
		emb, err := EmbedOnCycles(h, cycles, in)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, emb, in, "two-cycles")
	}
}

func TestCyclesCollector(t *testing.T) {
	h := hypergraph.CliqueGraph(6)
	cycles := Cycles(h)
	if len(cycles) == 0 {
		t.Error("expected short cycles in K6")
	}
}

func TestEmbedErrors(t *testing.T) {
	h := hypergraph.PathGraph(4)
	sites, err := SitesForForest(h)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	// Too many pairs.
	in := RandomInstance(len(sites)+1, 4, r)
	if _, err := EmbedAtSites(h, sites, in); err == nil {
		t.Error("expected error for too many pairs")
	}
	// Non-square N for cycles.
	if _, err := EmbedOnCycles(hypergraph.CycleGraph(4), []hypergraph.Cycle{{0, 1, 2, 3}},
		RandomInstance(1, 5, r)); err == nil {
		t.Error("expected error for non-square N")
	}
	// Forest sites on a cyclic graph.
	if _, err := SitesForForest(hypergraph.CycleGraph(4)); err == nil {
		t.Error("expected error for non-forest")
	}
}

func TestLowerBoundRounds(t *testing.T) {
	if got := LowerBoundBits(2, 64); got != 128 {
		t.Errorf("LB bits = %v, want 128", got)
	}
	// 128 bits / (cut 1 · log-cut 1 · log-N 6).
	if got := LowerBoundRounds(2, 64, 1); got != 128.0/6 {
		t.Errorf("LB = %v, want %v", got, 128.0/6)
	}
	// 128 / (4 · 2 · 6).
	if got := LowerBoundRounds(2, 64, 4); got != 128.0/48 {
		t.Errorf("LB = %v, want %v", got, 128.0/48)
	}
	if got := LowerBoundRounds(2, 64, 0); got != 0 {
		t.Errorf("LB with no cut = %v, want 0", got)
	}
}

// TestExample24TightnessOnLine runs the full Lemma 4.4 pipeline: embed
// TRIBES in the star, assign relations across the line's min cut, run
// the real protocol, and check the measured rounds sit between the
// lower-bound formula and a constant multiple of it — the paper's
// headline tightness for d = O(1).
func TestExample24TightnessOnLine(t *testing.T) {
	h := hypergraph.ExampleH1()
	sites, err := SitesForForest(h)
	if err != nil {
		t.Fatal(err)
	}
	N := 64
	r := rand.New(rand.NewSource(17))
	in := HardInstance(1, N, true, r)
	emb, err := EmbedAtSites(h, sites, in)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.Line(4)
	K := []int{0, 1, 2, 3}
	minCut, side, err := flow.MinCutSeparating(g, K)
	if err != nil {
		t.Fatal(err)
	}
	assign, aNode, bNode, err := CutAssignment(emb, side)
	if err != nil {
		t.Fatal(err)
	}
	if aNode == bNode {
		t.Fatal("degenerate cut assignment")
	}
	s := &protocol.Setup[bool]{Q: emb.Q, G: g, Assign: assign, Output: bNode}
	ans, rep, err := protocol.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := relation.ScalarValue(emb.Q.S, ans)
	if v != in.Eval() {
		t.Errorf("protocol answer %v != TRIBES %v", v, in.Eval())
	}
	lb := LowerBoundRounds(emb.M, N, minCut)
	if float64(rep.Rounds) < lb {
		t.Errorf("measured %d rounds below the lower bound %v — impossible", rep.Rounds, lb)
	}
	// Tightness within the Ω̃-hidden log factor (log₂N = 6 here) and a
	// small constant: the paper's Θ̃(N/MinCut) for d = O(1).
	logN := 6.0
	if float64(rep.Rounds) > 4*lb*logN+32 {
		t.Errorf("measured %d rounds far above LB %v·log: tightness lost", rep.Rounds, lb)
	}
	// In bits, the protocol must pay the Theorem 2.3 toll.
	if float64(rep.Bits) < LowerBoundBits(emb.M, N)/2 {
		t.Errorf("measured %d bits below the Ω(mN) = %v bit bound", rep.Bits, LowerBoundBits(emb.M, N))
	}
}
