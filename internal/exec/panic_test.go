package exec

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
)

// recoverTaskPanic runs f and returns the *TaskPanic it panicked with
// (nil if it returned normally).
func recoverTaskPanic(f func()) (tp *TaskPanic) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if tp, ok = r.(*TaskPanic); !ok {
				panic(r)
			}
		}
	}()
	f()
	return nil
}

// TestPanicContainment pins the containment contract at every pool entry
// point and worker count: a panicking task re-surfaces as a *TaskPanic
// on the calling goroutine (never crashing a worker goroutine), and the
// pool remains usable afterwards.
func TestPanicContainment(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		p := New(w)
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			boom := errors.New("boom")

			tp := recoverTaskPanic(func() {
				p.Map(16, func(i int) {
					if i == 7 {
						panic(boom)
					}
				})
			})
			if tp == nil || tp.Val != boom {
				t.Fatalf("Map: captured %+v, want TaskPanic{boom}", tp)
			}
			if w > 1 && len(tp.Stack) == 0 {
				t.Error("Map: TaskPanic from a worker carries no stack")
			}

			tp = recoverTaskPanic(func() {
				_ = p.MapErr(16, func(i int) error {
					if i == 3 {
						panic(boom)
					}
					return nil
				})
			})
			if tp == nil || tp.Val != boom {
				t.Fatalf("MapErr: captured %+v, want TaskPanic{boom}", tp)
			}

			parent := []int{-1, 0, 0, 1, 1} // small tree
			tp = recoverTaskPanic(func() {
				_ = p.Forest(parent, func(v int) error {
					if v == 3 {
						panic(boom)
					}
					return nil
				})
			})
			if tp == nil || tp.Val != boom {
				t.Fatalf("Forest: captured %+v, want TaskPanic{boom}", tp)
			}

			// Nested pools: a Map panic inside a Forest task surfaces once,
			// with the original value.
			tp = recoverTaskPanic(func() {
				_ = p.Forest(parent, func(v int) error {
					p.Map(4, func(i int) {
						if v == 2 && i == 1 {
							panic(boom)
						}
					})
					return nil
				})
			})
			if tp == nil || tp.Val != boom {
				t.Fatalf("nested: captured %+v, want TaskPanic{boom}", tp)
			}

			// The pool is reusable after a contained panic.
			var sum int
			err := p.Forest(parent, func(v int) error { sum += v; return nil })
			if w > 1 {
				// parallel path: tasks race on sum only at w==1 guarantees;
				// use MapErr count instead for a race-free check.
				var n int64
				err = p.MapErr(8, func(i int) error { return nil })
				_ = n
			}
			if err != nil {
				t.Fatalf("pool unusable after panic: %v", err)
			}
		})
	}
}

// TestChaosForestFailpoint pins the exec.task site: error mode fails the pass
// with a typed injected error; panic mode is contained as a TaskPanic.
func TestChaosForestFailpoint(t *testing.T) {
	defer fault.Reset()
	parent := []int{-1, 0, 0}
	for _, w := range []int{1, 2, 8} {
		p := New(w)
		fault.Enable("exec.task", fault.Config{Mode: fault.ModeError, Once: true})
		err := p.Forest(parent, func(v int) error { return nil })
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("workers=%d: error-mode exec.task: %v, want ErrInjected", w, err)
		}

		fault.Enable("exec.task", fault.Config{Mode: fault.ModePanic, Once: true})
		tp := recoverTaskPanic(func() { _ = p.Forest(parent, func(v int) error { return nil }) })
		if tp == nil {
			t.Fatalf("workers=%d: panic-mode exec.task did not surface", w)
		}
		if _, ok := tp.Val.(*fault.InjectedPanic); !ok {
			t.Fatalf("workers=%d: panic value %v, want *fault.InjectedPanic", w, tp.Val)
		}

		fault.Reset()
		if err := p.Forest(parent, func(v int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: pool unusable after failpoint run: %v", w, err)
		}
	}
}
