package exec

import "repro/internal/obs"

// Pool instrumentation on the process-global registry. Every metric is
// a pre-bound handle: a sample is one or two atomic adds with zero
// allocations (pinned by TestTaskInstrumentationAllocs), so the
// instrumentation is on unconditionally — the "costs nothing
// measurable" contract of the observability layer.
var (
	metricTasks = obs.Default().NewCounter("faq_exec_tasks_total",
		"Forest node tasks completed (any outcome), across every pool.")
	metricInFlight = obs.Default().NewGauge("faq_exec_tasks_inflight",
		"Forest node tasks currently executing.")
	metricQueueDepth = obs.Default().NewGauge("faq_exec_queue_depth",
		"Forest node tasks ready to run but not yet picked up by a worker.")
	metricBusyNS = obs.Default().NewCounter("faq_exec_worker_busy_ns_total",
		"Cumulative wall-clock nanoseconds workers spent inside node tasks.")
	metricTaskNS = obs.Default().NewHistogram("faq_exec_task_ns",
		"Per-task wall-clock duration of Forest node tasks, nanoseconds.",
		obs.DurationBucketsNS)
)
