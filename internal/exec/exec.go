// Package exec provides the bounded worker-pool scheduler behind every
// parallel execution path in the repository: the centralized GHD solver
// dispatches sibling subtrees of its bottom-up pass onto the pool (the
// node computations of Theorem G.3 are independent across subtrees and
// per-node messages are bounded by N tuples, eq. 24, so subtree work is
// balanced), the relation kernel partitions its packed-key hash join and
// grouping passes across workers, and the protocol engine reduces star
// children locally in parallel — while the netsim round ledger itself
// stays strictly sequential so measured communication costs remain
// byte-identical to the sequential engine.
//
// Parallelism here is configuration, not semantics: every scheduler
// contract guarantees results bit-identical to sequential execution, so
// the repository's determinism invariant (equal relations have identical
// layouts) survives any worker count. Workers default to GOMAXPROCS;
// SetWorkers overrides the default pool, and callers can build private
// pools with New. Cancellation is errgroup-style: the first task error
// stops dispatch of not-yet-started tasks, in-flight tasks complete, and
// the recorded error is returned.
//
// The package also provides the schedule-replay accounting used by
// `faqbench -parallel`: per-task costs measured on a real run (ForestTimed)
// are replayed under a simulated worker budget (Makespan), mirroring how
// internal/netsim books communication rounds on a simulated capacity
// ledger rather than on wall clocks.
package exec

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// taskSite is the failpoint on Forest task dispatch: every node task of
// a GHD pass passes through it, so chaos runs can fail, delay, or cancel
// any scheduled unit of solver work. Disarmed it costs one atomic load
// per task.
var taskSite = fault.Register("exec.task")

// TaskPanic is the payload the pool re-panics on the calling goroutine
// when a task panicked inside a worker. Without this, a panic in a pool
// goroutine would crash the process with no recovery point; with it,
// parallel panics surface exactly where sequential execution would have
// panicked, so the service boundary's recover contains them at any
// worker count — the runtime enforcement of the "typed errors, never
// panics" contract.
type TaskPanic struct {
	Val   any    // the original panic value
	Stack []byte // stack of the panicking task goroutine
}

func (p *TaskPanic) String() string {
	return fmt.Sprintf("exec: task panicked: %v\n%s", p.Val, p.Stack)
}

// asTaskPanic wraps a recovered value, preserving an already-wrapped
// panic from a nested pool call.
func asTaskPanic(r any) *TaskPanic {
	if tp, ok := r.(*TaskPanic); ok {
		return tp
	}
	return &TaskPanic{Val: r, Stack: debug.Stack()}
}

// panicError smuggles a recovered task panic through the pool's error
// plumbing; it never escapes the package — every exit path converts it
// back into a panic on the calling goroutine.
type panicError struct{ p *TaskPanic }

func (e *panicError) Error() string { return e.p.String() }

// rethrow re-panics a captured task panic on the caller; no-op on nil
// or ordinary errors.
func rethrow(err error) {
	if pe, ok := err.(*panicError); ok {
		panic(pe.p)
	}
}

// wrapPanic (deferred) normalizes a panic escaping a sequential pool
// path into the same *TaskPanic the parallel paths produce, so callers
// see one panic payload shape at every worker count.
func wrapPanic() {
	if r := recover(); r != nil {
		panic(asTaskPanic(r))
	}
}

// protect wraps a task so that the exec.task failpoint gates it, a
// panic is captured as a *panicError instead of killing the worker
// goroutine, and the task is metered (duration histogram, busy time,
// in-flight gauge) — protect is the single choke point every Forest
// node task passes through, so instrumenting it covers sequential and
// parallel dispatch alike at zero allocations per task.
func protect(run func(v int) error) func(v int) error {
	return func(v int) (err error) {
		metricInFlight.Inc()
		t0 := time.Now()
		defer func() {
			d := time.Since(t0).Nanoseconds()
			metricInFlight.Dec()
			metricTaskNS.Observe(d)
			metricBusyNS.Add(d)
			metricTasks.Inc()
			if r := recover(); r != nil {
				err = &panicError{p: asTaskPanic(r)}
			}
		}()
		if err := taskSite.Hit(nil); err != nil {
			return err
		}
		return run(v)
	}
}

// defaultWorkers holds the process-wide parallelism override; zero or
// negative means "track GOMAXPROCS".
var defaultWorkers atomic.Int32

// Workers returns the default pool's current parallelism.
func Workers() int {
	if w := defaultWorkers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the default pool's parallelism and returns the
// previous raw setting — 0 when the pool was tracking GOMAXPROCS — so
// that `prev := SetWorkers(n); defer SetWorkers(prev)` restores the
// exact prior state, including the tracking default. n <= 0 restores
// the GOMAXPROCS default. Worker counts never change results — only
// scheduling.
func SetWorkers(n int) int {
	prev := int(defaultWorkers.Load())
	if n <= 0 {
		defaultWorkers.Store(0)
	} else {
		defaultWorkers.Store(int32(n))
	}
	return prev
}

// Pool is a bounded work scheduler. A Pool does not own long-lived
// goroutines: each call spawns at most Workers goroutines for its own
// duration, so pools nest freely (a Forest task may run partitioned
// kernel Maps) without deadlock.
type Pool struct {
	workers int // <= 0: track the package default
}

// New returns a pool with the given parallelism; workers <= 0 tracks
// the package default (SetWorkers / GOMAXPROCS).
func New(workers int) *Pool { return &Pool{workers: workers} }

var defaultPool = New(0)

// Default returns the shared default pool.
func Default() *Pool { return defaultPool }

// Workers returns the pool's current effective parallelism.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return Workers()
	}
	return p.workers
}

// Map runs f(i) for every i in [0, n) across the pool and blocks until
// all calls return. With one worker it degenerates to a plain loop. A
// panicking call stops dispatch of not-yet-started indices and the first
// captured panic re-surfaces on the calling goroutine as a *TaskPanic —
// the same place a sequential loop's panic would land.
func (p *Pool) Map(n int, f func(i int)) {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		defer wrapPanic()
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Bool
	var pmu sync.Mutex
	var tp *TaskPanic
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.Store(true)
							pmu.Lock()
							if tp == nil {
								tp = asTaskPanic(r)
							}
							pmu.Unlock()
						}
					}()
					f(i)
				}()
			}
		}()
	}
	wg.Wait()
	if tp != nil {
		panic(tp)
	}
}

// MapErr is Map with errgroup-style failure handling: the first error
// stops dispatch of not-yet-started indices, every started call runs to
// completion, and the lowest-index recorded error is returned. A panic
// in a worker is captured and re-panics on the calling goroutine.
func (p *Pool) MapErr(n int, f func(i int) error) error {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		defer wrapPanic()
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							err = &panicError{p: asTaskPanic(r)}
						}
					}()
					return f(i)
				}()
				if err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			rethrow(err)
			return err
		}
	}
	return nil
}

// Forest runs one task per node of a rooted forest given by parent
// pointers (parent[v] == -1 marks a root), guaranteeing every node runs
// only after all of its children completed — the dependency structure of
// a bottom-up GHD pass. Independent subtrees dispatch concurrently
// across the pool. On failure, dispatch stops (in-flight tasks finish)
// and the error of the lowest-numbered failed node is returned.
//
// The synchronization is a happens-before edge from each child's
// completion to its parent's start, so a task may freely read state
// written by its children's tasks.
//
// Every task is gated by the exec.task failpoint and runs
// panic-contained: a panic inside a task (worker goroutine or not)
// re-surfaces as a *TaskPanic on the calling goroutine instead of
// killing the process, so a recover at the service boundary sees it at
// any worker count.
func (p *Pool) Forest(parent []int, run func(v int) error) error {
	n := len(parent)
	if n == 0 {
		return nil
	}
	run = protect(run)
	pending := make([]int, n)
	for _, pa := range parent {
		if pa >= 0 {
			pending[pa]++
		}
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		// Sequential: a worklist in children-before-parents order.
		for _, v := range seqOrder(parent) {
			if err := run(v); err != nil {
				rethrow(err)
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		queue    []int
		running  int
		failed   bool
		errNode  = -1
		firstErr error
	)
	for v := 0; v < n; v++ {
		if pending[v] == 0 {
			queue = append(queue, v)
		}
	}
	metricQueueDepth.Add(int64(len(queue)))
	worker := func() {
		mu.Lock()
		defer mu.Unlock()
		for {
			for len(queue) == 0 && running > 0 {
				cond.Wait()
			}
			if len(queue) == 0 {
				// running == 0: no task can ever become ready again.
				cond.Broadcast()
				return
			}
			v := queue[0]
			queue = queue[1:]
			metricQueueDepth.Dec()
			running++
			mu.Unlock()
			err := run(v)
			mu.Lock()
			running--
			if err != nil {
				if errNode == -1 || v < errNode {
					errNode, firstErr = v, err
				}
				failed = true
				metricQueueDepth.Add(-int64(len(queue)))
				queue = queue[:0] // cancel not-yet-started tasks
			} else if !failed {
				if pa := parent[v]; pa >= 0 {
					if pending[pa]--; pending[pa] == 0 {
						queue = append(queue, pa)
						metricQueueDepth.Inc()
					}
				}
			}
			cond.Broadcast()
		}
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	rethrow(firstErr)
	return firstErr
}

// ForestCtx is Forest with cooperative cancellation: each node task
// first checks ctx and fails with ctx.Err() once the context is done, so
// a canceled request stops dispatching new GHD node tasks while in-flight
// ones complete — the per-request cancellation contract of the service
// layer. A nil ctx degenerates to Forest.
func (p *Pool) ForestCtx(ctx context.Context, parent []int, run func(v int) error) error {
	if ctx == nil {
		return p.Forest(parent, run)
	}
	return p.Forest(parent, func(v int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return run(v)
	})
}

// ForestTimed is Forest, additionally recording each task's wall-clock
// duration in nanoseconds (indexed by node). The cost vector feeds
// Makespan, the hardware-independent scalability accounting of
// `faqbench -parallel`.
func (p *Pool) ForestTimed(parent []int, run func(v int) error) ([]int64, error) {
	costs := make([]int64, len(parent))
	err := p.Forest(parent, func(v int) error {
		t0 := time.Now()
		e := run(v)
		costs[v] = time.Since(t0).Nanoseconds()
		return e
	})
	return costs, err
}

// taskHeap orders ready tasks by (ready time, node id) — the replay's
// deterministic list-scheduling policy.
type taskHeap struct {
	at []int64
	id []int
}

func (h *taskHeap) Len() int { return len(h.id) }
func (h *taskHeap) Less(i, j int) bool {
	if h.at[i] != h.at[j] {
		return h.at[i] < h.at[j]
	}
	return h.id[i] < h.id[j]
}
func (h *taskHeap) Swap(i, j int) {
	h.at[i], h.at[j] = h.at[j], h.at[i]
	h.id[i], h.id[j] = h.id[j], h.id[i]
}
func (h *taskHeap) Push(x any) {
	t := x.([2]int64)
	h.at = append(h.at, t[0])
	h.id = append(h.id, int(t[1]))
}
func (h *taskHeap) Pop() any {
	n := len(h.id) - 1
	t := [2]int64{h.at[n], int64(h.id[n])}
	h.at, h.id = h.at[:n], h.id[:n]
	return t
}

// int64Heap is a min-heap of worker free times.
type int64Heap []int64

func (h int64Heap) Len() int           { return len(h) }
func (h int64Heap) Less(i, j int) bool { return h[i] < h[j] }
func (h int64Heap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *int64Heap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *int64Heap) Pop() any {
	n := len(*h) - 1
	x := (*h)[n]
	*h = (*h)[:n]
	return x
}

// Makespan replays a Forest schedule with the given per-task costs on a
// simulated budget of workers and returns the schedule length: greedy
// list scheduling, ready tasks dispatched in (ready time, node id) order
// onto the earliest-free worker. With the costs recorded by ForestTimed
// on a sequential run, TotalCost(cost)/Makespan(...) is the speedup the
// DAG admits at that worker count — the work/span accounting emitted to
// BENCH_parallel.json, deterministic and independent of the number of
// physical cores the measuring host happens to have.
func Makespan(parent []int, cost []int64, workers int) int64 {
	n := len(parent)
	if n == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	pending := make([]int, n)
	for _, pa := range parent {
		if pa >= 0 {
			pending[pa]++
		}
	}
	childMax := make([]int64, n)
	ready := &taskHeap{}
	heap.Init(ready)
	for v := 0; v < n; v++ {
		if pending[v] == 0 {
			heap.Push(ready, [2]int64{0, int64(v)})
		}
	}
	free := make(int64Heap, workers)
	heap.Init(&free)
	var span int64
	for ready.Len() > 0 {
		t := heap.Pop(ready).([2]int64)
		at, v := t[0], int(t[1])
		w := heap.Pop(&free).(int64)
		start := at
		if w > start {
			start = w
		}
		fin := start + cost[v]
		heap.Push(&free, fin)
		if fin > span {
			span = fin
		}
		if pa := parent[v]; pa >= 0 {
			if fin > childMax[pa] {
				childMax[pa] = fin
			}
			if pending[pa]--; pending[pa] == 0 {
				heap.Push(ready, [2]int64{childMax[pa], int64(pa)})
			}
		}
	}
	return span
}

// TotalCost sums a cost vector — the "work" term of the work/span
// speedup bound.
func TotalCost(cost []int64) int64 {
	var s int64
	for _, c := range cost {
		s += c
	}
	return s
}
