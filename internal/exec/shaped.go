package exec

import (
	"container/heap"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// Intra-node partitioning model. PR 2's Makespan treats every node task
// of a Forest schedule as atomic, which makes the replayed schedule
// length of a single heavy GHD node equal to that node's full cost — the
// per-bag bottleneck the paper's topology-dependent bounds charge to the
// heaviest bag. The relation kernels are not atomic, though: above their
// size threshold they range-split merge joins, partition hash joins and
// grouping passes, and sub-sort Builder buffers. TaskShape lets a node
// task declare how much of its measured cost those partitioned kernels
// account for, and MakespanShaped replays the schedule with that
// divisible portion allowed to spread across idle workers.
//
// Bit-identity is untouched by any of this: shapes only refine the
// simulated accounting (what `faqbench -parallel` writes to
// BENCH_parallel.json); the real execution paths carry their own
// bit-identity guarantees and tests.

func init() {
	// FAQ_WORKERS pins the default pool's parallelism for the whole
	// process — the hook `make test-workers` uses to re-run the
	// equivalence suites at 1/2/8 workers without editing any test.
	if v := os.Getenv("FAQ_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			SetWorkers(n)
		}
	}
}

// TaskShape describes the divisibility of one node task of a Forest
// schedule: Work is the task's total cost, Div (≤ Work) the portion
// spent inside kernels that partition across workers, and Parts the
// maximum number of pieces those kernels split into. A zero Div or a
// Parts ≤ 1 declares the task atomic — the backward-compatible shape of
// every pre-existing cost vector.
type TaskShape struct {
	Work  int64
	Div   int64
	Parts int
}

// AtomicShapes lifts a plain cost vector into atomic task shapes, the
// exact model Makespan uses.
func AtomicShapes(cost []int64) []TaskShape {
	shapes := make([]TaskShape, len(cost))
	for i, c := range cost {
		shapes[i] = TaskShape{Work: c}
	}
	return shapes
}

// shapeRec accumulates the divisible-time ledger of the task currently
// running under ForestShaped. Fields are atomics only so that a
// misconfigured concurrent run degrades to imprecise accounting instead
// of a data race; the measurement contract is a 1-worker pool.
type shapeRec struct {
	depth atomic.Int32
	div   atomic.Int64
	parts atomic.Int32
}

// activeShape is the recorder of the ForestShaped task currently
// executing, nil outside measurement runs.
var activeShape atomic.Pointer[shapeRec]

// Divisible brackets a kernel region that the calling layer partitions
// across workers once its size threshold is met: the relation kernels
// wrap their sequential merge-join scans, hash probes, grouping passes,
// and Builder sorts with it. Outside a ForestShaped measurement run the
// call is a single atomic load plus f(). Nested regions are charged to
// the outermost bracket only, so a merge join that internally Builds
// does not double-count.
func Divisible(parts int, f func()) {
	rec := activeShape.Load()
	if rec == nil || parts <= 1 {
		f()
		return
	}
	if rec.depth.Add(1) != 1 { // nested: the enclosing region accounts for this time
		f()
		rec.depth.Add(-1)
		return
	}
	t0 := time.Now()
	f()
	rec.div.Add(time.Since(t0).Nanoseconds())
	if p := int32(parts); p > rec.parts.Load() {
		rec.parts.Store(p)
	}
	rec.depth.Add(-1)
}

// seqOrder returns the deterministic children-before-parents order the
// sequential scheduler executes a forest in.
func seqOrder(parent []int) []int {
	n := len(parent)
	pending := make([]int, n)
	for _, pa := range parent {
		if pa >= 0 {
			pending[pa]++
		}
	}
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if pending[v] == 0 {
			order = append(order, v)
		}
	}
	for i := 0; i < len(order); i++ {
		if pa := parent[order[i]]; pa >= 0 {
			if pending[pa]--; pending[pa] == 0 {
				order = append(order, pa)
			}
		}
	}
	return order
}

// ForestShaped is ForestTimed with divisibility accounting: it runs the
// forest strictly sequentially (it is a measurement harness, like a
// 1-worker ForestTimed) and returns one TaskShape per node — the task's
// wall-clock cost plus the portion spent inside Divisible kernel
// regions. Shapes are meaningful when the default pool is configured at
// 1 worker, so the kernels take their sequential paths and mark the
// regions a multi-worker run would partition.
func (p *Pool) ForestShaped(parent []int, run func(v int) error) ([]TaskShape, error) {
	shapes := make([]TaskShape, len(parent))
	for _, v := range seqOrder(parent) {
		rec := &shapeRec{}
		activeShape.Store(rec)
		t0 := time.Now()
		err := run(v)
		work := time.Since(t0).Nanoseconds()
		activeShape.Store(nil)
		if err != nil {
			return shapes, err
		}
		div := rec.div.Load()
		if div > work {
			div = work
		}
		parts := int(rec.parts.Load())
		if parts < 1 {
			parts = 1
		}
		shapes[v] = TaskShape{Work: work, Div: div, Parts: parts}
	}
	return shapes, nil
}

// shapedHeap orders ready sub-tasks by (ready time, node id, sub id) —
// the deterministic list-scheduling policy of MakespanShaped. Sub ids
// 0..k-1 are a node's parallel chunks; sub id k is its serial tail.
type shapedHeap struct {
	at   []int64
	node []int
	sub  []int
}

func (h *shapedHeap) Len() int { return len(h.node) }
func (h *shapedHeap) Less(i, j int) bool {
	if h.at[i] != h.at[j] {
		return h.at[i] < h.at[j]
	}
	if h.node[i] != h.node[j] {
		return h.node[i] < h.node[j]
	}
	return h.sub[i] < h.sub[j]
}
func (h *shapedHeap) Swap(i, j int) {
	h.at[i], h.at[j] = h.at[j], h.at[i]
	h.node[i], h.node[j] = h.node[j], h.node[i]
	h.sub[i], h.sub[j] = h.sub[j], h.sub[i]
}
func (h *shapedHeap) Push(x any) {
	t := x.([3]int64)
	h.at = append(h.at, t[0])
	h.node = append(h.node, int(t[1]))
	h.sub = append(h.sub, int(t[2]))
}
func (h *shapedHeap) Pop() any {
	n := len(h.node) - 1
	t := [3]int64{h.at[n], int64(h.node[n]), int64(h.sub[n])}
	h.at, h.node, h.sub = h.at[:n], h.node[:n], h.sub[:n]
	return t
}

// MakespanShaped replays a Forest schedule under a simulated worker
// budget like Makespan, but honors each task's declared divisibility: a
// task with shape {Work, Div, Parts > 1} expands into Parts parallel
// chunks of Div/Parts each (remainder nanoseconds on the lowest-index
// chunks) followed by a serial tail of Work − Div that starts once every
// chunk finished; the task's children-before-parents edges attach to the
// chunks' start and the tail's finish. Atomic shapes (Div = 0 or
// Parts ≤ 1) reduce the replay to exactly Makespan's schedule, so
// MakespanShaped(parent, AtomicShapes(cost), w) == Makespan(parent,
// cost, w) — the backward-compatibility contract pinned by the tests.
func MakespanShaped(parent []int, shape []TaskShape, workers int) int64 {
	n := len(parent)
	if n == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	pending := make([]int, n)
	for _, pa := range parent {
		if pa >= 0 {
			pending[pa]++
		}
	}
	// Per-node chunk bookkeeping: nchunks == 0 marks an atomic task whose
	// single sub-task (sub id 0) carries the full Work.
	nchunks := make([]int, n)
	chunksLeft := make([]int, n)
	chunkMax := make([]int64, n)
	childMax := make([]int64, n)
	ready := &shapedHeap{}
	heap.Init(ready)
	release := func(v int, at int64) {
		sh := shape[v]
		div := sh.Div
		if div > sh.Work {
			div = sh.Work
		}
		if sh.Parts <= 1 || div <= 0 {
			heap.Push(ready, [3]int64{at, int64(v), 0})
			return
		}
		nchunks[v] = sh.Parts
		chunksLeft[v] = sh.Parts
		chunkMax[v] = at
		for c := 0; c < sh.Parts; c++ {
			heap.Push(ready, [3]int64{at, int64(v), int64(c)})
		}
	}
	for v := 0; v < n; v++ {
		if pending[v] == 0 {
			release(v, 0)
		}
	}
	free := make(int64Heap, workers)
	heap.Init(&free)
	var span int64
	for ready.Len() > 0 {
		t := heap.Pop(ready).([3]int64)
		at, v, sub := t[0], int(t[1]), int(t[2])
		sh := shape[v]
		div := sh.Div
		if div > sh.Work {
			div = sh.Work
		}
		k := nchunks[v]
		var cost int64
		switch {
		case k == 0: // atomic task
			cost = sh.Work
		case sub < k: // parallel chunk
			cost = div / int64(k)
			if int64(sub) < div%int64(k) {
				cost++
			}
		default: // serial tail
			cost = sh.Work - div
		}
		w := heap.Pop(&free).(int64)
		start := at
		if w > start {
			start = w
		}
		fin := start + cost
		heap.Push(&free, fin)
		if k > 0 && sub < k {
			if fin > chunkMax[v] {
				chunkMax[v] = fin
			}
			if chunksLeft[v]--; chunksLeft[v] == 0 {
				heap.Push(ready, [3]int64{chunkMax[v], int64(v), int64(k)})
			}
			continue
		}
		// The node's last sub-task: the node is complete at fin.
		if fin > span {
			span = fin
		}
		if pa := parent[v]; pa >= 0 {
			if fin > childMax[pa] {
				childMax[pa] = fin
			}
			if pending[pa]--; pending[pa] == 0 {
				release(pa, childMax[pa])
			}
		}
	}
	return span
}
