package exec

import (
	"errors"
	"testing"
)

// TestTaskInstrumentationAllocs pins the observability cost of the
// exec hot path: metering a Forest node task must add zero allocations
// per task. Forest's fixed setup allocates a handful of slices
// regardless of size, so per-task cost is the growth between a tiny
// and a large forest.
func TestTaskInstrumentationAllocs(t *testing.T) {
	run := func(v int) error { return nil }
	forest := func(n int) func() {
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		p := New(1)
		return func() {
			if err := p.Forest(parent, run); err != nil {
				t.Fatal(err)
			}
		}
	}
	small := testing.AllocsPerRun(50, forest(4))
	large := testing.AllocsPerRun(50, forest(4096))
	if large > small+2 {
		t.Fatalf("per-task allocations detected: %d tasks cost %.1f allocs, 4 tasks cost %.1f",
			4096, large, small)
	}
}

// TestQueueDepthBalanced asserts the ready-queue gauge returns to its
// starting value after parallel Forest runs — including the failure
// path that cancels queued tasks.
func TestQueueDepthBalanced(t *testing.T) {
	before := metricQueueDepth.Value()
	parent := make([]int, 64)
	for i := range parent {
		parent[i] = -1
	}
	p := New(4)
	if err := p.Forest(parent, func(v int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := p.Forest(parent, func(v int) error {
		if v == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if after := metricQueueDepth.Value(); after != before {
		t.Fatalf("queue depth gauge leaked: before %d, after %d", before, after)
	}
}

// TestTaskMetricsCount asserts the task counter and duration histogram
// advance once per node task.
func TestTaskMetricsCount(t *testing.T) {
	before := metricTasks.Value()
	parent := []int{-1, 0, 0, -1}
	if err := New(2).Forest(parent, func(v int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := metricTasks.Value() - before; got != int64(len(parent)) {
		t.Fatalf("task counter advanced by %d, want %d", got, len(parent))
	}
}
