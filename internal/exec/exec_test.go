package exec

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
)

// chainParent builds a path v0 <- v1 <- ... (each node's parent is the
// previous one, root 0), i.e. node n-1 is the single leaf.
func chainParent(n int) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i - 1
	}
	return parent
}

// starParent builds a root with n-1 leaf children.
func starParent(n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = 0
	}
	return parent
}

func TestForestRunsChildrenBeforeParents(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for name, parent := range map[string][]int{
			"chain": chainParent(32),
			"star":  starParent(32),
			"mixed": {-1, 0, 0, 1, 1, 2, 2, 5, 5, 5, -1, 10, 10},
		} {
			p := New(workers)
			var done [64]atomic.Bool
			err := p.Forest(parent, func(v int) error {
				for c, pa := range parent {
					if pa == v && !done[c].Load() {
						return fmt.Errorf("node %d ran before child %d", v, c)
					}
				}
				done[v].Store(true)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, name, err)
			}
			for v := range parent {
				if !done[v].Load() {
					t.Fatalf("workers=%d %s: node %d never ran", workers, name, v)
				}
			}
		}
	}
}

func TestForestErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		p := New(workers)
		parent := chainParent(100) // 99 is the leaf; tasks run leaf-to-root
		var ran atomic.Int32
		err := p.Forest(parent, func(v int) error {
			ran.Add(1)
			if v == 90 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// Nodes above the failure (89..0) must not have been dispatched.
		if got := ran.Load(); got > 10+int32(workers) {
			t.Fatalf("workers=%d: %d tasks ran after failure, want ≈10", workers, got)
		}
	}
}

func TestMapErrLowestIndexError(t *testing.T) {
	p := New(1)
	err := p.MapErr(10, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("err-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "err-3" {
		t.Fatalf("err = %v, want err-3", err)
	}
	var sum atomic.Int64
	if err := New(4).MapErr(100, func(i int) error { sum.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		p := New(workers)
		var hit [257]atomic.Int32
		p.Map(257, func(i int) { hit[i].Add(1) })
		for i := range hit {
			if hit[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hit[i].Load())
			}
		}
	}
}

func TestSetWorkersRoundTrip(t *testing.T) {
	// The initial raw setting is 0 (tracking GOMAXPROCS) unless the
	// FAQ_WORKERS hook pinned it at init (`make test-workers`).
	initial := 0
	if v := os.Getenv("FAQ_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			initial = n
		}
	}
	prev := SetWorkers(7)
	defer SetWorkers(prev)
	if prev != initial {
		t.Fatalf("initial raw setting = %d, want %d", prev, initial)
	}
	if Workers() != 7 {
		t.Fatalf("Workers = %d, want 7", Workers())
	}
	if got := SetWorkers(0); got != 7 {
		t.Fatalf("SetWorkers returned %d, want 7", got)
	}
	if Workers() < 1 {
		t.Fatalf("default Workers = %d, want ≥ 1", Workers())
	}
	// Restoring the returned raw value must re-enter tracking mode, not
	// pin a resolved snapshot.
	inner := SetWorkers(5)
	SetWorkers(inner)
	if got := SetWorkers(0); got != 0 {
		t.Fatalf("raw setting after round-trip = %d, want 0", got)
	}
}

func TestMakespanStar(t *testing.T) {
	// Root + 8 equal leaves of cost 10, root cost 5.
	parent := starParent(9)
	cost := make([]int64, 9)
	cost[0] = 5
	for i := 1; i < 9; i++ {
		cost[i] = 10
	}
	if got := Makespan(parent, cost, 1); got != 85 {
		t.Fatalf("1 worker: makespan = %d, want 85 (sequential total)", got)
	}
	if got := Makespan(parent, cost, 8); got != 15 {
		t.Fatalf("8 workers: makespan = %d, want 15 (one leaf wave + root)", got)
	}
	if got := Makespan(parent, cost, 4); got != 25 {
		t.Fatalf("4 workers: makespan = %d, want 25 (two leaf waves + root)", got)
	}
	// The chain admits no parallelism: span == work at any width.
	chain := chainParent(5)
	cc := []int64{1, 2, 3, 4, 5}
	if s1, s8 := Makespan(chain, cc, 1), Makespan(chain, cc, 8); s1 != 15 || s8 != 15 {
		t.Fatalf("chain makespans = %d, %d; want 15, 15", s1, s8)
	}
}

func TestMakespanMatchesTotalSequential(t *testing.T) {
	parent := []int{-1, 0, 0, 1, 1, 2, 2}
	cost := []int64{3, 1, 4, 1, 5, 9, 2}
	if got, want := Makespan(parent, cost, 1), TotalCost(cost); got != want {
		t.Fatalf("1-worker makespan %d != total work %d", got, want)
	}
}
