package exec

import (
	"math/rand"
	"testing"
	"time"
)

// balancedBinaryParent builds a 7-node balanced binary tree: root 0 with
// children 1,2; node 1 with children 3,4; node 2 with children 5,6.
func balancedBinaryParent() []int { return []int{-1, 0, 0, 1, 1, 2, 2} }

// uniformShapes returns n identical shapes.
func uniformShapes(n int, sh TaskShape) []TaskShape {
	shapes := make([]TaskShape, n)
	for i := range shapes {
		shapes[i] = sh
	}
	return shapes
}

// TestMakespanShapedHandComputed is the satellite table: hand-computed
// work/span schedules for line, star, and balanced-binary GHD shapes,
// with atomic and divisible task mixes.
func TestMakespanShapedHandComputed(t *testing.T) {
	line4 := chainParent(4) // 3 -> 2 -> 1 -> 0, leaf is node 3
	star5 := starParent(5)  // root 0 with leaves 1..4
	bin7 := balancedBinaryParent()

	cases := []struct {
		name    string
		parent  []int
		shape   []TaskShape
		workers int
		want    int64
	}{
		// --- line: the chain admits no inter-node parallelism, so all
		// speedup must come from intra-node chunks.
		{
			// Atomic backward-compat: chain of cost 8 each = 32 at any width.
			"line/atomic/8w", line4, uniformShapes(4, TaskShape{Work: 8}), 8, 32,
		},
		{
			// Fully divisible into 4 chunks of 2: each node takes 2 at 4
			// workers (4 chunks in one wave, zero tail), 4·2 = 8.
			"line/divisible/4w", line4, uniformShapes(4, TaskShape{Work: 8, Div: 8, Parts: 4}), 4, 8,
		},
		{
			// Same shapes at 2 workers: 4 chunks of 2 on 2 workers = two
			// waves of 2 per node → 4 per node, 16 total.
			"line/divisible/2w", line4, uniformShapes(4, TaskShape{Work: 8, Div: 8, Parts: 4}), 2, 16,
		},
		{
			// Half divisible (Div 4 of Work 8, 4 chunks of 1): chunks one
			// wave of 1, then a serial tail of 4 → 5 per node, 20 total.
			"line/half-divisible/4w", line4, uniformShapes(4, TaskShape{Work: 8, Div: 4, Parts: 4}), 4, 20,
		},
		{
			// 1 worker: shapes never help — chunks serialize, 4·8 = 32.
			"line/divisible/1w", line4, uniformShapes(4, TaskShape{Work: 8, Div: 8, Parts: 4}), 1, 32,
		},
		// --- star: wide DAGs already keep workers busy; shaping the
		// leaves cannot beat the work bound, but shaping helps exactly
		// where the schedule has idle workers (the root).
		{
			"star/atomic/2w", star5, uniformShapes(5, TaskShape{Work: 4}), 2, 12, // 4 leaves on 2 workers = 8, +4 root
		},
		{
			// Divisible leaves AND root, 2 chunks of 2 each: leaf chunks
			// are 8 sub-tasks of 2 on 2 workers = 8, root then runs its 2
			// chunks in one wave = 2 → 10.
			"star/divisible/2w", star5, uniformShapes(5, TaskShape{Work: 4, Div: 4, Parts: 2}), 2, 10,
		},
		{
			// Only the root divisible: leaves pack into 8 as atomic tasks,
			// root's 2 chunks of 2 take 2 → 10 (vs 12 atomic).
			"star/root-divisible/2w", star5,
			[]TaskShape{{Work: 4, Div: 4, Parts: 2}, {Work: 4}, {Work: 4}, {Work: 4}, {Work: 4}}, 2, 10,
		},
		// --- balanced binary: inter-node parallelism covers the two
		// subtrees, intra-node chunks flatten the root path.
		{
			"binary/atomic/1w", bin7, uniformShapes(7, TaskShape{Work: 10}), 1, 70,
		},
		{
			// Atomic at 4 workers: leaves 3,4,5,6 in one wave (10), nodes
			// 1,2 in one wave (10), root (10) → 30.
			"binary/atomic/4w", bin7, uniformShapes(7, TaskShape{Work: 10}), 4, 30,
		},
		{
			// Divisible into 2 chunks of 5 at 4 workers: the leaf wave has
			// 8 chunks of 5 on 4 workers = 10, the internal wave 4 chunks
			// of 5 = 5, the root 2 chunks of 5 = 5 → 20.
			"binary/divisible/4w", bin7, uniformShapes(7, TaskShape{Work: 10, Div: 10, Parts: 2}), 4, 20,
		},
		{
			// Div with remainder: Work 10, Div 7, Parts 3 → chunks 3,2,2
			// then tail 3. One node alone at 3 workers: max(chunk)=3, +3
			// tail = 6.
			"single/remainder/3w", []int{-1}, []TaskShape{{Work: 10, Div: 7, Parts: 3}}, 3, 6,
		},
		{
			// More chunks than workers: 4 chunks of 1 on 2 workers = 2
			// waves of 1 = 2, tail 6 → 8.
			"single/chunks-exceed-workers/2w", []int{-1}, []TaskShape{{Work: 10, Div: 4, Parts: 4}}, 2, 8,
		},
		// Degenerate shapes.
		{"empty", nil, nil, 4, 0},
		{
			// Div > Work is clamped to Work: behaves as fully divisible.
			"single/div-clamped/2w", []int{-1}, []TaskShape{{Work: 8, Div: 100, Parts: 2}}, 2, 4,
		},
		{
			// Parts ≤ 1 is atomic regardless of Div.
			"single/parts1-atomic/8w", []int{-1}, []TaskShape{{Work: 8, Div: 8, Parts: 1}}, 8, 8,
		},
	}
	for _, tc := range cases {
		if got := MakespanShaped(tc.parent, tc.shape, tc.workers); got != tc.want {
			t.Errorf("%s: MakespanShaped = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestMakespanShapedAtomicMatchesMakespan pins the backward-compat
// contract: atomic shapes replay to exactly the schedule Makespan
// computes, on deterministic shapes and on random forests.
func TestMakespanShapedAtomicMatchesMakespan(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		parent := make([]int, n)
		cost := make([]int64, n)
		for v := 0; v < n; v++ {
			parent[v] = r.Intn(v+1) - 1 // parent < v keeps it a valid forest
			cost[v] = int64(r.Intn(100))
		}
		for _, w := range []int{1, 2, 3, 8} {
			got := MakespanShaped(parent, AtomicShapes(cost), w)
			want := Makespan(parent, cost, w)
			if got != want {
				t.Fatalf("trial %d workers %d: shaped(atomic) = %d, Makespan = %d\nparent=%v cost=%v",
					trial, w, got, want, parent, cost)
			}
		}
	}
}

// TestMakespanShapedBounds: on random forests and shapes, the replayed
// schedule length obeys the work bounds of greedy list scheduling — at
// least ceil(total/workers) (no worker exceeds unit speed), at most the
// total work (some worker is always busy while sub-tasks remain), and
// exactly the total at one worker. Note shaped is NOT asserted ≤ atomic:
// greedy list schedules have Graham anomalies, so chunking a task can
// occasionally lengthen a particular schedule.
func TestMakespanShapedBounds(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(30)
		parent := make([]int, n)
		shapes := make([]TaskShape, n)
		var total int64
		for v := 0; v < n; v++ {
			parent[v] = r.Intn(v+1) - 1 // parent < v keeps it a valid forest
			work := int64(1 + r.Intn(64))
			shapes[v] = TaskShape{Work: work, Div: int64(r.Intn(int(work + 1))), Parts: 1 + r.Intn(6)}
			total += work
		}
		if got := MakespanShaped(parent, shapes, 1); got != total {
			t.Fatalf("trial %d: 1-worker shaped makespan %d != total work %d", trial, got, total)
		}
		for _, w := range []int{2, 4, 8} {
			shaped := MakespanShaped(parent, shapes, w)
			if lower := (total + int64(w) - 1) / int64(w); shaped < lower {
				t.Fatalf("trial %d workers %d: shaped %d below work bound %d", trial, w, shaped, lower)
			}
			if shaped > total {
				t.Fatalf("trial %d workers %d: shaped %d above total work %d", trial, w, shaped, total)
			}
		}
	}
}

// TestForestShapedRecordsDivisibleRegions runs a forest whose tasks mark
// Divisible regions and checks the recorded shapes: Div ≤ Work, Parts
// captured, nested regions charged once, unmarked tasks atomic.
func TestForestShapedRecordsDivisibleRegions(t *testing.T) {
	parent := []int{-1, 0, 0}
	busy := func(d time.Duration) {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
		}
	}
	shapes, err := New(1).ForestShaped(parent, func(v int) error {
		switch v {
		case 1: // one marked region, with a nested region inside
			Divisible(8, func() {
				Divisible(4, func() { busy(2 * time.Millisecond) })
				busy(2 * time.Millisecond)
			})
		case 2: // unmarked: atomic
			busy(time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, sh := range shapes {
		if sh.Div > sh.Work {
			t.Errorf("node %d: Div %d > Work %d", v, sh.Div, sh.Work)
		}
	}
	if shapes[1].Parts != 8 {
		t.Errorf("node 1: Parts = %d, want 8 (outermost bracket)", shapes[1].Parts)
	}
	if shapes[1].Div < (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("node 1: Div = %dns, want ≥ 3ms (both busy loops inside the bracket)", shapes[1].Div)
	}
	if shapes[2].Div != 0 || shapes[2].Parts != 1 {
		t.Errorf("node 2: shape %+v, want atomic (Div 0, Parts 1)", shapes[2])
	}
	// Outside a measurement run, Divisible is a plain call.
	ran := false
	Divisible(4, func() { ran = true })
	if !ran {
		t.Fatal("Divisible must run f outside ForestShaped")
	}
}

// TestForestShapedPropagatesError: task errors surface like Forest's.
func TestForestShapedPropagatesError(t *testing.T) {
	parent := chainParent(5)
	_, err := New(1).ForestShaped(parent, func(v int) error {
		if v == 2 {
			return errShaped
		}
		return nil
	})
	if err != errShaped {
		t.Fatalf("err = %v, want errShaped", err)
	}
	if activeShape.Load() != nil {
		t.Fatal("activeShape recorder leaked after error")
	}
}

var errShaped = errTest("shaped boom")

type errTest string

func (e errTest) Error() string { return string(e) }
