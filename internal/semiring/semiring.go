// Package semiring defines the commutative semiring abstraction that
// underlies Functional Aggregate Queries (FAQs) and provides the semirings
// used throughout the paper "Topology Dependent Bounds For FAQs"
// (Langberg, Li, Mani Jayaraman, Rudra; PODS 2019).
//
// A commutative semiring (D, ⊕, ⊗) has a commutative monoid (D, ⊕) with
// additive identity 0, a commutative monoid (D, ⊗) with multiplicative
// identity 1, ⊗ distributes over ⊕, and 0 annihilates under ⊗
// (footnote 2 of the paper).
//
// The package also defines per-variable aggregate operators (Op) used by
// general FAQ queries (Section 5): for each bound variable the aggregate is
// either the semiring product ⊗ or the addition of a commutative semiring
// that shares the same identities 0 and 1.
package semiring

import (
	"fmt"
	"math"
)

// Semiring is a commutative semiring over values of type T.
//
// Implementations must satisfy, for all a, b, c:
//
//	Add(a, b) == Add(b, a)
//	Add(Add(a, b), c) == Add(a, Add(b, c))
//	Add(a, Zero()) == a
//	Mul(a, b) == Mul(b, a)
//	Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
//	Mul(a, One()) == a
//	Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
//	Mul(a, Zero()) == Zero()
//
// Equal is the semiring's notion of value equality; floating-point
// semirings use a relative tolerance so that re-associated aggregations
// (e.g. a distributed protocol summing in a different order than a
// centralized solver) still compare equal.
type Semiring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
	Equal(a, b T) bool
	// IsZero reports whether a is the additive identity. Relations in
	// listing representation never store zero-valued tuples, mirroring
	// the paper's definition R_e = {(y, f_e(y)) : f_e(y) ≠ 0}.
	IsZero(a T) bool
	// Format renders a value for diagnostics.
	Format(a T) string
}

// Bool is the Boolean semiring ({0,1}, ∨, ∧) used for Boolean Conjunctive
// Queries (BCQ). Zero is false, One is true.
type Bool struct{}

// Zero returns false, the additive identity of (∨).
func (Bool) Zero() bool { return false }

// One returns true, the multiplicative identity of (∧).
func (Bool) One() bool { return true }

// Add is logical OR.
func (Bool) Add(a, b bool) bool { return a || b }

// Mul is logical AND.
func (Bool) Mul(a, b bool) bool { return a && b }

// Equal reports a == b.
func (Bool) Equal(a, b bool) bool { return a == b }

// IsZero reports whether a is false.
func (Bool) IsZero(a bool) bool { return !a }

// Format renders the value as "0" or "1".
func (Bool) Format(a bool) string {
	if a {
		return "1"
	}
	return "0"
}

// F2 is the finite field of two elements (F₂, ⊕=XOR, ⊗=AND), the semiring
// of the Matrix Chain Multiplication problem (Section 6). Values are 0 or 1.
type F2 struct{}

// Zero returns 0.
func (F2) Zero() byte { return 0 }

// One returns 1.
func (F2) One() byte { return 1 }

// Add is addition modulo 2 (XOR).
func (F2) Add(a, b byte) byte { return (a ^ b) & 1 }

// Mul is multiplication modulo 2 (AND).
func (F2) Mul(a, b byte) byte { return a & b & 1 }

// Equal reports a == b (mod 2).
func (F2) Equal(a, b byte) bool { return a&1 == b&1 }

// IsZero reports whether a ≡ 0 (mod 2).
func (F2) IsZero(a byte) bool { return a&1 == 0 }

// Format renders the value as "0" or "1".
func (F2) Format(a byte) string { return fmt.Sprintf("%d", a&1) }

// floatTolerance is the relative tolerance used by floating-point
// semirings' Equal: distributed protocols aggregate in a different order
// than centralized solvers, so exact float equality is too strict.
const floatTolerance = 1e-9

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= floatTolerance*scale
}

// SumProduct is the (ℝ≥0, +, ×) semiring used for probabilistic graphical
// model marginals (the paper's second headline problem).
type SumProduct struct{}

// Zero returns 0.
func (SumProduct) Zero() float64 { return 0 }

// One returns 1.
func (SumProduct) One() float64 { return 1 }

// Add is real addition.
func (SumProduct) Add(a, b float64) float64 { return a + b }

// Mul is real multiplication.
func (SumProduct) Mul(a, b float64) float64 { return a * b }

// Equal compares with a relative tolerance.
func (SumProduct) Equal(a, b float64) bool { return approxEqual(a, b) }

// IsZero reports whether a is (approximately) 0.
func (SumProduct) IsZero(a float64) bool { return a == 0 }

// Format renders the value with %g.
func (SumProduct) Format(a float64) string { return fmt.Sprintf("%g", a) }

// MinPlus is the tropical semiring (ℝ∪{+∞}, min, +) used for shortest-path
// style aggregations; Zero is +∞ and One is 0.
type MinPlus struct{}

// Zero returns +∞, the identity of min.
func (MinPlus) Zero() float64 { return math.Inf(1) }

// One returns 0, the identity of +.
func (MinPlus) One() float64 { return 0 }

// Add is min.
func (MinPlus) Add(a, b float64) float64 { return math.Min(a, b) }

// Mul is real addition.
func (MinPlus) Mul(a, b float64) float64 { return a + b }

// Equal compares with a relative tolerance.
func (MinPlus) Equal(a, b float64) bool { return approxEqual(a, b) }

// IsZero reports whether a is +∞.
func (MinPlus) IsZero(a float64) bool { return math.IsInf(a, 1) }

// Format renders the value with %g.
func (MinPlus) Format(a float64) string { return fmt.Sprintf("%g", a) }

// MaxTimes is the Viterbi semiring (ℝ≥0, max, ×) used for maximum a
// posteriori (MAP) queries; Zero is 0 and One is 1. It shares identities
// with SumProduct and therefore is a valid per-variable aggregate for
// general FAQs mixed with sum-product factors (Section 5).
type MaxTimes struct{}

// Zero returns 0, the identity of max over ℝ≥0.
func (MaxTimes) Zero() float64 { return 0 }

// One returns 1.
func (MaxTimes) One() float64 { return 1 }

// Add is max.
func (MaxTimes) Add(a, b float64) float64 { return math.Max(a, b) }

// Mul is real multiplication.
func (MaxTimes) Mul(a, b float64) float64 { return a * b }

// Equal compares with a relative tolerance.
func (MaxTimes) Equal(a, b float64) bool { return approxEqual(a, b) }

// IsZero reports whether a is 0.
func (MaxTimes) IsZero(a float64) bool { return a == 0 }

// Format renders the value with %g.
func (MaxTimes) Format(a float64) string { return fmt.Sprintf("%g", a) }

// Count is the counting semiring (ℤ, +, ×) used to count join results
// (e.g. the number of satisfying assignments of a conjunctive query).
type Count struct{}

// Zero returns 0.
func (Count) Zero() int64 { return 0 }

// One returns 1.
func (Count) One() int64 { return 1 }

// Add is integer addition.
func (Count) Add(a, b int64) int64 { return a + b }

// Mul is integer multiplication.
func (Count) Mul(a, b int64) int64 { return a * b }

// Equal reports a == b.
func (Count) Equal(a, b int64) bool { return a == b }

// IsZero reports whether a == 0.
func (Count) IsZero(a int64) bool { return a == 0 }

// Format renders the value with %d.
func (Count) Format(a int64) string { return fmt.Sprintf("%d", a) }

// Compile-time interface conformance checks.
var (
	_ Semiring[bool]    = Bool{}
	_ Semiring[byte]    = F2{}
	_ Semiring[float64] = SumProduct{}
	_ Semiring[float64] = MinPlus{}
	_ Semiring[float64] = MaxTimes{}
	_ Semiring[int64]   = Count{}
)
