package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkLaws verifies the commutative-semiring laws of s on values drawn by
// gen. Floating-point semirings are exercised with values for which the
// laws hold exactly or within the semiring's Equal tolerance.
func checkLaws[T any](t *testing.T, name string, s Semiring[T], gen func(r *rand.Rand) T) {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		if !s.Equal(s.Add(a, b), s.Add(b, a)) {
			t.Fatalf("%s: add not commutative: %s %s", name, s.Format(a), s.Format(b))
		}
		if !s.Equal(s.Mul(a, b), s.Mul(b, a)) {
			t.Fatalf("%s: mul not commutative: %s %s", name, s.Format(a), s.Format(b))
		}
		if !s.Equal(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) {
			t.Fatalf("%s: add not associative", name)
		}
		if !s.Equal(s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c))) {
			t.Fatalf("%s: mul not associative", name)
		}
		if !s.Equal(s.Add(a, s.Zero()), a) {
			t.Fatalf("%s: zero not additive identity for %s", name, s.Format(a))
		}
		if !s.Equal(s.Mul(a, s.One()), a) {
			t.Fatalf("%s: one not multiplicative identity for %s", name, s.Format(a))
		}
		if !s.Equal(s.Mul(a, s.Zero()), s.Zero()) {
			t.Fatalf("%s: zero not annihilating for %s", name, s.Format(a))
		}
		lhs := s.Mul(a, s.Add(b, c))
		rhs := s.Add(s.Mul(a, b), s.Mul(a, c))
		if !s.Equal(lhs, rhs) {
			t.Fatalf("%s: mul does not distribute over add: a=%s b=%s c=%s lhs=%s rhs=%s",
				name, s.Format(a), s.Format(b), s.Format(c), s.Format(lhs), s.Format(rhs))
		}
		if s.IsZero(a) != s.Equal(a, s.Zero()) {
			t.Fatalf("%s: IsZero inconsistent with Equal(Zero) for %s", name, s.Format(a))
		}
	}
}

func TestBoolLaws(t *testing.T) {
	checkLaws[bool](t, "Bool", Bool{}, func(r *rand.Rand) bool { return r.Intn(2) == 1 })
}

func TestF2Laws(t *testing.T) {
	checkLaws[byte](t, "F2", F2{}, func(r *rand.Rand) byte { return byte(r.Intn(2)) })
}

func TestSumProductLaws(t *testing.T) {
	// Small non-negative integers keep float arithmetic exact.
	checkLaws[float64](t, "SumProduct", SumProduct{}, func(r *rand.Rand) float64 {
		return float64(r.Intn(64))
	})
}

func TestSumProductLawsFractional(t *testing.T) {
	// Dyadic rationals: distributivity is exact in binary floating point.
	checkLaws[float64](t, "SumProduct/dyadic", SumProduct{}, func(r *rand.Rand) float64 {
		return float64(r.Intn(256)) / 16.0
	})
}

func TestMinPlusLaws(t *testing.T) {
	checkLaws[float64](t, "MinPlus", MinPlus{}, func(r *rand.Rand) float64 {
		if r.Intn(8) == 0 {
			return math.Inf(1)
		}
		return float64(r.Intn(100))
	})
}

func TestMaxTimesLaws(t *testing.T) {
	checkLaws[float64](t, "MaxTimes", MaxTimes{}, func(r *rand.Rand) float64 {
		return float64(r.Intn(64))
	})
}

func TestCountLaws(t *testing.T) {
	checkLaws[int64](t, "Count", Count{}, func(r *rand.Rand) int64 {
		return int64(r.Intn(1000)) - 500
	})
}

func TestBoolTruthTable(t *testing.T) {
	s := Bool{}
	cases := []struct {
		a, b     bool
		add, mul bool
	}{
		{false, false, false, false},
		{false, true, true, false},
		{true, false, true, false},
		{true, true, true, true},
	}
	for _, c := range cases {
		if got := s.Add(c.a, c.b); got != c.add {
			t.Errorf("Add(%v,%v) = %v, want %v", c.a, c.b, got, c.add)
		}
		if got := s.Mul(c.a, c.b); got != c.mul {
			t.Errorf("Mul(%v,%v) = %v, want %v", c.a, c.b, got, c.mul)
		}
	}
}

func TestF2IsField(t *testing.T) {
	s := F2{}
	// 1 is its own additive inverse: characteristic 2.
	if got := s.Add(1, 1); got != 0 {
		t.Errorf("1+1 = %d over F2, want 0", got)
	}
	if got := s.Mul(1, 1); got != 1 {
		t.Errorf("1*1 = %d over F2, want 1", got)
	}
}

func TestMinPlusIdentities(t *testing.T) {
	s := MinPlus{}
	if !math.IsInf(s.Zero(), 1) {
		t.Errorf("MinPlus zero = %v, want +Inf", s.Zero())
	}
	if s.One() != 0 {
		t.Errorf("MinPlus one = %v, want 0", s.One())
	}
	if got := s.Add(3, 7); got != 3 {
		t.Errorf("min(3,7) = %v", got)
	}
	if got := s.Mul(3, 7); got != 10 {
		t.Errorf("3+7 = %v", got)
	}
}

func TestApproxEqualTolerance(t *testing.T) {
	s := SumProduct{}
	a := 0.1 + 0.2
	b := 0.3
	if !s.Equal(a, b) {
		t.Errorf("SumProduct.Equal(%v, %v) = false, want true (tolerant compare)", a, b)
	}
	if s.Equal(1.0, 1.001) {
		t.Errorf("SumProduct.Equal(1, 1.001) = true, want false")
	}
	if !s.Equal(math.Inf(1), math.Inf(1)) {
		t.Errorf("Equal(+Inf, +Inf) = false, want true")
	}
	if s.Equal(math.Inf(1), 1e300) {
		t.Errorf("Equal(+Inf, 1e300) = true, want false")
	}
}

func TestAddOfOp(t *testing.T) {
	op := AddOf[bool](Bool{})
	if op.IsProduct() {
		t.Fatal("AddOf reported IsProduct")
	}
	if op.Identity() != false {
		t.Fatal("AddOf(Bool).Identity() != false")
	}
	if !op.Combine(false, true) {
		t.Fatal("AddOf(Bool).Combine(false,true) != true")
	}
}

func TestMulOfOp(t *testing.T) {
	op := MulOf[float64](SumProduct{})
	if !op.IsProduct() {
		t.Fatal("MulOf did not report IsProduct")
	}
	if op.Identity() != 1 {
		t.Fatal("MulOf(SumProduct).Identity() != 1")
	}
	if got := op.Combine(3, 4); got != 12 {
		t.Fatalf("MulOf(SumProduct).Combine(3,4) = %v, want 12", got)
	}
}

func TestCompatibleAggregate(t *testing.T) {
	// MaxTimes shares identities (0, 1) with SumProduct, so max is a valid
	// bound-variable aggregate in a sum-product FAQ (Section 5).
	if !CompatibleAggregate[float64](SumProduct{}, MaxTimes{}) {
		t.Error("MaxTimes should be a compatible aggregate for SumProduct")
	}
	// MinPlus has zero = +Inf and one = 0: incompatible with SumProduct.
	if CompatibleAggregate[float64](SumProduct{}, MinPlus{}) {
		t.Error("MinPlus should not be a compatible aggregate for SumProduct")
	}
}

// TestQuickBoolDeMorganish uses testing/quick to confirm the Boolean
// semiring agrees with Go's built-in operators on arbitrary inputs.
func TestQuickBoolDeMorganish(t *testing.T) {
	s := Bool{}
	f := func(a, b, c bool) bool {
		return s.Add(s.Mul(a, b), c) == ((a && b) || c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCountDistributivity property-tests distributivity on int64.
func TestQuickCountDistributivity(t *testing.T) {
	s := Count{}
	f := func(a, b, c int16) bool {
		x, y, z := int64(a), int64(b), int64(c)
		return s.Mul(x, s.Add(y, z)) == s.Add(s.Mul(x, y), s.Mul(x, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
