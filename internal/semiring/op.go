package semiring

// Op is a binary aggregate operator for a bound variable of a general FAQ
// query (Section 5, eq. 4). For each bound variable i the paper requires
// either ⊕⁽ⁱ⁾ = ⊗ (a product aggregate) or (D, ⊕⁽ⁱ⁾, ⊗) to be a commutative
// semiring sharing the additive identity 0 and multiplicative identity 1
// with the query's base semiring (a semiring aggregate).
type Op[T any] interface {
	// Identity returns the identity element of Combine.
	Identity() T
	// Combine applies the aggregate to two values.
	Combine(a, b T) T
	// IsProduct reports whether this aggregate is the semiring product ⊗.
	// Product aggregates require special handling over listing
	// representations: unlisted (zero) tuples annihilate the aggregate,
	// so the aggregation must know the domain size (see
	// relation.EliminateVar).
	IsProduct() bool
}

// addOp adapts a semiring's ⊕ into an Op.
type addOp[T any] struct{ s Semiring[T] }

func (o addOp[T]) Identity() T      { return o.s.Zero() }
func (o addOp[T]) Combine(a, b T) T { return o.s.Add(a, b) }
func (o addOp[T]) IsProduct() bool  { return false }

// AddOf returns the semiring-aggregate operator ⊕ of s. This is the
// operator used for every bound variable of an FAQ-SS query.
func AddOf[T any](s Semiring[T]) Op[T] { return addOp[T]{s} }

// mulOp adapts a semiring's ⊗ into a product-aggregate Op.
type mulOp[T any] struct{ s Semiring[T] }

func (o mulOp[T]) Identity() T      { return o.s.One() }
func (o mulOp[T]) Combine(a, b T) T { return o.s.Mul(a, b) }
func (o mulOp[T]) IsProduct() bool  { return true }

// MulOf returns the product-aggregate operator ⊗ of s, usable as a bound
// variable's aggregate in a general FAQ.
func MulOf[T any](s Semiring[T]) Op[T] { return mulOp[T]{s} }

// CompatibleAggregate reports whether alt's addition can serve as a
// semiring aggregate for a query whose factors live in base: the paper
// requires the alternative semiring to share the additive identity 0 and
// multiplicative identity 1 with base.
func CompatibleAggregate[T any](base, alt Semiring[T]) bool {
	return base.Equal(base.Zero(), alt.Zero()) && base.Equal(base.One(), alt.One())
}
