// Package experiments regenerates every quantitative artifact of the
// paper — Table 1, the Figure 1/2 width values, the worked Examples
// 2.1–2.4, the theorem-level round bounds, the MCM trade-off curves, the
// entropy experiments of Section 6, and the Appendix A MPC comparison —
// as text tables of paper-claim vs. measured values. cmd/faqbench
// renders them; bench_test.go wraps the same runners as Go benchmarks;
// EXPERIMENTS.md records their output.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/faq"
	"repro/internal/flow"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/mcm"
	"repro/internal/mpc"
	"repro/internal/pgm"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/topology"
	"repro/internal/tribes"
	"repro/internal/workload"
)

// Table is one rendered experiment.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f2s(x float64) string { return fmt.Sprintf("%.2f", x) }
func itoa(x int) string    { return fmt.Sprintf("%d", x) }

var sbool = semiring.Bool{}

// starQueryTrue builds a star BCQ over k relations of n tuples that is
// true by construction (one planted common value).
func starQueryTrue(k, n int, r *rand.Rand) *faq.Query[bool] {
	h := hypergraph.StarGraph(k)
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		b := relation.NewBuilder[bool](sbool, h.Edge(e))
		for x := 0; x < n; x++ {
			b.AddOne(x, r.Intn(n))
		}
		factors[e] = b.Build()
	}
	return faq.NewBCQ(h, factors, n)
}

// runMain executes the main protocol and returns measured rounds.
func runMain[T any](q *faq.Query[T], g *topology.Graph, assign protocol.Assignment, out int) (int, int64, error) {
	s := &protocol.Setup[T]{Q: q, G: g, Assign: assign, Output: out}
	_, rep, err := protocol.Run(s)
	return rep.Rounds, rep.Bits, err
}

// WidthTable reproduces the Figure 1 / Figure 2 / Appendix C.2 width
// values: y(H), n₂(H), degeneracy, arity for the paper's example
// hypergraphs.
func WidthTable() (*Table, error) {
	t := &Table{
		ID:     "fig1-fig2-widths",
		Title:  "internal-node-width y(H), core size n2(H) (Figures 1-2, Appendix C.2)",
		Header: []string{"hypergraph", "y(H)", "n2(H)", "degeneracy", "arity", "acyclic"},
		Notes: []string{
			"paper: y(H1)=y(H2)=1 (Figure 2, T1 has one internal node); H3's GYO-GHD needs 2 (Appendix C.2 sample 1)",
		},
	}
	cases := []struct {
		name string
		h    *hypergraph.Hypergraph
	}{
		{"H0 (4 self-loops, Ex 2.1)", hypergraph.ExampleH0()},
		{"H1 (star, Fig 1)", hypergraph.ExampleH1()},
		{"H2 (Fig 1)", hypergraph.ExampleH2()},
		{"H3 (App C.2)", hypergraph.ExampleH3()},
		{"path P6", hypergraph.PathGraph(6)},
		{"cycle C5", hypergraph.CycleGraph(5)},
		{"clique K4", hypergraph.CliqueGraph(4)},
	}
	for _, c := range cases {
		y, err := ghd.Width(c.h)
		if err != nil {
			return nil, err
		}
		d := hypergraph.Decompose(c.h)
		t.Rows = append(t.Rows, []string{
			c.name, itoa(y), itoa(d.N2()),
			itoa(hypergraph.Degeneracy(c.h)), itoa(c.h.Arity()),
			fmt.Sprintf("%v", hypergraph.IsAcyclic(c.h)),
		})
	}
	return t, nil
}

// ExamplesTable reproduces Examples 2.1-2.3: measured rounds of the main
// protocol on the paper's exact instances vs. the claimed counts
// N+2, N+2, N/2+2.
func ExamplesTable(n int) (*Table, error) {
	t := &Table{
		ID:     "examples-2.1-2.3",
		Title:  fmt.Sprintf("worked examples at N=%d: measured rounds vs paper's count", n),
		Header: []string{"example", "topology", "paper", "measured", "trivial protocol"},
	}
	r := rand.New(rand.NewSource(11))

	type ex struct {
		name, topo, paper string
		q                 *faq.Query[bool]
		g                 *topology.Graph
		out               int
		claim             int
	}
	// Example 2.1: H0 on the line G1, full sets (worst case), output P4.
	h0 := hypergraph.ExampleH0()
	f0 := make([]*relation.Relation[bool], 4)
	for i := range f0 {
		b := relation.NewBuilder[bool](sbool, h0.Edge(i))
		for x := 0; x < n; x++ {
			b.AddOne(x)
		}
		f0[i] = b.Build()
	}
	// Example 2.2/2.3: star H1 with full A-projections.
	mk := func() *faq.Query[bool] {
		h := hypergraph.ExampleH1()
		fs := make([]*relation.Relation[bool], 4)
		for i := range fs {
			b := relation.NewBuilder[bool](sbool, h.Edge(i))
			for x := 0; x < n; x++ {
				b.AddOne(x, r.Intn(n))
			}
			fs[i] = b.Build()
		}
		return faq.NewBCQ(h, fs, n)
	}
	cases := []ex{
		{"2.1 self-loops", "line G1", "N+2", faq.NewBCQ(h0, f0, n), topology.Line(4), 3, n + 2},
		{"2.2 star H1", "line G1", "N+2", mk(), topology.Line(4), 1, n + 2},
		{"2.3 star H1", "clique G2", "N/2+2", mk(), topology.Clique(4), 1, n/2 + 2},
	}
	for _, c := range cases {
		s := &protocol.Setup[bool]{Q: c.q, G: c.g, Assign: protocol.Assignment{0, 1, 2, 3}, Output: c.out}
		_, rep, err := protocol.Run(s)
		if err != nil {
			return nil, err
		}
		_, repT, err := protocol.RunTrivial(s)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, c.topo, fmt.Sprintf("%s = %d", c.paper, c.claim),
			itoa(rep.Rounds), itoa(repT.Rounds),
		})
	}
	return t, nil
}

// Example24Table runs the Lemma 4.4 lower-bound pipeline of Example 2.4.
func Example24Table(n int) (*Table, error) {
	t := &Table{
		ID:     "example-2.4",
		Title:  fmt.Sprintf("TRIBES lower bound on the line (Example 2.4), N=%d", n),
		Header: []string{"quantity", "value"},
		Notes:  []string{"LB(rounds) follows §3.1's Ω̃ convention: mN/(MinCut·⌈log MinCut⌉·⌈log N⌉)"},
	}
	h := hypergraph.ExampleH1()
	sites, err := tribes.SitesForForest(h)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(21))
	in := tribes.HardInstance(1, n, true, r)
	emb, err := tribes.EmbedAtSites(h, sites, in)
	if err != nil {
		return nil, err
	}
	g := topology.Line(4)
	minCut, side, err := flow.MinCutSeparating(g, []int{0, 1, 2, 3})
	if err != nil {
		return nil, err
	}
	assign, _, bNode, err := tribes.CutAssignment(emb, side)
	if err != nil {
		return nil, err
	}
	s := &protocol.Setup[bool]{Q: emb.Q, G: g, Assign: assign, Output: bNode}
	ans, rep, err := protocol.Run(s)
	if err != nil {
		return nil, err
	}
	v, _ := relation.ScalarValue(emb.Q.S, ans)
	t.Rows = append(t.Rows,
		[]string{"TRIBES value", fmt.Sprintf("%v", in.Eval())},
		[]string{"BCQ value (protocol)", fmt.Sprintf("%v", v)},
		[]string{"equivalent", fmt.Sprintf("%v", v == in.Eval())},
		[]string{"MinCut(G,K)", itoa(minCut)},
		[]string{"LB bits Ω(mN)", f1(tribes.LowerBoundBits(emb.M, n))},
		[]string{"LB rounds (Ω̃)", f1(tribes.LowerBoundRounds(emb.M, n, minCut))},
		[]string{"measured rounds", itoa(rep.Rounds)},
		[]string{"measured bits", fmt.Sprintf("%d", rep.Bits)},
	)
	return t, nil
}

// Table1 regenerates the paper's Table 1: for each row, measured rounds
// of the main protocol on a representative instance, the upper/lower
// bound formulas, and the resulting gap.
func Table1(n int) (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: fmt.Sprintf("Table 1 reproduction at N=%d", n),
		Header: []string{"row", "query", "G", "d", "r", "measured", "UB formula",
			"LB~ formula", "gap UB/LB~"},
		Notes: []string{
			"rows 1-2: gap Õ(1); row 3: Õ(d); row 4: Õ(d²r²); row 5 (MCM): O(1) — see the mcm experiment",
		},
	}
	r := rand.New(rand.NewSource(31))
	type row struct {
		name  string
		q     *faq.Query[bool]
		g     *topology.Graph
		gName string
	}
	mkAssign := func(q *faq.Query[bool], g *topology.Graph) protocol.Assignment {
		players := make([]int, g.N())
		for i := range players {
			players[i] = i
		}
		return workload.RoundRobinAssignment(q.H.NumEdges(), players)
	}
	pathQ := workload.BCQ(hypergraph.PathGraph(5), n, n, r)
	starQ := starQueryTrue(4, n, r)
	degQ := workload.BCQ(workload.DDegenerateGraph(6, 3, r), n, n, r)
	hyperQ := workload.BCQ(workload.DDegenerateHypergraph(6, 2, 3, r), n, n, r)
	rows := []row{
		{"1 FAQ/L", pathQ, topology.Line(4), "line"},
		{"2 FAQ/A", starQ, topology.Clique(4), "clique"},
		{"3 BCQ/A d", degQ, topology.Grid(2, 3), "grid"},
		{"4 FAQ/A r", hyperQ, topology.Grid(2, 3), "grid"},
	}
	for _, rw := range rows {
		assign := mkAssign(rw.q, rw.g)
		rounds, _, err := runMain(rw.q, rw.g, assign, 0)
		if err != nil {
			return nil, err
		}
		players := topology.SortedUnique(append([]int(nil), assign...))
		b, err := core.ComputeBounds(rw.q.H, rw.q.MaxFactorSize(), rw.g, players)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			rw.name, rw.q.H.String()[:min(18, len(rw.q.H.String()))], rw.gName,
			itoa(b.Degeneracy), itoa(b.Arity), itoa(rounds), itoa(b.Upper),
			f1(b.LowerTilde), f2s(b.Gap()),
		})
	}
	// Row 5: MCM summary (full sweep in the mcm experiment).
	ins := mcm.RandomInstance(8, 64, r)
	_, seq, err := mcm.Sequential(ins, 1)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"5 MCM*/L", "chain A_k..A_1 x", "line", "1", "2",
		itoa(seq.Rounds), itoa((ins.K + 1) * ins.N),
		f1(mcm.LowerBoundRounds(ins.K, ins.N)),
		f2s(float64(seq.Rounds) / mcm.LowerBoundRounds(ins.K, ins.N)),
	})
	return t, nil
}

// SetIntersectionTable measures Theorem 3.11 across topologies.
func SetIntersectionTable(n int) (*Table, error) {
	t := &Table{
		ID:     "thm-3.11",
		Title:  fmt.Sprintf("distributed set intersection (Theorem 3.11), |sets|=%d", n),
		Header: []string{"topology", "players", "ST", "Δ", "theory N/ST+Δ", "measured"},
	}
	cases := []struct {
		name string
		g    *topology.Graph
		K    []int
	}{
		{"line(4)", topology.Line(4), []int{0, 1, 2, 3}},
		{"line(8)", topology.Line(8), []int{0, 2, 5, 7}},
		{"clique(4)", topology.Clique(4), []int{0, 1, 2, 3}},
		{"clique(8)", topology.Clique(8), []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{"grid(3x3)", topology.Grid(3, 3), []int{0, 2, 6, 8}},
		{"mpc0(4,3)", mustMPC0(4, 3), []int{0, 1, 2, 3}},
	}
	for _, c := range cases {
		sets := map[int][]int{}
		for _, u := range c.K {
			all := make([]int, n)
			for x := range all {
				all[x] = x
			}
			sets[u] = all
		}
		delta, trees, bound, err := flow.BestDelta(c.g, c.K, n)
		if err != nil {
			return nil, err
		}
		_, rep, err := protocol.SetIntersection(&protocol.SetIntersectionInput{
			G: c.g, Sets: sets, Output: c.K[0], Universe: n,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, itoa(len(c.K)), itoa(len(trees)), itoa(delta), itoa(bound), itoa(rep.Rounds),
		})
	}
	return t, nil
}

func mustMPC0(k, p int) *topology.Graph {
	g, _ := topology.MPC0(k, p)
	return g
}

// TauMCFTable reproduces Appendix D.1: τ_MCF is within Õ(1) of
// N′/MinCut.
func TauMCFTable(units int) (*Table, error) {
	t := &Table{
		ID:     "appendix-D1",
		Title:  fmt.Sprintf("τ_MCF vs N'/MinCut (Appendix D.1), N'=%d", units),
		Header: []string{"topology", "MinCut", "N'/MinCut", "τ_MCF", "ratio"},
	}
	cases := []struct {
		name string
		g    *topology.Graph
		K    []int
	}{
		{"line(6)", topology.Line(6), []int{0, 5}},
		{"ring(8)", topology.Ring(8), []int{0, 4}},
		{"clique(6)", topology.Clique(6), []int{0, 1, 2, 3, 4, 5}},
		{"grid(3x4)", topology.Grid(3, 4), []int{0, 11}},
	}
	for _, c := range cases {
		mc, _, err := flow.MinCutSeparating(c.g, c.K)
		if err != nil {
			return nil, err
		}
		tau, _, err := flow.TauMCF(c.g, c.K, units)
		if err != nil {
			return nil, err
		}
		ideal := float64(units) / float64(mc)
		t.Rows = append(t.Rows, []string{
			c.name, itoa(mc), f1(ideal), itoa(tau), f2s(float64(tau) / ideal),
		})
	}
	return t, nil
}

// MCMTable reproduces the Section 6 trade-off: sequential Θ(kN) vs merge
// O(N² log k + k) vs trivial Θ(kN²), against the Ω(kN) bound.
func MCMTable() (*Table, error) {
	t := &Table{
		ID:    "mcm",
		Title: "Matrix Chain Multiplication on a line (Section 6, Appendix I.1)",
		Header: []string{"k", "N", "sequential", "merge", "trivial", "LB Ω(kN)",
			"winner"},
		Notes: []string{
			"paper: sequential optimal for k ≤ N (Thm 6.4); merge wins for k ≫ N (App I.1); trivial always Θ(kN²)",
		},
	}
	r := rand.New(rand.NewSource(17))
	cases := [][2]int{{4, 32}, {8, 32}, {16, 32}, {32, 16}, {64, 8}, {128, 8}, {256, 4}}
	for _, kn := range cases {
		k, n := kn[0], kn[1]
		ins := mcm.RandomInstance(k, n, r)
		want := ins.Answer()
		ySeq, seq, err := mcm.Sequential(ins, 1)
		if err != nil {
			return nil, err
		}
		yMrg, mrg, err := mcm.Merge(ins, 1)
		if err != nil {
			return nil, err
		}
		yTrv, trv, err := mcm.Trivial(ins, 1)
		if err != nil {
			return nil, err
		}
		if !ySeq.Equal(want) || !yMrg.Equal(want) || !yTrv.Equal(want) {
			return nil, fmt.Errorf("mcm protocols disagree at k=%d n=%d", k, n)
		}
		winner := "sequential"
		if mrg.Rounds < seq.Rounds {
			winner = "merge"
		}
		t.Rows = append(t.Rows, []string{
			itoa(k), itoa(n), itoa(seq.Rounds), itoa(mrg.Rounds), itoa(trv.Rounds),
			f1(mcm.LowerBoundRounds(k, n)), winner,
		})
	}
	return t, nil
}

// EntropyTable runs the Theorem 6.3 Monte-Carlo check.
func EntropyTable(samples int) (*Table, error) {
	t := &Table{
		ID:    "thm-6.3",
		Title: "min-entropy preservation under matrix-vector product (Theorem 6.3)",
		Header: []string{"N", "γ·N rows fixed", "H∞(x)=αN", "H∞(A)", "bound (1-√2γ)N",
			"H∞(Ax) sampled"},
	}
	r := rand.New(rand.NewSource(5))
	cases := []struct{ n, rows, alpha int }{
		{10, 0, 5}, {10, 1, 5}, {10, 2, 6}, {12, 2, 6}, {14, 2, 7},
	}
	for _, c := range cases {
		e := &entropy.ProductExperiment{N: c.n, GammaRows: c.rows, AlphaBits: c.alpha, Samples: samples}
		res, err := e.Run(r)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(c.n), itoa(c.rows), f1(res.HxDesigned), f1(res.HADesigned),
			f2s(res.Bound), f2s(res.HAxEstimate),
		})
	}
	return t, nil
}

// ShannonTable reproduces Appendix I.3 in closed form.
func ShannonTable() (*Table, error) {
	t := &Table{
		ID:    "appendix-I3",
		Title: "why Shannon entropy fails (Appendix I.3), exact values",
		Header: []string{"N", "T", "α", "H_Sh(x)", "H∞(x)", "H(Ax|f,x)",
			"paper bound αN"},
		Notes: []string{
			"H_Sh(x) ≈ 2α(1-α)N is high while H∞(x) ≈ T: the min-entropy hypothesis of Lemma 6.2 fails, and",
			"the conditional entropy of Ax collapses to ≈ αN < H_Sh(x) — Shannon entropy cannot drive the induction",
		},
	}
	cases := []struct {
		n, tt int
		a     float64
	}{
		{20, 4, 0.2}, {24, 3, 0.125}, {32, 4, 0.125}, {40, 4, 0.1},
	}
	for _, c := range cases {
		res, err := (&entropy.ShannonCounterexample{N: c.n, T: c.tt, Alpha: c.a}).Exact()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(c.n), itoa(c.tt), f2s(c.a), f2s(res.HShX), f2s(res.HMinX),
			f2s(res.HCondAx), f2s(res.PaperBound),
		})
	}
	return t, nil
}

// MPCTable reproduces the Appendix A comparisons.
func MPCTable(n int) (*Table, error) {
	t := &Table{
		ID:     "appendix-A",
		Title:  fmt.Sprintf("star query in MPC topologies (Appendix A), N=%d", n),
		Header: []string{"model", "k", "p", "bound", "measured rounds"},
		Notes:  []string{"MPC(0) bound N/p+2 (A.1.4); MPC(ε) clique bound N/(p/2)+2 (A.2.3)"},
	}
	for _, p := range []int{2, 4, 8, 16} {
		res, err := mpc.Star0(4, p, n, n, 0, rand.New(rand.NewSource(9)))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"MPC(0)", "4", itoa(p), f1(mpc.Mpc0RoundBound(n, p)), itoa(res.Rounds),
		})
	}
	for _, p := range []int{4, 8, 16} {
		res, err := mpc.StarEps(6, p, n, n, 0, rand.New(rand.NewSource(9)))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"MPC(ε)", "6", itoa(p), f1(mpc.MpcEpsRoundBound(n, p)), itoa(res.Rounds),
		})
	}
	return t, nil
}

// PGMTable runs a distributed PGM factor marginal and compares with the
// centralized solver.
func PGMTable(n int) (*Table, error) {
	t := &Table{
		ID:     "pgm-marginals",
		Title:  "PGM marginals as FAQ-SS (Section 1), distributed vs centralized",
		Header: []string{"model", "query", "match", "rounds", "trivial rounds"},
	}
	r := rand.New(rand.NewSource(13))
	sp := semiring.SumProduct{}
	models := []struct {
		name string
		m    *pgm.Model
		g    *topology.Graph
	}{
		{"chain(6)", pgm.NewChain(6, 3, r), topology.Line(5)},
		{"tree(7)", pgm.NewTree(7, 3, r), topology.Star(6)},
		{"grid(2x3)", pgm.NewGrid(2, 3, 2, r), topology.Ring(7)},
	}
	for _, c := range models {
		q := c.m.MarginalQuery(c.m.H.Edge(0))
		players := make([]int, c.g.N())
		for i := range players {
			players[i] = i
		}
		assign := workload.RoundRobinAssignment(q.H.NumEdges(), players)
		s := &protocol.Setup[float64]{Q: q, G: c.g, Assign: assign, Output: 0}
		ans, rep, err := protocol.Run(s)
		if err != nil {
			return nil, err
		}
		want, err := faq.BruteForce(q)
		if err != nil {
			return nil, err
		}
		_, repT, err := protocol.RunTrivial(s)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, "factor marginal F=e0",
			fmt.Sprintf("%v", relation.Equal(sp, ans, want)),
			itoa(rep.Rounds), itoa(repT.Rounds),
		})
	}
	_ = n
	return t, nil
}

// All runs every experiment at the default sizes.
func All() ([]*Table, error) {
	var out []*Table
	steps := []func() (*Table, error){
		WidthTable,
		func() (*Table, error) { return Table1(128) },
		func() (*Table, error) { return ExamplesTable(128) },
		func() (*Table, error) { return Example24Table(128) },
		func() (*Table, error) { return SetIntersectionTable(128) },
		func() (*Table, error) { return TauMCFTable(256) },
		MCMTable,
		func() (*Table, error) { return EntropyTable(200000) },
		ShannonTable,
		func() (*Table, error) { return MPCTable(128) },
		func() (*Table, error) { return PGMTable(128) },
	}
	for _, f := range steps {
		tbl, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
