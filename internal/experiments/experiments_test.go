package experiments

import (
	"strings"
	"testing"
)

// The experiment runners double as integration tests: each must execute
// end to end at reduced sizes and produce a well-formed table.

func checkTable(t *testing.T, tbl *Table, err error, wantRows int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want ≥ %d", tbl.ID, len(tbl.Rows), wantRows)
	}
	for _, r := range tbl.Rows {
		if len(r) != len(tbl.Header) {
			t.Fatalf("%s: row width %d != header width %d", tbl.ID, len(r), len(tbl.Header))
		}
	}
	out := tbl.Format()
	if !strings.Contains(out, tbl.ID) {
		t.Errorf("%s: Format lost the id", tbl.ID)
	}
}

func TestWidthTable(t *testing.T) {
	tbl, err := WidthTable()
	checkTable(t, tbl, err, 7)
	// Pin the paper's values inside the rendered rows.
	for _, row := range tbl.Rows {
		switch {
		case strings.HasPrefix(row[0], "H1"):
			if row[1] != "1" {
				t.Errorf("y(H1) rendered as %s, want 1", row[1])
			}
		case strings.HasPrefix(row[0], "H3"):
			if row[1] != "2" || row[2] != "5" {
				t.Errorf("H3 rendered y=%s n2=%s, want 2, 5", row[1], row[2])
			}
		}
	}
}

func TestExamplesTableSmall(t *testing.T) {
	tbl, err := ExamplesTable(32)
	checkTable(t, tbl, err, 3)
	// Example 2.1 must land exactly on N+2 at every size.
	if tbl.Rows[0][3] != "34" {
		t.Errorf("Example 2.1 measured %s rounds, want 34 = N+2", tbl.Rows[0][3])
	}
}

func TestExample24TableSmall(t *testing.T) {
	tbl, err := Example24Table(32)
	checkTable(t, tbl, err, 6)
	for _, row := range tbl.Rows {
		if row[0] == "equivalent" && row[1] != "true" {
			t.Error("embedding equivalence failed in Example 2.4 table")
		}
	}
}

func TestTable1Small(t *testing.T) {
	tbl, err := Table1(32)
	checkTable(t, tbl, err, 5)
}

func TestSetIntersectionTableSmall(t *testing.T) {
	tbl, err := SetIntersectionTable(32)
	checkTable(t, tbl, err, 6)
}

func TestTauMCFTableSmall(t *testing.T) {
	tbl, err := TauMCFTable(64)
	checkTable(t, tbl, err, 4)
}

func TestMCMTable(t *testing.T) {
	tbl, err := MCMTable()
	checkTable(t, tbl, err, 7)
	// The winner column must flip from sequential to merge as k grows
	// past N (Appendix I.1).
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if first[len(first)-1] != "sequential" {
		t.Errorf("small-k winner = %s, want sequential", first[len(first)-1])
	}
	if last[len(last)-1] != "merge" {
		t.Errorf("large-k winner = %s, want merge", last[len(last)-1])
	}
}

func TestEntropyTableSmall(t *testing.T) {
	tbl, err := EntropyTable(20000)
	checkTable(t, tbl, err, 5)
}

func TestShannonTable(t *testing.T) {
	tbl, err := ShannonTable()
	checkTable(t, tbl, err, 4)
}

func TestMPCTableSmall(t *testing.T) {
	tbl, err := MPCTable(32)
	checkTable(t, tbl, err, 7)
}

func TestPGMTableSmall(t *testing.T) {
	tbl, err := PGMTable(32)
	checkTable(t, tbl, err, 3)
	for _, row := range tbl.Rows {
		if row[2] != "true" {
			t.Errorf("%s: distributed marginal mismatch", row[0])
		}
	}
}
