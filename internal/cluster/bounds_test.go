package cluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/faq"
	"repro/internal/semiring"
	"repro/internal/workload"
)

// TestPayloadBoundDominatesMeasured: the closed-form bound must cover
// the measured solve payload for every standing template at every fleet
// width — the same gate faqbench -cluster enforces before writing its
// artifact.
func TestPayloadBoundDominatesMeasured(t *testing.T) {
	sc := semiring.Count{}
	gen := func(r *rand.Rand) int64 { return int64(1 + r.Intn(4)) }
	for _, tpl := range workload.Templates() {
		q, g := templateQuery(t, sc, tpl.Name, 11, gen)
		for _, w := range []int{1, 2, 8} {
			bound, err := PayloadBound(q, g, w)
			if err != nil {
				t.Fatalf("%s W=%d: %v", tpl.Name, w, err)
			}
			if bound <= 0 {
				t.Fatalf("%s W=%d: degenerate bound %d", tpl.Name, w, bound)
			}
			c := simClient(t, w)
			solver, err := NewSolver[int64](c, "count")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := solver.SolveGHD(context.Background(), q, g); err != nil {
				t.Fatalf("%s W=%d: %v", tpl.Name, w, err)
			}
			if st := c.Stats(); st.SolvePayloadBytes > bound {
				t.Fatalf("%s W=%d: measured solve payload %d exceeds closed-form bound %d",
					tpl.Name, w, st.SolvePayloadBytes, bound)
			}
		}
	}
}

// TestPayloadBoundNotDistributable: shapes SolveGHD rejects are
// rejected by the bound too, with the same sentinel.
func TestPayloadBoundNotDistributable(t *testing.T) {
	sc := semiring.Count{}
	q, g := templateQuery(t, sc, "path7", 5, func(r *rand.Rand) int64 { return 1 })
	q.VarOps = map[int]semiring.Op[int64]{1: semiring.AddOf[int64](sc)}
	if _, err := PayloadBound(q, g, 2); !errors.Is(err, faq.ErrNotDistributable) {
		t.Fatalf("PayloadBound on VarOps query: %v, want ErrNotDistributable", err)
	}
}
