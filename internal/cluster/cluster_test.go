package cluster

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/delta/churn"
	"repro/internal/faq"
	"repro/internal/ghd"
	"repro/internal/relation"
	"repro/internal/rpc"
	"repro/internal/semiring"
	"repro/internal/workload"
)

const (
	testDom  = 6
	testRows = 40
)

// templateQuery builds a seeded typed query over a standing workload
// template, plus the GHD the engine would plan for it.
func templateQuery[T any](t *testing.T, s semiring.Semiring[T], tplName string, seed int64, gen func(*rand.Rand) T) (*faq.Query[T], *ghd.GHD) {
	t.Helper()
	tpl, ok := workload.TemplateByName(tplName)
	if !ok {
		t.Fatalf("no template %q", tplName)
	}
	shape, err := churn.BuildQuery(s, tpl, testDom, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	factors := make([]*relation.Relation[T], shape.H.NumEdges())
	for e := range factors {
		schema := shape.H.Edge(e)
		b := relation.NewBuilder(s, schema)
		row := make([]int32, len(schema))
		for i := 0; i < testRows; i++ {
			for k := range row {
				row[k] = int32(r.Intn(testDom))
			}
			b.AddRow(row, gen(r))
		}
		factors[e] = b.Build()
	}
	q, err := churn.BuildQuery(s, tpl, testDom, factors)
	if err != nil {
		t.Fatal(err)
	}
	g, err := faq.PlanGHD(q.H, q.Free)
	if err != nil {
		t.Fatal(err)
	}
	return q, g
}

func simClient(t *testing.T, workers int) *Client {
	t.Helper()
	tr, err := NewSimTransport(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tr, Options{})
	t.Cleanup(func() { c.Close() })
	return c
}

// checkTemplate solves one template locally and on a simulated cluster
// of every sweep size, asserting semiring-equal answers (bit-identical
// for the exact semirings).
func checkTemplate[T any](t *testing.T, s semiring.Semiring[T], semName, tplName string, gen func(*rand.Rand) T) {
	t.Helper()
	q, g := templateQuery(t, s, tplName, 42, gen)
	want, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		c := simClient(t, w)
		solver, err := NewSolver[T](c, semName)
		if err != nil {
			t.Fatal(err)
		}
		got, err := solver.SolveGHD(context.Background(), q, g)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		if !relation.Equal(s, got, want) {
			t.Fatalf("W=%d: cluster answer differs from local (%d vs %d rows)", w, got.Len(), want.Len())
		}
		st := c.Stats()
		if st.Solves != 1 || st.Frames == 0 || st.Phases == 0 {
			t.Fatalf("W=%d: counters did not move: %+v", w, st)
		}
		if st.LoadShards != int64(w*q.H.NumEdges()) {
			t.Fatalf("W=%d: %d load shards, want %d", w, st.LoadShards, w*q.H.NumEdges())
		}
	}
}

func TestClusterMatchesLocal(t *testing.T) {
	for _, tpl := range workload.Templates() {
		t.Run(tpl.Name, func(t *testing.T) {
			t.Run("count", func(t *testing.T) {
				checkTemplate(t, semiring.Count{}, "count", tpl.Name,
					func(r *rand.Rand) int64 { return int64(1 + r.Intn(4)) })
			})
			t.Run("bool", func(t *testing.T) {
				checkTemplate(t, semiring.Bool{}, "bool", tpl.Name,
					func(*rand.Rand) bool { return true })
			})
			t.Run("f2", func(t *testing.T) {
				checkTemplate(t, semiring.F2{}, "f2", tpl.Name,
					func(r *rand.Rand) byte { return byte(r.Intn(2)) })
			})
			t.Run("sumproduct", func(t *testing.T) {
				checkTemplate(t, semiring.SumProduct{}, "sumproduct", tpl.Name,
					func(r *rand.Rand) float64 { return 0.25 + r.Float64() })
			})
			t.Run("minplus", func(t *testing.T) {
				checkTemplate(t, semiring.MinPlus{}, "minplus", tpl.Name,
					func(r *rand.Rand) float64 { return r.Float64() })
			})
			t.Run("maxtimes", func(t *testing.T) {
				checkTemplate(t, semiring.MaxTimes{}, "maxtimes", tpl.Name,
					func(r *rand.Rand) float64 { return 0.25 + r.Float64() })
			})
		})
	}
}

// TestClusterAnswerNonTrivial guards the harness against vacuity: the
// seeded workload must produce answers with actual rows.
func TestClusterAnswerNonTrivial(t *testing.T) {
	q, g := templateQuery(t, semiring.Count{}, "path7", 42,
		func(r *rand.Rand) int64 { return int64(1 + r.Intn(4)) })
	want, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("seeded path7 workload has an empty answer; the differential tests prove nothing")
	}
}

func TestEmptyFactorMatchesLocal(t *testing.T) {
	sc := semiring.Count{}
	tpl, _ := workload.TemplateByName("star6")
	shape, err := churn.BuildQuery(sc, tpl, testDom, nil) // all factors empty
	if err != nil {
		t.Fatal(err)
	}
	g, err := faq.PlanGHD(shape.H, shape.Free)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := faq.SolveGHD(nil, shape, g, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := simClient(t, 2)
	solver, err := NewSolver[int64](c, "count")
	if err != nil {
		t.Fatal(err)
	}
	got, err := solver.SolveGHD(context.Background(), shape, g)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sc, got, want) {
		t.Fatal("empty-factor answers differ")
	}
}

// TestNotDistributable covers the fallback contract: shapes the
// coordinator cannot shard return faq.ErrNotDistributable (wrapped),
// and faq.SolveGHD with the solver plugged into SolveOptions then
// serves the local pass with the right answer.
func TestNotDistributable(t *testing.T) {
	sp := semiring.SumProduct{}
	q, g := templateQuery(t, sp, "path7", 9,
		func(r *rand.Rand) float64 { return 0.25 + r.Float64() })
	// A per-variable aggregate override (max over A1) is not shardable:
	// partial max-of-sum ≠ sum-of-partial-max across workers.
	q.VarOps = map[int]semiring.Op[float64]{1: semiring.AddOf[float64](semiring.MaxTimes{})}
	c := simClient(t, 2)
	solver, err := NewSolver[float64](c, "sumproduct")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.SolveGHD(context.Background(), q, g); !errors.Is(err, faq.ErrNotDistributable) {
		t.Fatalf("VarOps query returned %v, want ErrNotDistributable", err)
	}

	want, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{Distributed: solver})
	if err != nil {
		t.Fatalf("SolveOptions fallback: %v", err)
	}
	if !relation.Equal(sp, got, want) {
		t.Fatal("fallback answer differs from local")
	}
	if st := c.Stats(); st.Solves != 0 {
		t.Fatalf("non-distributable query still ran %d cluster solves", st.Solves)
	}
}

// TestSolveOptionsDistributed covers the happy path through the
// faq.SolveGHD hook: a distributable query with a Distributed solver
// runs on the cluster, not locally.
func TestSolveOptionsDistributed(t *testing.T) {
	sc := semiring.Count{}
	q, g := templateQuery(t, sc, "tree6", 13,
		func(r *rand.Rand) int64 { return int64(1 + r.Intn(3)) })
	want, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := simClient(t, 4)
	solver, err := NewSolver[int64](c, "count")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{Distributed: solver})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sc, got, want) {
		t.Fatal("distributed answer differs from local")
	}
	if st := c.Stats(); st.Solves != 1 {
		t.Fatalf("expected 1 cluster solve, got %d", st.Solves)
	}
}

func TestSolverSemiringMismatch(t *testing.T) {
	c := simClient(t, 1)
	if _, err := NewSolver[int64](c, "bool"); err == nil {
		t.Fatal("count-typed solver accepted the bool profile")
	}
	if _, err := NewSolver[int64](c, "no-such"); err == nil {
		t.Fatal("unknown semiring name accepted")
	}
}

func TestWorkerProtocolErrors(t *testing.T) {
	w := NewWorker()
	ctx := context.Background()
	if resp := w.Handle(ctx, &rpc.Frame{Kind: kindCompute}); resp.Kind != kindErr {
		t.Fatalf("compute before session returned kind %d", resp.Kind)
	}
	if resp := w.Handle(ctx, &rpc.Frame{Kind: 99}); resp.Kind != kindErr {
		t.Fatalf("unknown kind returned kind %d", resp.Kind)
	}
	if resp := w.Handle(ctx, &rpc.Frame{Kind: kindQuery, Body: encodeQuery("no-such", 4)}); resp.Kind != kindErr {
		t.Fatalf("unknown semiring returned kind %d", resp.Kind)
	}
	if resp := w.Handle(ctx, &rpc.Frame{Kind: kindPing}); resp.Kind != kindOK {
		t.Fatalf("ping returned kind %d", resp.Kind)
	}
	// A worker error must surface as a typed coordinator error naming
	// the worker, and the session must stay usable after a reset.
	tr, err := NewSimTransport(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tr, Options{})
	defer c.Close()
	if _, err := c.roundTrip(ctx, 0, &rpc.Frame{Kind: kindCompute}); err == nil {
		t.Fatal("worker error did not surface at the coordinator")
	} else if !strings.HasPrefix(err.Error(), "cluster: worker 0") {
		t.Fatalf("coordinator error does not name the worker: %q", err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("fleet unusable after worker error: %v", err)
	}
}

func TestSimTransportLedger(t *testing.T) {
	sc := semiring.Count{}
	q, g := templateQuery(t, sc, "star6", 5,
		func(r *rand.Rand) int64 { return int64(1 + r.Intn(3)) })
	tr, err := NewSimTransport(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tr, Options{})
	defer c.Close()
	solver, err := NewSolver[int64](c, "count")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.SolveGHD(context.Background(), q, g); err != nil {
		t.Fatal(err)
	}
	if tr.Rounds() == 0 || tr.TotalBits() == 0 {
		t.Fatalf("netsim ledger empty after a solve: rounds=%d bits=%d", tr.Rounds(), tr.TotalBits())
	}
	out, in := tr.Bytes()
	st := c.Stats()
	if st.WireOutBytes != out || st.WireInBytes != in {
		t.Fatalf("stats wire bytes (%d,%d) disagree with transport (%d,%d)",
			st.WireOutBytes, st.WireInBytes, out, in)
	}
	if st.SolvePayloadBytes <= 0 || st.WireOutBytes <= st.SolvePayloadBytes/2 {
		t.Fatalf("implausible byte accounting: %+v", st)
	}
}
