package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/faq"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// TestChaosClusterSolve sweeps the rpc transport failpoints under full
// distributed solves on real loopback fleets of 1, 2, and 8 workers: an
// injected drop on dial/send/recv surfaces as a typed coordinator error
// matching fault.ErrInjected (never a hang, never a wrong answer), an
// injected delay is absorbed with the answer unchanged, and a stall
// under a request deadline surfaces promptly as the context's error.
// After every fault the same fleet must serve a clean solve with the
// bit-identical answer — failed exchanges poison only their connection,
// not the fleet.
func TestChaosClusterSolve(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sc := semiring.Count{}
	q, g := templateQuery(t, sc, "tree6", 99,
		func(r *rand.Rand) int64 { return int64(1 + r.Intn(3)) })
	want, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{1, 2, 8} {
		c := tcpFleet(t, w)
		solver, err := NewSolver[int64](c, "count")
		if err != nil {
			t.Fatal(err)
		}
		solve := func(ctx context.Context) (*relation.Relation[int64], error) {
			return solver.SolveGHD(ctx, q, g)
		}
		checkClean := func(t *testing.T, label string) {
			t.Helper()
			ans, err := solve(context.Background())
			if err != nil {
				t.Fatalf("%s: clean solve failed: %v", label, err)
			}
			if !relation.Equal(sc, ans, want) {
				t.Fatalf("%s: clean solve returned a different answer", label)
			}
		}
		// Prime the fleet (and the connection pool) before injecting.
		checkClean(t, fmt.Sprintf("w%d/prime", w))

		for _, site := range []string{"rpc.send", "rpc.recv"} {
			t.Run(fmt.Sprintf("w%d/drop/%s", w, site), func(t *testing.T) {
				fault.Enable(site, fault.Config{Mode: fault.ModeError, Once: true})
				defer fault.Reset()
				_, err := solve(context.Background())
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("injected %s drop returned %v, want ErrInjected", site, err)
				}
				// Transport failures additionally carry the retryable
				// sentinel serving layers map to 503.
				if !errors.Is(err, ErrUnavailable) {
					t.Fatalf("injected %s drop returned %v, want ErrUnavailable in the chain", site, err)
				}
				fault.Reset()
				checkClean(t, "after drop")
			})

			t.Run(fmt.Sprintf("w%d/delay/%s", w, site), func(t *testing.T) {
				fault.Enable(site, fault.Config{Mode: fault.ModeDelay, Delay: time.Millisecond, OneIn: 3})
				defer fault.Reset()
				ans, err := solve(context.Background())
				if err != nil {
					t.Fatalf("delayed solve failed: %v", err)
				}
				if !relation.Equal(sc, ans, want) {
					t.Fatal("delays changed the answer")
				}
			})
		}

		t.Run(fmt.Sprintf("w%d/drop/rpc.dial", w), func(t *testing.T) {
			// A fresh fleet so the solve must dial: the injected dial
			// fault is not a connection-refused and must fail immediately
			// (no retry loop) as a typed error.
			fresh := tcpFleet(t, w)
			freshSolver, err := NewSolver[int64](fresh, "count")
			if err != nil {
				t.Fatal(err)
			}
			fault.Enable("rpc.dial", fault.Config{Mode: fault.ModeError, Once: true})
			defer fault.Reset()
			t0 := time.Now()
			if _, err := freshSolver.SolveGHD(context.Background(), q, g); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("injected dial fault returned %v, want ErrInjected", err)
			}
			if d := time.Since(t0); d > 5*time.Second {
				t.Fatalf("injected dial fault entered the refused-retry backoff: %v", d)
			}
			fault.Reset()
			ans, err := freshSolver.SolveGHD(context.Background(), q, g)
			if err != nil {
				t.Fatalf("post-fault solve failed: %v", err)
			}
			if !relation.Equal(sc, ans, want) {
				t.Fatal("post-fault answer differs")
			}
		})

		t.Run(fmt.Sprintf("w%d/deadline", w), func(t *testing.T) {
			// A long injected stall must not outlive the request deadline:
			// fanout's first error cancels the rest and the solve reports
			// the context's error promptly.
			fault.Enable("rpc.send", fault.Config{Mode: fault.ModeDelay, Delay: time.Minute, Once: true})
			defer fault.Reset()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			t0 := time.Now()
			_, err := solve(ctx)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("stalled solve returned %v, want DeadlineExceeded", err)
			}
			if d := time.Since(t0); d > 5*time.Second {
				t.Fatalf("deadline was not honored promptly: %v", d)
			}
			fault.Reset()
			checkClean(t, "after deadline")
		})

		t.Run(fmt.Sprintf("w%d/cancel", w), func(t *testing.T) {
			fault.Enable("rpc.recv", fault.Config{Mode: fault.ModeCancel, Once: true})
			defer fault.Reset()
			if _, err := solve(context.Background()); !errors.Is(err, context.Canceled) {
				t.Fatalf("injected cancel returned %v, want context.Canceled", err)
			}
			fault.Reset()
			checkClean(t, "after cancel")
		})

		checkClean(t, fmt.Sprintf("w%d/post-sweep", w))
	}
}
