package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/rpc"
)

// Transport moves cluster frames between the coordinator and a fixed
// set of workers. Implementations are safe for concurrent RoundTrips;
// worker indices run 0..Workers()-1.
type Transport interface {
	Workers() int
	RoundTrip(ctx context.Context, worker int, req *rpc.Frame) (*rpc.Frame, error)
	// Bytes returns cumulative wire bytes sent to and received from
	// workers (frame headers included).
	Bytes() (out, in int64)
	Close() error
}

// TCPOptions tunes the real transport.
type TCPOptions struct {
	// MsgTimeout is the per-message deadline and dial timeout; 0 means
	// no default (context deadlines still apply). Defaults to 30s.
	MsgTimeout time.Duration
	// ConnsPerWorker caps concurrent exchanges per worker — the
	// transport-level half of the coordinator's in-flight bound.
	// Defaults to 4.
	ConnsPerWorker int
	// DialRetries bounds reconnect attempts when a worker's port is not
	// listening yet (connection refused): process launch order in smoke
	// scripts and systemd-style deployments is not guaranteed. Retries
	// back off deterministically from RetryDelay, doubling to 1s.
	// Defaults to 8.
	DialRetries int
	// RetryDelay is the first reconnect backoff. Defaults to 50ms.
	RetryDelay time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.MsgTimeout == 0 {
		o.MsgTimeout = 30 * time.Second
	}
	if o.ConnsPerWorker <= 0 {
		o.ConnsPerWorker = 4
	}
	if o.DialRetries <= 0 {
		o.DialRetries = 8
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = 50 * time.Millisecond
	}
	return o
}

// NewTCPTransport returns a Transport over real connections to the
// given worker addresses. Connections are dialed lazily and pooled per
// worker; a failed exchange discards its connection and the next
// exchange redials.
func NewTCPTransport(addrs []string, opt TCPOptions) (Transport, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	opt = opt.withDefaults()
	t := &tcpTransport{opt: opt, pools: make([]*connPool, len(addrs))}
	for i, addr := range addrs {
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty worker address at index %d", i)
		}
		t.pools[i] = &connPool{
			addr:  addr,
			opt:   opt,
			slots: make(chan struct{}, opt.ConnsPerWorker),
			free:  make(chan *rpc.Conn, opt.ConnsPerWorker),
			conns: make(map[*rpc.Conn]struct{}),
		}
	}
	return t, nil
}

type tcpTransport struct {
	opt     TCPOptions
	pools   []*connPool
	out, in atomic.Int64
}

func (t *tcpTransport) Workers() int { return len(t.pools) }

func (t *tcpTransport) Bytes() (out, in int64) { return t.out.Load(), t.in.Load() }

func (t *tcpTransport) RoundTrip(ctx context.Context, worker int, req *rpc.Frame) (*rpc.Frame, error) {
	if worker < 0 || worker >= len(t.pools) {
		return nil, fmt.Errorf("cluster: worker index %d out of range [0,%d)", worker, len(t.pools))
	}
	p := t.pools[worker]
	c, err := p.get(ctx)
	if err != nil {
		return nil, err
	}
	resp, err := c.RoundTrip(ctx, req)
	if err != nil {
		p.drop(c)
		return nil, err
	}
	t.out.Add(int64(req.WireBytes()))
	t.in.Add(int64(resp.WireBytes()))
	p.put(c)
	return resp, nil
}

func (t *tcpTransport) Close() error {
	var err error
	for _, p := range t.pools {
		if e := p.close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// connPool bounds and reuses connections to one worker. slots is a
// counting semaphore over live connections; free holds idle ones.
type connPool struct {
	addr  string
	opt   TCPOptions
	slots chan struct{}
	free  chan *rpc.Conn

	mu     sync.Mutex
	conns  map[*rpc.Conn]struct{}
	closed bool
}

func (p *connPool) get(ctx context.Context) (*rpc.Conn, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		// Prefer an idle connection; otherwise take a slot and dial.
		select {
		case c := <-p.free:
			if c.Broken() {
				p.drop(c)
				continue
			}
			return c, nil
		default:
		}
		select {
		case c := <-p.free:
			if c.Broken() {
				p.drop(c)
				continue
			}
			return c, nil
		case p.slots <- struct{}{}:
			c, err := p.dial(ctx)
			if err != nil {
				<-p.slots
				return nil, err
			}
			return c, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (p *connPool) put(c *rpc.Conn) {
	if c.Broken() {
		p.drop(c)
		return
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		p.drop(c)
		return
	}
	select {
	case p.free <- c:
	default:
		p.drop(c)
	}
}

func (p *connPool) drop(c *rpc.Conn) {
	c.Close()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	<-p.slots
}

// dial connects to the worker, retrying connection-refused with
// deterministic exponential backoff: during cluster bring-up the
// coordinator may simply be ahead of the workers. Injected faults and
// every other error fail immediately.
func (p *connPool) dial(ctx context.Context) (*rpc.Conn, error) {
	delay := p.opt.RetryDelay
	for attempt := 0; ; attempt++ {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errors.New("cluster: transport closed")
		}
		p.mu.Unlock()
		c, err := rpc.Dial(ctx, p.addr, p.opt.MsgTimeout)
		if err == nil {
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				c.Close()
				return nil, errors.New("cluster: transport closed")
			}
			p.conns[c] = struct{}{}
			p.mu.Unlock()
			return c, nil
		}
		if attempt >= p.opt.DialRetries || !errors.Is(err, syscall.ECONNREFUSED) {
			return nil, err
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

func (p *connPool) close() error {
	p.mu.Lock()
	p.closed = true
	conns := make([]*rpc.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = make(map[*rpc.Conn]struct{})
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}
