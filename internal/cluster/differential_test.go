package cluster

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/faq"
	"repro/internal/relation"
	"repro/internal/rpc"
	"repro/internal/semiring"
	"repro/internal/workload"
)

// tcpFleet starts W real shard workers on loopback listeners and
// returns a coordinator dialing them over TCP.
func tcpFleet(t *testing.T, workers int) *Client {
	t.Helper()
	addrs := make([]string, workers)
	for w := 0; w < workers; w++ {
		srv, err := rpc.Serve("127.0.0.1:0", NewWorker().Handle)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[w] = srv.Addr()
	}
	tr, err := NewTCPTransport(addrs, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(tr, Options{})
	t.Cleanup(func() { c.Close() })
	return c
}

// logical projects the transport-independent half of Stats: the frame
// and message counts plus payload bytes that must be identical whether
// the frames crossed a netsim ledger or real loopback sockets.
type logical struct {
	Frames, LoadShards, SolveMessages int64
	LoadPayloadBytes                  int64
	SolvePayloadBytes                 int64
	Phases                            int64
}

func logicalOf(s Stats) logical {
	return logical{
		Frames: s.Frames, LoadShards: s.LoadShards, SolveMessages: s.SolveMessages,
		LoadPayloadBytes: s.LoadPayloadBytes, SolvePayloadBytes: s.SolvePayloadBytes,
		Phases: s.Phases,
	}
}

// TestDifferentialSimVsTCP is the transport differential harness: one
// seeded workload runs through the in-process netsim-backed transport
// and through a real loopback TCP fleet at 1, 2, and 8 workers. The
// answers must be bit-identical to each other and to the single-process
// engine, and the logical frame/message/payload accounting must match
// exactly — the TCP stack may only change how bytes move, not what
// moves.
func TestDifferentialSimVsTCP(t *testing.T) {
	sc := semiring.Count{}
	gen := func(r *rand.Rand) int64 { return int64(1 + r.Intn(4)) }
	for _, tpl := range workload.Templates() {
		t.Run(tpl.Name, func(t *testing.T) {
			q, g := templateQuery(t, sc, tpl.Name, 77, gen)
			want, _, err := faq.SolveGHD(nil, q, g, faq.SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 2, 8} {
				sim := simClient(t, w)
				simSolver, err := NewSolver[int64](sim, "count")
				if err != nil {
					t.Fatal(err)
				}
				simAns, err := simSolver.SolveGHD(context.Background(), q, g)
				if err != nil {
					t.Fatalf("W=%d sim: %v", w, err)
				}

				tcp := tcpFleet(t, w)
				tcpSolver, err := NewSolver[int64](tcp, "count")
				if err != nil {
					t.Fatal(err)
				}
				tcpAns, err := tcpSolver.SolveGHD(context.Background(), q, g)
				if err != nil {
					t.Fatalf("W=%d tcp: %v", w, err)
				}

				// Count is exact: ⊕ is integer addition, so both runs must
				// be bit-identical to the local pass, not merely close.
				if !relation.Equal(sc, simAns, want) {
					t.Fatalf("W=%d: sim answer differs from local", w)
				}
				if !relation.Equal(sc, tcpAns, want) {
					t.Fatalf("W=%d: tcp answer differs from local", w)
				}
				if !relation.Equal(sc, simAns, tcpAns) {
					t.Fatalf("W=%d: transports disagree with each other", w)
				}
				simL, tcpL := logicalOf(sim.Stats()), logicalOf(tcp.Stats())
				if simL != tcpL {
					t.Fatalf("W=%d: logical accounting differs:\n sim %+v\n tcp %+v", w, simL, tcpL)
				}
				// Real sockets carry at least the payload plus per-frame
				// headers; the wire total must dominate the payload total.
				st := tcp.Stats()
				if st.WireOutBytes <= st.LoadPayloadBytes {
					t.Fatalf("W=%d: wire bytes %d do not cover load payload %d",
						w, st.WireOutBytes, st.LoadPayloadBytes)
				}
			}
		})
	}
}

// TestTCPFleetSequentialSolves reuses one fleet (and its pooled
// connections) across several solves, mixing semirings — the serving
// pattern of a long-lived faqd.
func TestTCPFleetSequentialSolves(t *testing.T) {
	c := tcpFleet(t, 3)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	sc := semiring.Count{}
	qc, gc := templateQuery(t, sc, "path7", 3, func(r *rand.Rand) int64 { return int64(1 + r.Intn(3)) })
	sb := semiring.Bool{}
	qb, gb := templateQuery(t, sb, "star6", 4, func(*rand.Rand) bool { return true })

	countSolver, err := NewSolver[int64](c, "count")
	if err != nil {
		t.Fatal(err)
	}
	boolSolver, err := NewSolver[bool](c, "bool")
	if err != nil {
		t.Fatal(err)
	}
	wantC, _, err := faq.SolveGHD(nil, qc, gc, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantB, _, err := faq.SolveGHD(nil, qb, gb, faq.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		gotC, err := countSolver.SolveGHD(context.Background(), qc, gc)
		if err != nil {
			t.Fatalf("round %d count: %v", i, err)
		}
		if !relation.Equal(sc, gotC, wantC) {
			t.Fatalf("round %d: count answer drifted", i)
		}
		gotB, err := boolSolver.SolveGHD(context.Background(), qb, gb)
		if err != nil {
			t.Fatalf("round %d bool: %v", i, err)
		}
		if !relation.Equal(sb, gotB, wantB) {
			t.Fatalf("round %d: bool answer drifted", i)
		}
	}
	if st := c.Stats(); st.Solves != 6 {
		t.Fatalf("expected 6 solves, got %d", st.Solves)
	}
}
