package cluster

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/topology"
)

// DefaultSimBitsPerRound is the per-link round capacity of SimTransport
// when the caller does not choose one — wide enough that header frames
// fit in a round, narrow enough that relation payloads span several, so
// simulated round counts stay informative.
const DefaultSimBitsPerRound = 1 << 13

// SimTransport is the in-process test double of the TCP transport: the
// same frames the coordinator would put on the wire are booked on a
// netsim ledger over a star topology (coordinator at the hub, workers
// at the leaves) and handed to in-process Workers. The differential
// harness runs one workload through both transports and asserts the
// frame streams and answers agree.
type SimTransport struct {
	workers []*Worker
	mu      sync.Mutex
	net     *netsim.Network
	out, in atomic.Int64
}

// NewSimTransport returns a simulated cluster of the given size.
// bitsPerRound ≤ 0 selects DefaultSimBitsPerRound.
func NewSimTransport(workers, bitsPerRound int) (*SimTransport, error) {
	if bitsPerRound <= 0 {
		bitsPerRound = DefaultSimBitsPerRound
	}
	net, err := netsim.New(topology.Star(workers+1), bitsPerRound)
	if err != nil {
		return nil, err
	}
	ws := make([]*Worker, workers)
	for i := range ws {
		ws[i] = NewWorker()
	}
	return &SimTransport{workers: ws, net: net}, nil
}

func (t *SimTransport) Workers() int { return len(t.workers) }

func (t *SimTransport) Bytes() (out, in int64) { return t.out.Load(), t.in.Load() }

// Rounds returns the ledger's round count so far (netsim semantics:
// last occupied round + 1).
func (t *SimTransport) Rounds() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.net.Rounds()
}

// TotalBits returns the total bits booked on the ledger so far.
func (t *SimTransport) TotalBits() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.net.TotalBits()
}

func (t *SimTransport) RoundTrip(ctx context.Context, worker int, req *rpc.Frame) (*rpc.Frame, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	hub, leaf := 0, worker+1
	t.mu.Lock()
	_, err := t.net.SendBits(hub, leaf, 0, req.WireBytes()*8)
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	t.out.Add(int64(req.WireBytes()))
	resp := t.workers[worker].Handle(ctx, req)
	t.mu.Lock()
	_, err = t.net.SendBits(leaf, hub, 0, resp.WireBytes()*8)
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	t.in.Add(int64(resp.WireBytes()))
	return resp, nil
}

func (t *SimTransport) Close() error { return nil }
