package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faq"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/rpc"
	"repro/internal/semiring"
	"repro/internal/shard"
)

// Options tunes the coordinator.
type Options struct {
	// InFlight bounds concurrent RPCs per worker during scatter/gather
	// fan-outs. Defaults to 4. Keep it ≤ the transport's per-worker
	// connection cap so fan-outs never queue on the pool.
	InFlight int
}

// Stats is a snapshot of the coordinator's cumulative accounting.
type Stats struct {
	Workers int
	Solves  int64
	// Frames counts every request/response exchange.
	Frames int64
	// LoadShards / SolveMessages count relation-bearing frames: factor
	// shards scattered in load phases, and routed message slices plus
	// gathered partials in star phases. They are transport-independent —
	// the differential harness asserts they match between SimTransport
	// and TCP runs.
	LoadShards    int64
	SolveMessages int64
	// Payload bytes are encoded-relation bytes only (frame headers
	// excluded); Wire bytes are everything the transport moved.
	LoadPayloadBytes  int64
	SolvePayloadBytes int64
	// Phases counts synchronization barriers (session setup, load, and
	// per-star scatter/gather) — the cluster's analogue of rounds.
	Phases       int64
	WireOutBytes int64
	WireInBytes  int64
}

// Client is the coordinator's handle on a worker fleet. One Client
// serializes its distributed solves (worker session state is
// per-solve); concurrent callers queue on an internal mutex, so it is
// safe to share one Client across service requests.
type Client struct {
	tr       Transport
	inflight int

	solveMu sync.Mutex // serializes SolveGHD passes

	solves        atomic.Int64
	frames        atomic.Int64
	loadShards    atomic.Int64
	solveMessages atomic.Int64
	loadPayload   atomic.Int64
	solvePayload  atomic.Int64
	phases        atomic.Int64
}

// NewClient wraps a Transport in a coordinator.
func NewClient(tr Transport, opts Options) *Client {
	if opts.InFlight <= 0 {
		opts.InFlight = 4
	}
	return &Client{tr: tr, inflight: opts.InFlight}
}

// Workers returns the fleet size.
func (c *Client) Workers() int { return c.tr.Workers() }

// Transport exposes the underlying transport (tests and benchmarks).
func (c *Client) Transport() Transport { return c.tr }

// Close releases the transport.
func (c *Client) Close() error { return c.tr.Close() }

// Stats snapshots the cumulative counters.
func (c *Client) Stats() Stats {
	out, in := c.tr.Bytes()
	return Stats{
		Workers:           c.tr.Workers(),
		Solves:            c.solves.Load(),
		Frames:            c.frames.Load(),
		LoadShards:        c.loadShards.Load(),
		SolveMessages:     c.solveMessages.Load(),
		LoadPayloadBytes:  c.loadPayload.Load(),
		SolvePayloadBytes: c.solvePayload.Load(),
		Phases:            c.phases.Load(),
		WireOutBytes:      out,
		WireInBytes:       in,
	}
}

// Ping round-trips a liveness probe to every worker — the startup
// handshake daemons run before serving.
func (c *Client) Ping(ctx context.Context) error {
	reqs := make([]workerReq, c.tr.Workers())
	for w := range reqs {
		reqs[w] = workerReq{worker: w, frame: &rpc.Frame{Kind: kindPing}}
	}
	_, err := c.fanout(ctx, reqs)
	return err
}

// ErrUnavailable marks coordinator↔worker transport failures — dial,
// send, or receive errors, as opposed to worker-side typed replies —
// so serving layers can classify them as retryable: the fleet may be
// mid-restart, and the next solve redials.
var ErrUnavailable = errors.New("cluster: fleet unavailable")

// transportError tags a transport failure with ErrUnavailable while
// keeping the original chain matchable (injected faults must still
// satisfy errors.Is(err, fault.ErrInjected), cancellations their
// context errors).
type transportError struct{ err error }

func (e *transportError) Error() string   { return e.err.Error() }
func (e *transportError) Unwrap() []error { return []error{ErrUnavailable, e.err} }

// roundTrip is the single-exchange primitive: transport errors and
// worker-side kindErr replies both surface as coordinator errors naming
// the worker.
func (c *Client) roundTrip(ctx context.Context, worker int, req *rpc.Frame) (*rpc.Frame, error) {
	resp, err := c.tr.RoundTrip(ctx, worker, req)
	c.frames.Add(1)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %d: %w", worker, &transportError{err})
	}
	if resp.Kind == kindErr {
		return nil, fmt.Errorf("cluster: worker %d: %s", worker, resp.Body)
	}
	return resp, nil
}

type workerReq struct {
	worker int
	frame  *rpc.Frame
}

// fanout issues the requests concurrently with at most InFlight
// outstanding exchanges per worker, returning responses in request
// order. The first error cancels the remaining work and is returned.
func (c *Client) fanout(ctx context.Context, reqs []workerReq) ([]*rpc.Frame, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	c.phases.Add(1)
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sems := make([]chan struct{}, c.tr.Workers())
	for i := range sems {
		sems[i] = make(chan struct{}, c.inflight)
	}
	results := make([]*rpc.Frame, len(reqs))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r workerReq) {
			defer wg.Done()
			select {
			case sems[r.worker] <- struct{}{}:
			case <-fctx.Done():
				return
			}
			defer func() { <-sems[r.worker] }()
			resp, err := c.roundTrip(fctx, r.worker, r.frame)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				errMu.Unlock()
				return
			}
			results[i] = resp
		}(i, r)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Solver runs faq.SolveGHD passes on the cluster for one registry
// semiring; it implements faq.DistributedSolver[T] and plugs into
// faq.SolveOptions.Distributed.
type Solver[T any] struct {
	c    *Client
	name string
	cod  shard.Codec[T]
}

// NewSolver binds a coordinator to a registry semiring name.
func NewSolver[T any](c *Client, semiringName string) (*Solver[T], error) {
	_, cod, err := Profile[T](semiringName)
	if err != nil {
		return nil, err
	}
	return &Solver[T]{c: c, name: semiringName, cod: cod}, nil
}

// starPlan is the static distribution plan for one GHD: which edge (if
// any) each node carries, the partition key each distributed node
// shards on, and the columns each node's message keeps.
type starPlan struct {
	factorEdge []int   // node → hyperedge id, -1 for factorless nodes
	key        [][]int // node → partition key (nil only semantically for factorless)
	keep       [][]int // node → sorted columns the node's message keeps
	children   [][]int
	order      []int // postorder
}

// planStars validates distributability and derives the per-node keys.
// Shapes it cannot run return faq.ErrNotDistributable (wrapped), which
// faq.SolveGHD converts into a local solve.
func planStars[T any](q *faq.Query[T], g *ghd.GHD) (*starPlan, error) {
	if len(q.VarOps) != 0 {
		return nil, fmt.Errorf("%w: per-variable aggregate operators", faq.ErrNotDistributable)
	}
	n := g.NumNodes()
	p := &starPlan{
		factorEdge: make([]int, n),
		key:        make([][]int, n),
		keep:       make([][]int, n),
		children:   g.Children(),
		order:      g.PostOrder(),
	}
	for v := range p.factorEdge {
		p.factorEdge[v] = -1
	}
	for e, v := range g.NodeOf {
		if p.factorEdge[v] != -1 {
			return nil, fmt.Errorf("%w: GHD node %d carries multiple factors", faq.ErrNotDistributable, v)
		}
		p.factorEdge[v] = e
	}
	free := append([]int(nil), q.Free...)
	sort.Ints(free)
	// keep[v]: the variables of χ(v) surviving v's aggregation — free
	// variables and (below the root) those shared with the parent bag.
	// This is exactly the keep predicate of faq.SolveGHD's node task
	// restricted to the bag, which covers every schema the node can see.
	for v := 0; v < n; v++ {
		var keep []int
		parentBag := []int(nil)
		if v != g.Root {
			parentBag = g.Bags[g.Parent[v]]
		}
		for _, x := range g.Bags[v] {
			if hypergraph.ContainsSorted(free, x) || (v != g.Root && hypergraph.ContainsSorted(parentBag, x)) {
				keep = append(keep, x)
			}
		}
		p.keep[v] = keep
	}
	// key[v] for a factor node: a column set contained in the node's own
	// schema and in every child message's schema, so hash-routing rows
	// and message slices by it co-locates all joining pairs. A factor
	// child c's message schema is statically keep[c] (its bag is its
	// factor's schema); a factorless child's is data-dependent, so any
	// such child forces the empty key — the worker-0 serialization.
	for v := 0; v < n; v++ {
		if p.factorEdge[v] == -1 {
			continue // computed at the coordinator
		}
		if len(p.children[v]) == 0 {
			p.key[v] = append([]int(nil), p.keep[v]...)
			continue
		}
		key := []int(nil)
		first := true
		for _, ch := range p.children[v] {
			if p.factorEdge[ch] == -1 {
				key = nil
				break
			}
			if first {
				key = append([]int(nil), p.keep[ch]...)
				first = false
			} else {
				key = hypergraph.IntersectSorted(key, p.keep[ch])
			}
		}
		p.key[v] = key
	}
	return p, nil
}

// SolveGHD runs the validated bottom-up pass on the cluster. The
// answer is bit-identical to the local faq.SolveGHD for exact
// semirings (and semiring-Equal for floating-point ones, whose ⊕ may
// re-associate across workers).
func (s *Solver[T]) SolveGHD(ctx context.Context, q *faq.Query[T], g *ghd.GHD) (*relation.Relation[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan, err := planStars(q, g)
	if err != nil {
		return nil, err
	}
	c := s.c
	c.solveMu.Lock()
	defer c.solveMu.Unlock()
	W := c.tr.Workers()
	phasesBefore, payloadBefore := c.phases.Load(), c.solvePayload.Load()

	// Session setup: clear worker state, then bind the semiring profile.
	if err := c.broadcast(ctx, &rpc.Frame{Kind: kindReset}); err != nil {
		return nil, err
	}
	qbody := encodeQuery(s.name, q.DomSize)
	if err := c.broadcast(ctx, &rpc.Frame{Kind: kindQuery, Body: qbody}); err != nil {
		return nil, err
	}

	// Load phase: hash-partition every factor on its node's key and
	// scatter the shards. Every worker gets a (possibly empty) shard so
	// it knows each relation's schema.
	var loads []workerReq
	for _, v := range plan.order {
		e := plan.factorEdge[v]
		if e == -1 {
			continue
		}
		shards, err := shard.Split(q.S, q.Factors[e], plan.key[v], W)
		if err != nil {
			return nil, fmt.Errorf("cluster: sharding factor of node %d: %w", v, err)
		}
		for w, sh := range shards {
			body := shard.Encode(sh, s.cod)
			c.loadShards.Add(1)
			c.loadPayload.Add(int64(len(body)))
			loads = append(loads, workerReq{worker: w, frame: &rpc.Frame{Kind: kindLoad, A: int32(v), Body: body}})
		}
	}
	if _, err := c.fanout(ctx, loads); err != nil {
		return nil, err
	}

	// Bottom-up pass: one scatter/gather per star, in postorder.
	msgs := make([]*relation.Relation[T], g.NumNodes())
	for _, v := range plan.order {
		if plan.factorEdge[v] == -1 {
			// Factorless node (the fat core root of Construction 2.8):
			// its children's merged messages are already here — join and
			// aggregate at the coordinator, exactly as the netsim
			// protocols run their core phase at one player.
			cur := relation.Unit(q.S, q.S.One())
			for _, ch := range plan.children[v] {
				cur = relation.Join(q.S, cur, msgs[ch])
				msgs[ch] = nil
			}
			keep := plan.keep[v]
			cur, err := faq.AggregateOut(q, cur, func(x int) bool {
				return hypergraph.ContainsSorted(keep, x)
			})
			if err != nil {
				return nil, err
			}
			msgs[v] = cur
			continue
		}
		// Scatter: route each child's merged message to the workers
		// holding the matching shard rows.
		var stores []workerReq
		for i, ch := range plan.children[v] {
			slices, err := shard.Split(q.S, msgs[ch], plan.key[v], W)
			if err != nil {
				return nil, fmt.Errorf("cluster: routing message %d→%d: %w", ch, v, err)
			}
			msgs[ch] = nil
			for w, sl := range slices {
				body := shard.Encode(sl, s.cod)
				c.solveMessages.Add(1)
				c.solvePayload.Add(int64(len(body)))
				stores = append(stores, workerReq{worker: w, frame: &rpc.Frame{
					Kind: kindStore, A: int32(v), B: int32(i), Body: body,
				}})
			}
		}
		if len(stores) > 0 {
			if _, err := c.fanout(ctx, stores); err != nil {
				return nil, err
			}
		}
		// Gather: every worker runs its local star and returns the
		// partial message; merge in worker order.
		keepBody := encodeVars(plan.keep[v])
		computes := make([]workerReq, W)
		for w := 0; w < W; w++ {
			computes[w] = workerReq{worker: w, frame: &rpc.Frame{
				Kind: kindCompute, A: int32(v), B: int32(len(plan.children[v])), Body: keepBody,
			}}
		}
		resps, err := c.fanout(ctx, computes)
		if err != nil {
			return nil, err
		}
		parts := make([]*relation.Relation[T], W)
		for w, resp := range resps {
			part, err := shard.Decode(q.S, s.cod, resp.Body)
			if err != nil {
				return nil, fmt.Errorf("cluster: worker %d partial for node %d: %w", w, v, err)
			}
			c.solveMessages.Add(1)
			c.solvePayload.Add(int64(len(resp.Body)))
			parts[w] = part
		}
		msgs[v] = mergeParts(q.S, parts)
	}
	c.solves.Add(1)
	protocol.RecordComms("cluster",
		int(c.phases.Load()-phasesBefore), c.solvePayload.Load()-payloadBefore)
	return msgs[g.Root], nil
}

// broadcast sends the same frame to every worker.
func (c *Client) broadcast(ctx context.Context, f *rpc.Frame) error {
	reqs := make([]workerReq, c.tr.Workers())
	for w := range reqs {
		reqs[w] = workerReq{worker: w, frame: f}
	}
	_, err := c.fanout(ctx, reqs)
	return err
}

// mergeParts concatenates per-worker partials in worker order; the
// Builder re-sorts and ⊕-merges groups split across workers, yielding
// the same sorted layout the central pass produces.
func mergeParts[T any](s semiring.Semiring[T], parts []*relation.Relation[T]) *relation.Relation[T] {
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	b := relation.NewBuilderHint(s, parts[0].Schema(), total)
	for _, p := range parts {
		n := p.Len()
		for i := 0; i < n; i++ {
			b.AddRow(p.Tuple(i), p.Value(i))
		}
	}
	return b.Build()
}
