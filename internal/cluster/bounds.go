package cluster

import (
	"repro/internal/faq"
	"repro/internal/ghd"
	"repro/internal/shard"
)

// PayloadBound returns the closed-form upper bound on the encoded
// relation bytes one SolveGHD of q over g moves through a fleet of the
// given size — the quantity Stats.SolvePayloadBytes measures. It is
// derived statically from the distribution plan:
//
// Every factor node v exchanges its message with schema keep[v] (the
// bag variables surviving v's aggregation) in one gather — W partial
// messages, worker w's rows being the distinct keep[v]-projections of
// its factor shard, so at most min(|R_v|, W·|D|^|keep[v]|) rows in
// total (a projection deduplicates per worker, not globally) — and,
// when its parent is also a factor node, one scatter re-slicing the
// merged (globally deduplicated) message across the parent's workers,
// at most min(|R_v|, |D|^|keep[v]|) rows. Each row costs
// shard.RowWireBytes(|keep[v]|) bytes, plus W per-slice schema headers
// per hop. Factorless nodes (the fat core root of Construction 2.8)
// join at the coordinator and move no frames of their own; their
// children pay the gather hop only.
//
// Shapes the coordinator cannot distribute return the same wrapped
// faq.ErrNotDistributable that SolveGHD would.
func PayloadBound[T any](q *faq.Query[T], g *ghd.GHD, workers int) (int64, error) {
	p, err := planStars(q, g)
	if err != nil {
		return 0, err
	}
	W := int64(workers)
	var bound int64
	for v := 0; v < g.NumNodes(); v++ {
		e := p.factorEdge[v]
		if e == -1 {
			continue // computed at the coordinator: no frames
		}
		k := len(p.keep[v])
		rwb, hdr := int64(shard.RowWireBytes(k)), int64(shard.EncodedBytes(k, 0))
		gatherRows := int64(q.Factors[e].Len())
		scatterRows := gatherRows
		if cap, ok := domPow(q.DomSize, k); ok {
			if W*cap < gatherRows {
				gatherRows = W * cap
			}
			if cap < scatterRows {
				scatterRows = cap
			}
		}
		// The gather producing msgs[v].
		bound += W*hdr + gatherRows*rwb
		if v != g.Root && p.factorEdge[g.Parent[v]] != -1 {
			// The scatter routing msgs[v] to the parent's workers.
			bound += W*hdr + scatterRows*rwb
		}
	}
	return bound, nil
}

// domPow returns dom^k, reporting false once the product can no longer
// tighten any realistic row count (guarding overflow).
func domPow(dom, k int) (int64, bool) {
	if dom <= 0 {
		return 0, false
	}
	p := int64(1)
	for i := 0; i < k; i++ {
		if p > 1<<40 {
			return 0, false
		}
		p *= int64(dom)
	}
	return p, true
}
