// Package cluster implements real distributed execution of the GHD
// bottom-up pass: a coordinator that hash-partitions each factor across
// shard workers, drives every star reduction as a scatter/gather of
// routed message slices, and merges the root answer.
//
// # Execution scheme
//
// Planning mirrors faq.SolveGHD exactly. Each GHD node v carrying a
// factor gets a static partition key K_v:
//
//   - a leaf partitions its factor on the columns its message keeps
//     (χ(v) ∩ (free ∪ χ(parent)));
//   - an internal node partitions on the intersection of its children's
//     message schemas — a subset of every child message's columns, so
//     routing child messages by the same key co-locates every joining
//     pair of rows;
//   - an empty key (including any node with a factorless child) sends
//     all rows to worker 0, the correct serialized fallback.
//
// Factorless nodes (the fat core root of Construction 2.8) are computed
// at the coordinator from the already-gathered child messages, exactly
// as the netsim protocols run their core phase at one player.
//
// Per star, the coordinator scatters each merged child message as
// routed slices (StoreMsg), asks every worker to join its shard with
// its slices in child order and aggregate (ComputeStar), then gathers
// and merges the partials in worker order. Partitioning preserves the
// relations' sorted order and duplicate groups merge through the same
// ⊕ as the local pass, so answers are bit-identical to faq.SolveGHD
// for exact semirings at any worker count — the same contract the exec
// layer holds for threads, extended to processes.
//
// The Transport seam carries the protocol either over real TCP
// (internal/rpc) or over the netsim ledger in-process (SimTransport),
// so the differential harness runs identical frames both ways.
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/semiring"
	"repro/internal/shard"
)

// Frame kinds of the cluster protocol (rpc.Frame.Kind).
const (
	kindPing    uint8 = iota + 1 // liveness probe → kindOK
	kindReset                    // drop all session state → kindOK
	kindQuery                    // begin a session: semiring name + domain → kindOK
	kindLoad                     // A = GHD node; body = factor shard → kindOK
	kindStore                    // A = node, B = child index; body = routed message slice → kindOK
	kindCompute                  // A = node, B = child count; body = keep vars → kindRel
	kindOK                       // success, empty reply
	kindRel                      // success, body = encoded relation
	kindErr     uint8 = 0x7f     // failure, body = error text
)

// Profile resolves a registry semiring name to the typed semiring and
// wire codec both transport ends use. The instantiated type parameter
// must match the semiring's value type.
func Profile[T any](name string) (semiring.Semiring[T], shard.Codec[T], error) {
	var s, c any
	switch name {
	case "bool":
		s, c = semiring.Bool{}, shard.Codec[bool]{
			Enc: func(v bool) uint64 {
				if v {
					return 1
				}
				return 0
			},
			Dec: func(k uint64) bool { return k != 0 },
		}
	case "count":
		s, c = semiring.Count{}, shard.Codec[int64]{
			Enc: func(v int64) uint64 { return uint64(v) },
			Dec: func(k uint64) int64 { return int64(k) },
		}
	case "sumproduct":
		s, c = semiring.SumProduct{}, floatCodec()
	case "minplus":
		s, c = semiring.MinPlus{}, floatCodec()
	case "maxtimes":
		s, c = semiring.MaxTimes{}, floatCodec()
	case "f2":
		s, c = semiring.F2{}, shard.Codec[byte]{
			Enc: func(v byte) uint64 { return uint64(v & 1) },
			Dec: func(k uint64) byte { return byte(k & 1) },
		}
	default:
		return nil, shard.Codec[T]{}, fmt.Errorf("cluster: unknown semiring %q", name)
	}
	sr, ok := s.(semiring.Semiring[T])
	cod, ok2 := c.(shard.Codec[T])
	if !ok || !ok2 {
		var zero T
		return nil, shard.Codec[T]{}, fmt.Errorf("cluster: semiring %q does not carry values of type %T", name, zero)
	}
	return sr, cod, nil
}

func floatCodec() shard.Codec[float64] {
	return shard.Codec[float64]{Enc: math.Float64bits, Dec: math.Float64frombits}
}

// encodeQuery serializes a session header: [u32 domSize][name bytes].
func encodeQuery(name string, domSize int) []byte {
	buf := make([]byte, 0, 4+len(name))
	buf = binary.BigEndian.AppendUint32(buf, uint32(domSize))
	return append(buf, name...)
}

func decodeQuery(body []byte) (name string, domSize int, err error) {
	if len(body) < 4 {
		return "", 0, fmt.Errorf("cluster: truncated query header (%d bytes)", len(body))
	}
	return string(body[4:]), int(binary.BigEndian.Uint32(body)), nil
}

// encodeVars serializes a sorted variable list: [u32 k][k × u32 ids].
func encodeVars(vs []int) []byte {
	buf := make([]byte, 0, 4+4*len(vs))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(vs)))
	for _, v := range vs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(v)))
	}
	return buf
}

func decodeVars(body []byte) ([]int, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("cluster: truncated variable list (%d bytes)", len(body))
	}
	k := int(binary.BigEndian.Uint32(body))
	body = body[4:]
	if k < 0 || len(body) != 4*k {
		return nil, fmt.Errorf("cluster: variable list is %d bytes, want %d ids", len(body), k)
	}
	vs := make([]int, k)
	for i := range vs {
		vs[i] = int(int32(binary.BigEndian.Uint32(body[4*i:])))
	}
	return vs, nil
}
