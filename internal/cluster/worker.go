package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/rpc"
	"repro/internal/semiring"
	"repro/internal/shard"
)

// Worker holds one shard-worker's session state: the factor shards it
// was scattered and the routed message slices stored for each star. It
// serves the cluster frame protocol via Handle — plug it into
// rpc.Serve for a real worker or into SimTransport for the in-process
// double. A Worker serves one coordinator session at a time (the
// coordinator serializes solves); Handle is safe for concurrent calls.
type Worker struct {
	mu   sync.Mutex
	sess session
}

// NewWorker returns an idle worker with no session.
func NewWorker() *Worker { return &Worker{} }

// Handle serves one protocol frame, returning the reply frame.
// Application errors come back as kindErr frames with a text body; the
// coordinator rethrows them as typed errors.
func (w *Worker) Handle(ctx context.Context, req *rpc.Frame) *rpc.Frame {
	w.mu.Lock()
	defer w.mu.Unlock()
	resp, err := w.handle(req)
	if err != nil {
		return &rpc.Frame{Kind: kindErr, Body: []byte(err.Error())}
	}
	return resp
}

func (w *Worker) handle(req *rpc.Frame) (*rpc.Frame, error) {
	switch req.Kind {
	case kindPing:
		return &rpc.Frame{Kind: kindOK}, nil
	case kindReset:
		w.sess = nil
		return &rpc.Frame{Kind: kindOK}, nil
	case kindQuery:
		name, dom, err := decodeQuery(req.Body)
		if err != nil {
			return nil, err
		}
		sess, err := newSession(name, dom)
		if err != nil {
			return nil, err
		}
		w.sess = sess
		return &rpc.Frame{Kind: kindOK}, nil
	case kindLoad, kindStore, kindCompute:
		if w.sess == nil {
			return nil, fmt.Errorf("cluster: frame kind %d before session setup", req.Kind)
		}
		switch req.Kind {
		case kindLoad:
			if err := w.sess.load(req.A, req.Body); err != nil {
				return nil, err
			}
			return &rpc.Frame{Kind: kindOK}, nil
		case kindStore:
			if err := w.sess.store(req.A, req.B, req.Body); err != nil {
				return nil, err
			}
			return &rpc.Frame{Kind: kindOK}, nil
		default:
			body, err := w.sess.compute(req.A, int(req.B), req.Body)
			if err != nil {
				return nil, err
			}
			return &rpc.Frame{Kind: kindRel, Body: body}, nil
		}
	default:
		return nil, fmt.Errorf("cluster: unknown frame kind %d", req.Kind)
	}
}

// session is the type-erased per-semiring worker state; one is built
// per kindQuery from the wire-carried semiring name.
type session interface {
	load(node int32, body []byte) error
	store(node, idx int32, body []byte) error
	compute(node int32, children int, keepBody []byte) ([]byte, error)
}

// newSession dispatches the registry semiring name to its typed state.
func newSession(name string, domSize int) (session, error) {
	switch name {
	case "bool":
		return newTypedSession[bool](name, domSize)
	case "count":
		return newTypedSession[int64](name, domSize)
	case "sumproduct", "minplus", "maxtimes":
		return newTypedSession[float64](name, domSize)
	case "f2":
		return newTypedSession[byte](name, domSize)
	default:
		return nil, fmt.Errorf("cluster: unknown semiring %q", name)
	}
}

func newTypedSession[T any](name string, domSize int) (session, error) {
	s, cod, err := Profile[T](name)
	if err != nil {
		return nil, err
	}
	return &typedSession[T]{
		s:      s,
		cod:    cod,
		dom:    domSize,
		shards: make(map[int32]*relation.Relation[T]),
		msgs:   make(map[int32][]*relation.Relation[T]),
	}, nil
}

type typedSession[T any] struct {
	s      semiring.Semiring[T]
	cod    shard.Codec[T]
	dom    int
	shards map[int32]*relation.Relation[T]   // GHD node → local factor shard
	msgs   map[int32][]*relation.Relation[T] // GHD node → routed child slices by index
}

func (t *typedSession[T]) load(node int32, body []byte) error {
	r, err := shard.Decode(t.s, t.cod, body)
	if err != nil {
		return err
	}
	t.shards[node] = r
	return nil
}

func (t *typedSession[T]) store(node, idx int32, body []byte) error {
	r, err := shard.Decode(t.s, t.cod, body)
	if err != nil {
		return err
	}
	slots := t.msgs[node]
	for int(idx) >= len(slots) {
		slots = append(slots, nil)
	}
	slots[idx] = r
	t.msgs[node] = slots
	return nil
}

// compute runs the local half of one star reduction: join the node's
// shard with its stored message slices in child order, then aggregate
// out every variable not in the keep list, innermost first — exactly
// the per-node task of faq.SolveGHD restricted to this worker's rows.
func (t *typedSession[T]) compute(node int32, children int, keepBody []byte) ([]byte, error) {
	keep, err := decodeVars(keepBody)
	if err != nil {
		return nil, err
	}
	cur, ok := t.shards[node]
	if !ok {
		return nil, fmt.Errorf("cluster: compute on node %d with no loaded shard", node)
	}
	slots := t.msgs[node]
	for i := 0; i < children; i++ {
		if i >= len(slots) || slots[i] == nil {
			return nil, fmt.Errorf("cluster: compute on node %d missing message slice %d/%d", node, i, children)
		}
		cur = relation.Join(t.s, cur, slots[i])
	}
	// A minimal query context: AggregateOut only consults S, Op (always
	// ⊕ — the coordinator rejects VarOps queries), and DomSize.
	q := &faq.Query[T]{S: t.s, DomSize: t.dom}
	out, err := faq.AggregateOut(q, cur, func(x int) bool {
		return hypergraph.ContainsSorted(keep, x)
	})
	if err != nil {
		return nil, err
	}
	// The star is done: the shard and slices are dead state.
	delete(t.shards, node)
	delete(t.msgs, node)
	return shard.Encode(out, t.cod), nil
}
