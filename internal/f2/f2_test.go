package f2

import (
	"math/rand"
	"testing"
)

func TestVectorBits(t *testing.T) {
	v := NewVector(130)
	v.Set(0, 1)
	v.Set(64, 1)
	v.Set(129, 1)
	if v.Get(0) != 1 || v.Get(64) != 1 || v.Get(129) != 1 {
		t.Error("set bits not readable")
	}
	if v.Get(1) != 0 || v.Get(128) != 0 {
		t.Error("unset bits read as 1")
	}
	v.Set(64, 0)
	if v.Get(64) != 0 {
		t.Error("clear failed")
	}
}

func TestXorDot(t *testing.T) {
	a := NewVector(8)
	b := NewVector(8)
	a.Set(1, 1)
	a.Set(3, 1)
	b.Set(3, 1)
	b.Set(5, 1)
	x := a.Xor(b)
	if x.Get(1) != 1 || x.Get(3) != 0 || x.Get(5) != 1 {
		t.Error("xor wrong")
	}
	if a.Dot(b) != 1 { // overlap at bit 3 only
		t.Error("dot = 0, want 1")
	}
	if a.Dot(a) != 0 { // two set bits: parity 0
		t.Error("self dot = 1, want 0")
	}
}

func TestMulVecAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(70)
		m := RandomMatrix(n, n, r)
		x := RandomVector(n, r)
		y := m.MulVec(x)
		for i := 0; i < n; i++ {
			var want byte
			for j := 0; j < n; j++ {
				want ^= m.Get(i, j) & x.Get(j)
			}
			if y.Get(i) != want {
				t.Fatalf("MulVec row %d = %d, want %d", i, y.Get(i), want)
			}
		}
	}
}

func TestMulAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(20)
		a := RandomMatrix(n, n, r)
		b := RandomMatrix(n, n, r)
		x := RandomVector(n, r)
		// (a·b)·x == a·(b·x)
		if !a.Mul(b).MulVec(x).Equal(a.MulVec(b.MulVec(x))) {
			t.Fatal("matrix product not associative with MulVec")
		}
	}
}

func TestIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 17
	id := Identity(n)
	x := RandomVector(n, r)
	if !id.MulVec(x).Equal(x) {
		t.Error("I·x != x")
	}
	m := RandomMatrix(n, n, r)
	if !id.Mul(m).Equal(m) || !m.Mul(id).Equal(m) {
		t.Error("I·M != M")
	}
	if id.Rank() != n {
		t.Errorf("rank(I) = %d, want %d", id.Rank(), n)
	}
}

func TestRank(t *testing.T) {
	// Rank-1 matrix: outer product of two nonzero vectors.
	n := 8
	m := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		m.Set(0, j, byte(j%2))
		m.Set(3, j, byte(j%2)) // duplicate row
	}
	if got := m.Rank(); got != 1 {
		t.Errorf("rank = %d, want 1", got)
	}
	if got := NewMatrix(4, 4).Rank(); got != 0 {
		t.Errorf("rank(0) = %d, want 0", got)
	}
}

func TestUintRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(64)
		v := RandomVector(n, r)
		u := VectorFromUint(n, v.Uint())
		if !u.Equal(v) {
			t.Fatalf("round trip failed for n=%d", n)
		}
	}
}

func TestRandomVectorMasksTail(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		v := RandomVector(13, r)
		if v.Uint()>>13 != 0 {
			t.Fatal("tail bits beyond n are set")
		}
	}
}
