// Package f2 implements bit-packed linear algebra over the two-element
// field F₂, the algebra of the paper's Matrix Chain Multiplication
// problem (Problem 1.1): vectors in F₂^n, matrices in F₂^{m×n},
// matrix-vector and matrix-matrix products, rank, and uniform sampling.
package f2

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Vector is a bit vector in F₂^n.
type Vector struct {
	n int
	w []uint64
}

// NewVector returns the zero vector of length n.
func NewVector(n int) *Vector {
	if n < 0 {
		//faqlint:allow nopanic(programmer-error precondition: vector lengths are statically shaped by callers)
		panic(fmt.Sprintf("f2: negative vector length %d", n))
	}
	return &Vector{n: n, w: make([]uint64, (n+63)/64)}
}

// Len returns n.
func (v *Vector) Len() int { return v.n }

// Get returns bit i.
func (v *Vector) Get(i int) byte {
	return byte((v.w[i/64] >> (uint(i) % 64)) & 1)
}

// Set assigns bit i.
func (v *Vector) Set(i int, b byte) {
	if b&1 == 1 {
		v.w[i/64] |= 1 << (uint(i) % 64)
	} else {
		v.w[i/64] &^= 1 << (uint(i) % 64)
	}
}

// Xor returns v ⊕ u (vector addition over F₂).
func (v *Vector) Xor(u *Vector) *Vector {
	if v.n != u.n {
		//faqlint:allow nopanic(invariant check: operand lengths match by construction)
		panic("f2: length mismatch")
	}
	out := NewVector(v.n)
	for i := range v.w {
		out.w[i] = v.w[i] ^ u.w[i]
	}
	return out
}

// Dot returns the inner product ⟨v, u⟩ over F₂.
func (v *Vector) Dot(u *Vector) byte {
	if v.n != u.n {
		//faqlint:allow nopanic(invariant check: operand lengths match by construction)
		panic("f2: length mismatch")
	}
	var acc uint64
	for i := range v.w {
		acc ^= v.w[i] & u.w[i]
	}
	return byte(bits.OnesCount64(acc) & 1)
}

// Equal reports bitwise equality.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != u.w[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (v *Vector) Clone() *Vector {
	out := NewVector(v.n)
	copy(out.w, v.w)
	return out
}

// IsZero reports whether v is the zero vector.
func (v *Vector) IsZero() bool {
	for _, x := range v.w {
		if x != 0 {
			return false
		}
	}
	return true
}

// Uint returns the vector packed into a uint64 (n ≤ 64), used as a map
// key by the entropy experiments.
func (v *Vector) Uint() uint64 {
	if v.n > 64 {
		//faqlint:allow nopanic(programmer-error precondition: Uint is documented for n <= 64 only)
		panic("f2: Uint requires n ≤ 64")
	}
	if len(v.w) == 0 {
		return 0
	}
	return v.w[0]
}

// VectorFromUint unpacks a uint64 into a length-n vector (n ≤ 64).
func VectorFromUint(n int, x uint64) *Vector {
	v := NewVector(n)
	if len(v.w) > 0 {
		if n < 64 {
			x &= (1 << uint(n)) - 1
		}
		v.w[0] = x
	}
	return v
}

// RandomVector samples a uniform vector.
func RandomVector(n int, r *rand.Rand) *Vector {
	v := NewVector(n)
	for i := range v.w {
		v.w[i] = r.Uint64()
	}
	if rem := n % 64; rem != 0 && len(v.w) > 0 {
		v.w[len(v.w)-1] &= (1 << uint(rem)) - 1
	}
	return v
}

// Matrix is a row-major bit matrix in F₂^{rows×cols}.
type Matrix struct {
	rows, cols int
	r          []*Vector
}

// NewMatrix returns the zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		//faqlint:allow nopanic(programmer-error precondition: dimensions are statically shaped by callers)
		panic("f2: negative dimension")
	}
	m := &Matrix{rows: rows, cols: cols, r: make([]*Vector, rows)}
	for i := range m.r {
		m.r[i] = NewVector(cols)
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Get returns entry (i, j).
func (m *Matrix) Get(i, j int) byte { return m.r[i].Get(j) }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, b byte) { m.r[i].Set(j, b) }

// Row returns row i as a vector view; callers must not modify it.
func (m *Matrix) Row(i int) *Vector { return m.r[i] }

// MulVec returns m·x over F₂.
func (m *Matrix) MulVec(x *Vector) *Vector {
	if x.Len() != m.cols {
		//faqlint:allow nopanic(invariant check: matrix dimensions match by construction)
		panic("f2: dimension mismatch")
	}
	out := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		out.Set(i, m.r[i].Dot(x))
	}
	return out
}

// Mul returns m·b over F₂.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		//faqlint:allow nopanic(invariant check: matrix dimensions match by construction)
		panic("f2: dimension mismatch")
	}
	out := NewMatrix(m.rows, b.cols)
	// Accumulate rows of b for set bits of each row of m.
	for i := 0; i < m.rows; i++ {
		acc := NewVector(b.cols)
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) == 1 {
				acc = acc.Xor(b.r[j])
			}
		}
		out.r[i] = acc
	}
	return out
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// RandomMatrix samples a uniform rows×cols matrix.
func RandomMatrix(rows, cols int, r *rand.Rand) *Matrix {
	m := &Matrix{rows: rows, cols: cols, r: make([]*Vector, rows)}
	for i := range m.r {
		m.r[i] = RandomVector(cols, r)
	}
	return m
}

// Equal reports entrywise equality.
func (m *Matrix) Equal(b *Matrix) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.r {
		if !m.r[i].Equal(b.r[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols, r: make([]*Vector, m.rows)}
	for i := range m.r {
		out.r[i] = m.r[i].Clone()
	}
	return out
}

// Rank returns the rank over F₂ (Gaussian elimination on a copy).
func (m *Matrix) Rank() int {
	work := m.Clone()
	rank := 0
	for col := 0; col < work.cols && rank < work.rows; col++ {
		pivot := -1
		for i := rank; i < work.rows; i++ {
			if work.Get(i, col) == 1 {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			continue
		}
		work.r[rank], work.r[pivot] = work.r[pivot], work.r[rank]
		for i := 0; i < work.rows; i++ {
			if i != rank && work.Get(i, col) == 1 {
				work.r[i] = work.r[i].Xor(work.r[rank])
			}
		}
		rank++
	}
	return rank
}
