// Package topology models the communication networks G = (V, E) of
// Model 2.1: synchronous point-to-point topologies over which FAQ
// protocols are scheduled. It provides the topology families used in the
// paper's examples (lines, cliques, stars, trees, grids, the MPC
// topologies of Appendix A) and the graph primitives (BFS, diameter,
// connectivity) the protocols and bounds need.
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N()-1. Edges are
// indexed densely in insertion order; protocols address channel capacity
// per edge index.
type Graph struct {
	n     int
	adj   [][]int
	edges [][2]int
	index map[[2]int]int
}

// NewGraph returns an edgeless graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		//faqlint:allow nopanic(programmer-error precondition: topologies are constructed from static shapes)
		panic(fmt.Sprintf("topology: negative vertex count %d", n))
	}
	return &Graph{n: n, adj: make([][]int, n), index: make(map[[2]int]int)}
}

// AddEdge inserts the undirected edge {u, v} and returns its index.
// Self-loops and duplicate edges are programmer errors and panic (the
// paper's topologies are simple graphs; private channels are unique).
func (g *Graph) AddEdge(u, v int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		//faqlint:allow nopanic(programmer-error precondition: edge endpoints are validated at construction)
		panic(fmt.Sprintf("topology: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if u == v {
		//faqlint:allow nopanic(programmer-error precondition: self-loops are a construction bug)
		panic(fmt.Sprintf("topology: self-loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	k := [2]int{u, v}
	if _, dup := g.index[k]; dup {
		//faqlint:allow nopanic(programmer-error precondition: duplicate edges are a construction bug)
		panic(fmt.Sprintf("topology: duplicate edge (%d,%d)", u, v))
	}
	id := len(g.edges)
	g.edges = append(g.edges, k)
	g.index[k] = id
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return id
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Adj returns the neighbors of v; callers must not modify it.
func (g *Graph) Adj(v int) []int { return g.adj[v] }

// Edge returns the endpoints (u < v) of edge id.
func (g *Graph) Edge(id int) (int, int) { return g.edges[id][0], g.edges[id][1] }

// EdgeID returns the index of edge {u, v} and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	if u > v {
		u, v = v, u
	}
	id, ok := g.index[[2]int{u, v}]
	return id, ok
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// BFS returns hop distances from src (-1 for unreachable), optionally
// restricted to edges for which allowed returns true.
func (g *Graph) BFS(src int, allowed func(edgeID int) bool) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] != -1 {
				continue
			}
			if allowed != nil {
				id, _ := g.EdgeID(u, v)
				if !allowed(id) {
					continue
				}
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	return dist
}

// ShortestPath returns a shortest u-v path as a vertex sequence, or nil
// if disconnected.
func (g *Graph) ShortestPath(u, v int, allowed func(edgeID int) bool) []int {
	if u == v {
		return []int{u}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.adj[x] {
			if prev[y] != -1 {
				continue
			}
			if allowed != nil {
				id, _ := g.EdgeID(x, y)
				if !allowed(id) {
					continue
				}
			}
			prev[y] = x
			if y == v {
				var path []int
				for c := v; c != u; c = prev[c] {
					path = append(path, c)
				}
				path = append(path, u)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, y)
		}
	}
	return nil
}

// Connected reports whether g is connected (vacuously true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	d := g.BFS(0, nil)
	for _, x := range d {
		if x == -1 {
			return false
		}
	}
	return true
}

// ConnectsAll reports whether every vertex of K is reachable from the
// first one.
func (g *Graph) ConnectsAll(K []int) bool {
	if len(K) <= 1 {
		return true
	}
	d := g.BFS(K[0], nil)
	for _, v := range K[1:] {
		if d[v] == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the largest finite pairwise distance (0 for n ≤ 1);
// it errors on disconnected graphs.
func (g *Graph) Diameter() (int, error) {
	if !g.Connected() {
		return 0, fmt.Errorf("topology: diameter of disconnected graph")
	}
	max := 0
	for v := 0; v < g.n; v++ {
		for _, d := range g.BFS(v, nil) {
			if d > max {
				max = d
			}
		}
	}
	return max, nil
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for _, e := range g.edges {
		c.AddEdge(e[0], e[1])
	}
	return c
}

// String renders the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("G{n=%d, m=%d}", g.n, g.M())
}

// Line returns the path topology P₀—P₁—...—P_{n-1} (G₁ of Figure 1).
func Line(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Clique returns the complete topology Kₙ (G₂ of Figure 1).
func Clique(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Ring returns the cycle topology Cₙ (n ≥ 3).
func Ring(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Grid returns the rows×cols grid topology, a sensor-network-like fabric.
func Grid(rows, cols int) *Graph {
	g := NewGraph(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return g
}

// RandomTree returns a uniformly-attached random tree on n vertices.
func RandomTree(n int, r *rand.Rand) *Graph {
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		g.AddEdge(r.Intn(v), v)
	}
	return g
}

// RandomConnected returns a random tree plus extra random edges (deduped).
func RandomConnected(n, extra int, r *rand.Rand) *Graph {
	g := RandomTree(n, r)
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if _, ok := g.EdgeID(u, v); ok {
			continue
		}
		g.AddEdge(u, v)
	}
	return g
}

// MPC0 returns the MPC(0) topology G′ of Model A.1: k player nodes
// (0..k-1), each connected to every node of a p-clique (k..k+p-1), with
// no edges among players. Players returns the player set K.
func MPC0(k, p int) (g *Graph, players []int) {
	g = NewGraph(k + p)
	for i := 0; i < k; i++ {
		players = append(players, i)
		for j := 0; j < p; j++ {
			g.AddEdge(i, k+j)
		}
	}
	for a := 0; a < p; a++ {
		for b := a + 1; b < p; b++ {
			g.AddEdge(k+a, k+b)
		}
	}
	return g, players
}

// SortedUnique sorts and deduplicates a vertex set in place, returning it.
func SortedUnique(vs []int) []int {
	sort.Ints(vs)
	out := vs[:0]
	prev := -1
	for _, v := range vs {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}
