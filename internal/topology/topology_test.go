package topology

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestLine(t *testing.T) {
	g := Line(4)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("Line(4): n=%d m=%d", g.N(), g.M())
	}
	d, err := g.Diameter()
	if err != nil || d != 3 {
		t.Errorf("diameter = %d (%v), want 3", d, err)
	}
	if deg := g.Degree(0); deg != 1 {
		t.Errorf("deg(0) = %d, want 1", deg)
	}
	if deg := g.Degree(1); deg != 2 {
		t.Errorf("deg(1) = %d, want 2", deg)
	}
}

func TestClique(t *testing.T) {
	g := Clique(5)
	if g.M() != 10 {
		t.Fatalf("K5 has %d edges, want 10", g.M())
	}
	d, _ := g.Diameter()
	if d != 1 {
		t.Errorf("K5 diameter = %d, want 1", d)
	}
}

func TestStarRingGrid(t *testing.T) {
	if g := Star(6); g.M() != 5 || g.Degree(0) != 5 {
		t.Error("Star(6) malformed")
	}
	if g := Ring(5); g.M() != 5 || g.Degree(2) != 2 {
		t.Error("Ring(5) malformed")
	}
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Errorf("Grid(3,4): n=%d m=%d, want 12, 17", g.N(), g.M())
	}
	d, _ := g.Diameter()
	if d != 5 {
		t.Errorf("Grid(3,4) diameter = %d, want 5", d)
	}
}

func TestShortestPath(t *testing.T) {
	g := Line(5)
	p := g.ShortestPath(0, 4, nil)
	if !reflect.DeepEqual(p, []int{0, 1, 2, 3, 4}) {
		t.Errorf("path = %v", p)
	}
	if p := g.ShortestPath(2, 2, nil); !reflect.DeepEqual(p, []int{2}) {
		t.Errorf("trivial path = %v", p)
	}
	// Restricted: cut the middle edge.
	blockID, _ := g.EdgeID(2, 3)
	p = g.ShortestPath(0, 4, func(id int) bool { return id != blockID })
	if p != nil {
		t.Errorf("expected nil path across cut, got %v", p)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	for name, f := range map[string]func(){
		"self-loop": func() { g.AddEdge(1, 1) },
		"duplicate": func() { g.AddEdge(1, 0) },
		"range":     func() { g.AddEdge(0, 9) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestMPC0Topology(t *testing.T) {
	g, players := MPC0(4, 3)
	if g.N() != 7 {
		t.Fatalf("n = %d, want 7", g.N())
	}
	if len(players) != 4 {
		t.Fatalf("players = %v", players)
	}
	// No player-player edges.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if _, ok := g.EdgeID(i, j); ok {
				t.Errorf("unexpected player edge (%d,%d)", i, j)
			}
		}
	}
	// Every player connects to every hub; the hub set is a clique.
	if g.M() != 4*3+3 {
		t.Errorf("m = %d, want 15", g.M())
	}
}

func TestConnectivity(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if g.ConnectsAll([]int{0, 2}) {
		t.Error("ConnectsAll over components")
	}
	if !g.ConnectsAll([]int{0, 1}) {
		t.Error("ConnectsAll within component")
	}
	if _, err := g.Diameter(); err == nil {
		t.Error("expected diameter error on disconnected graph")
	}
}

func TestRandomConnected(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g := RandomConnected(2+r.Intn(20), r.Intn(10), r)
		if !g.Connected() {
			t.Fatal("RandomConnected produced a disconnected graph")
		}
	}
}

func TestSortedUnique(t *testing.T) {
	got := SortedUnique([]int{3, 1, 3, 2, 1})
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("SortedUnique = %v", got)
	}
}
