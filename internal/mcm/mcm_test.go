package mcm

import (
	"math/rand"
	"testing"
)

func TestAllProtocolsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		k := 1 + r.Intn(6)
		n := 2 + r.Intn(12)
		ins := RandomInstance(k, n, r)
		want := ins.Answer()
		y1, _, err := Sequential(ins, 1)
		if err != nil {
			t.Fatal(err)
		}
		y2, _, err := Merge(ins, 1)
		if err != nil {
			t.Fatal(err)
		}
		y3, _, err := Trivial(ins, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !y1.Equal(want) || !y2.Equal(want) || !y3.Equal(want) {
			t.Fatalf("protocol answers disagree with local product (k=%d n=%d)", k, n)
		}
	}
}

func TestSequentialRoundsThetaKN(t *testing.T) {
	// Proposition 6.1: (k+1) sequential hops of N bits at 1 bit/round.
	r := rand.New(rand.NewSource(1))
	k, n := 8, 32
	ins := RandomInstance(k, n, r)
	_, rep, err := Sequential(ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (k + 1) * n
	if rep.Rounds != want {
		t.Errorf("sequential rounds = %d, want (k+1)N = %d", rep.Rounds, want)
	}
}

func TestTrivialRoundsThetaKN2(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	k, n := 6, 16
	ins := RandomInstance(k, n, r)
	_, rep, err := Trivial(ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The last edge alone carries k·N² + N bits at 1 bit per round.
	if rep.Rounds < k*n*n {
		t.Errorf("trivial rounds = %d, want ≥ kN² = %d", rep.Rounds, k*n*n)
	}
}

func TestMergeBeatsSequentialForLargeK(t *testing.T) {
	// Appendix I.1: for k ≫ N the doubling merge (N²·log k + k) beats
	// the sequential kN.
	r := rand.New(rand.NewSource(3))
	n := 4
	k := 256
	ins := RandomInstance(k, n, r)
	_, seq, err := Sequential(ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, mrg, err := Merge(ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mrg.Rounds >= seq.Rounds {
		t.Errorf("merge (%d) should beat sequential (%d) at k=%d N=%d",
			mrg.Rounds, seq.Rounds, k, n)
	}
}

func TestSequentialBeatsMergeForSmallK(t *testing.T) {
	// For k ≤ N the sequential protocol is optimal (Theorem 6.4).
	r := rand.New(rand.NewSource(4))
	n := 32
	k := 4
	ins := RandomInstance(k, n, r)
	_, seq, err := Sequential(ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, mrg, err := Merge(ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds >= mrg.Rounds {
		t.Errorf("sequential (%d) should beat merge (%d) at k=%d N=%d",
			seq.Rounds, mrg.Rounds, k, n)
	}
}

func TestLowerBoundBelowSequential(t *testing.T) {
	// The Ω(kN) bound must sit below the (k+1)N sequential cost but
	// scale the same way.
	for _, kn := range [][2]int{{4, 16}, {8, 32}, {16, 64}} {
		k, n := kn[0], kn[1]
		lb := LowerBoundRounds(k, n)
		seq := float64((k + 1) * n)
		if lb <= 0 || lb >= seq {
			t.Errorf("LB = %v outside (0, %v)", lb, seq)
		}
		ratio := seq / lb
		if ratio > 500 { // γ/4 = 1/400
			t.Errorf("LB/UB ratio %v implausibly large", ratio)
		}
	}
}

func TestValidate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ins := RandomInstance(3, 4, r)
	ins.A = ins.A[:2]
	if err := ins.Validate(); err == nil {
		t.Error("expected error for missing matrix")
	}
	if _, _, err := Sequential(&Instance{K: 0, N: 4}, 1); err == nil {
		t.Error("expected error for k = 0")
	}
}

func TestWiderChannelsScaleDown(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ins := RandomInstance(4, 32, r)
	_, rep1, err := Sequential(ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, rep8, err := Sequential(ins, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep8.Rounds*8 != rep1.Rounds {
		t.Errorf("8-bit channels: %d rounds, want %d", rep8.Rounds, rep1.Rounds/8)
	}
}
