// Package mcm implements the Matrix Chain Multiplication problem of
// Section 6 (Problem 1.1): k matrices A_i ∈ F₂^{N×N} and a vector
// x ∈ F₂^N sit in order on a line of k+2 players, and player P_{k+1}
// must learn A_k···A_1·x.
//
// Three protocols are implemented on the round simulator:
//
//   - Sequential (Proposition 6.1): P_i computes the partial product
//     y_i = A_i·y_{i-1} and forwards it — Θ(kN) rounds, tight for k ≤ N
//     by the min-entropy lower bound (Theorem 6.4);
//   - Merge (Appendix I.1): a bottom-up doubling merge of matrix
//     products — O(N²·log k + k) rounds, preferable when k ≫ N;
//   - Trivial: ship every matrix to the sink — Θ(kN²) rounds
//     (footnote 18).
//
// LowerBoundRounds evaluates the Ω(kN) bound of Theorem 6.4.
package mcm

import (
	"fmt"
	"math/rand"

	"repro/internal/f2"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Instance is one MCM input: X at P₀ and A[i] at P_{i+1} on a line of
// K+2 players.
type Instance struct {
	K, N int
	A    []*f2.Matrix
	X    *f2.Vector
}

// RandomInstance samples uniform matrices and vector.
func RandomInstance(k, n int, r *rand.Rand) *Instance {
	ins := &Instance{K: k, N: n, X: f2.RandomVector(n, r)}
	for i := 0; i < k; i++ {
		ins.A = append(ins.A, f2.RandomMatrix(n, n, r))
	}
	return ins
}

// Validate checks dimensions.
func (ins *Instance) Validate() error {
	if ins.K < 1 || ins.N < 1 {
		return fmt.Errorf("mcm: need k ≥ 1 and N ≥ 1, got %d, %d", ins.K, ins.N)
	}
	if len(ins.A) != ins.K {
		return fmt.Errorf("mcm: %d matrices for k = %d", len(ins.A), ins.K)
	}
	if ins.X == nil || ins.X.Len() != ins.N {
		return fmt.Errorf("mcm: vector dimension mismatch")
	}
	for i, a := range ins.A {
		if a.Rows() != ins.N || a.Cols() != ins.N {
			return fmt.Errorf("mcm: matrix %d is %dx%d, want %dx%d", i, a.Rows(), a.Cols(), ins.N, ins.N)
		}
	}
	return nil
}

// Answer computes A_k···A_1·x locally (the correctness oracle).
func (ins *Instance) Answer() *f2.Vector {
	y := ins.X.Clone()
	for _, a := range ins.A {
		y = a.MulVec(y)
	}
	return y
}

// Report carries a protocol's measured cost.
type Report struct {
	Protocol string
	Rounds   int
	Bits     int64
}

// line returns the k+2 player line topology P₀—P₁—...—P_{k+1}.
func (ins *Instance) line() *topology.Graph { return topology.Line(ins.K + 2) }

// Sequential runs Proposition 6.1: y_i = A_i·y_{i-1} computed in place,
// each partial product shipped one hop (N bits per transfer, B bits per
// round). The matrix-vector product needs the whole input vector, so
// transfers cannot pipeline across hops: Θ(k·N/B) rounds.
func Sequential(ins *Instance, bitsPerRound int) (*f2.Vector, Report, error) {
	rep := Report{Protocol: "sequential"}
	if err := ins.Validate(); err != nil {
		return nil, rep, err
	}
	net, err := netsim.New(ins.line(), bitsPerRound)
	if err != nil {
		return nil, rep, err
	}
	y := ins.X.Clone()
	done := 0
	for i := 0; i <= ins.K; i++ {
		// P_i holds y_{i-1}; sends it to P_{i+1}, who multiplies.
		done, err = net.SendBits(i, i+1, done, ins.N)
		if err != nil {
			return nil, rep, err
		}
		if i < ins.K {
			y = ins.A[i].MulVec(y)
		}
	}
	// The final hop P_k → P_{k+1} above already delivered y_k.
	rep.Rounds = net.Rounds()
	rep.Bits = net.TotalBits()
	return y, rep, nil
}

// Merge runs the Appendix I.1 doubling protocol: in iteration t, every
// player whose index i satisfies i mod 2^t = 2^{t-1} routes its
// accumulated product B (N² bits) to the player 2^{t-1} positions to its
// right, which multiplies. After ⌈log₂ k⌉ iterations P_k holds
// A_k···A_1; x then travels from P₀ to P_k and the result one hop
// further. Segments are disjoint, so each iteration pipelines in
// N²/B + 2^{t-1} − 1 rounds: O(N²·log k + k) in total.
func Merge(ins *Instance, bitsPerRound int) (*f2.Vector, Report, error) {
	rep := Report{Protocol: "merge"}
	if err := ins.Validate(); err != nil {
		return nil, rep, err
	}
	g := ins.line()
	net, err := netsim.New(g, bitsPerRound)
	if err != nil {
		return nil, rep, err
	}
	// acc[i] = product accumulated at player P_{i+1} (1-based matrices).
	type hold struct {
		m     *f2.Matrix
		ready int
	}
	acc := make(map[int]*hold, ins.K)
	for i := 1; i <= ins.K; i++ {
		acc[i] = &hold{m: ins.A[i-1].Clone()}
	}
	for span := 1; span < ins.K; span *= 2 {
		for i := span; i+span <= ins.K; i += 2 * span {
			src, dst := acc[i], acc[i+span]
			path := make([]int, 0, span+1)
			for p := i; p <= i+span; p++ {
				path = append(path, p)
			}
			done, err := net.RoutePath(path, maxInt(src.ready, dst.ready), ins.N*ins.N)
			if err != nil {
				return nil, rep, err
			}
			dst.m = dst.m.Mul(src.m)
			dst.ready = done
			delete(acc, i)
		}
	}
	// The surviving accumulators are at positions k, k-2span, ...; fold
	// any stragglers into P_k (happens when k is not a power of two).
	final := acc[ins.K]
	for i := ins.K - 1; i >= 1; i-- {
		h, ok := acc[i]
		if !ok {
			continue
		}
		path := make([]int, 0, ins.K-i+1)
		for p := i; p <= ins.K; p++ {
			path = append(path, p)
		}
		done, err := net.RoutePath(path, maxInt(h.ready, final.ready), ins.N*ins.N)
		if err != nil {
			return nil, rep, err
		}
		final.m = final.m.Mul(h.m)
		final.ready = done
	}
	// Ship x from P₀ to P_k (pipelined), multiply, and forward y_k.
	path := make([]int, ins.K+1)
	for p := range path {
		path[p] = p
	}
	xDone, err := net.RoutePath(path, 0, ins.N)
	if err != nil {
		return nil, rep, err
	}
	y := final.m.MulVec(ins.X)
	if _, err := net.SendBits(ins.K, ins.K+1, maxInt(xDone, final.ready), ins.N); err != nil {
		return nil, rep, err
	}
	rep.Rounds = net.Rounds()
	rep.Bits = net.TotalBits()
	return y, rep, nil
}

// Trivial ships every matrix (N² bits each) and the vector to P_{k+1},
// which computes locally: Θ(k·N²) rounds on the line (footnote 18).
func Trivial(ins *Instance, bitsPerRound int) (*f2.Vector, Report, error) {
	rep := Report{Protocol: "trivial"}
	if err := ins.Validate(); err != nil {
		return nil, rep, err
	}
	g := ins.line()
	net, err := netsim.New(g, bitsPerRound)
	if err != nil {
		return nil, rep, err
	}
	sink := ins.K + 1
	for i := 0; i <= ins.K; i++ {
		bits := ins.N * ins.N
		if i == 0 {
			bits = ins.N
		}
		path := make([]int, 0, sink-i+1)
		for p := i; p <= sink; p++ {
			path = append(path, p)
		}
		if _, err := net.RoutePath(path, 0, bits); err != nil {
			return nil, rep, err
		}
	}
	rep.Rounds = net.Rounds()
	rep.Bits = net.TotalBits()
	return ins.Answer(), rep, nil
}

// LowerBoundRounds evaluates the Theorem 6.4 bound: any protocol
// succeeding with probability ≥ 1/2 needs more than γ(k+1)N/4 rounds,
// with γ = 0.01 satisfying condition (7) of Lemma 6.2.
func LowerBoundRounds(k, n int) float64 {
	const gamma = 0.01
	return gamma * float64(k+1) * float64(n) / 4
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
