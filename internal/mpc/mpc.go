// Package mpc instantiates the paper's protocols inside the MPC-style
// topologies of Appendix A, reproducing the comparison of Sections
// A.1.4 and A.2.3:
//
//   - MPC(0) (Model A.1): k players each joined to a p-hub clique; the
//     star protocol packs p diameter-2 Steiner trees, so its rounds
//     scale as N/p + O(1) — the Θ̃(1)-round regime once channel widths
//     match the MPC node capacity L = Ω(kN/p);
//   - MPC(ε) (Model A.2): a p-clique with factors spread round-robin;
//     the packing yields ⌊p/2⌋ trees and rounds ≈ N/(p/2) + O(1).
package mpc

import (
	"fmt"
	"math/rand"

	"repro/internal/faq"
	"repro/internal/hypergraph"
	"repro/internal/protocol"
	"repro/internal/relation"
	"repro/internal/semiring"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Result reports one MPC comparison run.
type Result struct {
	Rounds int
	Bits   int64
	// Answer is the BCQ value computed by the protocol.
	Answer bool
}

var sb = semiring.Bool{}

// runStar executes the star BCQ on the given topology/assignment and
// extracts the Boolean answer.
func runStar(q *faq.Query[bool], g *topology.Graph, assign protocol.Assignment, out, bitsPerRound int) (*Result, error) {
	s := &protocol.Setup[bool]{Q: q, G: g, Assign: assign, Output: out, BitsPerRound: bitsPerRound}
	ans, rep, err := protocol.Run(s)
	if err != nil {
		return nil, err
	}
	v, err := relation.ScalarValue(sb, ans)
	if err != nil {
		return nil, err
	}
	return &Result{Rounds: rep.Rounds, Bits: rep.Bits, Answer: v}, nil
}

// Star0 runs the star BCQ with k relations of size n on the MPC(0)
// topology with p hub nodes (Model A.1), player i holding relation i.
// bitsPerRound models the per-channel share L′ = L/k of the node
// capacity (0 selects the paper's default tuple width).
func Star0(k, p, n, dom, bitsPerRound int, r *rand.Rand) (*Result, error) {
	if k < 2 || p < 1 {
		return nil, fmt.Errorf("mpc: need k ≥ 2 players and p ≥ 1 hubs")
	}
	h := hypergraph.StarGraph(k)
	q := workload.BCQ(h, n, dom, r)
	g, players := topology.MPC0(k, p)
	assign := make(protocol.Assignment, k)
	copy(assign, players)
	return runStar(q, g, assign, players[0], bitsPerRound)
}

// StarEps runs the star BCQ with k relations on a p-node clique
// (Model A.2 shape), factors spread round-robin over the p nodes.
func StarEps(k, p, n, dom, bitsPerRound int, r *rand.Rand) (*Result, error) {
	if k < 2 || p < 2 {
		return nil, fmt.Errorf("mpc: need k ≥ 2 relations and p ≥ 2 nodes")
	}
	h := hypergraph.StarGraph(k)
	q := workload.BCQ(h, n, dom, r)
	g := topology.Clique(p)
	players := make([]int, p)
	for i := range players {
		players[i] = i
	}
	assign := workload.RoundRobinAssignment(k, players)
	return runStar(q, g, assign, 0, bitsPerRound)
}

// Mpc0RoundBound is the Appendix A.1.4 prediction for the MPC(0) star:
// with p diameter-2 Steiner trees the protocol needs ≈ N/p + O(1)
// rounds (Θ̃(1) once each channel carries L′ = L/k = N/p bits per
// round).
func Mpc0RoundBound(n, p int) float64 { return float64(n)/float64(p) + 2 }

// MpcEpsRoundBound is the Appendix A.2.3 analogue on the p-clique:
// ⌊p/2⌋ Hamiltonian-path trees give ≈ N/(p/2) + O(1) rounds.
func MpcEpsRoundBound(n, p int) float64 { return float64(n)/float64(p/2) + float64(2) }
