package mpc

import (
	"math/rand"
	"testing"
)

func TestStar0RoundsShrinkWithHubs(t *testing.T) {
	// Appendix A.1.4: more hubs ⇒ more diameter-2 Steiner trees ⇒
	// fewer rounds, approaching the MPC(0) constant-round regime.
	n := 64
	r2, err := Star0(4, 2, n, n, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Star0(4, 8, n, n, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if r8.Rounds >= r2.Rounds {
		t.Errorf("p=8 (%d rounds) should beat p=2 (%d rounds)", r8.Rounds, r2.Rounds)
	}
	if float64(r8.Rounds) > 4*Mpc0RoundBound(n, 8)+8 {
		t.Errorf("p=8 rounds %d far above bound %v", r8.Rounds, Mpc0RoundBound(n, 8))
	}
}

func TestStarEpsCliquePacking(t *testing.T) {
	n := 64
	res, err := StarEps(6, 6, n, n, 0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Rounds) > 4*MpcEpsRoundBound(n, 6)+16 {
		t.Errorf("rounds %d far above clique bound %v", res.Rounds, MpcEpsRoundBound(n, 6))
	}
}

func TestMPCValidation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if _, err := Star0(1, 2, 8, 8, 0, r); err == nil {
		t.Error("expected error for k < 2")
	}
	if _, err := StarEps(4, 1, 8, 8, 0, r); err == nil {
		t.Error("expected error for p < 2")
	}
}

func TestWiderChannelsApproachMPCRegime(t *testing.T) {
	// With per-round channel width scaled up to L′ = N·logD/p bits, the
	// star finishes in O(1) rounds like MPC(0)'s one-round protocol.
	n, p := 64, 8
	narrow, err := Star0(4, p, n, n, 0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Star0(4, p, n, n, 1024, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Rounds >= narrow.Rounds {
		t.Errorf("wide channels (%d rounds) should beat narrow (%d)", wide.Rounds, narrow.Rounds)
	}
	if wide.Rounds > 8 {
		t.Errorf("wide-channel rounds = %d, want O(1)", wide.Rounds)
	}
}
