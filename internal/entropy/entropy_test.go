package entropy

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestShannonUniform(t *testing.T) {
	d := UniformOver([]uint64{0, 1, 2, 3, 4, 5, 6, 7})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := Shannon(d); !almost(got, 3, 1e-12) {
		t.Errorf("H(uniform 8) = %v, want 3", got)
	}
	if got := MinEntropy(d); !almost(got, 3, 1e-12) {
		t.Errorf("H∞(uniform 8) = %v, want 3", got)
	}
}

func TestEntropyOrdering(t *testing.T) {
	// H∞ ≤ H_Sh ≤ log |supp| for arbitrary distributions.
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(20)
		d := make(Dist, n)
		total := 0.0
		for i := 0; i < n; i++ {
			w := r.Float64() + 1e-3
			d[uint64(i)] = w
			total += w
		}
		for k := range d {
			d[k] /= total
		}
		hs, hm := Shannon(d), MinEntropy(d)
		if hm > hs+1e-9 {
			t.Fatalf("H∞ (%v) > H (%v)", hm, hs)
		}
		if hs > math.Log2(float64(n))+1e-9 {
			t.Fatalf("H (%v) > log n (%v)", hs, math.Log2(float64(n)))
		}
	}
}

func TestSmoothMinEntropy(t *testing.T) {
	// One heavy atom (1/2) plus many light ones: smoothing with ε ≥
	// the excess of the heavy atom lifts H∞ toward the light level.
	d := Dist{0: 0.5}
	for i := 1; i <= 50; i++ {
		d[uint64(i)] = 0.01
	}
	h0 := SmoothMinEntropy(d, 0)
	if !almost(h0, 1, 1e-9) {
		t.Errorf("H∞^0 = %v, want 1", h0)
	}
	h := SmoothMinEntropy(d, 0.49)
	if !almost(h, -math.Log2(0.01), 1e-9) {
		t.Errorf("H∞^0.49 = %v, want %v", h, -math.Log2(0.01))
	}
	// Monotone in ε.
	prev := -1.0
	for _, eps := range []float64{0, 0.1, 0.2, 0.3, 0.4} {
		cur := SmoothMinEntropy(d, eps)
		if cur < prev {
			t.Fatalf("smooth min-entropy not monotone at ε=%v", eps)
		}
		prev = cur
	}
	if !math.IsInf(SmoothMinEntropy(d, 1.0), 1) {
		t.Error("ε = 1 should give +Inf")
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Dist{0: 0.6, 1: 0.6}).Validate(); err == nil {
		t.Error("expected mass error")
	}
	if err := (Dist{0: -0.1, 1: 1.1}).Validate(); err == nil {
		t.Error("expected negativity error")
	}
}

func TestFromSamples(t *testing.T) {
	d := FromSamples([]uint64{1, 1, 2, 2})
	if !almost(d[1], 0.5, 1e-12) || !almost(d[2], 0.5, 1e-12) {
		t.Errorf("empirical = %v", d)
	}
}

func TestProductExperimentUniform(t *testing.T) {
	// γ = 0 (fully uniform A), α = 1/2: Ax should be almost uniform, so
	// the sampled min-entropy must clear the (1−√0)·N = N bound minus
	// sampling slack.
	e := &ProductExperiment{N: 10, GammaRows: 0, AlphaBits: 5, Samples: 200000}
	res, err := e.Run(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != 10 {
		t.Errorf("bound = %v, want 10", res.Bound)
	}
	// Sampling 2^10 outcomes with 2e5 draws estimates H∞ to ≈ ±0.5.
	if res.HAxEstimate < res.Bound-1.0 {
		t.Errorf("H∞(Ax) estimate %v too far below bound %v", res.HAxEstimate, res.Bound)
	}
}

func TestProductExperimentTheorem63(t *testing.T) {
	// γ = 2/10: Theorem 6.3 promises H∞(Ax) ≥ (1−√0.4)·10 ≈ 3.68.
	e := &ProductExperiment{N: 10, GammaRows: 2, AlphaBits: 6, Samples: 200000}
	res, err := e.Run(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if res.HAxEstimate < res.Bound {
		t.Errorf("H∞(Ax) = %v below Theorem 6.3 bound %v", res.HAxEstimate, res.Bound)
	}
	if res.HADesigned != 80 {
		t.Errorf("H∞(A) = %v, want 80", res.HADesigned)
	}
}

func TestProductExperimentValidation(t *testing.T) {
	bad := []*ProductExperiment{
		{N: 0, Samples: 1},
		{N: 40, Samples: 1},
		{N: 8, GammaRows: 9, Samples: 1},
		{N: 8, AlphaBits: 9, Samples: 1},
		{N: 8, Samples: 0},
	}
	r := rand.New(rand.NewSource(1))
	for i, e := range bad {
		if _, err := e.Run(r); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestShannonCounterexampleShape(t *testing.T) {
	// Appendix I.3 with N = 20, T = αN = 4, α = 0.2: Shannon entropy of
	// x is ≈ 2α(1−α)N = 6.4 while its min-entropy collapses to
	// ≈ T + log₂(1/(1−α)) ≈ 4.32, and the conditional entropy of Ax
	// after the T·N-bit leak is ≈ αN = 4 < H_Sh(x).
	c := &ShannonCounterexample{N: 20, T: 4, Alpha: 0.2}
	res, err := c.Exact()
	if err != nil {
		t.Fatal(err)
	}
	// Exact value = (1−α)T + α(N−T) + h(α) — the paper's 2α(1−α)N plus
	// the mixture term its approximation drops.
	hAlpha := -0.2*math.Log2(0.2) - 0.8*math.Log2(0.8)
	if !almost(res.HShX, 2*0.2*0.8*20+hAlpha, 0.05) {
		t.Errorf("H_Sh(x) = %v, want ≈ %v", res.HShX, 2*0.2*0.8*20+hAlpha)
	}
	if res.HMinX > 4.5 {
		t.Errorf("H∞(x) = %v, want ≈ 4.32 (low)", res.HMinX)
	}
	if res.HCondAx >= res.HShX {
		t.Errorf("conditional H(Ax|f,x) = %v should fall below H_Sh(x) = %v", res.HCondAx, res.HShX)
	}
	if !almost(res.HCondAx, res.PaperBound, 0.01) {
		t.Errorf("exact conditional %v vs paper bound %v", res.HCondAx, res.PaperBound)
	}
	// The Shannon hypothesis was high but the min-entropy hypothesis of
	// Lemma 6.2 fails: H∞(x) ≪ αN is impossible... rather, check the
	// contrast driving Appendix I.3: H_Sh(x) ≫ H∞(x).
	if res.HShX < res.HMinX+1 {
		t.Errorf("expected H_Sh(x) (%v) well above H∞(x) (%v)", res.HShX, res.HMinX)
	}
}

func TestShannonCounterexampleValidation(t *testing.T) {
	bad := []*ShannonCounterexample{
		{N: 1, T: 1, Alpha: 0.5},
		{N: 8, T: 0, Alpha: 0.5},
		{N: 8, T: 8, Alpha: 0.5},
		{N: 8, T: 2, Alpha: 0},
		{N: 8, T: 2, Alpha: 1},
	}
	for i, c := range bad {
		if _, err := c.Exact(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCounterexampleSampledAgreesWithExact(t *testing.T) {
	// Monte-Carlo cross-check of the closed-form H_Sh(x): sample from
	// the mixture and compare empirical Shannon entropy.
	c := &ShannonCounterexample{N: 12, T: 3, Alpha: 0.25}
	res, err := c.Exact()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	samples := make([]uint64, 400000)
	for i := range samples {
		if r.Float64() < c.Alpha {
			// Uniform over span(e_{T+1}..e_N): random high bits.
			samples[i] = (r.Uint64() << uint(c.T)) & ((1 << uint(c.N)) - 1)
		} else {
			samples[i] = r.Uint64() & ((1 << uint(c.T)) - 1)
		}
	}
	got := Shannon(FromSamples(samples))
	if !almost(got, res.HShX, 0.05) {
		t.Errorf("sampled H_Sh(x) = %v, exact %v", got, res.HShX)
	}
}
