// Package entropy provides the information-theoretic toolkit behind the
// paper's MCM lower bound (Section 6.2): Shannon entropy, min-entropy
// H∞, smooth min-entropy H∞^ε (eq. 6), plus executable versions of the
// two distributional claims:
//
//   - Theorem 6.3 (min-entropy preservation): if A has min-entropy
//     ≥ (1−γ)N² and x has min-entropy ≥ αN, then Ax has min-entropy
//     ≥ (1−√(2γ))N — checked by Monte-Carlo estimation on small N;
//   - Appendix I.3 (why Shannon entropy fails): an explicit x
//     distribution with high Shannon entropy but low min-entropy for
//     which the conditional Shannon entropy of Ax collapses after a
//     small leak — computed in closed form.
package entropy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/f2"
)

// Dist is a probability distribution over uint64-encoded outcomes.
type Dist map[uint64]float64

// Validate checks non-negativity and unit mass (tolerance 1e-9).
func (d Dist) Validate() error {
	total := 0.0
	for x, p := range d {
		if p < 0 {
			return fmt.Errorf("entropy: negative mass %g at %d", p, x)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("entropy: total mass %g != 1", total)
	}
	return nil
}

// Shannon returns H(D) = −Σ p log₂ p.
func Shannon(d Dist) float64 {
	h := 0.0
	for _, p := range d {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// MinEntropy returns H∞(D) = −log₂ max_x p(x).
func MinEntropy(d Dist) float64 {
	max := 0.0
	for _, p := range d {
		if p > max {
			max = p
		}
	}
	if max == 0 {
		return 0
	}
	return -math.Log2(max)
}

// SmoothMinEntropy returns H∞^ε(D) (eq. 6): the supremum of −log₂ max
// P[X = x, E] over events E with P(E) ≥ 1−ε. The optimum caps the
// largest probabilities at a water-filling threshold t with total
// trimmed mass ε, giving H = −log₂ t.
func SmoothMinEntropy(d Dist, eps float64) float64 {
	if eps <= 0 {
		return MinEntropy(d)
	}
	probs := make([]float64, 0, len(d))
	total := 0.0
	for _, p := range d {
		if p > 0 {
			probs = append(probs, p)
			total += p
		}
	}
	if len(probs) == 0 {
		return 0
	}
	if eps >= total-1e-12 {
		// ε covers (numerically) all the mass: the cap is unbounded.
		return math.Inf(1)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(probs)))
	// Water-fill: find the level t at which capping every probability
	// above t trims exactly eps mass; then H = −log₂ t.
	prefix := 0.0
	for i := 0; i < len(probs); i++ {
		prefix += probs[i]
		next := 0.0
		if i+1 < len(probs) {
			next = probs[i+1]
		}
		// Cost of capping the top i+1 probabilities at level `next`.
		if cost := prefix - float64(i+1)*next; cost >= eps {
			t := (prefix - eps) / float64(i+1)
			if t < 1e-30 { // ε consumed (numerically) all the mass
				return math.Inf(1)
			}
			return -math.Log2(t)
		}
	}
	// eps covers all mass: the cap can be made arbitrarily small.
	return math.Inf(1)
}

// FromSamples builds the empirical distribution of a sample set.
func FromSamples(xs []uint64) Dist {
	d := make(Dist)
	inc := 1 / float64(len(xs))
	for _, x := range xs {
		d[x] += inc
	}
	return d
}

// UniformOver returns the uniform distribution on the given outcomes.
func UniformOver(outcomes []uint64) Dist {
	d := make(Dist, len(outcomes))
	p := 1 / float64(len(outcomes))
	for _, x := range outcomes {
		d[x] += p
	}
	return d
}

// ProductExperiment is the Monte-Carlo check of Theorem 6.3 on
// dimension N ≤ 30:
//
//	A: first GammaRows rows fixed to zero, the rest uniform
//	   (H∞(A) = (N−GammaRows)·N = (1−γ)N² with γ = GammaRows/N);
//	x: uniform over a random set of 2^AlphaBits nonzero vectors
//	   (H∞(x) = AlphaBits = αN).
//
// Run estimates H∞(Ax) from Samples draws and reports the theorem's
// (1−√(2γ))·N bound.
type ProductExperiment struct {
	N         int
	GammaRows int
	AlphaBits int
	Samples   int
}

// ProductResult is the outcome of one experiment run.
type ProductResult struct {
	HxDesigned  float64 // αN
	HADesigned  float64 // (1−γ)N²
	HAxEstimate float64 // sampled H∞(Ax)
	Bound       float64 // (1−√(2γ))·N from Theorem 6.3
}

// Run executes the experiment.
func (e *ProductExperiment) Run(r *rand.Rand) (*ProductResult, error) {
	if e.N < 1 || e.N > 30 {
		return nil, fmt.Errorf("entropy: N = %d outside [1, 30]", e.N)
	}
	if e.GammaRows < 0 || e.GammaRows > e.N {
		return nil, fmt.Errorf("entropy: GammaRows = %d outside [0, N]", e.GammaRows)
	}
	if e.AlphaBits < 0 || e.AlphaBits > e.N {
		return nil, fmt.Errorf("entropy: AlphaBits = %d outside [0, N]", e.AlphaBits)
	}
	if e.Samples < 1 {
		return nil, fmt.Errorf("entropy: need at least one sample")
	}
	// Support of x: 2^AlphaBits distinct nonzero vectors.
	want := 1 << uint(e.AlphaBits)
	support := make([]uint64, 0, want)
	seen := map[uint64]bool{0: true}
	for len(support) < want {
		v := f2.RandomVector(e.N, r).Uint()
		if !seen[v] {
			seen[v] = true
			support = append(support, v)
		}
	}
	samples := make([]uint64, e.Samples)
	for i := range samples {
		a := f2.RandomMatrix(e.N, e.N, r)
		for row := 0; row < e.GammaRows; row++ {
			for col := 0; col < e.N; col++ {
				a.Set(row, col, 0)
			}
		}
		x := f2.VectorFromUint(e.N, support[r.Intn(len(support))])
		samples[i] = a.MulVec(x).Uint()
	}
	gamma := float64(e.GammaRows) / float64(e.N)
	res := &ProductResult{
		HxDesigned:  float64(e.AlphaBits),
		HADesigned:  (1 - gamma) * float64(e.N) * float64(e.N),
		HAxEstimate: MinEntropy(FromSamples(samples)),
		Bound:       (1 - math.Sqrt(2*gamma)) * float64(e.N),
	}
	return res, nil
}

// ShannonCounterexample is the Appendix I.3 construction on F₂^N with
// S = span(e₁..e_T) (the first T coordinates) and its complement
// C = span(e_{T+1}..e_N): x is uniform over S with probability 1−Alpha
// and uniform over C with probability Alpha; the leak is
// f(A) = (A·e₁, ..., A·e_T) — the first T columns of A, T·N ≤ γN² bits.
type ShannonCounterexample struct {
	N     int
	T     int
	Alpha float64
}

// CounterexampleResult packages the exact quantities of Appendix I.3.
type CounterexampleResult struct {
	// HShX ≈ 2α(1−α)N for T = αN: high Shannon entropy.
	HShX float64
	// HMinX ≈ T + log₂(1/(1−α)): the min-entropy is low — the
	// hypothesis of Lemma 6.2 fails, which is the point.
	HMinX float64
	// HCondAx = α(1−2^{−(N−T)})·N: the exact conditional Shannon
	// entropy H(Ax | f(A), x) remaining after the leak — the quantity
	// the paper bounds by (1−α)·0 + α·N, about half of HShX.
	HCondAx float64
	// PaperBound = α·N.
	PaperBound float64
}

// Exact evaluates the construction in closed form.
func (c *ShannonCounterexample) Exact() (*CounterexampleResult, error) {
	if c.N < 2 || c.N > 60 || c.T < 1 || c.T >= c.N {
		return nil, fmt.Errorf("entropy: invalid counterexample dimensions N=%d T=%d", c.N, c.T)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return nil, fmt.Errorf("entropy: Alpha must lie in (0,1)")
	}
	n, t, a := c.N, c.T, c.Alpha
	// Exact distribution of x: S-atoms have mass (1−α)/2^T, C-atoms
	// α/2^{N−T}; the origin belongs to both subspaces.
	pS := (1 - a) / math.Pow(2, float64(t))
	pC := a / math.Pow(2, float64(n-t))
	p0 := pS + pC
	hx := -p0 * math.Log2(p0)
	nS := math.Pow(2, float64(t)) - 1
	nC := math.Pow(2, float64(n-t)) - 1
	hx -= nS * pS * math.Log2(pS)
	hx -= nC * pC * math.Log2(pC)
	// Min-entropy: the heaviest atom is the origin.
	hmin := -math.Log2(p0)
	// H(Ax | f(A), x): for x ∈ S, Ax is determined by the leaked
	// columns; for x ∈ C \ {0}, Ax is uniform over F₂^N (the unleaked
	// columns are uniform); x = 0 gives Ax = 0.
	hcond := a * (1 - math.Pow(2, -float64(n-t))) * float64(n)
	return &CounterexampleResult{
		HShX:       hx,
		HMinX:      hmin,
		HCondAx:    hcond,
		PaperBound: a * float64(n),
	}, nil
}
