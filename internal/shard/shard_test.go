package shard

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/semiring"
)

func randomRel(t *testing.T, seed int64, schema []int, rows, dom int) *relation.Relation[int64] {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder[int64](semiring.Count{}, schema)
	row := make([]int32, len(schema))
	for i := 0; i < rows; i++ {
		for k := range row {
			row[k] = int32(r.Intn(dom))
		}
		b.AddRow(row, int64(1+r.Intn(5)))
	}
	return b.Build()
}

func TestPositions(t *testing.T) {
	schema := []int{1, 4, 7, 9}
	cols, err := Positions(schema, []int{4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 {
		t.Fatalf("positions %v, want [1 3]", cols)
	}
	if _, err := Positions(schema, []int{5}); err == nil {
		t.Fatal("missing key variable was accepted")
	}
}

func TestSplitPartitionsAndPreserves(t *testing.T) {
	sc := semiring.Count{}
	rel := randomRel(t, 7, []int{0, 2, 5}, 200, 9)
	for _, w := range []int{1, 2, 8} {
		for _, key := range [][]int{{2}, {0, 5}, {0, 2, 5}, {}} {
			shards, err := Split(sc, rel, key, w)
			if err != nil {
				t.Fatal(err)
			}
			if len(shards) != w {
				t.Fatalf("w=%d: %d shards", w, len(shards))
			}
			total := 0
			merged := relation.NewBuilder[int64](sc, rel.Schema())
			cols, _ := Positions(rel.Schema(), key)
			for wi, s := range shards {
				total += s.Len()
				for i := 0; i < s.Len(); i++ {
					if got := Assign(s.Tuple(i), cols, w); got != wi {
						t.Fatalf("w=%d key=%v: row landed on %d, assigned %d", w, key, wi, got)
					}
					merged.AddRow(s.Tuple(i), s.Value(i))
				}
			}
			if total != rel.Len() {
				t.Fatalf("w=%d key=%v: %d rows across shards, want %d", w, key, total, rel.Len())
			}
			// Disjoint shards re-merge to the original relation exactly.
			if !relation.Equal(sc, merged.Build(), rel) {
				t.Fatalf("w=%d key=%v: shards do not re-merge to the input", w, key)
			}
			// Empty key or one worker: everything on worker 0.
			if len(key) == 0 || w == 1 {
				if shards[0].Len() != rel.Len() {
					t.Fatalf("w=%d key=%v: fallback shard has %d rows", w, key, shards[0].Len())
				}
			}
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	sc := semiring.Count{}
	rel := randomRel(t, 11, []int{1, 3}, 120, 7)
	a, err := Split(sc, rel, []int{3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Split(sc, rel, []int{3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for w := range a {
		if !relation.Equal(sc, a[w], b[w]) {
			t.Fatalf("shard %d differs between identical runs", w)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sc := semiring.Count{}
	cod := Codec[int64]{
		Enc: func(v int64) uint64 { return uint64(v) },
		Dec: func(u uint64) int64 { return int64(u) },
	}
	rels := []*relation.Relation[int64]{
		randomRel(t, 3, []int{0, 1}, 50, 6),
		randomRel(t, 4, []int{2}, 10, 4),
		relation.NewBuilder[int64](sc, []int{0, 1}).Build(), // empty
		relation.Unit(sc, sc.One()),                         // zero arity
	}
	// Negative annotation values must survive the unsigned wire word.
	nb := relation.NewBuilder[int64](sc, []int{0})
	nb.AddRow([]int32{3}, -42)
	rels = append(rels, nb.Build())
	for i, r := range rels {
		buf := Encode(r, cod)
		if len(buf) != EncodedBytes(r.Arity(), r.Len()) {
			t.Fatalf("rel %d: encoded %d bytes, EncodedBytes says %d", i, len(buf), EncodedBytes(r.Arity(), r.Len()))
		}
		got, err := Decode(sc, cod, buf)
		if err != nil {
			t.Fatalf("rel %d: decode: %v", i, err)
		}
		if !relation.Equal(sc, got, r) {
			t.Fatalf("rel %d: round trip changed the relation", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	sc := semiring.Count{}
	cod := Codec[int64]{Enc: func(v int64) uint64 { return uint64(v) }, Dec: func(u uint64) int64 { return int64(u) }}
	buf := Encode(randomRel(t, 5, []int{0, 1}, 8, 5), cod)
	for _, cut := range []int{1, 5, len(buf) - 3} {
		if _, err := Decode(sc, cod, buf[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes was accepted", cut)
		}
	}
}

func TestFloatCodecExactBits(t *testing.T) {
	sp := semiring.SumProduct{}
	cod := Codec[float64]{Enc: math.Float64bits, Dec: math.Float64frombits}
	b := relation.NewBuilder[float64](sp, []int{0})
	b.AddRow([]int32{0}, 0.1)
	b.AddRow([]int32{1}, -1e-300)
	b.AddRow([]int32{2}, math.Inf(1))
	r := b.Build()
	got, err := Decode(sp, cod, Encode(r, cod))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		if math.Float64bits(got.Value(i)) != math.Float64bits(r.Value(i)) {
			t.Fatalf("row %d: float bits changed across the wire", i)
		}
	}
}
