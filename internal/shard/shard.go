// Package shard partitions relations across cluster workers and
// serializes them for the wire.
//
// Placement is deterministic hash partitioning on a subset of each
// relation's columns (the star's join key): every row goes to
// hash(row[key]) mod W, computed with the same FNV chunking the netsim
// protocols use (internal/keys), so packed and string key codecs agree
// on placement and a re-run reproduces the same sharding exactly. An
// empty key hashes every row to worker 0 — the correct (if
// unparallelized) fallback when a star has no common join columns.
//
// The wire codec reuses the packed-key big-endian conventions: schema
// variables and tuple values travel as big-endian uint32 words (the
// bit patterns of their int32 values), annotations as per-semiring
// 8-byte words via a Codec. Decoding rebuilds the columnar segment
// through relation.Builder, so a decoded relation is bit-identical to
// the encoded one (sorted layout, merged duplicates).
package shard

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/keys"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// Positions maps the variables vs to their column positions in the
// sorted schema; a variable missing from the schema is an error.
func Positions(schema, vs []int) ([]int, error) {
	cols := make([]int, len(vs))
	for i, v := range vs {
		j := sort.SearchInts(schema, v)
		if j >= len(schema) || schema[j] != v {
			return nil, fmt.Errorf("shard: key variable %d not in schema %v", v, schema)
		}
		cols[i] = j
	}
	return cols, nil
}

// Assign returns the worker index for a tuple given the key column
// positions. An empty key assigns every tuple to worker 0.
func Assign(t []int32, cols []int, workers int) int {
	if workers <= 1 || len(cols) == 0 {
		return 0
	}
	if len(cols) <= keys.MaxPacked {
		return keys.Chunk(keys.PackCols(t, cols), len(cols), workers)
	}
	return keys.ChunkString(keys.EncodeCols(t, cols), workers)
}

// Split hash-partitions r into workers shards on the key variables.
// Every shard keeps the full schema (possibly with zero rows), so a
// receiving worker always learns the relation's shape. Within a shard,
// tuples keep their relative sorted order.
func Split[T any](s semiring.Semiring[T], r *relation.Relation[T], key []int, workers int) ([]*relation.Relation[T], error) {
	if workers < 1 {
		return nil, fmt.Errorf("shard: split across %d workers", workers)
	}
	cols, err := Positions(r.Schema(), key)
	if err != nil {
		return nil, err
	}
	builders := make([]*relation.Builder[T], workers)
	for w := range builders {
		builders[w] = relation.NewBuilder(s, r.Schema())
	}
	n := r.Len()
	for i := 0; i < n; i++ {
		t := r.Tuple(i)
		builders[Assign(t, cols, workers)].AddRow(t, r.Value(i))
	}
	out := make([]*relation.Relation[T], workers)
	for w, b := range builders {
		out[w] = b.Build()
	}
	return out, nil
}

// Codec converts semiring annotations to and from fixed 8-byte wire
// words. Enc/Dec must be exact inverses on every representable value.
type Codec[T any] struct {
	Enc func(T) uint64
	Dec func(uint64) T
}

// EncodedBytes returns the wire size of a relation with the given arity
// and row count: the schema header plus (4·arity + 8) bytes per row.
func EncodedBytes(arity, rows int) int {
	return 8 + 4*arity + rows*(4*arity+8)
}

// RowWireBytes is the per-tuple wire cost at a given arity — the unit
// the cluster bench compares against the paper's per-message tuple
// bounds.
func RowWireBytes(arity int) int { return 4*arity + 8 }

// Encode serializes r: [u32 arity][schema u32...][u32 rows]
// [per row: arity×u32 columns, u64 value], all big-endian.
func Encode[T any](r *relation.Relation[T], cod Codec[T]) []byte {
	schema := r.Schema()
	a := len(schema)
	n := r.Len()
	buf := make([]byte, 0, EncodedBytes(a, n))
	buf = binary.BigEndian.AppendUint32(buf, uint32(a))
	for _, v := range schema {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(v)))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	for i := 0; i < n; i++ {
		for _, x := range r.Tuple(i) {
			buf = binary.BigEndian.AppendUint32(buf, uint32(x))
		}
		buf = binary.BigEndian.AppendUint64(buf, cod.Enc(r.Value(i)))
	}
	return buf
}

// Decode rebuilds a relation from Encode's wire form.
func Decode[T any](s semiring.Semiring[T], cod Codec[T], buf []byte) (*relation.Relation[T], error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("shard: truncated relation header (%d bytes)", len(buf))
	}
	a := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	if a < 0 || len(buf) < 4*a+4 {
		return nil, fmt.Errorf("shard: truncated schema (arity %d, %d bytes left)", a, len(buf))
	}
	schema := make([]int, a)
	for i := range schema {
		schema[i] = int(int32(binary.BigEndian.Uint32(buf)))
		buf = buf[4:]
	}
	n := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	rowBytes := 4*a + 8
	if n < 0 || len(buf) != n*rowBytes {
		return nil, fmt.Errorf("shard: row section is %d bytes, want %d rows × %d", len(buf), n, rowBytes)
	}
	b := relation.NewBuilderHint(s, schema, n)
	row := make([]int32, a)
	for i := 0; i < n; i++ {
		for k := range row {
			row[k] = int32(binary.BigEndian.Uint32(buf))
			buf = buf[4:]
		}
		b.AddRow(row, cod.Dec(binary.BigEndian.Uint64(buf)))
		buf = buf[8:]
	}
	return b.Build(), nil
}
