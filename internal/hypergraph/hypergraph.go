// Package hypergraph implements the query multi-hypergraphs H = (V, E) of
// "Topology Dependent Bounds For FAQs" together with the structural
// machinery its bounds are built from: the GYO elimination algorithm
// (Definition 2.6), the core/forest decomposition C(H), W(H) and n₂(H)
// (Definitions 2.7 and 3.1), degeneracy (Definition 3.3), and the
// combinatorial primitives used by the lower-bound embeddings
// (short vertex-disjoint cycles via Moore's bound, independent sets via
// Turán's theorem, and strong independent sets, Appendix E and F).
package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Hypergraph is a multi-hypergraph over vertices 0..NumVertices()-1.
// Duplicate hyperedges are allowed (the paper's H₀ has four copies of the
// self-loop (A)). Edges store their vertex sets sorted ascending and
// deduplicated.
type Hypergraph struct {
	n     int
	edges [][]int
	names []string // optional vertex names; nil means numeric
}

// New returns an empty multi-hypergraph on n vertices.
func New(n int) *Hypergraph {
	if n < 0 {
		//faqlint:allow nopanic(programmer-error precondition: vertex counts come from validated queries)
		panic(fmt.Sprintf("hypergraph: negative vertex count %d", n))
	}
	return &Hypergraph{n: n}
}

// AddEdge appends a hyperedge on the given vertices and returns its index.
// Vertices are deduplicated and stored sorted. An edge must contain at
// least one vertex; out-of-range vertices are programmer errors and panic.
func (h *Hypergraph) AddEdge(vertices ...int) int {
	if len(vertices) == 0 {
		//faqlint:allow nopanic(programmer-error precondition: empty hyperedges are a construction bug)
		panic("hypergraph: empty hyperedge")
	}
	vs := append([]int(nil), vertices...)
	sort.Ints(vs)
	out := vs[:0]
	prev := -1
	for _, v := range vs {
		if v < 0 || v >= h.n {
			//faqlint:allow nopanic(programmer-error precondition: vertex range is fixed at construction)
			panic(fmt.Sprintf("hypergraph: vertex %d out of range [0,%d)", v, h.n))
		}
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	h.edges = append(h.edges, out)
	return len(h.edges) - 1
}

// NumVertices returns |V|.
func (h *Hypergraph) NumVertices() int { return h.n }

// NumEdges returns |E| (counting multiplicity).
func (h *Hypergraph) NumEdges() int { return len(h.edges) }

// Edge returns the sorted vertex set of edge e. The caller must not
// modify the returned slice.
func (h *Hypergraph) Edge(e int) []int { return h.edges[e] }

// Edges returns all edges; the caller must not modify them.
func (h *Hypergraph) Edges() [][]int { return h.edges }

// Arity returns the maximum edge size r, or 0 for an edgeless hypergraph.
func (h *Hypergraph) Arity() int {
	r := 0
	for _, e := range h.edges {
		if len(e) > r {
			r = len(e)
		}
	}
	return r
}

// Degree returns the number of edges containing vertex v (Definition 3.2).
func (h *Hypergraph) Degree(v int) int {
	d := 0
	for _, e := range h.edges {
		if containsSorted(e, v) {
			d++
		}
	}
	return d
}

// VertexName returns the display name of vertex v.
func (h *Hypergraph) VertexName(v int) string {
	if h.names != nil && v < len(h.names) {
		return h.names[v]
	}
	return fmt.Sprintf("x%d", v)
}

// EdgeString renders edge e as, e.g., "R3(A,B,C)".
func (h *Hypergraph) EdgeString(e int) string {
	parts := make([]string, len(h.edges[e]))
	for i, v := range h.edges[e] {
		parts[i] = h.VertexName(v)
	}
	return fmt.Sprintf("R%d(%s)", e, strings.Join(parts, ","))
}

// String renders the hypergraph for diagnostics.
func (h *Hypergraph) String() string {
	parts := make([]string, len(h.edges))
	for i := range h.edges {
		parts[i] = h.EdgeString(i)
	}
	return fmt.Sprintf("H{n=%d, %s}", h.n, strings.Join(parts, " "))
}

// Clone returns a deep copy of h.
func (h *Hypergraph) Clone() *Hypergraph {
	c := &Hypergraph{n: h.n}
	c.edges = make([][]int, len(h.edges))
	for i, e := range h.edges {
		c.edges[i] = append([]int(nil), e...)
	}
	if h.names != nil {
		c.names = append([]string(nil), h.names...)
	}
	return c
}

// IsSimpleGraph reports whether every edge has arity at most two, i.e. H
// is a (multi)graph in the sense of Section 4.
func (h *Hypergraph) IsSimpleGraph() bool { return h.Arity() <= 2 }

// IncidentEdges returns the indices of edges containing v.
func (h *Hypergraph) IncidentEdges(v int) []int {
	var out []int
	for i, e := range h.edges {
		if containsSorted(e, v) {
			out = append(out, i)
		}
	}
	return out
}

// VerticesOf returns the sorted union of the vertex sets of the given
// edges.
func (h *Hypergraph) VerticesOf(edgeIdx []int) []int {
	seen := make(map[int]bool)
	for _, e := range edgeIdx {
		for _, v := range h.edges[e] {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Builder constructs a hypergraph from named vertices, registering names
// on first use. It is the convenient front door for examples and tests:
//
//	b := hypergraph.NewBuilder()
//	b.Edge("A", "B", "C") // R(A,B,C)
//	b.Edge("B", "D")      // S(B,D)
//	h := b.Build()
type Builder struct {
	index map[string]int
	names []string
	edges [][]string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]int)}
}

// Vertex registers (or looks up) a named vertex and returns its id.
func (b *Builder) Vertex(name string) int {
	if id, ok := b.index[name]; ok {
		return id
	}
	id := len(b.names)
	b.index[name] = id
	b.names = append(b.names, name)
	return id
}

// Edge appends a hyperedge on the named vertices and returns its index.
func (b *Builder) Edge(names ...string) int {
	for _, n := range names {
		b.Vertex(n)
	}
	b.edges = append(b.edges, append([]string(nil), names...))
	return len(b.edges) - 1
}

// Build materializes the hypergraph.
func (b *Builder) Build() *Hypergraph {
	h := New(len(b.names))
	h.names = append([]string(nil), b.names...)
	for _, e := range b.edges {
		ids := make([]int, len(e))
		for i, n := range e {
			ids[i] = b.index[n]
		}
		h.AddEdge(ids...)
	}
	return h
}

// VertexID returns the id of a named vertex, or -1 if unknown.
func (b *Builder) VertexID(name string) int {
	if id, ok := b.index[name]; ok {
		return id
	}
	return -1
}

// containsSorted reports whether sorted slice s contains v.
func containsSorted(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// subsetSorted reports whether sorted slice a ⊆ sorted slice b.
func subsetSorted(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// IntersectSorted returns the intersection of two sorted slices.
func IntersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// UnionSorted returns the union of two sorted slices.
func UnionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// DiffSorted returns a \ b for sorted slices.
func DiffSorted(a, b []int) []int {
	var out []int
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// SubsetSorted reports whether sorted a ⊆ sorted b. Exported for use by
// the ghd package's running-intersection checks.
func SubsetSorted(a, b []int) bool { return subsetSorted(a, b) }

// ContainsSorted reports whether sorted s contains v.
func ContainsSorted(s []int, v int) bool { return containsSorted(s, v) }
