package hypergraph

// This file constructs the paper's running example hypergraphs (Figure 1
// and Appendix C.2) so that tests, benchmarks, and documentation all speak
// about the same objects.

// ExampleH0 is H₀ of Example 2.1: four self-loop relations
// R(A), S(A), T(A), U(A) on a single vertex A. BCQ of H₀ is the 4-way set
// intersection R ∩ S ∩ T ∩ U ≠ ∅.
func ExampleH0() *Hypergraph {
	b := NewBuilder()
	b.Edge("A") // R
	b.Edge("A") // S
	b.Edge("A") // T
	b.Edge("A") // U
	return b.Build()
}

// ExampleH1 is the star H₁ of Figure 1: R(A,B), S(A,C), T(A,D), U(A,E).
func ExampleH1() *Hypergraph {
	b := NewBuilder()
	b.Edge("A", "B") // R
	b.Edge("A", "C") // S
	b.Edge("A", "D") // T
	b.Edge("A", "E") // U
	return b.Build()
}

// ExampleH2 is the acyclic hypergraph H₂ of Figure 1:
// R(A,B,C), S(B,D), T(C,F), U(A,B,E). Its GYO-GHD T₁ rooted at (A,B,C)
// has a single internal node, so y(H₂) = 1 (Figure 2).
func ExampleH2() *Hypergraph {
	b := NewBuilder()
	b.Edge("A", "B", "C") // R
	b.Edge("B", "D")      // S
	b.Edge("C", "F")      // T
	b.Edge("A", "B", "E") // U
	return b.Build()
}

// ExampleH3 is the hypergraph of Appendix C.2 used to trace GYOA:
// e1=(A,B,C), e2=(B,C,D), e3=(A,C,D), e4=(A,B,E), e5=(A,F), e6=(B,G),
// e7=(G,H). GYOA removes e7, e6, e5, e4 (forest rooted at e4) and leaves
// the cyclic core {e1, e2, e3}; V(C(H₃)) = {A,B,C,D,E}, so n₂(H₃) = 5.
func ExampleH3() *Hypergraph {
	b := NewBuilder()
	b.Edge("A", "B", "C") // e1
	b.Edge("B", "C", "D") // e2
	b.Edge("A", "C", "D") // e3
	b.Edge("A", "B", "E") // e4
	b.Edge("A", "F")      // e5
	b.Edge("B", "G")      // e6
	b.Edge("G", "H")      // e7
	return b.Build()
}

// PathGraph returns the path query x₀ — x₁ — ... — x_{n-1} with n-1
// binary relations, a canonical constant-treewidth (hence
// 1-degenerate) query.
func PathGraph(n int) *Hypergraph {
	h := New(n)
	for i := 0; i+1 < n; i++ {
		h.AddEdge(i, i+1)
	}
	return h
}

// StarGraph returns a star query with center 0 and k leaf relations
// (0, i) for i = 1..k, generalizing H₁.
func StarGraph(k int) *Hypergraph {
	h := New(k + 1)
	for i := 1; i <= k; i++ {
		h.AddEdge(0, i)
	}
	return h
}

// CycleGraph returns the n-cycle query (n ≥ 3), the canonical
// 2-degenerate cyclic query.
func CycleGraph(n int) *Hypergraph {
	h := New(n)
	for i := 0; i < n; i++ {
		h.AddEdge(i, (i+1)%n)
	}
	return h
}

// CliqueGraph returns the k-clique query of the paper's open problem
// (Appendix B), with all C(k,2) binary relations.
func CliqueGraph(k int) *Hypergraph {
	h := New(k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			h.AddEdge(i, j)
		}
	}
	return h
}
