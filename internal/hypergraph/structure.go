package hypergraph

import (
	"math"
	"sort"
)

// SimpleAdjacency returns, for an arity-≤2 hypergraph, the adjacency list
// of the underlying simple graph (self-loops ignored, multi-edges
// collapsed). It panics if h has arity > 2 (programmer error: callers
// gate on IsSimpleGraph).
func SimpleAdjacency(h *Hypergraph) [][]int {
	if !h.IsSimpleGraph() {
		//faqlint:allow nopanic(programmer-error precondition: SimpleAdjacency is documented for arity <= 2)
		panic("hypergraph: SimpleAdjacency requires arity ≤ 2")
	}
	seen := make(map[[2]int]bool)
	adj := make([][]int, h.n)
	for _, e := range h.edges {
		if len(e) != 2 {
			continue
		}
		u, v := e[0], e[1]
		k := [2]int{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for _, a := range adj {
		sort.Ints(a)
	}
	return adj
}

// IsGraphForest reports whether the underlying simple graph of an
// arity-≤2 hypergraph is a forest (no cycles among the arity-2 edges,
// counting parallel edges as a cycle).
func IsGraphForest(h *Hypergraph) bool {
	if !h.IsSimpleGraph() {
		return false
	}
	parent := make([]int, h.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range h.edges {
		if len(e) != 2 {
			continue
		}
		ru, rv := find(e[0]), find(e[1])
		if ru == rv {
			return false
		}
		parent[ru] = rv
	}
	return true
}

// ForestLevelSets computes, for a forest simple graph, the two candidate
// sets O_L and O_R of Lemma 4.3: vertices of degree ≥ 2 at even and odd
// BFS depth from each tree's root. The lemma embeds one DISJ instance per
// vertex of the larger side, so TRIBES size m = max(|O_L|, |O_R|) ≥ y/2.
func ForestLevelSets(h *Hypergraph) (even, odd []int) {
	adj := SimpleAdjacency(h)
	depth := make([]int, h.n)
	for i := range depth {
		depth[i] = -1
	}
	for r := 0; r < h.n; r++ {
		if depth[r] != -1 || len(adj[r]) == 0 {
			continue
		}
		depth[r] = 0
		queue := []int{r}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if depth[v] == -1 {
					depth[v] = depth[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	for v := 0; v < h.n; v++ {
		if len(adj[v]) < 2 || depth[v] < 0 {
			continue
		}
		if depth[v]%2 == 0 {
			even = append(even, v)
		} else {
			odd = append(odd, v)
		}
	}
	return even, odd
}

// Cycle is a vertex-disjoint cycle found in a simple graph, listed in
// traversal order (c₁, c₂, ..., c_ℓ) with ℓ ≥ 3, or ℓ = 2 for a pair of
// parallel edges.
type Cycle []int

// ShortVertexDisjointCycles implements Case 1 of Lemma E.2: while the
// surviving subgraph has average degree above the threshold (the paper
// uses 10), Moore's bound (Lemma E.1) guarantees a cycle of length at
// most maxLen; we find a shortest cycle by BFS, collect it, delete its
// vertices, and repeat. Returns the collected vertex-disjoint cycles of
// length ≤ maxLen.
func ShortVertexDisjointCycles(h *Hypergraph, maxLen int, avgDegreeThreshold float64) []Cycle {
	adjFull := SimpleAdjacency(h)
	alive := make([]bool, h.n)
	for i := range alive {
		alive[i] = true
	}
	var cycles []Cycle
	for {
		// Current average degree over alive vertices that have edges.
		nAlive, mAlive := 0, 0
		for v := 0; v < h.n; v++ {
			if !alive[v] {
				continue
			}
			cnt := 0
			for _, u := range adjFull[v] {
				if alive[u] {
					cnt++
				}
			}
			if cnt > 0 {
				nAlive++
				mAlive += cnt
			}
		}
		if nAlive == 0 || float64(mAlive)/float64(nAlive) <= avgDegreeThreshold {
			break
		}
		c := shortestCycle(adjFull, alive, maxLen)
		if c == nil {
			break
		}
		cycles = append(cycles, c)
		for _, v := range c {
			alive[v] = false
		}
	}
	return cycles
}

// shortestCycle finds a shortest cycle of length ≤ maxLen among alive
// vertices using BFS from every vertex, or nil.
func shortestCycle(adj [][]int, alive []bool, maxLen int) Cycle {
	n := len(adj)
	var best Cycle
	parent := make([]int, n)
	depth := make([]int, n)
	for s := 0; s < n; s++ {
		if !alive[s] {
			continue
		}
		for i := range depth {
			depth[i] = -1
		}
		depth[s] = 0
		parent[s] = -1
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !alive[v] {
					continue
				}
				if depth[v] == -1 {
					depth[v] = depth[u] + 1
					parent[v] = u
					queue = append(queue, v)
					continue
				}
				if v == parent[u] {
					continue
				}
				// Cross edge (u, v): cycle through s of length
				// depth[u] + depth[v] + 1 (an upper bound on the
				// shortest cycle through this edge).
				cyc := traceCycle(parent, depth, u, v)
				if cyc == nil {
					continue
				}
				if len(cyc) <= maxLen && (best == nil || len(cyc) < len(best)) {
					best = cyc
				}
			}
		}
		if best != nil && len(best) == 3 {
			return best // cannot do better in a simple graph
		}
	}
	return best
}

// traceCycle reconstructs the cycle closed by cross edge (u, v) in a BFS
// tree: walk both vertices up to their lowest common ancestor.
func traceCycle(parent, depth []int, u, v int) Cycle {
	var pu, pv []int
	a, b := u, v
	for depth[a] > depth[b] {
		pu = append(pu, a)
		a = parent[a]
	}
	for depth[b] > depth[a] {
		pv = append(pv, b)
		b = parent[b]
	}
	for a != b {
		pu = append(pu, a)
		pv = append(pv, b)
		a = parent[a]
		b = parent[b]
	}
	cyc := make(Cycle, 0, len(pu)+len(pv)+1)
	cyc = append(cyc, pu...)
	cyc = append(cyc, a)
	for i := len(pv) - 1; i >= 0; i-- {
		cyc = append(cyc, pv[i])
	}
	if len(cyc) < 3 {
		return nil
	}
	return cyc
}

// GreedyIndependentSet returns an independent set of the underlying simple
// graph using the min-degree greedy rule, which achieves Turán's bound of
// n′/(d̄+1) vertices where d̄ is the average degree (Theorem E.1).
// Only vertices with alive[v] (or all vertices if alive is nil) are
// considered.
func GreedyIndependentSet(h *Hypergraph, alive []bool) []int {
	adj := SimpleAdjacency(h)
	n := h.n
	avail := make([]bool, n)
	for v := 0; v < n; v++ {
		avail[v] = alive == nil || alive[v]
	}
	var out []int
	for {
		best, bestDeg := -1, math.MaxInt
		for v := 0; v < n; v++ {
			if !avail[v] {
				continue
			}
			d := 0
			for _, u := range adj[v] {
				if avail[u] {
					d++
				}
			}
			if d < bestDeg {
				best, bestDeg = v, d
			}
		}
		if best == -1 {
			break
		}
		out = append(out, best)
		avail[best] = false
		for _, u := range adj[best] {
			avail[u] = false
		}
	}
	sort.Ints(out)
	return out
}

// StrongIndependentSet returns a strong independent set of h
// (Definition F.4): no two chosen vertices share any hyperedge. The
// greedy rule (pick a vertex, discard all vertices co-occurring with it)
// matches the constructive proof used in Theorem F.8 and achieves the
// Ω(|V|/(d·(r−1))) size of Theorem F.5 up to constants. The restrict
// argument, if non-nil, limits candidates to that vertex set.
func StrongIndependentSet(h *Hypergraph, restrict []int) []int {
	n := h.n
	avail := make([]bool, n)
	if restrict == nil {
		for v := range avail {
			avail[v] = true
		}
	} else {
		for _, v := range restrict {
			avail[v] = true
		}
	}
	// Precompute co-occurrence neighborhoods.
	nbr := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		nbr[v] = make(map[int]bool)
	}
	for _, e := range h.edges {
		for _, u := range e {
			for _, v := range e {
				if u != v {
					nbr[u][v] = true
				}
			}
		}
	}
	var out []int
	for {
		best, bestDeg := -1, math.MaxInt
		for v := 0; v < n; v++ {
			if !avail[v] {
				continue
			}
			d := 0
			for u := range nbr[v] {
				if avail[u] {
					d++
				}
			}
			if d < bestDeg {
				best, bestDeg = v, d
			}
		}
		if best == -1 {
			break
		}
		out = append(out, best)
		avail[best] = false
		for u := range nbr[best] {
			avail[u] = false
		}
	}
	sort.Ints(out)
	return out
}

// IsStrongIndependentSet verifies Definition F.4 for a candidate set.
func IsStrongIndependentSet(h *Hypergraph, set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, e := range h.edges {
		cnt := 0
		for _, v := range e {
			if in[v] {
				cnt++
			}
		}
		if cnt > 1 {
			return false
		}
	}
	return true
}
