package hypergraph

import (
	"fmt"
	"sort"
)

// GYOStepKind distinguishes the two reduction rules of the GYO algorithm
// (Definition 2.6).
type GYOStepKind int

const (
	// EliminateVertex removes a vertex contained in exactly one edge
	// (rule (a)).
	EliminateVertex GYOStepKind = iota
	// DeleteEdge removes an edge contained in another edge (rule (b)).
	DeleteEdge
)

// GYOStep records one application of a GYO rule, for tracing.
type GYOStep struct {
	Kind   GYOStepKind
	Vertex int // for EliminateVertex: the eliminated vertex
	Edge   int // the edge operated on
	Into   int // for DeleteEdge: the subsuming edge, or -1
}

// String renders a step for diagnostics.
func (s GYOStep) String() string {
	if s.Kind == EliminateVertex {
		return fmt.Sprintf("eliminate v%d from e%d", s.Vertex, s.Edge)
	}
	return fmt.Sprintf("delete e%d ⊆ e%d", s.Edge, s.Into)
}

// GYOResult is the outcome of running the GYO algorithm on a hypergraph.
//
// The removed edges form a forest of acyclic hypergraphs (Lemma 4.8 of
// Koutris's notes, cited as [40] in the paper): Parent[e] is the edge that
// subsumed e at its removal, which may itself have been removed later
// (forming the forest), may belong to the leftover reduction H′, or may be
// -1 when e was the final edge of a fully acyclic component.
type GYOResult struct {
	// RemovedOrder lists removed edge indices in removal order.
	RemovedOrder []int
	// Parent maps each edge index to the subsuming edge, or -1. Entries
	// for edges in CoreEdges are -1.
	Parent []int
	// CoreEdges lists the edges of the GYO-reduction H′ (leftover edges),
	// in index order.
	CoreEdges []int
	// Steps is the full trace.
	Steps []GYOStep
}

// Removed reports whether edge e was removed by the reduction.
func (r *GYOResult) Removed(e int) bool {
	for _, x := range r.RemovedOrder {
		if x == e {
			return true
		}
	}
	return false
}

// RunGYO executes the GYO algorithm (GYOA, Definition 2.6) on h and
// returns the reduction trace. The algorithm repeatedly (a) eliminates a
// vertex present in only one active edge and (b) deletes an active edge
// whose (current, possibly shrunken) vertex set is contained in another
// active edge, until neither rule applies. Rule application order is
// deterministic: the lowest-numbered applicable vertex/edge is used, which
// makes traces reproducible.
func RunGYO(h *Hypergraph) *GYOResult {
	m := h.NumEdges()
	active := make([]bool, m)
	cur := make([][]int, m)
	for i := range cur {
		active[i] = true
		cur[i] = append([]int(nil), h.edges[i]...)
	}
	res := &GYOResult{Parent: make([]int, m)}
	for i := range res.Parent {
		res.Parent[i] = -1
	}

	deg := make([]int, h.n) // active-edge degree per vertex
	for i, e := range cur {
		_ = i
		for _, v := range e {
			deg[v]++
		}
	}

	removeEdge := func(e, into int) {
		active[e] = false
		for _, v := range cur[e] {
			deg[v]--
		}
		res.RemovedOrder = append(res.RemovedOrder, e)
		res.Parent[e] = into
		res.Steps = append(res.Steps, GYOStep{Kind: DeleteEdge, Edge: e, Into: into})
	}

	for {
		progressed := false
		// Rule (a): eliminate a degree-1 vertex.
		for v := 0; v < h.n; v++ {
			if deg[v] != 1 {
				continue
			}
			for e := 0; e < m; e++ {
				if !active[e] || !containsSorted(cur[e], v) {
					continue
				}
				cur[e] = DiffSorted(cur[e], []int{v})
				deg[v] = 0
				res.Steps = append(res.Steps, GYOStep{Kind: EliminateVertex, Vertex: v, Edge: e})
				progressed = true
				break
			}
			if progressed {
				break
			}
		}
		if progressed {
			continue
		}
		// Rule (b): delete a subsumed edge. An edge whose current set has
		// drained to empty carries no constraints and is removed with
		// witness -1 (this is how a fully acyclic component finishes);
		// tying it to an arbitrary other edge would fabricate join-tree
		// attachments across unrelated components.
		for e := 0; e < m && !progressed; e++ {
			if !active[e] {
				continue
			}
			if len(cur[e]) == 0 {
				removeEdge(e, -1)
				progressed = true
				break
			}
			for f := 0; f < m; f++ {
				if f == e || !active[f] {
					continue
				}
				if subsetSorted(cur[e], cur[f]) {
					removeEdge(e, f)
					progressed = true
					break
				}
			}
		}
		if !progressed {
			break
		}
	}

	for e := 0; e < m; e++ {
		if active[e] {
			res.CoreEdges = append(res.CoreEdges, e)
		}
	}
	sort.Ints(res.CoreEdges)
	return res
}

// IsAcyclic reports whether h is α-acyclic (Definition 2.5): the GYO
// reduction leaves no edges.
func IsAcyclic(h *Hypergraph) bool {
	return len(RunGYO(h).CoreEdges) == 0
}

// Decomposition is the core/forest split of Definition 2.7: W(H) is the
// forest of hyperedges removed by GYOA; C(H) is the union of the
// GYO-reduction H′ and the root edge of each tree of the forest.
type Decomposition struct {
	H *Hypergraph
	// GYO is the reduction trace the decomposition was derived from. Its
	// Parent witnesses drive the join-tree (GYO-GHD) construction.
	GYO *GYOResult
	// Core lists the edge indices of the GYO-reduction H′.
	Core []int
	// Trees lists the forest trees. Each tree's edges were removed by
	// GYOA; Root is the tree's root edge (which the paper places in
	// C(H)).
	Trees []ForestTree
	// CoreVertices is V(C(H)): the sorted union of the original vertex
	// sets of Core edges and tree-root edges. n₂(H) = len(CoreVertices)
	// when Core is nonempty.
	CoreVertices []int
}

// ForestTree is one acyclic tree of the removed-edge forest. Parent maps
// a tree edge to its parent edge within the tree; the Root's parent is
// outside the tree (a core edge or nothing).
type ForestTree struct {
	Root   int
	Edges  []int       // all edges of the tree, including Root
	Parent map[int]int // within-tree parent; Root absent
}

// Decompose runs GYOA on h and assembles the core/forest decomposition.
func Decompose(h *Hypergraph) *Decomposition {
	res := RunGYO(h)
	return decomposeFrom(h, res)
}

func decomposeFrom(h *Hypergraph, res *GYOResult) *Decomposition {
	d := &Decomposition{H: h, GYO: res, Core: append([]int(nil), res.CoreEdges...)}
	// Group removed edges into trees: two removed edges belong to the
	// same pendant tree when their original vertex sets intersect
	// (transitively). Appendix C.2 groups e5, e6, e7 with e4 this way and
	// roots the tree at e4, the member removed last — the edge whose
	// reduction finally collapsed into the core.
	removed := res.RemovedOrder
	parentDSU := make(map[int]int, len(removed))
	var find func(int) int
	find = func(x int) int {
		for parentDSU[x] != x {
			parentDSU[x] = parentDSU[parentDSU[x]]
			x = parentDSU[x]
		}
		return x
	}
	for _, e := range removed {
		parentDSU[e] = e
	}
	for i, e := range removed {
		for _, f := range removed[i+1:] {
			if len(IntersectSorted(h.edges[e], h.edges[f])) > 0 {
				re, rf := find(e), find(f)
				if re != rf {
					parentDSU[re] = rf
				}
			}
		}
	}
	groups := make(map[int][]int)
	for _, e := range removed {
		groups[find(e)] = append(groups[find(e)], e)
	}
	// The GYO removal schedule is nondeterministic; "the root" of a
	// pendant tree is pinned down instead as the member edge whose
	// original vertex set overlaps the GYO-reduction H′ the most — the
	// tree's attachment to the core (Appendix C.2 roots H₃'s tree at
	// e4 = (A,B,E), the member meeting the core in {A,B}). Ties break to
	// the lowest edge index.
	//
	// Only EXIT edges — members whose subsumption witness lies outside
	// the tree (a core edge, or nothing) — are root candidates: the
	// GYO-GHD construction attaches removed edges under their witnesses,
	// so exits are exactly the edges that end up adjacent to the fat
	// root, and V(C(H)) absorbs the root's vertex set, which the running
	// intersection property then needs next to the fat root. (A
	// non-exit root would sit buried mid-chain while its vertices sat in
	// χ(r′), making the construction invalid — previously reachable via
	// empty-core disconnected forests, where every core overlap is 0 and
	// the plain lowest-index tie-break could pick a mid-chain member.)
	coreVerts := h.VerticesOf(res.CoreEdges)
	inTree := make(map[int]map[int]bool, len(groups))
	for g, members := range groups {
		set := make(map[int]bool, len(members))
		for _, e := range members {
			set[e] = true
		}
		inTree[g] = set
	}
	for g, members := range groups {
		sort.Ints(members)
		root, best := -1, -1
		for _, e := range members {
			if w := res.Parent[e]; w != -1 && inTree[g][w] {
				continue // witness inside the tree: not an exit
			}
			if ov := len(IntersectSorted(h.edges[e], coreVerts)); ov > best {
				root, best = e, ov
			}
		}
		t := ForestTree{Root: root, Parent: make(map[int]int)}
		t.Edges = append([]int(nil), members...)
		sort.Ints(t.Edges)
		// Within-tree parents: BFS from the root over shared-vertex
		// adjacency among tree members. The resulting tree is the shape
		// the GYO-GHD construction and the forest protocol traverse.
		placed := map[int]bool{root: true}
		queue := []int{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range t.Edges {
				if placed[e] {
					continue
				}
				if len(IntersectSorted(h.edges[cur], h.edges[e])) > 0 {
					t.Parent[e] = cur
					placed[e] = true
					queue = append(queue, e)
				}
			}
		}
		d.Trees = append(d.Trees, t)
	}
	sort.Slice(d.Trees, func(i, j int) bool { return d.Trees[i].Root < d.Trees[j].Root })

	coreLike := append([]int(nil), d.Core...)
	for _, t := range d.Trees {
		coreLike = append(coreLike, t.Root)
	}
	d.CoreVertices = h.VerticesOf(coreLike)
	return d
}

// CoreIsEmpty reports whether the GYO-reduction H′ is empty, i.e. h is
// acyclic. In that case the general protocol degenerates to the pure
// forest protocol of Lemma 4.1 and the τ_MCF core term vanishes.
func (d *Decomposition) CoreIsEmpty() bool { return len(d.Core) == 0 }

// N2 returns n₂(H) = |V(C(H))| (Definition 3.1). For acyclic H the core
// term of the paper's bounds is absent (Lemma 4.1 has no τ_MCF term), so
// N2 returns 0 when the GYO-reduction is empty; see DESIGN.md.
func (d *Decomposition) N2() int {
	if d.CoreIsEmpty() {
		return 0
	}
	return len(d.CoreVertices)
}

// TreeChildren returns, for tree t, a map from each edge to its child
// edges within the tree (inverse of Parent).
func (t *ForestTree) TreeChildren() map[int][]int {
	ch := make(map[int][]int)
	for e, p := range t.Parent {
		ch[p] = append(ch[p], e)
	}
	for _, c := range ch {
		sort.Ints(c)
	}
	return ch
}

// Degeneracy returns the degeneracy d of h (Definition 3.3): the smallest
// d such that every subhypergraph has a vertex of degree at most d.
// It is computed by the standard min-degree peeling: repeatedly remove a
// minimum-degree vertex together with all incident edges; the answer is
// the maximum degree seen at removal time. For simple graphs this is the
// usual graph degeneracy (trees: 1, cycles: 2, cliques: k-1).
func Degeneracy(h *Hypergraph) int {
	n := h.n
	m := h.NumEdges()
	alive := make([]bool, n)
	edgeAlive := make([]bool, m)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
	}
	for i, e := range h.edges {
		edgeAlive[i] = true
		for _, v := range e {
			deg[v]++
		}
	}
	// Only vertices that appear in at least one edge matter; isolated
	// vertices have degree 0 and never raise the degeneracy.
	d := 0
	for removed := 0; removed < n; removed++ {
		best, bestDeg := -1, int(^uint(0)>>1)
		for v := 0; v < n; v++ {
			if alive[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if best == -1 {
			break
		}
		if bestDeg > d {
			d = bestDeg
		}
		alive[best] = false
		for _, ei := range h.IncidentEdges(best) {
			if !edgeAlive[ei] {
				continue
			}
			edgeAlive[ei] = false
			for _, u := range h.edges[ei] {
				if alive[u] {
					deg[u]--
				}
			}
		}
	}
	return d
}
