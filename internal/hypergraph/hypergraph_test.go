package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBuilderNamesAndEdges(t *testing.T) {
	b := NewBuilder()
	r := b.Edge("A", "B", "C")
	s := b.Edge("B", "D")
	h := b.Build()
	if h.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", h.NumVertices())
	}
	if h.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", h.NumEdges())
	}
	if got := h.Edge(r); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("edge R = %v", got)
	}
	if got := h.Edge(s); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("edge S = %v", got)
	}
	if h.VertexName(3) != "D" {
		t.Errorf("VertexName(3) = %q", h.VertexName(3))
	}
}

func TestAddEdgeDedupAndSort(t *testing.T) {
	h := New(5)
	e := h.AddEdge(3, 1, 3, 2, 1)
	if got := h.Edge(e); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("edge = %v, want [1 2 3]", got)
	}
}

func TestAddEdgePanics(t *testing.T) {
	h := New(2)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"empty", func() { h.AddEdge() }},
		{"range", func() { h.AddEdge(5) }},
		{"negative", func() { h.AddEdge(-1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestDegreeAndArity(t *testing.T) {
	h := ExampleH1()
	if got := h.Degree(0); got != 4 { // A in all four relations
		t.Errorf("deg(A) = %d, want 4", got)
	}
	if got := h.Degree(1); got != 1 {
		t.Errorf("deg(B) = %d, want 1", got)
	}
	if got := h.Arity(); got != 2 {
		t.Errorf("arity = %d, want 2", got)
	}
	if got := ExampleH2().Arity(); got != 3 {
		t.Errorf("arity(H2) = %d, want 3", got)
	}
}

func TestAcyclicity(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want bool
	}{
		{"H0 self-loops", ExampleH0(), true},
		{"H1 star", ExampleH1(), true},
		{"H2", ExampleH2(), true},
		{"H3 has cyclic core", ExampleH3(), false},
		{"path", PathGraph(6), true},
		{"triangle", CycleGraph(3), false},
		{"4-cycle", CycleGraph(4), false},
		{"clique4", CliqueGraph(4), false},
	}
	for _, c := range cases {
		if got := IsAcyclic(c.h); got != c.want {
			t.Errorf("IsAcyclic(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTriangleWithCoveringEdgeIsAcyclic(t *testing.T) {
	// {A,B},{B,C},{A,C},{A,B,C}: the big edge subsumes the triangle.
	b := NewBuilder()
	b.Edge("A", "B")
	b.Edge("B", "C")
	b.Edge("A", "C")
	b.Edge("A", "B", "C")
	if !IsAcyclic(b.Build()) {
		t.Error("triangle + covering edge should be α-acyclic")
	}
}

func TestGYOTraceH3(t *testing.T) {
	// Appendix C.2: GYOA on H3 leaves core {e1, e2, e3}; the removed
	// edges {e4, e5, e6, e7} form one tree rooted at e4.
	h := ExampleH3()
	res := RunGYO(h)
	if !reflect.DeepEqual(res.CoreEdges, []int{0, 1, 2}) {
		t.Fatalf("core = %v, want [0 1 2]", res.CoreEdges)
	}
	d := Decompose(h)
	if len(d.Trees) != 1 {
		t.Fatalf("trees = %d, want 1: %+v", len(d.Trees), d.Trees)
	}
	if d.Trees[0].Root != 3 { // e4
		t.Errorf("tree root = e%d, want e3 (paper's e4)", d.Trees[0].Root)
	}
	if !reflect.DeepEqual(d.Trees[0].Edges, []int{3, 4, 5, 6}) {
		t.Errorf("tree edges = %v, want [3 4 5 6]", d.Trees[0].Edges)
	}
	// V(C(H3)) = {A,B,C,D,E} so n2 = 5.
	if got := d.N2(); got != 5 {
		t.Errorf("n2(H3) = %d, want 5", got)
	}
	if !reflect.DeepEqual(d.CoreVertices, []int{0, 1, 2, 3, 4}) {
		t.Errorf("core vertices = %v, want [0 1 2 3 4]", d.CoreVertices)
	}
}

func TestDecomposeAcyclic(t *testing.T) {
	for _, tc := range []struct {
		name  string
		h     *Hypergraph
		trees int
	}{
		{"H1", ExampleH1(), 1},
		{"H2", ExampleH2(), 1},
		{"path", PathGraph(5), 1},
		{"two components", func() *Hypergraph {
			h := New(4)
			h.AddEdge(0, 1)
			h.AddEdge(2, 3)
			return h
		}(), 2},
	} {
		d := Decompose(tc.h)
		if !d.CoreIsEmpty() {
			t.Errorf("%s: core should be empty, got %v", tc.name, d.Core)
		}
		if d.N2() != 0 {
			t.Errorf("%s: N2 = %d, want 0 for acyclic", tc.name, d.N2())
		}
		if len(d.Trees) != tc.trees {
			t.Errorf("%s: trees = %d, want %d", tc.name, len(d.Trees), tc.trees)
		}
		total := 0
		for _, tr := range d.Trees {
			total += len(tr.Edges)
		}
		if total != tc.h.NumEdges() {
			t.Errorf("%s: forest covers %d edges, want %d", tc.name, total, tc.h.NumEdges())
		}
	}
}

func TestDecomposeCyclicCoreOnly(t *testing.T) {
	h := CycleGraph(5)
	d := Decompose(h)
	if len(d.Core) != 5 {
		t.Fatalf("cycle core = %v, want all 5 edges", d.Core)
	}
	if len(d.Trees) != 0 {
		t.Fatalf("cycle should have no forest trees, got %d", len(d.Trees))
	}
	if d.N2() != 5 {
		t.Errorf("n2(C5) = %d, want 5", d.N2())
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want int
	}{
		{"star", ExampleH1(), 1},
		{"path", PathGraph(8), 1},
		{"cycle", CycleGraph(6), 2},
		{"clique4", CliqueGraph(4), 3},
		{"clique6", CliqueGraph(6), 5},
		{"H2", ExampleH2(), 1},
	}
	for _, c := range cases {
		if got := Degeneracy(c.h); got != c.want {
			t.Errorf("Degeneracy(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDegeneracySubgraphProperty(t *testing.T) {
	// Property (Definition 3.3): for random graphs, every induced
	// subgraph must contain a vertex of degree ≤ Degeneracy(h).
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(8)
		h := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					h.AddEdge(i, j)
				}
			}
		}
		d := Degeneracy(h)
		// Check a few random induced subgraphs.
		for s := 0; s < 10; s++ {
			keep := make([]bool, n)
			any := false
			for v := 0; v < n; v++ {
				if r.Intn(2) == 0 {
					keep[v] = true
					any = true
				}
			}
			if !any {
				continue
			}
			minDeg, hasVertex := n+1, false
			for v := 0; v < n; v++ {
				if !keep[v] {
					continue
				}
				deg := 0
				for _, ei := range h.IncidentEdges(v) {
					e := h.Edge(ei)
					all := true
					for _, u := range e {
						if !keep[u] {
							all = false
							break
						}
					}
					if all {
						deg++
					}
				}
				hasVertex = true
				if deg < minDeg {
					minDeg = deg
				}
			}
			if hasVertex && minDeg > d {
				t.Fatalf("subgraph min degree %d exceeds degeneracy %d", minDeg, d)
			}
		}
	}
}

func TestForestLevelSets(t *testing.T) {
	// Path x0-x1-x2-x3-x4: internal vertices x1,x2,x3; depths 1,2,3 from
	// root x0. Even side {x2}, odd side {x1,x3}.
	even, odd := ForestLevelSets(PathGraph(5))
	if !reflect.DeepEqual(even, []int{2}) {
		t.Errorf("even = %v, want [2]", even)
	}
	if !reflect.DeepEqual(odd, []int{1, 3}) {
		t.Errorf("odd = %v, want [1 3]", odd)
	}
	// Star: only the center has degree ≥ 2, at depth 0.
	even, odd = ForestLevelSets(StarGraph(5))
	if !reflect.DeepEqual(even, []int{0}) || len(odd) != 0 {
		t.Errorf("star level sets = %v, %v", even, odd)
	}
}

func TestShortVertexDisjointCycles(t *testing.T) {
	// Two disjoint triangles plus enough edges to push the average
	// degree over the threshold: use K4 ∪ K4 (avg degree 3).
	h := New(8)
	for _, base := range []int{0, 4} {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				h.AddEdge(base+i, base+j)
			}
		}
	}
	cycles := ShortVertexDisjointCycles(h, 4, 2.5)
	if len(cycles) < 2 {
		t.Fatalf("found %d cycles, want ≥ 2: %v", len(cycles), cycles)
	}
	used := make(map[int]bool)
	for _, c := range cycles {
		if len(c) < 3 || len(c) > 4 {
			t.Errorf("cycle length %d outside [3,4]: %v", len(c), c)
		}
		for _, v := range c {
			if used[v] {
				t.Errorf("cycles not vertex-disjoint at %d", v)
			}
			used[v] = true
		}
	}
}

func TestCycleValidity(t *testing.T) {
	// Every returned cycle must be a real closed walk in the graph.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 6 + r.Intn(10)
		h := New(n)
		adj := make(map[[2]int]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(2) == 0 {
					h.AddEdge(i, j)
					adj[[2]int{i, j}] = true
				}
			}
		}
		for _, c := range ShortVertexDisjointCycles(h, n, 1.0) {
			for i := range c {
				u, v := c[i], c[(i+1)%len(c)]
				if u > v {
					u, v = v, u
				}
				if !adj[[2]int{u, v}] {
					t.Fatalf("cycle %v uses non-edge (%d,%d)", c, u, v)
				}
			}
		}
	}
}

func TestGreedyIndependentSet(t *testing.T) {
	h := CliqueGraph(6)
	is := GreedyIndependentSet(h, nil)
	if len(is) != 1 {
		t.Errorf("IS in K6 has size %d, want 1", len(is))
	}
	h = PathGraph(7)
	is = GreedyIndependentSet(h, nil)
	if len(is) < 3 {
		t.Errorf("IS in P7 has size %d, want ≥ 3", len(is))
	}
	// Validity on random graphs, plus the Turán bound n/(d+1) where d is
	// max degree (weaker than average-degree Turán, still a guarantee
	// min-degree greedy meets).
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(10)
		h := New(n)
		edges := make(map[[2]int]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					h.AddEdge(i, j)
					edges[[2]int{i, j}] = true
				}
			}
		}
		is := GreedyIndependentSet(h, nil)
		for i := 0; i < len(is); i++ {
			for j := i + 1; j < len(is); j++ {
				if edges[[2]int{is[i], is[j]}] {
					t.Fatalf("not independent: %d-%d", is[i], is[j])
				}
			}
		}
		maxDeg := 0
		for v := 0; v < n; v++ {
			if d := h.Degree(v); d > maxDeg {
				maxDeg = d
			}
		}
		if len(is)*(maxDeg+1) < n {
			t.Fatalf("greedy IS size %d below n/(Δ+1) = %d/%d", len(is), n, maxDeg+1)
		}
	}
}

func TestStrongIndependentSet(t *testing.T) {
	// In H2, vertices D and F never co-occur; A,B,C do co-occur.
	h := ExampleH2()
	sis := StrongIndependentSet(h, nil)
	if !IsStrongIndependentSet(h, sis) {
		t.Fatalf("greedy set %v is not strongly independent", sis)
	}
	if len(sis) < 2 {
		t.Errorf("strong IS size %d, want ≥ 2", len(sis))
	}
	// Theorem F.5 bound on random hypergraphs: |SIS| ≥ n/(d·(r-1)) with
	// d = degeneracy. Greedy meets the weaker max-codegree bound; we
	// assert validity plus non-triviality.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 6 + r.Intn(8)
		h := New(n)
		for e := 0; e < n; e++ {
			k := 2 + r.Intn(2)
			vs := r.Perm(n)[:k]
			h.AddEdge(vs...)
		}
		sis := StrongIndependentSet(h, nil)
		if !IsStrongIndependentSet(h, sis) {
			t.Fatalf("invalid strong IS %v for %v", sis, h)
		}
		if len(sis) == 0 {
			t.Fatalf("empty strong IS for nonempty hypergraph")
		}
	}
}

func TestSortedSetHelpers(t *testing.T) {
	if got := IntersectSorted([]int{1, 3, 5, 7}, []int{3, 4, 5}); !reflect.DeepEqual(got, []int{3, 5}) {
		t.Errorf("IntersectSorted = %v", got)
	}
	if got := UnionSorted([]int{1, 3}, []int{2, 3, 4}); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("UnionSorted = %v", got)
	}
	if got := DiffSorted([]int{1, 2, 3, 4}, []int{2, 4}); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("DiffSorted = %v", got)
	}
	if !SubsetSorted([]int{2, 4}, []int{1, 2, 3, 4}) {
		t.Error("SubsetSorted([2 4], [1 2 3 4]) = false")
	}
	if SubsetSorted([]int{2, 5}, []int{1, 2, 3, 4}) {
		t.Error("SubsetSorted([2 5], [1 2 3 4]) = true")
	}
}

func TestIsGraphForest(t *testing.T) {
	if !IsGraphForest(PathGraph(5)) {
		t.Error("path should be a forest")
	}
	if !IsGraphForest(StarGraph(4)) {
		t.Error("star should be a forest")
	}
	if IsGraphForest(CycleGraph(4)) {
		t.Error("cycle should not be a forest")
	}
	// Parallel edges form a cycle.
	h := New(2)
	h.AddEdge(0, 1)
	h.AddEdge(0, 1)
	if IsGraphForest(h) {
		t.Error("parallel edges should not be a forest")
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := ExampleH2()
	c := h.Clone()
	c.AddEdge(0)
	if h.NumEdges() == c.NumEdges() {
		t.Error("clone shares edge storage")
	}
}
