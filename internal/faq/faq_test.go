package faq

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

var sb = semiring.Bool{}
var sp = semiring.SumProduct{}

// starBCQ builds BCQ of the star H1 where relation i holds the pairs
// (a, 1) for a in the given A-sets; the answer is 1 iff the four A-sets
// intersect (Example 2.2).
func starBCQ(t *testing.T, aSets [][]int, dom int) *Query[bool] {
	t.Helper()
	h := hypergraph.ExampleH1()
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := 0; i < h.NumEdges(); i++ {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for _, a := range aSets[i] {
			b.AddOne(a, 1)
		}
		factors[i] = b.Build()
	}
	q := NewBCQ(h, factors, dom)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestStarBCQIntersectionSemantics(t *testing.T) {
	// π_A(R) ∩ π_A(S) ∩ π_A(T) ∩ π_A(U) = {3}: BCQ answer 1.
	q := starBCQ(t, [][]int{{2, 3}, {3, 4}, {3, 5}, {3, 6}}, 8)
	for name, solver := range map[string]func(*Query[bool]) (*relation.Relation[bool], error){
		"brute": BruteForce[bool], "ghd": Solve[bool],
	} {
		res, err := solver(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v, err := BCQValue(q, res)
		if err != nil {
			t.Fatal(err)
		}
		if !v {
			t.Errorf("%s: BCQ = 0, want 1", name)
		}
	}
	// Disjoint projections: answer 0.
	q = starBCQ(t, [][]int{{2}, {3}, {4}, {5}}, 8)
	res, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := BCQValue(q, res)
	if v {
		t.Error("BCQ = 1, want 0 for disjoint projections")
	}
}

func TestSelfLoopBCQ(t *testing.T) {
	// Example 2.1: H0 with four unary relations; BCQ is 4-way set
	// intersection.
	h := hypergraph.ExampleH0()
	sets := [][]int{{1, 2, 5}, {2, 5, 7}, {0, 5}, {5, 6}}
	factors := make([]*relation.Relation[bool], 4)
	for i, set := range sets {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		for _, a := range set {
			b.AddOne(a)
		}
		factors[i] = b.Build()
	}
	q := NewBCQ(h, factors, 8)
	res, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := BCQValue(q, res)
	if !v {
		t.Error("BCQ = 0, want 1 (5 is in every set)")
	}
}

func TestChainSumProductMarginal(t *testing.T) {
	// A 3-factor chain x0—x1—x2—x3 over (ℝ≥0,+,×) with free variable x0:
	// φ(x0) = Σ_{x1,x2,x3} f0(x0,x1) f1(x1,x2) f2(x2,x3) — a PGM
	// marginal. Compare GHD pass against brute force.
	h := hypergraph.PathGraph(4)
	r := rand.New(rand.NewSource(17))
	dom := 3
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[float64](sp, h.Edge(i))
		for a := 0; a < dom; a++ {
			for bb := 0; bb < dom; bb++ {
				b.Add([]int{a, bb}, float64(1+r.Intn(8))/8.0)
			}
		}
		factors[i] = b.Build()
	}
	q := &Query[float64]{S: sp, H: h, Factors: factors, Free: []int{0}, DomSize: dom}
	want, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sp, got, want) {
		t.Errorf("GHD marginal != brute force\n got=%v\nwant=%v", got, want)
	}
	if got.Len() != dom {
		t.Errorf("marginal has %d entries, want %d", got.Len(), dom)
	}
}

func TestNaturalJoinQuery(t *testing.T) {
	h := hypergraph.PathGraph(3)
	b0 := relation.NewBuilder[bool](sb, h.Edge(0))
	b0.AddOne(0, 1)
	b0.AddOne(1, 1)
	b1 := relation.NewBuilder[bool](sb, h.Edge(1))
	b1.AddOne(1, 0)
	b1.AddOne(1, 2)
	factors := []*relation.Relation[bool]{b0.Build(), b1.Build()}
	q := NewNaturalJoin(h, factors, 3)
	got, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.Join(sb, factors[0], factors[1])
	if !relation.Equal(sb, got, want) {
		t.Errorf("natural join query != direct join")
	}
}

func TestGeneralFAQMaxAggregate(t *testing.T) {
	// Max-product (Viterbi) on a path: every bound variable aggregated
	// with max over (ℝ≥0,+,×) factors. max is a compatible semiring
	// aggregate (shares 0 and 1 with sum-product).
	h := hypergraph.PathGraph(3)
	dom := 3
	r := rand.New(rand.NewSource(5))
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[float64](sp, h.Edge(i))
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				b.Add([]int{a, c}, float64(1+r.Intn(16)))
			}
		}
		factors[i] = b.Build()
	}
	maxOp := semiring.AddOf[float64](semiring.MaxTimes{})
	q := &Query[float64]{
		S: sp, H: h, Factors: factors, Free: nil, DomSize: dom,
		VarOps: map[int]semiring.Op[float64]{0: maxOp, 1: maxOp, 2: maxOp},
	}
	want, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(sp, got, want) {
		t.Error("max-product GHD pass != brute force")
	}
	v, err := relation.ScalarValue(sp, got)
	if err != nil {
		t.Fatal(err)
	}
	// The answer must equal the explicit maximum over all assignments.
	best := 0.0
	for a := 0; a < dom; a++ {
		for b := 0; b < dom; b++ {
			for c := 0; c < dom; c++ {
				p := lookup(t, factors[0], a, b) * lookup(t, factors[1], b, c)
				if p > best {
					best = p
				}
			}
		}
	}
	if v != best {
		t.Errorf("max-product = %v, want %v", v, best)
	}
}

func lookup(t *testing.T, r *relation.Relation[float64], vals ...int) float64 {
	t.Helper()
	for i := 0; i < r.Len(); i++ {
		tu := r.Tuple(i)
		match := true
		for k := range tu {
			if int(tu[k]) != vals[k] {
				match = false
				break
			}
		}
		if match {
			return r.Value(i)
		}
	}
	return 0
}

func TestProductAggregate(t *testing.T) {
	// φ = Σ_{x0} Π_{x1} f(x0, x1) over a single binary factor with
	// Dom = {0,1}: groups missing an x1 value are annihilated.
	h := hypergraph.New(2)
	h.AddEdge(0, 1)
	b := relation.NewBuilder[float64](sp, []int{0, 1})
	b.Add([]int{0, 0}, 2)
	b.Add([]int{0, 1}, 3) // x0=0: product 6
	b.Add([]int{1, 0}, 5) // x0=1: x1=1 missing -> product 0
	q := &Query[float64]{
		S: sp, H: h, Factors: []*relation.Relation[float64]{b.Build()},
		Free: nil, DomSize: 2,
		VarOps: map[int]semiring.Op[float64]{1: semiring.MulOf[float64](sp)},
	}
	res, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	v, err := relation.ScalarValue(sp, res)
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Errorf("Σ_x0 Π_x1 f = %v, want 6", v)
	}
	got, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	gv, _ := relation.ScalarValue(sp, got)
	if gv != 6 {
		t.Errorf("GHD pass = %v, want 6", gv)
	}
}

func TestValidateRejections(t *testing.T) {
	h := hypergraph.PathGraph(3)
	good := []*relation.Relation[bool]{
		relation.Empty[bool](h.Edge(0)),
		relation.Empty[bool](h.Edge(1)),
	}
	cases := []struct {
		name string
		q    *Query[bool]
	}{
		{"nil hypergraph", &Query[bool]{S: sb, DomSize: 2}},
		{"bad domsize", &Query[bool]{S: sb, H: h, Factors: good, DomSize: 0}},
		{"missing factor", &Query[bool]{S: sb, H: h, Factors: good[:1], DomSize: 2}},
		{"nil factor", &Query[bool]{S: sb, H: h, Factors: []*relation.Relation[bool]{nil, nil}, DomSize: 2}},
		{"schema mismatch", &Query[bool]{S: sb, H: h,
			Factors: []*relation.Relation[bool]{relation.Empty[bool]([]int{0, 2}), good[1]}, DomSize: 2}},
		{"unsorted free", &Query[bool]{S: sb, H: h, Factors: good, Free: []int{1, 0}, DomSize: 2}},
		{"free out of range", &Query[bool]{S: sb, H: h, Factors: good, Free: []int{9}, DomSize: 2}},
		{"op on free var", &Query[bool]{S: sb, H: h, Factors: good, Free: []int{0}, DomSize: 2,
			VarOps: map[int]semiring.Op[bool]{0: semiring.AddOf[bool](sb)}}},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidateDomainRange(t *testing.T) {
	h := hypergraph.New(2)
	h.AddEdge(0, 1)
	b := relation.NewBuilder[bool](sb, []int{0, 1})
	b.AddOne(0, 5)
	q := NewBCQ(h, []*relation.Relation[bool]{b.Build()}, 3)
	if err := q.Validate(); err == nil {
		t.Error("expected domain-range validation error")
	}
}

func TestFreeVarOutsideRootBagRejected(t *testing.T) {
	// Path x0—x1—x2—x3—x4 with F = {0, 4}: no single edge bag contains
	// both endpoints, so the GHD solver must reject (Appendix G.5).
	h := hypergraph.PathGraph(5)
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		b.AddOne(0, 0)
		factors[i] = b.Build()
	}
	q := &Query[bool]{S: sb, H: h, Factors: factors, Free: []int{0, 4}, DomSize: 2}
	if _, err := Solve(q); err == nil {
		t.Error("expected free-variable restriction error")
	}
	// Brute force still handles it.
	if _, err := BruteForce(q); err != nil {
		t.Errorf("brute force should handle arbitrary F: %v", err)
	}
}

// randomTreeQuery builds a random acyclic BCQ or sum-product query.
func randomTreeQuery(r *rand.Rand, n, dom, tuples int) (*hypergraph.Hypergraph, []*relation.Relation[float64]) {
	h := hypergraph.New(n)
	for v := 1; v < n; v++ {
		h.AddEdge(r.Intn(v), v)
	}
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[float64](sp, h.Edge(i))
		for k := 0; k < tuples; k++ {
			b.Add([]int{r.Intn(dom), r.Intn(dom)}, float64(1+r.Intn(4)))
		}
		factors[i] = b.Build()
	}
	return h, factors
}

func TestSolveMatchesBruteForceOnRandomTrees(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		h, factors := randomTreeQuery(r, 3+r.Intn(5), 3, 1+r.Intn(9))
		q := &Query[float64]{S: sp, H: h, Factors: factors, Free: nil, DomSize: 3}
		want, err := BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(sp, got, want) {
			t.Fatalf("trial %d: GHD != brute force on %v", trial, h)
		}
	}
}

func TestSolveMatchesBruteForceOnRandomCyclic(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(4)
		h := hypergraph.New(n)
		for i := 0; i < n; i++ {
			h.AddEdge(i, (i+1)%n) // cycle core
		}
		if r.Intn(2) == 0 && n < 6 {
			h.AddEdge(r.Intn(n)) // pendant self-loop
		}
		dom := 3
		factors := make([]*relation.Relation[float64], h.NumEdges())
		for i := range factors {
			schema := h.Edge(i)
			b := relation.NewBuilder[float64](sp, schema)
			for k := 0; k < 2+r.Intn(6); k++ {
				tuple := make([]int, len(schema))
				for j := range tuple {
					tuple[j] = r.Intn(dom)
				}
				b.Add(tuple, float64(1+r.Intn(3)))
			}
			factors[i] = b.Build()
		}
		q := &Query[float64]{S: sp, H: h, Factors: factors, Free: nil, DomSize: dom}
		want, err := BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(sp, got, want) {
			t.Fatalf("trial %d: GHD != brute force on cyclic %v", trial, h)
		}
	}
}

func TestMaxFactorSize(t *testing.T) {
	q := starBCQ(t, [][]int{{1}, {1, 2}, {1, 2, 3}, {1}}, 8)
	if got := q.MaxFactorSize(); got != 3 {
		t.Errorf("N = %d, want 3", got)
	}
}
