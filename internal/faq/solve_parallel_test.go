package faq

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/exec"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// TestErrFreeOutsideRootSentinel pins the sentinel contract that
// protocol.solveCentral's fallback decision relies on: both RootForFree
// and SolveOnGHD must wrap ErrFreeOutsideRoot when the free-variable
// restriction fails, and nothing else may.
func TestErrFreeOutsideRootSentinel(t *testing.T) {
	h := hypergraph.PathGraph(5)
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[bool](sb, h.Edge(i))
		b.AddOne(0, 0)
		factors[i] = b.Build()
	}
	q := &Query[bool]{S: sb, H: h, Factors: factors, Free: []int{0, 4}, DomSize: 2}

	if _, err := Solve(q); !errors.Is(err, ErrFreeOutsideRoot) {
		t.Errorf("Solve error = %v, want wrapped ErrFreeOutsideRoot", err)
	}

	g, err := ghd.Minimize(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RootForFree(g, []int{0, 4}); !errors.Is(err, ErrFreeOutsideRoot) {
		t.Errorf("RootForFree error = %v, want wrapped ErrFreeOutsideRoot", err)
	}
	if _, err := SolveOnGHD(q, g); !errors.Is(err, ErrFreeOutsideRoot) {
		t.Errorf("SolveOnGHD error = %v, want wrapped ErrFreeOutsideRoot", err)
	}
	// A validation failure must NOT satisfy the sentinel: callers would
	// otherwise mask real errors behind the brute-force fallback.
	bad := &Query[bool]{S: sb, H: h, Factors: factors, Free: nil, DomSize: 0}
	if _, err := SolveOnGHD(bad, g); err == nil || errors.Is(err, ErrFreeOutsideRoot) {
		t.Errorf("validation error = %v must not wrap the sentinel", err)
	}
}

// TestRootForFreeMatchesRerootScan checks the degree-based internal-node
// computation against the materializing reference (g.ReRoot(v) for every
// candidate) on random trees: same chosen root, same y.
func TestRootForFreeMatchesRerootScan(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		h, factors := randomTreeQuery(r, 3+r.Intn(7), 3, 3)
		_ = factors
		g, err := ghd.Minimize(h)
		if err != nil {
			t.Fatal(err)
		}
		// Pick a free set covered by at least one bag: a random bag.
		free := g.Bags[r.Intn(g.NumNodes())]
		got, err := RootForFree(g, free)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: the pre-optimization scan.
		covers := func(v int) bool {
			for _, x := range free {
				if !hypergraph.ContainsSorted(g.Bags[v], x) {
					return false
				}
			}
			return true
		}
		wantRoot := -1
		bestY := 0
		if covers(g.Root) {
			wantRoot = g.Root
		} else {
			for v := 0; v < g.NumNodes(); v++ {
				if !covers(v) {
					continue
				}
				if y := g.ReRoot(v).InternalNodes(); wantRoot == -1 || y < bestY {
					wantRoot, bestY = v, y
				}
			}
		}
		if got.Root != wantRoot {
			t.Fatalf("trial %d: RootForFree picked %d, reference picks %d", trial, got.Root, wantRoot)
		}
		if wantRoot != g.Root && got.InternalNodes() != bestY {
			t.Fatalf("trial %d: InternalNodes = %d, reference %d", trial, got.InternalNodes(), bestY)
		}
	}
}

// TestSolveOnGHDParallelBitIdentical is the parallel≡sequential axis of
// the solver: the same query solved at 1 and at 8 workers must produce
// bit-identical relations (schema, row buffer, values), not merely
// semiring-equal ones.
func TestSolveOnGHDParallelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		h, factors := randomTreeQuery(r, 4+r.Intn(8), 4, 2+r.Intn(10))
		free := []int{}
		q := &Query[float64]{S: sp, H: h, Factors: factors, Free: free, DomSize: 4}
		g, err := ghd.Minimize(h)
		if err != nil {
			t.Fatal(err)
		}

		prev := exec.SetWorkers(1)
		want, err1 := SolveOnGHD(q, g)
		exec.SetWorkers(8)
		got, err2 := SolveOnGHD(q, g)
		exec.SetWorkers(prev)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !relation.Equal(sp, got, want) {
			t.Fatalf("trial %d: parallel solve != sequential solve", trial)
		}
		if !slices.Equal(got.Schema(), want.Schema()) {
			t.Fatalf("trial %d: schema drift", trial)
		}
		for i := 0; i < got.Len(); i++ {
			if got.Value(i) != want.Value(i) { // exact float bits, not tolerance
				t.Fatalf("trial %d tuple %d: value %v != %v (bit drift)", trial, i, got.Value(i), want.Value(i))
			}
		}
	}
}

// TestSolveParallelPropagatesErrors drives a mid-tree aggregation error
// through the concurrent Forest dispatch.
func TestSolveParallelPropagatesErrors(t *testing.T) {
	h, factors := randomTreeQuery(rand.New(rand.NewSource(77)), 6, 3, 4)
	q := &Query[float64]{S: sp, H: h, Factors: factors, Free: nil, DomSize: 0} // invalid
	prev := exec.SetWorkers(8)
	defer exec.SetWorkers(prev)
	if _, err := Solve(q); err == nil {
		t.Fatal("expected validation error through parallel path")
	}
}

// TestSolveOnGHDShapedMatchesPlain pins the shaped measurement run:
// identical answer bits to the plain sequential solve, one well-formed
// TaskShape per GHD node (Div ≤ Work, Parts ≥ 1), and small inputs stay
// atomic (below the kernel partition threshold nothing marks Divisible).
func TestSolveOnGHDShapedMatchesPlain(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	for trial := 0; trial < 10; trial++ {
		h, factors := randomTreeQuery(r, 4+r.Intn(6), 4, 2+r.Intn(8))
		q := &Query[float64]{S: sp, H: h, Factors: factors, Free: nil, DomSize: 4}
		g, err := ghd.Minimize(h)
		if err != nil {
			t.Fatal(err)
		}
		prev := exec.SetWorkers(1)
		want, err1 := SolveOnGHD(q, g)
		got, shapes, err2 := SolveOnGHDShaped(q, g)
		exec.SetWorkers(prev)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !relation.Equal(sp, got, want) {
			t.Fatalf("trial %d: shaped solve != plain solve", trial)
		}
		for i := 0; i < got.Len(); i++ {
			if got.Value(i) != want.Value(i) {
				t.Fatalf("trial %d tuple %d: value bit drift", trial, i)
			}
		}
		if len(shapes) != g.NumNodes() {
			t.Fatalf("trial %d: %d shapes for %d nodes", trial, len(shapes), g.NumNodes())
		}
		for v, sh := range shapes {
			if sh.Div > sh.Work || sh.Parts < 1 {
				t.Fatalf("trial %d node %d: malformed shape %+v", trial, v, sh)
			}
			if sh.Div != 0 {
				t.Fatalf("trial %d node %d: tiny input marked divisible: %+v", trial, v, sh)
			}
		}
	}
}
