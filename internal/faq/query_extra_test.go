package faq

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// TestAggregateOutOrder pins eq. (4)'s elimination order: bound
// variables leave innermost (largest id) first, skipping free ones.
func TestAggregateOutOrder(t *testing.T) {
	h := hypergraph.PathGraph(5)
	q := &Query[bool]{S: sb, H: h, Free: []int{1, 3}, DomSize: 2,
		Factors: emptyFactors(h)}
	free := map[int]bool{1: true, 3: true}
	var order []int
	b := relation.NewBuilder[bool](sb, []int{0, 1, 2, 3, 4})
	b.AddOne(0, 0, 0, 0, 0)
	out, err := AggregateOut(q, b.Build(), func(v int) bool {
		if !free[v] {
			order = append(order, v)
		}
		return free[v]
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 2, 0} // descending, skipping free vars
	if len(order) != len(want) {
		t.Fatalf("elimination order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("elimination order = %v, want %v", order, want)
		}
	}
	if got := out.Schema(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("remaining schema = %v, want [1 3]", got)
	}
}

func emptyFactors(h *hypergraph.Hypergraph) []*relation.Relation[bool] {
	fs := make([]*relation.Relation[bool], h.NumEdges())
	for i := range fs {
		fs[i] = relation.Empty[bool](h.Edge(i))
	}
	return fs
}

func TestOpDefaultsToSemiringAdd(t *testing.T) {
	h := hypergraph.PathGraph(3)
	q := &Query[bool]{S: sb, H: h, DomSize: 2, Factors: emptyFactors(h)}
	op := q.Op(1)
	if op.IsProduct() {
		t.Error("default op must be the semiring ⊕")
	}
	if op.Identity() != false {
		t.Error("Boolean ⊕ identity must be false")
	}
	if !q.IsSS() {
		t.Error("query with no VarOps is an FAQ-SS")
	}
	q.VarOps = map[int]semiring.Op[bool]{1: semiring.MulOf[bool](sb)}
	if q.IsSS() {
		t.Error("query with a VarOps entry is not FAQ-SS")
	}
	if !q.Op(1).IsProduct() {
		t.Error("override not honored")
	}
}

func TestNaturalJoinOnHypergraph(t *testing.T) {
	// Arity-3 natural join: H2's four relations joined over ABCDEF.
	h := hypergraph.ExampleH2()
	r := rand.New(rand.NewSource(91))
	dom := 3
	factors := make([]*relation.Relation[bool], h.NumEdges())
	for i := range factors {
		schema := h.Edge(i)
		b := relation.NewBuilder[bool](sb, schema)
		for k := 0; k < 10; k++ {
			tuple := make([]int, len(schema))
			for j := range tuple {
				tuple[j] = r.Intn(dom)
			}
			b.AddOne(tuple...)
		}
		factors[i] = b.Build()
	}
	q := NewNaturalJoin(h, factors, dom)
	got, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	want := factors[0]
	for _, f := range factors[1:] {
		want = relation.Join(sb, want, f)
	}
	if !relation.Equal(sb, got, want) {
		t.Error("natural join query != iterated join")
	}
	// The GHD solver requires F ⊆ root bag, which fails for the full
	// attribute set of H2 (no bag holds all six variables): it must
	// reject rather than silently truncate.
	if _, err := Solve(q); err == nil {
		t.Error("expected free-variable restriction error for full join on H2")
	}
}

func TestSemijoinQueryShape(t *testing.T) {
	// F = e (one edge's attributes) over Booleans is the semijoin of
	// Definition 3.5 folded through the whole query.
	h := hypergraph.PathGraph(3)
	b0 := relation.NewBuilder[bool](sb, h.Edge(0))
	b0.AddOne(0, 0)
	b0.AddOne(1, 1)
	b0.AddOne(2, 0)
	b1 := relation.NewBuilder[bool](sb, h.Edge(1))
	b1.AddOne(0, 1)
	factors := []*relation.Relation[bool]{b0.Build(), b1.Build()}
	q := &Query[bool]{S: sb, H: h, Factors: factors, Free: []int{0, 1}, DomSize: 3}
	got, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.Semijoin(sb, factors[0], factors[1])
	if !relation.Equal(sb, got, want) {
		t.Errorf("F=e query != semijoin: got %v want %v", got, want)
	}
}

func TestMixedAggregatesSeparableVars(t *testing.T) {
	// Sum over x2, max over x0, on a path x0—x1—x2 with free x1: the
	// operators act on different branches of the GHD (separable in the
	// sense of Theorem G.1's second condition), so GHD pass and brute
	// force must agree.
	h := hypergraph.PathGraph(3)
	spr := semiring.SumProduct{}
	r := rand.New(rand.NewSource(92))
	dom := 3
	factors := make([]*relation.Relation[float64], h.NumEdges())
	for i := range factors {
		b := relation.NewBuilder[float64](spr, h.Edge(i))
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				b.Add([]int{a, c}, float64(1+r.Intn(8)))
			}
		}
		factors[i] = b.Build()
	}
	q := &Query[float64]{
		S: spr, H: h, Factors: factors, Free: []int{1}, DomSize: dom,
		VarOps: map[int]semiring.Op[float64]{
			0: semiring.AddOf[float64](semiring.MaxTimes{}),
		},
	}
	want, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(spr, got, want) {
		t.Errorf("mixed aggregates: GHD pass != brute force\n got %v\nwant %v", got, want)
	}
}

func TestSolveOnGHDRejectsInvalidQuery(t *testing.T) {
	h := hypergraph.PathGraph(3)
	q := &Query[bool]{S: sb, H: h, Factors: emptyFactors(h), DomSize: 0}
	if _, err := Solve(q); err == nil {
		t.Error("expected validation error to propagate")
	}
}

func TestBCQValueHelper(t *testing.T) {
	h := hypergraph.New(1)
	h.AddEdge(0)
	b := relation.NewBuilder[bool](sb, h.Edge(0))
	b.AddOne(0)
	q := NewBCQ(h, []*relation.Relation[bool]{b.Build()}, 2)
	res, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	v, err := BCQValue(q, res)
	if err != nil || !v {
		t.Errorf("BCQValue = %v, %v; want true", v, err)
	}
}
