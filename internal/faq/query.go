// Package faq models Functional Aggregate Queries (FAQs, Section 5 of
// "Topology Dependent Bounds For FAQs") and provides two centralized
// solvers: a brute-force reference used as a correctness oracle, and the
// GHD message-passing algorithm of Theorem G.3 (the Õ(N) upward pass) on
// which the distributed protocols are modeled.
//
// An FAQ is
//
//	φ(x_F) = ⊕^(ℓ+1)_{x_{ℓ+1}} ... ⊕^(n)_{x_n} ⊗_{e∈E} f_e(x_e)
//
// over a commutative semiring; when every bound-variable aggregate is the
// semiring's ⊕ the query is an FAQ-SS (eq. 1.0). BCQ is the special case
// F = ∅ over the Boolean semiring; factor marginals in PGMs are F = e
// over (ℝ≥0, +, ×).
package faq

import (
	"fmt"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/semiring"
)

// Query is an FAQ instance. Factors[i] is the listing representation of
// the input function on hyperedge i of H; its schema must equal the
// edge's vertex set. Free lists the free variables (sorted); every other
// variable is bound and aggregated by Op(v). DomSize is D = max_v
// |Dom(v)|: tuples take values in [0, DomSize) and product aggregates
// need it to account for unlisted zeros.
type Query[T any] struct {
	S       semiring.Semiring[T]
	H       *hypergraph.Hypergraph
	Factors []*relation.Relation[T]
	Free    []int
	DomSize int
	// VarOps optionally overrides the aggregate of individual bound
	// variables (general FAQ). Variables absent from the map use the
	// semiring's ⊕ (FAQ-SS).
	VarOps map[int]semiring.Op[T]
}

// Op returns the aggregate operator for bound variable v.
func (q *Query[T]) Op(v int) semiring.Op[T] {
	if op, ok := q.VarOps[v]; ok {
		return op
	}
	return semiring.AddOf(q.S)
}

// IsSS reports whether the query is an FAQ-SS (all bound aggregates are
// the semiring ⊕).
func (q *Query[T]) IsSS() bool { return len(q.VarOps) == 0 }

// Validate checks structural well-formedness: one factor per hyperedge
// with a schema equal to the edge's vertices, free variables present in
// H, tuples within the domain, and a positive domain size.
func (q *Query[T]) Validate() error {
	if q.H == nil {
		return fmt.Errorf("faq: nil hypergraph")
	}
	if q.DomSize <= 0 {
		return fmt.Errorf("faq: DomSize must be positive, got %d", q.DomSize)
	}
	if len(q.Factors) != q.H.NumEdges() {
		return fmt.Errorf("faq: %d factors for %d hyperedges", len(q.Factors), q.H.NumEdges())
	}
	for i, f := range q.Factors {
		if f == nil {
			return fmt.Errorf("faq: factor %d is nil", i)
		}
		want := q.H.Edge(i)
		got := f.Schema()
		if len(got) != len(want) {
			return fmt.Errorf("faq: factor %d schema %v != edge %v", i, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				return fmt.Errorf("faq: factor %d schema %v != edge %v", i, got, want)
			}
		}
		for t := 0; t < f.Len(); t++ {
			for _, x := range f.Tuple(t) {
				if x < 0 || int(x) >= q.DomSize {
					return fmt.Errorf("faq: factor %d tuple value %d outside domain [0,%d)", i, x, q.DomSize)
				}
			}
		}
	}
	if !sort.IntsAreSorted(q.Free) {
		return fmt.Errorf("faq: free variables %v not sorted", q.Free)
	}
	covered := make(map[int]bool)
	for _, e := range q.H.Edges() {
		for _, v := range e {
			covered[v] = true
		}
	}
	for _, v := range q.Free {
		if v < 0 || v >= q.H.NumVertices() {
			return fmt.Errorf("faq: free variable %d out of range", v)
		}
		if !covered[v] {
			return fmt.Errorf("faq: free variable %d appears in no hyperedge", v)
		}
	}
	for v := range q.VarOps {
		for _, fv := range q.Free {
			if fv == v {
				return fmt.Errorf("faq: aggregate specified for free variable %d", v)
			}
		}
	}
	return nil
}

// MaxFactorSize returns N = max_e |R_e| (the paper's size parameter).
func (q *Query[T]) MaxFactorSize() int {
	n := 0
	for _, f := range q.Factors {
		if f.Len() > n {
			n = f.Len()
		}
	}
	return n
}

// NewBCQ builds the Boolean Conjunctive Query of the given hypergraph and
// Boolean factors (F = ∅ over the Boolean semiring).
func NewBCQ(h *hypergraph.Hypergraph, factors []*relation.Relation[bool], domSize int) *Query[bool] {
	return &Query[bool]{
		S:       semiring.Bool{},
		H:       h,
		Factors: factors,
		Free:    nil,
		DomSize: domSize,
	}
}

// NewNaturalJoin builds the natural join query (footnote 4: F = V over
// the Boolean semiring).
func NewNaturalJoin(h *hypergraph.Hypergraph, factors []*relation.Relation[bool], domSize int) *Query[bool] {
	free := make([]int, 0, h.NumVertices())
	covered := make(map[int]bool)
	for _, e := range h.Edges() {
		for _, v := range e {
			covered[v] = true
		}
	}
	for v := 0; v < h.NumVertices(); v++ {
		if covered[v] {
			free = append(free, v)
		}
	}
	return &Query[bool]{
		S:       semiring.Bool{},
		H:       h,
		Factors: factors,
		Free:    free,
		DomSize: domSize,
	}
}
