package faq

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// ErrFreeOutsideRoot is the sentinel for the paper's free-variable
// restriction (F ⊆ V(C(H)), Appendix G.5): no bag of the decomposition
// covers all free variables, so the GHD pass cannot deliver the
// marginal at a root. It is the ONLY condition under which callers
// should fall back to the exponential BruteForce; every other solver
// error is a real failure and must propagate.
var ErrFreeOutsideRoot = errors.New("faq: free variables not contained in any bag (paper requires F ⊆ V(C(H)))")

// AggregateOut eliminates, innermost (largest id) first, every schema
// variable of r for which keep reports false, applying each variable's
// per-query aggregate operator (eq. 4). It is the shared push-down step
// of Corollary G.2 used by every solver and by the protocol engine's
// child messages, core phase, and finalization.
func AggregateOut[T any](q *Query[T], r *relation.Relation[T], keep func(v int) bool) (*relation.Relation[T], error) {
	schema := r.Schema()
	var err error
	for i := len(schema) - 1; i >= 0; i-- {
		x := schema[i]
		if keep(x) {
			continue
		}
		r, err = relation.EliminateVar(q.S, r, x, q.Op(x), q.DomSize)
		if err != nil {
			return nil, err
		}
	}
	return r, nil
}

// BruteForce evaluates the query by materializing the full join of all
// factors and then aggregating the bound variables innermost-first
// (x_n, x_{n-1}, ..., x_{ℓ+1} per eq. 4). It is exponential in general
// and exists as the correctness oracle for the other solvers.
func BruteForce[T any](q *Query[T]) (*relation.Relation[T], error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	joined := relation.Unit(q.S, q.S.One())
	for _, f := range q.Factors {
		joined = relation.Join(q.S, joined, f)
	}
	free := make(map[int]bool, len(q.Free))
	for _, v := range q.Free {
		free[v] = true
	}
	return AggregateOut(q, joined, func(v int) bool { return free[v] })
}

// Solve evaluates the query with the GHD message-passing algorithm of
// Theorem G.3: a single bottom-up pass over a (minimized) GYO-GHD, where
// each node joins its factor with the children's messages and aggregates
// out the variables private to its subtree (the push-down of
// Corollary G.2). Each message has at most N tuples (eq. 24), so the
// pass runs in Õ(N) per node for acyclic queries; the cyclic core is
// materialized at the fat root exactly as the paper's trivial protocol
// materializes it at one player.
//
// The paper's free-variable restriction applies: F must be contained in
// the root bag (F ⊆ V(C(H)), Appendix G.5). Queries violating it are
// rejected — fall back to BruteForce.
func Solve[T any](q *Query[T]) (*relation.Relation[T], error) {
	g, err := PlanGHD(q.H, q.Free)
	if err != nil {
		return nil, err
	}
	return SolveOnGHD(q, g)
}

// PlanGHD is the query-planning primitive shared by the centralized
// solver, the distributed protocol, and the plan cache: a width-minimized
// GYO-GHD of h re-rooted so its root bag covers the free variables. It is
// the expensive, data-independent half of every solve — exactly what
// internal/plan compiles once per query shape and reuses across requests.
func PlanGHD(h *hypergraph.Hypergraph, free []int) (*ghd.GHD, error) {
	g, err := ghd.Minimize(h)
	if err != nil {
		return nil, err
	}
	return RootForFree(g, free)
}

// RootForFree re-roots g at a node whose bag contains every free
// variable, so the bottom-up pass delivers the marginal at the root.
// Ties prefer the current root, then the smallest internal-node count.
// If no bag covers F the paper's free-variable restriction
// (F ⊆ V(C(H)), Appendix G.5) is violated and an error is returned.
func RootForFree(g *ghd.GHD, free []int) (*ghd.GHD, error) {
	covers := func(v int) bool {
		for _, x := range free {
			if !hypergraph.ContainsSorted(g.Bags[v], x) {
				return false
			}
		}
		return true
	}
	if covers(g.Root) {
		return g, nil
	}
	// y(ReRoot(v)) without materializing the re-root: re-rooting only
	// redirects edges, so a node is internal iff its (undirected) degree
	// is ≥ 2, plus the new root itself when it was a leaf. One degree
	// pass replaces NumNodes() tree copies.
	n := g.NumNodes()
	deg := make([]int, n)
	for v, p := range g.Parent {
		if p >= 0 {
			deg[v]++
			deg[p]++
		}
	}
	base := 0
	for _, d := range deg {
		if d >= 2 {
			base++
		}
	}
	best := -1
	bestY := 0
	for v := 0; v < n; v++ {
		if !covers(v) {
			continue
		}
		y := base
		if deg[v] == 1 {
			y++ // a leaf promoted to root becomes internal
		}
		if best == -1 || y < bestY {
			best, bestY = v, y
		}
	}
	if best == -1 {
		return nil, fmt.Errorf("faq: no GHD bag covers free variables %v: %w", free, ErrFreeOutsideRoot)
	}
	return g.ReRoot(best), nil
}

// SolveOptions configures one GHD bottom-up pass. The zero value is the
// plain parallel solve on the process-default pool; every solver entry
// point of this package is a thin wrapper over SolveGHD with a fixed
// option set.
type SolveOptions struct {
	// Pool schedules the forest pass; nil uses exec.Default(). Engines
	// configured with a private worker budget (faqs.WithWorkers) thread
	// their own pool here — worker counts never change results, only
	// scheduling.
	Pool *exec.Pool
	// Timed collects the wall-clock cost of every node task (indexed by
	// GHD node), the vector exec.Makespan replays and the plan cache
	// folds into its measured task shapes.
	Timed bool
	// Shaped collects exec.TaskShape intra-node divisibility accounting
	// instead; the pass runs strictly sequentially (exec.ForestShaped is
	// a measurement harness). Takes precedence over Timed.
	Shaped bool
	// Distributed, when non-nil, must be a DistributedSolver[T] for the
	// query's value type; SolveGHD then delegates the validated pass to
	// it (cluster-backed execution). A solver rejecting the query shape
	// with ErrNotDistributable falls back to the local pass, so engines
	// can always set the option and let eligibility decide per query.
	// The field is `any` because SolveOptions is shared across value
	// types; a type mismatch silently runs locally.
	Distributed any
}

// DistributedSolver executes one validated GHD bottom-up pass on
// external workers, returning the root message. Implementations must
// keep the bit-identical contract of the local pass for exact
// semirings: same child join order, same innermost-first aggregation,
// duplicate groups merged with ⊕.
type DistributedSolver[T any] interface {
	SolveGHD(ctx context.Context, q *Query[T], g *ghd.GHD) (*relation.Relation[T], error)
}

// ErrNotDistributable is returned (wrapped) by a DistributedSolver that
// cannot run the query's shape remotely — per-variable aggregate
// operators, multiple factors on one GHD node. SolveGHD treats it as
// "run locally", every other solver error as a real failure.
var ErrNotDistributable = errors.New("faq: query not distributable")

// SolveMetrics carries the optional measurements of a SolveGHD run:
// Costs when SolveOptions.Timed was set, Shapes when Shaped was.
type SolveMetrics struct {
	Costs  []int64
	Shapes []exec.TaskShape
}

// SolveOnGHD is Solve with a caller-chosen decomposition (used by the
// distributed protocols, which must run on the same tree they schedule
// communication for).
//
// Execution is parallel across independent subtrees: the bottom-up pass
// dispatches sibling subtrees onto the exec default pool and joins each
// node only once its children's messages resolved (exec.Pool.Forest
// provides the child-completion happens-before edge). Per-node work —
// the child-message joins in fixed child order, then the innermost-first
// aggregation — is unchanged from the sequential pass, so the result is
// bit-identical at any worker count.
func SolveOnGHD[T any](q *Query[T], g *ghd.GHD) (*relation.Relation[T], error) {
	rel, _, err := SolveGHD(nil, q, g, SolveOptions{})
	return rel, err
}

// SolveOnGHDCtx is SolveOnGHD with per-request cancellation and cost
// measurement — the service layer's execution entry point. Each node task
// checks ctx before running (exec.Pool.ForestCtx), so a canceled request
// stops dispatching GHD nodes and returns ctx.Err() while in-flight node
// tasks complete. The returned cost vector is ForestTimed's per-node
// wall clock (indexed by GHD node), which the plan cache folds into its
// measured task shapes for /stats and schedule-replay accounting.
func SolveOnGHDCtx[T any](ctx context.Context, q *Query[T], g *ghd.GHD) (*relation.Relation[T], []int64, error) {
	rel, m, err := SolveGHD(ctx, q, g, SolveOptions{Timed: true})
	return rel, m.Costs, err
}

// SolveOnGHDTimed is SolveOnGHD, additionally returning the wall-clock
// cost of every node task of the bottom-up pass (indexed by GHD node).
// The cost vector feeds exec.Makespan's schedule replay — the
// hardware-independent speedup accounting of `faqbench -parallel`.
func SolveOnGHDTimed[T any](q *Query[T], g *ghd.GHD) (*relation.Relation[T], []int64, error) {
	rel, m, err := SolveGHD(nil, q, g, SolveOptions{Timed: true})
	return rel, m.Costs, err
}

// SolveOnGHDShaped is SolveOnGHDTimed with intra-node divisibility
// accounting: the pass runs strictly sequentially (exec.ForestShaped is
// a measurement harness) and each node's shape records, besides its
// total wall cost, the time spent inside relation kernels that would
// have partitioned across workers (the exec.Divisible regions — merge
// and hash joins, Builder sorts, packed grouping) and their maximum
// split count. The shapes feed exec.MakespanShaped's refined schedule
// replay. Meaningful with the default pool at 1 worker, so the kernels
// take the sequential paths that mark those regions.
func SolveOnGHDShaped[T any](q *Query[T], g *ghd.GHD) (*relation.Relation[T], []exec.TaskShape, error) {
	rel, m, err := SolveGHD(nil, q, g, SolveOptions{Shaped: true})
	return rel, m.Shapes, err
}

// SolveGHD is the single bottom-up-pass entry point behind every
// SolveOnGHD* wrapper: one ctx+options core instead of per-mode
// variants. ctx may be nil (background); opts selects the pool and the
// measurement mode.
func SolveGHD[T any](ctx context.Context, q *Query[T], g *ghd.GHD, opts SolveOptions) (*relation.Relation[T], SolveMetrics, error) {
	var metrics SolveMetrics
	if err := q.Validate(); err != nil {
		return nil, metrics, err
	}
	rootBag := g.Bags[g.Root]
	for _, v := range q.Free {
		if !hypergraph.ContainsSorted(rootBag, v) {
			return nil, metrics, fmt.Errorf("faq: free variable %d outside root bag %v: %w", v, rootBag, ErrFreeOutsideRoot)
		}
	}

	if opts.Distributed != nil {
		if ds, ok := opts.Distributed.(DistributedSolver[T]); ok {
			ans, err := ds.SolveGHD(ctx, q, g)
			if err == nil {
				// No per-node cost vector: the work ran on the cluster.
				return ans, metrics, nil
			}
			if !errors.Is(err, ErrNotDistributable) {
				return nil, metrics, err
			}
			// Shape not distributable: run the local pass below.
		}
	}

	// Factor assigned to each node: its designated hyperedge's relation;
	// the fat root (if any) starts from the multiplicative unit.
	nodeRel := make([]*relation.Relation[T], g.NumNodes())
	for e, v := range g.NodeOf {
		if nodeRel[v] == nil {
			nodeRel[v] = q.Factors[e]
		} else {
			// Multiple hyperedges can share a node only via duplicate
			// edges mapped elsewhere; NodeOf is injective by Validate,
			// but guard anyway.
			nodeRel[v] = relation.Join(q.S, nodeRel[v], q.Factors[e])
		}
	}

	free := make(map[int]bool, len(q.Free))
	for _, v := range q.Free {
		free[v] = true
	}

	msgs := make([]*relation.Relation[T], g.NumNodes())
	ch := g.Children()
	task := func(v int) error {
		cur := nodeRel[v]
		if cur == nil {
			cur = relation.Unit(q.S, q.S.One())
		}
		for _, c := range ch[v] {
			cur = relation.Join(q.S, cur, msgs[c])
		}
		// Aggregate out the variables private to this subtree: those not
		// in the parent's bag (running intersection guarantees a
		// variable escaping the subtree appears in the parent bag) and
		// not free. Innermost (highest id) first, per eq. 4.
		var parentBag []int
		if v != g.Root {
			parentBag = g.Bags[g.Parent[v]]
		}
		atRoot := v == g.Root
		cur, err := AggregateOut(q, cur, func(x int) bool {
			return free[x] || (!atRoot && hypergraph.ContainsSorted(parentBag, x))
		})
		if err != nil {
			return err
		}
		msgs[v] = cur
		return nil
	}
	run := task
	if ctx != nil {
		// The same per-task ctx gate ForestCtx applies, threaded here so
		// the timed/shaped variants stay cancellable too.
		run = func(v int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return task(v)
		}
	}
	pool := opts.Pool
	if pool == nil {
		pool = exec.Default()
	}
	var err error
	switch {
	case opts.Shaped:
		metrics.Shapes, err = pool.ForestShaped(g.Parent, run)
	case opts.Timed:
		metrics.Costs, err = pool.ForestTimed(g.Parent, run)
	default:
		err = pool.ForestCtx(ctx, g.Parent, task)
	}
	if err != nil {
		return nil, SolveMetrics{}, err
	}
	return msgs[g.Root], metrics, nil
}

// BCQValue extracts the Boolean answer of a BCQ result (a scalar
// relation).
func BCQValue(q *Query[bool], res *relation.Relation[bool]) (bool, error) {
	return relation.ScalarValue(q.S, res)
}
