package relation

import (
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/semiring"
)

// Range-split prefix fast paths (Project onto a leading-column prefix,
// EliminateVar of the innermost variable): the parallel twins must stay
// bit-identical to the sequential contiguous-run reductions across the
// adversarial distribution grid, including product aggregates whose
// zero-annihilation rule (unlisted tuples kill the group) must be applied
// per group on both paths.

func checkPrefixParallel[T comparable](t *testing.T, s semiring.Semiring[T], val func(*rand.Rand) T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	schema := []int{0, 1, 2}
	for _, dist := range keyDists {
		for _, n := range propSizes {
			rel := randRelDist(s, r, schema, n, 2, dist, val)
			for _, p := range []int{1, 2} {
				keep := schema[:p]
				want, err := Project(s, rel, keep)
				if err != nil {
					t.Fatal(err)
				}
				for _, parts := range propParts {
					if got := projectPrefixParallel(s, rel, append([]int(nil), keep...), p, parts); !bitIdentical(got, want) {
						t.Fatalf("%s n=%d p=%d parts=%d: parallel prefix Project not bit-identical\n got=%v\nwant=%v",
							dist.name, n, p, parts, got, want)
					}
				}
			}
			for _, op := range []semiring.Op[T]{semiring.AddOf(s), semiring.MulOf(s)} {
				for _, domSize := range []int{1, 3, 1 << 20} {
					want, err := EliminateVar(s, rel, 2, op, domSize)
					if err != nil {
						t.Fatal(err)
					}
					rest := schema[:2]
					for _, parts := range propParts {
						got := eliminatePrefixParallel(s, rel, append([]int(nil), rest...), op, domSize, 2, parts)
						if !bitIdentical(got, want) {
							t.Fatalf("%s n=%d product=%v dom=%d parts=%d: parallel prefix EliminateVar not bit-identical",
								dist.name, n, op.IsProduct(), domSize, parts)
						}
					}
				}
			}
		}
	}
}

func TestPrefixParallelEquivalenceCount(t *testing.T) {
	checkPrefixParallel[int64](t, semiring.Count{}, func(r *rand.Rand) int64 { return int64(r.Intn(5)) - 1 }, 401)
}

func TestPrefixParallelEquivalenceSumProduct(t *testing.T) {
	checkPrefixParallel[float64](t, semiring.SumProduct{}, func(r *rand.Rand) float64 { return r.Float64() }, 402)
}

func TestPrefixParallelEquivalenceMinPlus(t *testing.T) {
	checkPrefixParallel[float64](t, semiring.MinPlus{}, func(r *rand.Rand) float64 { return float64(r.Intn(40)) / 8 }, 403)
}

// TestPrefixDispatchWorkerSweep crosses the engage threshold through the
// public Project/EliminateVar entry points at 1/2/8 workers, pinning
// bit-identity for both prefix fast paths at real dispatch sizes.
func TestPrefixDispatchWorkerSweep(t *testing.T) {
	s := semiring.SumProduct{}
	r := rand.New(rand.NewSource(404))
	val := func(r *rand.Rand) float64 { return r.Float64() }
	giant := keyDists[3] // one-giant-group: the worst case for range cuts
	rel := randRelDist(s, r, []int{0, 1, 2}, parallelMinTuples+100, 2, giant, val)

	ops := []struct {
		name string
		run  func() *Relation[float64]
	}{
		{"Project/prefix", func() *Relation[float64] {
			out, err := Project(s, rel, []int{0, 1})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
		{"EliminateVar/innermost", func() *Relation[float64] {
			out, err := EliminateVar(s, rel, 2, semiring.AddOf(s), 8)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
	}
	for _, o := range ops {
		prev := exec.SetWorkers(1)
		want := o.run()
		exec.SetWorkers(2)
		got2 := o.run()
		exec.SetWorkers(8)
		got8 := o.run()
		exec.SetWorkers(prev)
		if want.Len() == 0 {
			t.Fatalf("%s: degenerate test, empty output", o.name)
		}
		if !bitIdentical(got2, want) || !bitIdentical(got8, want) {
			t.Fatalf("%s: multi-worker output not bit-identical to 1-worker", o.name)
		}
	}
}
