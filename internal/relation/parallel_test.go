package relation

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/exec"
	"repro/internal/hypergraph"
	"repro/internal/semiring"
)

// The parallel≡sequential axis of the kernel equivalence properties: the
// partitioned operators must be BIT-identical to the sequential ones —
// not merely semiring-Equal (whose float comparison tolerates
// re-association) but identical schema, row buffer, and value slices.

func bitIdentical[T comparable](a, b *Relation[T]) bool {
	return slices.Equal(a.schema, b.schema) &&
		slices.Equal(a.rows, b.rows) &&
		slices.Equal(a.vals, b.vals)
}

// nonPrefixPairs are the schema shapes that dispatch to the hash join
// (1 ≤ shared ≤ keys.MaxPacked), the only shapes the partitioned join
// serves.
var nonPrefixPairs = [][2][]int{
	{{0, 1}, {1, 2}},
	{{1, 2}, {0, 2}},
	{{0, 1, 2}, {2}},
	{{0, 2}, {1, 2}},
	{{0, 1, 3}, {2, 3}},
}

func checkJoinParallelIdentical[T comparable](t *testing.T, s semiring.Semiring[T], val func(*rand.Rand) T, seed int64) {
	t.Helper()
	prev := exec.SetWorkers(4)
	defer exec.SetWorkers(prev)
	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 25; trial++ {
		for pi, pair := range nonPrefixPairs {
			a := randRelT(s, r, pair[0], 1+r.Intn(40), 2+r.Intn(4), val)
			b := randRelT(s, r, pair[1], 1+r.Intn(40), 2+r.Intn(4), val)
			shared := hypergraph.IntersectSorted(a.Schema(), b.Schema())
			want := joinHash(s, a, b, shared)
			for _, parts := range []int{2, 3, 7} {
				got := joinHashParallel(s, a, b, shared, parts)
				if !bitIdentical(got, want) {
					t.Fatalf("pair %d trial %d parts %d: parallel join not bit-identical\n got=%v\nwant=%v",
						pi, trial, parts, got, want)
				}
			}
		}
	}
}

func TestJoinParallelBitIdenticalBool(t *testing.T) {
	checkJoinParallelIdentical[bool](t, semiring.Bool{}, func(r *rand.Rand) bool { return r.Intn(4) > 0 }, 201)
}

func TestJoinParallelBitIdenticalCount(t *testing.T) {
	checkJoinParallelIdentical[int64](t, semiring.Count{}, func(r *rand.Rand) int64 { return int64(r.Intn(5)) - 1 }, 202)
}

func TestJoinParallelBitIdenticalSumProduct(t *testing.T) {
	// Float values make bit-identity demand the exact sequential
	// ⊕-combination order inside every duplicate group.
	checkJoinParallelIdentical[float64](t, semiring.SumProduct{}, func(r *rand.Rand) float64 { return r.Float64() }, 203)
}

func TestJoinParallelBitIdenticalMinPlus(t *testing.T) {
	checkJoinParallelIdentical[float64](t, semiring.MinPlus{}, func(r *rand.Rand) float64 { return float64(r.Intn(40)) / 8 }, 204)
}

// TestJoinPublicDispatchAboveThreshold drives the public Join above the
// size threshold so the partitioned path engages end to end, and checks
// bit-identity against a single-worker run of the same call.
func TestJoinPublicDispatchAboveThreshold(t *testing.T) {
	s := semiring.SumProduct{}
	r := rand.New(rand.NewSource(205))
	n := parallelMinTuples // a.Len()+b.Len() crosses the threshold
	a := randRelT[float64](s, r, []int{0, 1}, n, 300, func(r *rand.Rand) float64 { return r.Float64() })
	b := randRelT[float64](s, r, []int{1, 2}, n, 300, func(r *rand.Rand) float64 { return r.Float64() })

	prev := exec.SetWorkers(1)
	want := Join(s, a, b)
	exec.SetWorkers(8)
	got := Join(s, a, b)
	exec.SetWorkers(prev)

	if got.Len() == 0 {
		t.Fatal("degenerate test: empty join output")
	}
	if !bitIdentical(got, want) {
		t.Fatalf("8-worker Join not bit-identical to 1-worker Join (n=%d vs %d)", got.Len(), want.Len())
	}
}

func TestEliminateVarParallelBitIdentical(t *testing.T) {
	s := semiring.SumProduct{}
	add := semiring.AddOf[float64](s)
	mul := semiring.MulOf[float64](s)
	r := rand.New(rand.NewSource(206))
	for trial := 0; trial < 20; trial++ {
		rel := randRelT[float64](s, r, []int{0, 1, 2}, 30+r.Intn(120), 2+r.Intn(3),
			func(r *rand.Rand) float64 { return r.Float64() })
		for _, v := range []int{0, 1} { // vcol < arity-1: the grouping pass
			rest := hypergraph.DiffSorted(rel.Schema(), []int{v})
			restCols, err := columnsOf(rel.Schema(), rest)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range []semiring.Op[float64]{add, mul} {
				for _, domSize := range []int{2, 3, 1000} {
					want, err := EliminateVar(s, rel, v, op, domSize)
					if err != nil {
						t.Fatal(err)
					}
					for _, parts := range []int{2, 3, 7} {
						got := eliminatePackedParallel(s, rel, rest, restCols, op, domSize, parts)
						if !bitIdentical(got, want) {
							t.Fatalf("trial %d v=%d parts=%d product=%v dom=%d: not bit-identical",
								trial, v, parts, op.IsProduct(), domSize)
						}
					}
				}
			}
		}
	}
}

// TestEliminateVarPublicDispatchAboveThreshold crosses the threshold
// through the public EliminateVar and compares worker counts.
func TestEliminateVarPublicDispatchAboveThreshold(t *testing.T) {
	s := semiring.Count{}
	add := semiring.AddOf[int64](s)
	r := rand.New(rand.NewSource(207))
	rel := randRelT[int64](s, r, []int{0, 1, 2}, parallelMinTuples+100, 40,
		func(r *rand.Rand) int64 { return int64(r.Intn(7)) - 2 })

	prev := exec.SetWorkers(1)
	want, err := EliminateVar(s, rel, 0, add, 1000)
	exec.SetWorkers(8)
	got, err2 := EliminateVar(s, rel, 0, add, 1000)
	exec.SetWorkers(prev)
	if err != nil || err2 != nil {
		t.Fatal(err, err2)
	}
	if got.Len() == 0 {
		t.Fatal("degenerate test: empty elimination output")
	}
	if !bitIdentical(got, want) {
		t.Fatal("8-worker EliminateVar not bit-identical to 1-worker")
	}
}
