package relation

import (
	"math/rand"
	"testing"

	"repro/internal/semiring"
)

func randRel(rng *rand.Rand, s semiring.Count, schema []int, n, dom int) *Relation[int64] {
	b := NewBuilder(s, schema)
	for i := 0; i < n; i++ {
		row := make([]int, len(schema))
		for k := range row {
			row[k] = rng.Intn(dom)
		}
		b.Add(row, int64(1+rng.Intn(3)))
	}
	return b.Build()
}

// TestPatchAddMatchesMergeAdd drives randomized a ⊕ b through both
// kernels; PatchAdd must be bit-identical to MergeAdd whether it takes
// the fast path or falls back.
func TestPatchAddMatchesMergeAdd(t *testing.T) {
	s := semiring.Count{}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		schema := []int{0, 1, 2}[:1+rng.Intn(3)]
		a := randRel(rng, s, schema, 5+rng.Intn(30), 6)
		db := NewBuilder(s, schema)
		for i := 0; i < rng.Intn(6); i++ {
			if a.Len() > 0 && rng.Intn(2) == 0 {
				// Touch an existing tuple (fast-path candidate); sometimes
				// cancel it to zero (forced fallback).
				j := rng.Intn(a.Len())
				v := int64(1)
				if rng.Intn(3) == 0 {
					v = -a.Value(j)
				}
				db.AddRow(a.Tuple(j), v)
			} else {
				row := make([]int, len(schema))
				for k := range row {
					row[k] = rng.Intn(6)
				}
				db.Add(row, int64(rng.Intn(5)-2))
			}
		}
		d := db.Build()
		want, err := MergeAdd(s, a, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PatchAdd(s, a, d, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(s, got, want) {
			t.Fatalf("trial %d: PatchAdd diverges from MergeAdd", trial)
		}
	}
}

// TestPatchAddSharesRows pins the fast path's contract: when the delta
// only moves annotations of listed tuples, the result reuses a's row
// buffer (what keeps HashIndexes valid) and a itself is unchanged.
func TestPatchAddSharesRows(t *testing.T) {
	s := semiring.Count{}
	b := NewBuilder(s, []int{0, 1})
	b.Add([]int{1, 2}, 5)
	b.Add([]int{3, 4}, 7)
	a := b.Build()

	db := NewBuilder(s, []int{0, 1})
	db.Add([]int{3, 4}, -2)
	got, err := PatchAdd(s, a, db.Build(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if &got.rows[0] != &a.rows[0] {
		t.Fatal("fast path must share the row buffer")
	}
	if v, _ := LookupRow(got, []int32{3, 4}); v != 5 {
		t.Fatalf("patched value = %d, want 5", v)
	}
	if v, _ := LookupRow(a, []int32{3, 4}); v != 7 {
		t.Fatalf("input mutated: value = %d, want 7", v)
	}

	// A delete to exact zero must drop the tuple (fallback), not list it.
	db = NewBuilder(s, []int{0, 1})
	db.Add([]int{3, 4}, -5)
	got2, err := PatchAdd(s, got, db.Build(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 1 {
		t.Fatalf("zero-cancelled tuple still listed: %v", got2)
	}
	// Over the budget: falls back to MergeAdd, same answer.
	got3, err := PatchAdd(s, a, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := LookupRow(got3, []int32{1, 2}); v != 10 {
		t.Fatalf("fallback merge value = %d, want 10", v)
	}
}

// TestJoinIndexedMatchesJoin checks bit-identity of the indexed probe
// against the one-shot Join on randomized non-prefix-shared schemas
// (the hash-join shapes a standing view hits), including index reuse
// across PatchAdd value updates and invalidation on row rewrites.
func TestJoinIndexedMatchesJoin(t *testing.T) {
	s := semiring.Count{}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		// Shared variable 2 is a suffix of big's schema {1,2} and of
		// small's {2,3}: Join must take the hash path.
		big := randRel(rng, s, []int{1, 2}, 10+rng.Intn(60), 8)
		small := randRel(rng, s, []int{2, 3}, rng.Intn(4), 8)
		ix := BuildHashIndex(big, []int{2})
		got := JoinIndexed(s, small, big, ix)
		want := Join(s, small, big)
		if !Equal(s, got, want) {
			t.Fatalf("trial %d: JoinIndexed diverges from Join", trial)
		}
		if big.Len() > 0 && small.Len() > 0 {
			// Value-only patch keeps the index valid and the results equal.
			db := NewBuilder(s, []int{1, 2})
			db.AddRow(big.Tuple(0), 1)
			patched, err := PatchAdd(s, big, db.Build(), 64)
			if err != nil {
				t.Fatal(err)
			}
			if !IndexValidFor(ix, patched, []int{2}) {
				t.Fatalf("trial %d: index invalid after value-only patch", trial)
			}
			if !Equal(s, JoinIndexed(s, small, patched, ix), Join(s, small, patched)) {
				t.Fatalf("trial %d: JoinIndexed diverges after patch", trial)
			}
			// A row-rewriting merge invalidates the index; JoinIndexed
			// falls back rather than serving stale chains.
			db = NewBuilder(s, []int{1, 2})
			db.Add([]int{int(big.Tuple(0)[0]) + 9, 1}, 1)
			grown, err := MergeAdd(s, big, db.Build())
			if err != nil {
				t.Fatal(err)
			}
			if IndexValidFor(ix, grown, []int{2}) {
				t.Fatalf("trial %d: index still valid after row rewrite", trial)
			}
			if !Equal(s, JoinIndexed(s, small, grown, ix), Join(s, small, grown)) {
				t.Fatalf("trial %d: stale-index fallback diverges", trial)
			}
		}
	}
}

// TestBuildHashIndexUnpackable pins the documented nil cases: empty
// key, wide key, empty relation — all of which JoinIndexed must survive
// by falling back.
func TestBuildHashIndexUnpackable(t *testing.T) {
	s := semiring.Count{}
	r := randRel(rand.New(rand.NewSource(3)), s, []int{0, 1, 2}, 10, 4)
	if BuildHashIndex(r, nil) != nil {
		t.Fatal("empty key must not index")
	}
	if BuildHashIndex(r, []int{0, 1, 2}) != nil {
		t.Fatal("key wider than MaxPacked must not index")
	}
	if BuildHashIndex(Empty[int64](r.Schema()), []int{0}) != nil {
		t.Fatal("empty relation must not index")
	}
	small := randRel(rand.New(rand.NewSource(4)), s, []int{2, 3}, 3, 4)
	if !Equal(s, JoinIndexed(s, small, r, nil), Join(s, small, r)) {
		t.Fatal("nil-index fallback diverges from Join")
	}
}
