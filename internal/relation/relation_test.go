package relation

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/semiring"
)

var sb = semiring.Bool{}
var sp = semiring.SumProduct{}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder[float64](sp, []int{0, 1})
	b.Add([]int{1, 2}, 0.5)
	b.Add([]int{1, 2}, 0.25)
	b.Add([]int{3, 4}, 1)
	r := b.Build()
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := r.Value(0); got != 0.75 {
		t.Errorf("merged value = %v, want 0.75", got)
	}
}

func TestBuilderDropsZeros(t *testing.T) {
	b := NewBuilder[bool](sb, []int{0})
	b.Add([]int{1}, false)
	b.Add([]int{2}, true)
	r := b.Build()
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (zero tuples dropped)", r.Len())
	}
	if got := r.Tuple(0)[0]; got != 2 {
		t.Errorf("surviving tuple = %d, want 2", got)
	}
}

func TestBuilderNormalizesSchemaOrder(t *testing.T) {
	// Schema given as (5, 2): columns must land under sorted ids (2, 5).
	b := NewBuilder[bool](sb, []int{5, 2})
	b.AddOne(10, 20) // var5=10, var2=20
	r := b.Build()
	if !reflect.DeepEqual(r.Schema(), []int{2, 5}) {
		t.Fatalf("schema = %v, want [2 5]", r.Schema())
	}
	if r.Tuple(0)[0] != 20 || r.Tuple(0)[1] != 10 {
		t.Errorf("tuple = %v, want [20 10]", r.Tuple(0))
	}
}

func TestBuilderPanicsOnDuplicateVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate schema variable")
		}
	}()
	NewBuilder[bool](sb, []int{1, 1})
}

func TestBuilderPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on tuple arity mismatch")
		}
	}()
	NewBuilder[bool](sb, []int{0, 1}).AddOne(1)
}

func TestTuplesSortedDeterministically(t *testing.T) {
	b := NewBuilder[bool](sb, []int{0, 1})
	b.AddOne(3, 1)
	b.AddOne(1, 2)
	b.AddOne(1, 1)
	r := b.Build()
	want := [][]int32{{1, 1}, {1, 2}, {3, 1}}
	for i, w := range want {
		if !reflect.DeepEqual(r.Tuple(i), w) {
			t.Errorf("tuple %d = %v, want %v", i, r.Tuple(i), w)
		}
	}
}

func TestProjectMergesWithAdd(t *testing.T) {
	b := NewBuilder[float64](sp, []int{0, 1})
	b.Add([]int{1, 10}, 0.5)
	b.Add([]int{1, 20}, 0.25)
	b.Add([]int{2, 10}, 1)
	r := b.Build()
	p, err := Project(sp, r, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if got := p.Value(0); got != 0.75 {
		t.Errorf("π value for 1 = %v, want 0.75", got)
	}
}

func TestProjectUnknownVariable(t *testing.T) {
	r := Empty[bool]([]int{0, 1})
	if _, err := Project(sb, r, []int{7}); err == nil {
		t.Error("expected error projecting onto unknown variable")
	}
}

func TestJoinNatural(t *testing.T) {
	// R(A,B) = {(1,1),(1,2),(2,1)}; S(B,C) = {(1,5),(2,6)}.
	r := NewBuilder[bool](sb, []int{0, 1})
	r.AddOne(1, 1)
	r.AddOne(1, 2)
	r.AddOne(2, 1)
	s := NewBuilder[bool](sb, []int{1, 2})
	s.AddOne(1, 5)
	s.AddOne(2, 6)
	j := Join(sb, r.Build(), s.Build())
	if !reflect.DeepEqual(j.Schema(), []int{0, 1, 2}) {
		t.Fatalf("join schema = %v", j.Schema())
	}
	want := [][]int32{{1, 1, 5}, {1, 2, 6}, {2, 1, 5}}
	if j.Len() != len(want) {
		t.Fatalf("join size = %d, want %d", j.Len(), len(want))
	}
	for i, w := range want {
		if !reflect.DeepEqual(j.Tuple(i), w) {
			t.Errorf("join tuple %d = %v, want %v", i, j.Tuple(i), w)
		}
	}
}

func TestJoinMultipliesAnnotations(t *testing.T) {
	r := NewBuilder[float64](sp, []int{0})
	r.Add([]int{1}, 0.5)
	s := NewBuilder[float64](sp, []int{0})
	s.Add([]int{1}, 0.25)
	j := Join(sp, r.Build(), s.Build())
	if j.Len() != 1 || j.Value(0) != 0.125 {
		t.Errorf("join value = %v, want 0.125", j.Value(0))
	}
}

func TestJoinDisjointSchemasIsCartesian(t *testing.T) {
	r := NewBuilder[bool](sb, []int{0})
	r.AddOne(1)
	r.AddOne(2)
	s := NewBuilder[bool](sb, []int{1})
	s.AddOne(7)
	s.AddOne(8)
	j := Join(sb, r.Build(), s.Build())
	if j.Len() != 4 {
		t.Errorf("cartesian size = %d, want 4", j.Len())
	}
}

func TestSemijoinFilters(t *testing.T) {
	r := NewBuilder[bool](sb, []int{0, 1})
	r.AddOne(1, 10)
	r.AddOne(2, 20)
	r.AddOne(3, 30)
	s := NewBuilder[bool](sb, []int{0, 2})
	s.AddOne(1, 99)
	s.AddOne(3, 99)
	out := Semijoin(sb, r.Build(), s.Build())
	if out.Len() != 2 {
		t.Fatalf("semijoin size = %d, want 2", out.Len())
	}
	if out.Tuple(0)[0] != 1 || out.Tuple(1)[0] != 3 {
		t.Errorf("semijoin kept wrong tuples")
	}
}

func TestEliminateVarSum(t *testing.T) {
	b := NewBuilder[float64](sp, []int{0, 1})
	b.Add([]int{1, 10}, 0.5)
	b.Add([]int{1, 20}, 0.25)
	b.Add([]int{2, 10}, 2)
	r := b.Build()
	out, err := EliminateVar(sp, r, 1, semiring.AddOf[float64](sp), 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("Len = %d, want 2", out.Len())
	}
	if out.Value(0) != 0.75 || out.Value(1) != 2 {
		t.Errorf("sums = %v, %v, want 0.75, 2", out.Value(0), out.Value(1))
	}
}

func TestEliminateVarProductAnnihilation(t *testing.T) {
	// Product aggregate over Dom of size 2: group x=1 has both domain
	// values listed (product survives); group x=2 misses y=1 (an
	// implicit zero annihilates it).
	b := NewBuilder[float64](sp, []int{0, 1})
	b.Add([]int{1, 0}, 3)
	b.Add([]int{1, 1}, 4)
	b.Add([]int{2, 0}, 5)
	r := b.Build()
	out, err := EliminateVar(sp, r, 1, semiring.MulOf[float64](sp), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (annihilated group dropped)", out.Len())
	}
	if out.Value(0) != 12 {
		t.Errorf("product = %v, want 12", out.Value(0))
	}
}

func TestEliminateVarUnknown(t *testing.T) {
	r := Empty[float64]([]int{0})
	if _, err := EliminateVar(sp, r, 9, semiring.AddOf[float64](sp), 2); err == nil {
		t.Error("expected error eliminating unknown variable")
	}
}

func TestScalarValue(t *testing.T) {
	u := Unit[bool](sb, true)
	v, err := ScalarValue(sb, u)
	if err != nil || v != true {
		t.Errorf("ScalarValue(unit true) = %v, %v", v, err)
	}
	e := Unit[bool](sb, false) // zero value: empty scalar relation
	v, err = ScalarValue(sb, e)
	if err != nil || v != false {
		t.Errorf("ScalarValue(unit false) = %v, %v", v, err)
	}
	if _, err := ScalarValue(sb, Empty[bool]([]int{0})); err == nil {
		t.Error("expected error for non-scalar relation")
	}
}

func TestRename(t *testing.T) {
	b := NewBuilder[bool](sb, []int{0, 1})
	b.AddOne(7, 8)
	r := b.Build()
	out, err := Rename(sb, r, map[int]int{0: 5, 1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Schema(), []int{2, 5}) {
		t.Fatalf("renamed schema = %v, want [2 5]", out.Schema())
	}
	// var1 (value 8) -> var2; var0 (value 7) -> var5.
	if out.Tuple(0)[0] != 8 || out.Tuple(0)[1] != 7 {
		t.Errorf("renamed tuple = %v, want [8 7]", out.Tuple(0))
	}
	if _, err := Rename(sb, r, map[int]int{0: 1}); err == nil {
		t.Error("expected error for collapsing rename")
	}
}

func TestEqual(t *testing.T) {
	a := NewBuilder[bool](sb, []int{0})
	a.AddOne(1)
	a.AddOne(2)
	b := NewBuilder[bool](sb, []int{0})
	b.AddOne(2)
	b.AddOne(1)
	if !Equal(sb, a.Build(), b.Build()) {
		t.Error("relations with the same tuples should be equal regardless of insertion order")
	}
	c := NewBuilder[bool](sb, []int{0})
	c.AddOne(1)
	if Equal(sb, a.Build(), c.Build()) {
		t.Error("relations of different sizes compared equal")
	}
}

// TestJoinAlgebraicProperties property-tests commutativity and
// associativity of the natural join over random Boolean relations, and
// the semijoin identity R ⋉ S = π_sch(R)(R ⋈ π_shared(S)) on keys.
func TestJoinAlgebraicProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	randRel := func(schema []int, n, dom int) *Relation[bool] {
		b := NewBuilder[bool](sb, schema)
		for i := 0; i < n; i++ {
			tuple := make([]int, len(schema))
			for j := range tuple {
				tuple[j] = r.Intn(dom)
			}
			b.AddOne(tuple...)
		}
		return b.Build()
	}
	for trial := 0; trial < 50; trial++ {
		a := randRel([]int{0, 1}, 1+r.Intn(8), 3)
		b := randRel([]int{1, 2}, 1+r.Intn(8), 3)
		c := randRel([]int{0, 2}, 1+r.Intn(8), 3)

		ab := Join(sb, a, b)
		ba := Join(sb, b, a)
		if !Equal(sb, ab, ba) {
			t.Fatalf("join not commutative")
		}
		abc1 := Join(sb, ab, c)
		abc2 := Join(sb, a, Join(sb, b, c))
		if !Equal(sb, abc1, abc2) {
			t.Fatalf("join not associative")
		}

		// Semijoin vs. join-then-project (set semantics on Booleans).
		sj := Semijoin(sb, a, b)
		jp, err := Project(sb, Join(sb, a, b), a.Schema())
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(sb, sj, jp) {
			t.Fatalf("semijoin != project(join) on Boolean semiring\n a=%v\n b=%v", a, b)
		}
	}
}

// TestProjectionCommutesWithSum checks Σ_B Σ_C R = Σ_C Σ_B R: eliminating
// bound variables in either order agrees for a semiring aggregate
// (Theorem G.1, same-operator case).
func TestProjectionCommutesWithSum(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	add := semiring.AddOf[float64](sp)
	for trial := 0; trial < 40; trial++ {
		b := NewBuilder[float64](sp, []int{0, 1, 2})
		n := 1 + r.Intn(12)
		for i := 0; i < n; i++ {
			b.Add([]int{r.Intn(3), r.Intn(3), r.Intn(3)}, float64(1+r.Intn(4)))
		}
		rel := b.Build()
		e1, err := EliminateVar(sp, rel, 1, add, 3)
		if err != nil {
			t.Fatal(err)
		}
		e12, err := EliminateVar(sp, e1, 2, add, 3)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := EliminateVar(sp, rel, 2, add, 3)
		if err != nil {
			t.Fatal(err)
		}
		e21, err := EliminateVar(sp, e2, 1, add, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(sp, e12, e21) {
			t.Fatalf("sum-out order changed the result")
		}
	}
}
