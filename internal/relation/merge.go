package relation

import (
	"fmt"

	"repro/internal/semiring"
)

// MergeAdd returns a ⊕ b pointwise: the relation whose annotation on
// every tuple is s.Add of the operands' annotations (absent tuples are
// zeros, per the listing representation). Both operands must share the
// same schema. Tuples whose merged annotation is the semiring's 0 are
// dropped, preserving the invariant that relations never store
// zero-annotated tuples — so for exact semirings the result is
// bit-identical to rebuilding the combined relation from scratch.
//
// This is the commit kernel of incremental maintenance
// (internal/delta): new state = MergeAdd(old state, delta). The merge
// is a single linear pass over the two sorted row buffers, O(|a|+|b|),
// with no re-sort.
func MergeAdd[T any](s semiring.Semiring[T], a, b *Relation[T]) (*Relation[T], error) {
	if len(a.schema) != len(b.schema) {
		return nil, fmt.Errorf("relation: MergeAdd schema mismatch %v vs %v", a.schema, b.schema)
	}
	for i := range a.schema {
		if a.schema[i] != b.schema[i] {
			return nil, fmt.Errorf("relation: MergeAdd schema mismatch %v vs %v", a.schema, b.schema)
		}
	}
	if b.Len() == 0 {
		return a, nil
	}
	if a.Len() == 0 {
		return b, nil
	}
	w := len(a.schema)
	if w == 0 {
		v := s.Add(a.vals[0], b.vals[0])
		if s.IsZero(v) {
			return &Relation[T]{schema: a.schema}, nil
		}
		return &Relation[T]{schema: a.schema, vals: []T{v}}, nil
	}
	na, nb := a.Len(), b.Len()
	rows := make([]int32, 0, (na+nb)*w)
	vals := make([]T, 0, na+nb)
	cmp := func(x, y []int32) int {
		for k := 0; k < w; k++ {
			if x[k] != y[k] {
				if x[k] < y[k] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	i, j := 0, 0
	for i < na && j < nb {
		ta, tb := a.Tuple(i), b.Tuple(j)
		switch cmp(ta, tb) {
		case -1:
			rows = append(rows, ta...)
			vals = append(vals, a.vals[i])
			i++
		case 1:
			rows = append(rows, tb...)
			vals = append(vals, b.vals[j])
			j++
		default:
			if v := s.Add(a.vals[i], b.vals[j]); !s.IsZero(v) {
				rows = append(rows, ta...)
				vals = append(vals, v)
			}
			i++
			j++
		}
	}
	for ; i < na; i++ {
		rows = append(rows, a.Tuple(i)...)
		vals = append(vals, a.vals[i])
	}
	for ; j < nb; j++ {
		rows = append(rows, b.Tuple(j)...)
		vals = append(vals, b.vals[j])
	}
	return fromSorted(a.schema, rows, vals), nil
}

// PatchAdd returns a ⊕ b with the same contract as MergeAdd, through a
// point fast path: when b is small (at most maxPatch rows) and every b
// row is already listed in a with a non-zero merged annotation, the
// result shares a's row buffer unchanged and patches a copy of the
// values — O(|b| log |a|) probes plus one values copy instead of the
// full O(|a|+|b|) row merge. Any miss (a genuinely new tuple, or a
// merge that cancels to the semiring's 0 and must be dropped to keep
// the listing invariant) falls back to MergeAdd, so the result is
// always bit-identical to MergeAdd's. Relations are immutable after
// construction, which makes sharing a's rows safe; a is never
// modified, so previously returned references stay consistent.
//
// This is what makes ring-strategy point updates sub-merge cost: the
// steady-state delta touches keys the retained factor and messages
// already list, and only their annotations move.
func PatchAdd[T any](s semiring.Semiring[T], a, b *Relation[T], maxPatch int) (*Relation[T], error) {
	if b.Len() == 0 || b.Len() > maxPatch || a.Len() < b.Len() || len(a.schema) == 0 ||
		len(a.schema) != len(b.schema) {
		return MergeAdd(s, a, b)
	}
	for i := range a.schema {
		if a.schema[i] != b.schema[i] {
			return MergeAdd(s, a, b) // reports the mismatch
		}
	}
	type patch struct {
		idx int
		val T
	}
	patches := make([]patch, 0, b.Len())
	for j := 0; j < b.Len(); j++ {
		idx, ok := lookupIdx(a, b.Tuple(j))
		if !ok {
			return MergeAdd(s, a, b)
		}
		v := s.Add(a.vals[idx], b.vals[j])
		if s.IsZero(v) {
			return MergeAdd(s, a, b)
		}
		patches = append(patches, patch{idx: idx, val: v})
	}
	vals := append([]T(nil), a.vals...)
	for _, p := range patches {
		vals[p.idx] = p.val
	}
	return &Relation[T]{schema: a.schema, rows: a.rows, vals: vals}, nil
}

// LookupRow returns the annotation of the given row (in sorted-schema
// column order) and whether it is listed, by binary search over the
// sorted row buffer — the point probe incremental maintenance uses to
// audit individual delta rows without a scan.
func LookupRow[T any](r *Relation[T], row []int32) (T, bool) {
	var zero T
	if i, ok := lookupIdx(r, row); ok {
		return r.vals[i], true
	}
	return zero, false
}

// lookupIdx binary-searches the sorted row buffer for row, returning
// its position.
func lookupIdx[T any](r *Relation[T], row []int32) (int, bool) {
	w := len(r.schema)
	if len(row) != w || w == 0 {
		return 0, false
	}
	lo, hi := 0, r.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		t := r.Tuple(mid)
		c := 0
		for k := 0; k < w; k++ {
			if t[k] != row[k] {
				if t[k] < row[k] {
					c = -1
				} else {
					c = 1
				}
				break
			}
		}
		switch c {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return mid, true
		}
	}
	return 0, false
}
