package relation

import (
	"repro/internal/fault"
	"repro/internal/hypergraph"
	"repro/internal/keys"
	"repro/internal/semiring"
)

// Chaos failpoints at the join kernel entries; both kernels return
// values with no error path, so failing modes panic (see Site.Inject).
var (
	joinSite     = fault.Register("relation.join")
	semijoinSite = fault.Register("relation.semijoin")
)

// Join and Semijoin strategy selection. Relations keep their tuples
// sorted lexicographically, so whenever the shared variables form a
// schema prefix of both operands — always the case for the star
// protocol's same-key reductions, where schemas are sorted and the
// shared variables are the smallest ids — both operands are already
// sorted by the join key and a galloping sorted-merge needs no index at
// all. Otherwise a hash join on packed uint64 keys (≤ 2 shared columns)
// or big-endian string keys (wider, off the hot path) is used.

// compareShared lexicographically compares the first p columns of two
// rows.
func compareShared(ra, rb []int32, p int) int {
	for k := 0; k < p; k++ {
		if ra[k] != rb[k] {
			if ra[k] < rb[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// gallopShared returns the first row index in [lo, n) whose leading p
// columns compare ≥ key, by exponential probing followed by binary
// search — O(log distance), the galloping scan of the sorted-merge join.
func gallopShared(rows []int32, arity, n, lo int, key []int32, p int) int {
	if lo >= n || compareShared(rows[lo*arity:], key, p) >= 0 {
		return lo
	}
	// Invariant: rows[prev] < key; probe lo+1, lo+2, lo+4, ...
	prev := lo
	step := 1
	next := lo + step
	for next < n && compareShared(rows[next*arity:], key, p) < 0 {
		prev = next
		step *= 2
		next = lo + step
	}
	if next > n {
		next = n
	}
	lo, hi := prev+1, next
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if compareShared(rows[mid*arity:], key, p) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// colSrc locates an output column in one of the two join operands.
type colSrc struct {
	fromA bool
	col   int
}

// outputSrcs precomputes, for each output column, which operand column
// feeds it.
func outputSrcs(outSchema, aSchema, bSchema []int) []colSrc {
	srcs := make([]colSrc, len(outSchema))
	for i, v := range outSchema {
		if j, err := columnsOf(aSchema, []int{v}); err == nil {
			srcs[i] = colSrc{true, j[0]}
		} else {
			j, _ := columnsOf(bSchema, []int{v})
			srcs[i] = colSrc{false, j[0]}
		}
	}
	return srcs
}

// isPrefixOf reports whether vs is a prefix of schema.
func isPrefixOf(vs, schema []int) bool {
	if len(vs) > len(schema) {
		return false
	}
	for i, v := range vs {
		if schema[i] != v {
			return false
		}
	}
	return true
}

// restBefore reports whether every non-shared variable of aSchema
// precedes every non-shared variable of bSchema (given len(shared)
// leading shared columns in each). When it holds, the merge join's
// generation order (shared key, a-row, b-row) is the output's
// lexicographic order and the result needs no re-sort.
func restBefore(aSchema, bSchema []int, p int) bool {
	if p == len(aSchema) || p == len(bSchema) {
		return true
	}
	return aSchema[len(aSchema)-1] < bSchema[p]
}

// Join returns the natural join a ⋈ b with annotations combined by ⊗
// (Definition 3.4 lifted to the semiring). The output schema is the
// sorted union of the input schemas.
func Join[T any](s semiring.Semiring[T], a, b *Relation[T]) *Relation[T] {
	joinSite.Inject()
	shared := hypergraph.IntersectSorted(a.schema, b.schema)
	if isPrefixOf(shared, a.schema) && isPrefixOf(shared, b.schema) {
		p := len(shared)
		if !restBefore(a.schema, b.schema, p) && restBefore(b.schema, a.schema, p) {
			a, b = b, a // ⋈ is commutative; this orientation emits sorted output
		}
		if p >= 1 {
			if parts := parallelParts(a.Len() + b.Len()); parts > 1 {
				return joinMergeParallel(s, a, b, p, parts)
			}
		}
		return joinMerge(s, a, b, p)
	}
	if len(shared) >= 1 && len(shared) <= keys.MaxPacked {
		if parts := parallelParts(a.Len() + b.Len()); parts > 1 {
			return joinHashParallel(s, a, b, shared, parts)
		}
	}
	return joinHash(s, a, b, shared)
}

// joinMerge is the sorted-merge join: both operands are sorted by their
// shared-column prefix, so matching key groups are found by a galloping
// two-pointer scan and crossed directly.
func joinMerge[T any](s semiring.Semiring[T], a, b *Relation[T], p int) *Relation[T] {
	outSchema := hypergraph.UnionSorted(a.schema, b.schema)
	srcs := outputSrcs(outSchema, a.schema, b.schema)
	na, nb := a.Len(), b.Len()
	var rows []int32
	var vals []T
	divN := 0
	if p >= 1 {
		divN = na + nb // the range-split twin serves exactly p ≥ 1
	}
	markDivisible(divN, func() {
		rows, vals = joinMergeRange(s, a, b, p, srcs, len(outSchema), 0, na, 0, nb)
	})
	return mergeEmit(s, outSchema, restBefore(a.schema, b.schema, p), rows, vals)
}

// joinMergeRange crosses the matching key groups of a[aLo:aHi) ×
// b[bLo:bHi) and returns the joined rows and values in generation order
// (ascending shared key, then a-row, then b-row). It is the shared core
// of the sequential merge join and of each chunk of the range-split
// parallel merge: chunk outputs concatenated in chunk order are exactly
// the sequential generation sequence, which is what makes the parallel
// path bit-identical.
func joinMergeRange[T any](s semiring.Semiring[T], a, b *Relation[T], p int, srcs []colSrc, outW,
	aLo, aHi, bLo, bHi int) ([]int32, []T) {
	aAr, bAr := len(a.schema), len(b.schema)
	cap := maxLen(aHi-aLo, bHi-bLo)
	rows := make([]int32, 0, cap*outW)
	vals := make([]T, 0, cap)
	scratch := make([]int32, outW)

	i, j := aLo, bLo
	for i < aHi && j < bHi {
		ra := a.rows[i*aAr:]
		rb := b.rows[j*bAr:]
		c := compareShared(ra, rb, p)
		if c < 0 {
			i = gallopShared(a.rows, aAr, aHi, i+1, rb, p)
			continue
		}
		if c > 0 {
			j = gallopShared(b.rows, bAr, bHi, j+1, ra, p)
			continue
		}
		iEnd := i + 1
		for iEnd < aHi && compareShared(a.rows[iEnd*aAr:], ra, p) == 0 {
			iEnd++
		}
		jEnd := j + 1
		for jEnd < bHi && compareShared(b.rows[jEnd*bAr:], rb, p) == 0 {
			jEnd++
		}
		for x := i; x < iEnd; x++ {
			ta := a.Tuple(x)
			for y := j; y < jEnd; y++ {
				tb := b.Tuple(y)
				v := s.Mul(a.vals[x], b.vals[y])
				if s.IsZero(v) {
					continue
				}
				for k, sc := range srcs {
					if sc.fromA {
						scratch[k] = ta[sc.col]
					} else {
						scratch[k] = tb[sc.col]
					}
				}
				rows = append(rows, scratch...)
				vals = append(vals, v)
			}
		}
		i, j = iEnd, jEnd
	}
	return rows, vals
}

// mergeEmit wraps a merge join's generated rows into a relation: the
// ordered orientation is already the output's lexicographic order, the
// unordered one re-sorts through the Builder (whose ⊕-merge sees the
// rows in exactly the generation order, keeping duplicate combination
// order identical across sequential and parallel paths).
func mergeEmit[T any](s semiring.Semiring[T], outSchema []int, ordered bool, rows []int32, vals []T) *Relation[T] {
	if ordered {
		return fromSorted(outSchema, rows, vals)
	}
	bld := NewBuilderHint(s, outSchema, len(vals))
	bld.rows = append(bld.rows, rows...)
	bld.vals = append(bld.vals, vals...)
	return bld.Build()
}

// joinHash indexes b on the shared columns — packed uint64 keys for ≤ 2
// shared columns, string keys beyond — and probes with a's tuples. The
// per-key tuple lists are intrusive chains over one []int32, so the
// index costs two allocations regardless of b's size.
func joinHash[T any](s semiring.Semiring[T], a, b *Relation[T], shared []int) *Relation[T] {
	outSchema := hypergraph.UnionSorted(a.schema, b.schema)
	srcs := outputSrcs(outSchema, a.schema, b.schema)
	aCols, _ := columnsOf(a.schema, shared)
	bCols, _ := columnsOf(b.schema, shared)
	na, nb := a.Len(), b.Len()

	out := NewBuilderHint(s, outSchema, maxLen(na, nb))
	scratch := make([]int32, len(outSchema))
	emit := func(x, y int) {
		v := s.Mul(a.vals[x], b.vals[y])
		if s.IsZero(v) {
			return
		}
		ta, tb := a.Tuple(x), b.Tuple(y)
		for k, sc := range srcs {
			if sc.fromA {
				scratch[k] = ta[sc.col]
			} else {
				scratch[k] = tb[sc.col]
			}
		}
		out.AddRow(scratch, v)
	}

	if len(shared) <= keys.MaxPacked {
		divN := 0
		if len(shared) >= 1 {
			divN = na + nb // joinHashParallel is the partitioned twin
		}
		markDivisible(divN, func() {
			head := make(map[uint64]int32, nb)
			next := make([]int32, nb)
			for i := nb - 1; i >= 0; i-- {
				k := keys.PackCols(b.Tuple(i), bCols)
				if h, ok := head[k]; ok {
					next[i] = h
				} else {
					next[i] = -1
				}
				head[k] = int32(i)
			}
			for i := 0; i < na; i++ {
				if h, ok := head[keys.PackCols(a.Tuple(i), aCols)]; ok {
					for j := h; j >= 0; j = next[j] {
						emit(i, int(j))
					}
				}
			}
		})
		return out.Build()
	}

	//faqlint:allow hotpath(documented arity>MaxPacked fallback: string keys off the hot path)
	head := make(map[string]int32, nb)
	next := make([]int32, nb)
	for i := nb - 1; i >= 0; i-- {
		k := keys.EncodeCols(b.Tuple(i), bCols)
		if h, ok := head[k]; ok {
			next[i] = h
		} else {
			next[i] = -1
		}
		head[k] = int32(i)
	}
	for i := 0; i < na; i++ {
		if h, ok := head[keys.EncodeCols(a.Tuple(i), aCols)]; ok {
			for j := h; j >= 0; j = next[j] {
				emit(i, int(j))
			}
		}
	}
	return out.Build()
}

// Semijoin returns a ⋉ b (Definition 3.5 with set semantics on the
// match): the tuples of a whose projection onto the shared variables
// appears in b, annotations unchanged. This is the filtering primitive of
// the star protocol (Algorithm 1); the value-combining variant used by
// the general FAQ protocol is Join followed by Project.
func Semijoin[T any](s semiring.Semiring[T], a, b *Relation[T]) *Relation[T] {
	semijoinSite.Inject()
	shared := hypergraph.IntersectSorted(a.schema, b.schema)
	if isPrefixOf(shared, a.schema) && isPrefixOf(shared, b.schema) {
		p := len(shared)
		if p >= 1 {
			if parts := parallelParts(a.Len() + b.Len()); parts > 1 {
				return semijoinMergeParallel(a, b, p, parts)
			}
		}
		return semijoinMerge(a, b, p)
	}
	if len(shared) >= 1 && len(shared) <= keys.MaxPacked {
		if parts := parallelParts(a.Len() + b.Len()); parts > 1 {
			return semijoinHashParallel(a, b, shared, parts)
		}
	}
	return semijoinHash(a, b, shared)
}

// semijoinMerge filters a against b with a galloping two-pointer scan on
// the shared prefix; the output is a's row order, already sorted.
func semijoinMerge[T any](a, b *Relation[T], p int) *Relation[T] {
	na, nb := a.Len(), b.Len()
	var rows []int32
	var vals []T
	divN := 0
	if p >= 1 {
		divN = na + nb
	}
	markDivisible(divN, func() {
		rows, vals = semijoinMergeRange(a, b, p, 0, na, 0, nb)
	})
	return fromSorted(a.schema, rows, vals)
}

// semijoinMergeRange filters a[aLo:aHi) against b[bLo:bHi) on the shared
// p-column prefix, returning the surviving rows in a's order — the
// shared core of the sequential semijoin merge and of each chunk of its
// range-split parallel twin.
func semijoinMergeRange[T any](a, b *Relation[T], p, aLo, aHi, bLo, bHi int) ([]int32, []T) {
	aAr, bAr := len(a.schema), len(b.schema)
	rows := make([]int32, 0, (aHi-aLo)*aAr)
	vals := make([]T, 0, aHi-aLo)
	i, j := aLo, bLo
	for i < aHi && j < bHi {
		ra := a.rows[i*aAr:]
		c := compareShared(ra, b.rows[j*bAr:], p)
		if c < 0 {
			i = gallopShared(a.rows, aAr, aHi, i+1, b.rows[j*bAr:], p)
			continue
		}
		if c > 0 {
			j = gallopShared(b.rows, bAr, bHi, j+1, ra, p)
			continue
		}
		rows = append(rows, a.Tuple(i)...)
		vals = append(vals, a.vals[i])
		i++
	}
	return rows, vals
}

func semijoinHash[T any](a, b *Relation[T], shared []int) *Relation[T] {
	aCols, _ := columnsOf(a.schema, shared)
	bCols, _ := columnsOf(b.schema, shared)
	out := &Relation[T]{schema: a.schema}

	if len(shared) <= keys.MaxPacked {
		divN := 0
		if len(shared) >= 1 {
			divN = a.Len() + b.Len() // semijoinHashParallel is the partitioned twin
		}
		markDivisible(divN, func() {
			seen := make(map[uint64]struct{}, b.Len())
			for i := 0; i < b.Len(); i++ {
				seen[keys.PackCols(b.Tuple(i), bCols)] = struct{}{}
			}
			for i := 0; i < a.Len(); i++ {
				if _, ok := seen[keys.PackCols(a.Tuple(i), aCols)]; ok {
					out.rows = append(out.rows, a.Tuple(i)...)
					out.vals = append(out.vals, a.vals[i])
				}
			}
		})
		return out
	}

	//faqlint:allow hotpath(documented arity>MaxPacked fallback: string keys off the hot path)
	seen := make(map[string]struct{}, b.Len())
	for i := 0; i < b.Len(); i++ {
		seen[keys.EncodeCols(b.Tuple(i), bCols)] = struct{}{}
	}
	for i := 0; i < a.Len(); i++ {
		if _, ok := seen[keys.EncodeCols(a.Tuple(i), aCols)]; ok {
			out.rows = append(out.rows, a.Tuple(i)...)
			out.vals = append(out.vals, a.vals[i])
		}
	}
	return out
}

// joinNestedLoop is the O(|a|·|b|) reference implementation used by the
// equivalence property tests: no index, no merge — just the definition.
func joinNestedLoop[T any](s semiring.Semiring[T], a, b *Relation[T]) *Relation[T] {
	shared := hypergraph.IntersectSorted(a.schema, b.schema)
	outSchema := hypergraph.UnionSorted(a.schema, b.schema)
	srcs := outputSrcs(outSchema, a.schema, b.schema)
	aCols, _ := columnsOf(a.schema, shared)
	bCols, _ := columnsOf(b.schema, shared)
	out := NewBuilder(s, outSchema)
	scratch := make([]int32, len(outSchema))
	for i := 0; i < a.Len(); i++ {
		ta := a.Tuple(i)
		for j := 0; j < b.Len(); j++ {
			tb := b.Tuple(j)
			match := true
			for k := range shared {
				if ta[aCols[k]] != tb[bCols[k]] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			for k, sc := range srcs {
				if sc.fromA {
					scratch[k] = ta[sc.col]
				} else {
					scratch[k] = tb[sc.col]
				}
			}
			out.AddRow(scratch, s.Mul(a.vals[i], b.vals[j]))
		}
	}
	return out.Build()
}

func maxLen(a, b int) int {
	if a > b {
		return a
	}
	return b
}
