package relation

import (
	"math/rand"
	"testing"

	"repro/internal/semiring"
)

// rebuildAdd is the from-scratch oracle: feed every tuple of both
// operands through a fresh Builder and let Build ⊕-merge and drop
// zeros.
func rebuildAdd[T any](s semiring.Semiring[T], a, b *Relation[T]) *Relation[T] {
	bld := NewBuilderHint(s, a.Schema(), a.Len()+b.Len())
	for i := 0; i < a.Len(); i++ {
		bld.AddRow(a.Tuple(i), a.Value(i))
	}
	for i := 0; i < b.Len(); i++ {
		bld.AddRow(b.Tuple(i), b.Value(i))
	}
	return bld.Build()
}

func TestMergeAddMatchesRebuild(t *testing.T) {
	s := semiring.Count{}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		schema := []int{0, 1, 2}[:1+rng.Intn(3)]
		mk := func(n int) *Relation[int64] {
			b := NewBuilder(s, schema)
			for i := 0; i < n; i++ {
				row := make([]int, len(schema))
				for k := range row {
					row[k] = rng.Intn(5)
				}
				// Values in [-2, 2] so ⊕-merges cancel to exact zero often,
				// exercising the zero-drop path.
				b.Add(row, int64(rng.Intn(5)-2))
			}
			return b.Build()
		}
		a, c := mk(rng.Intn(20)), mk(rng.Intn(20))
		got, err := MergeAdd(s, a, c)
		if err != nil {
			t.Fatal(err)
		}
		want := rebuildAdd(s, a, c)
		if !Equal(s, got, want) {
			t.Fatalf("trial %d: MergeAdd diverges from rebuild: got %v want %v", trial, got, want)
		}
	}
}

func TestMergeAddScalarAndEmpty(t *testing.T) {
	s := semiring.Count{}
	u3 := Unit(s, int64(3))
	um3 := Unit(s, int64(-3))
	sum, err := MergeAdd(s, u3, um3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Len() != 0 {
		t.Fatalf("3 ⊕ -3 should cancel to the empty scalar, got len %d", sum.Len())
	}
	empty := Empty[int64]([]int{0, 1})
	b := NewBuilder(s, []int{0, 1})
	b.Add([]int{1, 2}, 5)
	r := b.Build()
	if got, err := MergeAdd(s, empty, r); err != nil || !Equal(s, got, r) {
		t.Fatalf("empty ⊕ r != r (err %v)", err)
	}
	if got, err := MergeAdd(s, r, empty); err != nil || !Equal(s, got, r) {
		t.Fatalf("r ⊕ empty != r (err %v)", err)
	}
	if _, err := MergeAdd(s, r, Empty[int64]([]int{0})); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func TestLookupRow(t *testing.T) {
	s := semiring.Count{}
	b := NewBuilder(s, []int{0, 1})
	b.Add([]int{1, 2}, 5)
	b.Add([]int{3, 1}, 7)
	b.Add([]int{0, 0}, 2)
	r := b.Build()
	if v, ok := LookupRow(r, []int32{3, 1}); !ok || v != 7 {
		t.Fatalf("LookupRow(3,1) = %d,%v want 7,true", v, ok)
	}
	if v, ok := LookupRow(r, []int32{0, 0}); !ok || v != 2 {
		t.Fatalf("LookupRow(0,0) = %d,%v want 2,true", v, ok)
	}
	if _, ok := LookupRow(r, []int32{2, 2}); ok {
		t.Fatal("LookupRow on an unlisted tuple must report false")
	}
	if _, ok := LookupRow(r, []int32{1}); ok {
		t.Fatal("LookupRow with wrong arity must report false")
	}
}
