// Package relation implements semiring-annotated relations in listing
// representation — the input format of the paper's FAQ queries: a function
// f_e is stored as the list of its non-zero values
// R_e = {(y, f_e(y)) : f_e(y) ≠ 0} (Section 1).
//
// Relations are immutable after construction; all operations return new
// relations. Tuples are kept sorted lexicographically, so equal relations
// have identical layouts and every computation in the repository is
// deterministic.
package relation

import (
	"fmt"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/semiring"
)

// Relation is a finite map from tuples over a variable schema to non-zero
// semiring values. The schema lists variable ids sorted ascending; each
// tuple stores one int32 per schema variable.
type Relation[T any] struct {
	schema []int
	rows   []int32 // flattened: len = arity * Len()
	vals   []T
}

// Schema returns the sorted variable ids. Callers must not modify it.
func (r *Relation[T]) Schema() []int { return r.schema }

// Arity returns the number of schema variables.
func (r *Relation[T]) Arity() int { return len(r.schema) }

// Len returns the number of listed (non-zero) tuples.
func (r *Relation[T]) Len() int {
	if len(r.schema) == 0 {
		return len(r.vals)
	}
	return len(r.rows) / len(r.schema)
}

// Tuple returns the i-th tuple as a view; callers must not modify it.
func (r *Relation[T]) Tuple(i int) []int32 {
	a := len(r.schema)
	return r.rows[i*a : (i+1)*a]
}

// Value returns the annotation of the i-th tuple.
func (r *Relation[T]) Value(i int) T { return r.vals[i] }

// String renders the relation for diagnostics.
func (r *Relation[T]) String() string {
	return fmt.Sprintf("Relation(schema=%v, n=%d)", r.schema, r.Len())
}

// Builder accumulates tuples and merges duplicates with the semiring's ⊕
// at Build time, dropping zero-valued results (listing representation).
type Builder[T any] struct {
	s      semiring.Semiring[T]
	schema []int
	perm   []int // column permutation from input order to sorted schema
	rows   []int32
	vals   []T
}

// NewBuilder returns a builder over the given schema (any order; columns
// are normalized to sorted variable order internally). Duplicate
// variables in the schema are a programmer error and panic.
func NewBuilder[T any](s semiring.Semiring[T], schema []int) *Builder[T] {
	sorted := append([]int(nil), schema...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			panic(fmt.Sprintf("relation: duplicate variable %d in schema %v", sorted[i], schema))
		}
	}
	perm := make([]int, len(schema))
	for i, v := range schema {
		perm[i] = sort.SearchInts(sorted, v)
	}
	return &Builder[T]{s: s, schema: sorted, perm: perm}
}

// Add appends a tuple (given in the builder's original schema order) with
// an annotation. Length mismatches panic.
func (b *Builder[T]) Add(tuple []int, val T) {
	if len(tuple) != len(b.schema) {
		panic(fmt.Sprintf("relation: tuple arity %d != schema arity %d", len(tuple), len(b.schema)))
	}
	row := make([]int32, len(tuple))
	for i, x := range tuple {
		row[b.perm[i]] = int32(x)
	}
	b.rows = append(b.rows, row...)
	b.vals = append(b.vals, val)
}

// AddOne appends a tuple annotated with the semiring's 1 — the natural
// encoding of an ordinary (Boolean) database tuple.
func (b *Builder[T]) AddOne(tuple ...int) { b.Add(tuple, b.s.One()) }

// Build merges duplicate tuples with ⊕, drops zeros, sorts
// lexicographically, and returns the immutable relation.
func (b *Builder[T]) Build() *Relation[T] {
	a := len(b.schema)
	n := len(b.vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	cmp := func(i, j int) int {
		ri, rj := b.rows[i*a:(i+1)*a], b.rows[j*a:(j+1)*a]
		for k := 0; k < a; k++ {
			if ri[k] != rj[k] {
				if ri[k] < rj[k] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	sort.Slice(idx, func(x, y int) bool { return cmp(idx[x], idx[y]) < 0 })

	out := &Relation[T]{schema: b.schema}
	for i := 0; i < n; {
		j := i + 1
		v := b.vals[idx[i]]
		for j < n && cmp(idx[i], idx[j]) == 0 {
			v = b.s.Add(v, b.vals[idx[j]])
			j++
		}
		if !b.s.IsZero(v) {
			out.rows = append(out.rows, b.rows[idx[i]*a:(idx[i]+1)*a]...)
			out.vals = append(out.vals, v)
		}
		i = j
	}
	return out
}

// Empty returns the empty relation over a schema.
func Empty[T any](schema []int) *Relation[T] {
	sorted := append([]int(nil), schema...)
	sort.Ints(sorted)
	return &Relation[T]{schema: sorted}
}

// Unit returns the zero-arity relation holding the single empty tuple
// with the given value — the ⊗-identity of joins and the shape of a BCQ
// answer (a single semiring value).
func Unit[T any](s semiring.Semiring[T], val T) *Relation[T] {
	r := &Relation[T]{schema: nil}
	if !s.IsZero(val) {
		r.vals = append(r.vals, val)
	}
	return r
}

// ScalarValue returns the single value of a zero-arity relation (the BCQ
// or fully-aggregated FAQ answer): the stored value, or ⊕'s identity 0
// when the relation is empty.
func ScalarValue[T any](s semiring.Semiring[T], r *Relation[T]) (T, error) {
	if len(r.schema) != 0 {
		var zero T
		return zero, fmt.Errorf("relation: ScalarValue on non-scalar schema %v", r.schema)
	}
	if len(r.vals) == 0 {
		return s.Zero(), nil
	}
	return r.vals[0], nil
}

// columnsOf maps the variables vs to their column indices in schema;
// variables missing from the schema return an error.
func columnsOf(schema, vs []int) ([]int, error) {
	cols := make([]int, len(vs))
	for i, v := range vs {
		j := sort.SearchInts(schema, v)
		if j >= len(schema) || schema[j] != v {
			return nil, fmt.Errorf("relation: variable %d not in schema %v", v, schema)
		}
		cols[i] = j
	}
	return cols, nil
}

// key encodes the given columns of a tuple as a map key.
func key(tuple []int32, cols []int) string {
	buf := make([]byte, 0, len(cols)*4)
	for _, c := range cols {
		x := uint32(tuple[c])
		buf = append(buf, byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
	}
	return string(buf)
}

// Project returns π_vs(r) with duplicate projected tuples merged by ⊕
// (the FAQ-SS semantics of summing out the dropped variables all at
// once). vs must be a subset of r's schema.
func Project[T any](s semiring.Semiring[T], r *Relation[T], vs []int) (*Relation[T], error) {
	sorted := append([]int(nil), vs...)
	sort.Ints(sorted)
	cols, err := columnsOf(r.schema, sorted)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(s, sorted)
	tuple := make([]int, len(cols))
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		for k, c := range cols {
			tuple[k] = int(t[c])
		}
		b.Add(tuple, r.vals[i])
	}
	return b.Build(), nil
}

// Join returns the natural join a ⋈ b with annotations combined by ⊗
// (Definition 3.4 lifted to the semiring). The output schema is the
// sorted union of the input schemas.
func Join[T any](s semiring.Semiring[T], a, b *Relation[T]) *Relation[T] {
	shared := hypergraph.IntersectSorted(a.schema, b.schema)
	outSchema := hypergraph.UnionSorted(a.schema, b.schema)
	aCols, _ := columnsOf(a.schema, shared)
	bCols, _ := columnsOf(b.schema, shared)
	// Index b by shared-variable key.
	bIdx := make(map[string][]int)
	for i := 0; i < b.Len(); i++ {
		k := key(b.Tuple(i), bCols)
		bIdx[k] = append(bIdx[k], i)
	}
	// Precompute output column sources: from a, or from b.
	type src struct {
		fromA bool
		col   int
	}
	srcs := make([]src, len(outSchema))
	for i, v := range outSchema {
		if j := sort.SearchInts(a.schema, v); j < len(a.schema) && a.schema[j] == v {
			srcs[i] = src{true, j}
		} else {
			j := sort.SearchInts(b.schema, v)
			srcs[i] = src{false, j}
		}
	}
	out := NewBuilder(s, outSchema)
	tuple := make([]int, len(outSchema))
	for i := 0; i < a.Len(); i++ {
		ta := a.Tuple(i)
		for _, j := range bIdx[key(ta, aCols)] {
			tb := b.Tuple(j)
			for k, sc := range srcs {
				if sc.fromA {
					tuple[k] = int(ta[sc.col])
				} else {
					tuple[k] = int(tb[sc.col])
				}
			}
			out.Add(tuple, s.Mul(a.vals[i], b.vals[j]))
		}
	}
	return out.Build()
}

// Semijoin returns a ⋉ b (Definition 3.5 with set semantics on the
// match): the tuples of a whose projection onto the shared variables
// appears in b, annotations unchanged. This is the filtering primitive of
// the star protocol (Algorithm 1); the value-combining variant used by
// the general FAQ protocol is Join followed by Project.
func Semijoin[T any](s semiring.Semiring[T], a, b *Relation[T]) *Relation[T] {
	shared := hypergraph.IntersectSorted(a.schema, b.schema)
	aCols, _ := columnsOf(a.schema, shared)
	bCols, _ := columnsOf(b.schema, shared)
	seen := make(map[string]bool)
	for i := 0; i < b.Len(); i++ {
		seen[key(b.Tuple(i), bCols)] = true
	}
	out := &Relation[T]{schema: a.schema}
	for i := 0; i < a.Len(); i++ {
		if seen[key(a.Tuple(i), aCols)] {
			out.rows = append(out.rows, a.Tuple(i)...)
			out.vals = append(out.vals, a.vals[i])
		}
	}
	return out
}

// EliminateVar aggregates variable v out of r with the given per-variable
// operator (general FAQ, eq. 4): tuples equal on the remaining schema are
// combined with op. For a product aggregate ⊗, unlisted tuples are zeros
// and annihilate the product, so a group survives only when it has one
// tuple per domain value — domSize values — mirroring Corollary G.2's
// push-down over listing representations.
func EliminateVar[T any](s semiring.Semiring[T], r *Relation[T], v int, op semiring.Op[T], domSize int) (*Relation[T], error) {
	if _, err := columnsOf(r.schema, []int{v}); err != nil {
		return nil, err
	}
	rest := hypergraph.DiffSorted(r.schema, []int{v})
	restCols, _ := columnsOf(r.schema, rest)

	type group struct {
		val   T
		count int
	}
	groups := make(map[string]*group)
	var order []string
	reps := make(map[string][]int32)
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		k := key(t, restCols)
		g, ok := groups[k]
		if !ok {
			g = &group{val: op.Identity()}
			groups[k] = g
			order = append(order, k)
			rep := make([]int32, len(restCols))
			for j, c := range restCols {
				rep[j] = t[c]
			}
			reps[k] = rep
		}
		g.val = op.Combine(g.val, r.vals[i])
		g.count++
	}
	b := NewBuilder(s, rest)
	tuple := make([]int, len(rest))
	for _, k := range order {
		g := groups[k]
		if op.IsProduct() && g.count < domSize {
			continue // an unlisted zero annihilates the product aggregate
		}
		if s.IsZero(g.val) {
			continue
		}
		for j, x := range reps[k] {
			tuple[j] = int(x)
		}
		b.Add(tuple, g.val)
	}
	return b.Build(), nil
}

// Equal reports whether two relations have the same schema and the same
// tuples with semiring-equal annotations.
func Equal[T any](s semiring.Semiring[T], a, b *Relation[T]) bool {
	if len(a.schema) != len(b.schema) || a.Len() != b.Len() {
		return false
	}
	for i := range a.schema {
		if a.schema[i] != b.schema[i] {
			return false
		}
	}
	for i := 0; i < a.Len(); i++ {
		ta, tb := a.Tuple(i), b.Tuple(i)
		for k := range ta {
			if ta[k] != tb[k] {
				return false
			}
		}
		if !s.Equal(a.vals[i], b.vals[i]) {
			return false
		}
	}
	return true
}

// Rename returns a copy of r with schema variables substituted according
// to m (old id -> new id); variables absent from m keep their ids. The
// mapping must remain injective on the schema.
func Rename[T any](s semiring.Semiring[T], r *Relation[T], m map[int]int) (*Relation[T], error) {
	newSchema := make([]int, len(r.schema))
	for i, v := range r.schema {
		if nv, ok := m[v]; ok {
			newSchema[i] = nv
		} else {
			newSchema[i] = v
		}
	}
	seen := make(map[int]bool, len(newSchema))
	for _, v := range newSchema {
		if seen[v] {
			return nil, fmt.Errorf("relation: rename collapses schema %v via %v", r.schema, m)
		}
		seen[v] = true
	}
	b := NewBuilder(s, newSchema)
	tuple := make([]int, len(newSchema))
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		for k := range t {
			tuple[k] = int(t[k])
		}
		b.Add(tuple, r.vals[i])
	}
	return b.Build(), nil
}
