// Package relation implements semiring-annotated relations in listing
// representation — the input format of the paper's FAQ queries: a function
// f_e is stored as the list of its non-zero values
// R_e = {(y, f_e(y)) : f_e(y) ≠ 0} (Section 1).
//
// Relations are immutable after construction; all operations return new
// relations. Tuples are kept sorted lexicographically, so equal relations
// have identical layouts and every computation in the repository is
// deterministic.
//
// # Performance notes
//
// The kernel is columnar and allocation-light: tuples live in one flat
// []int32 row buffer, and every operator exploits the sorted invariant
// instead of re-deriving it through hash maps.
//
//   - Tuple identity on ≤ 2 columns uses order-preserving uint64 packed
//     keys (internal/keys) — no string keys, no per-tuple allocation.
//     Wider key sets fall back to raw-row comparison or string keys.
//   - Join and Semijoin run a galloping sorted-merge whenever the shared
//     variables are a schema prefix of both operands (always true for
//     same-key star reductions); otherwise a packed-key hash join.
//   - Project and EliminateVar detect when the group-by columns are a
//     schema prefix (projections onto leading variables, elimination of
//     the innermost variable) and reduce contiguous runs in one linear
//     pass with no map and no re-sort.
//   - Builder batches row growth, sorts by packed key for arity ≤ 2, and
//     can be presized via NewBuilderHint.
package relation

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/fault"
	"repro/internal/hypergraph"
	"repro/internal/keys"
	"repro/internal/semiring"
)

// Chaos failpoints at the kernel entry points. Build and the join
// kernels have no error path, so their sites use Inject (failing modes
// panic, recovered into a typed error at the service boundary);
// EliminateVar returns an error and uses Hit.
var (
	buildSite     = fault.Register("relation.build")
	eliminateSite = fault.Register("relation.eliminate")
)

// Relation is a finite map from tuples over a variable schema to non-zero
// semiring values. The schema lists variable ids sorted ascending; each
// tuple stores one int32 per schema variable.
type Relation[T any] struct {
	schema []int
	rows   []int32 // flattened: len = arity * Len()
	vals   []T
}

// Schema returns the sorted variable ids. Callers must not modify it.
func (r *Relation[T]) Schema() []int { return r.schema }

// Arity returns the number of schema variables.
func (r *Relation[T]) Arity() int { return len(r.schema) }

// Len returns the number of listed (non-zero) tuples.
func (r *Relation[T]) Len() int {
	if len(r.schema) == 0 {
		return len(r.vals)
	}
	return len(r.rows) / len(r.schema)
}

// Tuple returns the i-th tuple as a view; callers must not modify it.
func (r *Relation[T]) Tuple(i int) []int32 {
	a := len(r.schema)
	return r.rows[i*a : (i+1)*a]
}

// Value returns the annotation of the i-th tuple.
func (r *Relation[T]) Value(i int) T { return r.vals[i] }

// String renders the relation for diagnostics.
func (r *Relation[T]) String() string {
	return fmt.Sprintf("Relation(schema=%v, n=%d)", r.schema, r.Len())
}

// fromSorted wraps pre-sorted, duplicate-free storage without copying.
// Callers transfer ownership of rows and vals.
func fromSorted[T any](schema []int, rows []int32, vals []T) *Relation[T] {
	return &Relation[T]{schema: schema, rows: rows, vals: vals}
}

// Builder accumulates tuples and merges duplicates with the semiring's ⊕
// at Build time, dropping zero-valued results (listing representation).
type Builder[T any] struct {
	s      semiring.Semiring[T]
	schema []int
	perm   []int // column permutation from input order to sorted schema
	rows   []int32
	vals   []T
}

// NewBuilder returns a builder over the given schema (any order; columns
// are normalized to sorted variable order internally). Duplicate
// variables in the schema are a programmer error and panic.
func NewBuilder[T any](s semiring.Semiring[T], schema []int) *Builder[T] {
	return NewBuilderHint(s, schema, 0)
}

// NewBuilderHint is NewBuilder with a tuple-capacity hint, so operators
// that know their input cardinality (Project, Join) can presize the row
// and value buffers and avoid growth reallocations.
func NewBuilderHint[T any](s semiring.Semiring[T], schema []int, capacity int) *Builder[T] {
	sorted := append([]int(nil), schema...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			//faqlint:allow nopanic(programmer-error precondition: a duplicate schema variable is a caller bug, not data)
			panic(fmt.Sprintf("relation: duplicate variable %d in schema %v", sorted[i], schema))
		}
	}
	perm := make([]int, len(schema))
	for i, v := range schema {
		perm[i] = sort.SearchInts(sorted, v)
	}
	b := &Builder[T]{s: s, schema: sorted, perm: perm}
	if capacity > 0 {
		b.rows = make([]int32, 0, capacity*len(sorted))
		b.vals = make([]T, 0, capacity)
	}
	return b
}

// Len returns the number of tuples added so far (before duplicate
// merging).
func (b *Builder[T]) Len() int { return len(b.vals) }

// Add appends a tuple (given in the builder's original schema order) with
// an annotation. Length mismatches panic.
func (b *Builder[T]) Add(tuple []int, val T) {
	if len(tuple) != len(b.schema) {
		//faqlint:allow nopanic(programmer-error precondition: tuple arity is fixed by the schema the caller built)
		panic(fmt.Sprintf("relation: tuple arity %d != schema arity %d", len(tuple), len(b.schema)))
	}
	n := len(b.rows)
	b.rows = slices.Grow(b.rows, len(tuple))[:n+len(tuple)]
	row := b.rows[n:]
	for i, x := range tuple {
		row[b.perm[i]] = int32(x)
	}
	b.vals = append(b.vals, val)
}

// AddRow appends a tuple already laid out in sorted-schema column order
// (the order Relation.Tuple uses). The row is copied. This is the
// allocation-free entry point for operators transferring rows between
// relations.
func (b *Builder[T]) AddRow(row []int32, val T) {
	if len(row) != len(b.schema) {
		//faqlint:allow nopanic(programmer-error precondition: row arity is fixed by the schema the caller built)
		panic(fmt.Sprintf("relation: row arity %d != schema arity %d", len(row), len(b.schema)))
	}
	b.rows = append(b.rows, row...)
	b.vals = append(b.vals, val)
}

// AddOne appends a tuple annotated with the semiring's 1 — the natural
// encoding of an ordinary (Boolean) database tuple.
func (b *Builder[T]) AddOne(tuple ...int) { b.Add(tuple, b.s.One()) }

// Build merges duplicate tuples with ⊕, drops zeros, sorts
// lexicographically, and returns the immutable relation.
func (b *Builder[T]) Build() *Relation[T] {
	buildSite.Inject()
	a := len(b.schema)
	n := len(b.vals)
	if n == 0 {
		return &Relation[T]{schema: b.schema}
	}
	if a == 0 {
		v := b.vals[0]
		for _, w := range b.vals[1:] {
			v = b.s.Add(v, w)
		}
		if b.s.IsZero(v) {
			return &Relation[T]{schema: b.schema}
		}
		return &Relation[T]{schema: b.schema, vals: []T{v}}
	}
	if a <= keys.MaxPacked {
		return b.buildPacked()
	}
	return b.buildGeneric()
}

// packedRow pairs a tuple's order-preserving uint64 key with its input
// index; sorting by (key, idx) sorts tuples lexicographically while
// keeping the duplicate-merge order deterministic.
type packedRow struct {
	key uint64
	idx int32
}

func (b *Builder[T]) buildPacked() *Relation[T] {
	a := len(b.schema)
	n := len(b.vals)
	pr := make([]packedRow, n)
	if a == 1 {
		for i := 0; i < n; i++ {
			pr[i] = packedRow{keys.Pack1(b.rows[i]), int32(i)}
		}
	} else {
		for i := 0; i < n; i++ {
			pr[i] = packedRow{keys.Pack2(b.rows[2*i], b.rows[2*i+1]), int32(i)}
		}
	}
	cmp := func(p, q packedRow) int {
		if p.key != q.key {
			if p.key < q.key {
				return -1
			}
			return 1
		}
		return int(p.idx) - int(q.idx)
	}
	// Sorting by (key, idx) is a strict total order, so the sorted
	// permutation is unique: the concurrent sub-sort + k-way merge path
	// is bit-identical to the sequential sort by construction.
	if parts := parallelParts(n); parts > 1 {
		parallelSortFunc(pr, cmp, parts)
	} else {
		markDivisible(n, func() { slices.SortFunc(pr, cmp) })
	}
	rows := make([]int32, 0, n*a)
	vals := make([]T, 0, n)
	for i := 0; i < n; {
		j := i + 1
		v := b.vals[pr[i].idx]
		for j < n && pr[j].key == pr[i].key {
			v = b.s.Add(v, b.vals[pr[j].idx])
			j++
		}
		if !b.s.IsZero(v) {
			if a == 1 {
				rows = append(rows, keys.Unpack1(pr[i].key))
			} else {
				x, y := keys.Unpack2(pr[i].key)
				rows = append(rows, x, y)
			}
			vals = append(vals, v)
		}
		i = j
	}
	return fromSorted(b.schema, rows, vals)
}

func (b *Builder[T]) buildGeneric() *Relation[T] {
	a := len(b.schema)
	n := len(b.vals)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	all := b.rows
	cmp := func(x, y int32) int {
		rx := all[int(x)*a : int(x)*a+a]
		ry := all[int(y)*a : int(y)*a+a]
		for k := 0; k < a; k++ {
			if rx[k] != ry[k] {
				if rx[k] < ry[k] {
					return -1
				}
				return 1
			}
		}
		return int(x) - int(y)
	}
	if parts := parallelParts(n); parts > 1 {
		parallelSortFunc(idx, cmp, parts)
	} else {
		markDivisible(n, func() { slices.SortFunc(idx, cmp) })
	}
	rowEq := func(x, y int32) bool {
		rx := all[int(x)*a : int(x)*a+a]
		ry := all[int(y)*a : int(y)*a+a]
		for k := 0; k < a; k++ {
			if rx[k] != ry[k] {
				return false
			}
		}
		return true
	}
	rows := make([]int32, 0, n*a)
	vals := make([]T, 0, n)
	for i := 0; i < n; {
		j := i + 1
		v := b.vals[idx[i]]
		for j < n && rowEq(idx[i], idx[j]) {
			v = b.s.Add(v, b.vals[idx[j]])
			j++
		}
		if !b.s.IsZero(v) {
			rows = append(rows, all[int(idx[i])*a:int(idx[i])*a+a]...)
			vals = append(vals, v)
		}
		i = j
	}
	return fromSorted(b.schema, rows, vals)
}

// Empty returns the empty relation over a schema.
func Empty[T any](schema []int) *Relation[T] {
	sorted := append([]int(nil), schema...)
	sort.Ints(sorted)
	return &Relation[T]{schema: sorted}
}

// Unit returns the zero-arity relation holding the single empty tuple
// with the given value — the ⊗-identity of joins and the shape of a BCQ
// answer (a single semiring value).
func Unit[T any](s semiring.Semiring[T], val T) *Relation[T] {
	r := &Relation[T]{schema: nil}
	if !s.IsZero(val) {
		r.vals = append(r.vals, val)
	}
	return r
}

// ScalarValue returns the single value of a zero-arity relation (the BCQ
// or fully-aggregated FAQ answer): the stored value, or ⊕'s identity 0
// when the relation is empty.
func ScalarValue[T any](s semiring.Semiring[T], r *Relation[T]) (T, error) {
	if len(r.schema) != 0 {
		var zero T
		return zero, fmt.Errorf("relation: ScalarValue on non-scalar schema %v", r.schema)
	}
	if len(r.vals) == 0 {
		return s.Zero(), nil
	}
	return r.vals[0], nil
}

// columnsOf maps the variables vs to their column indices in schema;
// variables missing from the schema return an error.
func columnsOf(schema, vs []int) ([]int, error) {
	cols := make([]int, len(vs))
	for i, v := range vs {
		j := sort.SearchInts(schema, v)
		if j >= len(schema) || schema[j] != v {
			return nil, fmt.Errorf("relation: variable %d not in schema %v", v, schema)
		}
		cols[i] = j
	}
	return cols, nil
}

// isIdentPrefix reports whether cols selects the leading columns in
// order — the condition under which sorted tuples group contiguously on
// those columns.
func isIdentPrefix(cols []int) bool {
	for i, c := range cols {
		if c != i {
			return false
		}
	}
	return true
}

// Project returns π_vs(r) with duplicate projected tuples merged by ⊕
// (the FAQ-SS semantics of summing out the dropped variables all at
// once). vs must be a subset of r's schema.
func Project[T any](s semiring.Semiring[T], r *Relation[T], vs []int) (*Relation[T], error) {
	sorted := append([]int(nil), vs...)
	sort.Ints(sorted)
	cols, err := columnsOf(r.schema, sorted)
	if err != nil {
		return nil, err
	}
	p := len(cols)
	n := r.Len()
	if isIdentPrefix(cols) {
		// Keeping a schema prefix: groups are contiguous runs of the
		// sorted rows — one linear merge, already in output order. With
		// p ≥ 1 the run reduction range-splits on group boundaries
		// (p = 0 collapses everything into one group, which cannot split).
		if p >= 1 {
			if parts := parallelParts(n); parts > 1 {
				return projectPrefixParallel(s, r, sorted, p, parts), nil
			}
		}
		divN := 0
		if p >= 1 {
			divN = n // projectPrefixParallel is the partitioned twin
		}
		var rows []int32
		var vals []T
		markDivisible(divN, func() {
			rows, vals = projectPrefixRange(s, r, p, 0, n)
		})
		return fromSorted(sorted, rows, vals), nil
	}
	b := NewBuilderHint(s, sorted, n)
	scratch := make([]int32, p)
	for i := 0; i < n; i++ {
		t := r.Tuple(i)
		for k, c := range cols {
			scratch[k] = t[c]
		}
		b.AddRow(scratch, r.vals[i])
	}
	return b.Build(), nil
}

// EliminateVar aggregates variable v out of r with the given per-variable
// operator (general FAQ, eq. 4): tuples equal on the remaining schema are
// combined with op. For a product aggregate ⊗, unlisted tuples are zeros
// and annihilate the product, so a group survives only when it has one
// tuple per domain value — domSize values — mirroring Corollary G.2's
// push-down over listing representations.
func EliminateVar[T any](s semiring.Semiring[T], r *Relation[T], v int, op semiring.Op[T], domSize int) (*Relation[T], error) {
	if err := eliminateSite.Hit(nil); err != nil {
		return nil, err
	}
	vcols, err := columnsOf(r.schema, []int{v})
	if err != nil {
		return nil, err
	}
	vcol := vcols[0]
	rest := hypergraph.DiffSorted(r.schema, []int{v})
	a := len(r.schema)
	p := len(rest)
	n := r.Len()

	if vcol == a-1 {
		// Eliminating the innermost variable: the remaining columns are a
		// schema prefix, so groups are contiguous — no map, no re-sort.
		// With p ≥ 1 the run reduction range-splits on group boundaries
		// (p = 0 collapses everything into one group, which cannot split).
		if p >= 1 {
			if parts := parallelParts(n); parts > 1 {
				return eliminatePrefixParallel(s, r, rest, op, domSize, p, parts), nil
			}
		}
		divN := 0
		if p >= 1 {
			divN = n // eliminatePrefixParallel is the partitioned twin
		}
		var rows []int32
		var vals []T
		markDivisible(divN, func() {
			rows, vals = eliminatePrefixRange(s, r, op, domSize, p, 0, n)
		})
		return fromSorted(rest, rows, vals), nil
	}

	restCols, _ := columnsOf(r.schema, rest)
	if p <= keys.MaxPacked {
		if parts := parallelParts(n); parts > 1 && p >= 1 {
			return eliminatePackedParallel(s, r, rest, restCols, op, domSize, parts), nil
		}
		divN := 0
		if p >= 1 {
			divN = n // eliminatePackedParallel is the partitioned twin
		}
		var out *Relation[T]
		markDivisible(divN, func() {
			// Group on a packed key; packed order is lexicographic order,
			// so sorting the groups by key yields the output layout
			// directly.
			groupOf := make(map[uint64]int32, n)
			var gkeys []uint64
			var gvals []T
			var gcounts []int32
			for i := 0; i < n; i++ {
				k := keys.PackCols(r.Tuple(i), restCols)
				g, ok := groupOf[k]
				if !ok {
					g = int32(len(gkeys))
					groupOf[k] = g
					gkeys = append(gkeys, k)
					gvals = append(gvals, op.Identity())
					gcounts = append(gcounts, 0)
				}
				gvals[g] = op.Combine(gvals[g], r.vals[i])
				gcounts[g]++
			}
			order := make([]int32, len(gkeys))
			for i := range order {
				order[i] = int32(i)
			}
			sortByKey(order, gkeys)
			rows := make([]int32, 0, len(gkeys)*p)
			vals := make([]T, 0, len(gkeys))
			for _, g := range order {
				if op.IsProduct() && int(gcounts[g]) < domSize {
					continue // an unlisted zero annihilates the product aggregate
				}
				if s.IsZero(gvals[g]) {
					continue
				}
				switch p {
				case 1:
					rows = append(rows, keys.Unpack1(gkeys[g]))
				case 2:
					x, y := keys.Unpack2(gkeys[g])
					rows = append(rows, x, y)
				}
				vals = append(vals, gvals[g])
			}
			out = fromSorted(rest, rows, vals)
		})
		return out, nil
	}

	// Arbitrary-arity fallback (> MaxPacked remaining columns): string
	// keys off the hot path.
	type group struct {
		val   T
		count int
	}
	//faqlint:allow hotpath(documented arity>MaxPacked fallback: string keys off the hot path)
	groups := make(map[string]*group, n)
	var order []string
	//faqlint:allow hotpath(documented arity>MaxPacked fallback: string keys off the hot path)
	reps := make(map[string][]int32, n)
	for i := 0; i < n; i++ {
		t := r.Tuple(i)
		k := keys.EncodeCols(t, restCols)
		g, ok := groups[k]
		if !ok {
			g = &group{val: op.Identity()}
			groups[k] = g
			order = append(order, k)
			rep := make([]int32, p)
			for j, c := range restCols {
				rep[j] = t[c]
			}
			reps[k] = rep
		}
		g.val = op.Combine(g.val, r.vals[i])
		g.count++
	}
	b := NewBuilderHint(s, rest, len(order))
	for _, k := range order {
		g := groups[k]
		if op.IsProduct() && g.count < domSize {
			continue
		}
		if s.IsZero(g.val) {
			continue
		}
		b.AddRow(reps[k], g.val)
	}
	return b.Build(), nil
}

// Equal reports whether two relations have the same schema and the same
// tuples with semiring-equal annotations.
func Equal[T any](s semiring.Semiring[T], a, b *Relation[T]) bool {
	if len(a.schema) != len(b.schema) || a.Len() != b.Len() {
		return false
	}
	for i := range a.schema {
		if a.schema[i] != b.schema[i] {
			return false
		}
	}
	if !slices.Equal(a.rows, b.rows) {
		return false
	}
	for i := range a.vals {
		if !s.Equal(a.vals[i], b.vals[i]) {
			return false
		}
	}
	return true
}

// Rename returns a copy of r with schema variables substituted according
// to m (old id -> new id); variables absent from m keep their ids. The
// mapping must remain injective on the schema.
func Rename[T any](s semiring.Semiring[T], r *Relation[T], m map[int]int) (*Relation[T], error) {
	newSchema := make([]int, len(r.schema))
	for i, v := range r.schema {
		if nv, ok := m[v]; ok {
			newSchema[i] = nv
		} else {
			newSchema[i] = v
		}
	}
	ascending := true
	for i := 1; i < len(newSchema); i++ {
		if newSchema[i] <= newSchema[i-1] {
			ascending = false
			break
		}
	}
	if ascending {
		// Order-preserving rename: the column layout and tuple order are
		// unchanged, so the result shares the immutable storage.
		return fromSorted(newSchema, r.rows, r.vals), nil
	}
	seen := make(map[int]bool, len(newSchema))
	for _, v := range newSchema {
		if seen[v] {
			return nil, fmt.Errorf("relation: rename collapses schema %v via %v", r.schema, m)
		}
		seen[v] = true
	}
	b := NewBuilderHint(s, newSchema, r.Len())
	tuple := make([]int, len(newSchema))
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		for k := range t {
			tuple[k] = int(t[k])
		}
		b.Add(tuple, r.vals[i])
	}
	return b.Build(), nil
}
