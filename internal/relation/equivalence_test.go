package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/semiring"
)

// Equivalence property tests: the dispatching Join/Semijoin, the hash
// paths, and the merge paths must all agree with the O(n·m) nested-loop
// reference, across semirings (Boolean, counting, min-plus) and across
// schema shapes that force every strategy:
//
//	prefix-shared ordered   → merge join, direct sorted emission
//	prefix-shared unordered → merge join through the Builder
//	non-prefix shared ≤ 2   → packed uint64 hash join
//	non-prefix shared > 2   → string-key hash join (cold fallback)
//	disjoint schemas        → cartesian product
//	identical schemas       → full-key intersection

// schemaPairs enumerates the shapes described above.
var schemaPairs = [][2][]int{
	{{0, 1}, {0, 2}},             // merge, ordered
	{{0, 1, 2}, {0, 1, 3}},       // merge p=2, ordered
	{{0, 3}, {0, 2}},             // merge, unordered (aRest > bRest)
	{{0, 1}, {1, 2}},             // hash, packed key
	{{1, 2}, {0, 2}},             // hash, packed key
	{{0}, {1}},                   // cartesian
	{{0, 1}, {0, 1}},             // identical schemas
	{{0, 1, 2, 3}, {0, 1, 2, 4}}, // merge p=3 (beyond MaxPacked)
	{{1, 2, 3, 4}, {0, 2, 3, 4}}, // hash, string-key fallback (3 shared)
	{{0, 1, 2}, {2}},             // message-style: b ⊆ a, non-prefix
	{{0, 1, 2}, {0}},             // message-style: b ⊆ a, prefix
}

func randRelT[T any](s semiring.Semiring[T], r *rand.Rand, schema []int, n, dom int, val func(*rand.Rand) T) *Relation[T] {
	b := NewBuilder(s, schema)
	tuple := make([]int, len(schema))
	for i := 0; i < n; i++ {
		for j := range tuple {
			tuple[j] = r.Intn(dom)
		}
		b.Add(tuple, val(r))
	}
	return b.Build()
}

// semijoinNestedLoop is the reference semijoin: keep a's tuples that
// match some b tuple on the shared columns.
func semijoinNestedLoop[T any](a, b *Relation[T], shared []int) *Relation[T] {
	aCols, _ := columnsOf(a.schema, shared)
	bCols, _ := columnsOf(b.schema, shared)
	out := &Relation[T]{schema: a.schema}
	for i := 0; i < a.Len(); i++ {
		ta := a.Tuple(i)
		for j := 0; j < b.Len(); j++ {
			tb := b.Tuple(j)
			match := true
			for k := range shared {
				if ta[aCols[k]] != tb[bCols[k]] {
					match = false
					break
				}
			}
			if match {
				out.rows = append(out.rows, ta...)
				out.vals = append(out.vals, a.vals[i])
				break
			}
		}
	}
	return out
}

func checkJoinEquivalence[T any](t *testing.T, s semiring.Semiring[T], val func(*rand.Rand) T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 40; trial++ {
		for pi, pair := range schemaPairs {
			a := randRelT(s, r, pair[0], 1+r.Intn(12), 2+r.Intn(3), val)
			b := randRelT(s, r, pair[1], 1+r.Intn(12), 2+r.Intn(3), val)
			shared := hypergraph.IntersectSorted(a.Schema(), b.Schema())

			want := joinNestedLoop(s, a, b)
			if got := Join(s, a, b); !Equal(s, got, want) {
				t.Fatalf("pair %d trial %d: Join != nested-loop\n a=%v\n b=%v\n got=%v\n want=%v",
					pi, trial, a, b, got, want)
			}
			if got := joinHash(s, a, b, shared); !Equal(s, got, want) {
				t.Fatalf("pair %d trial %d: hash join != nested-loop", pi, trial)
			}
			if isPrefixOf(shared, a.Schema()) && isPrefixOf(shared, b.Schema()) {
				if got := joinMerge(s, a, b, len(shared)); !Equal(s, got, want) {
					t.Fatalf("pair %d trial %d: merge join != nested-loop", pi, trial)
				}
			}

			sjWant := semijoinNestedLoop(a, b, shared)
			if got := Semijoin(s, a, b); !Equal(s, got, sjWant) {
				t.Fatalf("pair %d trial %d: Semijoin != nested-loop\n a=%v\n b=%v", pi, trial, a, b)
			}
			if got := semijoinHash(a, b, shared); !Equal(s, got, sjWant) {
				t.Fatalf("pair %d trial %d: hash semijoin != nested-loop", pi, trial)
			}
			if isPrefixOf(shared, a.Schema()) && isPrefixOf(shared, b.Schema()) {
				if got := semijoinMerge(a, b, len(shared)); !Equal(s, got, sjWant) {
					t.Fatalf("pair %d trial %d: merge semijoin != nested-loop", pi, trial)
				}
			}
		}
	}
}

func TestJoinStrategyEquivalenceBool(t *testing.T) {
	checkJoinEquivalence[bool](t, semiring.Bool{}, func(r *rand.Rand) bool { return r.Intn(4) > 0 }, 101)
}

func TestJoinStrategyEquivalenceCount(t *testing.T) {
	checkJoinEquivalence[int64](t, semiring.Count{}, func(r *rand.Rand) int64 { return int64(r.Intn(5)) }, 102)
}

func TestJoinStrategyEquivalenceMinPlus(t *testing.T) {
	checkJoinEquivalence[float64](t, semiring.MinPlus{}, func(r *rand.Rand) float64 { return float64(r.Intn(20)) }, 103)
}

// TestJoinMergeOrientation pins the operand swap: when every non-shared
// variable of b precedes every non-shared variable of a, Join must still
// return sorted output.
func TestJoinMergeOrientation(t *testing.T) {
	s := semiring.Bool{}
	r := rand.New(rand.NewSource(7))
	a := randRelT[bool](s, r, []int{0, 3}, 10, 3, func(*rand.Rand) bool { return true })
	b := randRelT[bool](s, r, []int{0, 2}, 10, 3, func(*rand.Rand) bool { return true })
	got := Join(s, a, b)
	want := joinNestedLoop(s, a, b)
	if !Equal(s, got, want) {
		t.Fatalf("swapped-orientation join mismatch:\n got=%v\n want=%v", got, want)
	}
	for i := 1; i < got.Len(); i++ {
		if compareShared(got.Tuple(i-1), got.Tuple(i), got.Arity()) > 0 {
			t.Fatalf("join output not sorted at %d", i)
		}
	}
}

// TestProjectPrefixVsGeneral checks the contiguous-run projection fast
// path against the builder path on the same inputs.
func TestProjectPrefixVsGeneral(t *testing.T) {
	s := semiring.SumProduct{}
	r := rand.New(rand.NewSource(11))
	rel := randRelT[float64](s, r, []int{0, 1, 2}, 60, 3, func(r *rand.Rand) float64 { return 1 + r.Float64() })
	// Prefix projection (fast path) must equal projecting through an
	// order-scrambling rename and back (builder path).
	p1, err := Project(s, rel, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ren, err := Rename(s, rel, map[int]int{0: 5, 1: 1, 2: 2}) // 0→5 scrambles column order
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Project(s, ren, []int{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Rename(s, p2, map[int]int{5: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(s, p1, back) {
		t.Fatalf("prefix projection != general projection:\n %v\n %v", p1, back)
	}
}

// TestRenameFastPathSharesLayout pins the zero-copy rename: an
// order-preserving rename must not re-sort and must not change tuples.
func TestRenameFastPathSharesLayout(t *testing.T) {
	s := semiring.Bool{}
	b := NewBuilder[bool](s, []int{0, 1})
	b.AddOne(3, 4)
	b.AddOne(1, 2)
	r := b.Build()
	out, err := Rename(s, r, map[int]int{0: 2, 1: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Schema(); got[0] != 2 || got[1] != 7 {
		t.Fatalf("schema = %v, want [2 7]", got)
	}
	for i := 0; i < r.Len(); i++ {
		for k := range r.Tuple(i) {
			if out.Tuple(i)[k] != r.Tuple(i)[k] {
				t.Fatalf("tuple %d changed under order-preserving rename", i)
			}
		}
	}
}

// TestEliminateVarPathsAgree drives the three EliminateVar strategies
// (contiguous innermost, packed grouping, string fallback) against each
// other by eliminating each variable of a 4-ary relation and checking
// against brute-force reaggregation.
func TestEliminateVarPathsAgree(t *testing.T) {
	s := semiring.SumProduct{}
	add := semiring.AddOf[float64](s)
	r := rand.New(rand.NewSource(13))
	rel := randRelT[float64](s, r, []int{0, 1, 2, 3}, 80, 3, func(r *rand.Rand) float64 { return 1 + r.Float64() })
	for _, v := range []int{0, 1, 2, 3} {
		got, err := EliminateVar(s, rel, v, add, 100)
		if err != nil {
			t.Fatal(err)
		}
		rest := hypergraph.DiffSorted(rel.Schema(), []int{v})
		want, err := Project(s, rel, rest)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(s, got, want) {
			t.Fatalf("EliminateVar(%d) != Project onto rest:\n got=%v\n want=%v", v, got, want)
		}
	}
}

// FuzzBuilderDuplicateMerge fuzzes Builder's duplicate merging against a
// map-based reference aggregation over the counting semiring.
func FuzzBuilderDuplicateMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 4})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{5, 1, 2, 1, 5, 2, 2, 5, 1})
	f.Add([]byte{255, 0, 255, 0, 255, 0})
	f.Add([]byte{7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := semiring.Count{}
		b := NewBuilder[int64](s, []int{0, 1, 2})
		ref := make(map[[3]int]int64)
		for i := 0; i+2 < len(data); i += 3 {
			tup := [3]int{int(data[i]) % 7, int(data[i+1]) % 7, int(data[i+2]) % 7}
			val := int64(data[i]%3) - 1 // values in {-1, 0, 1}: exercises zero-drop
			b.Add(tup[:], val)
			ref[tup] += val
		}
		rel := b.Build()
		nonzero := 0
		for _, v := range ref {
			if v != 0 {
				nonzero++
			}
		}
		if rel.Len() != nonzero {
			t.Fatalf("Build kept %d tuples, reference has %d non-zero groups", rel.Len(), nonzero)
		}
		for i := 0; i < rel.Len(); i++ {
			tup := rel.Tuple(i)
			key := [3]int{int(tup[0]), int(tup[1]), int(tup[2])}
			if ref[key] != rel.Value(i) {
				t.Fatalf("tuple %v: merged value %d, reference %d", tup, rel.Value(i), ref[key])
			}
		}
		for i := 1; i < rel.Len(); i++ {
			if compareShared(rel.Tuple(i-1), rel.Tuple(i), 3) >= 0 {
				t.Fatalf("Build output not strictly sorted at %d", i)
			}
		}
	})
}

// TestBuilderHintCapacity sanity-checks that the hint presizes without
// changing semantics.
func TestBuilderHintCapacity(t *testing.T) {
	s := semiring.Bool{}
	b1 := NewBuilder[bool](s, []int{0, 1})
	b2 := NewBuilderHint[bool](s, []int{0, 1}, 64)
	for i := 0; i < 40; i++ {
		b1.AddOne(i%5, i%7)
		b2.AddOne(i%5, i%7)
	}
	if b2.Len() != 40 {
		t.Fatalf("Builder.Len = %d, want 40", b2.Len())
	}
	if !Equal(s, b1.Build(), b2.Build()) {
		t.Fatal("hinted builder built a different relation")
	}
}

// TestJoinWithUnit pins the ⊗-identity: Unit ⋈ R = R with values scaled
// by the unit's value.
func TestJoinWithUnit(t *testing.T) {
	s := semiring.SumProduct{}
	b := NewBuilder[float64](s, []int{0, 1})
	b.Add([]int{1, 2}, 0.5)
	b.Add([]int{3, 4}, 0.25)
	r := b.Build()
	for name, u := range map[string]*Relation[float64]{
		"left":  Join(s, Unit(s, 2.0), r),
		"right": Join(s, r, Unit(s, 2.0)),
	} {
		if u.Len() != 2 {
			t.Fatalf("%s unit join: Len = %d, want 2", name, u.Len())
		}
		if u.Value(0) != 1.0 || u.Value(1) != 0.5 {
			t.Fatalf("%s unit join values = %v, %v; want 1, 0.5", name, u.Value(0), u.Value(1))
		}
	}
}

func ExampleJoin() {
	s := semiring.Bool{}
	r := NewBuilder[bool](s, []int{0, 1})
	r.AddOne(1, 1)
	r.AddOne(2, 1)
	q := NewBuilder[bool](s, []int{0, 2})
	q.AddOne(1, 5)
	j := Join(s, r.Build(), q.Build())
	fmt.Println(j.Len(), j.Tuple(0))
	// Output: 1 [1 1 5]
}
