package relation

import (
	"repro/internal/hypergraph"
	"repro/internal/keys"
	"repro/internal/semiring"
)

// HashIndex is a reusable build side of the hash join: joinHash's
// chain map (packed shared-column key → row chain) pinned to the exact
// row buffer it indexed. PatchAdd-produced relations share their
// input's row buffer, so a standing view (internal/delta) can probe
// one index across any number of value-only updates and rebuild it
// only when a fallback merge rewrites the rows — turning the O(|b|)
// build side of every point-delta join into a one-time cost.
type HashIndex struct {
	shared []int
	head   map[uint64]int32
	next   []int32
	rows   []int32 // identity of the indexed buffer
}

// BuildHashIndex indexes b's rows on the given shared variables (a
// sorted subset of b's schema). Returns nil when there is nothing to
// index or the key does not pack into a uint64 (arity > keys.MaxPacked
// — the documented off-hot-path case); callers fall back to the
// one-shot Join.
func BuildHashIndex[T any](b *Relation[T], shared []int) *HashIndex {
	if len(shared) == 0 || len(shared) > keys.MaxPacked || b.Len() == 0 {
		return nil
	}
	bCols, err := columnsOf(b.schema, shared)
	if err != nil {
		return nil
	}
	nb := b.Len()
	head := make(map[uint64]int32, nb)
	next := make([]int32, nb)
	for i := nb - 1; i >= 0; i-- {
		k := keys.PackCols(b.Tuple(i), bCols)
		if h, ok := head[k]; ok {
			next[i] = h
		} else {
			next[i] = -1
		}
		head[k] = int32(i)
	}
	return &HashIndex{shared: append([]int(nil), shared...), head: head, next: next, rows: b.rows}
}

// IndexValidFor reports whether ix still serves joins against b on the
// given shared variables: the same key columns over the identical row
// buffer. Value-only updates (PatchAdd fast path) keep an index valid;
// any merge that allocates new rows invalidates it.
func IndexValidFor[T any](ix *HashIndex, b *Relation[T], shared []int) bool {
	if ix == nil || len(ix.rows) != len(b.rows) {
		return false
	}
	if len(b.rows) != 0 && &ix.rows[0] != &b.rows[0] {
		return false
	}
	if len(ix.shared) != len(shared) {
		return false
	}
	for i := range shared {
		if ix.shared[i] != shared[i] {
			return false
		}
	}
	return true
}

// JoinIndexed returns Join(s, a, b), probing a prebuilt index of b
// instead of building a fresh hash side: O(|a| · fanout) per call.
// The emission order matches joinHash's probe loop and the result is
// canonicalized by the same Builder, so the output is bit-identical to
// Join's; an index that no longer serves b (or never packed) falls
// back to the one-shot Join.
func JoinIndexed[T any](s semiring.Semiring[T], a, b *Relation[T], ix *HashIndex) *Relation[T] {
	shared := hypergraph.IntersectSorted(a.schema, b.schema)
	if !IndexValidFor(ix, b, shared) {
		return Join(s, a, b)
	}
	joinSite.Inject()
	outSchema := hypergraph.UnionSorted(a.schema, b.schema)
	srcs := outputSrcs(outSchema, a.schema, b.schema)
	aCols, _ := columnsOf(a.schema, shared)
	na := a.Len()
	out := NewBuilderHint(s, outSchema, maxLen(na, 16))
	scratch := make([]int32, len(outSchema))
	for i := 0; i < na; i++ {
		h, ok := ix.head[keys.PackCols(a.Tuple(i), aCols)]
		if !ok {
			continue
		}
		ta := a.Tuple(i)
		for j := h; j >= 0; j = ix.next[j] {
			v := s.Mul(a.vals[i], b.vals[j])
			if s.IsZero(v) {
				continue
			}
			tb := b.Tuple(int(j))
			for k, sc := range srcs {
				if sc.fromA {
					scratch[k] = ta[sc.col]
				} else {
					scratch[k] = tb[sc.col]
				}
			}
			out.AddRow(scratch, v)
		}
	}
	return out.Build()
}
