package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/semiring"
)

// Micro-benchmarks for the relation kernel hot path: Join, Semijoin,
// Project, EliminateVar, and Builder.Build at n ∈ {1e3, 1e4, 1e5}.
// These are the per-tuple constant factors behind every protocol round
// in the paper's evaluation (each GHD node of a Theorem 4.1 run calls
// Semijoin/Project/Join once per star reduction), so `make bench`
// tracks them in BENCH_relation.json across PRs.

var benchSizes = []int{1_000, 10_000, 100_000}

// benchRel builds a relation R(v0, v1) with n random tuples drawn from a
// domain sized so that joins stay selective but non-trivial.
func benchRel(schema []int, n int, seed int64) *Relation[float64] {
	r := rand.New(rand.NewSource(seed))
	dom := n / 4
	if dom < 4 {
		dom = 4
	}
	b := NewBuilder[float64](semiring.SumProduct{}, schema)
	tuple := make([]int, len(schema))
	for i := 0; i < n; i++ {
		for j := range tuple {
			tuple[j] = r.Intn(dom)
		}
		b.Add(tuple, 1+r.Float64())
	}
	return b.Build()
}

func BenchmarkJoin(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := semiring.SumProduct{}
			// R(0,1) ⋈ S(1,2): one shared column, sorted-prefix on S
			// but not on R — exercises the general path.
			left := benchRel([]int{0, 1}, n, 1)
			right := benchRel([]int{1, 2}, n, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Join(s, left, right)
			}
		})
	}
}

func BenchmarkJoinPrefix(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := semiring.SumProduct{}
			// R(0,1) ⋈ S(0,2): the shared column is a schema prefix of
			// both operands — the sorted-merge fast path.
			left := benchRel([]int{0, 1}, n, 1)
			right := benchRel([]int{0, 2}, n, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Join(s, left, right)
			}
		})
	}
}

func BenchmarkSemijoin(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := semiring.SumProduct{}
			left := benchRel([]int{0, 1}, n, 1)
			right := benchRel([]int{0, 2}, n, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Semijoin(s, left, right)
			}
		})
	}
}

func BenchmarkProject(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := semiring.SumProduct{}
			rel := benchRel([]int{0, 1, 2}, n, 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Project(s, rel, []int{0, 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEliminateVar(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := semiring.SumProduct{}
			rel := benchRel([]int{0, 1, 2}, n, 4)
			op := semiring.AddOf[float64](s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := EliminateVar(s, rel, 2, op, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuilderBuild(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(5))
			dom := n / 4
			if dom < 4 {
				dom = 4
			}
			tuples := make([][2]int, n)
			for i := range tuples {
				tuples[i] = [2]int{r.Intn(dom), r.Intn(dom)}
			}
			s := semiring.SumProduct{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bd := NewBuilder[float64](s, []int{0, 1})
				for _, t := range tuples {
					bd.Add(t[:], 1)
				}
				bd.Build()
			}
		})
	}
}
